// Package repro_test benchmarks the reproduction end to end: one
// benchmark per table/figure of the paper's evaluation (see DESIGN.md's
// per-experiment index), component benchmarks for every pipeline stage,
// and ablation benchmarks for the design choices the paper motivates.
//
// Figures are reproduced with campaign sizes scaled down to benchmark
// time; custom metrics report the quantities the paper's tables hold
// (bugs found per technique, coverage deltas, histogram mass). Run
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured comparison produced by
// cmd/campaign at full scale.
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/benchkit"
	"repro/internal/bugs"
	"repro/internal/campaign"
	"repro/internal/checker"
	"repro/internal/compilers"
	"repro/internal/corpus"
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/mutation"
	"repro/internal/reduce"
	"repro/internal/translate"
	"repro/internal/types"
)

// campaignForBench runs a small campaign (distinct seeds per iteration so
// the work is not memoized by determinism).
func campaignForBench(i int, programs int) *campaign.Report {
	return campaign.Run(campaign.Options{
		Seed:      int64(i) * 10_000,
		Programs:  programs,
		BatchSize: 10,
		GenConfig: generator.DefaultConfig(),
		Mutate:    true,
	})
}

// BenchmarkFig7aBugStatus reproduces Figure 7a: a campaign's found-bug
// status table. Reported metric: distinct bugs found per campaign.
func BenchmarkFig7aBugStatus(b *testing.B) {
	var found int
	for i := 0; i < b.N; i++ {
		report := campaignForBench(i, 20)
		_ = report.Figure7a().String()
		found += report.TotalFound()
	}
	b.ReportMetric(float64(found)/float64(b.N), "bugs/campaign")
}

// BenchmarkFig7bSymptoms reproduces Figure 7b: symptom distribution of
// found bugs. Metrics: UCTE/URB/crash counts per campaign.
func BenchmarkFig7bSymptoms(b *testing.B) {
	var ucte, urb, crash int
	for i := 0; i < b.N; i++ {
		report := campaignForBench(i, 20)
		_ = report.Figure7b().String()
		for _, rec := range report.Found {
			switch rec.Bug.Symptom {
			case bugs.UCTE:
				ucte++
			case bugs.URB:
				urb++
			case bugs.Crash:
				crash++
			}
		}
	}
	n := float64(b.N)
	b.ReportMetric(float64(ucte)/n, "UCTE/campaign")
	b.ReportMetric(float64(urb)/n, "URB/campaign")
	b.ReportMetric(float64(crash)/n, "crash/campaign")
}

// BenchmarkFig7cTechniques reproduces Figure 7c: bugs per technique. The
// paper's shape — the generator leads, TEM finds inference bugs the
// generator cannot, TOM finds soundness bugs — is reported as metrics.
func BenchmarkFig7cTechniques(b *testing.B) {
	counts := map[string]int{}
	for i := 0; i < b.N; i++ {
		report := campaignForBench(i, 20)
		_ = report.Figure7c().String()
		for _, rec := range report.Found {
			counts[rec.Technique()]++
		}
	}
	n := float64(b.N)
	b.ReportMetric(float64(counts["Generator"])/n, "generator/campaign")
	b.ReportMetric(float64(counts["TEM"])/n, "TEM/campaign")
	b.ReportMetric(float64(counts["TOM"])/n, "TOM/campaign")
}

// BenchmarkFig8AffectedVersions reproduces Figure 8: the histogram of
// found bugs over affected stable versions, including the master-only bar
// (recent regressions).
func BenchmarkFig8AffectedVersions(b *testing.B) {
	stable := map[string]int{}
	for _, c := range compilers.All() {
		stable[c.Name()] = len(c.Versions())
	}
	var masterOnly, allVersions int
	for i := 0; i < b.N; i++ {
		report := campaignForBench(i, 20)
		_ = report.Figure8(stable).String()
		for _, rec := range report.Found {
			n := rec.Bug.AffectedStableCount(stable[rec.Bug.Compiler])
			switch {
			case n == 0:
				masterOnly++
			case n == stable[rec.Bug.Compiler]:
				allVersions++
			}
		}
	}
	b.ReportMetric(float64(masterOnly)/float64(b.N), "master-only/campaign")
	b.ReportMetric(float64(allVersions)/float64(b.N), "all-versions/campaign")
}

// BenchmarkFig9MutationCoverage reproduces Figure 9 (RQ3): the additional
// checker coverage TEM and TOM mutants bring over the generator baseline.
// The paper's shape to verify: TEM > TOM > 0, concentrated in
// inference/resolution regions.
func BenchmarkFig9MutationCoverage(b *testing.B) {
	var temBranches, tomBranches int
	for i := 0; i < b.N; i++ {
		cov := campaign.RunMutationCoverage(compilers.Kotlinc(), 15, int64(i)*999, generator.DefaultConfig())
		temBranches += cov.TEMDelta.Branches
		tomBranches += cov.TOMDelta.Branches
	}
	b.ReportMetric(float64(temBranches)/float64(b.N), "TEM-extra-branches")
	b.ReportMetric(float64(tomBranches)/float64(b.N), "TOM-extra-branches")
}

// BenchmarkFig10SuiteCoverage reproduces Figure 10 (RQ4): the test suite
// plus random programs barely moves coverage even though random programs
// find many bugs.
func BenchmarkFig10SuiteCoverage(b *testing.B) {
	var change float64
	for i := 0; i < b.N; i++ {
		cov := campaign.RunSuiteCoverage(compilers.Javac(), 30, int64(i)*777, generator.DefaultConfig())
		change += cov.LineChange()
	}
	b.ReportMetric(change/float64(b.N), "line-pct-change")
}

// BenchmarkBatchCompilation measures the Section 3.5 batching pipeline:
// generating and compiling a batch of packaged programs.
func BenchmarkBatchCompilation(b *testing.B) { benchkit.BatchCompilation(b) }

// BenchmarkTEMCombinationSearch measures Algorithm 2's maximal-set
// enumeration, whose worst case is exponential but is tamed by the
// preservation filter (the paper's complexity remark).
func BenchmarkTEMCombinationSearch(b *testing.B) {
	gens := make([]*ir.Program, 8)
	bt := types.NewBuiltins()
	for i := range gens {
		gens[i] = generator.New(generator.DefaultConfig().WithSeed(int64(i))).Generate()
	}
	b.ResetTimer()
	var tried int
	for i := 0; i < b.N; i++ {
		_, report := mutation.TypeErasure(gens[i%len(gens)], bt)
		tried += report.CombinationsTried
	}
	b.ReportMetric(float64(tried)/float64(b.N), "combination-checks")
}

// ----- component benchmarks -----
//
// Bodies live in internal/benchkit so cmd/bench can run the same tier
// programmatically and diff BENCH_*.json files across commits.

// BenchmarkGeneration measures raw program generation throughput.
func BenchmarkGeneration(b *testing.B) { benchkit.Generation(b) }

// BenchmarkTypeCheck measures the reference checker on generated programs.
func BenchmarkTypeCheck(b *testing.B) { benchkit.TypeCheck(b) }

// BenchmarkTypeGraph measures type-graph construction for all methods of
// a program (the analysis underlying both mutations).
func BenchmarkTypeGraph(b *testing.B) { benchkit.TypeGraph(b) }

// BenchmarkTEM measures the full type erasure mutation.
func BenchmarkTEM(b *testing.B) { benchkit.TEM(b) }

// BenchmarkTOM measures the full type overwriting mutation.
func BenchmarkTOM(b *testing.B) { benchkit.TOM(b) }

// BenchmarkTranslate measures each language translator.
func BenchmarkTranslate(b *testing.B) {
	for _, tr := range translate.All() {
		b.Run(tr.Name(), benchkit.TranslateLang(tr))
	}
}

// BenchmarkUnify measures type unification on hierarchy-related
// parameterized types (Definition 3.2).
func BenchmarkUnify(b *testing.B) { benchkit.Unify(b) }

// BenchmarkSubtype measures the subtyping relation on nested generics
// across a genuine hierarchy climb (the earlier reflexive-only version
// lives on as BenchmarkSubtypeReflexive).
func BenchmarkSubtype(b *testing.B) { benchkit.Subtype(b) }

// BenchmarkSubtypeReflexive measures the reflexive fast path.
func BenchmarkSubtypeReflexive(b *testing.B) { benchkit.SubtypeReflexive(b) }

// ----- ablation benchmarks (design choices called out in DESIGN.md) -----

// BenchmarkAblationGraphGuidedVsNaiveErasure compares TEM's type-graph
// guidance against naive random erasure: the fraction of mutants that stay
// well-typed. Graph-guided TEM is 100% by construction; naive erasure
// breaks a large share of programs, wasting campaign budget and corrupting
// the oracle.
func BenchmarkAblationGraphGuidedVsNaiveErasure(b *testing.B) {
	bt := types.NewBuiltins()
	var naiveOK, naiveTotal int
	for i := 0; i < b.N; i++ {
		g := generator.New(generator.DefaultConfig().WithSeed(int64(i)))
		p := g.Generate()
		// Naive: erase every var annotation and every instantiation.
		naive := ir.CloneProgram(p)
		ir.Walk(naive, func(n ir.Node) bool {
			switch t := n.(type) {
			case *ir.VarDecl:
				t.DeclType = nil
			case *ir.New:
				t.TypeArgs = nil
			}
			return true
		})
		naiveTotal++
		if checker.Check(naive, bt, checker.Options{}).OK() {
			naiveOK++
		}
	}
	b.ReportMetric(float64(naiveOK)/float64(naiveTotal)*100, "naive-still-well-typed-%")
}

// BenchmarkAblationTOMWithoutRelevance measures how often a blind random
// type replacement fails to create a type error (making the URB oracle
// unsound), versus TOM's relevance-guided replacement which never does.
func BenchmarkAblationTOMWithoutRelevance(b *testing.B) {
	bt := types.NewBuiltins()
	var blindStillOK, blindTotal int
	for i := 0; i < b.N; i++ {
		g := generator.New(generator.DefaultConfig().WithSeed(int64(i)))
		p := g.Generate()
		rng := rand.New(rand.NewSource(int64(i)))
		// Blind: replace the first var decl's type with a random builtin.
		blind := ir.CloneProgram(p)
		replaced := false
		ir.Walk(blind, func(n ir.Node) bool {
			if replaced {
				return false
			}
			if v, ok := n.(*ir.VarDecl); ok && v.DeclType != nil {
				all := bt.All()
				v.DeclType = all[rng.Intn(len(all))]
				replaced = true
			}
			return true
		})
		if replaced {
			blindTotal++
			if checker.Check(blind, bt, checker.Options{}).OK() {
				blindStillOK++
			}
		}
	}
	if blindTotal > 0 {
		b.ReportMetric(float64(blindStillOK)/float64(blindTotal)*100, "blind-still-well-typed-%")
	}
}

// BenchmarkAblationFeatureYield measures bug yield with parametric
// polymorphism disabled — finding F4's claim that generics drive typing
// bugs predicts a sharp drop.
func BenchmarkAblationFeatureYield(b *testing.B) {
	for _, mode := range []struct {
		name     string
		generics bool
	}{{"generics-on", true}, {"generics-off", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var found int
			for i := 0; i < b.N; i++ {
				cfg := generator.DefaultConfig()
				cfg.ParametricPolymorphism = mode.generics
				cfg.BoundedPolymorphism = mode.generics
				report := campaign.Run(campaign.Options{
					Seed:      int64(i) * 333,
					Programs:  15,
					GenConfig: cfg,
					Compilers: []*compilers.Compiler{compilers.Groovyc()},
					Mutate:    true,
				})
				found += report.TotalFound()
			}
			b.ReportMetric(float64(found)/float64(b.N), "bugs/campaign")
		})
	}
}

// BenchmarkSuiteCompilation measures compiling a compiler's whole test
// suite (the Figure 10 baseline workload).
func BenchmarkSuiteCompilation(b *testing.B) {
	comp := compilers.Javac()
	suite := corpus.TestSuite(comp.Name())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range suite {
			comp.Compile(p, nil)
		}
	}
}

// BenchmarkREM measures the resolution mutation (the future-work
// extension): decoy-overload injection with checker verification.
func BenchmarkREM(b *testing.B) {
	progs := make([]*ir.Program, 8)
	for i := range progs {
		progs[i] = generator.New(generator.DefaultConfig().WithSeed(int64(i))).Generate()
	}
	bt := types.NewBuiltins()
	b.ResetTimer()
	applied := 0
	for i := 0; i < b.N; i++ {
		if m, _ := mutation.ResolutionMutation(progs[i%len(progs)], bt, rand.New(rand.NewSource(int64(i)))); m != nil {
			applied++
		}
	}
	b.ReportMetric(float64(applied)/float64(b.N)*100, "applied-%")
}

// BenchmarkBatchSizeSweep compares compilation throughput across batch
// sizes (the Section 3.5 batching ablation): larger batches amortize the
// per-invocation cost.
func BenchmarkBatchSizeSweep(b *testing.B) {
	comp := compilers.Javac()
	g := generator.New(generator.DefaultConfig().WithSeed(42))
	programs := g.GenerateBatch(16)
	for _, size := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("batch-%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for lo := 0; lo < len(programs); lo += size {
					hi := lo + size
					if hi > len(programs) {
						hi = len(programs)
					}
					if _, err := comp.CompileBatch(programs[lo:hi], nil); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkReduction measures the delta-debugging reducer on a
// bug-triggering program.
func BenchmarkReduction(b *testing.B) {
	comp := compilers.Groovyc()
	var prog *ir.Program
	var bugID string
	for seed := int64(0); seed < 200 && prog == nil; seed++ {
		g := generator.New(generator.DefaultConfig().WithSeed(seed))
		p := g.Generate()
		if res := comp.Compile(p, nil); len(res.Triggered) > 0 {
			prog, bugID = p, res.Triggered[0].ID
		}
	}
	if prog == nil {
		b.Skip("no trigger found")
	}
	keep := func(q *ir.Program) bool {
		res := comp.Compile(q, nil)
		for _, bg := range res.Triggered {
			if bg.ID == bugID {
				return true
			}
		}
		return false
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reduce.Reduce(prog, keep)
	}
}
