// Command bench runs the component benchmark tier (internal/benchkit)
// programmatically and emits a machine-readable BENCH_*.json file: one
// record per benchmark with ns/op, B/op, allocs/op, and any domain metrics
// the benchmark reported. When a baseline file is given (or auto-detected
// as the most recent other BENCH_*.json in the output directory), it diffs
// ns/op against it and exits non-zero if any benchmark regressed past the
// threshold.
//
// Usage:
//
//	go run ./cmd/bench                          # full run, write BENCH_5.json
//	go run ./cmd/bench -benchtime 1x -no-fail   # CI smoke: validate output only
//	go run ./cmd/bench -run 'Translate|Subtype' # subset
//	go run ./cmd/bench -diff OLD.json NEW.json  # compare two existing files
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/benchkit"
)

// Schema identifies the BENCH_*.json layout for forward compatibility.
const Schema = "repro-bench/v1"

// Record is one benchmark's measurement.
type Record struct {
	Name        string             `json:"name"`
	N           int                `json:"n"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the on-disk BENCH_*.json document.
type File struct {
	Schema      string   `json:"schema"`
	GoVersion   string   `json:"go_version"`
	CreatedUnix int64    `json:"created_unix"`
	Benchtime   string   `json:"benchtime"`
	Benchmarks  []Record `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_5.json", "output JSON file")
	baseline := fs.String("baseline", "", "baseline BENCH_*.json to diff against (default: newest other BENCH_*.json beside -out)")
	threshold := fs.Float64("threshold", 0.15, "relative ns/op regression threshold (0.15 = +15%)")
	benchtime := fs.String("benchtime", "0.2s", "per-benchmark duration or iteration count (e.g. 1x)")
	runFilter := fs.String("run", "", "regexp selecting benchmarks to run")
	noFail := fs.Bool("no-fail", false, "report regressions but exit 0")
	list := fs.Bool("list", false, "list benchmark names and exit")
	diff := fs.Bool("diff", false, "compare two existing files: -diff OLD.json NEW.json")
	if err := fs.Parse(argv); err != nil {
		return err
	}

	if *diff {
		if fs.NArg() != 2 {
			return fmt.Errorf("-diff wants exactly two files, got %d", fs.NArg())
		}
		old, err := load(fs.Arg(0))
		if err != nil {
			return err
		}
		cur, err := load(fs.Arg(1))
		if err != nil {
			return err
		}
		regressions := report(os.Stdout, old, cur, *threshold)
		if regressions > 0 && !*noFail {
			return fmt.Errorf("%d benchmark(s) regressed past %+.0f%%", regressions, *threshold*100)
		}
		return nil
	}

	specs := benchkit.Specs()
	if *list {
		for _, s := range specs {
			fmt.Println(s.Name)
		}
		return nil
	}
	if *runFilter != "" {
		re, err := regexp.Compile(*runFilter)
		if err != nil {
			return fmt.Errorf("bad -run regexp: %w", err)
		}
		kept := specs[:0]
		for _, s := range specs {
			if re.MatchString(s.Name) {
				kept = append(kept, s)
			}
		}
		specs = kept
	}
	if len(specs) == 0 {
		return fmt.Errorf("no benchmarks match -run %q", *runFilter)
	}

	// testing.Benchmark honors the test.benchtime flag; register the
	// testing flags and set it explicitly.
	testing.Init()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		return fmt.Errorf("bad -benchtime: %w", err)
	}

	doc := File{
		Schema:      Schema,
		GoVersion:   runtime.Version(),
		CreatedUnix: time.Now().Unix(),
		Benchtime:   *benchtime,
	}
	for _, s := range specs {
		fmt.Fprintf(os.Stderr, "running %-24s ", s.Name)
		r := testing.Benchmark(s.Fn)
		rec := Record{
			Name:        s.Name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			rec.Metrics = map[string]float64{}
			for k, v := range r.Extra {
				rec.Metrics[k] = v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, rec)
		fmt.Fprintf(os.Stderr, "%12.0f ns/op %8d B/op %6d allocs/op (n=%d)\n",
			rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp, rec.N)
	}

	if err := write(*out, doc); err != nil {
		return err
	}
	// Self-validate: the written file must parse back into the schema.
	written, err := load(*out)
	if err != nil {
		return fmt.Errorf("self-validation of %s failed: %w", *out, err)
	}
	if len(written.Benchmarks) != len(doc.Benchmarks) {
		return fmt.Errorf("self-validation: wrote %d benchmarks, read back %d",
			len(doc.Benchmarks), len(written.Benchmarks))
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(doc.Benchmarks))

	base := *baseline
	if base == "" {
		base = newestSibling(*out)
	}
	if base == "" {
		fmt.Fprintln(os.Stderr, "no baseline found; skipping diff")
		return nil
	}
	old, err := load(base)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	fmt.Fprintf(os.Stderr, "diffing against %s\n", base)
	regressions := report(os.Stdout, old, &doc, *threshold)
	if regressions > 0 && !*noFail {
		return fmt.Errorf("%d benchmark(s) regressed past %+.0f%%", regressions, *threshold*100)
	}
	return nil
}

func write(path string, doc File) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc File
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, Schema)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	for _, b := range doc.Benchmarks {
		if b.Name == "" || b.N <= 0 || b.NsPerOp < 0 {
			return nil, fmt.Errorf("%s: malformed record %+v", path, b)
		}
	}
	return &doc, nil
}

// newestSibling returns the most recently modified BENCH_*.json next to
// out, excluding out itself.
func newestSibling(out string) string {
	dir := filepath.Dir(out)
	matches, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	outAbs, _ := filepath.Abs(out)
	best, bestTime := "", time.Time{}
	for _, m := range matches {
		abs, _ := filepath.Abs(m)
		if abs == outAbs {
			continue
		}
		info, err := os.Stat(m)
		if err != nil {
			continue
		}
		if info.ModTime().After(bestTime) {
			best, bestTime = m, info.ModTime()
		}
	}
	return best
}

// report prints a per-benchmark comparison and returns the number of
// ns/op regressions beyond threshold. Benchmarks present on only one side
// are listed but never counted as regressions.
func report(w *os.File, old, cur *File, threshold float64) int {
	oldBy := map[string]Record{}
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	names := make([]string, 0, len(cur.Benchmarks))
	curBy := map[string]Record{}
	for _, b := range cur.Benchmarks {
		names = append(names, b.Name)
		curBy[b.Name] = b
	}
	sort.Strings(names)

	regressions := 0
	fmt.Fprintf(w, "%-24s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		nb := curBy[name]
		ob, ok := oldBy[name]
		if !ok {
			fmt.Fprintf(w, "%-24s %14s %14.0f %8s\n", name, "-", nb.NsPerOp, "new")
			continue
		}
		delta := 0.0
		if ob.NsPerOp > 0 {
			delta = nb.NsPerOp/ob.NsPerOp - 1
		}
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-24s %14.0f %14.0f %+7.1f%%%s\n", name, ob.NsPerOp, nb.NsPerOp, delta*100, mark)
	}
	for _, b := range old.Benchmarks {
		if _, ok := curBy[b.Name]; !ok {
			fmt.Fprintf(w, "%-24s %14.0f %14s %8s\n", b.Name, b.NsPerOp, "-", "gone")
		}
	}
	return regressions
}
