// Command campaign regenerates the paper's evaluation tables and figures
// against the simulated compilers (see DESIGN.md for the experiment
// index). Each -fig value reproduces one artifact:
//
//	campaign -fig 7a|7b|7c   bug tables (campaign + ground truth)
//	campaign -fig 8          affected-versions histogram
//	campaign -fig 9          TEM/TOM coverage increase (RQ3)
//	campaign -fig 10         test-suite vs random coverage (RQ4)
//	campaign -fig synth      generated vs mutated vs synthesized coverage
//	campaign -fig all        everything
//
// -n scales the campaign size (default 400 programs); larger campaigns
// converge closer to the ground-truth catalogs. -workers sets the
// per-stage worker count of the streaming pipeline (0 = GOMAXPROCS) —
// results are identical for any value — and -stats prints where each
// run's time went, stage by stage.
//
// Every compile runs through the resilient harness: -compile-timeout
// bounds one compile (a hang becomes a reportable "hang" verdict),
// -retries bounds transient-fault retries, and -chaos RATE injects
// seeded panics/hangs/transient faults/flaky verdicts at the given rate
// to exercise those paths; the run then prints its fault ledger.
//
// -debug-addr ADDR serves live observability over HTTP while the
// campaign runs: /metrics (JSON registry snapshot: throughput, verdict
// counts, latency histograms, breaker states), /events (recent
// structured events), and the standard /debug/pprof profiling handlers.
// -heartbeat DUR prints a one-line progress summary (units/s, bugs
// found, breaker states, journal lag) to stderr at that interval. Both
// are observation-only: reports are bit-for-bit identical with or
// without them.
//
// With -state DIR the campaign is durable: every aggregated unit is
// journaled and the folded report snapshotted in DIR, so a killed run
// resumes with -resume to exactly the report of an uninterrupted run.
// SIGINT/SIGTERM take a final snapshot and flush the partial figures
// before the nonzero exit. The state dir also accumulates a persistent
// bug corpus across campaigns.
//
// -report-json FILE writes the deterministic report document — the
// same bytes the fuzzing server's report endpoint serves — so CI can
// diff an in-process run against an HTTP-fetched one.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"strings"

	"repro/internal/apisynth"
	"repro/internal/campaign"
	"repro/internal/cli"
	"repro/internal/compilers"
	"repro/internal/fabric"
	"repro/internal/generator"
	"repro/internal/oracle"
)

func main() {
	cfg := cli.NewConfig()
	cfg.Programs = 400
	fig := flag.String("fig", "all", "figure to reproduce: 7a, 7b, 7c, 8, 9, 10, synth, all")
	covN := flag.Int("covn", 150, "programs for the coverage experiments")
	reportJSON := flag.String("report-json", "", "write the deterministic report document (JSON) to this file")
	cfg.RegisterCampaignFlags(flag.CommandLine)
	cfg.RegisterFabricFlags(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	obs, err := cfg.StartObservability(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer obs.Close()

	needCampaign := map[string]bool{"7a": true, "7b": true, "7c": true, "8": true, "all": true}[*fig]
	var report *campaign.Report
	if needCampaign && cfg.Shards > 0 {
		report = runFabric(ctx, cfg, obs, *reportJSON)
	} else if needCampaign {
		opts, err := cfg.CampaignOptions()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts.Metrics = obs.Registry
		opts.Trace = obs.Trace

		fmt.Printf("running campaign: %d programs + mutants against groovyc, kotlinc, javac...\n\n", cfg.Programs)
		c := campaign.New(opts)
		stopBeat := campaign.StartHeartbeat(os.Stderr, c.Status, cfg.Heartbeat)
		if err := c.Start(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			os.Exit(1)
		}
		report, err = c.Wait()
		stopBeat()
		printRecovery(report)
		writeReportDoc(report, *reportJSON)
		if err != nil {
			// The partial report is still a valid (if truncated) fold:
			// flush the figures and stats it supports — a durable run
			// has also just snapshotted this exact state for -resume —
			// before signalling the incomplete run.
			fmt.Fprintf(os.Stderr, "campaign aborted: %v\n", err)
			if report == nil {
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "partial report: %d distinct bugs over %d generated programs\n",
				report.TotalFound(), report.ProgramsRun[oracle.Generated])
			flushPartial(report, *fig, cfg.Stats)
			if cfg.StateDir != "" {
				fmt.Fprintf(os.Stderr, "state saved; resume with -state %s -resume\n", cfg.StateDir)
			}
			os.Exit(1)
		}
		fmt.Printf("found %d distinct bugs (TEM repairs: %d)\n\n", report.TotalFound(), report.TEMRepairs)
		printDifferential(report)
		if report.Faults.Faults() {
			fmt.Println(report.Faults)
		}
		printCorpus(report)
		if cfg.Stats {
			fmt.Println("pipeline stages:")
			fmt.Println(report.Stats)
		}
	}

	show := func(f string) bool { return *fig == f || *fig == "all" }

	if show("7a") {
		fmt.Println(report.Figure7a())
		a, _, _ := campaign.CatalogTables()
		fmt.Println(a)
	}
	if show("7b") {
		fmt.Println(report.Figure7b())
		_, b, _ := campaign.CatalogTables()
		fmt.Println(b)
	}
	if show("7c") {
		fmt.Println(report.Figure7c())
		_, _, c := campaign.CatalogTables()
		fmt.Println(c)
	}
	if show("8") {
		stable := map[string]int{}
		for _, c := range compilers.All() {
			stable[c.Name()] = len(c.Versions())
		}
		fmt.Println(report.Figure8(stable))
	}
	if show("9") {
		fmt.Println("Figure 9: coverage increase by TEM and TOM (RQ3)")
		for _, c := range compilers.All() {
			cov, err := campaign.RunMutationCoverageContext(ctx, c, *covN, cfg.Seed, generator.DefaultConfig(), cfg.Workers)
			if err != nil {
				fmt.Fprintf(os.Stderr, "coverage experiment aborted: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(cov)
			if cfg.Stats {
				fmt.Println("pipeline stages:")
				fmt.Println(cov.Stats)
			}
		}
	}
	if show("10") {
		fmt.Println("Figure 10: test-suite coverage plus random programs (RQ4)")
		for _, c := range compilers.All() {
			cov, err := campaign.RunSuiteCoverageContext(ctx, c, *covN, cfg.Seed+5000, generator.DefaultConfig(), cfg.Workers)
			if err != nil {
				fmt.Fprintf(os.Stderr, "coverage experiment aborted: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(cov)
			if cfg.Stats {
				fmt.Println("pipeline stages:")
				fmt.Println(cov.Stats)
			}
		}
	}
	if show("synth") {
		fmt.Println("Coverage by input kind: generated vs mutated vs synthesized")
		for _, c := range compilers.All() {
			cov, err := campaign.RunSynthCoverageContext(ctx, c, *covN, cfg.Seed+9000,
				generator.DefaultConfig(), apisynth.Config{Corpus: cfg.SynthCorpus}, cfg.Workers)
			if err != nil {
				fmt.Fprintf(os.Stderr, "coverage experiment aborted: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(cov)
			if cfg.Stats {
				fmt.Println("pipeline stages:")
				fmt.Println(cov.Stats)
			}
		}
	}
	if report != nil && *fig == "all" {
		fmt.Println(report.VerdictSummary())
	}
}

// runFabric runs the campaign sharded across fabric workers — spawned
// cmd/worker processes, or running ones attached with -fabric-workers —
// and returns the merged report, which is byte-identical to the
// single-process run of the same flags. On degradation (shards
// abandoned after worker exhaustion) it flushes the partial report and
// exits nonzero, like an aborted single-process campaign.
func runFabric(ctx context.Context, cfg *cli.Config, obs *cli.Observability, reportJSON string) *campaign.Report {
	var clients []*fabric.Client
	if cfg.FabricWorkers != "" {
		for i, addr := range strings.Split(cfg.FabricWorkers, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			if !strings.Contains(addr, "://") {
				addr = "http://" + addr
			}
			clients = append(clients, fabric.NewClient(fmt.Sprintf("w%d", i), addr, cfg.FabricTimeout))
		}
		if len(clients) == 0 {
			fmt.Fprintln(os.Stderr, "fabric: -fabric-workers lists no usable addresses")
			os.Exit(2)
		}
	} else {
		if cfg.WorkerBin == "" {
			fmt.Fprintln(os.Stderr, "fabric: -shards needs -worker-bin to spawn workers or -fabric-workers to attach them")
			os.Exit(2)
		}
		procs := cfg.FabricProcs
		if procs <= 0 {
			procs = cfg.Shards
			if procs > 8 {
				procs = 8
			}
		}
		var chaos *fabric.ChaosOptions
		if cfg.FabricChaos > 0 {
			chaos = &fabric.ChaosOptions{
				Seed:        cfg.Seed,
				KillRate:    cfg.FabricChaos,
				StallRate:   cfg.FabricChaos,
				SlowRate:    cfg.FabricChaos,
				CorruptRate: cfg.FabricChaos,
			}
		}
		workers, stopWorkers, err := fabric.SpawnWorkers(fabric.SpawnOptions{
			Bin:         cfg.WorkerBin,
			Count:       procs,
			Dir:         cfg.FabricState,
			Chaos:       chaos,
			CallTimeout: cfg.FabricTimeout,
			Announce:    os.Stdout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fabric: %v\n", err)
			os.Exit(1)
		}
		defer stopWorkers()
		clients = fabric.Clients(workers)
	}

	fmt.Printf("running sharded campaign: %d programs over %d shards on %d workers...\n\n",
		cfg.Programs, cfg.Shards, len(clients))
	res, err := fabric.Run(ctx, fabric.Options{
		Config:      *cfg,
		Shards:      cfg.Shards,
		Workers:     clients,
		CallTimeout: cfg.FabricTimeout,
		StateDir:    cfg.FabricState,
		Metrics:     obs.Registry,
		Trace:       obs.Trace,
	})
	if res == nil {
		fmt.Fprintf(os.Stderr, "fabric: %v\n", err)
		os.Exit(1)
	}
	report := res.Report
	writeReportDoc(report, reportJSON)
	if res.Faults.Faults() {
		fmt.Println(res.Faults)
		fmt.Println()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sharded campaign degraded: %v\n", err)
		fmt.Fprintf(os.Stderr, "partial report: %d distinct bugs over %d generated programs\n",
			report.TotalFound(), report.ProgramsRun[oracle.Generated])
		flushPartial(report, "all", false)
		os.Exit(1)
	}
	fmt.Printf("found %d distinct bugs (TEM repairs: %d)\n\n", report.TotalFound(), report.TEMRepairs)
	printDifferential(report)
	if report.Faults.Faults() {
		fmt.Println(report.Faults)
	}
	return report
}

// printDifferential renders the differential oracle's findings — the
// distinct-disagreement summary and the cross-compiler conflict
// matrix; a no-op under the ground-truth oracle. CI's differential
// smoke greps the summary line.
func printDifferential(report *campaign.Report) {
	if report.Opts.Oracle != campaign.Differential {
		return
	}
	fmt.Printf("differential oracle: %d distinct disagreements\n\n", len(report.Disagreements))
	if len(report.Disagreements) > 0 {
		fmt.Println(report.DiffSummary())
		fmt.Println(report.DiffPairs())
	}
}

// writeReportDoc writes the deterministic report document, encoded
// exactly as the fuzzing server's report endpoint encodes it, so the
// two are diffable byte for byte.
func writeReportDoc(report *campaign.Report, path string) {
	if path == "" || report == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "report-json: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report.Doc()); err == nil {
		err = f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "report-json: %v\n", err)
		os.Exit(1)
	}
}

// printRecovery summarizes what a resumed run restored.
func printRecovery(r *campaign.Report) {
	if r == nil || !r.Recovery.Resumed {
		return
	}
	fmt.Printf("resumed: %d units restored (%d from snapshot prefix, %d journal records replayed)\n",
		r.Recovery.Recovered, r.Recovery.SnapshotSeq, r.Recovery.Replayed)
	for _, c := range r.Recovery.Quarantined {
		fmt.Printf("  quarantined %s\n", c)
	}
	fmt.Println()
}

// printCorpus summarizes the cross-campaign bug corpus of a durable run.
func printCorpus(r *campaign.Report) {
	if r.Corpus == nil {
		return
	}
	fmt.Printf("bug corpus: %d distinct bugs over %d campaigns\n\n",
		len(r.Corpus.Bugs), r.Corpus.Campaigns)
}

// flushPartial prints the figures and statistics an aborted run can
// still support, so an interrupted campaign leaves its evidence behind
// instead of only an exit code.
func flushPartial(report *campaign.Report, fig string, stats bool) {
	show := func(f string) bool { return fig == f || fig == "all" }
	if show("7a") {
		fmt.Println(report.Figure7a())
	}
	if show("7b") {
		fmt.Println(report.Figure7b())
	}
	if show("7c") {
		fmt.Println(report.Figure7c())
	}
	if show("8") {
		stable := map[string]int{}
		for _, c := range compilers.All() {
			stable[c.Name()] = len(c.Versions())
		}
		fmt.Println(report.Figure8(stable))
	}
	if report.Faults.Faults() {
		fmt.Println(report.Faults)
	}
	if stats && report.Stats != nil {
		fmt.Println("pipeline stages:")
		fmt.Println(report.Stats)
	}
}
