// Command hephaestus is the CLI front end of the Hephaestus reproduction:
// generate random well-typed programs, apply the type erasure and type
// overwriting mutations, translate programs to Java/Kotlin/Groovy, fuzz
// the simulated compilers, and reduce bug-triggering test cases.
//
// Usage:
//
//	hephaestus generate  [-seed N] [-lang ir|java|kotlin|groovy]
//	hephaestus mutate    [-seed N] [-lang ...]     show TEM and TOM mutants
//	hephaestus translate [-seed N] -lang kotlin    translate to a language
//	hephaestus fuzz      [-seed N] [-n programs] [-workers W] [-stats]
//	                     [-compile-timeout D] [-retries R] [-chaos RATE]
//	                     [-state DIR] [-resume] [-snapshot-every K]
//	                     [-debug-addr ADDR] [-heartbeat DUR]
//	                                               run a campaign
//	hephaestus reduce    [-seed N]                 reduce a bug trigger
//	hephaestus typegraph [-seed N]                 dump type graphs (DOT)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/oracle"
	"repro/internal/typegraph"
	"repro/internal/types"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Int64("seed", 0, "generation seed")
	lang := fs.String("lang", "ir", "output language: ir, java, kotlin, groovy")
	n := fs.Int("n", 100, "number of programs for fuzzing")
	workers := fs.Int("workers", 0, "pipeline workers per stage (0 = GOMAXPROCS)")
	stats := fs.Bool("stats", false, "print per-stage pipeline statistics after fuzzing")
	timeout := fs.Duration("compile-timeout", 10*time.Second, "per-compile watchdog budget (0 disables)")
	retries := fs.Int("retries", 2, "max retries for transient compile faults")
	chaos := fs.Float64("chaos", 0, "inject seeded faults at this rate (0 disables; exercises the harness)")
	state := fs.String("state", "", "state directory for durable fuzzing (journal, snapshots, bug corpus)")
	resume := fs.Bool("resume", false, "resume the campaign recorded in -state instead of starting fresh")
	snapshotEvery := fs.Int("snapshot-every", 0, "units between report snapshots (0 = default cadence of 64; -1 disables snapshots)")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /events, and /debug/pprof on this address (e.g. 127.0.0.1:6060; :0 picks a free port)")
	heartbeat := fs.Duration("heartbeat", 0, "print a one-line progress summary at this interval (0 disables)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	cfg := core.Config{
		Seed:    *seed,
		Workers: *workers,
		Harness: harness.Options{
			Timeout:          *timeout,
			Retries:          *retries,
			Seed:             *seed,
			BreakerThreshold: 10,
		},
		StateDir:      *state,
		Resume:        *resume,
		SnapshotEvery: *snapshotEvery,
	}
	if *debugAddr != "" || *heartbeat > 0 {
		cfg.Metrics = metrics.NewRegistry()
		cfg.Trace = metrics.NewTrace(4096)
	}
	if *debugAddr != "" {
		srv, err := metrics.Serve(*debugAddr, cfg.Metrics, cfg.Trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "debug server: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("debug server listening on http://%s\n", srv.Addr())
	}
	if *chaos > 0 {
		cfg.Chaos = &harness.ChaosOptions{
			Seed:          *seed,
			PanicRate:     *chaos,
			HangRate:      *chaos,
			TransientRate: *chaos,
			FlakyRate:     *chaos,
		}
		cfg.Harness.DoubleCompile = true
	}
	h := core.New(cfg)
	switch cmd {
	case "generate":
		tc := h.GenerateTestCaseSeed(*seed)
		emit(h, tc.Program, *lang)
	case "mutate":
		tc := h.GenerateTestCaseSeed(*seed)
		fmt.Println("== original ==")
		emit(h, tc.Program, *lang)
		if tc.TEM != nil {
			fmt.Println("\n== TEM mutant (well-typed; erased points below) ==")
			for _, e := range tc.TEMReport.Erased {
				fmt.Printf("  %s\n", e)
			}
			emit(h, tc.TEM, *lang)
		} else {
			fmt.Println("\n== TEM: nothing erasable ==")
		}
		if tc.TOM != nil {
			fmt.Printf("\n== TOM mutant (ill-typed): %s ==\n", tc.TOMReport)
			emit(h, tc.TOM, *lang)
		} else {
			fmt.Println("\n== TOM: no overwrite point ==")
		}
		if tc.REM != nil {
			fmt.Printf("\n== REM mutant (well-typed): %s ==\n", tc.REMReport)
			emit(h, tc.REM, *lang)
		} else {
			fmt.Println("\n== REM: no resolution site ==")
		}
	case "translate":
		if *lang == "ir" {
			fmt.Fprintln(os.Stderr, "translate needs -lang java|kotlin|groovy")
			os.Exit(2)
		}
		tc := h.GenerateTestCaseSeed(*seed)
		emit(h, tc.Program, *lang)
	case "fuzz":
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		stopBeat := campaign.StartHeartbeat(os.Stderr, cfg.Metrics, *heartbeat, *n)
		findings, report, err := h.FuzzContext(ctx, *n)
		stopBeat()
		if report != nil && report.Recovery.Resumed {
			fmt.Printf("resumed: %d units restored (%d from snapshot prefix, %d journal records replayed)\n\n",
				report.Recovery.Recovered, report.Recovery.SnapshotSeq, report.Recovery.Replayed)
		}
		if err != nil {
			// Flush what the truncated run still found — findings, the
			// partial figure, the fault ledger, the stage stats — then
			// signal the incomplete campaign through the exit code. A
			// durable run has also just snapshotted this state.
			fmt.Fprintf(os.Stderr, "campaign aborted: %v\n", err)
			fmt.Fprintf(os.Stderr, "partial report: %d distinct bugs before the abort\n", len(findings))
			for _, f := range findings {
				fmt.Printf("  %-22s %-8s %-6s found by %-9s (seed %d)\n",
					f.BugID, f.Compiler, f.Symptom, f.Technique, f.FirstSeed)
			}
			fmt.Println(report.Figure7c().String())
			if report.Faults.Faults() {
				fmt.Println(report.Faults)
			}
			if *stats && report.Stats != nil {
				fmt.Println("pipeline stages:")
				fmt.Println(report.Stats)
			}
			if *state != "" {
				fmt.Fprintf(os.Stderr, "state saved; resume with -state %s -resume\n", *state)
			}
			os.Exit(1)
		}
		fmt.Printf("campaign: %d programs (plus mutants), %d distinct bugs\n\n",
			*n, len(findings))
		for _, f := range findings {
			fmt.Printf("  %-22s %-8s %-6s found by %-9s (seed %d)\n",
				f.BugID, f.Compiler, f.Symptom, f.Technique, f.FirstSeed)
		}
		fmt.Println()
		fmt.Println(report.Figure7c().String())
		if report.Faults.Faults() {
			fmt.Println(report.Faults)
		}
		if report.Corpus != nil {
			fmt.Printf("bug corpus: %d distinct bugs over %d campaigns\n",
				len(report.Corpus.Bugs), report.Corpus.Campaigns)
		}
		if *stats {
			fmt.Println("pipeline stages:")
			fmt.Println(report.Stats)
		}
	case "reduce":
		tc := h.GenerateTestCaseSeed(*seed)
		comp := h.Compilers()[0]
		verdict, res := h.Judge(oracle.Generated, comp, tc.Program)
		if verdict == oracle.Pass || len(res.Triggered) == 0 {
			fmt.Printf("seed %d triggers no %s bug; try another seed\n", *seed, comp.Name())
			return
		}
		bug := res.Triggered[0]
		fmt.Printf("reducing seed %d for %s (%d nodes)...\n", *seed, bug.ID, ir.CountNodes(tc.Program))
		reduced := h.ReduceFor(tc.Program, comp, bug.ID)
		fmt.Printf("reduced to %d nodes:\n\n", ir.CountNodes(reduced))
		emit(h, reduced, *lang)
	case "typegraph":
		tc := h.GenerateTestCaseSeed(*seed)
		a := typegraph.Analyze(tc.Program, types.NewBuiltins())
		for name, g := range a.BuildAll() {
			fmt.Printf("// method %s (%d nodes, %d edges, %d candidates)\n",
				name, g.NumNodes(), g.NumEdges(), len(g.Candidates))
			fmt.Println(g.Dot())
		}
	default:
		usage()
		os.Exit(2)
	}
}

func emit(h *core.Hephaestus, p *ir.Program, lang string) {
	if lang == "ir" {
		fmt.Println(ir.Print(p))
		return
	}
	src, err := h.Translate(p, lang)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(src)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hephaestus <generate|mutate|translate|fuzz|reduce|typegraph> [flags]`)
}
