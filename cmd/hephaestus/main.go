// Command hephaestus is the CLI front end of the Hephaestus reproduction:
// generate random well-typed programs, apply the type erasure and type
// overwriting mutations, translate programs to Java/Kotlin/Groovy, fuzz
// the simulated compilers, and reduce bug-triggering test cases.
//
// Usage:
//
//	hephaestus generate  [-seed N] [-lang ir|java|kotlin|groovy]
//	hephaestus mutate    [-seed N] [-lang ...]     show TEM and TOM mutants
//	hephaestus translate [-seed N] -lang kotlin    translate to a language
//	hephaestus fuzz      [-seed N] [-n programs] [-workers W] [-stats]
//	                     [-compile-timeout D] [-retries R] [-chaos RATE]
//	                     [-state DIR] [-resume] [-snapshot-every K]
//	                     [-debug-addr ADDR] [-heartbeat DUR]
//	                                               run a campaign
//	hephaestus reduce    [-seed N]                 reduce a bug trigger
//	hephaestus typegraph [-seed N]                 dump type graphs (DOT)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/campaign"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/oracle"
	"repro/internal/typegraph"
	"repro/internal/types"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	cfg := cli.NewConfig()
	cfg.Programs = 100
	lang := fs.String("lang", "ir", "output language: ir, java, kotlin, groovy")
	cfg.RegisterCampaignFlags(fs)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	coreCfg, err := cfg.CoreConfig()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	obs, err := cfg.StartObservability(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer obs.Close()
	coreCfg.Metrics = obs.Registry
	coreCfg.Trace = obs.Trace

	h := core.New(coreCfg)
	switch cmd {
	case "generate":
		tc := h.GenerateTestCaseSeed(cfg.Seed)
		emit(h, tc.Program, *lang)
	case "mutate":
		tc := h.GenerateTestCaseSeed(cfg.Seed)
		fmt.Println("== original ==")
		emit(h, tc.Program, *lang)
		if tc.TEM != nil {
			fmt.Println("\n== TEM mutant (well-typed; erased points below) ==")
			for _, e := range tc.TEMReport.Erased {
				fmt.Printf("  %s\n", e)
			}
			emit(h, tc.TEM, *lang)
		} else {
			fmt.Println("\n== TEM: nothing erasable ==")
		}
		if tc.TOM != nil {
			fmt.Printf("\n== TOM mutant (ill-typed): %s ==\n", tc.TOMReport)
			emit(h, tc.TOM, *lang)
		} else {
			fmt.Println("\n== TOM: no overwrite point ==")
		}
		if tc.REM != nil {
			fmt.Printf("\n== REM mutant (well-typed): %s ==\n", tc.REMReport)
			emit(h, tc.REM, *lang)
		} else {
			fmt.Println("\n== REM: no resolution site ==")
		}
	case "translate":
		if *lang == "ir" {
			fmt.Fprintln(os.Stderr, "translate needs -lang java|kotlin|groovy")
			os.Exit(2)
		}
		tc := h.GenerateTestCaseSeed(cfg.Seed)
		emit(h, tc.Program, *lang)
	case "fuzz":
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		c := h.FuzzCampaign(cfg.Programs)
		stopBeat := campaign.StartHeartbeat(os.Stderr, c.Status, cfg.Heartbeat)
		if err := c.Start(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			os.Exit(1)
		}
		report, err := c.Wait()
		stopBeat()
		findings := core.Findings(report)
		if report != nil && report.Recovery.Resumed {
			fmt.Printf("resumed: %d units restored (%d from snapshot prefix, %d journal records replayed)\n\n",
				report.Recovery.Recovered, report.Recovery.SnapshotSeq, report.Recovery.Replayed)
		}
		if err != nil {
			// Flush what the truncated run still found — findings, the
			// partial figure, the fault ledger, the stage stats — then
			// signal the incomplete campaign through the exit code. A
			// durable run has also just snapshotted this state.
			fmt.Fprintf(os.Stderr, "campaign aborted: %v\n", err)
			if report == nil {
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "partial report: %d distinct bugs before the abort\n", len(findings))
			for _, f := range findings {
				fmt.Printf("  %-22s %-8s %-6s found by %-9s (seed %d)\n",
					f.BugID, f.Compiler, f.Symptom, f.Technique, f.FirstSeed)
			}
			printDifferential(report)
			fmt.Println(report.Figure7c().String())
			if report.Faults.Faults() {
				fmt.Println(report.Faults)
			}
			if cfg.Stats && report.Stats != nil {
				fmt.Println("pipeline stages:")
				fmt.Println(report.Stats)
			}
			if cfg.StateDir != "" {
				fmt.Fprintf(os.Stderr, "state saved; resume with -state %s -resume\n", cfg.StateDir)
			}
			os.Exit(1)
		}
		fmt.Printf("campaign: %d programs (plus mutants), %d distinct bugs\n\n",
			cfg.Programs, len(findings))
		for _, f := range findings {
			fmt.Printf("  %-22s %-8s %-6s found by %-9s (seed %d)\n",
				f.BugID, f.Compiler, f.Symptom, f.Technique, f.FirstSeed)
		}
		fmt.Println()
		printDifferential(report)
		fmt.Println(report.Figure7c().String())
		if report.Faults.Faults() {
			fmt.Println(report.Faults)
		}
		if report.Corpus != nil {
			fmt.Printf("bug corpus: %d distinct bugs over %d campaigns\n",
				len(report.Corpus.Bugs), report.Corpus.Campaigns)
		}
		if cfg.Stats {
			fmt.Println("pipeline stages:")
			fmt.Println(report.Stats)
		}
	case "reduce":
		tc := h.GenerateTestCaseSeed(cfg.Seed)
		comp := h.Compilers()[0]
		verdict, res := h.Judge(oracle.Generated, comp, tc.Program)
		if verdict == oracle.Pass || len(res.Triggered) == 0 {
			fmt.Printf("seed %d triggers no %s bug; try another seed\n", cfg.Seed, comp.Name())
			return
		}
		bug := res.Triggered[0]
		fmt.Printf("reducing seed %d for %s (%d nodes)...\n", cfg.Seed, bug.ID, ir.CountNodes(tc.Program))
		reduced := h.ReduceFor(tc.Program, comp, bug.ID)
		fmt.Printf("reduced to %d nodes:\n\n", ir.CountNodes(reduced))
		emit(h, reduced, *lang)
	case "typegraph":
		tc := h.GenerateTestCaseSeed(cfg.Seed)
		a := typegraph.Analyze(tc.Program, types.NewBuiltins())
		for name, g := range a.BuildAll() {
			fmt.Printf("// method %s (%d nodes, %d edges, %d candidates)\n",
				name, g.NumNodes(), g.NumEdges(), len(g.Candidates))
			fmt.Println(g.Dot())
		}
	default:
		usage()
		os.Exit(2)
	}
}

func emit(h *core.Hephaestus, p *ir.Program, lang string) {
	if lang == "ir" {
		fmt.Println(ir.Print(p))
		return
	}
	src, err := h.Translate(p, lang)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(src)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hephaestus <generate|mutate|translate|fuzz|reduce|typegraph> [flags]`)
}

// printDifferential renders the differential oracle's findings when
// that mode is active: the distinct-disagreement summary and the
// cross-compiler conflict matrix.
func printDifferential(report *campaign.Report) {
	if report.Opts.Oracle != campaign.Differential {
		return
	}
	fmt.Printf("differential oracle: %d distinct disagreements\n\n", len(report.Disagreements))
	if len(report.Disagreements) > 0 {
		fmt.Println(report.DiffSummary())
		fmt.Println(report.DiffPairs())
	}
}
