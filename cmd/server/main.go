// Command server runs the multi-tenant fuzzing service: a long-running
// host that accepts campaign submissions over HTTP, schedules them onto
// a bounded slot pool, and keeps every campaign durable so the whole
// service can stop and resume without losing work.
//
//	server -addr :8080 -data DIR [-resume] [-max-running N]
//	       [-max-per-tenant N] [-submit-rate R] [-unit-rate R]
//	       [-max-programs N] [-max-workers N] [-heartbeat DUR]
//
// The HTTP API (tenant = X-Tenant header, default "default"):
//
//	POST /api/campaigns                 submit a campaign config (JSON)
//	GET  /api/campaigns                 list the tenant's campaigns
//	GET  /api/campaigns/{id}            inspect one campaign's status
//	POST /api/campaigns/{id}/pause      durably suspend (frees its slot)
//	POST /api/campaigns/{id}/resume     continue a paused campaign
//	POST /api/campaigns/{id}/cancel     stop it; partial report remains
//	GET  /api/campaigns/{id}/report     the deterministic report document
//	GET  /api/campaigns/{id}/events     SSE: trace events + heartbeats
//	GET  /api/campaigns/{id}/repro?bug= reduced repro for one found bug
//	GET  /api/corpus                    cross-campaign bug corpus
//	GET  /api/tenants                   known tenants
//	GET  /debug/tenants/{tenant}/...    per-tenant metrics + events
//	GET  /debug/server/...              server-level metrics
//	GET  /healthz                       liveness
//
// On SIGINT/SIGTERM the server drains: it stops admitting work, pauses
// every running campaign (each takes its final durable snapshot), and
// writes the manifest. Restarting with -resume re-hosts the suspended
// campaigns; POST .../resume continues each exactly where it stopped —
// reports are bit-for-bit identical to an uninterrupted run.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	data := flag.String("data", "", "data directory (campaign state, corpus, manifest); empty = in-memory")
	resume := flag.Bool("resume", false, "re-host suspended campaigns from the data directory's manifest")
	maxRunning := flag.Int("max-running", 4, "campaigns executing concurrently; the rest queue")
	maxPerTenant := flag.Int("max-per-tenant", 8, "live campaigns allowed per tenant")
	submitRate := flag.Float64("submit-rate", 5, "per-tenant campaign submissions per second (burst 10)")
	unitRate := flag.Float64("unit-rate", 0, "per-tenant pipeline units per second (0 = unlimited)")
	maxPrograms := flag.Int("max-programs", 100000, "largest accepted campaign, in programs")
	maxWorkers := flag.Int("max-workers", 0, "largest accepted per-campaign worker count (0 = unlimited)")
	heartbeat := flag.Duration("heartbeat", time.Second, "SSE heartbeat cadence")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "graceful shutdown budget before hard cancel")
	flag.Parse()

	s, err := server.New(server.Options{
		DataDir:      *data,
		MaxRunning:   *maxRunning,
		MaxPerTenant: *maxPerTenant,
		SubmitRate:   *submitRate,
		UnitRate:     *unitRate,
		MaxPrograms:  *maxPrograms,
		MaxWorkers:   *maxWorkers,
		Heartbeat:    *heartbeat,
		Resume:       *resume,
		Metrics:      metrics.NewRegistry(),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("fuzzing server listening on http://%s\n", ln.Addr())

	httpServer := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- httpServer.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		os.Exit(1)
	}

	// Graceful drain: stop accepting connections, suspend every running
	// campaign durably, write the manifest, then exit.
	fmt.Fprintln(os.Stderr, "draining: pausing live campaigns...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	httpServer.Shutdown(drainCtx) //nolint:errcheck // drain continues regardless
	if err := s.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "drained; resume with -resume")
}
