// Command worker hosts one fabric worker: an HTTP server that accepts
// shard leases from a fabric coordinator (cmd/campaign -shards) and
// runs each as a durable shard campaign — the full pipeline, harness,
// and journal stack — shipping the shard journal back for merge.
//
//	worker -addr 127.0.0.1:0 [-dir DIR] [-name NAME] [-debug-addr ADDR]
//	       [-chaos-seed N -chaos-kill R -chaos-stall R -chaos-slow R
//	        -chaos-slow-delay DUR -chaos-corrupt R]
//
// On startup it prints one announce line the spawner and CI parse:
//
//	worker NAME listening on http://ADDR pid=PID
//
// The chaos flags extend the campaign chaos injector to process
// granularity for soak testing: kill makes a drawn lease SIGKILL the
// whole process mid-shard, stall hangs its heartbeats, slow delays
// every unit admission (a straggler), and corrupt flips a byte in the
// shipped journal. Decisions are seeded per (shard, attempt), so a
// soak run is reproducible.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fabric"
	"repro/internal/metrics"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "HTTP listen address (:0 picks a free port)")
	dir := flag.String("dir", "", "scratch directory for shard state; empty = a fresh temp dir")
	name := flag.String("name", "", "worker name in ledgers and logs; empty = worker-PID")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and /events on this address")
	chaosSeed := flag.Int64("chaos-seed", 0, "seed for worker-level chaos decisions")
	chaosKill := flag.Float64("chaos-kill", 0, "probability a lease SIGKILLs this worker mid-shard")
	chaosStall := flag.Float64("chaos-stall", 0, "probability a lease's heartbeats stall")
	chaosSlow := flag.Float64("chaos-slow", 0, "probability a lease runs slow (straggler)")
	chaosSlowDelay := flag.Duration("chaos-slow-delay", 20*time.Millisecond, "per-unit delay of a slow lease")
	chaosCorrupt := flag.Float64("chaos-corrupt", 0, "probability a shipped journal has a byte flipped")
	flag.Parse()

	if *name == "" {
		*name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if *dir == "" {
		d, err := os.MkdirTemp("", "fabric-worker-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker: %v\n", err)
			os.Exit(1)
		}
		defer os.RemoveAll(d)
		*dir = d
	}

	var chaos *fabric.ChaosOptions
	if *chaosKill > 0 || *chaosStall > 0 || *chaosSlow > 0 || *chaosCorrupt > 0 {
		chaos = &fabric.ChaosOptions{
			Seed:        *chaosSeed,
			KillRate:    *chaosKill,
			StallRate:   *chaosStall,
			SlowRate:    *chaosSlow,
			SlowDelay:   *chaosSlowDelay,
			CorruptRate: *chaosCorrupt,
		}
	}

	reg := metrics.NewRegistry()
	trace := metrics.NewTrace(4096)
	if *debugAddr != "" {
		srv, err := metrics.Serve(*debugAddr, reg, trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker: debug server: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("debug server listening on http://%s\n", srv.Addr())
	}

	w := fabric.NewWorker(fabric.WorkerOptions{
		Dir:   *dir,
		Name:  *name,
		Chaos: chaos,
		// A chaos kill takes the whole process down, exactly like the
		// fault it simulates.
		Kill: func() {
			syscall.Kill(os.Getpid(), syscall.SIGKILL) //nolint:errcheck // no return from SIGKILL
		},
		Metrics: reg,
		Trace:   trace,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: %v\n", err)
		os.Exit(1)
	}
	// The announce line: the fabric spawner and CI's chaos soak parse
	// the address and pid from it.
	fmt.Printf("worker %s listening on http://%s pid=%d\n", *name, ln.Addr(), os.Getpid())

	httpServer := &http.Server{Handler: w}
	errc := make(chan error, 1)
	go func() { errc <- httpServer.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "worker: %v\n", err)
		os.Exit(1)
	}
	w.Close()
}
