// Findbugs: a miniature testing campaign, the paper's Section 4 workload.
//
// Runs the generator plus both mutations against the simulated javac,
// kotlinc, and groovyc; deduplicates the findings; prints each bug with
// its symptom and the technique that revealed it; and finishes with the
// Figure 7c attribution table and a reduced test case for the first
// groovyc find.
//
// Run with:
//
//	go run ./examples/findbugs
package main

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/ir"
)

func main() {
	h := core.New(core.Config{Seed: 0})

	const programs = 120
	fmt.Printf("fuzzing the simulated compilers with %d programs (plus TEM/TOM mutants)...\n\n", programs)
	findings, report := h.Fuzz(programs)

	sort.Slice(findings, func(i, j int) bool { return findings[i].BugID < findings[j].BugID })
	for _, f := range findings {
		fmt.Printf("  %-20s %-8s %-6s via %-9s (first seed %d)\n",
			f.BugID, f.Compiler, f.Symptom, f.Technique, f.FirstSeed)
	}
	fmt.Printf("\n%d distinct bugs found\n\n", len(findings))
	fmt.Println(report.Figure7c())

	// Reduce the first groovyc finding to a minimal trigger.
	for _, f := range findings {
		if f.Compiler != "groovyc" {
			continue
		}
		tc := h.GenerateTestCaseSeed(f.FirstSeed)
		var comp = h.Compilers()[0] // groovyc is first
		fmt.Printf("reducing the seed-%d trigger for %s: %d nodes", f.FirstSeed, f.BugID,
			ir.CountNodes(tc.Program))
		reduced := h.ReduceFor(tc.Program, comp, f.BugID)
		fmt.Printf(" -> %d nodes\n\n", ir.CountNodes(reduced))
		fmt.Println(ir.Print(reduced))
		break
	}
}
