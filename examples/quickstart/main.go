// Quickstart: the whole Hephaestus pipeline in one file.
//
// Generates a random well-typed program, shows the type erasure mutant
// (still well-typed, more inference work for the compiler) and the type
// overwriting mutant (ill-typed by construction), translates the program
// to Kotlin, and compiles everything with the three simulated compilers,
// judging each outcome against the test oracle.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/oracle"
)

func main() {
	h := core.New(core.Config{Seed: 7})

	// 1. Generate a well-typed program and its mutants.
	tc := h.GenerateTestCase()
	fmt.Printf("generated program: %d AST nodes\n", ir.CountNodes(tc.Program))
	if tc.TEM != nil {
		fmt.Printf("TEM erased %d type annotations (program is still well-typed)\n",
			len(tc.TEMReport.Erased))
	}
	if tc.TOM != nil {
		fmt.Printf("TOM injected a type error: %s\n", tc.TOMReport)
	}

	// 2. Translate to a concrete language.
	kotlin, err := h.Translate(tc.Program, "kotlin")
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n--- Kotlin translation (first lines) ---\n")
	printHead(kotlin, 12)

	// 3. Compile with each simulated compiler and consult the oracle.
	fmt.Printf("\n--- compilations ---\n")
	for _, comp := range h.Compilers() {
		verdict, res := h.Judge(oracle.Generated, comp, tc.Program)
		fmt.Printf("%-8s original: %-6s", comp.Name(), verdict)
		if len(res.Triggered) > 0 {
			fmt.Printf("  (triggered %s)", res.Triggered[0].ID)
		}
		fmt.Println()
		if tc.TOM != nil {
			verdict, res = h.Judge(oracle.TOMMutant, comp, tc.TOM)
			fmt.Printf("%-8s TOM:      %-6s", comp.Name(), verdict)
			if verdict == oracle.UnexpectedAcceptance {
				fmt.Printf("  (soundness bug %s!)", res.Triggered[0].ID)
			}
			fmt.Println()
		}
	}
}

func printHead(s string, n int) {
	count := 0
	start := 0
	for i, r := range s {
		if r == '\n' {
			count++
			if count == n {
				fmt.Println(s[start:i])
				fmt.Println("...")
				return
			}
		}
	}
	fmt.Println(s)
}
