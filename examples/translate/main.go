// Translate: batch generation and multi-language translation
// (Sections 3.5 and 3.6).
//
// Generates a batch of programs — each in its own package so the batch can
// be compiled in one compiler invocation without conflicting declarations
// — and renders every program in all three target languages, writing the
// sources under a temporary directory tree like the real tool's working
// directory.
//
// Run with:
//
//	go run ./examples/translate
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/generator"
	"repro/internal/translate"
)

func main() {
	g := generator.New(generator.DefaultConfig().WithSeed(2))
	batch := g.GenerateBatch(4)

	dir, err := os.MkdirTemp("", "hephaestus-batch-")
	if err != nil {
		panic(err)
	}
	fmt.Printf("writing %d programs x %d languages under %s\n\n", len(batch), len(translate.All()), dir)

	for _, tr := range translate.All() {
		langDir := filepath.Join(dir, tr.Name())
		if err := os.MkdirAll(langDir, 0o755); err != nil {
			panic(err)
		}
		for _, p := range batch {
			src := tr.Translate(p)
			name := filepath.Join(langDir, translate.FileName(tr, p))
			if err := os.WriteFile(name, []byte(src), 0o644); err != nil {
				panic(err)
			}
			fmt.Printf("  %-40s %5d bytes\n", name, len(src))
		}
	}

	// Show one program in all three languages side by side.
	fmt.Println("\n--- program pkg0, first 10 lines per language ---")
	for _, tr := range translate.All() {
		fmt.Printf("\n[%s]\n", tr.Name())
		src := tr.Translate(batch[0])
		lines := 0
		start := 0
		for i, r := range src {
			if r == '\n' {
				lines++
				if lines == 10 {
					fmt.Println(src[start:i])
					fmt.Println("...")
					break
				}
			}
		}
	}
}
