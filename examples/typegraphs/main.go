// Typegraphs: the paper's Figure 6 walked through in code.
//
// Builds the type graph of the running example program
//
//	open class A<T>
//	class B<T>(val f: A<T>) : A<T>()
//	fun m(): A<String> = B<String>(A<String>())
//
// prints it in Graphviz DOT form, evaluates the type preservation
// property on each erasure candidate (reproducing the paper's analysis:
// m.ret must stay, the two instantiations may go together), and prints
// the resulting TEM mutant. Then it demonstrates type relevance driving
// the TOM mutation on the same program.
//
// Run with:
//
//	go run ./examples/typegraphs
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/mutation"
	"repro/internal/typegraph"
	"repro/internal/types"
)

func main() {
	fig6 := corpus.PaperProgramByID("FIG-6")
	prog := fig6.Program
	b := types.NewBuiltins()

	fmt.Println("--- the Figure 6 program ---")
	fmt.Println(ir.Print(prog))

	a := typegraph.Analyze(prog, b)
	m := prog.Functions()[0]
	g := a.BuildGraph(m, nil)

	fmt.Println("--- its type graph (DOT) ---")
	fmt.Println(g.Dot())

	fmt.Println("--- type preservation per candidate ---")
	for _, c := range g.Candidates {
		fmt.Printf("  %-12s at %-22s preserves alone: %v\n",
			c.Kind, c.NodeID, typegraph.Preserves(g, c))
	}
	var news []*typegraph.Candidate
	for _, c := range g.Candidates {
		if c.Kind == typegraph.NewTypeArgs {
			news = append(news, c)
		}
	}
	if len(news) == 2 {
		fmt.Printf("  both instantiations together:            preserves: %v\n",
			typegraph.Preserves(g, news[0], news[1]))
		fmt.Printf("  all three candidates together:           preserves: %v\n",
			typegraph.Preserves(g, g.Candidates...))
	}

	fmt.Println("\n--- TEM applies the maximal preserving erasure ---")
	tem, report := mutation.TypeErasure(prog, b)
	for _, e := range report.Erased {
		fmt.Printf("  erased: %s\n", e)
	}
	fmt.Println(ir.Print(tem))

	fmt.Println("--- TOM overwrites a non-relevant type ---")
	tom, tomReport := mutation.TypeOverwriting(prog, b, rand.New(rand.NewSource(1)))
	if tom != nil {
		fmt.Printf("  %s\n\n", tomReport)
		fmt.Println(ir.Print(tom))
	}
}
