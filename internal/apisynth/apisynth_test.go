package apisynth_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/apisynth"
	"repro/internal/checker"
	"repro/internal/ir"
	"repro/internal/types"
)

// TestDefaultCorpusResolves pins that the built-in corpus (synthetic
// stdlib + mined paper-bug signatures) materializes into a well-typed
// skeleton a synthesizer can be built from.
func TestDefaultCorpusResolves(t *testing.T) {
	c := apisynth.DefaultCorpus()
	if len(c.Classes) == 0 || len(c.Funcs) == 0 {
		t.Fatalf("default corpus is degenerate: %d classes, %d funcs", len(c.Classes), len(c.Funcs))
	}
	if _, err := apisynth.NewSynthesizer(c); err != nil {
		t.Fatalf("NewSynthesizer(DefaultCorpus()) = %v", err)
	}
	// The stdlib must survive the validated merge intact: mined
	// signatures extend it, never displace it.
	names := c.Names()
	for _, want := range []string{"Box", "Pair", "IntBox", "Chain", "Stat", "Printer"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("stdlib class %s missing from default corpus %v", want, names)
		}
	}
}

// TestSynthesizedProgramsWellTyped is the core acceptance property:
// every synthesized program passes the reference checker and carries a
// non-trivial test body.
func TestSynthesizedProgramsWellTyped(t *testing.T) {
	s, err := apisynth.NewSynthesizer(apisynth.DefaultCorpus())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 200; seed++ {
		p := s.Program(seed)
		r := checker.Check(p, s.Builtins(), checker.Options{})
		if r.Bailout != nil {
			t.Fatalf("seed %d: checker bailout: %v", seed, r.Bailout)
		}
		if !r.OK() {
			t.Fatalf("seed %d: synthesized program ill-typed: %v\n%s", seed, r.Diags, ir.Print(p))
		}
		var test *ir.FuncDecl
		for _, fn := range p.Functions() {
			if fn.Name == "test" {
				test = fn
			}
		}
		if test == nil {
			t.Fatalf("seed %d: no test entry point", seed)
		}
		if body, ok := test.Body.(*ir.Block); !ok || len(body.Stmts) == 0 {
			t.Fatalf("seed %d: test body empty — repair loop dropped everything", seed)
		}
	}
}

// TestSynthesisDeterministic pins that synthesis is a pure function of
// (corpus, seed): two independently constructed synthesizers render
// byte-identical programs for the same seed, and distinct seeds
// actually vary.
func TestSynthesisDeterministic(t *testing.T) {
	s1, err := apisynth.NewSynthesizer(apisynth.DefaultCorpus())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := apisynth.NewSynthesizer(apisynth.DefaultCorpus())
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for seed := int64(0); seed < 64; seed++ {
		a, b := ir.Print(s1.Program(seed)), ir.Print(s2.Program(seed))
		if a != b {
			t.Fatalf("seed %d: programs differ across synthesizer instances:\n%s\n---\n%s", seed, a, b)
		}
		distinct[a] = true
	}
	if len(distinct) < 32 {
		t.Fatalf("only %d distinct programs from 64 seeds — synthesis barely varies", len(distinct))
	}
}

// TestCorpusJSONRoundTrip pins the serialization contract -synth-corpus
// depends on: a corpus written as JSON loads back with an identical
// fingerprint.
func TestCorpusJSONRoundTrip(t *testing.T) {
	c := apisynth.SyntheticStdlib()
	path := filepath.Join(t.TempDir(), "corpus.json")
	if err := os.WriteFile(path, []byte(c.Fingerprint()), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := apisynth.LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got.Fingerprint() != c.Fingerprint() {
		t.Fatalf("round-trip changed the corpus:\n%s\n---\n%s", got.Fingerprint(), c.Fingerprint())
	}
	if _, err := apisynth.NewSynthesizer(got); err != nil {
		t.Fatalf("reloaded corpus does not build: %v", err)
	}
}

// TestLoadFileRejectsInvalidCorpus pins that validation happens at load
// time — a corpus referencing unknown types is a configuration error
// surfaced before any campaign starts.
func TestLoadFileRejectsInvalidCorpus(t *testing.T) {
	cases := map[string]string{
		"unknown type":    `{"classes":[{"name":"C","fields":[{"name":"x","type":{"name":"Nope"}}]}]}`,
		"shadows builtin": `{"classes":[{"name":"Int"}]}`,
		"bad json":        `{"classes":`,
		"closed super":    `{"classes":[{"name":"A"},{"name":"B","super":{"name":"A"}}]}`,
	}
	for name, doc := range cases {
		path := filepath.Join(t.TempDir(), "bad.json")
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := apisynth.LoadFile(path); err == nil {
			t.Errorf("%s: LoadFile accepted an invalid corpus", name)
		}
	}
	if _, err := apisynth.LoadFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("LoadFile accepted a missing file")
	}
}

// TestExtractMinesConservatively pins Extract's contract: regular
// superless classes and expressible functions are mined, the test entry
// point and override-bearing members are skipped, and the result
// resolves stand-alone.
func TestExtractMinesConservatively(t *testing.T) {
	b := types.NewBuiltins()
	cls := &ir.ClassDecl{
		Name:   "Mined",
		Fields: []*ir.FieldDecl{{Name: "x", Type: b.Int}},
		Methods: []*ir.FuncDecl{
			{Name: "get", Ret: b.Int, Body: &ir.Const{Type: b.Int}},
		},
	}
	fn := &ir.FuncDecl{
		Name:   "twice",
		Params: []*ir.ParamDecl{{Name: "n", Type: b.Int}},
		Ret:    b.Int,
		Body:   &ir.Const{Type: b.Int},
	}
	testFn := &ir.FuncDecl{Name: "test", Ret: b.Unit, Body: &ir.Block{}}
	got := apisynth.Extract(&ir.Program{Decls: []ir.Decl{cls, fn, testFn}})
	if len(got.Classes) != 1 || got.Classes[0].Name != "Mined" {
		t.Fatalf("classes = %+v, want exactly Mined", got.Classes)
	}
	if len(got.Funcs) != 1 || got.Funcs[0].Name != "twice" {
		t.Fatalf("funcs = %+v, want exactly twice (test skipped)", got.Funcs)
	}
	if _, err := got.Resolve(types.NewBuiltins()); err != nil {
		t.Fatalf("extracted corpus does not resolve: %v", err)
	}
}

// TestMergeFirstWriterWins pins Merge's determinism contract: on a name
// collision the receiver's signature survives, and declaration order is
// preserved.
func TestMergeFirstWriterWins(t *testing.T) {
	a := apisynth.Corpus{Classes: []apisynth.ClassSig{
		{Name: "C", Fields: []apisynth.FieldSig{{Name: "a", Type: apisynth.T("Int")}}},
	}}
	b := apisynth.Corpus{Classes: []apisynth.ClassSig{
		{Name: "C", Fields: []apisynth.FieldSig{{Name: "b", Type: apisynth.T("String")}}},
		{Name: "D"},
	}}
	got := a.Merge(b)
	if len(got.Classes) != 2 || got.Classes[0].Name != "C" || got.Classes[1].Name != "D" {
		t.Fatalf("merged classes = %+v", got.Classes)
	}
	if got.Classes[0].Fields[0].Name != "a" {
		t.Fatalf("collision resolved wrong way: %+v", got.Classes[0])
	}
}

// TestMergeValidatedDropsPoison pins that a candidate whose signature
// references something outside the merged surface is dropped without
// poisoning the additions after it.
func TestMergeValidatedDropsPoison(t *testing.T) {
	base := apisynth.SyntheticStdlib()
	candidates := apisynth.Corpus{
		Classes: []apisynth.ClassSig{
			{Name: "Broken", Fields: []apisynth.FieldSig{{Name: "x", Type: apisynth.T("NoSuchType")}}},
			{Name: "Fine", Fields: []apisynth.FieldSig{{Name: "x", Type: apisynth.T("Int")}}},
		},
		Funcs: []apisynth.FuncSig{
			{Name: "brokenFn", Ret: apisynth.T("NoSuchType")},
			{Name: "fineFn", Ret: apisynth.T("Int")},
		},
	}
	got := base.MergeValidated(candidates)
	names := strings.Join(got.Names(), ",")
	if strings.Contains(names, "Broken") {
		t.Fatalf("poisoned class survived the validated merge: %s", names)
	}
	if !strings.Contains(names, "Fine") {
		t.Fatalf("valid class after the poisoned one was dropped: %s", names)
	}
	var haveFine, haveBroken bool
	for _, f := range got.Funcs {
		haveFine = haveFine || f.Name == "fineFn"
		haveBroken = haveBroken || f.Name == "brokenFn"
	}
	if haveBroken || !haveFine {
		t.Fatalf("func merge wrong: brokenFn=%v fineFn=%v", haveBroken, haveFine)
	}
	if _, err := got.Resolve(types.NewBuiltins()); err != nil {
		t.Fatalf("validated merge result does not resolve: %v", err)
	}
}

// TestSynthSeedCadence pins the seed-keyed schedule every shard and
// resumed run must agree on, including the disabled and every-unit
// edges.
func TestSynthSeedCadence(t *testing.T) {
	if (apisynth.Config{}).Enabled() {
		t.Error("zero config must be disabled")
	}
	if (apisynth.Config{Every: 0}).SynthSeed(7) {
		t.Error("disabled cadence claimed a seed")
	}
	every1 := apisynth.Config{Every: 1}
	for seed := int64(0); seed < 10; seed++ {
		if !every1.SynthSeed(seed) {
			t.Fatalf("every=1 must claim every seed, missed %d", seed)
		}
	}
	every4 := apisynth.Config{Every: 4}
	var claimed []int64
	for seed := int64(0); seed < 12; seed++ {
		if every4.SynthSeed(seed) {
			claimed = append(claimed, seed)
		}
	}
	want := []int64{3, 7, 11}
	if len(claimed) != len(want) {
		t.Fatalf("every=4 claimed %v, want %v", claimed, want)
	}
	for i := range want {
		if claimed[i] != want[i] {
			t.Fatalf("every=4 claimed %v, want %v", claimed, want)
		}
	}
}
