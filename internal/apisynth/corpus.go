// Package apisynth implements API-driven program synthesis — the
// authors' sequel direction (Thalia, arXiv:2311.04527). Instead of
// growing programs top-down from the type grammar like
// internal/generator, it starts from an API corpus (class, method,
// field, and generic-function signatures) and walks the signatures
// bottom-up, assembling well-typed receiver expressions and call
// chains against the API surface. That exercises the resolution and
// overload-selection paths a type checker spends its time on — method
// lookup over superclass chains with receiver substitution, explicit
// generic instantiation, bound conformance — which grammar-driven
// generation rarely reaches.
//
// Every synthesized program is verified against the reference checker
// before it leaves the package, and synthesis is a pure function of
// (corpus, seed), so campaigns stay byte-for-byte deterministic at any
// worker count, across fabric shards, and across kill/-resume.
package apisynth

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/ir"
	"repro/internal/types"
)

// TypeSig is a serializable type reference: a name plus optional type
// arguments. Names resolve, in order, against the type parameters in
// scope, the builtin universe (Int, String, Any, ...), and the
// corpus's own classes.
type TypeSig struct {
	Name string    `json:"name"`
	Args []TypeSig `json:"args,omitempty"`
}

// T is shorthand for a TypeSig leaf.
func T(name string, args ...TypeSig) TypeSig {
	return TypeSig{Name: name, Args: args}
}

// TypeParamSig declares one type parameter with an optional upper
// bound.
type TypeParamSig struct {
	Name  string   `json:"name"`
	Bound *TypeSig `json:"bound,omitempty"`
}

// ParamSig is one formal parameter of a method or function.
type ParamSig struct {
	Name string  `json:"name"`
	Type TypeSig `json:"type"`
}

// FieldSig is one class field (and, Kotlin primary-constructor style,
// one constructor parameter).
type FieldSig struct {
	Name string  `json:"name"`
	Type TypeSig `json:"type"`
}

// MethodSig is one method signature. Return types are always explicit:
// the corpus describes an API surface, not bodies to infer from.
type MethodSig struct {
	Name       string         `json:"name"`
	TypeParams []TypeParamSig `json:"typeParams,omitempty"`
	Params     []ParamSig     `json:"params,omitempty"`
	Ret        TypeSig        `json:"ret"`
}

// ClassSig is one API class: fields double as constructor parameters,
// Super (optional) names an open corpus class, possibly instantiated.
type ClassSig struct {
	Name       string         `json:"name"`
	TypeParams []TypeParamSig `json:"typeParams,omitempty"`
	Open       bool           `json:"open,omitempty"`
	Super      *TypeSig       `json:"super,omitempty"`
	Fields     []FieldSig     `json:"fields,omitempty"`
	Methods    []MethodSig    `json:"methods,omitempty"`
}

// FuncSig is one top-level function signature.
type FuncSig struct {
	Name       string         `json:"name"`
	TypeParams []TypeParamSig `json:"typeParams,omitempty"`
	Params     []ParamSig     `json:"params,omitempty"`
	Ret        TypeSig        `json:"ret"`
}

// Corpus is the API surface the synthesizer draws from. It is the
// JSON document -synth-corpus loads, and what Extract mines from
// existing programs.
type Corpus struct {
	Classes []ClassSig `json:"classes"`
	Funcs   []FuncSig  `json:"funcs"`
}

// Merge returns the union of c and other, first-writer-wins on class
// and function names, declaration order preserved (deterministic).
func (c Corpus) Merge(other Corpus) Corpus {
	out := Corpus{}
	seenC := map[string]bool{}
	for _, cs := range append(append([]ClassSig{}, c.Classes...), other.Classes...) {
		if seenC[cs.Name] {
			continue
		}
		seenC[cs.Name] = true
		out.Classes = append(out.Classes, cs)
	}
	seenF := map[string]bool{}
	for _, fs := range append(append([]FuncSig{}, c.Funcs...), other.Funcs...) {
		if seenF[fs.Name] {
			continue
		}
		seenF[fs.Name] = true
		out.Funcs = append(out.Funcs, fs)
	}
	return out
}

// LoadFile parses a JSON corpus document and validates that it
// resolves (every type name known, every super open).
func LoadFile(path string) (Corpus, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Corpus{}, fmt.Errorf("apisynth: %w", err)
	}
	var c Corpus
	if err := json.Unmarshal(data, &c); err != nil {
		return Corpus{}, fmt.Errorf("apisynth: parse %s: %w", path, err)
	}
	if _, err := c.Resolve(types.NewBuiltins()); err != nil {
		return Corpus{}, fmt.Errorf("apisynth: %s: %w", path, err)
	}
	return c, nil
}

// Resolved is a corpus materialized into IR declarations: class and
// function decls with stub bodies (val(t) constants of the declared
// return type), ready to prepend to every synthesized program. The
// decl pointers are shared across programs; they are never mutated
// after Resolve (checking is read-only, and Synthesized units are not
// mutable per the oracle's capability table).
type Resolved struct {
	Classes []*ir.ClassDecl
	Funcs   []*ir.FuncDecl
	// ClassSigs/FuncSigs are the source signatures, index-aligned.
	ClassSigs []ClassSig
	FuncSigs  []FuncSig
}

// Decls returns the materialized declarations in corpus order.
func (r *Resolved) Decls() []ir.Decl {
	out := make([]ir.Decl, 0, len(r.Classes)+len(r.Funcs))
	for _, c := range r.Classes {
		out = append(out, c)
	}
	for _, f := range r.Funcs {
		out = append(out, f)
	}
	return out
}

// resolver resolves TypeSigs against a scope of type parameters, the
// builtins, and the corpus's class shells.
type resolver struct {
	b       *types.Builtins
	classes map[string]*ir.ClassDecl
}

func (r *resolver) resolve(sig TypeSig, scope map[string]*types.Parameter) (types.Type, error) {
	if p, ok := scope[sig.Name]; ok {
		if len(sig.Args) > 0 {
			return nil, fmt.Errorf("type parameter %s cannot take arguments", sig.Name)
		}
		return p, nil
	}
	if t := r.b.ByName(sig.Name); t != nil {
		if len(sig.Args) > 0 {
			if sig.Name == "Array" {
				return r.applyCtor(r.b.Array, sig, scope)
			}
			return nil, fmt.Errorf("builtin %s cannot take arguments", sig.Name)
		}
		return t, nil
	}
	cls, ok := r.classes[sig.Name]
	if !ok {
		return nil, fmt.Errorf("unknown type %q", sig.Name)
	}
	switch t := cls.Type().(type) {
	case *types.Constructor:
		return r.applyCtor(t, sig, scope)
	default:
		if len(sig.Args) > 0 {
			return nil, fmt.Errorf("class %s is not parameterized", sig.Name)
		}
		return t, nil
	}
}

func (r *resolver) applyCtor(ctor *types.Constructor, sig TypeSig, scope map[string]*types.Parameter) (types.Type, error) {
	if len(sig.Args) != len(ctor.Params) {
		return nil, fmt.Errorf("%s expects %d type arguments, got %d", sig.Name, len(ctor.Params), len(sig.Args))
	}
	args := make([]types.Type, len(sig.Args))
	for i, a := range sig.Args {
		t, err := r.resolve(a, scope)
		if err != nil {
			return nil, err
		}
		args[i] = t
	}
	return ctor.Apply(args...), nil
}

// typeParams materializes a signature's type parameters, binding their
// bounds against the enclosing scope plus the parameters themselves
// (so F-bounded signatures resolve).
func (r *resolver) typeParams(owner string, sigs []TypeParamSig, outer map[string]*types.Parameter) ([]*types.Parameter, map[string]*types.Parameter, error) {
	scope := map[string]*types.Parameter{}
	for k, v := range outer {
		scope[k] = v
	}
	params := make([]*types.Parameter, len(sigs))
	for i, s := range sigs {
		p := types.NewParameter(owner, s.Name)
		params[i] = p
		scope[s.Name] = p
	}
	for i, s := range sigs {
		if s.Bound == nil {
			continue
		}
		bound, err := r.resolve(*s.Bound, scope)
		if err != nil {
			return nil, nil, fmt.Errorf("bound of %s.%s: %w", owner, s.Name, err)
		}
		params[i].Bound = bound
	}
	return params, scope, nil
}

// Resolve materializes the corpus into IR declarations. Two passes:
// class shells first (so forward and mutual references resolve), then
// member signatures. Method and function bodies are val(t) stubs of
// the declared return type — the corpus is an API surface, bodies
// only exist so the program is self-contained and checkable.
func (c Corpus) Resolve(b *types.Builtins) (*Resolved, error) {
	r := &resolver{b: b, classes: map[string]*ir.ClassDecl{}}
	res := &Resolved{ClassSigs: c.Classes, FuncSigs: c.Funcs}

	// Pass 1: shells with type parameters, so Type() is available.
	for _, cs := range c.Classes {
		if r.classes[cs.Name] != nil {
			return nil, fmt.Errorf("duplicate class %q", cs.Name)
		}
		if b.ByName(cs.Name) != nil {
			return nil, fmt.Errorf("class %q shadows a builtin", cs.Name)
		}
		cls := &ir.ClassDecl{Name: cs.Name, Open: cs.Open}
		params, _, err := r.typeParams(cs.Name, cs.TypeParams, nil)
		if err != nil {
			return nil, err
		}
		cls.TypeParams = params
		r.classes[cs.Name] = cls
		res.Classes = append(res.Classes, cls)
	}

	// Pass 2: supers, fields, methods.
	for i, cs := range c.Classes {
		cls := res.Classes[i]
		scope := map[string]*types.Parameter{}
		for _, p := range cls.TypeParams {
			scope[p.ParamName] = p
		}
		if cs.Super != nil {
			if err := r.resolveSuper(cls, *cs.Super, scope); err != nil {
				return nil, fmt.Errorf("class %s: %w", cs.Name, err)
			}
		}
		for _, fs := range cs.Fields {
			ft, err := r.resolve(fs.Type, scope)
			if err != nil {
				return nil, fmt.Errorf("field %s.%s: %w", cs.Name, fs.Name, err)
			}
			cls.Fields = append(cls.Fields, &ir.FieldDecl{Name: fs.Name, Type: ft})
		}
		for _, ms := range cs.Methods {
			m, err := r.method(cs.Name, ms, scope)
			if err != nil {
				return nil, fmt.Errorf("method %s.%s: %w", cs.Name, ms.Name, err)
			}
			cls.Methods = append(cls.Methods, m)
		}
	}
	for _, fs := range c.Funcs {
		f, err := r.method("", fs.asMethod(), nil)
		if err != nil {
			return nil, fmt.Errorf("func %s: %w", fs.Name, err)
		}
		res.Funcs = append(res.Funcs, f)
	}
	return res, nil
}

func (fs FuncSig) asMethod() MethodSig {
	return MethodSig{Name: fs.Name, TypeParams: fs.TypeParams, Params: fs.Params, Ret: fs.Ret}
}

// resolveSuper materializes `: Super<args>(ē)`: the super must be an
// open corpus class, and the constructor arguments are val(t) stubs of
// the super's own fields under the instantiation substitution.
func (r *resolver) resolveSuper(cls *ir.ClassDecl, sig TypeSig, scope map[string]*types.Parameter) error {
	super, ok := r.classes[sig.Name]
	if !ok {
		return fmt.Errorf("unknown superclass %q", sig.Name)
	}
	if !super.Open {
		return fmt.Errorf("superclass %s is not open", sig.Name)
	}
	st, err := r.resolve(sig, scope)
	if err != nil {
		return err
	}
	sigma := types.NewSubstitution()
	if app, ok := st.(*types.App); ok {
		for i, p := range app.Ctor.Params {
			sigma.Bind(p, app.Args[i])
		}
	}
	args := make([]ir.Expr, len(super.Fields))
	for i, f := range super.Fields {
		args[i] = &ir.Const{Type: sigma.Apply(f.Type)}
	}
	cls.Super = &ir.SuperRef{Type: st, Args: args}
	return nil
}

// method materializes one signature with a val(ret) stub body. owner
// is "" for top-level functions; method type-parameter identities are
// namespaced owner.name so class and method parameters never collide.
func (r *resolver) method(owner string, ms MethodSig, outer map[string]*types.Parameter) (*ir.FuncDecl, error) {
	ns := ms.Name
	if owner != "" {
		ns = owner + "." + ms.Name
	}
	params, scope, err := r.typeParams(ns, ms.TypeParams, outer)
	if err != nil {
		return nil, err
	}
	f := &ir.FuncDecl{Name: ms.Name, TypeParams: params}
	for _, ps := range ms.Params {
		pt, err := r.resolve(ps.Type, scope)
		if err != nil {
			return nil, fmt.Errorf("param %s: %w", ps.Name, err)
		}
		f.Params = append(f.Params, &ir.ParamDecl{Name: ps.Name, Type: pt})
	}
	ret, err := r.resolve(ms.Ret, scope)
	if err != nil {
		return nil, fmt.Errorf("return type: %w", err)
	}
	f.Ret = ret
	f.Body = &ir.Const{Type: ret}
	return f, nil
}

// Extract mines API signatures from existing programs — the seeding
// path ROADMAP item 3 names, turning internal/corpus's hand-written
// suite into synthesizer fuel. It is deliberately conservative: only
// regular, superless classes whose member types the TypeSig grammar
// can express (nominal types, builtins, type parameters) are taken;
// anything else (function types, projections, inherited members) is
// skipped rather than approximated. First-writer-wins on names across
// programs, so extraction order is part of the corpus identity.
func Extract(progs ...*ir.Program) Corpus {
	var c Corpus
	seenC := map[string]bool{}
	seenF := map[string]bool{}
	b := types.NewBuiltins()
	for _, p := range progs {
		for _, cls := range p.Classes() {
			if cls.Kind != ir.RegularClass || cls.Super != nil || seenC[cls.Name] || b.ByName(cls.Name) != nil {
				continue
			}
			if cs, ok := extractClass(cls); ok {
				seenC[cls.Name] = true
				c.Classes = append(c.Classes, cs)
			}
		}
		for _, fn := range p.Functions() {
			if seenF[fn.Name] || fn.Name == "test" {
				continue
			}
			if ms, ok := extractSig(fn); ok {
				seenF[fn.Name] = true
				c.Funcs = append(c.Funcs, FuncSig{
					Name: ms.Name, TypeParams: ms.TypeParams, Params: ms.Params, Ret: ms.Ret,
				})
			}
		}
	}
	return c
}

func extractClass(cls *ir.ClassDecl) (ClassSig, bool) {
	cs := ClassSig{Name: cls.Name, Open: cls.Open}
	var ok bool
	if cs.TypeParams, ok = extractTypeParams(cls.TypeParams); !ok {
		return ClassSig{}, false
	}
	for _, f := range cls.Fields {
		ts, ok := extractType(f.Type)
		if !ok {
			return ClassSig{}, false
		}
		cs.Fields = append(cs.Fields, FieldSig{Name: f.Name, Type: ts})
	}
	for _, m := range cls.Methods {
		ms, ok := extractSig(m)
		if !ok {
			// Skip the member, keep the class: a partial API view is
			// still a valid (smaller) API.
			continue
		}
		cs.Methods = append(cs.Methods, ms)
	}
	return cs, true
}

func extractSig(f *ir.FuncDecl) (MethodSig, bool) {
	if f.Ret == nil || f.Override {
		return MethodSig{}, false
	}
	ms := MethodSig{Name: f.Name}
	var ok bool
	if ms.TypeParams, ok = extractTypeParams(f.TypeParams); !ok {
		return MethodSig{}, false
	}
	for _, p := range f.Params {
		ts, tok := extractType(p.Type)
		if !tok {
			return MethodSig{}, false
		}
		ms.Params = append(ms.Params, ParamSig{Name: p.Name, Type: ts})
	}
	if ms.Ret, ok = extractType(f.Ret); !ok {
		return MethodSig{}, false
	}
	return ms, true
}

func extractTypeParams(ps []*types.Parameter) ([]TypeParamSig, bool) {
	var out []TypeParamSig
	for _, p := range ps {
		if p.Var != types.Invariant {
			return nil, false
		}
		tp := TypeParamSig{Name: p.ParamName}
		if p.Bound != nil {
			bs, ok := extractType(p.Bound)
			if !ok {
				return nil, false
			}
			tp.Bound = &bs
		}
		out = append(out, tp)
	}
	return out, true
}

// extractType maps a types.Type back to a TypeSig, when expressible.
func extractType(t types.Type) (TypeSig, bool) {
	switch tt := t.(type) {
	case types.Top:
		return T("Any"), true
	case types.Bottom:
		return T("Nothing"), true
	case *types.Simple:
		return T(tt.TypeName), true
	case *types.Parameter:
		return T(tt.ParamName), true
	case *types.App:
		sig := TypeSig{Name: tt.Ctor.TypeName}
		for _, a := range tt.Args {
			as, ok := extractType(a)
			if !ok {
				return TypeSig{}, false
			}
			sig.Args = append(sig.Args, as)
		}
		return sig, true
	default:
		return TypeSig{}, false
	}
}

// Fingerprint returns a stable JSON rendering of the corpus, used by
// tests and available for diagnostics; classes and functions keep
// declaration order (order is semantic: first-writer-wins merging).
func (c Corpus) Fingerprint() string {
	data, _ := json.Marshal(c)
	return string(data)
}

// Names returns the sorted class names, for diagnostics.
func (c Corpus) Names() []string {
	out := make([]string, 0, len(c.Classes))
	for _, cs := range c.Classes {
		out = append(out, cs.Name)
	}
	sort.Strings(out)
	return out
}
