package apisynth

import (
	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/types"
)

// SyntheticStdlib returns the built-in API corpus: a small
// collections-flavoured surface designed to concentrate on what
// grammar-driven generation under-exercises — overload sets that force
// resolution to rank candidates, generic methods whose explicit
// instantiation hits the bound-conformance check, inheritance from
// instantiated generic classes so member lookup walks the superclass
// chain under a receiver substitution, and bounded type parameters.
func SyntheticStdlib() Corpus {
	return Corpus{
		Classes: []ClassSig{
			{
				Name: "Box", Open: true,
				TypeParams: []TypeParamSig{{Name: "T"}},
				Fields:     []FieldSig{{Name: "value", Type: T("T")}},
				Methods: []MethodSig{
					{Name: "get", Ret: T("T")},
					{Name: "swap", Params: []ParamSig{{Name: "other", Type: T("Box", T("T"))}}, Ret: T("Box", T("T"))},
					{Name: "zip", TypeParams: []TypeParamSig{{Name: "U"}},
						Params: []ParamSig{{Name: "other", Type: T("Box", T("U"))}},
						Ret:    T("Pair", T("T"), T("U"))},
					{Name: "rebox", TypeParams: []TypeParamSig{{Name: "U"}},
						Params: []ParamSig{{Name: "seed", Type: T("U")}},
						Ret:    T("Box", T("U"))},
				},
			},
			{
				Name:       "Pair",
				TypeParams: []TypeParamSig{{Name: "A"}, {Name: "B"}},
				Fields:     []FieldSig{{Name: "first", Type: T("A")}, {Name: "second", Type: T("B")}},
				Methods: []MethodSig{
					{Name: "flip", Ret: T("Pair", T("B"), T("A"))},
					{Name: "withFirst", TypeParams: []TypeParamSig{{Name: "C"}},
						Params: []ParamSig{{Name: "c", Type: T("C")}},
						Ret:    T("Pair", T("C"), T("B"))},
					{Name: "left", Ret: T("A")},
					{Name: "right", Ret: T("B")},
				},
			},
			{
				// Inherits from an instantiated generic class: member
				// lookup on IntBox walks into Box under [T ↦ Int].
				Name: "IntBox", Super: ref(T("Box", T("Int"))),
				Fields: []FieldSig{{Name: "label", Type: T("String")}},
				Methods: []MethodSig{
					{Name: "tag", Ret: T("String")},
					{Name: "boxed", Ret: T("Box", T("Int"))},
				},
			},
			{
				Name: "Chain", Open: true,
				TypeParams: []TypeParamSig{{Name: "T"}},
				Fields:     []FieldSig{{Name: "head", Type: T("T")}},
				Methods: []MethodSig{
					{Name: "first", Ret: T("T")},
					{Name: "append", Params: []ParamSig{{Name: "x", Type: T("T")}}, Ret: T("Chain", T("T"))},
					{Name: "concat", Params: []ParamSig{{Name: "other", Type: T("Chain", T("T"))}}, Ret: T("Chain", T("T"))},
					{Name: "mapTo", TypeParams: []TypeParamSig{{Name: "U"}},
						Params: []ParamSig{{Name: "seed", Type: T("U")}},
						Ret:    T("Chain", T("U"))},
					{Name: "pairUp", Ret: T("Pair", T("T"), T("T"))},
				},
			},
			{
				// Bounded type parameter: instantiating Stat, and calling
				// widen, must pass the bound-conformance check.
				Name:       "Stat",
				TypeParams: []TypeParamSig{{Name: "T", Bound: boundRef(T("Number"))}},
				Fields:     []FieldSig{{Name: "sample", Type: T("T")}},
				Methods: []MethodSig{
					{Name: "sum", Ret: T("T")},
					{Name: "widen", TypeParams: []TypeParamSig{{Name: "U", Bound: boundRef(T("Number"))}},
						Params: []ParamSig{{Name: "u", Type: T("U")}},
						Ret:    T("Stat", T("U"))},
					{Name: "count", Ret: T("Int")},
				},
			},
			{
				// An overload set: resolution has to rank the candidates
				// by parameter type, including the Any catch-all.
				Name: "Printer",
				Methods: []MethodSig{
					{Name: "show", Params: []ParamSig{{Name: "x", Type: T("Int")}}, Ret: T("String")},
					{Name: "show", Params: []ParamSig{{Name: "x", Type: T("String")}}, Ret: T("String")},
					{Name: "show", Params: []ParamSig{{Name: "x", Type: T("Boolean")}}, Ret: T("String")},
					{Name: "show", Params: []ParamSig{{Name: "x", Type: T("Any")}}, Ret: T("String")},
					{Name: "render", TypeParams: []TypeParamSig{{Name: "T"}},
						Params: []ParamSig{{Name: "x", Type: T("Box", T("T"))}},
						Ret:    T("String")},
				},
			},
		},
		Funcs: []FuncSig{
			{Name: "identity", TypeParams: []TypeParamSig{{Name: "T"}},
				Params: []ParamSig{{Name: "x", Type: T("T")}}, Ret: T("T")},
			{Name: "pairOf", TypeParams: []TypeParamSig{{Name: "A"}, {Name: "B"}},
				Params: []ParamSig{{Name: "a", Type: T("A")}, {Name: "b", Type: T("B")}},
				Ret:    T("Pair", T("A"), T("B"))},
			{Name: "boxOf", TypeParams: []TypeParamSig{{Name: "T"}},
				Params: []ParamSig{{Name: "x", Type: T("T")}}, Ret: T("Box", T("T"))},
			{Name: "firstOf", TypeParams: []TypeParamSig{{Name: "T"}},
				Params: []ParamSig{{Name: "c", Type: T("Chain", T("T"))}}, Ret: T("T")},
			{Name: "choose", Params: []ParamSig{
				{Name: "cond", Type: T("Boolean")}, {Name: "a", Type: T("Int")}, {Name: "b", Type: T("Int")},
			}, Ret: T("Int")},
		},
	}
}

func ref(t TypeSig) *TypeSig      { return &t }
func boundRef(t TypeSig) *TypeSig { return &t }

// DefaultCorpus is the corpus a -synth campaign uses when -synth-corpus
// is not given: the synthetic stdlib, extended with every signature
// that can be conservatively mined from the paper-bug regression
// programs in internal/corpus. The merge is validated class-by-class
// so a mined signature that references something outside the merged
// surface is dropped rather than poisoning the corpus.
func DefaultCorpus() Corpus {
	var progs []*ir.Program
	for _, p := range corpus.PaperPrograms() {
		if p.WellTyped {
			progs = append(progs, p.Program)
		}
	}
	return SyntheticStdlib().MergeValidated(Extract(progs...))
}

// MergeValidated merges other into c, keeping only additions under
// which the combined corpus still resolves. Deterministic: candidates
// are tried in declaration order, first-writer-wins on names.
func (c Corpus) MergeValidated(other Corpus) Corpus {
	b := types.NewBuiltins()
	out := c
	have := map[string]bool{}
	for _, cs := range c.Classes {
		have[cs.Name] = true
	}
	for _, cs := range other.Classes {
		if have[cs.Name] {
			continue
		}
		trial := out
		trial.Classes = append(append([]ClassSig{}, out.Classes...), cs)
		if _, err := trial.Resolve(b); err != nil {
			continue
		}
		have[cs.Name] = true
		out = trial
	}
	haveF := map[string]bool{}
	for _, fs := range c.Funcs {
		haveF[fs.Name] = true
	}
	for _, fs := range other.Funcs {
		if haveF[fs.Name] {
			continue
		}
		trial := out
		trial.Funcs = append(append([]FuncSig{}, out.Funcs...), fs)
		if _, err := trial.Resolve(b); err != nil {
			continue
		}
		haveF[fs.Name] = true
		out = trial
	}
	return out
}
