package apisynth

import (
	"fmt"
	"math/rand"

	"repro/internal/checker"
	"repro/internal/ir"
	"repro/internal/types"
)

// Config controls API-driven synthesis inside a campaign. It is
// JSON-tagged so fabric leases and server submissions ship it
// verbatim, and it folds into the campaign fingerprint (a different
// cadence or corpus is a different campaign).
type Config struct {
	// Every is the synthesis cadence: unit seeds with
	// seed % Every == Every-1 are synthesized instead of generated
	// (the same seed-keyed scheme as the stress generator, so every
	// shard, worker, and resumed run agrees on which units are
	// synthesized without coordination). 1 synthesizes every unit;
	// 0 disables synthesis.
	Every int `json:"every"`
	// Corpus is the path of a JSON API-corpus document; empty means
	// the built-in DefaultCorpus (synthetic stdlib + signatures mined
	// from the paper-bug regression programs).
	Corpus string `json:"corpus,omitempty"`
}

// Enabled reports whether any units will be synthesized.
func (c Config) Enabled() bool { return c.Every > 0 }

// SynthSeed reports whether the unit with this seed is synthesized.
// Pure in the seed: shards and resumes must agree.
func (c Config) SynthSeed(seed int64) bool {
	if c.Every <= 0 {
		return false
	}
	e := uint64(c.Every)
	return uint64(seed)%e == e-1
}

// Load resolves the configured corpus: the file when a path is given,
// the built-in default otherwise.
func (c Config) Load() (Corpus, error) {
	if c.Corpus == "" {
		return DefaultCorpus(), nil
	}
	return LoadFile(c.Corpus)
}

// Synthesizer builds well-typed programs bottom-up against one
// resolved API corpus. Safe for concurrent use: synthesis state is
// per-call, and the shared corpus declarations are never mutated.
type Synthesizer struct {
	b      *types.Builtins
	res    *Resolved
	env    *checker.Env
	decls  []ir.Decl
	ground []types.Type
}

// NewSynthesizer resolves and verifies the corpus: the materialized
// API skeleton must itself pass the reference checker, so every
// synthesized program starts from a well-typed base.
func NewSynthesizer(c Corpus) (*Synthesizer, error) {
	b := types.NewBuiltins()
	res, err := c.Resolve(b)
	if err != nil {
		return nil, err
	}
	s := &Synthesizer{b: b, res: res, decls: res.Decls()}
	skeleton := &ir.Program{Decls: s.decls}
	if r := checker.Check(skeleton, b, checker.Options{}); !r.OK() {
		return nil, fmt.Errorf("apisynth: corpus skeleton does not type-check: %v", r.Diags[0])
	}
	s.env = checker.NewEnv(skeleton, b)
	s.ground = append([]types.Type{}, b.Defaultable()...)
	return s, nil
}

// Builtins exposes the type universe the corpus was resolved against.
func (s *Synthesizer) Builtins() *types.Builtins { return s.b }

// Program synthesizes one program for the seed: the corpus
// declarations plus a test entry point whose body instantiates API
// classes and chains method, function, and field lookups over them.
// Deterministic in the seed, and always well-typed: the assembled
// candidate is verified against the reference checker, and any
// statement the checker rejects (a construction-logic gap, not a
// compiler-under-test) is deterministically dropped from the end.
func (s *Synthesizer) Program(seed int64) *ir.Program {
	rng := rand.New(rand.NewSource(seed ^ 0x517e57a1))
	st := &synthState{s: s, rng: rng}
	st.seedPool()
	n := 3 + rng.Intn(6)
	for i := 0; i < n; i++ {
		st.step()
	}
	test := &ir.FuncDecl{Name: "test", Ret: s.b.Unit, Body: &ir.Block{Stmts: st.stmts}}
	prog := &ir.Program{Decls: append(append([]ir.Decl{}, s.decls...), test)}
	for !s.check(prog) && len(st.stmts) > 0 {
		st.stmts = st.stmts[:len(st.stmts)-1]
		test.Body = &ir.Block{Stmts: st.stmts}
	}
	return prog
}

func (s *Synthesizer) check(p *ir.Program) bool {
	r := checker.Check(p, s.b, checker.Options{})
	return r.Bailout == nil && r.OK()
}

// synthState is the per-program assembly state: the statement list and
// the pool of typed locals later steps draw receivers and arguments
// from.
type synthState struct {
	s     *Synthesizer
	rng   *rand.Rand
	pool  []poolVar
	stmt  int
	stmts []ir.Node
}

type poolVar struct {
	name string
	typ  types.Type
}

// declare appends `var vN[: t] = init` and adds vN to the pool. The
// declared type is made explicit or left for inference at random —
// both paths are checker surface worth exercising.
func (st *synthState) declare(t types.Type, init ir.Expr, forceExplicit bool) {
	name := fmt.Sprintf("v%d", st.stmt)
	st.stmt++
	var declType types.Type
	if forceExplicit || st.rng.Intn(2) == 0 {
		declType = t
	}
	st.stmts = append(st.stmts, &ir.VarDecl{Name: name, DeclType: declType, Init: init})
	st.pool = append(st.pool, poolVar{name: name, typ: t})
}

// seedPool declares a few builtin-typed locals (argument fodder) and
// one or two API-class instantiations so every later step has
// receivers to work with.
func (st *synthState) seedPool() {
	for i := 0; i < 2; i++ {
		t := st.s.ground[st.rng.Intn(len(st.s.ground))]
		st.declare(t, &ir.Const{Type: t}, false)
	}
	for i := 0; i < 2; i++ {
		st.instantiate()
	}
}

// step performs one synthesis move, biased toward call chains (the
// paths the corpus exists to exercise).
func (st *synthState) step() {
	switch st.rng.Intn(10) {
	case 0, 1:
		st.instantiate()
	case 2:
		st.fieldAccess()
	case 3, 4:
		st.funcCall()
	default:
		st.methodCall()
	}
}

// instantiate picks a corpus class, grounds its type parameters
// (respecting bounds), and declares a local holding `new C<t̄>(ē)`.
// When every type parameter is mentioned in a field, the diamond form
// is sometimes emitted instead, exercising constructor-argument
// inference.
func (st *synthState) instantiate() {
	s := st.s
	if len(s.res.Classes) == 0 {
		return
	}
	cls := s.res.Classes[st.rng.Intn(len(s.res.Classes))]
	sigma, typeArgs, ok := st.groundParams(cls.TypeParams, nil)
	if !ok {
		return
	}
	var instType types.Type
	switch t := cls.Type().(type) {
	case *types.Constructor:
		instType = t.Apply(typeArgs...)
	default:
		instType = t
	}
	ctorParams := s.env.ConstructorParams(cls, sigma)
	args := make([]ir.Expr, len(ctorParams))
	exact := true
	for i, pt := range ctorParams {
		var wasExact bool
		args[i], wasExact = st.arg(pt)
		exact = exact && wasExact
	}
	nw := &ir.New{Class: cls.Type(), TypeArgs: typeArgs, Args: args}
	forceExplicit := false
	if len(typeArgs) > 0 && exact && st.allParamsInFields(cls) && st.rng.Intn(3) == 0 {
		// Diamond form: `new C<>(ē)` — the arguments (exact-typed by
		// construction) drive inference.
		nw.TypeArgs = nil
		forceExplicit = true
	}
	st.declare(instType, nw, forceExplicit)
}

// allParamsInFields reports whether every class type parameter occurs
// in some field type, i.e. diamond inference has a constraint for each.
func (st *synthState) allParamsInFields(cls *ir.ClassDecl) bool {
	for _, p := range cls.TypeParams {
		found := false
		for _, f := range cls.Fields {
			if types.ContainsParameter(f.Type, p) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return len(cls.TypeParams) > 0
}

// methodCall picks a pool receiver, enumerates its callable methods
// (superclass chain, receiver substitution applied), grounds the
// chosen method's own type parameters, and declares a local holding
// the call's result.
func (st *synthState) methodCall() {
	recv, ok := st.pickReceiver()
	if !ok {
		return
	}
	sigs := st.s.env.MethodsOf(recv.typ)
	if len(sigs) == 0 {
		return
	}
	name := sigs[st.rng.Intn(len(sigs))].Name
	cands := st.s.env.MethodCandidates(recv.typ, name)
	if len(cands) == 0 {
		return
	}
	sig := cands[st.rng.Intn(len(cands))]
	st.emitCall(&ir.VarRef{Name: recv.name}, sig)
}

// funcCall invokes a top-level corpus function the same way.
func (st *synthState) funcCall() {
	s := st.s
	if len(s.res.Funcs) == 0 {
		return
	}
	f := s.res.Funcs[st.rng.Intn(len(s.res.Funcs))]
	sig, ok := s.env.TopLevelSig(f.Name)
	if !ok {
		return
	}
	st.emitCall(nil, sig)
}

// emitCall grounds sig's type parameters, assembles arguments from the
// pool (or val(t) constants), and declares the result. Generic calls
// are mostly explicit (`m<t̄>(ē)` — the bound-conformance path); when
// every type parameter is inferable from an argument position and the
// arguments are exact, the type arguments are sometimes omitted to
// exercise inference instead.
func (st *synthState) emitCall(recv ir.Expr, sig checker.MethodSig) {
	msigma, typeArgs, ok := st.groundParams(sig.TypeParams, sig.Sigma)
	if !ok {
		return
	}
	args := make([]ir.Expr, len(sig.Params))
	exact := true
	for i, pt := range sig.Params {
		t := msigma.Apply(pt)
		if types.HasFreeParameters(t) {
			return
		}
		var wasExact bool
		// Inferable calls need exact argument types, so inference
		// reconstructs precisely the instantiation we predicted.
		args[i], wasExact = st.arg(t)
		exact = exact && wasExact
	}
	ret := msigma.Apply(sig.Ret)
	if ret == nil || types.HasFreeParameters(ret) {
		return
	}
	call := &ir.Call{Recv: recv, Name: sig.Name, TypeArgs: typeArgs, Args: args}
	forceExplicit := false
	if len(typeArgs) > 0 && exact && st.paramsInferable(sig) && st.rng.Intn(3) == 0 {
		call.TypeArgs = nil
		forceExplicit = true
	}
	if ret.Equal(st.s.b.Unit) {
		st.stmts = append(st.stmts, call)
		return
	}
	st.declare(ret, call, forceExplicit)
}

// paramsInferable reports whether every method type parameter occurs
// in some value-parameter position.
func (st *synthState) paramsInferable(sig checker.MethodSig) bool {
	for _, tp := range sig.TypeParams {
		found := false
		for _, pt := range sig.Params {
			if types.ContainsParameter(pt, tp) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// fieldAccess reads a field off a pool receiver.
func (st *synthState) fieldAccess() {
	recv, ok := st.pickReceiver()
	if !ok {
		return
	}
	fields := st.s.env.FieldsOf(recv.typ)
	if len(fields) == 0 {
		return
	}
	f := fields[st.rng.Intn(len(fields))]
	if types.HasFreeParameters(f.Type) {
		return
	}
	st.declare(f.Type, &ir.FieldAccess{Recv: &ir.VarRef{Name: recv.name}, Field: f.Name}, false)
}

// pickReceiver draws a pool variable of a corpus-class type.
func (st *synthState) pickReceiver() (poolVar, bool) {
	var cands []poolVar
	for _, v := range st.pool {
		switch v.typ.(type) {
		case *types.Simple, *types.App:
			if st.s.env.Class(v.typ.Name()) != nil {
				cands = append(cands, v)
			}
		}
	}
	if len(cands) == 0 {
		return poolVar{}, false
	}
	return cands[st.rng.Intn(len(cands))], true
}

// arg builds an expression of (a subtype of) t: a pool variable when
// one conforms, else val(t). The second result reports whether the
// expression's static type is exactly t (needed for inference-driven
// call forms).
func (st *synthState) arg(t types.Type) (ir.Expr, bool) {
	var cands []poolVar
	for _, v := range st.pool {
		if types.IsSubtype(v.typ, t) {
			cands = append(cands, v)
		}
	}
	if len(cands) > 0 && st.rng.Intn(3) != 0 {
		v := cands[st.rng.Intn(len(cands))]
		return &ir.VarRef{Name: v.name}, v.typ.Equal(t)
	}
	return &ir.Const{Type: t}, true
}

// groundParams grounds one signature's type parameters: for each, a
// ground candidate satisfying the (substituted) upper bound is chosen
// at random. outer is the receiver substitution, applied to bounds
// that mention the receiver's class parameters. Fails (ok=false) when
// some parameter has no satisfying ground candidate.
func (st *synthState) groundParams(params []*types.Parameter, outer *types.Substitution) (*types.Substitution, []types.Type, bool) {
	sigma := types.NewSubstitution()
	if len(params) == 0 {
		return sigma, nil, true
	}
	typeArgs := make([]types.Type, 0, len(params))
	for _, p := range params {
		bound := p.UpperBound()
		if outer != nil {
			bound = outer.Apply(bound)
		}
		bound = sigma.Apply(bound)
		if types.HasFreeParameters(bound) {
			return nil, nil, false
		}
		var cands []types.Type
		for _, g := range st.s.ground {
			if types.IsSubtype(g, bound) {
				cands = append(cands, g)
			}
		}
		if len(cands) == 0 {
			return nil, nil, false
		}
		t := cands[st.rng.Intn(len(cands))]
		sigma.Bind(p, t)
		typeArgs = append(typeArgs, t)
	}
	return sigma, typeArgs, true
}
