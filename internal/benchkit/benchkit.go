// Package benchkit holds the component benchmark tier as plain functions
// usable both from `go test -bench` (bench_test.go delegates here) and from
// cmd/bench, which runs them programmatically via testing.Benchmark to emit
// machine-readable BENCH_*.json files and diff them against prior runs.
//
// Each Spec measures one pipeline stage in isolation: generation, the
// reference checker, type-graph construction, the two mutations, each
// language translator, unification, subtyping, and batch compilation —
// the hot paths the performance pass (see DESIGN.md "Performance")
// optimizes and the regression harness guards.
package benchkit

import (
	"math/rand"
	"testing"

	"repro/internal/checker"
	"repro/internal/compilers"
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/mutation"
	"repro/internal/translate"
	"repro/internal/typegraph"
	"repro/internal/types"
)

// Spec names one component benchmark. Names use the testing convention
// ("TypeCheck", "Translate/kotlin") so output lines match `go test -bench`.
type Spec struct {
	Name string
	Fn   func(b *testing.B)
}

// Specs returns the component benchmark tier in stable order.
func Specs() []Spec {
	return []Spec{
		{"Generation", Generation},
		{"TypeCheck", TypeCheck},
		{"TypeGraph", TypeGraph},
		{"TEM", TEM},
		{"TOM", TOM},
		{"Translate/kotlin", TranslateLang(translate.NewKotlin())},
		{"Translate/java", TranslateLang(translate.NewJava())},
		{"Translate/groovy", TranslateLang(translate.NewGroovy())},
		{"Unify", Unify},
		{"Subtype", Subtype},
		{"SubtypeReflexive", SubtypeReflexive},
		{"BatchCompilation", BatchCompilation},
	}
}

// Get returns the named Spec's body, or nil.
func Get(name string) func(b *testing.B) {
	for _, s := range Specs() {
		if s.Name == name {
			return s.Fn
		}
	}
	return nil
}

// benchPrograms generates a fixed rotation of programs outside the timed
// region.
func benchPrograms(n int) []*ir.Program {
	progs := make([]*ir.Program, n)
	for i := range progs {
		progs[i] = generator.New(generator.DefaultConfig().WithSeed(int64(i))).Generate()
	}
	return progs
}

// Generation measures raw program generation throughput.
func Generation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		generator.New(generator.DefaultConfig().WithSeed(int64(i))).Generate()
	}
}

// TypeCheck measures the reference checker on generated programs.
func TypeCheck(b *testing.B) {
	progs := benchPrograms(8)
	bt := types.NewBuiltins()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checker.Check(progs[i%len(progs)], bt, checker.Options{})
	}
}

// TypeGraph measures type-graph construction for all methods of a program
// (the analysis underlying both mutations).
func TypeGraph(b *testing.B) {
	prog := generator.New(generator.DefaultConfig().WithSeed(1)).Generate()
	bt := types.NewBuiltins()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := typegraph.Analyze(prog, bt)
		a.BuildAll()
	}
}

// TEM measures the full type erasure mutation.
func TEM(b *testing.B) {
	progs := benchPrograms(8)
	bt := types.NewBuiltins()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mutation.TypeErasure(progs[i%len(progs)], bt)
	}
}

// TOM measures the full type overwriting mutation.
func TOM(b *testing.B) {
	progs := benchPrograms(8)
	bt := types.NewBuiltins()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mutation.TypeOverwriting(progs[i%len(progs)], bt, rand.New(rand.NewSource(int64(i))))
	}
}

// TranslateLang measures one language translator.
func TranslateLang(tr translate.Translator) func(b *testing.B) {
	return func(b *testing.B) {
		prog := generator.New(generator.DefaultConfig().WithSeed(2)).Generate()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Translate(prog)
		}
	}
}

// Unify measures type unification on hierarchy-related parameterized types
// (Definition 3.2).
func Unify(b *testing.B) {
	bt := types.NewBuiltins()
	aT := types.NewParameter("A", "T")
	ctorA := types.NewConstructor("A", []*types.Parameter{aT}, nil)
	bT := types.NewParameter("B", "T")
	ctorB := types.NewConstructor("B", []*types.Parameter{bT}, ctorA.Apply(bT))
	tp := types.NewParameter("m", "T")
	left := ctorB.Apply(ctorA.Apply(tp))
	right := ctorA.Apply(ctorA.Apply(bt.Long))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		types.Unify(left, right)
	}
}

// Subtype measures the subtyping relation on distinct nested generics:
// A<A<A<Int>>> <: A<out A<out A<out Number>>> exercises projection
// containment at every nesting level (A's parameter is invariant, so the
// out-projection is required per level for the relation to hold). An
// earlier version of this benchmark passed the same type on both sides,
// which short-circuits in Equal and measured nothing; SubtypeReflexive
// keeps that case under its honest name.
func Subtype(b *testing.B) {
	bt := types.NewBuiltins()
	aT := types.NewParameter("A", "T")
	ctorA := types.NewConstructor("A", []*types.Parameter{aT}, nil)
	sub := ctorA.Apply(ctorA.Apply(ctorA.Apply(bt.Int)))
	out := func(t types.Type) types.Type { return &types.Projection{Var: types.Covariant, Bound: t} }
	sup := ctorA.Apply(out(ctorA.Apply(out(ctorA.Apply(out(bt.Number))))))
	if !types.IsSubtype(sub, sup) {
		b.Fatal("benchmark fixture: expected A<A<A<Int>>> <: A<out A<out A<out Number>>>")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		types.IsSubtype(sub, sup)
	}
}

// SubtypeReflexive measures the reflexive fast path IsSubtype(t, t).
func SubtypeReflexive(b *testing.B) {
	bt := types.NewBuiltins()
	aT := types.NewParameter("A", "T")
	ctorA := types.NewConstructor("A", []*types.Parameter{aT}, nil)
	sub := ctorA.Apply(ctorA.Apply(ctorA.Apply(bt.Int)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		types.IsSubtype(sub, sub)
	}
}

// BatchCompilation measures the Section 3.5 batching pipeline: generating
// and compiling a batch of packaged programs.
func BatchCompilation(b *testing.B) {
	comp := compilers.Groovyc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := generator.New(generator.DefaultConfig().WithSeed(int64(i)))
		for _, p := range g.GenerateBatch(10) {
			comp.Compile(p, nil)
		}
	}
}
