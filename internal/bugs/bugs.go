// Package bugs defines the seeded bug catalogs of the simulated
// javac/kotlinc/groovyc compilers.
//
// The paper's campaign measures how many real bugs each technique finds in
// real compilers. Offline, the closest synthetic equivalent (see
// DESIGN.md) is a ground-truth catalog: each simulated compiler carries a
// set of injected bugs whose population statistics — per-compiler totals,
// status mix, symptom mix, technique attribution, affected-version
// spans — mirror the paper's Figures 7a/7b/7c and 8. A bug fires when its
// structural trigger matches the input program; firing flips the
// compiler's verdict (reject a well-typed program → unexpected
// compile-time error, accept an ill-typed one → unexpected runtime
// behaviour, or crash).
//
// Triggers are deterministic functions of a program feature signature, so
// campaigns are reproducible, different programs discover different bugs,
// and — crucially — the technique gating matches the paper's findings:
// inference bugs require omitted type information (only TEM mutants have
// any), soundness bugs require ill-typed input (only TOM produces it),
// and generator bugs fire on fully annotated well-typed programs.
package bugs

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/types"
)

// Symptom is a bug's manifestation (Figure 7b).
type Symptom int

const (
	// UCTE: unexpected compile-time error — a well-formed program is
	// rejected.
	UCTE Symptom = iota
	// URB: unexpected runtime behaviour — an ill-typed program is
	// accepted and miscompiles.
	URB
	// Crash: the compiler throws an internal error.
	Crash
)

func (s Symptom) String() string {
	switch s {
	case UCTE:
		return "UCTE"
	case URB:
		return "URB"
	default:
		return "Crash"
	}
}

// Status is a bug report's lifecycle state (Figure 7a).
type Status int

// The five states of Figure 7a.
const (
	Reported Status = iota
	Confirmed
	Fixed
	Duplicate
	WontFix
)

func (s Status) String() string {
	switch s {
	case Reported:
		return "Reported"
	case Confirmed:
		return "Confirmed"
	case Fixed:
		return "Fixed"
	case Duplicate:
		return "Duplicate"
	default:
		return "Won't fix"
	}
}

// Category classifies the root-cause area (Section 4.3: 147 typing bugs,
// 2 parser/lexer bugs, 7 back-end bugs).
type Category int

const (
	// Typing: static typing and semantic analysis procedures.
	Typing Category = iota
	// Parser: lexing/parsing defects.
	Parser
	// Backend: code generation and optimization defects.
	Backend
)

func (c Category) String() string {
	switch c {
	case Typing:
		return "typing"
	case Parser:
		return "parser"
	default:
		return "backend"
	}
}

// TriggerClass gates a bug on the kind of evidence that can reveal it —
// the mechanism behind Figure 7c's technique attribution.
type TriggerClass int

const (
	// GeneratorClass bugs fire on fully annotated well-typed programs.
	GeneratorClass TriggerClass = iota
	// InferenceClass bugs fire only when the program omits type
	// information (diamonds, inferred variables or returns) — TEM's
	// domain.
	InferenceClass
	// SoundnessClass bugs fire only on ill-typed programs — TOM's domain.
	SoundnessClass
	// CombinedClass bugs need both omitted types and a type error
	// (TOM applied on top of TEM).
	CombinedClass
)

func (c TriggerClass) String() string {
	switch c {
	case GeneratorClass:
		return "generator"
	case InferenceClass:
		return "inference"
	case SoundnessClass:
		return "soundness"
	default:
		return "combined"
	}
}

// Bug is one seeded compiler defect.
type Bug struct {
	ID       string
	Compiler string
	Symptom  Symptom
	Status   Status
	Category Category
	Class    TriggerClass
	// Component is the compiler package the bug lives in (used by the
	// RQ3 coverage breakdown narrative), e.g. "resolve", "types", "stc".
	Component string

	// Version span: indices into the compiler's stable-version list.
	// FirstVersion == len(versions) means the bug only exists on master
	// (a recent regression, Figure 8's "master only" bar).
	FirstVersion int
	LastVersion  int // inclusive; the master index for open bugs

	// slot/modulo define the deterministic trigger: the bug fires on a
	// program whose feature signature satisfies sig % modulo == slot and
	// whose evidence kind matches Class.
	slot   uint64
	modulo uint64
}

func (b *Bug) String() string {
	return fmt.Sprintf("%s [%s/%s/%s]", b.ID, b.Symptom, b.Class, b.Status)
}

// AffectsVersion reports whether the bug exists at the given stable
// version index (or master = len(stable versions)).
func (b *Bug) AffectsVersion(v int) bool {
	return v >= b.FirstVersion && v <= b.LastVersion
}

// AffectedStableCount returns how many stable versions the bug affects,
// given the number of stable versions (master excluded).
func (b *Bug) AffectedStableCount(stable int) int {
	lo, hi := b.FirstVersion, b.LastVersion
	if hi >= stable {
		hi = stable - 1
	}
	if lo >= stable || hi < lo {
		return 0
	}
	return hi - lo + 1
}

// Evidence describes what a candidate test program proves about the
// compiler: whether it is well-typed per the reference checker and whether
// it omits type information.
type Evidence struct {
	WellTyped    bool
	OmittedTypes bool
	Signature    uint64
}

// Fires reports whether the bug triggers on the given evidence.
func (b *Bug) Fires(e Evidence) bool {
	switch b.Class {
	case GeneratorClass:
		if !e.WellTyped {
			return false
		}
	case InferenceClass:
		if !e.WellTyped || !e.OmittedTypes {
			return false
		}
	case SoundnessClass:
		if e.WellTyped {
			return false
		}
	case CombinedClass:
		if e.WellTyped || !e.OmittedTypes {
			return false
		}
	}
	return e.Signature%b.modulo == b.slot
}

// Diagnostic renders the compiler message the bug produces when it fires.
func (b *Bug) Diagnostic() string {
	switch b.Symptom {
	case UCTE:
		return fmt.Sprintf("%s: type mismatch: inferred type does not conform to expected type [%s]", b.Compiler, b.ID)
	case URB:
		return fmt.Sprintf("%s: (silently miscompiled) [%s]", b.Compiler, b.ID)
	default:
		return fmt.Sprintf("%s: internal error: exception in %s phase [%s]", b.Compiler, b.Component, b.ID)
	}
}

// Signature computes the deterministic feature signature of a program:
// an FNV-1a hash over the structural feature string of every node. Two
// programs differing in any type annotation, declaration shape, or
// expression form have different signatures with high probability.
func Signature(p *ir.Program) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	write := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	ir.Walk(p, func(n ir.Node) bool {
		switch t := n.(type) {
		case *ir.ClassDecl:
			write("C" + t.Name)
			for _, tp := range t.TypeParams {
				write("P" + tp.ParamName + boundString(tp))
			}
		case *ir.FuncDecl:
			write("F" + t.Name + typeString(t.Ret))
		case *ir.VarDecl:
			write("V" + t.Name + typeString(t.DeclType))
		case *ir.New:
			write("N" + t.Class.Name())
			for _, a := range t.TypeArgs {
				write(typeString(a))
			}
		case *ir.Call:
			write("L" + t.Name)
			for _, a := range t.TypeArgs {
				write(typeString(a))
			}
		case *ir.FieldAccess:
			write("A" + t.Field)
		case *ir.BinaryOp:
			write("B" + t.Op)
		case *ir.Lambda:
			write("Y")
		case *ir.If:
			write("I")
		case *ir.Cast:
			write("X" + typeString(t.Target))
		case *ir.Is:
			write("S" + typeString(t.Target))
		}
		return true
	})
	return h
}

func typeString(t types.Type) string {
	if t == nil {
		return "_"
	}
	return t.String()
}

func boundString(p *types.Parameter) string {
	if p.Bound == nil {
		return ""
	}
	return ":" + p.Bound.String()
}

// OmitsTypes reports whether the program leaves any type information to
// inference: untyped variables, diamond constructor calls, calls without
// explicit type arguments to parameterized callees, or functions without
// declared return types. Programs straight out of the generator are fully
// annotated; TEM mutants are not.
func OmitsTypes(p *ir.Program) bool {
	omitted := false
	ir.Walk(p, func(n ir.Node) bool {
		switch t := n.(type) {
		case *ir.VarDecl:
			if t.DeclType == nil {
				omitted = true
			}
		case *ir.New:
			if t.TypeArgs == nil {
				if _, param := t.Class.(*types.Constructor); param {
					omitted = true
				}
			}
		case *ir.FuncDecl:
			if t.Ret == nil {
				omitted = true
			}
		}
		return !omitted
	})
	return omitted
}
