package bugs

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/types"
)

func TestSpecsMatchPaperTotals(t *testing.T) {
	cases := []struct {
		spec  CatalogSpec
		total int
	}{
		{GroovycSpec(), 113},
		{KotlincSpec(), 32},
		{JavacSpec(), 11},
	}
	sum := 0
	for _, c := range cases {
		if got := c.spec.Total(); got != c.total {
			t.Errorf("%s total = %d, want %d", c.spec.Compiler, got, c.total)
		}
		if got := c.spec.UCTE + c.spec.URB + c.spec.Crash; got != c.total {
			t.Errorf("%s symptom sum = %d, want %d", c.spec.Compiler, got, c.total)
		}
		if got := c.spec.Generator + c.spec.TEM + c.spec.TOM + c.spec.Combined; got != c.total {
			t.Errorf("%s class sum = %d, want %d", c.spec.Compiler, got, c.total)
		}
		sum += c.spec.Total()
	}
	if sum != 156 {
		t.Errorf("campaign total = %d, want the paper's 156", sum)
	}
}

func TestPaperAggregateRows(t *testing.T) {
	// Figure 7a bottom rows: 52 confirmed-not-fixed... the table reports
	// Confirmed 52, Fixed 85, Duplicate 7, Won't fix 9, Reported 3.
	g, k, j := GroovycSpec(), KotlincSpec(), JavacSpec()
	if got := g.Confirmed + k.Confirmed + j.Confirmed; got != 52 {
		t.Errorf("confirmed = %d, want 52", got)
	}
	if got := g.Fixed + k.Fixed + j.Fixed; got != 85 {
		t.Errorf("fixed = %d, want 85", got)
	}
	if got := g.Duplicate + k.Duplicate + j.Duplicate; got != 7 {
		t.Errorf("duplicates = %d, want 7", got)
	}
	if got := g.WontFix + k.WontFix + j.WontFix; got != 9 {
		t.Errorf("won't fix = %d, want 9", got)
	}
	// Figure 7b totals: UCTE 104, URB 22, Crash 30.
	if got := g.UCTE + k.UCTE + j.UCTE; got != 104 {
		t.Errorf("UCTE = %d, want 104", got)
	}
	if got := g.URB + k.URB + j.URB; got != 22 {
		t.Errorf("URB = %d, want 22", got)
	}
	if got := g.Crash + k.Crash + j.Crash; got != 30 {
		t.Errorf("crash = %d, want 30", got)
	}
	// Figure 7c totals: Generator 78, TEM 52, TOM 24, TEM&TOM 2.
	if got := g.Generator + k.Generator + j.Generator; got != 78 {
		t.Errorf("generator = %d, want 78", got)
	}
	if got := g.TEM + k.TEM + j.TEM; got != 52 {
		t.Errorf("TEM = %d, want 52", got)
	}
	if got := g.TOM + k.TOM + j.TOM; got != 24 {
		t.Errorf("TOM = %d, want 24", got)
	}
	if got := g.Combined + k.Combined + j.Combined; got != 2 {
		t.Errorf("TEM&TOM = %d, want 2", got)
	}
}

func TestBuildProducesConsistentCatalog(t *testing.T) {
	for _, spec := range []CatalogSpec{GroovycSpec(), KotlincSpec(), JavacSpec()} {
		catalog := Build(spec)
		if len(catalog) != spec.Total() {
			t.Fatalf("%s: catalog size %d, want %d", spec.Compiler, len(catalog), spec.Total())
		}
		seen := map[string]bool{}
		classSlots := map[TriggerClass]map[uint64]bool{}
		for _, b := range catalog {
			if seen[b.ID] {
				t.Errorf("duplicate bug ID %s", b.ID)
			}
			seen[b.ID] = true
			if b.Compiler != spec.Compiler {
				t.Errorf("%s: wrong compiler %s", b.ID, b.Compiler)
			}
			// Symptom/class compatibility: URB needs ill-typed evidence,
			// UCTE well-typed.
			illTyped := b.Class == SoundnessClass || b.Class == CombinedClass
			if b.Symptom == URB && !illTyped {
				t.Errorf("%s: URB bug with class %s cannot fire", b.ID, b.Class)
			}
			if b.Symptom == UCTE && illTyped {
				t.Errorf("%s: UCTE bug with class %s cannot fire", b.ID, b.Class)
			}
			// Distinct slots within a class make bugs independently
			// discoverable.
			if classSlots[b.Class] == nil {
				classSlots[b.Class] = map[uint64]bool{}
			}
			if classSlots[b.Class][b.slot] {
				t.Errorf("%s: duplicate slot %d in class %s", b.ID, b.slot, b.Class)
			}
			classSlots[b.Class][b.slot] = true
			if b.slot >= b.modulo {
				t.Errorf("%s: slot %d out of range of modulo %d", b.ID, b.slot, b.modulo)
			}
			// Version sanity.
			if b.FirstVersion < 0 || b.FirstVersion > spec.StableVersions ||
				b.LastVersion < b.FirstVersion {
				t.Errorf("%s: bad version span [%d, %d]", b.ID, b.FirstVersion, b.LastVersion)
			}
		}
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	a := Build(GroovycSpec())
	b := Build(GroovycSpec())
	for i := range a {
		if a[i].String() != b[i].String() || a[i].slot != b[i].slot {
			t.Fatalf("catalog construction must be deterministic (bug %d)", i)
		}
	}
}

func TestVersionSpanAccounting(t *testing.T) {
	spec := GroovycSpec()
	catalog := Build(spec)
	all, masterOnly := 0, 0
	for _, b := range catalog {
		n := b.AffectedStableCount(spec.StableVersions)
		switch {
		case n == spec.StableVersions:
			all++
		case n == 0:
			masterOnly++
			if !b.AffectsVersion(spec.StableVersions) {
				t.Errorf("%s affects nothing at all", b.ID)
			}
		}
	}
	if all != spec.AllVersions {
		t.Errorf("all-versions bugs = %d, want %d", all, spec.AllVersions)
	}
	if masterOnly != spec.MasterOnly {
		t.Errorf("master-only bugs = %d, want %d", masterOnly, spec.MasterOnly)
	}
}

func TestTriggerGating(t *testing.T) {
	spec := GroovycSpec()
	catalog := Build(spec)
	for _, b := range catalog {
		// Pick evidence with this bug's exact slot.
		hit := Evidence{Signature: b.slot, WellTyped: true, OmittedTypes: false}
		switch b.Class {
		case GeneratorClass:
			if !b.Fires(hit) {
				t.Errorf("%s should fire on well-typed evidence", b.ID)
			}
			if b.Fires(Evidence{Signature: b.slot, WellTyped: false}) {
				t.Errorf("%s must not fire on ill-typed evidence", b.ID)
			}
		case InferenceClass:
			if b.Fires(hit) {
				t.Errorf("%s needs omitted types", b.ID)
			}
			if !b.Fires(Evidence{Signature: b.slot, WellTyped: true, OmittedTypes: true}) {
				t.Errorf("%s should fire with omitted types", b.ID)
			}
		case SoundnessClass:
			if b.Fires(hit) {
				t.Errorf("%s needs ill-typed evidence", b.ID)
			}
			if !b.Fires(Evidence{Signature: b.slot, WellTyped: false}) {
				t.Errorf("%s should fire on ill-typed evidence", b.ID)
			}
		case CombinedClass:
			if !b.Fires(Evidence{Signature: b.slot, WellTyped: false, OmittedTypes: true}) {
				t.Errorf("%s should fire on ill-typed evidence with omissions", b.ID)
			}
			if b.Fires(Evidence{Signature: b.slot, WellTyped: false, OmittedTypes: false}) {
				t.Errorf("%s needs omitted types too", b.ID)
			}
		}
		// Wrong slot never fires.
		if b.Fires(Evidence{Signature: b.slot + 1, WellTyped: true, OmittedTypes: true}) &&
			b.modulo > 1 {
			t.Errorf("%s fired on a wrong slot", b.ID)
		}
	}
}

func TestSignatureStability(t *testing.T) {
	b := types.NewBuiltins()
	mk := func(declType types.Type) *ir.Program {
		return &ir.Program{Decls: []ir.Decl{&ir.FuncDecl{
			Name: "f", Ret: b.Unit, Body: &ir.Block{Stmts: []ir.Node{
				&ir.VarDecl{Name: "x", DeclType: declType, Init: &ir.Const{Type: b.Int}},
			}},
		}}}
	}
	p1, p2 := mk(b.Int), mk(b.Int)
	if Signature(p1) != Signature(p2) {
		t.Error("identical programs must have identical signatures")
	}
	if Signature(mk(b.Int)) == Signature(mk(nil)) {
		t.Error("erasing an annotation must change the signature")
	}
}

func TestOmitsTypes(t *testing.T) {
	b := types.NewBuiltins()
	full := &ir.Program{Decls: []ir.Decl{&ir.FuncDecl{
		Name: "f", Ret: b.Int, Body: &ir.Const{Type: b.Int},
	}}}
	if OmitsTypes(full) {
		t.Error("fully annotated program reported as omitting types")
	}
	erased := &ir.Program{Decls: []ir.Decl{&ir.FuncDecl{
		Name: "f", Body: &ir.Const{Type: b.Int},
	}}}
	if !OmitsTypes(erased) {
		t.Error("missing return type not detected")
	}
}
