package bugs

import (
	"fmt"
	"math/rand"
)

// CatalogSpec describes a compiler's seeded bug population. The shipped
// specs reproduce the per-compiler rows of Figures 7a, 7b, 7c and the
// version-span histogram of Figure 8.
type CatalogSpec struct {
	Compiler string
	// StableVersions is the number of released versions; index
	// StableVersions denotes the development master.
	StableVersions int

	// Status mix (Figure 7a).
	Reported, Confirmed, Fixed, Duplicate, WontFix int
	// Symptom mix (Figure 7b). UCTE+URB+Crash must equal the total.
	UCTE, URB, Crash int
	// Technique mix (Figure 7c). Generator+TEM+TOM+Combined = total.
	Generator, TEM, TOM, Combined int
	// Version-span mix (Figure 8): how many bugs affect all stable
	// versions, only master, and spans within the bucket ranges.
	AllVersions, MasterOnly                  int
	Span1to3, Span4to6, Span7to9, Span10to12 int
	// Category mix (Section 4.3).
	ParserBugs, BackendBugs int

	// DiscoveryModulo controls how often bugs fire: each program triggers
	// a given class's bug with probability classSize/DiscoveryModulo.
	// Larger values model a compiler that is harder to break (javac).
	DiscoveryModulo uint64
}

// Total returns the catalog size.
func (s CatalogSpec) Total() int {
	return s.Reported + s.Confirmed + s.Fixed + s.Duplicate + s.WontFix
}

// GroovycSpec is the groovyc column of Figures 7a/7b/7c and 8.
func GroovycSpec() CatalogSpec {
	return CatalogSpec{
		Compiler:       "groovyc",
		StableVersions: 16,
		Reported:       0, Confirmed: 34, Fixed: 74, Duplicate: 3, WontFix: 2,
		UCTE: 80, URB: 19, Crash: 14,
		Generator: 55, TEM: 37, TOM: 20, Combined: 1,
		AllVersions: 33, MasterOnly: 56,
		Span1to3: 8, Span4to6: 6, Span7to9: 4, Span10to12: 6,
		ParserBugs: 1, BackendBugs: 4,
		DiscoveryModulo: 256,
	}
}

// KotlincSpec is the kotlinc column.
func KotlincSpec() CatalogSpec {
	return CatalogSpec{
		Compiler:       "kotlinc",
		StableVersions: 13,
		Reported:       3, Confirmed: 15, Fixed: 9, Duplicate: 3, WontFix: 2,
		UCTE: 17, URB: 3, Crash: 12,
		Generator: 16, TEM: 12, TOM: 3, Combined: 1,
		AllVersions: 13, MasterOnly: 5,
		Span1to3: 5, Span4to6: 4, Span7to9: 3, Span10to12: 2,
		ParserBugs: 1, BackendBugs: 2,
		DiscoveryModulo: 640,
	}
}

// JavacSpec is the javac column.
func JavacSpec() CatalogSpec {
	return CatalogSpec{
		Compiler:       "javac",
		StableVersions: 10,
		Reported:       0, Confirmed: 3, Fixed: 2, Duplicate: 1, WontFix: 5,
		UCTE: 7, URB: 0, Crash: 4,
		Generator: 7, TEM: 3, TOM: 1, Combined: 0,
		AllVersions: 2, MasterOnly: 2,
		Span1to3: 3, Span4to6: 2, Span7to9: 1, Span10to12: 1,
		ParserBugs: 0, BackendBugs: 1,
		DiscoveryModulo: 1536,
	}
}

// Build materializes a spec into a concrete catalog. The construction is
// deterministic: attribute lists (statuses, symptoms, classes, spans,
// categories) are expanded in order and zipped together with a fixed
// shuffle, and each bug receives a distinct trigger slot in its class.
func Build(spec CatalogSpec) []*Bug {
	n := spec.Total()
	statuses := expand([]int{spec.Reported, spec.Confirmed, spec.Fixed, spec.Duplicate, spec.WontFix},
		[]Status{Reported, Confirmed, Fixed, Duplicate, WontFix})
	symptoms := expand([]int{spec.UCTE, spec.URB, spec.Crash}, []Symptom{UCTE, URB, Crash})
	classes := expand([]int{spec.Generator, spec.TEM, spec.TOM, spec.Combined},
		[]TriggerClass{GeneratorClass, InferenceClass, SoundnessClass, CombinedClass})
	if len(statuses) != n || len(symptoms) != n || len(classes) != n {
		panic(fmt.Sprintf("bugs: inconsistent %s spec: %d statuses, %d symptoms, %d classes, total %d",
			spec.Compiler, len(statuses), len(symptoms), len(classes), n))
	}

	// Symptoms must be compatible with trigger classes: URB bugs need
	// ill-typed input (soundness/combined); soundness bugs that are not
	// URB are crashes on ill-typed input. Re-align deterministically.
	rng := rand.New(rand.NewSource(int64(len(spec.Compiler)) * 7919))
	rng.Shuffle(n, func(i, j int) { statuses[i], statuses[j] = statuses[j], statuses[i] })
	alignSymptoms(symptoms, classes)

	spans := buildSpans(spec, rng)
	categories := buildCategories(spec, n, rng)

	bugsOut := make([]*Bug, n)
	classCounter := map[TriggerClass]uint64{}
	classTotal := map[TriggerClass]uint64{}
	for _, cl := range classes {
		classTotal[cl]++
	}
	components := []string{"resolve", "infer", "types", "stc", "code"}
	for i := 0; i < n; i++ {
		cl := classes[i]
		slot := classCounter[cl]
		classCounter[cl]++
		modulo := spec.DiscoveryModulo
		if total := classTotal[cl]; total > 0 && modulo < total*2 {
			modulo = total * 2
		}
		comp := components[i%len(components)]
		if categories[i] == Parser {
			comp = "parser"
		}
		if categories[i] == Backend {
			comp = "codegen"
		}
		bugsOut[i] = &Bug{
			ID:           fmt.Sprintf("%s-SIM-%04d", upper(spec.Compiler), i+1),
			Compiler:     spec.Compiler,
			Symptom:      symptoms[i],
			Status:       statuses[i],
			Category:     categories[i],
			Class:        cl,
			Component:    comp,
			FirstVersion: spans[i][0],
			LastVersion:  spans[i][1],
			slot:         slot,
			modulo:       modulo,
		}
	}
	return bugsOut
}

func expand[T any](counts []int, values []T) []T {
	var out []T
	for i, c := range counts {
		for j := 0; j < c; j++ {
			out = append(out, values[i])
		}
	}
	return out
}

// alignSymptoms pairs symptoms with compatible trigger classes: URB
// requires an ill-typed trigger (soundness/combined); UCTE requires a
// well-typed one (generator/inference); crashes go with either.
func alignSymptoms(symptoms []Symptom, classes []TriggerClass) {
	illTyped := func(c TriggerClass) bool {
		return c == SoundnessClass || c == CombinedClass
	}
	for i := range symptoms {
		ok := symptoms[i] == Crash ||
			(symptoms[i] == URB && illTyped(classes[i])) ||
			(symptoms[i] == UCTE && !illTyped(classes[i]))
		if ok {
			continue
		}
		// Find a compatible partner to swap with.
		for j := i + 1; j < len(symptoms); j++ {
			jOK := symptoms[j] == Crash ||
				(symptoms[j] == URB && illTyped(classes[j])) ||
				(symptoms[j] == UCTE && !illTyped(classes[j]))
			iAfter := symptoms[j] == Crash ||
				(symptoms[j] == URB && illTyped(classes[i])) ||
				(symptoms[j] == UCTE && !illTyped(classes[i]))
			jAfter := symptoms[i] == Crash ||
				(symptoms[i] == URB && illTyped(classes[j])) ||
				(symptoms[i] == UCTE && !illTyped(classes[j]))
			if !jOK && iAfter && jAfter || (iAfter && jAfter) {
				symptoms[i], symptoms[j] = symptoms[j], symptoms[i]
				break
			}
		}
	}
}

// buildSpans assigns each bug its affected-version range per the Figure 8
// histogram buckets.
func buildSpans(spec CatalogSpec, rng *rand.Rand) [][2]int {
	n := spec.Total()
	master := spec.StableVersions
	var spans [][2]int
	add := func(count, lo, hi int) {
		for i := 0; i < count; i++ {
			width := lo
			if hi > lo {
				width = lo + rng.Intn(hi-lo+1)
			}
			if width > spec.StableVersions {
				width = spec.StableVersions
			}
			first := spec.StableVersions - width
			spans = append(spans, [2]int{first, master})
		}
	}
	add(spec.AllVersions, spec.StableVersions, spec.StableVersions)
	for i := 0; i < spec.MasterOnly; i++ {
		spans = append(spans, [2]int{master, master})
	}
	add(spec.Span1to3, 1, 3)
	add(spec.Span4to6, 4, 6)
	add(spec.Span7to9, 7, 9)
	add(spec.Span10to12, 10, 12)
	for len(spans) < n {
		spans = append(spans, [2]int{master, master})
	}
	spans = spans[:n]
	rng.Shuffle(n, func(i, j int) { spans[i], spans[j] = spans[j], spans[i] })
	return spans
}

func buildCategories(spec CatalogSpec, n int, rng *rand.Rand) []Category {
	cats := make([]Category, n)
	for i := range cats {
		cats[i] = Typing
	}
	idx := rng.Perm(n)
	k := 0
	for i := 0; i < spec.ParserBugs && k < n; i++ {
		cats[idx[k]] = Parser
		k++
	}
	for i := 0; i < spec.BackendBugs && k < n; i++ {
		cats[idx[k]] = Backend
		k++
	}
	return cats
}

func upper(s string) string {
	out := []byte(s)
	for i, c := range out {
		if c >= 'a' && c <= 'z' {
			out[i] = c - 32
		}
	}
	return string(out)
}
