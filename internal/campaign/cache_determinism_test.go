package campaign

import (
	"reflect"
	"testing"

	"repro/internal/types"
)

// TestCampaignDeterministicWithAndWithoutTypeCaches is the invisibility
// contract of the types-kernel memo caches: a campaign report is
// bit-for-bit identical whether the caches are on or off, at one worker
// and at eight. A divergence here means a cache key conflates two types
// the relations distinguish (see types/fingerprint.go).
func TestCampaignDeterministicWithAndWithoutTypeCaches(t *testing.T) {
	prevCaching := types.CachingEnabled()
	defer types.SetCaching(prevCaching)

	run := func(caching bool, workers int) *Report {
		types.SetCaching(caching)
		// Start cold so earlier tests' entries cannot mask key conflation.
		types.ResetCaches()
		o := smallOptions(40)
		o.Workers = workers
		return Run(o)
	}

	baseline := run(false, 1)
	if baseline.Err != nil {
		t.Fatalf("uncached baseline campaign failed: %v", baseline.Err)
	}
	if len(baseline.ProgramsRun) == 0 {
		t.Fatal("baseline campaign ran no programs")
	}

	for _, tc := range []struct {
		name    string
		caching bool
		workers int
	}{
		{"cached-1-worker", true, 1},
		{"cached-8-workers", true, 8},
		{"uncached-8-workers", false, 8},
	} {
		got := run(tc.caching, tc.workers)
		if got.Err != nil {
			t.Fatalf("%s campaign failed: %v", tc.name, got.Err)
		}
		if !reflect.DeepEqual(baseline.Found, got.Found) {
			t.Errorf("%s: Found differs from uncached single-worker baseline", tc.name)
		}
		if !reflect.DeepEqual(baseline.Verdicts, got.Verdicts) {
			t.Errorf("%s: Verdicts differ from uncached single-worker baseline", tc.name)
		}
		if !reflect.DeepEqual(baseline.ProgramsRun, got.ProgramsRun) {
			t.Errorf("%s: ProgramsRun %v, baseline %v", tc.name, got.ProgramsRun, baseline.ProgramsRun)
		}
	}

	// The cached runs above must actually have exercised the cache,
	// otherwise this test proves nothing.
	types.SetCaching(true)
	types.ResetCaches()
	o := smallOptions(10)
	o.Workers = 1
	if r := Run(o); r.Err != nil {
		t.Fatalf("cache-stat campaign failed: %v", r.Err)
	}
	hits, misses := types.CacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("campaign did not exercise the type caches: hits=%d misses=%d", hits, misses)
	}
}
