// Package campaign orchestrates testing campaigns against the simulated
// compilers, reproducing the paper's evaluation pipeline (Figure 3): batch
// program generation (Section 3.5), compilation of every program and of
// its TEM / TOM / TEM∘TOM mutants, oracle checking, bug deduplication, and
// per-figure accounting for Figures 7a, 7b, 7c and 8, plus the coverage
// experiments of Figures 9 and 10.
//
// The execution engine lives in internal/pipeline; this package is a thin
// adapter that assembles the campaign's stages (generate → mutate →
// execute → judge) and folds finished units into a Report.
package campaign

import (
	"context"
	"sort"

	"repro/internal/bugs"
	"repro/internal/compilers"
	"repro/internal/generator"
	"repro/internal/harness"
	"repro/internal/oracle"
	"repro/internal/pipeline"
)

// Options configures a campaign run.
type Options struct {
	// Seed is the base seed; program i uses Seed+i.
	Seed int64
	// Programs is the number of generated seed programs.
	Programs int
	// BatchSize groups programs per (simulated) compiler invocation
	// (Section 3.5); it affects only batching accounting.
	BatchSize int
	// Workers is the number of concurrent workers per pipeline stage
	// (the paper uses Python multiprocessing; we use goroutines).
	// 0 means GOMAXPROCS.
	Workers int
	// Compilers under test; nil means all three.
	Compilers []*compilers.Compiler
	// GenConfig configures the program generator.
	GenConfig generator.Config
	// Mutate enables the TEM/TOM/TEM∘TOM/REM pipeline stages.
	Mutate bool
	// Harness configures the resilient execution layer (watchdog
	// timeout, retries, circuit breakers, double-compile probe). The
	// zero value sandboxes compiles and nothing more.
	Harness harness.Options
	// Chaos, when non-nil, wraps every compiler in seeded fault
	// injection — the harness's test rig. Injected faults are audited in
	// the report's fault ledger.
	Chaos *harness.ChaosOptions
}

// DefaultOptions returns a small but representative campaign.
func DefaultOptions() Options {
	return Options{
		Programs:  200,
		BatchSize: 20,
		GenConfig: generator.DefaultConfig(),
		Mutate:    true,
	}
}

// BugRecord tracks one distinct bug found during a campaign.
type BugRecord struct {
	Bug *bugs.Bug
	// FoundBy records which input kinds triggered the bug.
	FoundBy map[oracle.InputKind]bool
	// FirstSeed is the lowest seed whose pipeline hit the bug.
	FirstSeed int64
	// Hits counts total triggerings (before deduplication).
	Hits int
}

// Technique returns the Figure 7c attribution for the record: the
// generator subsumes the mutations (a bug it finds is a generator bug);
// otherwise a bug found by both mutations is "TEM & TOM".
func (r *BugRecord) Technique() string {
	if r.FoundBy[oracle.Generated] || r.FoundBy[oracle.Suite] {
		return "Generator"
	}
	tem := r.FoundBy[oracle.TEMMutant]
	tom := r.FoundBy[oracle.TOMMutant] || r.FoundBy[oracle.TEMTOMMutant]
	switch {
	case tem && tom:
		return "TEM & TOM"
	case tem:
		return "TEM"
	case tom:
		return "TOM"
	case r.FoundBy[oracle.REMMutant]:
		return "REM"
	default:
		return "Generator"
	}
}

// Report is the outcome of a campaign.
type Report struct {
	Opts Options
	// Found maps bug ID to its record.
	Found map[string]*BugRecord
	// Verdicts counts oracle outcomes per compiler and input kind.
	Verdicts map[string]map[oracle.InputKind]map[oracle.Verdict]int
	// ProgramsRun counts actual pipeline executions per input kind: a
	// mutant kind is counted only for seeds whose mutation produced a
	// mutant (TEM is skipped when nothing was erasable; TOM/REM find no
	// site in some programs).
	ProgramsRun map[oracle.InputKind]int
	// Batches is the number of compiler invocations saved by batching.
	Batches int
	// TEMRepairs counts TEM verification-pass rollbacks.
	TEMRepairs int
	// Stats holds the per-stage pipeline statistics for this run
	// (timings are wall-clock and not deterministic; all counts are).
	Stats *pipeline.Stats
	// Faults is the harness-level fault ledger: per-compiler crashes,
	// timeouts, retries, flaky verdicts, and gaps, plus the injected
	// ground truth when chaos was on. Folded in unit order, so it is
	// deterministic across worker counts.
	Faults *harness.Ledger
	// Err is the error that ended the run early (context cancellation,
	// stage failure); nil for a complete run. Callers that use Run
	// instead of RunContext read completeness from here.
	Err error
}

// Complete reports whether the campaign ran to the end: a false return
// means the report is a partial fold of whatever units finished before
// the run was cut short.
func (r *Report) Complete() bool { return r.Err == nil }

// FoundFor returns the found-bug records for one compiler, ordered by ID.
func (r *Report) FoundFor(compiler string) []*BugRecord {
	var out []*BugRecord
	for _, rec := range r.Found {
		if rec.Bug.Compiler == compiler {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bug.ID < out[j].Bug.ID })
	return out
}

// TotalFound returns the number of distinct bugs found.
func (r *Report) TotalFound() int { return len(r.Found) }

// Run executes the campaign and returns its report. Runs are
// deterministic for fixed options, regardless of worker count. A run
// cut short (cancellation, stage failure) is not silently complete: the
// report carries the error in Err and Complete() returns false.
func Run(opts Options) *Report {
	report, _ := RunContext(context.Background(), opts)
	return report
}

// RunContext executes the campaign under a context. On cancellation it
// returns promptly with the context's error and the (partial) report
// aggregated so far; a nil error means the report is complete and
// deterministic for the options, regardless of worker count.
func RunContext(ctx context.Context, opts Options) (*Report, error) {
	if opts.Compilers == nil {
		opts.Compilers = compilers.All()
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1
	}

	report := &Report{
		Opts:        opts,
		Found:       map[string]*BugRecord{},
		Verdicts:    map[string]map[oracle.InputKind]map[oracle.Verdict]int{},
		ProgramsRun: map[oracle.InputKind]int{},
		Faults:      harness.NewLedger(),
	}
	stages := []pipeline.Stage{&pipeline.Generate{Config: opts.GenConfig}}
	if opts.Mutate {
		stages = append(stages, &pipeline.Mutate{TEM: true, TOM: true, TEMTOM: true, REM: true})
	}

	// The execution layer: every compiler behind the resilient harness,
	// optionally behind chaos fault injection first.
	h := harness.New(opts.Harness)
	var targets []harness.Target
	var chaosWraps []*harness.Chaos
	if opts.Chaos != nil {
		for _, c := range opts.Compilers {
			ch := harness.NewChaos(*opts.Chaos, harness.WrapCompiler(c))
			chaosWraps = append(chaosWraps, ch)
			targets = append(targets, ch)
		}
	}
	stages = append(stages,
		&pipeline.Execute{Compilers: opts.Compilers, Harness: h, Targets: targets},
		pipeline.Judge{})

	p := &pipeline.Pipeline{
		Source:     pipeline.NewGeneratorSource(opts.Seed, opts.Programs),
		Stages:     stages,
		Aggregator: (*reportAggregator)(report),
		Workers:    opts.Workers,
	}
	stats, err := p.Run(ctx)
	report.Stats = stats
	report.Batches = (opts.Programs + opts.BatchSize - 1) / opts.BatchSize
	for _, ch := range chaosWraps {
		report.Faults.RecordInjected(ch.Name(), ch.Injected())
	}
	report.Err = err
	return report, err
}

// reportAggregator folds finished pipeline units into a Report. The
// pipeline calls Aggregate in Seq (= seed) order, which makes FirstSeed
// and every count bit-for-bit reproducible across worker counts.
type reportAggregator Report

// Name implements pipeline.Aggregator.
func (*reportAggregator) Name() string { return "aggregate" }

// Aggregate implements pipeline.Aggregator.
func (r *reportAggregator) Aggregate(u *pipeline.Unit) {
	r.TEMRepairs += u.Repairs
	for _, in := range u.Inputs {
		r.ProgramsRun[in.Kind]++
	}
	for _, g := range u.Gaps {
		r.Faults.Observe(g.Compiler, g.Inv)
	}
	for _, e := range u.Execs {
		r.Faults.Observe(e.Compiler, e.Inv)
		perComp := r.Verdicts[e.Compiler]
		if perComp == nil {
			perComp = map[oracle.InputKind]map[oracle.Verdict]int{}
			r.Verdicts[e.Compiler] = perComp
		}
		perKind := perComp[e.Kind]
		if perKind == nil {
			perKind = map[oracle.Verdict]int{}
			perComp[e.Kind] = perKind
		}
		perKind[e.Verdict]++
		for _, b := range e.Result.Triggered {
			rec := r.Found[b.ID]
			if rec == nil {
				rec = &BugRecord{Bug: b, FoundBy: map[oracle.InputKind]bool{}, FirstSeed: u.Seed}
				r.Found[b.ID] = rec
			}
			rec.FoundBy[e.Kind] = true
			rec.Hits++
		}
	}
}
