// Package campaign orchestrates testing campaigns against the simulated
// compilers, reproducing the paper's evaluation pipeline (Figure 3): batch
// program generation (Section 3.5), compilation of every program and of
// its TEM / TOM / TEM∘TOM mutants, oracle checking, bug deduplication, and
// per-figure accounting for Figures 7a, 7b, 7c and 8, plus the coverage
// experiments of Figures 9 and 10.
package campaign

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/bugs"
	"repro/internal/compilers"
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/mutation"
	"repro/internal/oracle"
)

// Options configures a campaign run.
type Options struct {
	// Seed is the base seed; program i uses Seed+i.
	Seed int64
	// Programs is the number of generated seed programs.
	Programs int
	// BatchSize groups programs per (simulated) compiler invocation
	// (Section 3.5); it affects only batching accounting.
	BatchSize int
	// Workers is the number of concurrent workers (the paper uses
	// Python multiprocessing; we use goroutines). 0 means GOMAXPROCS.
	Workers int
	// Compilers under test; nil means all three.
	Compilers []*compilers.Compiler
	// GenConfig configures the program generator.
	GenConfig generator.Config
	// Mutate enables the TEM/TOM/TEM∘TOM pipeline stages.
	Mutate bool
}

// DefaultOptions returns a small but representative campaign.
func DefaultOptions() Options {
	return Options{
		Programs:  200,
		BatchSize: 20,
		GenConfig: generator.DefaultConfig(),
		Mutate:    true,
	}
}

// BugRecord tracks one distinct bug found during a campaign.
type BugRecord struct {
	Bug *bugs.Bug
	// FoundBy records which input kinds triggered the bug.
	FoundBy map[oracle.InputKind]bool
	// FirstSeed is the lowest seed whose pipeline hit the bug.
	FirstSeed int64
	// Hits counts total triggerings (before deduplication).
	Hits int
}

// Technique returns the Figure 7c attribution for the record: the
// generator subsumes the mutations (a bug it finds is a generator bug);
// otherwise a bug found by both mutations is "TEM & TOM".
func (r *BugRecord) Technique() string {
	if r.FoundBy[oracle.Generated] || r.FoundBy[oracle.Suite] {
		return "Generator"
	}
	tem := r.FoundBy[oracle.TEMMutant]
	tom := r.FoundBy[oracle.TOMMutant] || r.FoundBy[oracle.TEMTOMMutant]
	switch {
	case tem && tom:
		return "TEM & TOM"
	case tem:
		return "TEM"
	case tom:
		return "TOM"
	case r.FoundBy[oracle.REMMutant]:
		return "REM"
	default:
		return "Generator"
	}
}

// Report is the outcome of a campaign.
type Report struct {
	Opts Options
	// Found maps bug ID to its record.
	Found map[string]*BugRecord
	// Verdicts counts oracle outcomes per compiler and input kind.
	Verdicts map[string]map[oracle.InputKind]map[oracle.Verdict]int
	// ProgramsRun counts pipeline executions per input kind.
	ProgramsRun map[oracle.InputKind]int
	// Batches is the number of compiler invocations saved by batching.
	Batches int
	// TEMRepairs counts TEM verification-pass rollbacks.
	TEMRepairs int
}

// FoundFor returns the found-bug records for one compiler, ordered by ID.
func (r *Report) FoundFor(compiler string) []*BugRecord {
	var out []*BugRecord
	for _, rec := range r.Found {
		if rec.Bug.Compiler == compiler {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bug.ID < out[j].Bug.ID })
	return out
}

// TotalFound returns the number of distinct bugs found.
func (r *Report) TotalFound() int { return len(r.Found) }

// seedResult is one seed's contribution, merged deterministically.
type seedResult struct {
	seed     int64
	verdicts []verdictEvent
	hits     []bugHit
	repairs  int
}

type verdictEvent struct {
	compiler string
	kind     oracle.InputKind
	verdict  oracle.Verdict
}

type bugHit struct {
	bug  *bugs.Bug
	kind oracle.InputKind
}

// Run executes the campaign and returns its report. Runs are
// deterministic for fixed options, regardless of worker count.
func Run(opts Options) *Report {
	if opts.Compilers == nil {
		opts.Compilers = compilers.All()
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1
	}

	seeds := make(chan int64)
	results := make([]seedResult, opts.Programs)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range seeds {
				results[s-opts.Seed] = runSeed(opts, s)
			}
		}()
	}
	for i := 0; i < opts.Programs; i++ {
		seeds <- opts.Seed + int64(i)
	}
	close(seeds)
	wg.Wait()

	report := &Report{
		Opts:        opts,
		Found:       map[string]*BugRecord{},
		Verdicts:    map[string]map[oracle.InputKind]map[oracle.Verdict]int{},
		ProgramsRun: map[oracle.InputKind]int{},
	}
	for _, res := range results {
		report.TEMRepairs += res.repairs
		for _, v := range res.verdicts {
			perComp := report.Verdicts[v.compiler]
			if perComp == nil {
				perComp = map[oracle.InputKind]map[oracle.Verdict]int{}
				report.Verdicts[v.compiler] = perComp
			}
			perKind := perComp[v.kind]
			if perKind == nil {
				perKind = map[oracle.Verdict]int{}
				perComp[v.kind] = perKind
			}
			perKind[v.verdict]++
		}
		for _, h := range res.hits {
			rec := report.Found[h.bug.ID]
			if rec == nil {
				rec = &BugRecord{Bug: h.bug, FoundBy: map[oracle.InputKind]bool{}, FirstSeed: res.seed}
				report.Found[h.bug.ID] = rec
			}
			rec.FoundBy[h.kind] = true
			rec.Hits++
		}
	}
	report.ProgramsRun[oracle.Generated] = opts.Programs
	if opts.Mutate {
		report.ProgramsRun[oracle.TEMMutant] = opts.Programs
		report.ProgramsRun[oracle.TOMMutant] = opts.Programs
		report.ProgramsRun[oracle.TEMTOMMutant] = opts.Programs
		report.ProgramsRun[oracle.REMMutant] = opts.Programs
	}
	report.Batches = (opts.Programs + opts.BatchSize - 1) / opts.BatchSize
	return report
}

// runSeed executes the full pipeline for one seed: generate, compile,
// mutate, compile the mutants.
func runSeed(opts Options, seed int64) seedResult {
	res := seedResult{seed: seed}
	g := generator.New(opts.GenConfig.WithSeed(seed))
	prog := g.Generate()

	inputs := []struct {
		kind oracle.InputKind
		prog *ir.Program
	}{{oracle.Generated, prog}}

	if opts.Mutate {
		tem, temReport := mutation.TypeErasure(prog, g.Builtins())
		res.repairs += temReport.RepairedMethods
		if temReport.Changed() {
			inputs = append(inputs, struct {
				kind oracle.InputKind
				prog *ir.Program
			}{oracle.TEMMutant, tem})
		}
		if tom, _ := mutation.TypeOverwriting(prog, g.Builtins(), rand.New(rand.NewSource(seed))); tom != nil {
			inputs = append(inputs, struct {
				kind oracle.InputKind
				prog *ir.Program
			}{oracle.TOMMutant, tom})
		}
		// TOM on top of TEM reaches the CombinedClass bugs (Figure 7c's
		// "TEM & TOM" row).
		if temtom, _ := mutation.TypeOverwriting(tem, g.Builtins(), rand.New(rand.NewSource(seed^0x5bd1e995))); temtom != nil {
			inputs = append(inputs, struct {
				kind oracle.InputKind
				prog *ir.Program
			}{oracle.TEMTOMMutant, temtom})
		}
		// The resolution mutation (the paper's future-work extension):
		// decoy overloads stress overload resolution while preserving
		// well-typedness.
		if rem, _ := mutation.ResolutionMutation(prog, g.Builtins(), rand.New(rand.NewSource(seed^0x9e3779b9))); rem != nil {
			inputs = append(inputs, struct {
				kind oracle.InputKind
				prog *ir.Program
			}{oracle.REMMutant, rem})
		}
	}

	for _, in := range inputs {
		for _, c := range opts.Compilers {
			out := c.Compile(in.prog, nil)
			res.verdicts = append(res.verdicts, verdictEvent{
				compiler: c.Name(),
				kind:     in.kind,
				verdict:  oracle.Judge(in.kind, out),
			})
			for _, b := range out.Triggered {
				res.hits = append(res.hits, bugHit{bug: b, kind: in.kind})
			}
		}
	}
	return res
}
