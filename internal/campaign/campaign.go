// Package campaign orchestrates testing campaigns against the simulated
// compilers, reproducing the paper's evaluation pipeline (Figure 3): batch
// program generation (Section 3.5), compilation of every program and of
// its TEM / TOM / TEM∘TOM mutants, oracle checking, bug deduplication, and
// per-figure accounting for Figures 7a, 7b, 7c and 8, plus the coverage
// experiments of Figures 9 and 10.
//
// The execution engine lives in internal/pipeline; this package is a thin
// adapter that assembles the campaign's stages (generate → mutate →
// execute → judge) and folds finished units into a Report.
package campaign

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/apisynth"
	"repro/internal/bugs"
	"repro/internal/compilers"
	"repro/internal/generator"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/oracle"
	"repro/internal/pipeline"
)

// OracleMode selects the campaign's test oracle.
type OracleMode int

const (
	// GroundTruth is the paper's derivation-based oracle: how a program
	// was built fixes the expected verdict (generated/TEM must compile,
	// TOM must be rejected).
	GroundTruth OracleMode = iota
	// Differential is the ground-truth-free cross-compiler oracle
	// (internal/difforacle): the same program compiles with every
	// compiler under test, a split accept/reject vote is a Disagreement
	// finding with majority-vote suspect attribution, and the three
	// translator backends' renderings are checked for verdict
	// equivalence.
	Differential
)

func (m OracleMode) String() string {
	switch m {
	case GroundTruth:
		return "ground-truth"
	case Differential:
		return "differential"
	default:
		return fmt.Sprintf("unknown(%d)", int(m))
	}
}

// ParseOracleMode maps the CLI/JSON spelling onto the mode; the empty
// string means the default ground-truth oracle.
func ParseOracleMode(s string) (OracleMode, error) {
	switch s {
	case "", "ground-truth":
		return GroundTruth, nil
	case "differential":
		return Differential, nil
	default:
		return 0, fmt.Errorf("campaign: unknown oracle mode %q (have ground-truth, differential)", s)
	}
}

// Options configures a campaign run.
type Options struct {
	// Seed is the base seed; program i uses Seed+i.
	Seed int64
	// Programs is the number of generated seed programs.
	Programs int
	// BatchSize groups programs per (simulated) compiler invocation
	// (Section 3.5); it affects only batching accounting.
	BatchSize int
	// Workers is the number of concurrent workers per pipeline stage
	// (the paper uses Python multiprocessing; we use goroutines).
	// 0 means GOMAXPROCS.
	Workers int
	// Compilers under test; nil means all three.
	Compilers []*compilers.Compiler
	// Oracle selects the test oracle; the zero value is the paper's
	// derivation-based ground-truth oracle. Verdict-affecting, so it
	// folds into the campaign fingerprint.
	Oracle OracleMode
	// GenConfig configures the program generator.
	GenConfig generator.Config
	// Synth configures API-driven synthesis (Thalia mode): units whose
	// seeds the cadence claims are built bottom-up from API signatures
	// and judged as the Synthesized input kind. The zero value disables
	// synthesis. Verdict-affecting, so it folds into the campaign
	// fingerprint when enabled. A seed claimed by the synthesizer is
	// synthesized even when GenConfig's stress cadence also selects it.
	Synth apisynth.Config
	// Mutate enables the TEM/TOM/TEM∘TOM/REM pipeline stages.
	Mutate bool
	// Harness configures the resilient execution layer (watchdog
	// timeout, retries, circuit breakers, double-compile probe). The
	// zero value sandboxes compiles and nothing more.
	Harness harness.Options
	// Chaos, when non-nil, wraps every compiler in seeded fault
	// injection — the harness's test rig. Injected faults are audited in
	// the report's fault ledger.
	Chaos *harness.ChaosOptions
	// StateDir, when non-empty, makes the campaign durable: every
	// aggregated unit is journaled there and the folded report is
	// snapshotted periodically, so a killed run can resume to exactly
	// the report an uninterrupted run would produce. The directory also
	// holds the persistent bug corpus, which accumulates across
	// campaigns.
	StateDir string
	// Resume restores the snapshot and journal found in StateDir before
	// running; units whose results were restored are skipped. Resuming a
	// directory whose recorded campaign fingerprint differs from these
	// options is an error. Without Resume, StateDir is reset (the corpus
	// survives) and the campaign starts fresh.
	Resume bool
	// SnapshotEvery is the number of aggregated units between report
	// snapshots: 0 means the default cadence (64), a negative value
	// disables snapshots entirely (resume then replays the journal from
	// the top — slower to restore, but no checkpoint I/O during the
	// run).
	SnapshotEvery int
	// SyncEvery is the number of journal records between fsyncs; 0 means
	// every record (maximum durability, slowest).
	SyncEvery int
	// Metrics, when set, exports live campaign instruments (unit/exec
	// throughput, per-compiler verdict counts, compile wall-time and
	// journal latency histograms, breaker states) through the registry.
	// Observation only: the report is bit-for-bit identical with or
	// without it, and it is excluded from the campaign fingerprint.
	Metrics *metrics.Registry
	// Trace, when set, receives structured events (verdicts, retries,
	// faults, breaker transitions, chaos injections). Observation only.
	Trace *metrics.Trace
	// Gate, when set, is called on the source goroutine before each new
	// unit enters the pipeline; blocking in it stalls the feed channel
	// and backpressures every bounded stage channel behind it. This is
	// the admission-control hook the multi-tenant server hangs its
	// per-tenant rate limits on. A Gate error ends the source (the run
	// finishes early via its context). Units restored by a resume are
	// not gated. Scheduling only — a Gate must not vary what the
	// campaign computes — so it is excluded from the fingerprint.
	Gate func(ctx context.Context) error
}

// DefaultOptions returns a small but representative campaign.
func DefaultOptions() Options {
	return Options{
		Programs:  200,
		BatchSize: 20,
		GenConfig: generator.DefaultConfig(),
		Mutate:    true,
	}
}

// BugRecord tracks one distinct bug found during a campaign.
type BugRecord struct {
	Bug *bugs.Bug
	// FoundBy records which input kinds triggered the bug.
	FoundBy map[oracle.InputKind]bool
	// FirstSeed is the lowest seed whose pipeline hit the bug.
	FirstSeed int64
	// Hits counts total triggerings (before deduplication).
	Hits int
}

// Technique returns the Figure 7c attribution for the record: the
// generator subsumes the mutations (a bug it finds is a generator bug);
// otherwise a bug only API-driven synthesis reached is "Synthesized",
// and a bug found by both mutations is "TEM & TOM".
func (r *BugRecord) Technique() string {
	if r.FoundBy[oracle.Generated] || r.FoundBy[oracle.Suite] {
		return "Generator"
	}
	if r.FoundBy[oracle.Synthesized] {
		return "Synthesized"
	}
	tem := r.FoundBy[oracle.TEMMutant]
	tom := r.FoundBy[oracle.TOMMutant] || r.FoundBy[oracle.TEMTOMMutant]
	switch {
	case tem && tom:
		return "TEM & TOM"
	case tem:
		return "TEM"
	case tom:
		return "TOM"
	case r.FoundBy[oracle.REMMutant]:
		return "REM"
	default:
		return "Generator"
	}
}

// DisagreementRecord tracks one distinct cross-compiler (or
// cross-translator) disagreement found by the differential oracle.
// Distinctness is by canonical verdict vector: the same split between
// the same compilers is one finding however many programs hit it,
// mirroring how BugRecord dedups by bug ID.
type DisagreementRecord struct {
	// ID is the dedup key: "xlate:" for translator-conformance findings
	// plus the canonical (name-sorted) verdict vector.
	ID string
	// Translators marks a translator-conformance disagreement.
	Translators bool
	// Vector is the canonical verdict vector, lanes sorted by name.
	Vector string
	// Suspects is the minority side of the vote, sorted; empty when the
	// vote tied (unattributed).
	Suspects []string
	// FoundBy records which input kinds hit the disagreement.
	FoundBy map[oracle.InputKind]bool
	// FirstSeed is the lowest seed whose unit hit it.
	FirstSeed int64
	// Hits counts total occurrences (before deduplication).
	Hits int
}

// Report is the outcome of a campaign.
type Report struct {
	Opts Options
	// Found maps bug ID to its record.
	Found map[string]*BugRecord
	// Verdicts counts oracle outcomes per compiler and input kind.
	Verdicts map[string]map[oracle.InputKind]map[oracle.Verdict]int
	// ProgramsRun counts actual pipeline executions per input kind: a
	// mutant kind is counted only for seeds whose mutation produced a
	// mutant (TEM is skipped when nothing was erasable; TOM/REM find no
	// site in some programs).
	ProgramsRun map[oracle.InputKind]int
	// Batches is the number of compiler invocations saved by batching.
	Batches int
	// TEMRepairs counts TEM verification-pass rollbacks.
	TEMRepairs int
	// Stats holds the per-stage pipeline statistics for this run
	// (timings are wall-clock and not deterministic; all counts are).
	Stats *pipeline.Stats
	// Faults is the harness-level fault ledger: per-compiler crashes,
	// timeouts, retries, flaky verdicts, and gaps, plus the injected
	// ground truth when chaos was on. Folded in unit order, so it is
	// deterministic across worker counts.
	Faults *harness.Ledger
	// BugRate buckets units, executions, and bug triggerings by unit
	// sequence number (SeriesBucketWidth units per bucket): the
	// bug-rate-over-time series. Folded commutatively like every other
	// report field, so it survives journal replay and checkpoint/resume
	// — a resumed campaign's series continues where the killed run's
	// left off.
	BugRate map[int]*RateBucket
	// Disagreements maps a disagreement's canonical ID (source prefix +
	// sorted verdict vector) to its record; populated only by the
	// differential oracle. Folded commutatively like Found.
	Disagreements map[string]*DisagreementRecord
	// DiffMatrix counts cross-compiler verdict conflicts per unordered
	// voting pair, keyed "a|b" with the names sorted — the paper's
	// Fig. 8 version matrix generalized to a compiler×compiler (and
	// translator×translator) matrix. Every disagreement hit counts, so
	// the matrix measures conflict mass, not distinct findings.
	DiffMatrix map[string]int
	// Corpus is the cross-campaign persistent bug corpus, after this
	// run's merge; nil unless the campaign is durable (StateDir set).
	Corpus *Corpus
	// Recovery describes what a resumed run restored from its state
	// directory; the zero value for non-durable or fresh runs.
	Recovery RecoveryInfo
	// Err is the error that ended the run early (context cancellation,
	// stage failure); nil for a complete run. Callers that use Run
	// instead of RunContext read completeness from here.
	Err error
}

// Complete reports whether the campaign ran to the end: a false return
// means the report is a partial fold of whatever units finished before
// the run was cut short.
func (r *Report) Complete() bool { return r.Err == nil }

// FoundFor returns the found-bug records for one compiler, ordered by ID.
func (r *Report) FoundFor(compiler string) []*BugRecord {
	var out []*BugRecord
	for _, rec := range r.Found {
		if rec.Bug.Compiler == compiler {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bug.ID < out[j].Bug.ID })
	return out
}

// TotalFound returns the number of distinct bugs found.
func (r *Report) TotalFound() int { return len(r.Found) }

// SeriesBucketWidth is the number of units per BugRate bucket.
const SeriesBucketWidth = 32

// RateBucket aggregates one bug-rate bucket: all fields are sums, so
// buckets fold commutatively across live units and journal replay.
type RateBucket struct {
	// Units is the number of units folded into the bucket.
	Units int `json:"u"`
	// Execs is the number of (input, compiler) executions.
	Execs int `json:"x"`
	// BugHits is the number of bug triggerings (before deduplication).
	BugHits int `json:"h,omitempty"`
}

// SeriesPoint is one step of the derived bug-rate series.
type SeriesPoint struct {
	// StartSeq and EndSeq bound the bucket's unit range [StartSeq, EndSeq).
	StartSeq, EndSeq int
	// Units, Execs, and BugHits restate the bucket's sums.
	Units, Execs, BugHits int
	// NewBugs is the number of distinct bugs whose first triggering seed
	// falls in this bucket.
	NewBugs int
	// CumulativeBugs is the running total of distinct bugs through this
	// bucket.
	CumulativeBugs int
}

// BugRateSeries derives the bug-rate-over-time series from the folded
// BugRate buckets and the Found map, ordered by unit sequence. The
// series is part of the deterministic report: a resumed campaign's
// series is identical to an uninterrupted run's.
func (r *Report) BugRateSeries() []SeriesPoint {
	if len(r.BugRate) == 0 {
		return nil
	}
	idxs := make([]int, 0, len(r.BugRate))
	for i := range r.BugRate {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	// A bug's first triggering unit has seed FirstSeed = Opts.Seed + seq.
	newBugs := map[int]int{}
	for _, rec := range r.Found {
		newBugs[int(rec.FirstSeed-r.Opts.Seed)/SeriesBucketWidth]++
	}
	out := make([]SeriesPoint, 0, len(idxs))
	cum := 0
	for _, i := range idxs {
		b := r.BugRate[i]
		cum += newBugs[i]
		out = append(out, SeriesPoint{
			StartSeq: i * SeriesBucketWidth,
			EndSeq:   (i + 1) * SeriesBucketWidth,
			Units:    b.Units, Execs: b.Execs, BugHits: b.BugHits,
			NewBugs:        newBugs[i],
			CumulativeBugs: cum,
		})
	}
	return out
}

// Run executes the campaign and returns its report. Runs are
// deterministic for fixed options, regardless of worker count. A run
// cut short (cancellation, stage failure) is not silently complete: the
// report carries the error in Err and Complete() returns false.
//
// Run is a shim over the lifecycle API: New + Start + Wait.
func Run(opts Options) *Report {
	report, _ := RunContext(context.Background(), opts)
	return report
}

// RunContext executes the campaign under a context. On cancellation it
// returns promptly with the context's error and the (partial) report
// aggregated so far; a nil error means the report is complete and
// deterministic for the options, regardless of worker count.
//
// RunContext is a shim over the lifecycle API: New + Start + Wait.
func RunContext(ctx context.Context, opts Options) (*Report, error) {
	c := New(opts)
	if err := c.Start(ctx); err != nil {
		return nil, err
	}
	return c.Wait()
}

// fuzzPlan is the standard fuzzing campaign behind the lifecycle: the
// body RunContext used to be, run once per segment. A resume segment
// (after Pause, or Options.Resume) restores the snapshot+journal first
// and skips restored units, so every segment folds exactly the units
// no earlier segment did.
type fuzzPlan struct{}

func (fuzzPlan) name() string { return "campaign" }

func (fuzzPlan) pausable(c *Campaign) bool { return c.opts.StateDir != "" }

func (fuzzPlan) run(ctx context.Context, c *Campaign, resume bool) error {
	opts := c.opts
	if resume {
		// A post-Pause segment continues the state directory this
		// campaign suspended into, whatever the original Resume flag.
		opts.Resume = true
	}

	report := newReport(opts)
	agg := &reportAggregator{
		report:   report,
		bugIndex: bugIndexFor(opts.Compilers),
		obs:      newObserver(opts.Metrics, opts.Trace),
		mu:       &c.fold,
	}

	gen := &pipeline.Generate{Config: opts.GenConfig}
	if opts.Synth.Enabled() {
		prod, err := newSynthProducer(opts.Synth)
		if err != nil {
			report.Err = err
			c.publish(report, nil, nil)
			return err
		}
		gen.Producers = []pipeline.Producer{prod}
	}
	stages := []pipeline.Stage{gen}
	if opts.Mutate {
		stages = append(stages, &pipeline.Mutate{TEM: true, TOM: true, TEMTOM: true, REM: true})
	}

	// The execution layer: every compiler behind the resilient harness,
	// optionally behind chaos fault injection first. Observability rides
	// along on the harness options; it is stripped from the campaign
	// fingerprint, so a durable run can resume with it toggled.
	hopts := opts.Harness
	hopts.Metrics = opts.Metrics
	hopts.Trace = opts.Trace
	h := harness.New(hopts)
	var targets []harness.Target
	if opts.Chaos != nil {
		for _, comp := range opts.Compilers {
			targets = append(targets, harness.NewChaos(*opts.Chaos, harness.WrapCompiler(comp)).WithTrace(opts.Trace))
		}
	}
	stages = append(stages,
		&pipeline.Execute{Compilers: opts.Compilers, Harness: h, Targets: targets},
		pipeline.Judge{Differential: opts.Oracle == Differential})

	// Durable state: restore snapshot + journal before the pipeline
	// starts, skip restored units, journal and checkpoint the rest.
	state, err := openState(opts, report, agg, h)
	if err != nil {
		report.Err = err
		c.publish(report, nil, nil)
		return err
	}
	// Fold restored state into the live instruments so a resumed run's
	// metrics continue from where the killed run's left off.
	agg.obs.prime(report)
	c.publish(report, h, state)

	p := &pipeline.Pipeline{
		Source:     pipeline.NewGeneratorSource(opts.Seed, opts.Programs),
		Stages:     stages,
		Aggregator: agg,
		Workers:    opts.Workers,
		Label:      "campaign",
		Metrics:    opts.Metrics,
	}
	if state != nil {
		p.Source = &pipeline.SkipSource{Inner: p.Source, Done: state.isDone}
		p.AfterAggregate = func(u *pipeline.Unit) error {
			c.fold.Lock()
			defer c.fold.Unlock()
			return state.afterUnit(report, agg, u, h)
		}
	}
	if opts.Gate != nil {
		p.Source = &gatedSource{inner: p.Source, ctx: ctx, gate: opts.Gate}
	}

	stats, err := p.Run(ctx)
	c.fold.Lock()
	defer c.fold.Unlock()
	report.Stats = stats
	report.Batches = (opts.Programs + opts.BatchSize - 1) / opts.BatchSize
	if state != nil {
		if ferr := state.finish(report, h, err == nil); ferr != nil && err == nil {
			err = ferr
		}
	}
	report.Err = err
	return err
}

// newReport returns an empty report for the options, with every folded
// map initialized — the one constructor the live run and the fabric
// merger share, so the two paths cannot drift on what a report holds.
func newReport(opts Options) *Report {
	return &Report{
		Opts:          opts,
		Found:         map[string]*BugRecord{},
		Verdicts:      map[string]map[oracle.InputKind]map[oracle.Verdict]int{},
		ProgramsRun:   map[oracle.InputKind]int{},
		BugRate:       map[int]*RateBucket{},
		Disagreements: map[string]*DisagreementRecord{},
		DiffMatrix:    map[string]int{},
		Faults:        harness.NewLedger(),
	}
}

// reportAggregator folds finished pipeline units into a Report. The
// pipeline calls Aggregate in Seq (= seed) order; the fold itself is
// commutative (FirstSeed is a min-update, everything else sums or
// unions), so journal replay can fold the same records in any order and
// reach the same report. Live units and replayed records share one fold
// path — recordOf projects the unit, fold consumes the record — so a
// resumed run is bit-for-bit the uninterrupted one.
type reportAggregator struct {
	report   *Report
	bugIndex map[string]*bugs.Bug
	// obs mirrors live folds into the metrics registry and event trace;
	// nil when the campaign is unobserved. Restored state is primed
	// separately, so obs sees only units folded by this process.
	obs *observer
	// last is the record for the most recently folded unit, stashed for
	// the journaling hook that runs next on the same goroutine.
	last *unitRecord
	// mu, when set, is the campaign's fold lock: Aggregate takes its
	// write side so Status readers see the report only between units.
	mu *sync.RWMutex
}

// Name implements pipeline.Aggregator.
func (a *reportAggregator) Name() string { return "aggregate" }

// Aggregate implements pipeline.Aggregator.
func (a *reportAggregator) Aggregate(u *pipeline.Unit) {
	if a.mu != nil {
		a.mu.Lock()
		defer a.mu.Unlock()
	}
	a.last = nil
	if u.Recovered {
		return // folded by a previous run; restored before the pipeline started
	}
	rec := recordOf(u)
	a.last = rec
	a.fold(rec)
	a.obs.observeUnit(rec, len(a.report.Found))
}

// fold applies one unit record to the report.
func (a *reportAggregator) fold(rec *unitRecord) {
	r := a.report
	r.TEMRepairs += rec.Repairs
	for _, k := range rec.Inputs {
		r.ProgramsRun[k]++
	}
	rate := r.BugRate[rec.Seq/SeriesBucketWidth]
	if rate == nil {
		rate = &RateBucket{}
		r.BugRate[rec.Seq/SeriesBucketWidth] = rate
	}
	rate.Units++
	rate.Execs += len(rec.Execs)
	for _, e := range rec.Execs {
		rate.BugHits += len(e.Bugs)
	}
	for _, g := range rec.Gaps {
		r.Faults.Observe(g.Compiler, harness.Invocation{Outcome: g.Outcome, Attempts: g.Attempts, Flaky: g.Flaky})
	}
	for _, e := range rec.Execs {
		r.Faults.Observe(e.Compiler, harness.Invocation{Outcome: e.Outcome, Attempts: e.Attempts, Flaky: e.Flaky})
		perComp := r.Verdicts[e.Compiler]
		if perComp == nil {
			perComp = map[oracle.InputKind]map[oracle.Verdict]int{}
			r.Verdicts[e.Compiler] = perComp
		}
		perKind := perComp[e.Kind]
		if perKind == nil {
			perKind = map[oracle.Verdict]int{}
			perComp[e.Kind] = perKind
		}
		perKind[e.Verdict]++
		for _, id := range e.Bugs {
			bug := a.bugIndex[id]
			if bug == nil {
				continue // catalog drift; the record outlived the bug
			}
			brec := r.Found[id]
			if brec == nil {
				brec = &BugRecord{Bug: bug, FoundBy: map[oracle.InputKind]bool{}, FirstSeed: rec.Seed}
				r.Found[id] = brec
			} else if rec.Seed < brec.FirstSeed {
				brec.FirstSeed = rec.Seed
			}
			brec.FoundBy[e.Kind] = true
			brec.Hits++
		}
	}
	for name, counts := range rec.Injected {
		r.Faults.AddInjected(name, counts)
	}
	for i := range rec.Diffs {
		d := &rec.Diffs[i]
		for _, p := range d.Pairs {
			r.DiffMatrix[p[0]+"|"+p[1]]++
		}
		id := d.id()
		drec := r.Disagreements[id]
		if drec == nil {
			drec = &DisagreementRecord{
				ID: id, Translators: d.Xlate, Vector: d.vector(),
				Suspects:  append([]string(nil), d.Sus...),
				FoundBy:   map[oracle.InputKind]bool{},
				FirstSeed: rec.Seed,
			}
			r.Disagreements[id] = drec
		} else if rec.Seed < drec.FirstSeed {
			drec.FirstSeed = rec.Seed
		}
		drec.FoundBy[d.Kind] = true
		drec.Hits++
	}
}

// restoreFound rebuilds the Found map from snapshot state, resolving
// bug IDs against the compiler catalogs.
func (a *reportAggregator) restoreFound(found []foundState) {
	for _, f := range found {
		bug := a.bugIndex[f.ID]
		if bug == nil {
			continue
		}
		rec := &BugRecord{Bug: bug, FoundBy: map[oracle.InputKind]bool{}, FirstSeed: f.FirstSeed, Hits: f.Hits}
		for _, k := range f.FoundBy {
			rec.FoundBy[k] = true
		}
		a.report.Found[f.ID] = rec
	}
}

// restoreDiffs rebuilds the Disagreements map from snapshot state.
func (a *reportAggregator) restoreDiffs(diffs []diffState) {
	for _, d := range diffs {
		rec := &DisagreementRecord{
			ID: d.ID, Translators: d.Translators, Vector: d.Vector,
			Suspects: d.Suspects, FoundBy: map[oracle.InputKind]bool{},
			FirstSeed: d.FirstSeed, Hits: d.Hits,
		}
		for _, k := range d.FoundBy {
			rec.FoundBy[k] = true
		}
		a.report.Disagreements[d.ID] = rec
	}
}
