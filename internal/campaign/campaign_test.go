package campaign

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/bugs"
	"repro/internal/compilers"
	"repro/internal/generator"
	"repro/internal/oracle"
)

func smallOptions(programs int) Options {
	return Options{
		Programs:  programs,
		BatchSize: 10,
		GenConfig: generator.DefaultConfig(),
		Mutate:    true,
		Compilers: []*compilers.Compiler{compilers.Groovyc()},
	}
}

func TestCampaignRunFindsBugs(t *testing.T) {
	report := Run(smallOptions(60))
	if report.TotalFound() == 0 {
		t.Fatal("campaign found no bugs")
	}
	// All found bugs belong to the compiler under test.
	for id, rec := range report.Found {
		if rec.Bug.Compiler != "groovyc" {
			t.Errorf("%s: wrong compiler %s", id, rec.Bug.Compiler)
		}
		if rec.Hits == 0 || len(rec.FoundBy) == 0 {
			t.Errorf("%s: empty record", id)
		}
	}
	// Every generated program runs; mutant kinds count actual
	// executions, so they are bounded by the seed count and nonzero for
	// a campaign this size.
	if report.ProgramsRun[oracle.Generated] != 60 {
		t.Errorf("generated programs run = %d, want 60", report.ProgramsRun[oracle.Generated])
	}
	for _, kind := range []oracle.InputKind{oracle.TEMMutant, oracle.TOMMutant, oracle.TEMTOMMutant} {
		if n := report.ProgramsRun[kind]; n == 0 || n > 60 {
			t.Errorf("%s: programs run = %d, want in (0, 60]", kind, n)
		}
	}
	// ProgramsRun must agree with the verdicts actually recorded.
	for kind, n := range report.ProgramsRun {
		judged := 0
		for _, v := range report.Verdicts["groovyc"][kind] {
			judged += v
		}
		if judged != n {
			t.Errorf("%s: ProgramsRun=%d but %d verdicts recorded", kind, n, judged)
		}
	}
	if report.Batches != 6 {
		t.Errorf("batches = %d, want 6", report.Batches)
	}
}

func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	o1 := smallOptions(25)
	o1.Workers = 1
	o2 := smallOptions(25)
	o2.Workers = 8
	r1 := Run(o1)
	r2 := Run(o2)
	// The determinism contract: everything in the report except Opts
	// and wall-clock Stats is bit-for-bit identical across worker
	// counts — including per-record hit counts and first seeds.
	if !reflect.DeepEqual(r1.Found, r2.Found) {
		t.Errorf("Found differs between 1 and 8 workers:\n%+v\nvs\n%+v", r1.Found, r2.Found)
	}
	if !reflect.DeepEqual(r1.Verdicts, r2.Verdicts) {
		t.Errorf("Verdicts differ between 1 and 8 workers")
	}
	if !reflect.DeepEqual(r1.ProgramsRun, r2.ProgramsRun) {
		t.Errorf("ProgramsRun differs: %v vs %v", r1.ProgramsRun, r2.ProgramsRun)
	}
	if r1.TEMRepairs != r2.TEMRepairs {
		t.Errorf("TEMRepairs differs: %d vs %d", r1.TEMRepairs, r2.TEMRepairs)
	}
	if r1.Batches != r2.Batches {
		t.Errorf("Batches differs: %d vs %d", r1.Batches, r2.Batches)
	}
}

func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opts := smallOptions(100000) // far more work than the deadline allows
	opts.Workers = 4
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var report *Report
	var err error
	go func() {
		report, err = RunContext(ctx, opts)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled campaign did not stop: pipeline deadlock")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext returned %v, want context.Canceled", err)
	}
	if report == nil {
		t.Fatal("cancelled campaign should still return the partial report")
	}
	if report.ProgramsRun[oracle.Generated] >= opts.Programs {
		t.Errorf("cancelled campaign aggregated all %d programs", opts.Programs)
	}
}

func TestRunSurfacesIncompleteness(t *testing.T) {
	// A run cut short must say so: Run (which has no error return) still
	// carries the pipeline error in the report.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	report, err := RunContext(ctx, smallOptions(50))
	if err == nil {
		t.Fatal("cancelled RunContext returned nil error")
	}
	if report.Err == nil || report.Complete() {
		t.Errorf("partial report not marked incomplete: Err=%v Complete=%v", report.Err, report.Complete())
	}
	if !errors.Is(report.Err, context.Canceled) {
		t.Errorf("report.Err = %v, want context.Canceled", report.Err)
	}

	complete := Run(smallOptions(5))
	if !complete.Complete() || complete.Err != nil {
		t.Errorf("complete run marked incomplete: Err=%v", complete.Err)
	}
}

func TestTechniqueAttribution(t *testing.T) {
	report := Run(smallOptions(80))
	sawTEM, sawTOM, sawGen := false, false, false
	for _, rec := range report.Found {
		switch rec.Technique() {
		case "TEM":
			sawTEM = true
			// TEM mutants are well-typed, so they can only reveal
			// inference-class bugs or (occasionally) generator-class
			// bugs their parent's signature missed — never soundness.
			if rec.Bug.Class == bugs.SoundnessClass || rec.Bug.Class == bugs.CombinedClass {
				t.Errorf("%s attributed to TEM but class is %s", rec.Bug.ID, rec.Bug.Class)
			}
		case "TOM":
			sawTOM = true
			if rec.Bug.Class == bugs.InferenceClass {
				t.Errorf("%s attributed to TOM but class is %s", rec.Bug.ID, rec.Bug.Class)
			}
		case "Generator":
			sawGen = true
		}
		// Inference bugs can never be attributed to the generator: its
		// programs are fully annotated.
		if rec.Bug.Class == bugs.InferenceClass && rec.Technique() == "Generator" {
			t.Errorf("%s: inference bug attributed to the generator", rec.Bug.ID)
		}
	}
	if !sawGen || !sawTEM || !sawTOM {
		t.Errorf("expected all three attributions, got gen=%v tem=%v tom=%v", sawGen, sawTEM, sawTOM)
	}
}

func TestFigureTablesRender(t *testing.T) {
	report := Run(smallOptions(40))
	f7a := report.Figure7a().String()
	if !strings.Contains(f7a, "groovyc") || !strings.Contains(f7a, "Fixed") {
		t.Errorf("figure 7a malformed:\n%s", f7a)
	}
	f7b := report.Figure7b().String()
	if !strings.Contains(f7b, "UCTE") || !strings.Contains(f7b, "Crash") {
		t.Errorf("figure 7b malformed:\n%s", f7b)
	}
	f7c := report.Figure7c().String()
	if !strings.Contains(f7c, "TEM & TOM") {
		t.Errorf("figure 7c malformed:\n%s", f7c)
	}
	f8 := report.Figure8(map[string]int{"groovyc": 16, "kotlinc": 13, "javac": 10}).String()
	if !strings.Contains(f8, "master only") || !strings.Contains(f8, "[1-3]") {
		t.Errorf("figure 8 malformed:\n%s", f8)
	}
	if vs := report.VerdictSummary().String(); !strings.Contains(vs, "generator") {
		t.Errorf("verdict summary malformed:\n%s", vs)
	}
}

func TestCatalogTablesMatchPaper(t *testing.T) {
	a, b, c := CatalogTables()
	sa := a.String()
	// Spot-check the paper's exact numbers.
	if !strings.Contains(sa, "113") || !strings.Contains(sa, "156") || !strings.Contains(sa, "85") {
		t.Errorf("figure 7a ground truth should contain 113/156/85:\n%s", sa)
	}
	sb := b.String()
	if !strings.Contains(sb, "104") || !strings.Contains(sb, "30") {
		t.Errorf("figure 7b ground truth should contain 104/30:\n%s", sb)
	}
	sc := c.String()
	if !strings.Contains(sc, "78") || !strings.Contains(sc, "52") || !strings.Contains(sc, "24") {
		t.Errorf("figure 7c ground truth should contain 78/52/24:\n%s", sc)
	}
}

func TestMutationCoverageExperiment(t *testing.T) {
	cov := RunMutationCoverage(compilers.Kotlinc(), 25, 0, generator.DefaultConfig())
	if cov.Compiler != "kotlinc" {
		t.Errorf("compiler = %s", cov.Compiler)
	}
	// RQ3's central claim: TEM exercises checker paths the generator does
	// not (the inference probes).
	if cov.TEMDelta.Lines+cov.TEMDelta.Funcs+cov.TEMDelta.Branches == 0 {
		t.Error("TEM should cover additional probe sites")
	}
	// And the additional coverage concentrates in inference/resolution
	// regions.
	inferExtra := 0
	for region, d := range cov.TEMByRegion {
		if strings.Contains(region, "inference") || strings.Contains(region, "resolve") {
			inferExtra += d.Lines + d.Funcs + d.Branches
		}
	}
	if inferExtra == 0 {
		t.Errorf("TEM extra coverage should hit inference regions, got %+v", cov.TEMByRegion)
	}
	if !strings.Contains(cov.String(), "TEM change") {
		t.Errorf("report rendering:\n%s", cov)
	}
}

func TestSuiteCoverageExperiment(t *testing.T) {
	cov := RunSuiteCoverage(compilers.Javac(), 40, 500, generator.DefaultConfig())
	// RQ4's claim: the suite already covers almost everything; random
	// programs add a small increment.
	if cov.SuiteLine <= 50 {
		t.Errorf("suite line coverage suspiciously low: %.2f%%", cov.SuiteLine)
	}
	if cov.BothLine != 100 {
		t.Errorf("union coverage should be 100%% of its own universe, got %.2f", cov.BothLine)
	}
	if cov.LineChange() < 0 || cov.LineChange() > 30 {
		t.Errorf("line change out of plausible range: %+.2f", cov.LineChange())
	}
	if !strings.Contains(cov.String(), "% change") {
		t.Errorf("report rendering:\n%s", cov)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"xxx", "1"}},
	}
	s := tbl.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "xxx") || !strings.Contains(s, "---") {
		t.Errorf("table rendering:\n%s", s)
	}
}

func TestREMStageRunsInCampaign(t *testing.T) {
	report := Run(smallOptions(30))
	if n := report.ProgramsRun[oracle.REMMutant]; n == 0 || n > 30 {
		t.Errorf("REM executions = %d, want in (0, 30]", n)
	}
	// REM mutants are well-typed: they must never produce URB verdicts.
	for comp, perKind := range report.Verdicts {
		if v := perKind[oracle.REMMutant]; v != nil {
			if v[oracle.UnexpectedAcceptance] != 0 {
				t.Errorf("%s: REM mutants produced URB verdicts", comp)
			}
		}
	}
}
