package campaign

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/oracle"
)

// chaosSoakOptions is a campaign with every fault kind injected at 10%:
// panics (sandbox), hangs (watchdog), transients (retry/backoff), and
// flaky verdicts (double-compile probe). The breaker stays disabled
// here — quarantine depends on failure arrival order, and this test's
// contract is a bit-for-bit deterministic report across worker counts.
func chaosSoakOptions(programs int) Options {
	o := smallOptions(programs)
	o.Harness = harness.Options{
		Timeout:       250 * time.Millisecond,
		Retries:       2,
		BackoffBase:   time.Microsecond,
		Seed:          1,
		DoubleCompile: true,
	}
	o.Chaos = &harness.ChaosOptions{
		Seed:          1,
		PanicRate:     0.10,
		HangRate:      0.10,
		TransientRate: 0.10,
		FlakyRate:     0.10,
		HangDuration:  30 * time.Second, // far beyond the watchdog: every hang must time out
	}
	return o
}

func TestChaosSoakCompletesAndIsDeterministic(t *testing.T) {
	o1 := chaosSoakOptions(20)
	o1.Workers = 1
	o2 := chaosSoakOptions(20)
	o2.Workers = 8
	r1 := Run(o1)
	r2 := Run(o2)
	if r1.Err != nil || r2.Err != nil {
		t.Fatalf("chaos campaign did not complete: %v / %v", r1.Err, r2.Err)
	}
	// The determinism contract survives 10% injected faults: fault
	// decisions are keyed on (seed, compiler, invocation), never on
	// arrival order, and the ledger folds in unit order.
	if !reflect.DeepEqual(r1.Found, r2.Found) {
		t.Errorf("Found differs between 1 and 8 workers under chaos")
	}
	if !reflect.DeepEqual(r1.Verdicts, r2.Verdicts) {
		t.Errorf("Verdicts differ between 1 and 8 workers under chaos")
	}
	if !reflect.DeepEqual(r1.ProgramsRun, r2.ProgramsRun) {
		t.Errorf("ProgramsRun differs: %v vs %v", r1.ProgramsRun, r2.ProgramsRun)
	}
	if !reflect.DeepEqual(r1.Faults, r2.Faults) {
		t.Errorf("fault ledger differs between 1 and 8 workers:\n%v\nvs\n%v", r1.Faults, r2.Faults)
	}

	// Every injected fault is accounted for in the ledger.
	rec := r1.Faults.PerCompiler["groovyc"]
	inj := r1.Faults.Injected["groovyc"]
	if rec == nil {
		t.Fatal("no fault record for the compiler under chaos")
	}
	if inj.Panics == 0 || inj.Hangs == 0 || inj.Transients == 0 || inj.Flips == 0 {
		t.Fatalf("expected every fault kind injected at 10%%: %+v", inj)
	}
	if int64(rec.Crashes) != inj.Panics {
		t.Errorf("sandboxed crashes = %d, injected panics = %d", rec.Crashes, inj.Panics)
	}
	if int64(rec.Timeouts) != inj.Hangs {
		t.Errorf("watchdog timeouts = %d, injected hangs = %d", rec.Timeouts, inj.Hangs)
	}
	if int64(rec.Retries) != inj.Transients {
		t.Errorf("retries = %d, injected transients = %d", rec.Retries, inj.Transients)
	}
	if int64(rec.Flaky) != inj.Flips {
		t.Errorf("flaky verdicts = %d, injected flips = %d", rec.Flaky, inj.Flips)
	}

	// Hangs surface as the oracle's hang verdict — a reportable bug
	// class distinct from crashes.
	hangs := 0
	for _, perKind := range r1.Verdicts["groovyc"] {
		hangs += perKind[oracle.CompilerHang]
	}
	if hangs != rec.Timeouts {
		t.Errorf("hang verdicts = %d, want %d (one per timeout)", hangs, rec.Timeouts)
	}
	if !r1.Faults.Faults() {
		t.Error("ledger claims a fault-free run")
	}
}

func TestChaosBreakerQuarantinesAndRecordsGaps(t *testing.T) {
	// A compiler that panics on 90% of compiles trips its breaker; the
	// campaign must complete anyway, recording quarantined compiles as
	// gaps. Workers=1 keeps breaker decisions (which depend on failure
	// arrival order) reproducible run-to-run.
	opts := func() Options {
		o := smallOptions(10)
		o.Workers = 1
		o.Harness = harness.Options{
			Timeout:          250 * time.Millisecond,
			Seed:             1,
			BreakerThreshold: 2,
			BreakerCooldown:  3,
		}
		o.Chaos = &harness.ChaosOptions{Seed: 1, PanicRate: 0.9}
		return o
	}
	r1 := Run(opts())
	if r1.Err != nil {
		t.Fatalf("campaign with a 90%%-down compiler did not complete: %v", r1.Err)
	}
	rec := r1.Faults.PerCompiler["groovyc"]
	if rec == nil || rec.Crashes == 0 {
		t.Fatalf("expected sandboxed crashes, got %+v", rec)
	}
	if rec.Quarantined == 0 {
		t.Fatalf("breaker never quarantined despite 90%% crash rate: %+v", rec)
	}
	if rec.Gaps() != rec.Quarantined+rec.Errored {
		t.Errorf("gap accounting inconsistent: %+v", rec)
	}
	// Degradation is graceful and reproducible at a fixed worker count.
	r2 := Run(opts())
	if !reflect.DeepEqual(r1.Faults, r2.Faults) {
		t.Errorf("single-worker chaos runs disagree:\n%v\nvs\n%v", r1.Faults, r2.Faults)
	}
	if !reflect.DeepEqual(r1.Verdicts, r2.Verdicts) {
		t.Errorf("single-worker chaos verdicts disagree")
	}
}

func TestChaosFreeCampaignHasCleanLedger(t *testing.T) {
	r := Run(smallOptions(10))
	if r.Faults == nil {
		t.Fatal("report has no ledger")
	}
	if r.Faults.Faults() {
		t.Errorf("chaos-free campaign recorded harness faults:\n%v", r.Faults)
	}
	total := r.Faults.Total()
	if total.Compiles == 0 {
		t.Error("ledger recorded no compiles")
	}
}
