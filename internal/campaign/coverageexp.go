package campaign

import (
	"context"
	"fmt"

	"repro/internal/apisynth"
	"repro/internal/compilers"
	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/generator"
	"repro/internal/oracle"
	"repro/internal/pipeline"
)

// MutationCoverage is the Figure 9 experiment for one compiler: coverage
// of N generated programs, and the additional distinct probe sites their
// TEM and TOM mutants exercise, with the per-region breakdown the paper
// highlights (resolve.*, types.*, stc.*, comp.*, code.*).
type MutationCoverage struct {
	Compiler string
	Programs int
	// Generator coverage as percentages of the experiment's universe.
	GenLine, GenFunc, GenBranch float64
	// TEM/TOM additional distinct sites over the generator baseline.
	TEMDelta, TOMDelta coverage.Delta
	// ByRegion maps the compiler's package name to TEM's extra sites
	// there.
	TEMByRegion map[string]coverage.Delta
	// Stats holds the per-stage pipeline statistics for the run.
	Stats *pipeline.Stats
}

// String renders the report in the shape of Figure 9's rows.
func (m *MutationCoverage) String() string {
	s := fmt.Sprintf("%s (over %d programs)\n", m.Compiler, m.Programs)
	s += fmt.Sprintf("  Generator   %6.2f %% line, %6.2f %% function, %6.2f %% branch (of experiment universe)\n",
		m.GenLine, m.GenFunc, m.GenBranch)
	s += fmt.Sprintf("  TEM change  +%d lines, +%d functions, +%d branches\n",
		m.TEMDelta.Lines, m.TEMDelta.Funcs, m.TEMDelta.Branches)
	s += fmt.Sprintf("  TOM change  +%d lines, +%d functions, +%d branches\n",
		m.TOMDelta.Lines, m.TOMDelta.Funcs, m.TOMDelta.Branches)
	for region, d := range m.TEMByRegion {
		if d.Lines+d.Funcs+d.Branches == 0 {
			continue
		}
		s += fmt.Sprintf("  TEM %-28s +%d lines, +%d functions, +%d branches\n",
			region, d.Lines, d.Funcs, d.Branches)
	}
	return s
}

// RunMutationCoverage performs the RQ3 experiment (Figure 9): generate
// programs, produce one TEM and one TOM mutant per program, and measure
// the coverage increase each mutation brings over the generator baseline.
func RunMutationCoverage(c *compilers.Compiler, programs int, seed int64, cfg generator.Config) *MutationCoverage {
	out, _ := RunMutationCoverageContext(context.Background(), c, programs, seed, cfg, 0)
	return out
}

// RunMutationCoverageContext is RunMutationCoverage with cancellation
// and an explicit per-stage worker count (0 means GOMAXPROCS). The
// reported quantities are distinct-site counts, so they are
// deterministic regardless of worker interleaving.
//
// A shim over the lifecycle API: the experiment is a campaign plan.
func RunMutationCoverageContext(ctx context.Context, c *compilers.Compiler, programs int, seed int64, cfg generator.Config, workers int) (*MutationCoverage, error) {
	plan := &mutationCoveragePlan{compiler: c, cfg: cfg}
	camp := newCampaign(Options{
		Seed: seed, Programs: programs, Workers: workers,
		GenConfig: cfg, Compilers: []*compilers.Compiler{c},
	}, plan)
	if err := camp.Start(ctx); err != nil {
		return nil, err
	}
	if _, err := camp.Wait(); err != nil {
		return nil, err
	}
	return plan.out, nil
}

// mutationCoveragePlan is the Figure 9 experiment behind the lifecycle.
// Coverage collectors accumulate as stage side effects, so the plan is
// not pausable — there is no journaled fold to suspend into.
type mutationCoveragePlan struct {
	compiler *compilers.Compiler
	cfg      generator.Config
	out      *MutationCoverage
}

func (p *mutationCoveragePlan) name() string { return "mutation-coverage" }

func (p *mutationCoveragePlan) pausable(*Campaign) bool { return false }

func (p *mutationCoveragePlan) run(ctx context.Context, c *Campaign, _ bool) error {
	covGen := coverage.NewCollector()
	covTEM := coverage.NewCollector()
	covTOM := coverage.NewCollector()
	byKind := map[oracle.InputKind]coverage.Recorder{
		oracle.Generated: covGen,
		oracle.TEMMutant: covTEM,
		oracle.TOMMutant: covTOM,
	}

	pl := &pipeline.Pipeline{
		Source: pipeline.NewGeneratorSource(c.opts.Seed, c.opts.Programs),
		Stages: []pipeline.Stage{
			&pipeline.Generate{Config: p.cfg},
			&pipeline.Mutate{TEM: true, TOM: true},
			&pipeline.Execute{
				Compilers: []*compilers.Compiler{p.compiler},
				Coverage:  func(kind oracle.InputKind) coverage.Recorder { return byKind[kind] },
			},
			pipeline.Judge{},
		},
		Aggregator: pipeline.Discard{},
		Workers:    c.opts.Workers,
	}
	stats, err := pl.Run(ctx)
	if err != nil {
		return err
	}

	universe := covGen.Clone()
	universe.Merge(covTEM)
	universe.Merge(covTOM)

	out := &MutationCoverage{
		Compiler:    p.compiler.Name(),
		Programs:    c.opts.Programs,
		TEMDelta:    covTEM.NewSites(covGen),
		TOMDelta:    covTOM.NewSites(covGen),
		TEMByRegion: map[string]coverage.Delta{},
		Stats:       stats,
	}
	out.GenLine, out.GenFunc, out.GenBranch = covGen.Percent(universe)
	for _, region := range covTEM.Regions() {
		d := covTEM.NewSitesIn(covGen, region)
		out.TEMByRegion[p.compiler.PackageFor(region)] = d
	}
	p.out = out
	return nil
}

// SynthCoverage is the three-way input-kind comparison extending RQ3/
// RQ4 to API-driven synthesis: coverage of N generated programs, the
// additional distinct probe sites their TEM+TOM mutants reach, and the
// additional sites N synthesized programs (same seeds, same budget)
// reach — with synthesis's extra sites broken down by region, since the
// point of walking API signatures is to land in the resolution and
// inference paths.
type SynthCoverage struct {
	Compiler string
	Programs int
	// Generator coverage as percentages of the experiment's universe.
	GenLine, GenFunc, GenBranch float64
	// MutDelta is the TEM+TOM mutants' additional distinct sites over
	// the generator baseline; SynthDelta the synthesized programs'.
	MutDelta, SynthDelta coverage.Delta
	// SynthByRegion maps the compiler's package names to synthesis's
	// extra sites there.
	SynthByRegion map[string]coverage.Delta
	// Stats holds both pipeline runs' per-stage statistics.
	Stats *pipeline.Stats
}

// String renders the three-way comparison, one row per input kind.
func (s *SynthCoverage) String() string {
	out := fmt.Sprintf("%s (over %d programs per kind)\n", s.Compiler, s.Programs)
	out += fmt.Sprintf("  Generator     %6.2f %% line, %6.2f %% function, %6.2f %% branch (of experiment universe)\n",
		s.GenLine, s.GenFunc, s.GenBranch)
	out += fmt.Sprintf("  Mutants change +%d lines, +%d functions, +%d branches\n",
		s.MutDelta.Lines, s.MutDelta.Funcs, s.MutDelta.Branches)
	out += fmt.Sprintf("  Synth change   +%d lines, +%d functions, +%d branches\n",
		s.SynthDelta.Lines, s.SynthDelta.Funcs, s.SynthDelta.Branches)
	for region, d := range s.SynthByRegion {
		if d.Lines+d.Funcs+d.Branches == 0 {
			continue
		}
		out += fmt.Sprintf("  Synth %-26s +%d lines, +%d functions, +%d branches\n",
			region, d.Lines, d.Funcs, d.Branches)
	}
	return out
}

// RunSynthCoverage performs the three-way generated vs mutated vs
// synthesized coverage experiment.
func RunSynthCoverage(c *compilers.Compiler, programs int, seed int64, cfg generator.Config, synth apisynth.Config) *SynthCoverage {
	out, _ := RunSynthCoverageContext(context.Background(), c, programs, seed, cfg, synth, 0)
	return out
}

// RunSynthCoverageContext is RunSynthCoverage with cancellation and an
// explicit worker count. Two pipelines over the same seed range: one
// generates and mutates, one synthesizes every unit from the API corpus
// (synth.Corpus; the built-in default when empty). Distinct-site counts
// are deterministic regardless of worker interleaving.
//
// A shim over the lifecycle API: the experiment is a campaign plan.
func RunSynthCoverageContext(ctx context.Context, c *compilers.Compiler, programs int, seed int64, cfg generator.Config, synth apisynth.Config, workers int) (*SynthCoverage, error) {
	plan := &synthCoveragePlan{compiler: c, cfg: cfg, synth: synth}
	camp := newCampaign(Options{
		Seed: seed, Programs: programs, Workers: workers,
		GenConfig: cfg, Compilers: []*compilers.Compiler{c},
	}, plan)
	if err := camp.Start(ctx); err != nil {
		return nil, err
	}
	if _, err := camp.Wait(); err != nil {
		return nil, err
	}
	return plan.out, nil
}

// synthCoveragePlan is the three-way experiment behind the lifecycle.
// Not pausable — coverage accumulates as stage side effects with no
// journaled fold.
type synthCoveragePlan struct {
	compiler *compilers.Compiler
	cfg      generator.Config
	synth    apisynth.Config
	out      *SynthCoverage
}

func (p *synthCoveragePlan) name() string { return "synth-coverage" }

func (p *synthCoveragePlan) pausable(*Campaign) bool { return false }

func (p *synthCoveragePlan) run(ctx context.Context, c *Campaign, _ bool) error {
	// Cadence is forced to every-unit: the experiment compares N
	// synthesized programs against N generated ones, whatever cadence
	// the fuzzing campaign itself would use.
	prod, err := newSynthProducer(apisynth.Config{Every: 1, Corpus: p.synth.Corpus})
	if err != nil {
		return err
	}

	stats := pipeline.NewStats()
	covGen := coverage.NewCollector()
	covMut := coverage.NewCollector()
	covSynth := coverage.NewCollector()
	byKind := map[oracle.InputKind]coverage.Recorder{
		oracle.Generated: covGen,
		oracle.TEMMutant: covMut,
		oracle.TOMMutant: covMut,
	}

	genRun := &pipeline.Pipeline{
		Source: pipeline.NewGeneratorSource(c.opts.Seed, c.opts.Programs),
		Stages: []pipeline.Stage{
			&pipeline.Generate{Config: p.cfg},
			&pipeline.Mutate{TEM: true, TOM: true},
			&pipeline.Execute{
				Compilers: []*compilers.Compiler{p.compiler},
				Coverage:  func(kind oracle.InputKind) coverage.Recorder { return byKind[kind] },
			},
			pipeline.Judge{},
		},
		Aggregator: pipeline.Discard{},
		Workers:    c.opts.Workers,
		Stats:      stats,
		Label:      "generate+mutate",
	}
	if _, err := genRun.Run(ctx); err != nil {
		return err
	}

	synthRun := &pipeline.Pipeline{
		Source: pipeline.NewGeneratorSource(c.opts.Seed, c.opts.Programs),
		Stages: []pipeline.Stage{
			&pipeline.Generate{Config: p.cfg, Producers: []pipeline.Producer{prod}},
			&pipeline.Execute{
				Compilers: []*compilers.Compiler{p.compiler},
				Coverage:  func(oracle.InputKind) coverage.Recorder { return covSynth },
			},
			pipeline.Judge{},
		},
		Aggregator: pipeline.Discard{},
		Workers:    c.opts.Workers,
		Stats:      stats,
		Label:      "synthesize",
	}
	if _, err := synthRun.Run(ctx); err != nil {
		return err
	}

	universe := covGen.Clone()
	universe.Merge(covMut)
	universe.Merge(covSynth)

	out := &SynthCoverage{
		Compiler:      p.compiler.Name(),
		Programs:      c.opts.Programs,
		MutDelta:      covMut.NewSites(covGen),
		SynthDelta:    covSynth.NewSites(covGen),
		SynthByRegion: map[string]coverage.Delta{},
		Stats:         stats,
	}
	out.GenLine, out.GenFunc, out.GenBranch = covGen.Percent(universe)
	for _, region := range covSynth.Regions() {
		out.SynthByRegion[p.compiler.PackageFor(region)] = covSynth.NewSitesIn(covGen, region)
	}
	p.out = out
	return nil
}

// SuiteCoverage is the Figure 10 experiment for one compiler: the
// compiler's own test suite's coverage versus the suite plus N random
// programs — the paper's point being that the increment is negligible
// even though the random programs find many bugs.
type SuiteCoverage struct {
	Compiler string
	Random   int
	// Percentages relative to the union universe.
	SuiteLine, SuiteFunc, SuiteBranch float64
	BothLine, BothFunc, BothBranch    float64
	// Stats holds the per-stage statistics of both pipeline runs (the
	// suite replay and the random top-up), each under its own run scope.
	Stats *pipeline.Stats
}

// LineChange returns the percentage-point increment random programs add.
func (s *SuiteCoverage) LineChange() float64 { return s.BothLine - s.SuiteLine }

// FuncChange returns the function-coverage increment.
func (s *SuiteCoverage) FuncChange() float64 { return s.BothFunc - s.SuiteFunc }

// BranchChange returns the branch-coverage increment.
func (s *SuiteCoverage) BranchChange() float64 { return s.BothBranch - s.SuiteBranch }

// String renders the Figure 10 row.
func (s *SuiteCoverage) String() string {
	return fmt.Sprintf(
		"%s\n  test suite           %6.2f %% line, %6.2f %% function, %6.2f %% branch\n"+
			"  test suite & random  %6.2f %% line, %6.2f %% function, %6.2f %% branch\n"+
			"  %% change             %+6.2f %%      %+6.2f %%        %+6.2f %%\n",
		s.Compiler, s.SuiteLine, s.SuiteFunc, s.SuiteBranch,
		s.BothLine, s.BothFunc, s.BothBranch,
		s.LineChange(), s.FuncChange(), s.BranchChange())
}

// RunSuiteCoverage performs the RQ4 experiment (Figure 10).
func RunSuiteCoverage(c *compilers.Compiler, random int, seed int64, cfg generator.Config) *SuiteCoverage {
	out, _ := RunSuiteCoverageContext(context.Background(), c, random, seed, cfg, 0)
	return out
}

// RunSuiteCoverageContext is RunSuiteCoverage with cancellation and an
// explicit per-stage worker count: one pipeline replays the compiler's
// test suite, a second streams random programs on top.
//
// A shim over the lifecycle API: the experiment is a campaign plan.
func RunSuiteCoverageContext(ctx context.Context, c *compilers.Compiler, random int, seed int64, cfg generator.Config, workers int) (*SuiteCoverage, error) {
	plan := &suiteCoveragePlan{compiler: c, cfg: cfg}
	camp := newCampaign(Options{
		Seed: seed, Programs: random, Workers: workers,
		GenConfig: cfg, Compilers: []*compilers.Compiler{c},
	}, plan)
	if err := camp.Start(ctx); err != nil {
		return nil, err
	}
	if _, err := camp.Wait(); err != nil {
		return nil, err
	}
	return plan.out, nil
}

// suiteCoveragePlan is the Figure 10 experiment behind the lifecycle:
// one pipeline replays the compiler's test suite, a second streams
// random programs on top. Not pausable — coverage accumulates as stage
// side effects with no journaled fold.
type suiteCoveragePlan struct {
	compiler *compilers.Compiler
	cfg      generator.Config
	out      *SuiteCoverage
}

func (p *suiteCoveragePlan) name() string { return "suite-coverage" }

func (p *suiteCoveragePlan) pausable(*Campaign) bool { return false }

func (p *suiteCoveragePlan) run(ctx context.Context, c *Campaign, _ bool) error {
	// Both pipelines share one Stats: each Run opens its own scope, so
	// the suite replay and the random top-up report side by side instead
	// of folding into the same per-stage buckets.
	stats := pipeline.NewStats()
	covSuite := coverage.NewCollector()
	suite := &pipeline.Pipeline{
		Source: pipeline.NewProgramSource(oracle.Suite, corpus.TestSuite(p.compiler.Name())),
		Stages: []pipeline.Stage{
			&pipeline.Generate{Config: p.cfg},
			&pipeline.Execute{
				Compilers: []*compilers.Compiler{p.compiler},
				Coverage:  func(oracle.InputKind) coverage.Recorder { return covSuite },
			},
			pipeline.Judge{},
		},
		Aggregator: pipeline.Discard{},
		Workers:    c.opts.Workers,
		Stats:      stats,
		Label:      "suite",
	}
	if _, err := suite.Run(ctx); err != nil {
		return err
	}

	covBoth := covSuite.Clone()
	randomRun := &pipeline.Pipeline{
		Source: pipeline.NewGeneratorSource(c.opts.Seed, c.opts.Programs),
		Stages: []pipeline.Stage{
			&pipeline.Generate{Config: p.cfg},
			&pipeline.Execute{
				Compilers: []*compilers.Compiler{p.compiler},
				Coverage:  func(oracle.InputKind) coverage.Recorder { return covBoth },
			},
			pipeline.Judge{},
		},
		Aggregator: pipeline.Discard{},
		Workers:    c.opts.Workers,
		Stats:      stats,
		Label:      "random",
	}
	if _, err := randomRun.Run(ctx); err != nil {
		return err
	}

	out := &SuiteCoverage{Compiler: p.compiler.Name(), Random: c.opts.Programs, Stats: stats}
	out.SuiteLine, out.SuiteFunc, out.SuiteBranch = covSuite.Percent(covBoth)
	out.BothLine, out.BothFunc, out.BothBranch = covBoth.Percent(covBoth)
	p.out = out
	return nil
}
