package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/bugs"
	"repro/internal/compilers"
	"repro/internal/difforacle"
	"repro/internal/generator"
	"repro/internal/oracle"
	"repro/internal/pipeline"
	"repro/internal/types"
)

// diffOptions is a differential-oracle campaign over all three
// simulated compilers — disagreement needs at least two lanes.
func diffOptions(programs int) Options {
	o := smallOptions(programs)
	o.Compilers = compilers.All()
	o.Oracle = Differential
	return o
}

// rebuildUnit replays the Generate and Mutate stages for a seed exactly
// as the campaign pipeline runs them, so a test can recompute what any
// unit's inputs were from a report's FirstSeed alone.
func rebuildUnit(t *testing.T, seed int64) *pipeline.Unit {
	t.Helper()
	u := &pipeline.Unit{Seed: seed, Kind: oracle.Generated}
	gen := &pipeline.Generate{Config: generator.DefaultConfig()}
	mut := &pipeline.Mutate{TEM: true, TOM: true, TEMTOM: true, REM: true}
	if err := gen.Run(context.Background(), u); err != nil {
		t.Fatalf("seed %d: generate stage: %v", seed, err)
	}
	if err := mut.Run(context.Background(), u); err != nil {
		t.Fatalf("seed %d: mutate stage: %v", seed, err)
	}
	return u
}

// diffSamples compiles one input with every compiler and normalizes the
// results into a verdict vector.
func diffSamples(comps []*compilers.Compiler, in pipeline.Input) []difforacle.Sample {
	samples := make([]difforacle.Sample, len(comps))
	for i, c := range comps {
		samples[i] = difforacle.Sample{
			Compiler: c.Name(),
			Lane:     difforacle.Normalize(c.Compile(in.Prog, nil)),
		}
	}
	return samples
}

// TestDifferentialCampaignFindsDisagreements: the seeded catalogs
// differ across the three compilers, so a modest differential campaign
// must surface cross-compiler disagreements — and every attributed
// record must be independently re-derivable from its FirstSeed.
func TestDifferentialCampaignFindsDisagreements(t *testing.T) {
	report := Run(diffOptions(50))
	if report.Err != nil {
		t.Fatalf("differential campaign failed: %v", report.Err)
	}
	if len(report.Disagreements) == 0 {
		t.Fatal("differential campaign over three divergent catalogs found no disagreements")
	}

	comps := compilers.All()
	compilerSourced := 0
	for id, rec := range report.Disagreements {
		if rec.Translators {
			continue
		}
		compilerSourced++
		if rec.Vector != id {
			t.Errorf("%s: record keyed by %q, vector is %q", id, id, rec.Vector)
		}
		// Re-derive the finding from scratch: rebuild the unit the
		// campaign judged first, recompute the verdict vector for each
		// input kind the record claims, and check analysis agrees.
		u := rebuildUnit(t, rec.FirstSeed)
		matched := false
		for _, in := range u.Inputs {
			if !rec.FoundBy[in.Kind] {
				continue
			}
			samples := diffSamples(comps, in)
			if difforacle.VectorString(samples) != rec.Vector {
				continue
			}
			matched = true
			an := difforacle.Analyze(samples)
			if !an.Disagree {
				t.Errorf("%s: recomputed vector does not disagree", id)
			}
			if len(an.Suspects) != len(rec.Suspects) {
				t.Errorf("%s: recomputed suspects %v, report says %v", id, an.Suspects, rec.Suspects)
			} else {
				for i := range an.Suspects {
					if an.Suspects[i] != rec.Suspects[i] {
						t.Errorf("%s: recomputed suspects %v, report says %v", id, an.Suspects, rec.Suspects)
						break
					}
				}
			}
		}
		if !matched {
			t.Errorf("%s: no input of seed %d reproduces the recorded vector", id, rec.FirstSeed)
		}
	}
	if compilerSourced == 0 {
		t.Error("all disagreements came from translator conformance; none from compiler vectors")
	}
}

// TestDifferentialURBSuspectAttribution pins the headline attribution
// case: a URB bug makes exactly one compiler silently accept an
// ill-typed TOM mutant that the other two reject, and the differential
// report must name that compiler — alone — as the suspect, found by the
// TOM lane. The seed is discovered by scanning with the same pipeline
// stages the campaign runs, so the test stays valid as catalogs evolve.
func TestDifferentialURBSuspectAttribution(t *testing.T) {
	comps := compilers.All()
	seed, suspect := int64(-1), ""
scan:
	for s := int64(0); s < 400; s++ {
		u := rebuildUnit(t, s)
		for _, in := range u.Inputs {
			if in.Kind != oracle.TOMMutant {
				continue
			}
			accepts, rejects := []string{}, 0
			urb := false
			for _, c := range comps {
				res := c.Compile(in.Prog, nil)
				switch difforacle.Normalize(res) {
				case difforacle.Accept:
					accepts = append(accepts, c.Name())
					for _, b := range res.Triggered {
						if b.Symptom == bugs.URB {
							urb = true
						}
					}
				case difforacle.Reject:
					rejects++
				default:
					continue scan // crash/hang lane would muddy attribution
				}
			}
			if len(accepts) == 1 && rejects == 2 && urb {
				seed, suspect = s, accepts[0]
				break scan
			}
		}
	}
	if seed < 0 {
		t.Fatal("no seed in [0,400) yields a 1-vs-2 URB acceptance split on a TOM mutant")
	}

	o := diffOptions(1)
	o.Seed = seed
	report := Run(o)
	if report.Err != nil {
		t.Fatalf("campaign at seed %d failed: %v", seed, report.Err)
	}
	found := false
	for _, rec := range report.Disagreements {
		if rec.Translators || !rec.FoundBy[oracle.TOMMutant] {
			continue
		}
		if len(rec.Suspects) == 1 && rec.Suspects[0] == suspect {
			found = true
		}
	}
	if !found {
		t.Errorf("seed %d: report does not attribute the TOM disagreement to %s; records: %+v",
			seed, suspect, report.Disagreements)
	}
}

// TestDifferentialCampaignDeterministic is the differential oracle's
// determinism soak: the report document is byte-identical across worker
// counts and type-cache settings, because disagreements fold in unit
// order from per-unit records that never depend on scheduling.
func TestDifferentialCampaignDeterministic(t *testing.T) {
	prevCaching := types.CachingEnabled()
	defer types.SetCaching(prevCaching)

	run := func(caching bool, workers int) *Report {
		types.SetCaching(caching)
		types.ResetCaches()
		o := diffOptions(40)
		o.Workers = workers
		return Run(o)
	}
	docBytes := func(t *testing.T, r *Report, name string) []byte {
		t.Helper()
		if r.Err != nil {
			t.Fatalf("%s campaign failed: %v", name, r.Err)
		}
		b, err := json.Marshal(r.Doc())
		if err != nil {
			t.Fatalf("%s: marshal doc: %v", name, err)
		}
		return b
	}

	baseline := run(false, 1)
	if len(baseline.Disagreements) == 0 {
		t.Fatal("baseline differential campaign found no disagreements; soak proves nothing")
	}
	want := docBytes(t, baseline, "baseline")

	for _, tc := range []struct {
		name    string
		caching bool
		workers int
	}{
		{"cached-1-worker", true, 1},
		{"cached-8-workers", true, 8},
		{"uncached-8-workers", false, 8},
	} {
		got := docBytes(t, run(tc.caching, tc.workers), tc.name)
		if !bytes.Equal(want, got) {
			t.Errorf("%s: report doc differs from uncached single-worker baseline:\n%s\nvs\n%s",
				tc.name, want, got)
		}
	}
}

// TestDifferentialKillResumeDeterminism: disagreements survive the
// durability layer — journaled per-unit diff records replay and
// snapshot diff states restore into the same fold an uninterrupted run
// produces, through repeated kills, torn journals, and lost snapshots.
func TestDifferentialKillResumeDeterminism(t *testing.T) {
	golden := Run(diffOptions(30))
	if golden.Err != nil {
		t.Fatal(golden.Err)
	}
	if len(golden.Disagreements) == 0 {
		t.Fatal("golden differential run found no disagreements; resume test proves nothing")
	}
	want, err := json.Marshal(golden.Doc())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		o := diffOptions(30)
		o.Workers = workers
		o.StateDir = t.TempDir()
		o.SnapshotEvery = 4
		r := runWithKills(t, o, int64(2000+workers), 6, 120)
		got, err := json.Marshal(r.Doc())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("workers=%d: kill-resume differential doc diverged from golden:\n%s\nvs\n%s",
				workers, got, want)
		}
	}
}

// TestDifferentialChaosDeterministic: injected panics, hangs, and
// transients land in crash/hang lanes, which abstain — so under chaos
// the differential fold must still be byte-identical across worker
// counts, and fault-degraded lanes must never fabricate disagreements.
func TestDifferentialChaosDeterministic(t *testing.T) {
	run := func(workers int) *Report {
		o := chaosSoakOptions(25)
		o.Compilers = compilers.All()
		o.Oracle = Differential
		o.Workers = workers
		return Run(o)
	}
	r1, r8 := run(1), run(8)
	if r1.Err != nil || r8.Err != nil {
		t.Fatalf("chaos differential campaign did not complete: %v / %v", r1.Err, r8.Err)
	}
	b1, err := json.Marshal(r1.Doc())
	if err != nil {
		t.Fatal(err)
	}
	b8, err := json.Marshal(r8.Doc())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b8) {
		t.Errorf("chaos differential report differs between 1 and 8 workers:\n%s\nvs\n%s", b1, b8)
	}
}
