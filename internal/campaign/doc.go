// ReportDoc: the deterministic, JSON-marshalable projection of a
// Report. A Report itself cannot round-trip through JSON (Options
// carries a Gate func, Stats carries wall-clock timings, Recovery and
// Corpus depend on how many times the run was interrupted), so the
// HTTP report endpoint and the CLI's -report-json flag both serve this
// projection instead — and because it contains only the deterministic
// fold, a campaign submitted over HTTP, paused, resumed, and fetched
// encodes byte-for-byte identically to an uninterrupted in-process run
// of the same options. CI diffs the two files directly.

package campaign

import "sort"

// BugDoc is one found bug in a ReportDoc.
type BugDoc struct {
	ID       string `json:"id"`
	Compiler string `json:"compiler"`
	Symptom  string `json:"symptom"`
	// Technique is the Figure 7c attribution.
	Technique string `json:"technique"`
	// FoundBy lists the input kinds that triggered the bug, sorted.
	FoundBy   []string `json:"found_by"`
	FirstSeed int64    `json:"first_seed"`
	Hits      int      `json:"hits"`
}

// ReportDoc is the deterministic projection of a Report. Fields with
// map keys render through String() names, lists are sorted, and
// nothing wall-clock or process-dependent is included.
type ReportDoc struct {
	Complete bool   `json:"complete"`
	Error    string `json:"error,omitempty"`
	Programs int    `json:"programs"`
	// ProgramsRun counts pipeline executions per input kind.
	ProgramsRun map[string]int `json:"programs_run"`
	Batches     int            `json:"batches"`
	TEMRepairs  int            `json:"tem_repairs"`
	// Bugs lists the distinct bugs found, sorted by compiler then ID.
	Bugs []BugDoc `json:"bugs"`
	// Verdicts counts oracle outcomes per compiler, kind, and verdict.
	Verdicts map[string]map[string]map[string]int `json:"verdicts"`
	// BugRate is the derived bug-rate-over-time series.
	BugRate []SeriesPoint `json:"bug_rate,omitempty"`
	// Disagreements lists the differential oracle's distinct findings,
	// sorted by ID; absent under the ground-truth oracle.
	Disagreements []DiffDoc `json:"disagreements,omitempty"`
	// DiffMatrix is the compiler×compiler conflict-mass matrix, keyed
	// "a|b" (names sorted; Go marshals map keys in sorted order).
	DiffMatrix map[string]int `json:"diff_matrix,omitempty"`
	// Faults is the fault ledger (deterministic: folded in unit order).
	Faults *FaultsDoc `json:"faults,omitempty"`
}

// DiffDoc is one differential-oracle disagreement in a ReportDoc.
type DiffDoc struct {
	ID string `json:"id"`
	// Source is "compilers" for a verdict-vector split, "translators"
	// for a conformance split.
	Source string `json:"source"`
	// Vector is the canonical verdict vector.
	Vector string `json:"vector"`
	// Suspects is the minority side of the vote ("unattributed" never
	// appears here; an empty list means the vote tied).
	Suspects []string `json:"suspects,omitempty"`
	// FoundBy lists the input kinds that hit the disagreement, sorted.
	FoundBy   []string `json:"found_by"`
	FirstSeed int64    `json:"first_seed"`
	Hits      int      `json:"hits"`
}

// FaultsDoc mirrors harness.Ledger with JSON-stable field names.
type FaultsDoc struct {
	PerCompiler map[string]FaultDoc `json:"per_compiler"`
}

// FaultDoc is one compiler's fault record in a ReportDoc.
type FaultDoc struct {
	Compiles    int `json:"compiles"`
	Crashes     int `json:"crashes,omitempty"`
	Timeouts    int `json:"timeouts,omitempty"`
	Retries     int `json:"retries,omitempty"`
	Errored     int `json:"errored,omitempty"`
	Quarantined int `json:"quarantined,omitempty"`
	Flaky       int `json:"flaky,omitempty"`
}

// Doc projects the report onto its deterministic document form.
func (r *Report) Doc() *ReportDoc {
	doc := &ReportDoc{
		Complete:    r.Complete(),
		Programs:    r.Opts.Programs,
		ProgramsRun: map[string]int{},
		Batches:     r.Batches,
		TEMRepairs:  r.TEMRepairs,
		Bugs:        []BugDoc{},
		Verdicts:    map[string]map[string]map[string]int{},
		BugRate:     r.BugRateSeries(),
	}
	if r.Err != nil {
		doc.Error = r.Err.Error()
	}
	for kind, n := range r.ProgramsRun {
		doc.ProgramsRun[kind.String()] = n
	}
	for id, rec := range r.Found {
		bd := BugDoc{
			ID:        id,
			Compiler:  rec.Bug.Compiler,
			Symptom:   rec.Bug.Symptom.String(),
			Technique: rec.Technique(),
			FirstSeed: rec.FirstSeed,
			Hits:      rec.Hits,
		}
		for kind, on := range rec.FoundBy {
			if on {
				bd.FoundBy = append(bd.FoundBy, kind.String())
			}
		}
		sort.Strings(bd.FoundBy)
		doc.Bugs = append(doc.Bugs, bd)
	}
	sort.Slice(doc.Bugs, func(i, j int) bool {
		if doc.Bugs[i].Compiler != doc.Bugs[j].Compiler {
			return doc.Bugs[i].Compiler < doc.Bugs[j].Compiler
		}
		return doc.Bugs[i].ID < doc.Bugs[j].ID
	})
	for comp, perKind := range r.Verdicts {
		m := map[string]map[string]int{}
		for kind, perVerdict := range perKind {
			vm := map[string]int{}
			for verdict, n := range perVerdict {
				vm[verdict.String()] = n
			}
			m[kind.String()] = vm
		}
		doc.Verdicts[comp] = m
	}
	for id, rec := range r.Disagreements {
		dd := DiffDoc{
			ID:        id,
			Source:    "compilers",
			Vector:    rec.Vector,
			Suspects:  rec.Suspects,
			FirstSeed: rec.FirstSeed,
			Hits:      rec.Hits,
		}
		if rec.Translators {
			dd.Source = "translators"
		}
		for kind, on := range rec.FoundBy {
			if on {
				dd.FoundBy = append(dd.FoundBy, kind.String())
			}
		}
		sort.Strings(dd.FoundBy)
		doc.Disagreements = append(doc.Disagreements, dd)
	}
	sort.Slice(doc.Disagreements, func(i, j int) bool {
		return doc.Disagreements[i].ID < doc.Disagreements[j].ID
	})
	if len(r.DiffMatrix) > 0 {
		doc.DiffMatrix = map[string]int{}
		for pair, n := range r.DiffMatrix {
			doc.DiffMatrix[pair] = n
		}
	}
	if r.Faults != nil && len(r.Faults.PerCompiler) > 0 {
		doc.Faults = &FaultsDoc{PerCompiler: map[string]FaultDoc{}}
		for name, fr := range r.Faults.PerCompiler {
			doc.Faults.PerCompiler[name] = FaultDoc{
				Compiles: fr.Compiles, Crashes: fr.Crashes, Timeouts: fr.Timeouts,
				Retries: fr.Retries, Errored: fr.Errored, Quarantined: fr.Quarantined,
				Flaky: fr.Flaky,
			}
		}
	}
	return doc
}
