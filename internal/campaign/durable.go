// Durable campaigns: the adapter between the campaign's fold and the
// journal package's crash-safe storage. A durable run journals one
// record per aggregated unit (written on the aggregator goroutine, in
// Seq order) and periodically snapshots the folded report, so a run
// killed at any instant resumes to exactly the report an uninterrupted
// run would have produced. The fold itself is commutative — FirstSeed
// is a min-update, every other field a sum or set union — so journal
// records can replay in any order, which is what lets a corrupt record
// be quarantined mid-stream and its unit re-run at the end.

package campaign

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"repro/internal/bugs"
	"repro/internal/compilers"
	"repro/internal/difforacle"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/oracle"
	"repro/internal/pipeline"
)

const (
	metaDoc   = "meta.json"
	corpusDoc = "corpus.json"

	// defaultSnapshotEvery is the checkpoint cadence when Options leaves
	// SnapshotEvery zero: snapshot the folded report every 64 units.
	defaultSnapshotEvery = 64
)

// execRecord is one (input, compiler) outcome in a journaled unit:
// exactly the fields the fold consumes, nothing the pipeline could
// recompute. Keys are short — a campaign writes one record per unit for
// months.
type execRecord struct {
	Compiler string           `json:"c"`
	Kind     oracle.InputKind `json:"k"`
	Verdict  oracle.Verdict   `json:"v"`
	Outcome  harness.Outcome  `json:"o"`
	Attempts int              `json:"a"`
	Flaky    bool             `json:"f,omitempty"`
	// Bugs lists triggered bug IDs; the fold resolves them against the
	// compiler catalogs, so records stay valid across process restarts.
	Bugs []string `json:"b,omitempty"`
}

// gapRecord is one compile that produced no judgeable result.
type gapRecord struct {
	Compiler string           `json:"c"`
	Kind     oracle.InputKind `json:"k"`
	Outcome  harness.Outcome  `json:"o"`
	Attempts int              `json:"a"`
	Flaky    bool             `json:"f,omitempty"`
}

// laneRecord is one compiler's (or translator's) normalized lane in a
// journaled disagreement.
type laneRecord struct {
	Compiler string          `json:"c"`
	Lane     difforacle.Lane `json:"l"`
}

// diffRecord is one differential-oracle disagreement in a journaled
// unit: the verdict vector plus the attribution the fold consumes.
type diffRecord struct {
	Kind  oracle.InputKind `json:"k"`
	Xlate bool             `json:"t,omitempty"`
	Vec   []laneRecord     `json:"v"`
	Sus   []string         `json:"s,omitempty"`
	Pairs [][2]string      `json:"p,omitempty"`
}

// vector renders the record's canonical verdict vector.
func (d *diffRecord) vector() string {
	samples := make([]difforacle.Sample, len(d.Vec))
	for i, l := range d.Vec {
		samples[i] = difforacle.Sample{Compiler: l.Compiler, Lane: l.Lane}
	}
	return difforacle.VectorString(samples)
}

// id is the disagreement's dedup key: translator findings are
// namespaced so a compiler vector and a translator vector over the
// same names never collide.
func (d *diffRecord) id() string {
	if d.Xlate {
		return "xlate:" + d.vector()
	}
	return d.vector()
}

// unitRecord is the journal schema: everything the fold needs from one
// finished pipeline unit. Both the live aggregator and journal replay
// fold through this type, so a replayed unit is bit-for-bit equivalent
// to a live one.
type unitRecord struct {
	Seq      int                                `json:"seq"`
	Seed     int64                              `json:"seed"`
	Repairs  int                                `json:"r,omitempty"`
	Inputs   []oracle.InputKind                 `json:"in,omitempty"`
	Execs    []execRecord                       `json:"x,omitempty"`
	Gaps     []gapRecord                        `json:"g,omitempty"`
	Diffs    []diffRecord                       `json:"d,omitempty"`
	Injected map[string]harness.InjectionCounts `json:"inj,omitempty"`
}

// recordOf projects a finished pipeline unit onto the journal schema.
func recordOf(u *pipeline.Unit) *unitRecord {
	rec := &unitRecord{Seq: u.Seq, Seed: u.Seed, Repairs: u.Repairs, Injected: u.Injected}
	for _, in := range u.Inputs {
		rec.Inputs = append(rec.Inputs, in.Kind)
	}
	for _, g := range u.Gaps {
		rec.Gaps = append(rec.Gaps, gapRecord{
			Compiler: g.Compiler, Kind: g.Kind,
			Outcome: g.Inv.Outcome, Attempts: g.Inv.Attempts, Flaky: g.Inv.Flaky,
		})
	}
	for _, e := range u.Execs {
		er := execRecord{
			Compiler: e.Compiler, Kind: e.Kind, Verdict: e.Verdict,
			Outcome: e.Inv.Outcome, Attempts: e.Inv.Attempts, Flaky: e.Inv.Flaky,
		}
		if e.Result != nil {
			for _, b := range e.Result.Triggered {
				er.Bugs = append(er.Bugs, b.ID)
			}
		}
		rec.Execs = append(rec.Execs, er)
	}
	for _, d := range u.Diffs {
		dr := diffRecord{Kind: d.Kind, Xlate: d.Translators, Sus: d.Suspects, Pairs: d.Pairs}
		for _, s := range d.Samples {
			dr.Vec = append(dr.Vec, laneRecord{Compiler: s.Compiler, Lane: s.Lane})
		}
		rec.Diffs = append(rec.Diffs, dr)
	}
	return rec
}

// foundState is one BugRecord in a snapshot, with the bug flattened to
// its ID; restore resolves it against the compiler catalogs.
type foundState struct {
	ID        string             `json:"id"`
	FoundBy   []oracle.InputKind `json:"found_by"`
	FirstSeed int64              `json:"first_seed"`
	Hits      int                `json:"hits"`
}

// diffState is one DisagreementRecord in a snapshot.
type diffState struct {
	ID          string             `json:"id"`
	Translators bool               `json:"translators,omitempty"`
	Vector      string             `json:"vector"`
	Suspects    []string           `json:"suspects,omitempty"`
	FoundBy     []oracle.InputKind `json:"found_by"`
	FirstSeed   int64              `json:"first_seed"`
	Hits        int                `json:"hits"`
}

// snapshotState is the snapshot schema: the folded report for the
// contiguous unit prefix [0, NextSeq), plus the harness state (breaker
// positions) a resumed run must re-adopt.
type snapshotState struct {
	Fingerprint string                                                 `json:"fingerprint"`
	NextSeq     int                                                    `json:"next_seq"`
	TEMRepairs  int                                                    `json:"tem_repairs"`
	ProgramsRun map[oracle.InputKind]int                               `json:"programs_run"`
	Verdicts    map[string]map[oracle.InputKind]map[oracle.Verdict]int `json:"verdicts"`
	Found       []foundState                                           `json:"found"`
	Faults      *harness.Ledger                                        `json:"faults"`
	Breakers    map[string]harness.BreakerSnapshot                     `json:"breakers,omitempty"`
	// BugRate carries the bug-rate series, so a resumed campaign's
	// series continues instead of restarting at the resume point.
	BugRate map[int]*RateBucket `json:"rate,omitempty"`
	// Diffs and DiffMatrix carry the differential oracle's findings;
	// absent under the ground-truth oracle.
	Diffs      []diffState    `json:"diffs,omitempty"`
	DiffMatrix map[string]int `json:"diff_matrix,omitempty"`
}

// metaState is the meta.json side document: which campaign owns the
// state directory's journal, and whether its bugs merged into the
// corpus already (so resuming a finished campaign is idempotent).
type metaState struct {
	Fingerprint string `json:"fingerprint"`
	Merged      bool   `json:"merged"`
}

// CorpusEntry is one distinct bug in the cross-campaign corpus.
type CorpusEntry struct {
	Compiler  string             `json:"compiler"`
	FirstSeed int64              `json:"first_seed"`
	Hits      int                `json:"hits"`
	Campaigns int                `json:"campaigns"`
	FoundBy   []oracle.InputKind `json:"found_by"`
}

// Corpus is the persistent bug-dedup corpus: every distinct bug any
// campaign run against this state directory has found. It survives
// Reset — separate campaigns accumulate into it. The multi-tenant
// server keeps one Corpus across every hosted campaign the same way.
type Corpus struct {
	Campaigns int                     `json:"campaigns"`
	Bugs      map[string]*CorpusEntry `json:"bugs"`
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{Bugs: map[string]*CorpusEntry{}}
}

// MergeReport folds one completed campaign's found bugs into the
// corpus. The fold is a union — FirstSeed min-updates, hits and
// campaign counts sum — so merge order across campaigns does not
// matter.
func (c *Corpus) MergeReport(report *Report) {
	c.Campaigns++
	if c.Bugs == nil {
		c.Bugs = map[string]*CorpusEntry{}
	}
	for id, rec := range report.Found {
		e := c.Bugs[id]
		if e == nil {
			e = &CorpusEntry{Compiler: rec.Bug.Compiler, FirstSeed: rec.FirstSeed}
			c.Bugs[id] = e
		} else if rec.FirstSeed < e.FirstSeed {
			e.FirstSeed = rec.FirstSeed
		}
		e.Hits += rec.Hits
		e.Campaigns++
		e.FoundBy = unionKinds(e.FoundBy, rec.FoundBy)
	}
	// Differential-oracle findings accumulate under a "diff:" key prefix
	// so they never collide with catalog bug IDs; the entry's compiler
	// column carries the suspect attribution.
	for id, rec := range report.Disagreements {
		key := "diff:" + id
		e := c.Bugs[key]
		if e == nil {
			e = &CorpusEntry{Compiler: suspectLabel(rec.Suspects), FirstSeed: rec.FirstSeed}
			c.Bugs[key] = e
		} else if rec.FirstSeed < e.FirstSeed {
			e.FirstSeed = rec.FirstSeed
		}
		e.Hits += rec.Hits
		e.Campaigns++
		e.FoundBy = unionKinds(e.FoundBy, rec.FoundBy)
	}
}

// suspectLabel renders a disagreement's suspect set for corpus and
// report tables: the sorted suspects joined, or "unattributed" for a
// tied vote.
func suspectLabel(suspects []string) string {
	if len(suspects) == 0 {
		return "unattributed"
	}
	return strings.Join(suspects, "+")
}

// RecoveryInfo describes what a resumed run restored from disk.
type RecoveryInfo struct {
	// Resumed is true when the run restored prior state.
	Resumed bool
	// SnapshotSeq is the restored snapshot's fold prefix (units
	// [0, SnapshotSeq) came from the snapshot); 0 if none was found.
	SnapshotSeq int
	// Replayed counts journal records folded on top of the snapshot.
	Replayed int
	// Recovered counts units the pipeline skipped because their results
	// were restored (SnapshotSeq's prefix plus Replayed, deduplicated).
	Recovered int
	// Quarantined lists corrupt journal stretches that were skipped;
	// their units simply re-ran.
	Quarantined []journal.Corruption
}

// fingerprint hashes the campaign-defining options: everything that
// changes what the deterministic run computes, and nothing that only
// changes how it is scheduled (worker count, sync cadence). Resuming
// with a different fingerprint is refused — the journal would describe
// a different campaign.
func fingerprint(opts Options) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "seed=%d programs=%d mutate=%v", opts.Seed, opts.Programs, opts.Mutate)
	if opts.Oracle != GroundTruth {
		// Appended only for non-default oracles so pre-existing
		// ground-truth state directories keep their fingerprints.
		fmt.Fprintf(h, " oracle=%d", int(opts.Oracle))
	}
	if opts.Synth.Enabled() {
		// Appended only when synthesis is on, for the same backward
		// compatibility: generator-only state directories keep their
		// fingerprints. Cadence and corpus are both verdict-affecting.
		fmt.Fprintf(h, " synth=%+v", opts.Synth)
	}
	// Observability is not campaign-defining: a resumed run may toggle
	// metrics without changing what the campaign computes.
	hopts := opts.Harness
	hopts.Metrics, hopts.Trace = nil, nil
	// Hash the effective (clamped) generator config: an out-of-range
	// value and the minimum it clamps to run the same campaign, so
	// they must share a fingerprint no matter which form the caller
	// wrote down.
	fmt.Fprintf(h, " gen=%+v harness=%+v", opts.GenConfig.Normalized(), hopts)
	if opts.Chaos != nil {
		fmt.Fprintf(h, " chaos=%+v", *opts.Chaos)
	}
	for _, c := range opts.Compilers {
		fmt.Fprintf(h, " compiler=%s", c.Name())
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// durableState wires one campaign run to its state directory.
type durableState struct {
	store *journal.Store
	w     *journal.Writer
	fp    string

	// snapshotEvery is the checkpoint cadence in units; negative means
	// snapshots are disabled and resume relies on journal replay alone.
	snapshotEvery int

	// appendNs and syncNs time journal writes; lag tracks units folded
	// since the last checkpoint. Unregistered no-ops when the campaign
	// is unobserved.
	appendNs *metrics.Histogram
	syncNs   *metrics.Histogram
	lag      *metrics.Gauge
	// done marks seqs whose folds were restored; read-only once the
	// pipeline starts (the SkipSource reads it from the source
	// goroutine).
	done map[int]bool
	// maxRestored is the highest restored seq (-1 if none): until the
	// live run folds past it, the report holds folds beyond any
	// contiguous prefix and snapshotting would double-count on the next
	// resume, so checkpoints wait.
	maxRestored int
	// lastSeq is the last seq the aggregator folded this run (-1 before
	// the first).
	lastSeq   int
	sinceSnap int
}

// openState opens (or creates) the campaign's durable state and, when
// resuming, restores the snapshot and replays the journal into the
// report before the pipeline starts. Returns nil when the campaign is
// not durable (no StateDir).
func openState(opts Options, report *Report, agg *reportAggregator, h *harness.Harness) (*durableState, error) {
	if opts.StateDir == "" {
		return nil, nil
	}
	store, err := journal.Open(opts.StateDir)
	if err != nil {
		return nil, err
	}
	store.SetObserver(CorruptionObserver(opts.Metrics, opts.Trace))
	st := &durableState{
		store:         store,
		fp:            fingerprint(opts),
		snapshotEvery: opts.SnapshotEvery,
		done:          map[int]bool{},
		maxRestored:   -1,
		lastSeq:       -1,
		appendNs:      opts.Metrics.Histogram("campaign.journal.append_ns"),
		syncNs:        opts.Metrics.Histogram("campaign.journal.sync_ns"),
		lag:           opts.Metrics.Gauge("campaign.journal.lag"),
	}
	if st.snapshotEvery == 0 {
		st.snapshotEvery = defaultSnapshotEvery
	}

	var meta metaState
	raw, err := store.ReadDoc(metaDoc)
	if err != nil {
		return nil, err
	}
	haveMeta := raw != nil
	if haveMeta {
		if err := json.Unmarshal(raw, &meta); err != nil {
			return nil, fmt.Errorf("campaign: corrupt %s: %w", metaDoc, err)
		}
	}

	switch {
	case !opts.Resume:
		// Fresh campaign: drop any previous journal and snapshots (the
		// corpus document deliberately survives) and claim the directory.
		if err := store.Reset(); err != nil {
			return nil, err
		}
		if err := writeMeta(store, metaState{Fingerprint: st.fp}); err != nil {
			return nil, err
		}
	case haveMeta && meta.Fingerprint != st.fp:
		return nil, fmt.Errorf("campaign: state dir %s holds a different campaign (fingerprint %s, want %s); rerun without -resume to start over",
			store.Dir(), meta.Fingerprint, st.fp)
	case !haveMeta:
		// Resume requested but the directory is empty: behave as a fresh
		// start so `-state X -resume` is safe to use unconditionally.
		if err := writeMeta(store, metaState{Fingerprint: st.fp}); err != nil {
			return nil, err
		}
	default:
		if err := st.restore(report, agg, h); err != nil {
			return nil, err
		}
	}

	w, err := store.Append(opts.SyncEvery)
	if err != nil {
		return nil, err
	}
	st.w = w
	return st, nil
}

// restore loads the newest valid snapshot and replays the journal tail
// into the report. Corrupt journal records are quarantined (their units
// re-run); a torn final record is expected after a kill and truncates
// replay cleanly.
func (st *durableState) restore(report *Report, agg *reportAggregator, h *harness.Harness) error {
	report.Recovery.Resumed = true

	_, payload, ok, err := st.store.LatestSnapshot()
	if err != nil {
		return err
	}
	snapNext := 0
	if ok {
		var snap snapshotState
		if err := json.Unmarshal(payload, &snap); err != nil {
			return fmt.Errorf("campaign: corrupt snapshot payload: %w", err)
		}
		if snap.Fingerprint != st.fp {
			return fmt.Errorf("campaign: snapshot fingerprint %s does not match campaign %s", snap.Fingerprint, st.fp)
		}
		report.TEMRepairs = snap.TEMRepairs
		for k, n := range snap.ProgramsRun {
			report.ProgramsRun[k] = n
		}
		for comp, perKind := range snap.Verdicts {
			report.Verdicts[comp] = perKind
		}
		if snap.Faults != nil {
			report.Faults = snap.Faults
			if report.Faults.PerCompiler == nil {
				report.Faults.PerCompiler = map[string]*harness.FaultRecord{}
			}
			if report.Faults.Injected == nil {
				report.Faults.Injected = map[string]harness.InjectionCounts{}
			}
		}
		for i, b := range snap.BugRate {
			report.BugRate[i] = b
		}
		for pair, n := range snap.DiffMatrix {
			report.DiffMatrix[pair] = n
		}
		agg.restoreFound(snap.Found)
		agg.restoreDiffs(snap.Diffs)
		h.ImportBreakers(snap.Breakers)
		snapNext = snap.NextSeq
		for seq := 0; seq < snapNext; seq++ {
			st.done[seq] = true
		}
		st.maxRestored = snapNext - 1
		report.Recovery.SnapshotSeq = snapNext
	}

	quarantined, err := st.store.Replay(func(off int64, payload []byte) error {
		var rec unitRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			// The frame checksum passed but the payload is not our
			// schema; quarantine it like a corrupt record.
			quarantined := journal.Corruption{Offset: off, Reason: fmt.Sprintf("undecodable record: %v", err)}
			report.Recovery.Quarantined = append(report.Recovery.Quarantined, quarantined)
			return nil
		}
		if rec.Seq < snapNext || st.done[rec.Seq] {
			return nil // already covered by the snapshot or a duplicate
		}
		agg.fold(&rec)
		st.done[rec.Seq] = true
		if rec.Seq > st.maxRestored {
			st.maxRestored = rec.Seq
		}
		report.Recovery.Replayed++
		return nil
	})
	if err != nil {
		return err
	}
	report.Recovery.Quarantined = append(report.Recovery.Quarantined, quarantined...)
	report.Recovery.Recovered = len(st.done)
	return nil
}

// isDone is the SkipSource predicate: true for units whose fold was
// restored, which then flow through the pipeline as Recovered.
func (st *durableState) isDone(seq int) bool { return st.done[seq] }

// afterUnit is the pipeline's AfterAggregate hook: journal the unit the
// aggregator just folded, then checkpoint if the cadence says so. Runs
// on the aggregator goroutine, in Seq order — the journal can never get
// ahead of or behind the fold.
func (st *durableState) afterUnit(report *Report, agg *reportAggregator, u *pipeline.Unit, h *harness.Harness) error {
	st.lastSeq = u.Seq
	if !u.Recovered {
		rec := agg.last
		if rec == nil || rec.Seq != u.Seq {
			return fmt.Errorf("campaign: journal out of step with fold at seq %d", u.Seq)
		}
		payload, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		t0 := time.Now()
		if err := st.w.Append(payload); err != nil {
			return err
		}
		st.appendNs.ObserveDuration(time.Since(t0))
	}
	st.sinceSnap++
	st.lag.Set(int64(st.sinceSnap))
	// Checkpoints wait until the fold passes every restored seq: before
	// that the report contains folds beyond any contiguous prefix and a
	// snapshot would double-count them on the next resume. A negative
	// cadence disables snapshots outright; resume then replays the
	// journal from the top.
	if st.snapshotEvery > 0 && st.sinceSnap >= st.snapshotEvery && u.Seq >= st.maxRestored {
		if err := st.checkpoint(report, h, u.Seq+1); err != nil {
			return err
		}
		st.sinceSnap = 0
		st.lag.Set(0)
	}
	return nil
}

// checkpoint atomically snapshots the folded report claiming the unit
// prefix [0, nextSeq).
func (st *durableState) checkpoint(report *Report, h *harness.Harness, nextSeq int) error {
	snap := snapshotState{
		Fingerprint: st.fp,
		NextSeq:     nextSeq,
		TEMRepairs:  report.TEMRepairs,
		ProgramsRun: report.ProgramsRun,
		Verdicts:    report.Verdicts,
		Found:       foundStates(report.Found),
		Faults:      report.Faults,
		Breakers:    h.ExportBreakers(),
		BugRate:     report.BugRate,
	}
	if len(report.Disagreements) > 0 {
		snap.Diffs = diffStates(report.Disagreements)
	}
	if len(report.DiffMatrix) > 0 {
		snap.DiffMatrix = report.DiffMatrix
	}
	payload, err := json.Marshal(&snap)
	if err != nil {
		return err
	}
	return st.store.WriteSnapshot(int64(nextSeq), payload)
}

// finish closes out a durable run: sync the journal, take the final
// snapshot (on SIGTERM/SIGINT-style aborts too, so the partial report
// is durable), and on a complete run merge the found bugs into the
// persistent corpus — once, however many times the campaign is resumed
// after finishing.
func (st *durableState) finish(report *Report, h *harness.Harness, complete bool) error {
	t0 := time.Now()
	syncErr := st.w.Sync()
	st.syncNs.ObserveDuration(time.Since(t0))
	var snapErr error
	// The final snapshot is safe only once the fold covers a contiguous
	// prefix; an abort before passing the restored tail leaves the
	// on-disk snapshot+journal pair authoritative (the journal already
	// has this run's records). Disabled snapshots stay disabled here
	// too: resume is journal-replay only.
	if syncErr == nil && st.snapshotEvery > 0 && st.lastSeq >= st.maxRestored {
		snapErr = st.checkpoint(report, h, st.lastSeq+1)
	}
	closeErr := st.w.Close()

	corpus, corpusErr := loadCorpus(st.store)
	if corpusErr == nil && complete {
		corpusErr = st.mergeCorpus(corpus, report)
	}
	report.Corpus = corpus

	for _, err := range []error{syncErr, snapErr, closeErr, corpusErr} {
		if err != nil {
			return err
		}
	}
	return nil
}

// mergeCorpus folds the report's found bugs into the corpus document,
// guarded by the meta Merged flag so a re-resumed finished campaign
// does not double-count.
func (st *durableState) mergeCorpus(corpus *Corpus, report *Report) error {
	raw, err := st.store.ReadDoc(metaDoc)
	if err != nil {
		return err
	}
	var meta metaState
	if raw != nil {
		if err := json.Unmarshal(raw, &meta); err != nil {
			return fmt.Errorf("campaign: corrupt %s: %w", metaDoc, err)
		}
	}
	if meta.Merged {
		return nil
	}
	corpus.MergeReport(report)
	payload, err := json.Marshal(corpus)
	if err != nil {
		return err
	}
	if err := st.store.WriteDoc(corpusDoc, payload); err != nil {
		return err
	}
	meta.Fingerprint = st.fp
	meta.Merged = true
	return writeMeta(st.store, meta)
}

// loadCorpus reads the persistent corpus, returning an empty one when
// the document does not exist yet.
func loadCorpus(store *journal.Store) (*Corpus, error) {
	corpus := &Corpus{Bugs: map[string]*CorpusEntry{}}
	raw, err := store.ReadDoc(corpusDoc)
	if err != nil {
		return corpus, err
	}
	if raw != nil {
		if err := json.Unmarshal(raw, corpus); err != nil {
			return corpus, fmt.Errorf("campaign: corrupt %s: %w", corpusDoc, err)
		}
		if corpus.Bugs == nil {
			corpus.Bugs = map[string]*CorpusEntry{}
		}
	}
	return corpus, nil
}

func writeMeta(store *journal.Store, meta metaState) error {
	payload, err := json.Marshal(&meta)
	if err != nil {
		return err
	}
	return store.WriteDoc(metaDoc, payload)
}

// foundStates flattens the Found map for a snapshot, sorted by ID so
// snapshot bytes are deterministic.
func foundStates(found map[string]*BugRecord) []foundState {
	out := make([]foundState, 0, len(found))
	for id, rec := range found {
		fs := foundState{ID: id, FirstSeed: rec.FirstSeed, Hits: rec.Hits}
		for k, on := range rec.FoundBy {
			if on {
				fs.FoundBy = append(fs.FoundBy, k)
			}
		}
		sort.Slice(fs.FoundBy, func(i, j int) bool { return fs.FoundBy[i] < fs.FoundBy[j] })
		out = append(out, fs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// diffStates flattens the Disagreements map for a snapshot, sorted by
// ID so snapshot bytes are deterministic.
func diffStates(diffs map[string]*DisagreementRecord) []diffState {
	out := make([]diffState, 0, len(diffs))
	for id, rec := range diffs {
		ds := diffState{
			ID: id, Translators: rec.Translators, Vector: rec.Vector,
			Suspects: rec.Suspects, FirstSeed: rec.FirstSeed, Hits: rec.Hits,
		}
		for k, on := range rec.FoundBy {
			if on {
				ds.FoundBy = append(ds.FoundBy, k)
			}
		}
		sort.Slice(ds.FoundBy, func(i, j int) bool { return ds.FoundBy[i] < ds.FoundBy[j] })
		out = append(out, ds)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// unionKinds merges a FoundBy set into a sorted kind list.
func unionKinds(have []oracle.InputKind, add map[oracle.InputKind]bool) []oracle.InputKind {
	seen := map[oracle.InputKind]bool{}
	for _, k := range have {
		seen[k] = true
	}
	for k, on := range add {
		if on {
			seen[k] = true
		}
	}
	out := make([]oracle.InputKind, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// bugIndexFor maps bug ID to its catalog entry across the compilers
// under test; the fold and snapshot restore resolve journaled IDs here.
func bugIndexFor(comps []*compilers.Compiler) map[string]*bugs.Bug {
	idx := map[string]*bugs.Bug{}
	for _, c := range comps {
		for _, b := range c.Catalog() {
			idx[b.ID] = b
		}
	}
	return idx
}
