package campaign

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"
)

// assertSameOutcome compares every deterministic report field between a
// golden uninterrupted run and a recovered one.
func assertSameOutcome(t *testing.T, label string, want, got *Report) {
	t.Helper()
	if !reflect.DeepEqual(want.Found, got.Found) {
		t.Errorf("%s: Found differs:\n%+v\nvs\n%+v", label, want.Found, got.Found)
	}
	if !reflect.DeepEqual(want.Verdicts, got.Verdicts) {
		t.Errorf("%s: Verdicts differ", label)
	}
	if !reflect.DeepEqual(want.ProgramsRun, got.ProgramsRun) {
		t.Errorf("%s: ProgramsRun differs: %v vs %v", label, want.ProgramsRun, got.ProgramsRun)
	}
	if !reflect.DeepEqual(want.Faults, got.Faults) {
		t.Errorf("%s: fault ledger differs:\n%v\nvs\n%v", label, want.Faults, got.Faults)
	}
	if want.TEMRepairs != got.TEMRepairs {
		t.Errorf("%s: TEMRepairs = %d, want %d", label, got.TEMRepairs, want.TEMRepairs)
	}
	if !reflect.DeepEqual(want.BugRate, got.BugRate) {
		t.Errorf("%s: bug-rate series differs:\n%+v\nvs\n%+v", label, want.BugRate, got.BugRate)
	}
	if !reflect.DeepEqual(want.BugRateSeries(), got.BugRateSeries()) {
		t.Errorf("%s: derived series differs", label)
	}
}

// mutilateState simulates the disk damage a SIGKILL can leave behind:
// a torn journal tail, a flipped byte mid-journal, or a lost snapshot.
func mutilateState(t *testing.T, dir string, rng *rand.Rand) {
	t.Helper()
	jp := filepath.Join(dir, "journal.wal")
	switch rng.Intn(4) {
	case 0: // torn tail: truncate the journal at a random byte offset
		if info, err := os.Stat(jp); err == nil && info.Size() > 0 {
			if err := os.Truncate(jp, rng.Int63n(info.Size()+1)); err != nil {
				t.Fatal(err)
			}
		}
	case 1: // bit rot: flip one journal byte (quarantine or lost framing)
		if b, err := os.ReadFile(jp); err == nil && len(b) > 0 {
			b[rng.Intn(len(b))] ^= 0x40
			if err := os.WriteFile(jp, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	case 2: // lost snapshot: drop the newest, forcing the fallback
		snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.snap"))
		if len(snaps) > 0 {
			sort.Strings(snaps)
			os.Remove(snaps[len(snaps)-1])
		}
	default:
		// Killed between appends: state is left exactly as the dying
		// run's last fsync had it.
	}
}

// runWithKills drives a durable campaign through repeated kill/resume
// cycles — each cycle cancelled at a random wall-clock instant and its
// on-disk state then damaged — until it completes.
func runWithKills(t *testing.T, opts Options, seed int64, kills int, maxKillMS int) *Report {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < kills; i++ {
		o := opts
		o.Resume = i > 0
		d := time.Duration(1+rng.Intn(maxKillMS)) * time.Millisecond
		ctx, cancel := context.WithTimeout(context.Background(), d)
		r, err := RunContext(ctx, o)
		cancel()
		if err == nil {
			return r // completed before this cycle's kill fired
		}
		if r == nil {
			t.Fatal("cancelled run returned no partial report")
		}
		mutilateState(t, opts.StateDir, rng)
	}
	o := opts
	o.Resume = true
	r, err := RunContext(context.Background(), o)
	if err != nil {
		t.Fatalf("final resume did not complete: %v", err)
	}
	return r
}

func TestDurableCompleteRunMatchesGolden(t *testing.T) {
	golden := Run(smallOptions(25))
	if golden.Err != nil {
		t.Fatal(golden.Err)
	}
	o := smallOptions(25)
	o.StateDir = t.TempDir()
	o.SnapshotEvery = 5
	r := Run(o)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	assertSameOutcome(t, "durable uninterrupted", golden, r)
	if r.Corpus == nil {
		t.Fatal("durable run returned no corpus")
	}
	if r.Corpus.Campaigns != 1 || len(r.Corpus.Bugs) != len(r.Found) {
		t.Errorf("corpus after one campaign: campaigns=%d bugs=%d, want 1 and %d",
			r.Corpus.Campaigns, len(r.Corpus.Bugs), len(r.Found))
	}
	if r.Recovery.Resumed {
		t.Error("fresh durable run claims it resumed")
	}
}

func TestDurableKillResumeDeterminism(t *testing.T) {
	golden := Run(smallOptions(30))
	if golden.Err != nil {
		t.Fatal(golden.Err)
	}
	for _, workers := range []int{1, 8} {
		o := smallOptions(30)
		o.Workers = workers
		o.StateDir = t.TempDir()
		o.SnapshotEvery = 4
		r := runWithKills(t, o, int64(1000+workers), 6, 120)
		assertSameOutcome(t, "kill-resume", golden, r)
	}
}

// durableChaosOptions widens the chaos soak's watchdog margin: the
// kill/resume soak journals whatever outcome the watchdog saw, so a
// real compile starved past a tight deadline on a loaded machine would
// persist a timeout the golden run never had. Only the injected 30s
// hangs should be able to expire a 2s watchdog.
func durableChaosOptions(programs int) Options {
	o := chaosSoakOptions(programs)
	o.Harness.Timeout = 2 * time.Second
	return o
}

func TestDurableChaosKillResumeSoak(t *testing.T) {
	golden := Run(durableChaosOptions(12))
	if golden.Err != nil {
		t.Fatal(golden.Err)
	}
	for _, workers := range []int{1, 8} {
		o := durableChaosOptions(12)
		o.Workers = workers
		o.StateDir = t.TempDir()
		o.SnapshotEvery = 3
		o.SyncEvery = 2
		r := runWithKills(t, o, int64(2000+workers), 5, 2500)
		assertSameOutcome(t, "chaos kill-resume", golden, r)
	}
}

func TestDurableResumeRejectsDifferentCampaign(t *testing.T) {
	dir := t.TempDir()
	o := smallOptions(10)
	o.StateDir = dir
	if r := Run(o); r.Err != nil {
		t.Fatal(r.Err)
	}
	other := smallOptions(20) // different program count: different campaign
	other.StateDir = dir
	other.Resume = true
	r, err := RunContext(context.Background(), other)
	if err == nil || r.Err == nil {
		t.Fatal("resuming a state dir from a different campaign succeeded")
	}
}

func TestDurableResumeOfFinishedCampaignIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	o := smallOptions(15)
	o.StateDir = dir
	first := Run(o)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	o.Resume = true
	again := Run(o)
	if again.Err != nil {
		t.Fatal(again.Err)
	}
	assertSameOutcome(t, "resume after completion", first, again)
	if !again.Recovery.Resumed || again.Recovery.Recovered != 15 {
		t.Errorf("expected every unit recovered: %+v", again.Recovery)
	}
	// The corpus merge is guarded: resuming a finished campaign must not
	// double-count its bugs.
	if !reflect.DeepEqual(first.Corpus, again.Corpus) {
		t.Errorf("corpus changed on idempotent resume:\n%+v\nvs\n%+v", first.Corpus, again.Corpus)
	}
}

func TestDurableCorpusAccumulatesAcrossCampaigns(t *testing.T) {
	dir := t.TempDir()
	a := smallOptions(15)
	a.StateDir = dir
	ra := Run(a)
	if ra.Err != nil {
		t.Fatal(ra.Err)
	}
	// A second, distinct campaign in the same state dir: the journal is
	// reset, the corpus is not.
	b := smallOptions(15)
	b.Seed = 500
	b.StateDir = dir
	rb := Run(b)
	if rb.Err != nil {
		t.Fatal(rb.Err)
	}
	if rb.Corpus.Campaigns != 2 {
		t.Fatalf("corpus campaigns = %d, want 2", rb.Corpus.Campaigns)
	}
	for id := range ra.Found {
		if rb.Corpus.Bugs[id] == nil {
			t.Errorf("corpus lost bug %s from the first campaign", id)
		}
	}
	for id, rec := range rb.Found {
		e := rb.Corpus.Bugs[id]
		if e == nil {
			t.Errorf("corpus missing bug %s from the second campaign", id)
			continue
		}
		if e.Hits < rec.Hits {
			t.Errorf("corpus %s hits %d < this campaign's %d", id, e.Hits, rec.Hits)
		}
	}
	// A bug both campaigns hit is one corpus entry with two campaigns.
	for id, ea := range ra.Found {
		if _, ok := rb.Found[id]; ok {
			if got := rb.Corpus.Bugs[id].Campaigns; got != 2 {
				t.Errorf("bug %s seen by both campaigns has Campaigns=%d, want 2", id, got)
			}
			if rb.Corpus.Bugs[id].Hits != ea.Hits+rb.Found[id].Hits {
				t.Errorf("bug %s corpus hits not additive", id)
			}
		}
	}
}

func TestDurablePartialReportSurvivesAbort(t *testing.T) {
	// A run cut short by cancellation must leave a resumable partial
	// state behind and report what it folded so far.
	o := smallOptions(400)
	o.Workers = 2
	o.StateDir = t.TempDir()
	o.SnapshotEvery = 2
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	r, err := RunContext(ctx, o)
	if err == nil {
		t.Skip("campaign finished before the abort fired")
	}
	if r.Complete() {
		t.Fatal("aborted run claims completeness")
	}
	// Resume must pick up where the abort left off and agree with an
	// uninterrupted run of a same-shape smaller campaign; here we just
	// assert it completes and covers every seed program.
	o.Resume = true
	r2, err := RunContext(context.Background(), o)
	if err != nil {
		t.Fatalf("resume after abort failed: %v", err)
	}
	if !r2.Recovery.Resumed {
		t.Error("resumed run did not restore state")
	}
	total := 0
	for _, n := range r2.ProgramsRun {
		total += n
	}
	if total < 400 {
		t.Errorf("resumed run folded %d program executions, want at least one per seed", total)
	}
}
