package campaign

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bugs"
	"repro/internal/oracle"
)

// Table is a simple text table used to render the paper's figures.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// compilerOrder is the paper's column order.
var compilerOrder = []string{"groovyc", "kotlinc", "javac"}

// DiffSummary renders the differential oracle's findings: one row per
// distinct disagreement, sorted by ID, with the suspect attribution and
// the input kinds that hit it.
func (r *Report) DiffSummary() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Differential oracle: %d distinct disagreements", len(r.Disagreements)),
		Header: []string{"Suspect", "Source", "Vector", "Found by", "First seed", "Hits"},
	}
	ids := make([]string, 0, len(r.Disagreements))
	for id := range r.Disagreements {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		rec := r.Disagreements[id]
		source := "compilers"
		if rec.Translators {
			source = "translators"
		}
		var kinds []string
		for k, on := range rec.FoundBy {
			if on {
				kinds = append(kinds, k.String())
			}
		}
		sort.Strings(kinds)
		t.Rows = append(t.Rows, []string{
			suspectLabel(rec.Suspects), source, rec.Vector,
			strings.Join(kinds, ","), fmt.Sprint(rec.FirstSeed), fmt.Sprint(rec.Hits),
		})
	}
	return t
}

// DiffPairs renders the compiler×compiler conflict matrix — the
// paper's Fig. 8 version matrix generalized to compiler pairs — as one
// row per unordered pair with a nonzero conflict count.
func (r *Report) DiffPairs() *Table {
	t := &Table{
		Title:  "Cross-compiler disagreement matrix",
		Header: []string{"Pair", "Conflicts"},
	}
	pairs := make([]string, 0, len(r.DiffMatrix))
	for p := range r.DiffMatrix {
		pairs = append(pairs, p)
	}
	sort.Strings(pairs)
	for _, p := range pairs {
		t.Rows = append(t.Rows, []string{strings.Replace(p, "|", " vs ", 1), fmt.Sprint(r.DiffMatrix[p])})
	}
	return t
}

// Figure7a reports the status of found bugs per compiler (Figure 7a).
func (r *Report) Figure7a() *Table {
	statuses := []bugs.Status{bugs.Reported, bugs.Confirmed, bugs.Fixed, bugs.Duplicate, bugs.WontFix}
	t := &Table{
		Title:  "Figure 7a: status of the found bugs",
		Header: []string{"Status", "groovyc", "kotlinc", "javac", "Total"},
	}
	counts := map[bugs.Status]map[string]int{}
	for _, rec := range r.Found {
		if counts[rec.Bug.Status] == nil {
			counts[rec.Bug.Status] = map[string]int{}
		}
		counts[rec.Bug.Status][rec.Bug.Compiler]++
	}
	totals := map[string]int{}
	for _, s := range statuses {
		row := []string{s.String()}
		sum := 0
		for _, c := range compilerOrder {
			n := counts[s][c]
			totals[c] += n
			sum += n
			row = append(row, fmt.Sprint(n))
		}
		row = append(row, fmt.Sprint(sum))
		t.Rows = append(t.Rows, row)
	}
	total := []string{"Total"}
	sum := 0
	for _, c := range compilerOrder {
		total = append(total, fmt.Sprint(totals[c]))
		sum += totals[c]
	}
	total = append(total, fmt.Sprint(sum))
	t.Rows = append(t.Rows, total)
	return t
}

// Figure7b reports the symptoms of found bugs per compiler (Figure 7b).
func (r *Report) Figure7b() *Table {
	symptoms := []bugs.Symptom{bugs.UCTE, bugs.URB, bugs.Crash}
	t := &Table{
		Title:  "Figure 7b: symptoms of the found bugs",
		Header: []string{"Symptom", "groovyc", "kotlinc", "javac", "Total"},
	}
	counts := map[bugs.Symptom]map[string]int{}
	for _, rec := range r.Found {
		if counts[rec.Bug.Symptom] == nil {
			counts[rec.Bug.Symptom] = map[string]int{}
		}
		counts[rec.Bug.Symptom][rec.Bug.Compiler]++
	}
	for _, s := range symptoms {
		row := []string{s.String()}
		sum := 0
		for _, c := range compilerOrder {
			n := counts[s][c]
			sum += n
			row = append(row, fmt.Sprint(n))
		}
		row = append(row, fmt.Sprint(sum))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Figure7c reports technique attribution per compiler (Figure 7c).
func (r *Report) Figure7c() *Table {
	t := &Table{
		Title:  "Figure 7c: bugs revealed per technique",
		Header: []string{"Component", "groovyc", "kotlinc", "javac", "Total"},
	}
	techniques := []string{"Generator", "TEM", "TOM", "TEM & TOM", "REM"}
	counts := map[string]map[string]int{}
	for _, rec := range r.Found {
		tech := rec.Technique()
		if counts[tech] == nil {
			counts[tech] = map[string]int{}
		}
		counts[tech][rec.Bug.Compiler]++
	}
	// Synthesized appears only in -synth campaigns; the row is added
	// conditionally so generator-only tables keep their historical shape.
	if len(counts["Synthesized"]) > 0 {
		techniques = append(techniques, "Synthesized")
	}
	for _, tech := range techniques {
		row := []string{tech}
		sum := 0
		for _, c := range compilerOrder {
			n := counts[tech][c]
			sum += n
			row = append(row, fmt.Sprint(n))
		}
		row = append(row, fmt.Sprint(sum))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// figure8Buckets are the x-axis buckets of Figure 8.
var figure8Buckets = []struct {
	label  string
	lo, hi int
}{
	{"[1-3]", 1, 3},
	{"[4-6]", 4, 6},
	{"[7-9]", 7, 9},
	{"[10-12]", 10, 12},
	{">12", 13, 1 << 30},
}

// Figure8 histograms found bugs by the number of stable versions they
// affect (Figure 8). stableVersions maps compiler → its stable count.
func (r *Report) Figure8(stableVersions map[string]int) *Table {
	t := &Table{
		Title:  "Figure 8: number of bugs by affected stable versions",
		Header: []string{"Affected", "groovyc", "kotlinc", "javac"},
	}
	bucketOf := func(rec *BugRecord) string {
		stable := stableVersions[rec.Bug.Compiler]
		n := rec.Bug.AffectedStableCount(stable)
		switch {
		case n == 0:
			return "master only"
		case n == stable:
			return "All"
		}
		for _, b := range figure8Buckets {
			if n >= b.lo && n <= b.hi {
				return b.label
			}
		}
		return ">12"
	}
	counts := map[string]map[string]int{}
	for _, rec := range r.Found {
		label := bucketOf(rec)
		if counts[label] == nil {
			counts[label] = map[string]int{}
		}
		counts[label][rec.Bug.Compiler]++
	}
	labels := []string{"[1-3]", "[4-6]", "[7-9]", "[10-12]", ">12", "All", "master only"}
	for _, label := range labels {
		row := []string{label}
		for _, c := range compilerOrder {
			row = append(row, fmt.Sprint(counts[label][c]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// CatalogTables renders the ground-truth catalogs as the three Figure 7
// tables — the values a fully saturated campaign converges to, matching
// the paper's published numbers exactly.
func CatalogTables() (*Table, *Table, *Table) {
	specs := []bugs.CatalogSpec{bugs.GroovycSpec(), bugs.KotlincSpec(), bugs.JavacSpec()}
	a := &Table{
		Title:  "Figure 7a (ground truth): status of the seeded bugs",
		Header: []string{"Status", "groovyc", "kotlinc", "javac", "Total"},
	}
	rowsA := []struct {
		name string
		get  func(bugs.CatalogSpec) int
	}{
		{"Reported", func(s bugs.CatalogSpec) int { return s.Reported }},
		{"Confirmed", func(s bugs.CatalogSpec) int { return s.Confirmed }},
		{"Fixed", func(s bugs.CatalogSpec) int { return s.Fixed }},
		{"Duplicate", func(s bugs.CatalogSpec) int { return s.Duplicate }},
		{"Won't fix", func(s bugs.CatalogSpec) int { return s.WontFix }},
		{"Total", func(s bugs.CatalogSpec) int { return s.Total() }},
	}
	for _, r := range rowsA {
		row := []string{r.name}
		sum := 0
		for _, s := range specs {
			row = append(row, fmt.Sprint(r.get(s)))
			sum += r.get(s)
		}
		a.Rows = append(a.Rows, append(row, fmt.Sprint(sum)))
	}

	b := &Table{
		Title:  "Figure 7b (ground truth): symptoms of the seeded bugs",
		Header: []string{"Symptom", "groovyc", "kotlinc", "javac", "Total"},
	}
	rowsB := []struct {
		name string
		get  func(bugs.CatalogSpec) int
	}{
		{"UCTE", func(s bugs.CatalogSpec) int { return s.UCTE }},
		{"URB", func(s bugs.CatalogSpec) int { return s.URB }},
		{"Crash", func(s bugs.CatalogSpec) int { return s.Crash }},
	}
	for _, r := range rowsB {
		row := []string{r.name}
		sum := 0
		for _, s := range specs {
			row = append(row, fmt.Sprint(r.get(s)))
			sum += r.get(s)
		}
		b.Rows = append(b.Rows, append(row, fmt.Sprint(sum)))
	}

	c := &Table{
		Title:  "Figure 7c (ground truth): technique attribution of the seeded bugs",
		Header: []string{"Component", "groovyc", "kotlinc", "javac", "Total"},
	}
	rowsC := []struct {
		name string
		get  func(bugs.CatalogSpec) int
	}{
		{"Generator", func(s bugs.CatalogSpec) int { return s.Generator }},
		{"TEM", func(s bugs.CatalogSpec) int { return s.TEM }},
		{"TOM", func(s bugs.CatalogSpec) int { return s.TOM }},
		{"TEM & TOM", func(s bugs.CatalogSpec) int { return s.Combined }},
	}
	for _, r := range rowsC {
		row := []string{r.name}
		sum := 0
		for _, s := range specs {
			row = append(row, fmt.Sprint(r.get(s)))
			sum += r.get(s)
		}
		c.Rows = append(c.Rows, append(row, fmt.Sprint(sum)))
	}
	return a, b, c
}

// VerdictSummary renders oracle outcomes per compiler and input kind.
func (r *Report) VerdictSummary() *Table {
	t := &Table{
		Title:  "Oracle verdicts",
		Header: []string{"Compiler", "Input", "pass", "UCTE", "URB", "crash", "hang"},
	}
	var comps []string
	for c := range r.Verdicts {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	kinds := []oracle.InputKind{oracle.Generated, oracle.TEMMutant, oracle.TOMMutant, oracle.TEMTOMMutant, oracle.REMMutant}
	for _, c := range comps {
		for _, k := range kinds {
			v := r.Verdicts[c][k]
			if v == nil {
				continue
			}
			t.Rows = append(t.Rows, []string{
				c, k.String(),
				fmt.Sprint(v[oracle.Pass]),
				fmt.Sprint(v[oracle.UnexpectedCompileTimeError]),
				fmt.Sprint(v[oracle.UnexpectedAcceptance]),
				fmt.Sprint(v[oracle.CompilerCrash]),
				fmt.Sprint(v[oracle.CompilerHang]),
			})
		}
	}
	return t
}
