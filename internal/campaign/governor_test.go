package campaign

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/generator"
	"repro/internal/oracle"
	"repro/internal/types"
)

// governorOptions configures a small campaign with a fuel budget and the
// pathological stress generator on a cadence that rotates through every
// stress shape (Every=4 with Seed 0 stresses seeds 3, 7, 11, ... whose
// shape selector seed%3 cycles).
func governorOptions(programs int) Options {
	o := smallOptions(programs)
	o.Harness.Fuel = 30000
	o.GenConfig.Stress = generator.StressConfig{Every: 4, ChainLength: 12}
	return o
}

// exhaustedCount sums ResourceExhausted verdicts across the report.
func exhaustedCount(r *Report) int {
	n := 0
	for _, perKind := range r.Verdicts {
		for _, perVerdict := range perKind {
			n += perVerdict[oracle.ResourceExhausted]
		}
	}
	return n
}

// TestCampaignDeterministicUnderFuelExhaustion is the governor's
// end-to-end determinism contract: with stress units exhausting the fuel
// budget, the report is bit-for-bit identical at 1 and 8 workers and
// with the type caches on or off. This only holds because a guarded
// budget bypasses the cross-program memo caches — a cache hit would
// skip steps a cold cache charges and move the bailout point.
func TestCampaignDeterministicUnderFuelExhaustion(t *testing.T) {
	prevCaching := types.CachingEnabled()
	defer types.SetCaching(prevCaching)

	run := func(caching bool, workers int) *Report {
		types.SetCaching(caching)
		types.ResetCaches()
		o := governorOptions(24)
		o.Workers = workers
		return Run(o)
	}

	baseline := run(false, 1)
	if baseline.Err != nil {
		t.Fatalf("baseline campaign failed: %v", baseline.Err)
	}
	if n := exhaustedCount(baseline); n == 0 {
		t.Fatal("no ResourceExhausted verdicts; the stress units never exhausted the budget")
	}

	for _, tc := range []struct {
		name    string
		caching bool
		workers int
	}{
		{"cached-1-worker", true, 1},
		{"cached-8-workers", true, 8},
		{"uncached-8-workers", false, 8},
	} {
		got := run(tc.caching, tc.workers)
		if got.Err != nil {
			t.Fatalf("%s campaign failed: %v", tc.name, got.Err)
		}
		if !reflect.DeepEqual(baseline.Found, got.Found) {
			t.Errorf("%s: Found differs from baseline", tc.name)
		}
		if !reflect.DeepEqual(baseline.Verdicts, got.Verdicts) {
			t.Errorf("%s: Verdicts differ from baseline", tc.name)
		}
		if !reflect.DeepEqual(baseline.ProgramsRun, got.ProgramsRun) {
			t.Errorf("%s: ProgramsRun %v, baseline %v", tc.name, got.ProgramsRun, baseline.ProgramsRun)
		}
	}
}

// TestStressUnitsSkipMutation pins the pipeline guard: stress programs
// produce no mutant executions (mutation's type-graph analysis runs
// unbudgeted and must never see a pathological program), while regular
// units still mutate.
func TestStressUnitsSkipMutation(t *testing.T) {
	r := Run(governorOptions(24))
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.ProgramsRun[oracle.Generated] != 24 {
		t.Errorf("generated programs run = %d, want 24", r.ProgramsRun[oracle.Generated])
	}
	// 6 of 24 units are stress units; mutants can only come from the
	// other 18.
	for _, kind := range []oracle.InputKind{oracle.TEMMutant, oracle.TOMMutant, oracle.TEMTOMMutant} {
		if n := r.ProgramsRun[kind]; n > 18 {
			t.Errorf("%s: %d mutants from 18 mutable units", kind, n)
		}
	}
}

// TestDurableResumeRejectsDifferentFuelBudget is the journal-coherence
// guard: fuel is verdict-affecting, so a state directory recorded under
// one budget must refuse to resume under another — replayed folds would
// mix exhaustion points from two different campaigns.
func TestDurableResumeRejectsDifferentFuelBudget(t *testing.T) {
	dir := t.TempDir()
	o := governorOptions(8)
	o.StateDir = dir
	if r := Run(o); r.Err != nil {
		t.Fatal(r.Err)
	}
	cases := map[string]Options{
		"different fuel":           governorOptions(8),
		"different max depth":      governorOptions(8),
		"different stress cadence": governorOptions(8),
	}
	c := cases["different fuel"]
	c.Harness.Fuel = 99999
	cases["different fuel"] = c
	c = cases["different max depth"]
	c.Harness.MaxDepth = 64
	cases["different max depth"] = c
	c = cases["different stress cadence"]
	c.GenConfig.Stress.Every = 5
	cases["different stress cadence"] = c
	for name, other := range cases {
		other.StateDir = dir
		other.Resume = true
		r, err := RunContext(context.Background(), other)
		if err == nil || r.Err == nil {
			t.Errorf("%s: resume under a mismatched governor config succeeded", name)
		}
	}
	// Sanity: the unchanged config does resume.
	same := governorOptions(8)
	same.StateDir = dir
	same.Resume = true
	if r := Run(same); r.Err != nil {
		t.Errorf("resume with identical governor config failed: %v", r.Err)
	}
}

// TestFingerprintCoversGovernorKnobs pins each governor knob into the
// campaign fingerprint directly.
func TestFingerprintCoversGovernorKnobs(t *testing.T) {
	base := governorOptions(8)
	for name, mutate := range map[string]func(*Options){
		"fuel":          func(o *Options) { o.Harness.Fuel++ },
		"max depth":     func(o *Options) { o.Harness.MaxDepth = 1024 },
		"stress every":  func(o *Options) { o.GenConfig.Stress.Every++ },
		"stress chains": func(o *Options) { o.GenConfig.Stress.ChainLength++ },
	} {
		changed := governorOptions(8)
		mutate(&changed)
		if fingerprint(base) == fingerprint(changed) {
			t.Errorf("fingerprint ignores %s", name)
		}
	}
}
