// The campaign lifecycle: a Campaign is a long-lived object with a
// real state machine — New → Start → (Pause ⇄ Resume)* → Done — rather
// than a run-to-completion function call. Pause and resume ride the
// durable journal+snapshot machinery: pausing cancels the running
// pipeline segment and lets the durable layer take its final snapshot,
// so a paused campaign is exactly a crash-suspended one, and resuming
// replays state through the same restore path a crash recovery uses.
// The determinism contract is therefore inherited, not re-proven: a
// campaign paused and resumed any number of times folds to the
// bit-for-bit report of an uninterrupted run.
//
// Status() is the race-safe live view: any goroutine may poll it while
// the pipeline folds units. The fold takes a write lock per unit (two
// short critical sections around work that includes whole-program
// compiles, so the cost disappears in the noise); Status takes a read
// lock and deep-copies what it returns.

package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/compilers"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/pipeline"
)

// State is a campaign's lifecycle position.
type State int32

const (
	// StateNew: constructed, not yet started.
	StateNew State = iota
	// StateRunning: a pipeline segment is executing.
	StateRunning
	// StatePausing: Pause was requested; the segment is draining to its
	// final snapshot.
	StatePausing
	// StatePaused: durably suspended; Resume continues it, Cancel ends
	// it. The state directory alone can also resume it in a new process.
	StatePaused
	// StateDone: completed; the report is final and Complete().
	StateDone
	// StateCancelled: ended early by Cancel or context cancellation; the
	// report is a partial fold with Complete() == false.
	StateCancelled
	// StateFailed: ended by a non-cancellation error (corrupt state
	// directory, stage failure).
	StateFailed
)

// String renders the state for logs and the HTTP API.
func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunning:
		return "running"
	case StatePausing:
		return "pausing"
	case StatePaused:
		return "paused"
	case StateDone:
		return "done"
	case StateCancelled:
		return "cancelled"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Terminal reports whether the state is final: no segment will run
// again and Wait has unblocked.
func (s State) Terminal() bool {
	return s == StateDone || s == StateCancelled || s == StateFailed
}

// MarshalJSON renders the state name, so API payloads say "paused"
// rather than 3.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// ErrNotPausable is returned by Pause for campaigns without a state
// directory: suspension is durable by construction, so there is
// nothing to pause into.
var ErrNotPausable = errors.New("campaign: pause requires a durable campaign (Options.StateDir)")

// plan is one campaign flavor behind the shared lifecycle: the
// standard fuzzing campaign, or one of the coverage experiments. run
// executes a single segment — from start (or resume) until completion
// or ctx cancellation — and must publish its observable state through
// the Campaign as it goes.
type plan interface {
	name() string
	run(ctx context.Context, c *Campaign, resume bool) error
	pausable(c *Campaign) bool
}

// Campaign is a lifecycle-managed campaign. Construct with New (or
// NewMutationCoverage / NewSuiteCoverage), drive with Start, Pause,
// Resume, Cancel, and Wait, and observe with Status from any
// goroutine. The zero value is not usable.
type Campaign struct {
	opts Options
	plan plan

	// mu guards the state machine; fold guards the report contents
	// while a segment is writing them. Lock order: mu is never held
	// while acquiring fold's write side, and Status releases mu before
	// taking fold's read side, so the two never nest writer-inside-
	// writer across goroutines.
	mu        sync.Mutex
	state     State
	baseCtx   context.Context
	cancelSeg context.CancelFunc
	segDone   chan struct{}
	pauseReq  bool
	cancelReq bool
	report    *Report
	h         *harness.Harness
	st        *durableState
	err       error
	done      chan struct{}

	fold sync.RWMutex
}

// New returns an unstarted campaign for the options. The options are
// normalized once here (nil Compilers means all three, BatchSize is
// clamped), so every segment and the durable fingerprint agree on what
// the campaign is.
func New(opts Options) *Campaign {
	return newCampaign(opts, fuzzPlan{})
}

func newCampaign(opts Options, p plan) *Campaign {
	if opts.Compilers == nil {
		opts.Compilers = compilers.All()
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1
	}
	// The generator clamps limits to workable minimums at construction;
	// normalize here so the fingerprint and journal record the effective
	// config rather than the caller's pre-clamp values (which would let
	// two configs that run identically fingerprint differently, and a
	// resume validate against state a different effective config wrote).
	opts.GenConfig = opts.GenConfig.Normalized()
	return &Campaign{opts: opts, plan: p, done: make(chan struct{})}
}

// Options returns the campaign's normalized options.
func (c *Campaign) Options() Options { return c.opts }

// Start begins executing the campaign. ctx bounds the whole lifecycle:
// cancelling it cancels the campaign (including across later resumes).
// A nil ctx means context.Background. Start can be called once, from
// StateNew.
func (c *Campaign) Start(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateNew {
		return fmt.Errorf("campaign: Start from state %s", c.state)
	}
	c.baseCtx = ctx
	c.launchLocked(false)
	return nil
}

// launchLocked spawns one pipeline segment; c.mu must be held.
func (c *Campaign) launchLocked(resume bool) {
	segCtx, cancel := context.WithCancel(c.baseCtx)
	seg := make(chan struct{})
	c.cancelSeg = cancel
	c.segDone = seg
	c.pauseReq = false
	c.state = StateRunning
	go func() {
		err := c.plan.run(segCtx, c, resume)
		cancel()
		c.settle(err, seg)
	}()
}

// settle records how a segment ended and advances the state machine.
func (c *Campaign) settle(err error, seg chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer close(seg)
	cancelled := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	switch {
	case err == nil:
		c.state = StateDone
		close(c.done)
	case cancelled && c.pauseReq && !c.cancelReq && c.baseCtx.Err() == nil:
		// The segment drained because Pause asked it to (not because the
		// lifecycle context died underneath it): the durable layer has
		// taken its final snapshot, the campaign is suspended, and the
		// lifecycle stays open for Resume.
		c.state = StatePaused
	case cancelled:
		c.state = StateCancelled
		c.err = err
		close(c.done)
	default:
		c.state = StateFailed
		c.err = err
		close(c.done)
	}
}

// Pause durably suspends a running campaign: the pipeline segment is
// cancelled, in-flight units are abandoned (their results are simply
// recomputed on resume), the journal is synced, and a final snapshot
// is written. Pause blocks until the suspension is complete. Only
// durable campaigns (Options.StateDir) can pause; a campaign that
// finishes while Pause is in flight stays finished.
func (c *Campaign) Pause() error {
	c.mu.Lock()
	if !c.plan.pausable(c) {
		c.mu.Unlock()
		return ErrNotPausable
	}
	if c.state != StateRunning {
		state := c.state
		c.mu.Unlock()
		return fmt.Errorf("campaign: Pause from state %s", state)
	}
	c.state = StatePausing
	c.pauseReq = true
	cancel, seg := c.cancelSeg, c.segDone
	c.mu.Unlock()
	cancel()
	<-seg
	return nil
}

// Resume continues a paused campaign: a fresh segment restores the
// snapshot, replays the journal tail through the same fold a live unit
// uses, and picks up at the first unfolded unit — the crash-recovery
// path, reused verbatim.
func (c *Campaign) Resume() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StatePaused {
		return fmt.Errorf("campaign: Resume from state %s", c.state)
	}
	c.launchLocked(true)
	return nil
}

// Cancel ends the campaign early. The report is the partial fold of
// whatever units finished (Complete() == false); a durable campaign
// has also just snapshotted that state, so the directory can still be
// resumed by a future campaign with Options.Resume. Cancel blocks
// until the run has stopped; cancelling a finished campaign is a
// no-op.
func (c *Campaign) Cancel() error {
	c.mu.Lock()
	switch c.state {
	case StateNew, StatePaused:
		c.cancelReq = true
		c.state = StateCancelled
		c.err = context.Canceled
		r := c.report
		close(c.done)
		c.mu.Unlock()
		if r != nil {
			c.fold.Lock()
			if r.Err == nil {
				r.Err = context.Canceled
			}
			c.fold.Unlock()
		}
		return nil
	case StateRunning, StatePausing:
		c.cancelReq = true
		cancel, seg := c.cancelSeg, c.segDone
		c.mu.Unlock()
		cancel()
		<-seg
		return nil
	default:
		c.mu.Unlock()
		return nil
	}
}

// Wait blocks until the campaign reaches a terminal state — through
// any number of pause/resume cycles — and returns the final report and
// error, with the same contract RunContext had: a nil error means the
// report is complete and deterministic for the options.
func (c *Campaign) Wait() (*Report, error) {
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.report, c.err
}

// Done returns a channel closed when the campaign reaches a terminal
// state. Pausing does not close it.
func (c *Campaign) Done() <-chan struct{} { return c.done }

// State returns the current lifecycle state.
func (c *Campaign) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Report returns the campaign's report once no segment is writing it —
// paused or terminal — and nil while the campaign is running (use
// Status for a race-safe live view). A paused campaign's report is the
// partial fold at the pause point.
func (c *Campaign) Report() *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == StateRunning || c.state == StatePausing {
		return nil
	}
	return c.report
}

// publish installs a segment's report and harness for Status readers;
// called by plans once restore has finished and before the pipeline
// starts folding.
func (c *Campaign) publish(r *Report, h *harness.Harness, st *durableState) {
	c.mu.Lock()
	c.report, c.h, c.st = r, h, st
	c.mu.Unlock()
}

// Status is a point-in-time, race-safe view of a campaign: the
// lifecycle state plus the deterministic progress figures (units,
// executions, distinct bugs, the bug-rate series, the fault ledger)
// and the operational ones (breaker positions, journal lag). Every
// field is a copy — callers can hold a Status forever without pinning
// the fold.
type Status struct {
	// State is the lifecycle position; Err is the terminal error, if
	// any.
	State State `json:"state"`
	Err   error `json:"-"`
	// Durable reports whether the campaign has a state directory (and
	// can therefore pause).
	Durable bool `json:"durable"`
	// Programs is the planned unit count; Units is how many have folded
	// (including units restored by a resume), Execs how many (input,
	// compiler) executions they contained, Bugs how many distinct bugs
	// the fold has seen.
	Programs int `json:"programs"`
	Units    int `json:"units"`
	Execs    int `json:"execs"`
	Bugs     int `json:"bugs"`
	// Disagreements is the number of distinct differential-oracle
	// findings the fold has seen; 0 under the ground-truth oracle.
	Disagreements int `json:"disagreements,omitempty"`
	// Kinds counts pipeline executions per input kind (keyed by
	// oracle.InputKind.String()), so mixed-mode campaigns (generated +
	// stress + synthesized) can be watched converging per kind.
	Kinds map[string]int `json:"kinds,omitempty"`
	// BugRate is the derived bug-rate-over-time series so far.
	BugRate []SeriesPoint `json:"bug_rate,omitempty"`
	// Faults is a deep copy of the fault ledger.
	Faults *harness.Ledger `json:"faults,omitempty"`
	// Breakers maps compiler name to its circuit-breaker snapshot.
	Breakers map[string]harness.BreakerSnapshot `json:"breakers,omitempty"`
	// JournalLag is the number of folded units not yet covered by a
	// snapshot; 0 for non-durable campaigns.
	JournalLag int `json:"journal_lag"`
	// Recovery describes what the most recent segment restored.
	Recovery RecoveryInfo `json:"recovery"`
}

// Status returns the campaign's current status snapshot. Safe to call
// from any goroutine at any lifecycle point, including concurrently
// with the fold.
func (c *Campaign) Status() Status {
	c.mu.Lock()
	s := Status{
		State:    c.state,
		Err:      c.err,
		Durable:  c.opts.StateDir != "",
		Programs: c.opts.Programs,
	}
	report, h, st := c.report, c.h, c.st
	c.mu.Unlock()
	if h != nil {
		s.Breakers = h.ExportBreakers()
	}
	if report == nil {
		return s
	}
	c.fold.RLock()
	defer c.fold.RUnlock()
	if s.Err == nil {
		s.Err = report.Err
	}
	for _, b := range report.BugRate {
		s.Units += b.Units
		s.Execs += b.Execs
	}
	s.Bugs = len(report.Found)
	s.Disagreements = len(report.Disagreements)
	if len(report.ProgramsRun) > 0 {
		s.Kinds = make(map[string]int, len(report.ProgramsRun))
		for kind, n := range report.ProgramsRun {
			s.Kinds[kind.String()] = n
		}
	}
	s.BugRate = report.BugRateSeries()
	s.Faults = report.Faults.Clone()
	s.Recovery = report.Recovery
	s.Recovery.Quarantined = append([]journal.Corruption(nil), report.Recovery.Quarantined...)
	if st != nil {
		s.JournalLag = st.sinceSnap
	}
	return s
}

// gatedSource applies a per-unit admission gate on the source
// goroutine. A blocking gate stalls the feed channel, and the stall
// propagates backward through every bounded stage channel — this is
// the hook the server's per-tenant rate limits use to backpressure a
// tenant's campaigns instead of buffering unbounded work. Recovered
// units pass free: replaying already-folded results costs no budget.
type gatedSource struct {
	inner pipeline.Source
	ctx   context.Context
	gate  func(context.Context) error
}

// Name implements pipeline.Source.
func (g *gatedSource) Name() string { return g.inner.Name() }

// Next implements pipeline.Source.
func (g *gatedSource) Next() (*pipeline.Unit, bool) {
	u, ok := g.inner.Next()
	if !ok || u.Recovered {
		return u, ok
	}
	if err := g.gate(g.ctx); err != nil {
		return nil, false
	}
	return u, ok
}
