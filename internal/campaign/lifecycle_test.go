package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// runWithPauses drives a durable campaign through repeated
// pause/resume cycles — each pause requested at a random wall-clock
// instant — until it completes, asserting the paused invariants at
// every suspension point.
func runWithPauses(t *testing.T, opts Options, seed int64, cycles, maxPauseMS int) *Report {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := New(opts)
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cycles; i++ {
		time.Sleep(time.Duration(1+rng.Intn(maxPauseMS)) * time.Millisecond)
		err := c.Pause()
		if err != nil {
			// The campaign finished (or a later cycle caught it pausing);
			// either way it is no longer pausable and Wait settles it.
			break
		}
		if st := c.State(); st != StatePaused {
			t.Fatalf("after Pause: state %s, want paused", st)
		}
		r := c.Report()
		if r == nil {
			t.Fatal("paused campaign has no report")
		}
		if r.Complete() {
			t.Fatal("paused campaign claims a complete report")
		}
		if st := c.Status(); st.State != StatePaused {
			t.Fatalf("paused Status.State = %s", st.State)
		}
		if err := c.Resume(); err != nil {
			t.Fatalf("Resume: %v", err)
		}
	}
	r, err := c.Wait()
	if err != nil {
		t.Fatalf("campaign did not complete: %v", err)
	}
	if st := c.State(); st != StateDone {
		t.Fatalf("final state %s, want done", st)
	}
	return r
}

func TestLifecyclePauseResumeDeterminism(t *testing.T) {
	golden := Run(smallOptions(30))
	if golden.Err != nil {
		t.Fatal(golden.Err)
	}
	goldenDoc, err := json.Marshal(golden.Doc())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		o := smallOptions(30)
		o.Workers = workers
		o.StateDir = t.TempDir()
		o.SnapshotEvery = 4
		r := runWithPauses(t, o, int64(3000+workers), 6, 120)
		assertSameOutcome(t, "pause-resume", golden, r)
		doc, err := json.Marshal(r.Doc())
		if err != nil {
			t.Fatal(err)
		}
		if string(doc) != string(goldenDoc) {
			t.Errorf("workers=%d: report document differs from uninterrupted run:\n%s\nvs\n%s",
				workers, doc, goldenDoc)
		}
	}
}

func TestLifecyclePauseResumeUnderChaos(t *testing.T) {
	golden := Run(durableChaosOptions(12))
	if golden.Err != nil {
		t.Fatal(golden.Err)
	}
	for _, workers := range []int{1, 8} {
		o := durableChaosOptions(12)
		o.Workers = workers
		o.StateDir = t.TempDir()
		o.SnapshotEvery = 3
		o.SyncEvery = 2
		r := runWithPauses(t, o, int64(4000+workers), 5, 900)
		assertSameOutcome(t, "chaos pause-resume", golden, r)
	}
}

func TestLifecycleStatusDuringRun(t *testing.T) {
	// Status must be safe and coherent while the fold is writing — this
	// test is most meaningful under -race.
	o := smallOptions(40)
	o.Workers = 4
	c := New(o)
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prevUnits := 0
			for {
				select {
				case <-c.Done():
					return
				default:
				}
				s := c.Status()
				if s.Units < prevUnits {
					t.Errorf("Status.Units went backwards: %d after %d", s.Units, prevUnits)
					return
				}
				prevUnits = s.Units
				if s.Units > 0 && s.Execs == 0 {
					t.Error("Status has folded units but no executions")
					return
				}
				if len(s.BugRate) > 0 && s.Bugs != s.BugRate[len(s.BugRate)-1].CumulativeBugs {
					t.Errorf("Status.Bugs = %d but series ends at %d",
						s.Bugs, s.BugRate[len(s.BugRate)-1].CumulativeBugs)
					return
				}
			}
		}()
	}
	r, err := c.Wait()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	s := c.Status()
	if s.State != StateDone || s.Units != 40 || s.Bugs != len(r.Found) {
		t.Errorf("terminal Status = %+v, want done/40 units/%d bugs", s, len(r.Found))
	}
	golden := Run(smallOptions(40))
	assertSameOutcome(t, "status-observed run", golden, r)
}

func TestLifecycleCancelReturnsPartialReport(t *testing.T) {
	o := smallOptions(400)
	o.Workers = 2
	c := New(o)
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := c.Cancel(); err != nil {
		t.Fatal(err)
	}
	r, err := c.Wait()
	if err == nil {
		t.Skip("campaign finished before the cancel fired")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait error = %v, want context.Canceled", err)
	}
	if c.State() != StateCancelled {
		t.Fatalf("state %s, want cancelled", c.State())
	}
	if r == nil {
		t.Fatal("cancelled campaign returned no partial report")
	}
	if r.Complete() {
		t.Fatal("cancelled campaign claims completeness")
	}
	if doc := r.Doc(); doc.Complete || doc.Error == "" {
		t.Errorf("cancelled report document: %+v, want incomplete with error", doc)
	}
	// Cancel again is a no-op on a terminal campaign.
	if err := c.Cancel(); err != nil {
		t.Fatalf("Cancel on terminal campaign: %v", err)
	}
}

func TestLifecycleStateErrors(t *testing.T) {
	// Pause without a state directory: nothing durable to pause into.
	c := New(smallOptions(5))
	if err := c.Pause(); !errors.Is(err, ErrNotPausable) {
		t.Errorf("Pause on non-durable campaign: %v, want ErrNotPausable", err)
	}
	// Resume before any pause.
	if err := c.Resume(); err == nil {
		t.Error("Resume from new succeeded")
	}
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Start is once-only.
	if err := c.Start(context.Background()); err == nil {
		t.Error("second Start succeeded")
	}
	if _, err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	// A finished campaign refuses Pause and Resume.
	o := smallOptions(5)
	o.StateDir = t.TempDir()
	d := New(o)
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := d.Pause(); err == nil {
		t.Error("Pause on done campaign succeeded")
	}
	if err := d.Resume(); err == nil {
		t.Error("Resume on done campaign succeeded")
	}
}

func TestLifecycleCancelBeforeStart(t *testing.T) {
	c := New(smallOptions(5))
	if err := c.Cancel(); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateCancelled {
		t.Fatalf("state %s, want cancelled", c.State())
	}
	if _, err := c.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if err := c.Start(context.Background()); err == nil {
		t.Error("Start after Cancel succeeded")
	}
}

func TestLifecyclePausedCampaignResumableByNewProcess(t *testing.T) {
	// A paused campaign is exactly a crash-suspended one: a fresh
	// Campaign over the same state dir with Resume set must finish it.
	golden := Run(smallOptions(25))
	if golden.Err != nil {
		t.Fatal(golden.Err)
	}
	dir := t.TempDir()
	o := smallOptions(25)
	o.StateDir = dir
	o.SnapshotEvery = 4
	c := New(o)
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := c.Pause(); err != nil {
		// Finished before the pause; the "new process" then just
		// re-resumes a finished campaign (idempotent).
		if _, werr := c.Wait(); werr != nil {
			t.Fatal(werr)
		}
	}
	o2 := smallOptions(25)
	o2.StateDir = dir
	o2.Resume = true
	r, err := RunContext(context.Background(), o2)
	if err != nil {
		t.Fatalf("cross-process resume: %v", err)
	}
	assertSameOutcome(t, "cross-process resume of paused campaign", golden, r)
}

func TestLifecycleGateBackpressure(t *testing.T) {
	// A blocking gate must stall the campaign without breaking it, and
	// gate scheduling must not change the report.
	golden := Run(smallOptions(15))
	if golden.Err != nil {
		t.Fatal(golden.Err)
	}
	var admitted int32
	release := make(chan struct{})
	o := smallOptions(15)
	o.Workers = 4
	o.Gate = func(ctx context.Context) error {
		admitted++
		if int(admitted) == 5 {
			// Hold the source mid-campaign until the test releases it.
			select {
			case <-release:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		return nil
	}
	c := New(o)
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// While the gate is held the campaign must stay running, not fail.
	time.Sleep(30 * time.Millisecond)
	if st := c.State(); st != StateRunning {
		t.Fatalf("state %s while gate held, want running", st)
	}
	close(release)
	r, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, "gated run", golden, r)
}

func TestReportDocDeterministic(t *testing.T) {
	a := Run(smallOptions(20))
	b := Run(smallOptions(20))
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	da, err := json.Marshal(a.Doc())
	if err != nil {
		t.Fatal(err)
	}
	db, err := json.Marshal(b.Doc())
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Errorf("same options, different report documents:\n%s\nvs\n%s", da, db)
	}
	doc := a.Doc()
	if !doc.Complete || doc.Programs != 20 || len(doc.Bugs) != len(a.Found) {
		t.Errorf("document mis-projects the report: %+v", doc)
	}
	for i := 1; i < len(doc.Bugs); i++ {
		p, q := doc.Bugs[i-1], doc.Bugs[i]
		if p.Compiler > q.Compiler || (p.Compiler == q.Compiler && p.ID >= q.ID) {
			t.Errorf("document bugs not sorted: %v before %v", p, q)
		}
	}
}

func TestCorpusMergeReport(t *testing.T) {
	a := Run(smallOptions(15))
	o := smallOptions(15)
	o.Seed = 500
	b := Run(o)
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	corpus := NewCorpus()
	corpus.MergeReport(a)
	corpus.MergeReport(b)
	reversed := NewCorpus()
	reversed.MergeReport(b)
	reversed.MergeReport(a)
	if !reflect.DeepEqual(corpus, reversed) {
		t.Error("corpus merge is order-dependent")
	}
	if corpus.Campaigns != 2 {
		t.Errorf("Campaigns = %d, want 2", corpus.Campaigns)
	}
	for id, rec := range a.Found {
		e := corpus.Bugs[id]
		if e == nil {
			t.Errorf("merge lost bug %s", id)
			continue
		}
		if other, ok := b.Found[id]; ok {
			if e.Hits != rec.Hits+other.Hits {
				t.Errorf("bug %s hits not additive", id)
			}
			if e.Campaigns != 2 {
				t.Errorf("bug %s Campaigns = %d, want 2", id, e.Campaigns)
			}
		}
	}
}

// TestLifecyclePauseRacesCompletion drives Pause squarely into the
// completion window: the pause is requested only after every unit has
// folded, so the segment is finishing — or already finished —
// underneath it. Whatever interleaving lands, the campaign must settle
// coherently: paused (then resumable to done) or done, never wedged in
// pausing, with Wait unblocking and the completed report intact.
// Meaningful under -race.
func TestLifecyclePauseRacesCompletion(t *testing.T) {
	for i := 0; i < 8; i++ {
		o := smallOptions(10)
		o.Workers = 4
		o.StateDir = t.TempDir()
		o.SnapshotEvery = 4
		c := New(o)
		if err := c.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(2 * time.Minute)
		for c.Status().Units < o.Programs {
			if time.Now().After(deadline) {
				t.Fatal("campaign never folded all its units")
			}
			time.Sleep(200 * time.Microsecond)
		}
		pauseErr := c.Pause()
		switch st := c.State(); st {
		case StatePaused:
			// Pause won the race; the suspension must be resumable.
			if pauseErr != nil {
				t.Fatalf("iteration %d: paused, yet Pause returned %v", i, pauseErr)
			}
			if err := c.Resume(); err != nil {
				t.Fatalf("iteration %d: Resume after racing pause: %v", i, err)
			}
		case StateDone:
			// Completion won; a finished campaign stays finished whether
			// Pause returned nil (requested mid-drain) or a state error
			// (requested after settle).
		default:
			t.Fatalf("iteration %d: state %s after Pause returned (Pause err: %v) — incoherent settle",
				i, st, pauseErr)
		}
		r, err := c.Wait()
		if err != nil {
			t.Fatalf("iteration %d: Wait after racing pause: %v", i, err)
		}
		if !r.Complete() {
			t.Errorf("iteration %d: completed campaign's report is not complete", i)
		}
		if st := c.State(); st != StateDone {
			t.Errorf("iteration %d: final state %s, want done", i, st)
		}
	}
}
