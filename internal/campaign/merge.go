// Merger: the coordinator-side half of a sharded campaign. A shard
// covering global units [lo, hi) runs as an ordinary worker campaign
// with Seed = global seed + lo and Programs = hi - lo, journals locally,
// and ships its journal back; the coordinator folds every shipped
// record through the same commutative fold a live aggregator uses,
// remapping shard-local Seq by the shard's offset. Because the fold is
// commutative and the Merger dedups per global seq, shards can arrive
// in any order, a reassigned shard can replay records its dead
// predecessor already shipped, and a speculative re-execution can race
// the straggler it hedges — the first fold of each unit wins and every
// later copy is a no-op. The merged report is therefore byte-identical
// to an uninterrupted single-process run of the global options.

package campaign

import (
	"encoding/json"
	"fmt"

	"repro/internal/compilers"
)

// Merger folds shipped shard journals into one global report. Not safe
// for concurrent use: the coordinator serializes folds (they are cheap
// map updates; the compiles happened on the workers).
type Merger struct {
	report *Report
	agg    *reportAggregator
	done   map[int]bool
}

// NewMerger returns a merger for the global campaign options,
// normalized exactly as New normalizes them (nil Compilers means all
// three, BatchSize clamps to 1), so the merged report and a
// single-process report agree on what the campaign was.
func NewMerger(opts Options) *Merger {
	if opts.Compilers == nil {
		opts.Compilers = compilers.All()
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1
	}
	report := newReport(opts)
	return &Merger{
		report: report,
		agg:    &reportAggregator{report: report, bugIndex: bugIndexFor(opts.Compilers)},
		done:   map[int]bool{},
	}
}

// FoldRecord folds one shipped journal record whose shard-local Seq is
// offset by seqOffset (the shard's global lower bound). Returns false
// with a nil error for a duplicate — a unit already folded from an
// earlier attempt, a reassignment, or a speculative twin — which is the
// dedup that makes re-execution idempotent. A record that decodes but
// describes a unit outside the campaign, or whose seed disagrees with
// its remapped seq, is corrupt-by-content: the frame checksum passed
// but the payload cannot belong to this campaign.
func (m *Merger) FoldRecord(payload []byte, seqOffset int) (bool, error) {
	var rec unitRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return false, fmt.Errorf("campaign: undecodable shipped record: %w", err)
	}
	seq := rec.Seq + seqOffset
	if seq < 0 || seq >= m.report.Opts.Programs {
		return false, fmt.Errorf("campaign: shipped record seq %d (offset %d) outside campaign [0, %d)",
			rec.Seq, seqOffset, m.report.Opts.Programs)
	}
	if want := m.report.Opts.Seed + int64(seq); rec.Seed != want {
		return false, fmt.Errorf("campaign: shipped record seq %d carries seed %d, want %d; wrong shard or corrupt payload",
			seq, rec.Seed, want)
	}
	if m.done[seq] {
		return false, nil
	}
	rec.Seq = seq
	m.agg.fold(&rec)
	m.done[seq] = true
	return true, nil
}

// Folded reports whether the global unit seq has been folded.
func (m *Merger) Folded(seq int) bool { return m.done[seq] }

// Units returns how many distinct units have folded so far.
func (m *Merger) Units() int { return len(m.done) }

// Missing returns the global seqs in [lo, hi) not yet folded, in
// order — the coverage check a coordinator runs after merging a shard's
// journal, and the re-run list when quarantined corruption left holes.
func (m *Merger) Missing(lo, hi int) []int {
	var out []int
	for seq := lo; seq < hi; seq++ {
		if !m.done[seq] {
			out = append(out, seq)
		}
	}
	return out
}

// Finish seals the merge and returns the global report: Batches is
// computed from the global options (batching is accounting, not
// execution, so it is independent of sharding) and err — nil for a
// fully covered campaign — becomes Report.Err, exactly as a
// single-process run records it.
func (m *Merger) Finish(err error) *Report {
	m.report.Batches = (m.report.Opts.Programs + m.report.Opts.BatchSize - 1) / m.report.Opts.BatchSize
	m.report.Err = err
	return m.report
}
