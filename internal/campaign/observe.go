// Campaign observability: the adapter between the deterministic fold
// and the live metrics registry / event trace. Everything here is
// observation only — instruments mirror the fold, they never feed back
// into it — so a campaign's report is bit-for-bit identical with
// metrics on or off, at any worker count.

package campaign

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/oracle"
)

// observer mirrors folded units into live instruments. All methods are
// nil-safe, so the aggregator calls them unconditionally.
type observer struct {
	reg   *metrics.Registry
	trace *metrics.Trace

	units *metrics.Counter
	execs *metrics.Counter
	bugs  *metrics.Gauge
}

// newObserver returns nil when the campaign is unobserved — the hot
// fold path then costs one nil check, nothing more.
func newObserver(reg *metrics.Registry, trace *metrics.Trace) *observer {
	if reg == nil && trace == nil {
		return nil
	}
	return &observer{
		reg:   reg,
		trace: trace,
		units: reg.Counter("campaign.units"),
		execs: reg.Counter("campaign.execs"),
		bugs:  reg.Gauge("campaign.bugs"),
	}
}

// observeUnit mirrors one live-folded unit: throughput counters,
// per-compiler verdict counters, the distinct-bug gauge, and one
// verdict trace event per execution. Runs on the aggregator goroutine,
// in Seq order.
func (o *observer) observeUnit(rec *unitRecord, foundBugs int) {
	if o == nil {
		return
	}
	o.units.Inc()
	o.execs.Add(int64(len(rec.Execs)))
	o.bugs.Set(int64(foundBugs))
	for _, e := range rec.Execs {
		o.reg.Counter(verdictCounterName(e.Compiler, e.Kind, e.Verdict)).Inc()
		o.trace.Emit(metrics.Event{
			Kind:     "verdict",
			Seq:      rec.Seq,
			Unit:     rec.Seed,
			Stage:    e.Kind.String(),
			Compiler: e.Compiler,
			Verdict:  e.Verdict.String(),
		})
	}
}

// prime folds state restored from a snapshot and journal replay into
// the instruments, so a resumed campaign's live counters continue from
// where the killed run's left off instead of restarting at zero.
func (o *observer) prime(report *Report) {
	if o == nil {
		return
	}
	for _, b := range report.BugRate {
		o.units.Add(int64(b.Units))
		o.execs.Add(int64(b.Execs))
	}
	o.bugs.Set(int64(len(report.Found)))
	for comp, perKind := range report.Verdicts {
		for kind, perVerdict := range perKind {
			for verdict, n := range perVerdict {
				o.reg.Counter(verdictCounterName(comp, kind, verdict)).Add(int64(n))
			}
		}
	}
}

func verdictCounterName(comp string, kind oracle.InputKind, verdict oracle.Verdict) string {
	return "campaign.verdicts." + comp + "." + kind.String() + "." + verdict.String()
}

// StartHeartbeat launches a goroutine printing a one-line progress
// summary to w every interval, read from the registry: units done (and
// units/s since the previous beat), executions, distinct bugs, breaker
// states, and journal lag. totalUnits sizes the "done/total" fraction;
// 0 omits it. The returned stop function halts the ticker; it is safe
// to call more than once.
func StartHeartbeat(w io.Writer, reg *metrics.Registry, interval time.Duration, totalUnits int) (stop func()) {
	if reg == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	ticker := time.NewTicker(interval)
	go func() {
		defer ticker.Stop()
		lastUnits, lastBeat := int64(0), time.Now()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				snap := reg.Snapshot()
				now := time.Now()
				units := snap.Counters["campaign.units"]
				rate := float64(units-lastUnits) / now.Sub(lastBeat).Seconds()
				lastUnits, lastBeat = units, now

				var b strings.Builder
				fmt.Fprintf(&b, "heartbeat: units %d", units)
				if totalUnits > 0 {
					fmt.Fprintf(&b, "/%d", totalUnits)
				}
				fmt.Fprintf(&b, " (%.1f/s) execs %d bugs %d",
					rate, snap.Counters["campaign.execs"], snap.Gauges["campaign.bugs"])
				b.WriteString(" breakers " + breakerSummary(snap))
				if lag, ok := snap.Gauges["campaign.journal.lag"]; ok {
					fmt.Fprintf(&b, " journal lag %d", lag)
				}
				fmt.Fprintln(w, b.String())
			}
		}
	}()
	return func() {
		select {
		case <-done:
		default:
			close(done)
		}
	}
}

// breakerSummary renders the non-closed breakers from a snapshot, or
// "closed" when every breaker is admitting traffic.
func breakerSummary(snap metrics.Snapshot) string {
	var open []string
	for name, v := range snap.Gauges {
		const prefix = "harness.breaker."
		if strings.HasPrefix(name, prefix) && v != 0 {
			open = append(open, strings.TrimPrefix(name, prefix)+"="+breakerStateName(v))
		}
	}
	if len(open) == 0 {
		return "closed"
	}
	sort.Strings(open)
	return strings.Join(open, ",")
}

func breakerStateName(v int64) string {
	switch v {
	case 1:
		return "open"
	case 2:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", v)
	}
}
