// Campaign observability: the adapter between the deterministic fold
// and the live metrics registry / event trace. Everything here is
// observation only — instruments mirror the fold, they never feed back
// into it — so a campaign's report is bit-for-bit identical with
// metrics on or off, at any worker count.

package campaign

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/oracle"
)

// observer mirrors folded units into live instruments. All methods are
// nil-safe, so the aggregator calls them unconditionally.
type observer struct {
	reg   *metrics.Registry
	trace *metrics.Trace

	units *metrics.Counter
	execs *metrics.Counter
	bugs  *metrics.Gauge
	diffs *metrics.Counter
}

// newObserver returns nil when the campaign is unobserved — the hot
// fold path then costs one nil check, nothing more.
func newObserver(reg *metrics.Registry, trace *metrics.Trace) *observer {
	if reg == nil && trace == nil {
		return nil
	}
	return &observer{
		reg:   reg,
		trace: trace,
		units: reg.Counter("campaign.units"),
		execs: reg.Counter("campaign.execs"),
		bugs:  reg.Gauge("campaign.bugs"),
		diffs: reg.Counter("campaign.disagreements"),
	}
}

// observeUnit mirrors one live-folded unit: throughput counters,
// per-compiler verdict counters, the distinct-bug gauge, and one
// verdict trace event per execution. Runs on the aggregator goroutine,
// in Seq order.
func (o *observer) observeUnit(rec *unitRecord, foundBugs int) {
	if o == nil {
		return
	}
	o.units.Inc()
	o.execs.Add(int64(len(rec.Execs)))
	o.bugs.Set(int64(foundBugs))
	for _, e := range rec.Execs {
		o.reg.Counter(verdictCounterName(e.Compiler, e.Kind, e.Verdict)).Inc()
		o.trace.Emit(metrics.Event{
			Kind:     "verdict",
			Seq:      rec.Seq,
			Unit:     rec.Seed,
			Stage:    e.Kind.String(),
			Compiler: e.Compiler,
			Verdict:  e.Verdict.String(),
		})
	}
	for i := range rec.Diffs {
		d := &rec.Diffs[i]
		o.diffs.Inc()
		for _, p := range d.Pairs {
			o.reg.Counter(diffPairCounterName(p[0], p[1])).Inc()
		}
		o.trace.Emit(metrics.Event{
			Kind:     "diff",
			Seq:      rec.Seq,
			Unit:     rec.Seed,
			Stage:    d.Kind.String(),
			Compiler: suspectLabel(d.Sus),
			Verdict:  "disagreement",
			Detail:   d.vector(),
		})
	}
}

// prime folds state restored from a snapshot and journal replay into
// the instruments, so a resumed campaign's live counters continue from
// where the killed run's left off instead of restarting at zero.
func (o *observer) prime(report *Report) {
	if o == nil {
		return
	}
	for _, b := range report.BugRate {
		o.units.Add(int64(b.Units))
		o.execs.Add(int64(b.Execs))
	}
	o.bugs.Set(int64(len(report.Found)))
	for comp, perKind := range report.Verdicts {
		for kind, perVerdict := range perKind {
			for verdict, n := range perVerdict {
				o.reg.Counter(verdictCounterName(comp, kind, verdict)).Add(int64(n))
			}
		}
	}
	for _, rec := range report.Disagreements {
		o.diffs.Add(int64(rec.Hits))
	}
	for pair, n := range report.DiffMatrix {
		if i := strings.IndexByte(pair, '|'); i >= 0 {
			o.reg.Counter(diffPairCounterName(pair[:i], pair[i+1:])).Add(int64(n))
		}
	}
}

// CorruptionObserver builds the journal-corruption hook for
// journal.Store.SetObserver (and for the fabric coordinator's
// shipped-journal replays): each quarantined record increments the
// journal_corrupt_records counter and emits a "journal" trace event, so
// corruption is visible live instead of only in RecoveryInfo. Returns
// nil when the campaign is unobserved.
func CorruptionObserver(reg *metrics.Registry, trace *metrics.Trace) func(journal.Corruption) {
	if reg == nil && trace == nil {
		return nil
	}
	corrupt := reg.Counter("journal_corrupt_records")
	return func(c journal.Corruption) {
		corrupt.Inc()
		trace.Emit(metrics.Event{
			Kind:   "journal",
			Seq:    -1,
			Stage:  "replay",
			Detail: c.String(),
		})
	}
}

func verdictCounterName(comp string, kind oracle.InputKind, verdict oracle.Verdict) string {
	return "campaign.verdicts." + comp + "." + kind.String() + "." + verdict.String()
}

// diffPairCounterName names the per-pair disagreement counter for the
// unordered (sorted) compiler pair a, b.
func diffPairCounterName(a, b string) string {
	return "campaign.diff_pairs." + a + "__" + b
}

// HeartbeatLine renders one progress line from a pair of status
// snapshots: units done (and units/s against the previous snapshot
// over elapsed), executions, distinct bugs, breaker states, and — for
// durable campaigns — journal lag. The CLI heartbeat and the server's
// SSE heartbeat stream both render through here, so the two surfaces
// can never drift apart.
func HeartbeatLine(prev, cur Status, elapsed time.Duration) string {
	rate := 0.0
	if elapsed > 0 {
		rate = float64(cur.Units-prev.Units) / elapsed.Seconds()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "heartbeat: units %d", cur.Units)
	if cur.Programs > 0 {
		fmt.Fprintf(&b, "/%d", cur.Programs)
	}
	fmt.Fprintf(&b, " (%.1f/s) execs %d bugs %d", rate, cur.Execs, cur.Bugs)
	if n := cur.Kinds[oracle.Synthesized.String()]; n > 0 {
		fmt.Fprintf(&b, " synth %d", n)
	}
	if cur.Disagreements > 0 {
		fmt.Fprintf(&b, " diffs %d", cur.Disagreements)
	}
	b.WriteString(" breakers " + breakerSummary(cur.Breakers))
	if cur.Durable {
		fmt.Fprintf(&b, " journal lag %d", cur.JournalLag)
	}
	return b.String()
}

// StartHeartbeat launches a goroutine printing a HeartbeatLine to w
// every interval, rendered from status() — typically a Campaign's
// Status method. The returned stop function halts the ticker; it is
// safe to call more than once.
func StartHeartbeat(w io.Writer, status func() Status, interval time.Duration) (stop func()) {
	if status == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	ticker := time.NewTicker(interval)
	go func() {
		defer ticker.Stop()
		prev, lastBeat := Status{}, time.Now()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				cur := status()
				now := time.Now()
				fmt.Fprintln(w, HeartbeatLine(prev, cur, now.Sub(lastBeat)))
				prev, lastBeat = cur, now
			}
		}
	}()
	return func() {
		select {
		case <-done:
		default:
			close(done)
		}
	}
}

// breakerSummary renders the non-closed breakers from a status
// snapshot, or "closed" when every breaker is admitting traffic.
func breakerSummary(breakers map[string]harness.BreakerSnapshot) string {
	var open []string
	for name, snap := range breakers {
		if snap.State != harness.BreakerClosed {
			open = append(open, name+"="+snap.State.String())
		}
	}
	if len(open) == 0 {
		return "closed"
	}
	sort.Strings(open)
	return strings.Join(open, ",")
}
