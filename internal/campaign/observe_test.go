package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/metrics"
)

// TestMetricsObservationDoesNotPerturbCampaign is the tentpole
// guardrail: instrumentation is observation only, so a chaos soak's
// report must be bit-for-bit identical with metrics and tracing on or
// off, at 1 and at 8 workers.
func TestMetricsObservationDoesNotPerturbCampaign(t *testing.T) {
	for _, workers := range []int{1, 8} {
		off := chaosSoakOptions(20)
		off.Workers = workers
		plain := Run(off)
		if plain.Err != nil {
			t.Fatalf("workers=%d: unobserved run failed: %v", workers, plain.Err)
		}

		on := chaosSoakOptions(20)
		on.Workers = workers
		on.Metrics = metrics.NewRegistry()
		on.Trace = metrics.NewTrace(1024)
		observed := Run(on)
		if observed.Err != nil {
			t.Fatalf("workers=%d: observed run failed: %v", workers, observed.Err)
		}

		assertSameOutcome(t, fmt.Sprintf("metrics on vs off, workers=%d", workers), plain, observed)

		// And the instruments must agree with the deterministic report.
		snap := on.Metrics.Snapshot()
		if got := snap.Counters["campaign.units"]; got != int64(on.Programs) {
			t.Errorf("workers=%d: campaign.units = %d, want %d", workers, got, on.Programs)
		}
		if got := snap.Gauges["campaign.bugs"]; got != int64(len(observed.Found)) {
			t.Errorf("workers=%d: campaign.bugs gauge = %d, want %d", workers, got, len(observed.Found))
		}
		verdictTotal := int64(0)
		for name, n := range snap.Counters {
			if len(name) > 18 && name[:18] == "campaign.verdicts." {
				verdictTotal += n
			}
		}
		reportTotal := 0
		for _, perKind := range observed.Verdicts {
			for _, perVerdict := range perKind {
				for _, n := range perVerdict {
					reportTotal += n
				}
			}
		}
		if verdictTotal != int64(reportTotal) {
			t.Errorf("workers=%d: verdict counters sum to %d, report holds %d", workers, verdictTotal, reportTotal)
		}
		if on.Trace.Total() == 0 {
			t.Errorf("workers=%d: chaos soak emitted no trace events", workers)
		}
	}
}

func TestBugRateSeriesDerivation(t *testing.T) {
	r := Run(smallOptions(80))
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	series := r.BugRateSeries()
	if len(series) == 0 {
		t.Fatal("campaign produced no bug-rate series")
	}
	units, newBugs, lastCum := 0, 0, 0
	for i, p := range series {
		if p.StartSeq != i*SeriesBucketWidth || p.EndSeq != (i+1)*SeriesBucketWidth {
			t.Errorf("bucket %d spans [%d, %d), want [%d, %d)",
				i, p.StartSeq, p.EndSeq, i*SeriesBucketWidth, (i+1)*SeriesBucketWidth)
		}
		if p.CumulativeBugs < lastCum {
			t.Errorf("cumulative bugs shrank at bucket %d: %d -> %d", i, lastCum, p.CumulativeBugs)
		}
		lastCum = p.CumulativeBugs
		units += p.Units
		newBugs += p.NewBugs
	}
	if units != r.Opts.Programs {
		t.Errorf("series covers %d units, want %d", units, r.Opts.Programs)
	}
	if newBugs != len(r.Found) || lastCum != len(r.Found) {
		t.Errorf("series found %d new / %d cumulative bugs, report holds %d",
			newBugs, lastCum, len(r.Found))
	}
}

// TestDurableResumeContinuesSeries pins the resume contract for the
// bug-rate series and the primed registry: a kill/resume campaign's
// series equals the uninterrupted run's, and the resumed process's
// fresh registry is primed with the restored totals so its live
// instruments continue instead of restarting at zero.
func TestDurableResumeContinuesSeries(t *testing.T) {
	golden := Run(smallOptions(30))
	if golden.Err != nil {
		t.Fatal(golden.Err)
	}
	o := smallOptions(30)
	o.StateDir = t.TempDir()
	o.SnapshotEvery = 4
	o.Metrics = metrics.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	_, firstErr := RunContext(ctx, o)
	cancel()

	// Second cycle models the restarted process: same state dir, brand
	// new registry. Whether the first cycle was killed or finished, the
	// resume must restore + prime, then fold whatever remains — leaving
	// the fresh registry covering the whole campaign.
	o.Resume = true
	o.Metrics = metrics.NewRegistry()
	r, err := RunContext(context.Background(), o)
	if err != nil {
		t.Fatalf("resume (after first cycle err=%v) failed: %v", firstErr, err)
	}
	assertSameOutcome(t, "resumed series", golden, r)
	if got := o.Metrics.Snapshot().Counters["campaign.units"]; got != int64(o.Programs) {
		t.Errorf("resumed registry campaign.units = %d, want %d", got, o.Programs)
	}
	if got := o.Metrics.Snapshot().Gauges["campaign.bugs"]; got != int64(len(r.Found)) {
		t.Errorf("resumed registry campaign.bugs = %d, want %d", got, len(r.Found))
	}
}

// TestSnapshotCadenceSentinel pins the -snapshot-every contract: 0 is
// the default cadence, negative disables snapshots entirely and leaves
// resume to journal replay.
func TestSnapshotCadenceSentinel(t *testing.T) {
	golden := Run(smallOptions(30))
	if golden.Err != nil {
		t.Fatal(golden.Err)
	}
	o := smallOptions(30)
	o.StateDir = t.TempDir()
	o.SnapshotEvery = -1
	r := runWithKills(t, o, 31337, 6, 120)
	assertSameOutcome(t, "snapshots disabled", golden, r)

	snaps, err := filepath.Glob(filepath.Join(o.StateDir, "snapshot-*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 0 {
		t.Errorf("SnapshotEvery=-1 still wrote snapshots: %v", snaps)
	}
	// With no snapshots on disk, any resume is pure journal replay.
	if r.Recovery.SnapshotSeq != 0 {
		t.Errorf("journal-only resume restored a snapshot prefix of %d units", r.Recovery.SnapshotSeq)
	}
}

// TestCampaignEndpointsServeLiveMetrics drives a real observed campaign
// and reads its debug endpoints over HTTP: /metrics must expose the
// campaign counters, per-stage pipeline instruments, and wall-time
// histograms; /events must tail verdict events.
func TestCampaignEndpointsServeLiveMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	trace := metrics.NewTrace(2048)
	srv, err := metrics.Serve("127.0.0.1:0", reg, trace)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	o := smallOptions(30)
	o.Metrics = reg
	o.Trace = trace
	if r := Run(o); r.Err != nil {
		t.Fatal(r.Err)
	}

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, err %v", path, resp.StatusCode, err)
		}
		return body
	}

	var snap metrics.Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if snap.Counters["campaign.units"] != int64(o.Programs) {
		t.Errorf("/metrics campaign.units = %d, want %d", snap.Counters["campaign.units"], o.Programs)
	}
	if snap.Counters["pipeline.campaign.execute.in"] == 0 {
		t.Error("/metrics has no per-stage pipeline throughput")
	}
	foundVerdict, foundWall := false, false
	for name := range snap.Counters {
		if len(name) > 18 && name[:18] == "campaign.verdicts." {
			foundVerdict = true
		}
	}
	for name, h := range snap.Histograms {
		if len(name) > 24 && name[:24] == "harness.compile_wall_ns." && h.Count > 0 {
			foundWall = true
		}
	}
	if !foundVerdict {
		t.Error("/metrics has no per-compiler verdict counters")
	}
	if !foundWall {
		t.Error("/metrics has no compile wall-time histograms")
	}
	if snap.Histograms["pipeline.campaign.execute.service_ns"].Count == 0 {
		t.Error("/metrics has no per-stage service-time histogram")
	}

	var events struct {
		Total  int64           `json:"total"`
		Events []metrics.Event `json:"events"`
	}
	if err := json.Unmarshal(get("/events?n=10"), &events); err != nil {
		t.Fatalf("/events not JSON: %v", err)
	}
	if events.Total == 0 || len(events.Events) == 0 {
		t.Fatal("/events is empty after an observed campaign")
	}
	seenVerdict := false
	for _, e := range events.Events {
		if e.Kind == "verdict" && e.Compiler != "" && e.Verdict != "" {
			seenVerdict = true
		}
	}
	if !seenVerdict {
		t.Errorf("/events tail has no verdict events: %+v", events.Events)
	}
}

// syncBuffer is a goroutine-safe writer for the heartbeat test.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestHeartbeatPrintsProgress(t *testing.T) {
	status := func() Status {
		return Status{
			State:    StateRunning,
			Durable:  true,
			Programs: 40,
			Units:    7,
			Execs:    84,
			Bugs:     3,
			Breakers: map[string]harness.BreakerSnapshot{
				"groovyc": {State: harness.BreakerOpen},
				"javac":   {State: harness.BreakerClosed},
			},
			JournalLag: 5,
		}
	}

	var buf syncBuffer
	stop := StartHeartbeat(&buf, status, 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for buf.String() == "" && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // stop is idempotent

	out := buf.String()
	for _, want := range []string{
		"heartbeat:", "units 7/40", "execs 84", "bugs 3",
		"breakers groovyc=open", "journal lag 5",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("heartbeat output missing %q:\n%s", want, out)
		}
	}

	// A nil status source or zero interval is a no-op.
	StartHeartbeat(io.Discard, nil, time.Millisecond)()
	StartHeartbeat(io.Discard, status, 0)()
}

// TestHeartbeatLine pins the line format both the CLI heartbeat and
// the server's SSE heartbeat render through.
func TestHeartbeatLine(t *testing.T) {
	prev := Status{Units: 3}
	cur := Status{Programs: 40, Units: 7, Execs: 84, Bugs: 3}
	line := HeartbeatLine(prev, cur, 2*time.Second)
	want := "heartbeat: units 7/40 (2.0/s) execs 84 bugs 3 breakers closed"
	if line != want {
		t.Errorf("HeartbeatLine = %q, want %q", line, want)
	}
	cur.Durable = true
	cur.JournalLag = 9
	if line := HeartbeatLine(prev, cur, 2*time.Second); !strings.HasSuffix(line, "journal lag 9") {
		t.Errorf("durable HeartbeatLine missing journal lag: %q", line)
	}
}

// TestFingerprintIgnoresObservability pins that toggling metrics or
// tracing between resume cycles cannot orphan a state directory.
func TestFingerprintIgnoresObservability(t *testing.T) {
	base := smallOptions(10)
	observed := smallOptions(10)
	observed.Metrics = metrics.NewRegistry()
	observed.Trace = metrics.NewTrace(64)
	observed.Harness.Metrics = observed.Metrics
	observed.Harness.Trace = observed.Trace
	if fingerprint(base) != fingerprint(observed) {
		t.Error("fingerprint changed when observability was attached")
	}
	changed := smallOptions(10)
	changed.Seed = 99
	if fingerprint(base) == fingerprint(changed) {
		t.Error("fingerprint ignored a campaign-defining option")
	}
}

// TestRateBucketSnapshotRoundTrip pins the JSON encoding of the
// int-keyed series map used inside snapshots.
func TestRateBucketSnapshotRoundTrip(t *testing.T) {
	in := map[int]*RateBucket{0: {Units: 32, Execs: 384, BugHits: 7}, 3: {Units: 4, Execs: 48}}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out map[int]*RateBucket
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("series round trip: %+v vs %+v", in, out)
	}
}
