package campaign

import (
	"fmt"

	"repro/internal/apisynth"
	"repro/internal/oracle"
	"repro/internal/pipeline"
)

// synthProducer adapts the API-driven synthesizer to the pipeline's
// Producer seam: it claims the seeds the synthesis cadence selects and
// materializes Synthesized units for them. Claims and Produce are pure
// functions of the seed, so shards, workers, and resumed runs agree.
type synthProducer struct {
	cfg apisynth.Config
	s   *apisynth.Synthesizer
}

// newSynthProducer loads the configured corpus and builds the
// synthesizer; a corpus that fails to load or whose materialized
// skeleton does not type-check is a configuration error surfaced
// before the pipeline starts.
func newSynthProducer(cfg apisynth.Config) (*synthProducer, error) {
	corp, err := cfg.Load()
	if err != nil {
		return nil, fmt.Errorf("campaign: synth corpus: %w", err)
	}
	s, err := apisynth.NewSynthesizer(corp)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return &synthProducer{cfg: cfg, s: s}, nil
}

// Name implements pipeline.Producer.
func (*synthProducer) Name() string { return "apisynth" }

// Claims implements pipeline.Producer.
func (p *synthProducer) Claims(seed int64) bool { return p.cfg.SynthSeed(seed) }

// Produce implements pipeline.Producer.
func (p *synthProducer) Produce(seed int64) pipeline.Produced {
	return pipeline.Produced{
		Kind:     oracle.Synthesized,
		Program:  p.s.Program(seed),
		Builtins: p.s.Builtins(),
	}
}
