package campaign

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/apisynth"
	"repro/internal/compilers"
	"repro/internal/generator"
	"repro/internal/oracle"
)

// synthOptions interleaves API-driven synthesis with generation on a
// 1-in-2 cadence, the mixed-mode shape a -synth campaign runs.
func synthOptions(programs int) Options {
	o := smallOptions(programs)
	o.Synth = apisynth.Config{Every: 2}
	return o
}

func TestSynthCampaignProducesSynthesizedUnits(t *testing.T) {
	report := Run(synthOptions(40))
	if report.Err != nil {
		t.Fatal(report.Err)
	}
	// Every=2 claims odd seeds: exactly half the units are synthesized,
	// the rest generated.
	if n := report.ProgramsRun[oracle.Synthesized]; n != 20 {
		t.Errorf("synthesized programs run = %d, want 20", n)
	}
	if n := report.ProgramsRun[oracle.Generated]; n != 20 {
		t.Errorf("generated programs run = %d, want 20", n)
	}
	// Synthesized units are not mutable: mutants only derive from the
	// generated half.
	for _, kind := range []oracle.InputKind{oracle.TEMMutant, oracle.TOMMutant, oracle.TEMTOMMutant} {
		if n := report.ProgramsRun[kind]; n > 20 {
			t.Errorf("%s: %d mutants from 20 mutable units", kind, n)
		}
	}
	// Synthesized inputs are expected-to-compile, so the derivation
	// oracle can attribute bugs to them; a campaign this size reliably
	// catches the simulated compiler mis-rejecting API-heavy programs.
	synthBugs := 0
	for _, rec := range report.Found {
		if rec.FoundBy[oracle.Synthesized] {
			synthBugs++
		}
	}
	if synthBugs == 0 {
		t.Error("no bug attributed to a synthesized input")
	}
	// Verdict bookkeeping must agree with the cadence.
	judged := 0
	for _, n := range report.Verdicts["groovyc"][oracle.Synthesized] {
		judged += n
	}
	if judged != 20 {
		t.Errorf("synthesized verdicts recorded = %d, want 20", judged)
	}
	// And the attribution label knows about the new kind.
	for id, rec := range report.Found {
		if rec.FoundBy[oracle.Synthesized] && len(rec.FoundBy) == 1 {
			if got := rec.Technique(); got != "Synthesized" {
				t.Errorf("%s: Technique() = %q, want Synthesized", id, got)
			}
		}
	}
}

func TestSynthCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	o1 := synthOptions(30)
	o1.Workers = 1
	o2 := synthOptions(30)
	o2.Workers = 8
	r1, r2 := Run(o1), Run(o2)
	if r1.Err != nil || r2.Err != nil {
		t.Fatal(r1.Err, r2.Err)
	}
	assertSameOutcome(t, "synth 1-vs-8 workers", r1, r2)
	// The acceptance bar is byte-identical report documents, not just
	// DeepEqual fields.
	d1, err := json.Marshal(r1.Doc())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := json.Marshal(r2.Doc())
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d2) {
		t.Errorf("synth report documents differ across worker counts:\n%s\nvs\n%s", d1, d2)
	}
	var doc ReportDoc
	if err := json.Unmarshal(d1, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.ProgramsRun[oracle.Synthesized.String()] != 15 {
		t.Errorf("report document programs_run = %v, want synthesized:15", doc.ProgramsRun)
	}
}

func TestSynthKillResumeDeterminism(t *testing.T) {
	golden := Run(synthOptions(30))
	if golden.Err != nil {
		t.Fatal(golden.Err)
	}
	for _, workers := range []int{1, 8} {
		o := synthOptions(30)
		o.Workers = workers
		o.StateDir = t.TempDir()
		o.SnapshotEvery = 4
		r := runWithKills(t, o, int64(7000+workers), 6, 150)
		assertSameOutcome(t, "synth kill-resume", golden, r)
	}
}

// TestSynthFingerprintCoversKnobs pins the synthesis knobs into the
// campaign fingerprint — a different cadence or corpus is a different
// campaign — while a disabled config must leave pre-synthesis state
// directories resumable (the fingerprint is unchanged).
func TestSynthFingerprintCoversKnobs(t *testing.T) {
	base := smallOptions(10)
	if fingerprint(base) != fingerprint(synthDisabled(base)) {
		t.Error("zero-value synth config perturbs the fingerprint")
	}
	enabled := smallOptions(10)
	enabled.Synth = apisynth.Config{Every: 2}
	if fingerprint(base) == fingerprint(enabled) {
		t.Error("fingerprint ignores synthesis being enabled")
	}
	cadence := smallOptions(10)
	cadence.Synth = apisynth.Config{Every: 3}
	if fingerprint(enabled) == fingerprint(cadence) {
		t.Error("fingerprint ignores the synthesis cadence")
	}
	corpusPath := smallOptions(10)
	corpusPath.Synth = apisynth.Config{Every: 2, Corpus: "other.json"}
	if fingerprint(enabled) == fingerprint(corpusPath) {
		t.Error("fingerprint ignores the corpus path")
	}
}

func synthDisabled(o Options) Options {
	o.Synth = apisynth.Config{}
	return o
}

func TestSynthResumeRejectsDifferentCadence(t *testing.T) {
	dir := t.TempDir()
	o := synthOptions(10)
	o.StateDir = dir
	if r := Run(o); r.Err != nil {
		t.Fatal(r.Err)
	}
	other := synthOptions(10)
	other.Synth.Every = 3
	other.StateDir = dir
	other.Resume = true
	r, err := RunContext(context.Background(), other)
	if err == nil || r.Err == nil {
		t.Fatal("resuming with a different synthesis cadence succeeded")
	}
}

// TestSynthCampaignBadCorpusFailsFast pins the error path: a corpus
// that cannot load is a configuration error reported before any unit
// runs, not a hang or a silent generated-only campaign.
func TestSynthCampaignBadCorpusFailsFast(t *testing.T) {
	o := synthOptions(10)
	o.Synth.Corpus = "/nonexistent/corpus.json"
	done := make(chan *Report, 1)
	go func() { done <- Run(o) }()
	select {
	case r := <-done:
		if r.Err == nil {
			t.Fatal("campaign with unloadable corpus reported no error")
		}
		if !strings.Contains(r.Err.Error(), "corpus") {
			t.Errorf("error does not name the corpus: %v", r.Err)
		}
		if r.ProgramsRun[oracle.Synthesized] != 0 {
			t.Error("units ran despite the corpus failing to load")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("bad-corpus campaign did not fail fast")
	}
}

// TestSynthCoverageAdvantage is the acceptance experiment: synthesized
// programs must reach probe sites a same-seed generated-only campaign
// does not — that is the reason the input kind exists.
func TestSynthCoverageAdvantage(t *testing.T) {
	cov := RunSynthCoverage(compilers.Kotlinc(), 25, 0, generator.DefaultConfig(), apisynth.Config{})
	if cov == nil {
		t.Fatal("experiment returned nothing")
	}
	if cov.SynthDelta.Lines+cov.SynthDelta.Funcs+cov.SynthDelta.Branches == 0 {
		t.Error("synthesis reached no probe sites beyond the generator baseline")
	}
	// The extra sites should concentrate where API walking aims:
	// inference and resolution.
	extra := 0
	for region, d := range cov.SynthByRegion {
		if strings.Contains(region, "inference") || strings.Contains(region, "resolve") {
			extra += d.Lines + d.Funcs + d.Branches
		}
	}
	if extra == 0 {
		t.Errorf("synthesis extra coverage misses inference/resolution regions: %+v", cov.SynthByRegion)
	}
	if !strings.Contains(cov.String(), "Synth change") {
		t.Errorf("report rendering:\n%s", cov)
	}
}

// TestSynthCorpusMergeAcrossKinds pins satellite coverage for the bug
// corpus: bugs found by synthesized inputs merge across campaigns, a
// bug found by different input kinds in different campaigns dedups to
// one entry, and MergeReport stays commutative with Synthesized in
// play.
func TestSynthCorpusMergeAcrossKinds(t *testing.T) {
	gen := Run(smallOptions(40))
	syn := Run(synthOptions(40))
	if gen.Err != nil || syn.Err != nil {
		t.Fatal(gen.Err, syn.Err)
	}
	corpus := NewCorpus()
	corpus.MergeReport(gen)
	corpus.MergeReport(syn)
	reversed := NewCorpus()
	reversed.MergeReport(syn)
	reversed.MergeReport(gen)
	if !reflect.DeepEqual(corpus, reversed) {
		t.Error("corpus merge is order-dependent with synthesized bugs")
	}
	synthOnly, overlap := 0, 0
	for id, rec := range syn.Found {
		if !rec.FoundBy[oracle.Synthesized] {
			continue
		}
		synthOnly++
		e := corpus.Bugs[id]
		if e == nil {
			t.Errorf("merge lost synthesized bug %s", id)
			continue
		}
		if other, ok := gen.Found[id]; ok {
			// Same bug reached by different kinds in different
			// campaigns: one corpus entry, additive hits.
			overlap++
			if e.Hits != rec.Hits+other.Hits {
				t.Errorf("bug %s: hits not additive across kinds (%d vs %d+%d)",
					id, e.Hits, rec.Hits, other.Hits)
			}
			if e.Campaigns != 2 {
				t.Errorf("bug %s: Campaigns = %d, want 2", id, e.Campaigns)
			}
		}
	}
	if synthOnly == 0 {
		t.Error("no synthesized-origin bugs to exercise the merge")
	}
	if overlap == 0 {
		t.Error("no bug found by both campaigns — dedup across kinds unexercised")
	}
}

// TestSynthStatusAndHeartbeatSurfaceKinds pins satellite coverage for
// observability: Status carries per-kind unit counts and the heartbeat
// line surfaces the synthesized count, on both the CLI and SSE surfaces
// (which render through the same function).
func TestSynthStatusAndHeartbeatSurfaceKinds(t *testing.T) {
	o := synthOptions(20)
	c := New(o)
	if err := c.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	s := c.Status()
	if s.Kinds[oracle.Synthesized.String()] != 10 {
		t.Errorf("Status.Kinds = %v, want synthesized:10", s.Kinds)
	}
	if s.Kinds[oracle.Generated.String()] != 10 {
		t.Errorf("Status.Kinds = %v, want generator:10", s.Kinds)
	}
	line := HeartbeatLine(Status{}, s, time.Second)
	if !strings.Contains(line, "synth 10") {
		t.Errorf("heartbeat does not surface the synthesized count: %q", line)
	}
	// A campaign with no synthesized units keeps the historical line
	// format byte-for-byte.
	plain := HeartbeatLine(Status{}, Status{Units: 7, Execs: 84, Bugs: 3}, time.Second)
	if strings.Contains(plain, "synth") {
		t.Errorf("synth leaked into a generated-only heartbeat: %q", plain)
	}
}

// TestGenConfigClampRecordedInFingerprint pins the clamp bugfix: the
// generator clamps degenerate config values up to workable minimums,
// and the campaign fingerprint must hash those effective values — an
// out-of-range config and its clamped form are the same campaign, so a
// state dir written under one resumes under the other.
func TestGenConfigClampRecordedInFingerprint(t *testing.T) {
	raw := smallOptions(10)
	raw.GenConfig.MaxDepth = 0      // clamps to 2
	raw.GenConfig.MaxTypeParams = 0 // clamps to 1
	raw.GenConfig.MaxLocals = -3    // clamps to 1
	clamped := smallOptions(10)
	clamped.GenConfig = raw.GenConfig.Normalized()
	if fingerprint(raw) != fingerprint(clamped) {
		t.Error("fingerprint distinguishes a config from its clamped form")
	}

	// End to end: a campaign journaled under the raw config resumes
	// under the explicitly clamped one, to the same report.
	dir := t.TempDir()
	o := raw
	o.StateDir = dir
	first := Run(o)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	re := clamped
	re.StateDir = dir
	re.Resume = true
	again := Run(re)
	if again.Err != nil {
		t.Fatalf("resume under clamped config rejected: %v", again.Err)
	}
	assertSameOutcome(t, "clamped-config resume", first, again)

	// And both behave like the in-range config they clamp to: the
	// generator's output is a function of effective values only.
	direct := clamped
	direct.StateDir = ""
	assertSameOutcome(t, "raw-vs-normalized run", Run(direct), first)
}
