package checker

import (
	"fmt"

	"repro/internal/coverage"
	"repro/internal/governor"
	"repro/internal/ir"
	"repro/internal/types"
)

// Options configures a check run.
type Options struct {
	// Probes receives coverage events; nil means no instrumentation.
	Probes coverage.Recorder
	// RecordTypes fills Result.ExprTypes with the static type of every
	// expression — the getType(e) oracle the type-graph analysis uses.
	RecordTypes bool
	// Budget, when non-nil, meters the check: every expression and every
	// recursive relation in internal/types charges it, and a guarded
	// budget aborts the walk by panicking with a *governor.Bailout that
	// Check recovers and records on Result.Bailout. Charge points also
	// poll the budget's bound context, so a cancelled compile exits
	// cooperatively instead of running to completion.
	Budget *governor.Budget
}

// Check type-checks a whole program against the builtin universe b and
// returns the diagnostics. It is deterministic and side-effect free.
//
// When Options.Budget trips (fuel, depth, or cancellation), the in-flight
// walk is abandoned via a *governor.Bailout panic that is recovered here —
// never escaping to callers, so the harness sandbox's recover (which
// classifies panics as compiler crashes) cannot see it — and recorded on
// Result.Bailout. A bailed result's diagnostics are partial; callers must
// check Bailout before trusting OK().
func Check(p *ir.Program, b *types.Builtins, opts Options) (res *Result) {
	probes := opts.Probes
	if probes == nil {
		probes = coverage.Nop{}
	}
	_, nop := probes.(coverage.Nop)
	c := &checker{
		env:        NewEnv(p, b),
		gov:        opts.Budget,
		probes:     probes,
		probesLive: !nop,
		result:     &Result{InferredReturns: map[string]string{}},
		rets:       map[*ir.FuncDecl]types.Type{},
		inFly:      map[*ir.FuncDecl]bool{},
	}
	c.env.Gov = opts.Budget
	if opts.RecordTypes {
		c.result.ExprTypes = map[ir.Expr]types.Type{}
	}
	res = c.result
	defer func() {
		if r := recover(); r != nil {
			bail, ok := governor.AsBailout(r)
			if !ok {
				panic(r)
			}
			res.Bailout = bail
		}
	}()
	c.checkProgram(p)
	return res
}

// scope is a lexical frame of local variables and parameters.
type scope struct {
	parent  *scope
	vars    map[string]types.Type
	mutable map[string]bool
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, vars: map[string]types.Type{}, mutable: map[string]bool{}}
}

func (s *scope) declare(name string, t types.Type, mutable bool) {
	s.vars[name] = t
	s.mutable[name] = mutable
}

func (s *scope) lookup(name string) (types.Type, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if t, ok := cur.vars[name]; ok {
			return t, true
		}
	}
	return nil, false
}

func (s *scope) isMutable(name string) bool {
	for cur := s; cur != nil; cur = cur.parent {
		if _, ok := cur.vars[name]; ok {
			return cur.mutable[name]
		}
	}
	return false
}

type checker struct {
	env    *Env
	gov    *governor.Budget
	probes coverage.Recorder
	// probesLive is false for the no-op recorder; probe sites whose names
	// need runtime string building check it first so the unobserved
	// checker (generation filtering, benchmarks) never concatenates just
	// to feed a discarding sink.
	probesLive bool
	result     *Result

	curClass *ir.ClassDecl
	curFunc  *ir.FuncDecl

	// rets memoizes inferred return types of functions declared without
	// one; inFly detects inference cycles.
	rets  map[*ir.FuncDecl]types.Type
	inFly map[*ir.FuncDecl]bool
}

// kindOf names a type's structural kind for probe-site granularity: probe
// sites are the simulated compiler's "source lines", so faceting them by
// the bounded kind vocabulary models distinct code paths per type shape.
func kindOf(t types.Type) string {
	switch tt := t.(type) {
	case nil:
		return "nil"
	case types.Top:
		return "top"
	case types.Bottom:
		return "bottom"
	case *types.Simple:
		if tt.Builtin {
			return "builtin"
		}
		return "simple"
	case *types.Parameter:
		if tt.Bound != nil {
			return "boundedParam"
		}
		return "param"
	case *types.Constructor:
		return "ctor"
	case *types.App:
		for _, a := range tt.Args {
			if _, ok := a.(*types.Projection); ok {
				return "projApp"
			}
			if _, ok := a.(*types.App); ok {
				return "nestedApp"
			}
		}
		return "app"
	case *types.Func:
		return "func"
	case *types.Projection:
		return "proj"
	case *types.Intersection:
		return "intersection"
	}
	return "other"
}

// exprKind names an expression's syntactic form for probe facets.
func exprKind(e ir.Expr) string {
	switch e.(type) {
	case *ir.Const:
		return "const"
	case *ir.VarRef:
		return "var"
	case *ir.FieldAccess:
		return "field"
	case *ir.BinaryOp:
		return "binop"
	case *ir.Block:
		return "block"
	case *ir.Call:
		return "call"
	case *ir.New:
		return "new"
	case *ir.Assign:
		return "assign"
	case *ir.If:
		return "if"
	case *ir.MethodRef:
		return "methodref"
	case *ir.Lambda:
		return "lambda"
	case *ir.Cast:
		return "cast"
	case *ir.Is:
		return "is"
	}
	return "other"
}

// typeOfProbe is "stc.typeOf." + exprKind(e) with the concatenation done
// at compile time: this probe fires once per expression, and building its
// name at runtime dominated the checker's CPU profile.
func typeOfProbe(e ir.Expr) string {
	switch e.(type) {
	case *ir.Const:
		return "stc.typeOf.const"
	case *ir.VarRef:
		return "stc.typeOf.var"
	case *ir.FieldAccess:
		return "stc.typeOf.field"
	case *ir.BinaryOp:
		return "stc.typeOf.binop"
	case *ir.Block:
		return "stc.typeOf.block"
	case *ir.Call:
		return "stc.typeOf.call"
	case *ir.New:
		return "stc.typeOf.new"
	case *ir.Assign:
		return "stc.typeOf.assign"
	case *ir.If:
		return "stc.typeOf.if"
	case *ir.MethodRef:
		return "stc.typeOf.methodref"
	case *ir.Lambda:
		return "stc.typeOf.lambda"
	case *ir.Cast:
		return "stc.typeOf.cast"
	case *ir.Is:
		return "stc.typeOf.is"
	}
	return "stc.typeOf.other"
}

// probeKinds is the closed vocabulary kindOf draws from. probeNames
// precomputes prefix+kind for every entry so kind-faceted probe sites
// look their name up instead of concatenating per call.
var probeKinds = []string{
	"nil", "top", "bottom", "builtin", "simple", "boundedParam", "param",
	"ctor", "app", "projApp", "nestedApp", "func", "proj", "intersection",
	"other",
}

func probeNames(prefix string) map[string]string {
	m := make(map[string]string, len(probeKinds))
	for _, k := range probeKinds {
		m[k] = prefix + k
	}
	return m
}

// probeName returns the precomputed prefix+kind name, falling back to
// concatenation for kinds outside the table (none today; defensive).
func probeName(m map[string]string, prefix, kind string) string {
	if s, ok := m[kind]; ok {
		return s
	}
	return prefix + kind
}

var (
	isSubtypeProbes     = probeNames("types.isSubtype.")
	returnTypeProbes    = probeNames("infer.returnType.")
	varDeclProbes       = probeNames("infer.varDecl.")
	lambdaParamProbes   = probeNames("infer.lambda.param.")
	gcFromArgProbes     = probeNames("infer.genericCall.fromArg.")
	gcFromTargetProbes  = probeNames("infer.genericCall.fromTarget.")
	gcUnboundProbes     = probeNames("infer.genericCall.unbound.")
	diaFromArgProbes    = probeNames("infer.diamond.fromArg.")
	diaFromTargetProbes = probeNames("infer.diamond.fromTarget.")
	diaUnboundProbes    = probeNames("infer.diamond.unbound.")
)

func (c *checker) errorf(kind DiagKind, format string, args ...any) {
	// Diagnostic construction and rendering is compiler code too: these
	// probe sites are reached only on erroneous input — the paths TOM
	// mutants exercise (Figure 9's TOM rows).
	c.probes.Func("code.report")
	c.probes.Line("code.report." + kind.String())
	where := "<top-level>"
	if c.curClass != nil && c.curFunc != nil {
		where = c.curClass.Name + "." + c.curFunc.Name
	} else if c.curFunc != nil {
		where = c.curFunc.Name
	} else if c.curClass != nil {
		where = c.curClass.Name
	}
	c.result.Diags = append(c.result.Diags, Diagnostic{
		Kind:  kind,
		Where: where,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// conforms checks got <: want and reports a TypeMismatch otherwise.
// A nil want imposes no constraint; a Unit want discards the value.
func (c *checker) conforms(got, want types.Type, what string) bool {
	if want == nil || got == nil {
		return true
	}
	if s, ok := want.(*types.Simple); ok && s.TypeName == "Unit" {
		return true
	}
	c.probes.Func("types.isSubtype")
	ok := types.IsSubtypeB(c.gov, got, want)
	c.probes.Branch(probeName(isSubtypeProbes, "types.isSubtype.", kindOf(want)), ok)
	if !ok {
		c.errorf(TypeMismatch, "%s: inferred type is %s but %s was expected", what, got, want)
	}
	return ok
}

func (c *checker) checkProgram(p *ir.Program) {
	c.probes.Func("stc.checkProgram")
	seen := map[string]bool{}
	for _, d := range p.Decls {
		name := d.DeclName()
		c.probes.Branch("stc.duplicateTopLevel", seen[name])
		if seen[name] {
			c.errorf(IllegalDeclaration, "duplicate top-level declaration %s", name)
		}
		seen[name] = true
	}
	for _, d := range p.Decls {
		switch t := d.(type) {
		case *ir.ClassDecl:
			c.checkClass(t)
		case *ir.FuncDecl:
			c.curClass = nil
			c.checkFunc(t, nil)
		case *ir.VarDecl:
			c.curClass, c.curFunc = nil, nil
			c.checkVarDecl(newScope(nil), t)
		}
	}
}

func (c *checker) checkClass(cls *ir.ClassDecl) {
	c.probes.Func("stc.checkClass")
	c.curClass = cls
	c.curFunc = nil
	defer func() { c.curClass = nil }()

	if cls.Super != nil {
		c.checkSuper(cls)
	}
	seen := map[string]bool{}
	for _, f := range cls.Fields {
		if seen[f.Name] {
			c.errorf(IllegalDeclaration, "duplicate member %s", f.Name)
		}
		seen[f.Name] = true
		c.checkTypeWellFormed(f.Type, "field "+f.Name)
	}
	for _, m := range cls.Methods {
		// Methods may be overloaded: duplicates are keyed by the full
		// signature (name + parameter types), as in the JVM languages.
		key := m.Name
		for _, p := range m.Params {
			if p.Type != nil {
				key += "|" + p.Type.String()
			}
		}
		if seen[key] {
			c.errorf(IllegalDeclaration, "duplicate member %s", m.Name)
		}
		seen[key] = true
		c.checkFunc(m, cls)
	}
}

func (c *checker) checkSuper(cls *ir.ClassDecl) {
	c.probes.Func("resolve.checkSuper")
	sup := cls.Super.Type
	var supCls *ir.ClassDecl
	switch s := sup.(type) {
	case *types.Simple:
		supCls = c.env.Class(s.TypeName)
		if supCls == nil && !s.Builtin {
			c.errorf(UnresolvedReference, "unknown supertype %s", s.TypeName)
			return
		}
	case *types.App:
		supCls = c.env.Class(s.Ctor.TypeName)
		if supCls == nil {
			c.errorf(UnresolvedReference, "unknown supertype %s", s.Ctor.TypeName)
			return
		}
		c.checkTypeWellFormed(s, "supertype of "+cls.Name)
	default:
		c.errorf(IllegalDeclaration, "cannot extend %s", sup)
		return
	}
	if supCls != nil {
		c.probes.Branch("stc.extendFinal", !supCls.Open && supCls.Kind == ir.RegularClass)
		if !supCls.Open && supCls.Kind == ir.RegularClass {
			c.errorf(IllegalDeclaration, "class %s is final and cannot be extended", supCls.Name)
		}
		// Super constructor arguments (evaluated in the scope of the
		// class's own constructor parameters, i.e. its fields).
		if supCls.Kind != ir.InterfaceClass {
			_, sigma := c.env.receiverSubstitution(sup)
			want := c.env.ConstructorParams(supCls, sigma)
			sc := newScope(nil)
			for _, f := range cls.Fields {
				sc.declare(f.Name, f.Type, f.Mutable)
			}
			c.probes.Branch("resolve.superCtorArity", len(want) == len(cls.Super.Args))
			if len(cls.Super.Args) != len(want) {
				c.errorf(ArityMismatch, "super constructor of %s expects %d arguments, got %d",
					supCls.Name, len(want), len(cls.Super.Args))
				return
			}
			for i, a := range cls.Super.Args {
				got := c.typeOf(sc, a, want[i])
				c.conforms(got, want[i], fmt.Sprintf("super constructor argument %d", i))
			}
		}
	}
}

// checkTypeWellFormed validates a type mention: known names and type
// arguments satisfying their parameters' bounds.
func (c *checker) checkTypeWellFormed(t types.Type, what string) {
	c.probes.Func("types.wellFormed")
	app, ok := t.(*types.App)
	if !ok {
		return
	}
	sigma := types.NewSubstitution()
	for i, p := range app.Ctor.Params {
		arg := app.Args[i]
		if proj, isProj := arg.(*types.Projection); isProj {
			arg = proj.Bound
		}
		sigma.Bind(p, arg)
	}
	for i, p := range app.Ctor.Params {
		arg := app.Args[i]
		if proj, isProj := arg.(*types.Projection); isProj {
			arg = proj.Bound
		}
		bound := sigma.ApplyB(c.gov, p.UpperBound())
		if types.HasFreeParameters(bound) {
			continue // bound still generic (checked at instantiation)
		}
		ok := types.IsSubtypeB(c.gov, arg, bound)
		c.probes.Branch("types.boundSatisfied", ok)
		if !ok {
			c.errorf(BoundViolation,
				"%s: type parameter bound for %s in %s is not satisfied: %s is not a subtype of %s",
				what, p.ParamName, app.Ctor.TypeName, arg, bound)
		}
		if nested, isApp := app.Args[i].(*types.App); isApp {
			c.checkTypeWellFormed(nested, what)
		}
	}
}

func (c *checker) checkFunc(f *ir.FuncDecl, owner *ir.ClassDecl) {
	c.probes.Func("stc.checkFunc")
	prevF, prevC := c.curFunc, c.curClass
	c.curFunc = f
	if owner != nil {
		c.curClass = owner
	}
	defer func() { c.curFunc, c.curClass = prevF, prevC }()

	sc := newScope(nil)
	if owner != nil {
		sc.declare("this", SelfType(owner), false)
		for _, fd := range owner.Fields {
			sc.declare(fd.Name, fd.Type, fd.Mutable)
		}
	}
	for _, p := range f.Params {
		if p.Type == nil {
			c.errorf(InferenceFailure, "parameter %s of %s needs a type", p.Name, f.Name)
			continue
		}
		c.checkTypeWellFormed(p.Type, "parameter "+p.Name)
		sc.declare(p.Name, p.Type, false)
	}
	if f.Body == nil {
		c.probes.Branch("stc.abstractBody", owner != nil && owner.Kind != ir.RegularClass)
		if owner == nil || owner.Kind == ir.RegularClass {
			c.errorf(IllegalDeclaration, "function %s needs a body", f.Name)
		}
		return
	}
	if f.Ret != nil {
		got := c.typeOf(sc, f.Body, f.Ret)
		c.checkTypeWellFormed(f.Ret, "return type of "+f.Name)
		c.conforms(got, f.Ret, "return value of "+f.Name)
		return
	}
	// Inferred return type (type-erasure case 3). Memoized, because other
	// declarations may already have demanded it.
	got := c.returnTypeOf(f, owner)
	c.probes.Line(probeName(returnTypeProbes, "infer.returnType.", kindOf(got)))
	key := f.Name
	if owner != nil {
		key = owner.Name + "." + f.Name
	}
	c.result.InferredReturns[key] = got.String()
}

// returnTypeOf yields a function's declared or inferred return type,
// inferring on demand with cycle detection.
func (c *checker) returnTypeOf(f *ir.FuncDecl, owner *ir.ClassDecl) types.Type {
	if f.Ret != nil {
		return f.Ret
	}
	if t, ok := c.rets[f]; ok {
		return t
	}
	c.probes.Line("infer.returnType.onDemand")
	if c.inFly[f] {
		c.errorf(InferenceFailure, "recursive return-type inference for %s", f.Name)
		return types.Top{}
	}
	c.inFly[f] = true
	defer delete(c.inFly, f)

	sc := newScope(nil)
	if owner != nil {
		sc.declare("this", SelfType(owner), false)
		for _, fd := range owner.Fields {
			sc.declare(fd.Name, fd.Type, fd.Mutable)
		}
	}
	for _, p := range f.Params {
		if p.Type != nil {
			sc.declare(p.Name, p.Type, false)
		}
	}
	prevF, prevC := c.curFunc, c.curClass
	c.curFunc, c.curClass = f, owner
	t := c.typeOf(sc, f.Body, nil)
	c.curFunc, c.curClass = prevF, prevC
	c.rets[f] = t
	return t
}

func (c *checker) checkVarDecl(sc *scope, v *ir.VarDecl) {
	c.probes.Func("stc.checkVarDecl")
	if v.Init == nil {
		c.errorf(IllegalDeclaration, "variable %s needs an initializer", v.Name)
		if v.DeclType != nil {
			sc.declare(v.Name, v.DeclType, v.Mutable)
		}
		return
	}
	got := c.typeOf(sc, v.Init, v.DeclType)
	if v.DeclType != nil {
		c.checkTypeWellFormed(v.DeclType, "variable "+v.Name)
		c.conforms(got, v.DeclType, "initializer of "+v.Name)
		sc.declare(v.Name, v.DeclType, v.Mutable)
		return
	}
	// var x = e (type-erasure case 1): the declared type is the inferred
	// type of the right-hand side.
	c.probes.Line(probeName(varDeclProbes, "infer.varDecl.", kindOf(got)))
	if _, isBottom := got.(types.Bottom); isBottom {
		c.errorf(InferenceFailure, "cannot infer a type for %s from a null initializer", v.Name)
	}
	sc.declare(v.Name, got, v.Mutable)
}

// typeOf infers the type of e, checking it against the expected type when
// the expression form needs a target (lambdas, diamonds, generic calls).
// It always returns a usable type; errors are recorded as diagnostics.
func (c *checker) typeOf(sc *scope, e ir.Expr, expected types.Type) types.Type {
	t := c.typeOfInner(sc, e, expected)
	if c.result.ExprTypes != nil {
		c.result.ExprTypes[e] = t
	}
	return t
}

func (c *checker) typeOfInner(sc *scope, e ir.Expr, expected types.Type) types.Type {
	c.gov.Charge(1)
	c.probes.Func(typeOfProbe(e))
	switch t := e.(type) {
	case *ir.Const:
		c.probes.Line("stc.const")
		return t.Type

	case *ir.VarRef:
		c.probes.Func("resolve.varRef")
		if ty, ok := sc.lookup(t.Name); ok {
			c.probes.Branch("resolve.varRef.local", true)
			return ty
		}
		c.probes.Branch("resolve.varRef.local", false)
		if c.curClass != nil {
			if f, ok := c.env.FieldOf(SelfType(c.curClass), t.Name); ok {
				return f.Type
			}
		}
		c.errorf(UnresolvedReference, "unresolved reference: %s", t.Name)
		return types.Top{}

	case *ir.FieldAccess:
		c.probes.Func("resolve.fieldAccess")
		recv := c.typeOf(sc, t.Recv, nil)
		f, ok := c.env.FieldOf(recv, t.Field)
		c.probes.Branch("resolve.fieldAccess.found", ok)
		if !ok {
			c.errorf(UnresolvedReference, "no field %s on %s", t.Field, recv)
			return types.Top{}
		}
		return f.Type

	case *ir.BinaryOp:
		return c.typeOfBinary(sc, t)

	case *ir.Block:
		c.probes.Line("stc.block")
		inner := newScope(sc)
		for _, s := range t.Stmts {
			switch st := s.(type) {
			case *ir.VarDecl:
				c.checkVarDecl(inner, st)
			case *ir.Assign:
				c.checkAssign(inner, st)
			case ir.Expr:
				c.typeOf(inner, st, nil)
			}
		}
		if t.Value == nil {
			return c.env.Builtins.Unit
		}
		return c.typeOf(inner, t.Value, expected)

	case *ir.Call:
		return c.typeOfCall(sc, t, expected)

	case *ir.New:
		return c.typeOfNew(sc, t, expected)

	case *ir.Assign:
		c.checkAssign(sc, t)
		return c.env.Builtins.Unit

	case *ir.If:
		c.probes.Func("stc.checkIf")
		cond := c.typeOf(sc, t.Cond, c.env.Builtins.Boolean)
		if !types.IsSubtypeB(c.gov, cond, c.env.Builtins.Boolean) {
			c.errorf(ConditionNotBoolean, "condition has type %s", cond)
		}
		thenT := c.typeOf(sc, t.Then, expected)
		elseT := c.typeOf(sc, t.Else, expected)
		if c.probesLive {
			c.probes.Line("code.lub." + kindOf(thenT) + "-" + kindOf(elseT))
		}
		return types.LubB(c.gov, thenT, elseT)

	case *ir.MethodRef:
		return c.typeOfMethodRef(sc, t)

	case *ir.Lambda:
		return c.typeOfLambda(sc, t, expected)

	case *ir.Cast:
		c.probes.Line("stc.cast")
		c.typeOf(sc, t.Expr, nil)
		c.checkTypeWellFormed(t.Target, "cast target")
		return t.Target

	case *ir.Is:
		c.probes.Line("stc.isCheck")
		c.typeOf(sc, t.Expr, nil)
		return c.env.Builtins.Boolean
	}
	return types.Top{}
}

func (c *checker) typeOfBinary(sc *scope, t *ir.BinaryOp) types.Type {
	c.probes.Func("stc.checkBinary")
	l := c.typeOf(sc, t.Left, nil)
	r := c.typeOf(sc, t.Right, nil)
	b := c.env.Builtins
	switch t.Op {
	case "==", "!=":
		// Reference equality applies to any operands.
	case "&&", "||":
		if !types.IsSubtypeB(c.gov, l, b.Boolean) || !types.IsSubtypeB(c.gov, r, b.Boolean) {
			c.errorf(ConditionNotBoolean, "operator %s needs Boolean operands, got %s and %s", t.Op, l, r)
		}
	case ">", ">=", "<", "<=":
		// Operands must be numeric; a type parameter qualifies through
		// its upper bound (T : Double is comparable).
		numeric := types.IsSubtypeB(c.gov, l, b.Number) && types.IsSubtypeB(c.gov, r, b.Number)
		c.probes.Branch("stc.comparableOperands", numeric)
		if !numeric {
			c.errorf(TypeMismatch, "operator %s needs numeric operands, got %s and %s", t.Op, l, r)
		}
	default:
		c.errorf(IllegalDeclaration, "unknown operator %s", t.Op)
	}
	return b.Boolean
}

func (c *checker) checkAssign(sc *scope, a *ir.Assign) {
	c.probes.Func("stc.checkAssign")
	switch target := a.Target.(type) {
	case *ir.VarRef:
		ty, ok := sc.lookup(target.Name)
		if !ok && c.curClass != nil {
			if f, fok := c.env.FieldOf(SelfType(c.curClass), target.Name); fok {
				ty, ok = f.Type, true
				if !f.Mutable {
					c.errorf(InvalidAssignment, "val %s cannot be reassigned", target.Name)
				}
			}
		} else if ok && !sc.isMutable(target.Name) {
			c.errorf(InvalidAssignment, "val %s cannot be reassigned", target.Name)
		}
		if !ok {
			c.errorf(UnresolvedReference, "unresolved reference: %s", target.Name)
			c.typeOf(sc, a.Value, nil)
			return
		}
		got := c.typeOf(sc, a.Value, ty)
		c.conforms(got, ty, "assignment to "+target.Name)
	case *ir.FieldAccess:
		recv := c.typeOf(sc, target.Recv, nil)
		f, ok := c.env.FieldOf(recv, target.Field)
		if !ok {
			c.errorf(UnresolvedReference, "no field %s on %s", target.Field, recv)
			c.typeOf(sc, a.Value, nil)
			return
		}
		if !f.Mutable {
			c.errorf(InvalidAssignment, "val %s cannot be reassigned", target.Field)
		}
		got := c.typeOf(sc, a.Value, f.Type)
		c.conforms(got, f.Type, "assignment to "+target.Field)
	default:
		c.errorf(InvalidAssignment, "invalid assignment target")
		c.typeOf(sc, a.Value, nil)
	}
}

func (c *checker) typeOfMethodRef(sc *scope, t *ir.MethodRef) types.Type {
	c.probes.Func("resolve.methodRef")
	recv := c.typeOf(sc, t.Recv, nil)
	sig, ok := c.env.MethodOf(recv, t.Method)
	c.probes.Branch("resolve.methodRef.found", ok)
	if !ok {
		c.errorf(UnresolvedReference, "no method %s on %s", t.Method, recv)
		return types.Top{}
	}
	if len(sig.TypeParams) > 0 {
		c.errorf(InferenceFailure, "cannot take a reference to parameterized method %s", t.Method)
		return types.Top{}
	}
	ret := sig.Ret
	if ret == nil {
		ret = sig.Sigma.ApplyB(c.gov, c.returnTypeOf(sig.Decl, sig.Owner))
	}
	return &types.Func{Params: sig.Params, Ret: ret}
}

func (c *checker) typeOfLambda(sc *scope, t *ir.Lambda, expected types.Type) types.Type {
	c.probes.Func("infer.lambda")
	var target *types.Func
	if f, ok := expected.(*types.Func); ok && len(f.Params) == len(t.Params) {
		target = f
	}
	c.probes.Branch("infer.lambda.hasTarget", target != nil)
	inner := newScope(sc)
	paramTypes := make([]types.Type, len(t.Params))
	for i, p := range t.Params {
		switch {
		case p.Type != nil:
			paramTypes[i] = p.Type
			if target != nil && !types.IsSubtypeB(c.gov, target.Params[i], p.Type) {
				c.errorf(TypeMismatch, "lambda parameter %s has type %s but target wants %s",
					p.Name, p.Type, target.Params[i])
			}
		case target != nil:
			// Type-erasure case 4: parameter type from the target type.
			c.probes.Line(probeName(lambdaParamProbes, "infer.lambda.param.", kindOf(target.Params[i])))
			paramTypes[i] = target.Params[i]
		default:
			c.errorf(InferenceFailure, "cannot infer type of lambda parameter %s", p.Name)
			paramTypes[i] = types.Top{}
		}
		inner.declare(p.Name, paramTypes[i], false)
	}
	var want types.Type
	if target != nil {
		want = target.Ret
	}
	body := c.typeOf(inner, t.Body, want)
	if target != nil {
		c.conforms(body, target.Ret, "lambda body")
	}
	return &types.Func{Params: paramTypes, Ret: body}
}
