package checker

import (
	"strings"
	"testing"

	"repro/internal/coverage"
	"repro/internal/ir"
	"repro/internal/types"
)

func check(t *testing.T, p *ir.Program) *Result {
	t.Helper()
	return Check(p, types.NewBuiltins(), Options{})
}

func mustOK(t *testing.T, p *ir.Program) {
	t.Helper()
	res := check(t, p)
	if !res.OK() {
		t.Fatalf("expected well-typed, got diagnostics:\n%s\nprogram:\n%s",
			diagsString(res), ir.Print(p))
	}
}

func mustFail(t *testing.T, p *ir.Program, kind DiagKind) *Result {
	t.Helper()
	res := check(t, p)
	if res.OK() {
		t.Fatalf("expected a %s diagnostic, program accepted:\n%s", kind, ir.Print(p))
	}
	if !res.HasKind(kind) {
		t.Fatalf("expected kind %s, got:\n%s", kind, diagsString(res))
	}
	return res
}

func diagsString(r *Result) string {
	var b strings.Builder
	for _, d := range r.Diags {
		b.WriteString(d.String() + "\n")
	}
	return b.String()
}

// abGeneric builds: open class A<T>; class B<T>(val f: A<T>) : A<T>().
func abGeneric() (*ir.ClassDecl, *ir.ClassDecl, *types.Constructor, *types.Constructor) {
	aT := types.NewParameter("A", "T")
	classA := &ir.ClassDecl{Name: "A", TypeParams: []*types.Parameter{aT}, Open: true}
	ctorA := classA.Type().(*types.Constructor)
	bT := types.NewParameter("B", "T")
	classB := &ir.ClassDecl{
		Name:       "B",
		TypeParams: []*types.Parameter{bT},
		Super:      &ir.SuperRef{Type: ctorA.Apply(bT)},
		Fields:     []*ir.FieldDecl{{Name: "f", Type: ctorA.Apply(bT)}},
	}
	// Super constructor A<T>() takes no arguments (A has no fields).
	return classA, classB, ctorA, classB.Type().(*types.Constructor)
}

func TestSimpleWellTypedProgram(t *testing.T) {
	b := types.NewBuiltins()
	p := &ir.Program{Decls: []ir.Decl{
		&ir.FuncDecl{Name: "f", Ret: b.Int, Body: &ir.Const{Type: b.Int}},
	}}
	mustOK(t, p)
}

func TestReturnTypeMismatch(t *testing.T) {
	b := types.NewBuiltins()
	p := &ir.Program{Decls: []ir.Decl{
		&ir.FuncDecl{Name: "f", Ret: b.Int, Body: &ir.Const{Type: b.String}},
	}}
	mustFail(t, p, TypeMismatch)
}

func TestReturnSubtypeAccepted(t *testing.T) {
	b := types.NewBuiltins()
	p := &ir.Program{Decls: []ir.Decl{
		&ir.FuncDecl{Name: "f", Ret: b.Number, Body: &ir.Const{Type: b.Int}},
	}}
	mustOK(t, p)
}

func TestInferredReturnType(t *testing.T) {
	b := types.NewBuiltins()
	p := &ir.Program{Decls: []ir.Decl{
		&ir.FuncDecl{Name: "f", Body: &ir.Const{Type: b.String}},
	}}
	res := check(t, p)
	if !res.OK() {
		t.Fatal(diagsString(res))
	}
	if res.InferredReturns["f"] != "String" {
		t.Errorf("inferred return = %q, want String", res.InferredReturns["f"])
	}
}

func TestVarDeclInference(t *testing.T) {
	b := types.NewBuiltins()
	body := &ir.Block{
		Stmts: []ir.Node{
			&ir.VarDecl{Name: "x", Init: &ir.Const{Type: b.Int}},
			&ir.VarDecl{Name: "y", DeclType: b.Number, Init: &ir.VarRef{Name: "x"}},
		},
		Value: &ir.VarRef{Name: "y"},
	}
	p := &ir.Program{Decls: []ir.Decl{&ir.FuncDecl{Name: "f", Ret: b.Number, Body: body}}}
	mustOK(t, p)
}

func TestVarDeclMismatch(t *testing.T) {
	b := types.NewBuiltins()
	body := &ir.Block{
		Stmts: []ir.Node{
			&ir.VarDecl{Name: "x", DeclType: b.Int, Init: &ir.Const{Type: b.String}},
		},
	}
	p := &ir.Program{Decls: []ir.Decl{&ir.FuncDecl{Name: "f", Ret: nil, Body: body}}}
	mustFail(t, p, TypeMismatch)
}

func TestUnresolvedVariable(t *testing.T) {
	p := &ir.Program{Decls: []ir.Decl{
		&ir.FuncDecl{Name: "f", Body: &ir.VarRef{Name: "ghost"}},
	}}
	mustFail(t, p, UnresolvedReference)
}

func TestNullInitializerNeedsType(t *testing.T) {
	body := &ir.Block{Stmts: []ir.Node{
		&ir.VarDecl{Name: "x", Init: &ir.Const{Type: types.Bottom{}}},
	}}
	p := &ir.Program{Decls: []ir.Decl{&ir.FuncDecl{Name: "f", Body: body}}}
	mustFail(t, p, InferenceFailure)
}

func TestClassFieldsAndMethods(t *testing.T) {
	b := types.NewBuiltins()
	cls := &ir.ClassDecl{
		Name:   "Box",
		Fields: []*ir.FieldDecl{{Name: "v", Type: b.Int}},
		Methods: []*ir.FuncDecl{{
			Name: "get", Ret: b.Int, Body: &ir.VarRef{Name: "v"},
		}},
	}
	boxT := cls.Type()
	p := &ir.Program{Decls: []ir.Decl{
		cls,
		&ir.FuncDecl{Name: "use", Ret: b.Int, Body: &ir.Block{
			Stmts: []ir.Node{
				&ir.VarDecl{Name: "b", Init: &ir.New{Class: boxT, Args: []ir.Expr{&ir.Const{Type: b.Int}}}},
			},
			Value: &ir.Call{Recv: &ir.VarRef{Name: "b"}, Name: "get"},
		}},
	}}
	mustOK(t, p)
}

func TestFieldAccessThroughHierarchy(t *testing.T) {
	b := types.NewBuiltins()
	classA, classB, ctorA, ctorB := abGeneric()
	// fun m(): A<String> = B<String>(A<String>()).f — f has type A<T>
	// substituted to A<String>.
	f := &ir.FuncDecl{
		Name: "m",
		Ret:  ctorA.Apply(b.String),
		Body: &ir.FieldAccess{
			Recv: &ir.New{
				Class:    ctorB,
				TypeArgs: []types.Type{b.String},
				Args:     []ir.Expr{&ir.New{Class: ctorA, TypeArgs: []types.Type{b.String}}},
			},
			Field: "f",
		},
	}
	p := &ir.Program{Decls: []ir.Decl{classA, classB, f}}
	mustOK(t, p)
}

func TestDiamondInferenceFromArgs(t *testing.T) {
	b := types.NewBuiltins()
	classA, classB, ctorA, ctorB := abGeneric()
	// val x: B<Long> = B<>(A<Long>()) — diamond inferred from argument.
	body := &ir.Block{Stmts: []ir.Node{
		&ir.VarDecl{
			Name:     "x",
			DeclType: ctorB.Apply(b.Long),
			Init: &ir.New{Class: ctorB, Args: []ir.Expr{
				&ir.New{Class: ctorA, TypeArgs: []types.Type{b.Long}},
			}},
		},
	}}
	p := &ir.Program{Decls: []ir.Decl{classA, classB, &ir.FuncDecl{Name: "test", Body: body}}}
	mustOK(t, p)
}

func TestDiamondInferenceFromTarget(t *testing.T) {
	b := types.NewBuiltins()
	classA, _, ctorA, _ := abGeneric()
	// val x: A<String> = A<>() — instantiation from the target type.
	body := &ir.Block{Stmts: []ir.Node{
		&ir.VarDecl{Name: "x", DeclType: ctorA.Apply(b.String), Init: &ir.New{Class: ctorA}},
	}}
	p := &ir.Program{Decls: []ir.Decl{classA, &ir.FuncDecl{Name: "test", Body: body}}}
	mustOK(t, p)
}

func TestDiamondMismatchDetected(t *testing.T) {
	b := types.NewBuiltins()
	classA, classB, ctorA, ctorB := abGeneric()
	// The paper's Section 3.4.1 example: val x: Any = "str";
	// val y: A<Any> = A(x) becomes ill-typed after erasing x's type.
	// Here: val y: B<Any> = B<>(A<String>()) — argument says String,
	// target says Any: the argument binding wins, then conformance fails.
	body := &ir.Block{Stmts: []ir.Node{
		&ir.VarDecl{
			Name:     "y",
			DeclType: ctorB.Apply(types.Top{}),
			Init: &ir.New{Class: ctorB, Args: []ir.Expr{
				&ir.New{Class: ctorA, TypeArgs: []types.Type{b.String}},
			}},
		},
	}}
	p := &ir.Program{Decls: []ir.Decl{classA, classB, &ir.FuncDecl{Name: "test", Body: body}}}
	mustFail(t, p, TypeMismatch)
}

// TestFigure1Groovy10080 encodes the paper's Figure 1 program. It is
// well-typed: the reference checker must accept it (groovyc's inference
// bug rejected it).
//
//	class A<T> {}
//	class B<T>(val f: T)
//	fun test() { val closure = { B<>(A<Long>()) }; val x: A<Long> = closure().f }
func TestFigure1Groovy10080(t *testing.T) {
	b := types.NewBuiltins()
	aT := types.NewParameter("A", "T")
	classA := &ir.ClassDecl{Name: "A", TypeParams: []*types.Parameter{aT}, Open: true}
	ctorA := classA.Type().(*types.Constructor)
	bT := types.NewParameter("B", "T")
	classB := &ir.ClassDecl{
		Name:       "B",
		TypeParams: []*types.Parameter{bT},
		Fields:     []*ir.FieldDecl{{Name: "f", Type: bT}},
	}
	ctorB := classB.Type().(*types.Constructor)

	// Lambda with no params returning B<A<Long>> via diamond.
	lambda := &ir.Lambda{Body: &ir.New{
		Class: ctorB,
		Args:  []ir.Expr{&ir.New{Class: ctorA, TypeArgs: []types.Type{b.Long}}},
	}}
	test := &ir.FuncDecl{Name: "test", Body: &ir.Block{Stmts: []ir.Node{
		&ir.VarDecl{Name: "closure", Init: lambda},
		&ir.VarDecl{
			Name:     "x",
			DeclType: ctorA.Apply(b.Long),
			Init:     &ir.FieldAccess{Recv: &ir.Call{Name: "closure"}, Field: "f"},
		},
	}}}
	p := &ir.Program{Decls: []ir.Decl{classA, classB, test}}
	mustOK(t, p)
}

// TestFigure2KT48765 encodes the paper's Figure 2 program. It is
// ill-typed: instantiating T2 (bounded by String) as Number violates the
// bound, so the reference checker must reject it (kotlinc accepted it).
//
//	fun <T1 : Number> foo(x: T1) {}
//	fun <T2 : String> bar(): T2 = ("" as T2)
//	fun test() { foo(bar()) }
func TestFigure2KT48765(t *testing.T) {
	b := types.NewBuiltins()
	t1 := &types.Parameter{Owner: "foo", ParamName: "T1", Bound: b.Number}
	foo := &ir.FuncDecl{
		Name:       "foo",
		TypeParams: []*types.Parameter{t1},
		Params:     []*ir.ParamDecl{{Name: "x", Type: t1}},
		Ret:        b.Unit,
		Body:       &ir.Const{Type: b.Unit},
	}
	t2 := &types.Parameter{Owner: "bar", ParamName: "T2", Bound: b.String}
	bar := &ir.FuncDecl{
		Name:       "bar",
		TypeParams: []*types.Parameter{t2},
		Ret:        t2,
		Body:       &ir.Cast{Expr: &ir.Const{Type: b.String}, Target: t2},
	}
	test := &ir.FuncDecl{Name: "test", Body: &ir.Call{Name: "foo", Args: []ir.Expr{
		&ir.Call{Name: "bar"},
	}}}
	p := &ir.Program{Decls: []ir.Decl{foo, bar, test}}
	res := mustFail(t, p, BoundViolation)
	// The diagnostic should be the one the paper quotes.
	found := false
	for _, d := range res.Diags {
		if d.Kind == BoundViolation && strings.Contains(d.Msg, "not a subtype of String") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected the KT-48765 style message, got:\n%s", diagsString(res))
	}
}

func TestGenericCallInferenceFromArgs(t *testing.T) {
	b := types.NewBuiltins()
	classA, classB, ctorA, ctorB := abGeneric()
	// fun <T> first(x: A<T>): A<T> = x
	tp := types.NewParameter("first", "T")
	first := &ir.FuncDecl{
		Name:       "first",
		TypeParams: []*types.Parameter{tp},
		Params:     []*ir.ParamDecl{{Name: "x", Type: ctorA.Apply(tp)}},
		Ret:        ctorA.Apply(tp),
		Body:       &ir.VarRef{Name: "x"},
	}
	// val r: A<Int> = first(B<Int>(A<Int>())) — T inferred through the
	// hierarchy (B<Int> <: A<Int>).
	test := &ir.FuncDecl{Name: "test", Body: &ir.Block{Stmts: []ir.Node{
		&ir.VarDecl{
			Name:     "r",
			DeclType: ctorA.Apply(b.Int),
			Init: &ir.Call{Name: "first", Args: []ir.Expr{
				&ir.New{Class: ctorB, TypeArgs: []types.Type{b.Int},
					Args: []ir.Expr{&ir.New{Class: ctorA, TypeArgs: []types.Type{b.Int}}}},
			}},
		},
	}}}
	p := &ir.Program{Decls: []ir.Decl{classA, classB, first, test}}
	mustOK(t, p)
}

func TestGenericCallInferenceFromTarget(t *testing.T) {
	b := types.NewBuiltins()
	// fun <T> id(): T = (null as T); val s: String = id()
	tp := types.NewParameter("id", "T")
	id := &ir.FuncDecl{
		Name:       "id",
		TypeParams: []*types.Parameter{tp},
		Ret:        tp,
		Body:       &ir.Cast{Expr: &ir.Const{Type: types.Bottom{}}, Target: tp},
	}
	test := &ir.FuncDecl{Name: "test", Body: &ir.Block{Stmts: []ir.Node{
		&ir.VarDecl{Name: "s", DeclType: b.String, Init: &ir.Call{Name: "id"}},
	}}}
	p := &ir.Program{Decls: []ir.Decl{id, test}}
	mustOK(t, p)
}

func TestGenericCallExplicitBoundViolation(t *testing.T) {
	b := types.NewBuiltins()
	tp := &types.Parameter{Owner: "f", ParamName: "T", Bound: b.Number}
	f := &ir.FuncDecl{
		Name:       "f",
		TypeParams: []*types.Parameter{tp},
		Params:     []*ir.ParamDecl{{Name: "x", Type: tp}},
		Ret:        b.Unit,
		Body:       &ir.Const{Type: b.Unit},
	}
	test := &ir.FuncDecl{Name: "test", Body: &ir.Call{
		Name:     "f",
		TypeArgs: []types.Type{b.String},
		Args:     []ir.Expr{&ir.Const{Type: b.String}},
	}}
	p := &ir.Program{Decls: []ir.Decl{f, test}}
	mustFail(t, p, BoundViolation)
}

func TestGenericCallUninferable(t *testing.T) {
	tp := types.NewParameter("f", "T")
	f := &ir.FuncDecl{
		Name:       "f",
		TypeParams: []*types.Parameter{tp},
		Ret:        types.NewBuiltins().Unit,
		Body:       &ir.Const{Type: types.NewBuiltins().Unit},
	}
	// f() with no args, no target: T cannot be inferred.
	test := &ir.FuncDecl{Name: "test", Body: &ir.Block{Stmts: []ir.Node{
		&ir.Call{Name: "f"},
	}}}
	p := &ir.Program{Decls: []ir.Decl{f, test}}
	mustFail(t, p, InferenceFailure)
}

func TestLambdaParamInferenceFromTarget(t *testing.T) {
	b := types.NewBuiltins()
	// fun apply(g: (Int) -> String): String = g(1)
	apply := &ir.FuncDecl{
		Name:   "apply",
		Params: []*ir.ParamDecl{{Name: "g", Type: &types.Func{Params: []types.Type{b.Int}, Ret: b.String}}},
		Ret:    b.String,
		Body:   &ir.Call{Name: "g", Args: []ir.Expr{&ir.Const{Type: b.Int}}},
	}
	// apply { x -> "s" } with x's type inferred from the target.
	test := &ir.FuncDecl{Name: "test", Ret: b.String, Body: &ir.Call{
		Name: "apply",
		Args: []ir.Expr{&ir.Lambda{
			Params: []*ir.ParamDecl{{Name: "x"}},
			Body:   &ir.Const{Type: b.String},
		}},
	}}
	p := &ir.Program{Decls: []ir.Decl{apply, test}}
	mustOK(t, p)
}

func TestLambdaWithoutTargetFails(t *testing.T) {
	body := &ir.Block{Stmts: []ir.Node{
		&ir.VarDecl{Name: "g", Init: &ir.Lambda{
			Params: []*ir.ParamDecl{{Name: "x"}},
			Body:   &ir.VarRef{Name: "x"},
		}},
	}}
	p := &ir.Program{Decls: []ir.Decl{&ir.FuncDecl{Name: "test", Body: body}}}
	mustFail(t, p, InferenceFailure)
}

func TestMethodReference(t *testing.T) {
	b := types.NewBuiltins()
	cls := &ir.ClassDecl{
		Name: "S",
		Methods: []*ir.FuncDecl{{
			Name: "len", Params: []*ir.ParamDecl{{Name: "s", Type: b.String}},
			Ret: b.Int, Body: &ir.Const{Type: b.Int},
		}},
	}
	test := &ir.FuncDecl{Name: "test", Body: &ir.Block{Stmts: []ir.Node{
		&ir.VarDecl{
			Name:     "r",
			DeclType: &types.Func{Params: []types.Type{b.String}, Ret: b.Int},
			Init:     &ir.MethodRef{Recv: &ir.New{Class: cls.Type()}, Method: "len"},
		},
	}}}
	p := &ir.Program{Decls: []ir.Decl{cls, test}}
	mustOK(t, p)
}

func TestIfLubTyping(t *testing.T) {
	b := types.NewBuiltins()
	// if (true) 1 else 1L : Number.
	f := &ir.FuncDecl{Name: "f", Ret: b.Number, Body: &ir.If{
		Cond: &ir.Const{Type: b.Boolean},
		Then: &ir.Const{Type: b.Int},
		Else: &ir.Const{Type: b.Long},
	}}
	mustOK(t, &ir.Program{Decls: []ir.Decl{f}})

	bad := &ir.FuncDecl{Name: "g", Ret: b.Number, Body: &ir.If{
		Cond: &ir.Const{Type: b.Int}, // non-Boolean condition
		Then: &ir.Const{Type: b.Int},
		Else: &ir.Const{Type: b.Int},
	}}
	mustFail(t, &ir.Program{Decls: []ir.Decl{bad}}, ConditionNotBoolean)
}

func TestAssignmentMutability(t *testing.T) {
	b := types.NewBuiltins()
	okBody := &ir.Block{Stmts: []ir.Node{
		&ir.VarDecl{Name: "x", DeclType: b.Int, Init: &ir.Const{Type: b.Int}, Mutable: true},
		&ir.Assign{Target: &ir.VarRef{Name: "x"}, Value: &ir.Const{Type: b.Int}},
	}}
	mustOK(t, &ir.Program{Decls: []ir.Decl{&ir.FuncDecl{Name: "f", Body: okBody}}})

	valBody := &ir.Block{Stmts: []ir.Node{
		&ir.VarDecl{Name: "x", DeclType: b.Int, Init: &ir.Const{Type: b.Int}},
		&ir.Assign{Target: &ir.VarRef{Name: "x"}, Value: &ir.Const{Type: b.Int}},
	}}
	mustFail(t, &ir.Program{Decls: []ir.Decl{&ir.FuncDecl{Name: "f", Body: valBody}}}, InvalidAssignment)

	mismatch := &ir.Block{Stmts: []ir.Node{
		&ir.VarDecl{Name: "x", DeclType: b.Int, Init: &ir.Const{Type: b.Int}, Mutable: true},
		&ir.Assign{Target: &ir.VarRef{Name: "x"}, Value: &ir.Const{Type: b.String}},
	}}
	mustFail(t, &ir.Program{Decls: []ir.Decl{&ir.FuncDecl{Name: "f", Body: mismatch}}}, TypeMismatch)
}

func TestExtendFinalClassRejected(t *testing.T) {
	base := &ir.ClassDecl{Name: "Base"} // not open
	derived := &ir.ClassDecl{Name: "D", Super: &ir.SuperRef{Type: base.Type()}}
	mustFail(t, &ir.Program{Decls: []ir.Decl{base, derived}}, IllegalDeclaration)
}

func TestInterfaceCannotBeInstantiated(t *testing.T) {
	iface := &ir.ClassDecl{Name: "I", Kind: ir.InterfaceClass}
	f := &ir.FuncDecl{Name: "f", Body: &ir.New{Class: iface.Type()}}
	mustFail(t, &ir.Program{Decls: []ir.Decl{iface, f}}, IllegalDeclaration)
}

func TestDuplicateTopLevel(t *testing.T) {
	b := types.NewBuiltins()
	p := &ir.Program{Decls: []ir.Decl{
		&ir.FuncDecl{Name: "f", Ret: b.Int, Body: &ir.Const{Type: b.Int}},
		&ir.FuncDecl{Name: "f", Ret: b.Int, Body: &ir.Const{Type: b.Int}},
	}}
	mustFail(t, p, IllegalDeclaration)
}

func TestSuperConstructorArgsChecked(t *testing.T) {
	b := types.NewBuiltins()
	base := &ir.ClassDecl{Name: "Base", Open: true,
		Fields: []*ir.FieldDecl{{Name: "v", Type: b.Int}}}
	okDerived := &ir.ClassDecl{Name: "D1",
		Fields: []*ir.FieldDecl{{Name: "w", Type: b.Int}},
		Super:  &ir.SuperRef{Type: base.Type(), Args: []ir.Expr{&ir.VarRef{Name: "w"}}}}
	mustOK(t, &ir.Program{Decls: []ir.Decl{base, okDerived}})

	badDerived := &ir.ClassDecl{Name: "D2",
		Super: &ir.SuperRef{Type: base.Type(), Args: []ir.Expr{&ir.Const{Type: b.String}}}}
	mustFail(t, &ir.Program{Decls: []ir.Decl{base, badDerived}}, TypeMismatch)

	arity := &ir.ClassDecl{Name: "D3", Super: &ir.SuperRef{Type: base.Type()}}
	mustFail(t, &ir.Program{Decls: []ir.Decl{base, arity}}, ArityMismatch)
}

func TestBoundedClassInstantiation(t *testing.T) {
	b := types.NewBuiltins()
	tp := &types.Parameter{Owner: "NumBox", ParamName: "T", Bound: b.Number}
	cls := &ir.ClassDecl{Name: "NumBox", TypeParams: []*types.Parameter{tp},
		Fields: []*ir.FieldDecl{{Name: "v", Type: tp}}}
	ctor := cls.Type().(*types.Constructor)

	ok := &ir.FuncDecl{Name: "f", Body: &ir.Block{Stmts: []ir.Node{
		&ir.VarDecl{Name: "x", Init: &ir.New{Class: ctor, TypeArgs: []types.Type{b.Int},
			Args: []ir.Expr{&ir.Const{Type: b.Int}}}},
	}}}
	mustOK(t, &ir.Program{Decls: []ir.Decl{cls, ok}})

	bad := &ir.FuncDecl{Name: "g", Body: &ir.Block{Stmts: []ir.Node{
		&ir.VarDecl{Name: "x", Init: &ir.New{Class: ctor, TypeArgs: []types.Type{b.String},
			Args: []ir.Expr{&ir.Const{Type: b.String}}}},
	}}}
	mustFail(t, &ir.Program{Decls: []ir.Decl{cls, bad}}, BoundViolation)
}

func TestCoverageProbesFire(t *testing.T) {
	b := types.NewBuiltins()
	cov := coverage.NewCollector()
	p := &ir.Program{Decls: []ir.Decl{
		&ir.FuncDecl{Name: "f", Ret: b.Int, Body: &ir.Const{Type: b.Int}},
	}}
	Check(p, b, Options{Probes: cov})
	lines, funcs, branches := cov.Counts()
	if funcs == 0 || lines+branches == 0 {
		t.Errorf("expected probe hits, got lines=%d funcs=%d branches=%d", lines, funcs, branches)
	}
}

func TestInferenceCoversMoreProbesThanExplicit(t *testing.T) {
	// The premise of RQ3: erased programs exercise inference-only paths.
	b := types.NewBuiltins()
	classA, classB, ctorA, ctorB := abGeneric()

	explicit := &ir.Program{Decls: []ir.Decl{classA, classB, &ir.FuncDecl{
		Name: "m", Ret: ctorA.Apply(b.String),
		Body: &ir.New{Class: ctorB, TypeArgs: []types.Type{b.String},
			Args: []ir.Expr{&ir.New{Class: ctorA, TypeArgs: []types.Type{b.String}}}},
	}}}
	classA2, classB2, ctorA2, ctorB2 := abGeneric()
	erased := &ir.Program{Decls: []ir.Decl{classA2, classB2, &ir.FuncDecl{
		Name: "m", Ret: ctorA2.Apply(b.String),
		Body: &ir.New{Class: ctorB2,
			Args: []ir.Expr{&ir.New{Class: ctorA2, TypeArgs: []types.Type{b.String}}}},
	}}}

	covE := coverage.NewCollector()
	Check(explicit, b, Options{Probes: covE})
	covI := coverage.NewCollector()
	Check(erased, b, Options{Probes: covI})

	d := covI.NewSites(covE)
	if d.Lines+d.Funcs+d.Branches == 0 {
		t.Error("erased program should cover inference probes the explicit one does not")
	}
	if res := Check(erased, b, Options{}); !res.OK() {
		t.Fatalf("erased program should still type-check: %s", diagsString(res))
	}
}

func TestRecursiveReturnInference(t *testing.T) {
	// fun f() = g(); fun g() = f() — inference must not diverge.
	f := &ir.FuncDecl{Name: "f", Body: &ir.Call{Name: "g"}}
	g := &ir.FuncDecl{Name: "g", Body: &ir.Call{Name: "f"}}
	res := check(t, &ir.Program{Decls: []ir.Decl{f, g}})
	if res.OK() {
		t.Error("mutually recursive return inference should be an error")
	}
}

func TestCastAllowsDowncast(t *testing.T) {
	b := types.NewBuiltins()
	base := &ir.ClassDecl{Name: "Base", Open: true}
	derived := &ir.ClassDecl{Name: "D", Super: &ir.SuperRef{Type: base.Type()}}
	// fun f(): D = (Base() as D) — unchecked casts are always permitted.
	f := &ir.FuncDecl{Name: "f", Ret: derived.Type(), Body: &ir.Cast{
		Expr:   &ir.New{Class: base.Type()},
		Target: derived.Type(),
	}}
	mustOK(t, &ir.Program{Decls: []ir.Decl{base, derived, f}})
	_ = b
}

func TestUnitReturnDiscardsValue(t *testing.T) {
	b := types.NewBuiltins()
	// fun f(): Unit = "anything" — Unit returns discard the value.
	f := &ir.FuncDecl{Name: "f", Ret: b.Unit, Body: &ir.Const{Type: b.String}}
	mustOK(t, &ir.Program{Decls: []ir.Decl{f}})
}

func TestFieldAssignmentMutability(t *testing.T) {
	b := types.NewBuiltins()
	cls := &ir.ClassDecl{Name: "Box", Fields: []*ir.FieldDecl{
		{Name: "rw", Type: b.Int, Mutable: true},
		{Name: "ro", Type: b.Int},
	}}
	mk := func(field string, value ir.Expr) *ir.Program {
		f := &ir.FuncDecl{Name: "f", Ret: b.Unit, Body: &ir.Block{
			Stmts: []ir.Node{
				&ir.VarDecl{Name: "b", Init: &ir.New{Class: cls.Type(),
					Args: []ir.Expr{&ir.Const{Type: b.Int}, &ir.Const{Type: b.Int}}}},
				&ir.Assign{
					Target: &ir.FieldAccess{Recv: &ir.VarRef{Name: "b"}, Field: field},
					Value:  value,
				},
			},
			Value: &ir.Const{Type: b.Unit},
		}}
		return &ir.Program{Decls: []ir.Decl{ir.CloneDecl(cls), f}}
	}
	mustOK(t, mk("rw", &ir.Const{Type: b.Int}))
	mustFail(t, mk("ro", &ir.Const{Type: b.Int}), InvalidAssignment)
	mustFail(t, mk("rw", &ir.Const{Type: b.String}), TypeMismatch)
	mustFail(t, mk("ghost", &ir.Const{Type: b.Int}), UnresolvedReference)
}

func TestNullConformsEverywhere(t *testing.T) {
	b := types.NewBuiltins()
	cls := &ir.ClassDecl{Name: "A", Fields: []*ir.FieldDecl{{Name: "f", Type: b.String}}}
	// Null (Bottom) conforms to any declared type and constructor param.
	f := &ir.FuncDecl{Name: "f", Ret: cls.Type(), Body: &ir.Block{
		Stmts: []ir.Node{
			&ir.VarDecl{Name: "s", DeclType: b.String, Init: &ir.Const{Type: types.Bottom{}}},
		},
		Value: &ir.New{Class: cls.Type(), Args: []ir.Expr{&ir.Const{Type: types.Bottom{}}}},
	}}
	mustOK(t, &ir.Program{Decls: []ir.Decl{cls, f}})
}

func TestIsExpressionTypesAsBoolean(t *testing.T) {
	b := types.NewBuiltins()
	f := &ir.FuncDecl{Name: "f", Ret: b.Boolean, Body: &ir.Is{
		Expr:   &ir.Const{Type: b.Int},
		Target: b.Number,
	}}
	mustOK(t, &ir.Program{Decls: []ir.Decl{f}})
}

func TestCallArityMismatch(t *testing.T) {
	b := types.NewBuiltins()
	g := &ir.FuncDecl{Name: "g", Params: []*ir.ParamDecl{{Name: "x", Type: b.Int}},
		Ret: b.Int, Body: &ir.VarRef{Name: "x"}}
	f := &ir.FuncDecl{Name: "f", Ret: b.Int, Body: &ir.Call{Name: "g"}}
	mustFail(t, &ir.Program{Decls: []ir.Decl{g, f}}, ArityMismatch)
}

func TestExplicitTypeArgArityMismatch(t *testing.T) {
	b := types.NewBuiltins()
	tp := types.NewParameter("g", "T")
	g := &ir.FuncDecl{Name: "g", TypeParams: []*types.Parameter{tp},
		Ret: b.Int, Body: &ir.Const{Type: b.Int}}
	f := &ir.FuncDecl{Name: "f", Ret: b.Int, Body: &ir.Call{
		Name: "g", TypeArgs: []types.Type{b.Int, b.Long},
	}}
	mustFail(t, &ir.Program{Decls: []ir.Decl{g, f}}, ArityMismatch)
}

func TestAbstractAndInterfaceMembers(t *testing.T) {
	b := types.NewBuiltins()
	iface := &ir.ClassDecl{Name: "I", Kind: ir.InterfaceClass, Methods: []*ir.FuncDecl{
		{Name: "m", Ret: b.Int}, // no body: abstract
	}}
	mustOK(t, &ir.Program{Decls: []ir.Decl{iface}})

	// A body-less method in a regular class is illegal.
	bad := &ir.ClassDecl{Name: "C", Methods: []*ir.FuncDecl{{Name: "m", Ret: b.Int}}}
	mustFail(t, &ir.Program{Decls: []ir.Decl{bad}}, IllegalDeclaration)
}

func TestVarDeclWithoutInitializer(t *testing.T) {
	b := types.NewBuiltins()
	f := &ir.FuncDecl{Name: "f", Ret: b.Unit, Body: &ir.Block{
		Stmts: []ir.Node{&ir.VarDecl{Name: "x", DeclType: b.Int}},
		Value: &ir.Const{Type: b.Unit},
	}}
	mustFail(t, &ir.Program{Decls: []ir.Decl{f}}, IllegalDeclaration)
}

func TestDiagnosticRendering(t *testing.T) {
	d := Diagnostic{Kind: BoundViolation, Where: "m", Msg: "oops"}
	if d.String() != "m: bound violation: oops" {
		t.Errorf("diag = %q", d.String())
	}
	kinds := []DiagKind{TypeMismatch, UnresolvedReference, BoundViolation,
		ArityMismatch, InferenceFailure, InvalidAssignment,
		ConditionNotBoolean, IllegalDeclaration, AmbiguousCall, DiagKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d has empty rendering", k)
		}
	}
}
