package checker

import (
	"fmt"

	"repro/internal/governor"
	"repro/internal/ir"
	"repro/internal/types"
)

// DiagKind classifies the diagnostics the reference checker emits. The
// kinds mirror the error categories of the studied compilers: type
// mismatches, unresolved references, violated type-parameter bounds,
// arity errors, and failures of local type inference.
type DiagKind int

const (
	// TypeMismatch: an expression's type does not conform to the type
	// required by its context.
	TypeMismatch DiagKind = iota
	// UnresolvedReference: a name does not resolve to any declaration.
	UnresolvedReference
	// BoundViolation: a type argument does not satisfy the corresponding
	// type parameter's upper bound.
	BoundViolation
	// ArityMismatch: wrong number of call arguments or type arguments.
	ArityMismatch
	// InferenceFailure: local type inference could not determine a type
	// (e.g. an unconstrained diamond, an untyped lambda parameter with no
	// target type).
	InferenceFailure
	// InvalidAssignment: assignment to a non-assignable target.
	InvalidAssignment
	// ConditionNotBoolean: a non-Boolean condition or operand.
	ConditionNotBoolean
	// IllegalDeclaration: malformed declarations (duplicate names,
	// extending a final class, instantiating an interface, ...).
	IllegalDeclaration
	// AmbiguousCall: overload resolution found no unique most-specific
	// applicable method.
	AmbiguousCall
)

func (k DiagKind) String() string {
	switch k {
	case TypeMismatch:
		return "type mismatch"
	case UnresolvedReference:
		return "unresolved reference"
	case BoundViolation:
		return "bound violation"
	case ArityMismatch:
		return "arity mismatch"
	case InferenceFailure:
		return "inference failure"
	case InvalidAssignment:
		return "invalid assignment"
	case ConditionNotBoolean:
		return "condition not boolean"
	case IllegalDeclaration:
		return "illegal declaration"
	case AmbiguousCall:
		return "ambiguous call"
	default:
		return "error"
	}
}

// Diagnostic is one checker error. Where names the enclosing declaration
// so reduced test cases can be located (Section 4.1: diagnostic messages
// make UCTE cases easy to reduce).
type Diagnostic struct {
	Kind  DiagKind
	Where string
	Msg   string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Where, d.Kind, d.Msg)
}

// Result is the outcome of checking a program.
type Result struct {
	Diags []Diagnostic
	// InferredReturns records the inferred return type of every function
	// declared without one (keyed by function name, or Class.method).
	InferredReturns map[string]string
	// ExprTypes maps each expression to its static type when
	// Options.RecordTypes was set (nil otherwise).
	ExprTypes map[ir.Expr]types.Type
	// Bailout is set when the resource governor aborted the check (fuel
	// or depth exhausted, or the bound context cancelled). Diags and the
	// inference maps are partial in that case.
	Bailout *governor.Bailout
}

// OK reports whether the program type-checked without errors. A bailed
// check did not finish, so it is never OK.
func (r *Result) OK() bool { return r.Bailout == nil && len(r.Diags) == 0 }

// HasKind reports whether any diagnostic of kind k was emitted.
func (r *Result) HasKind(k DiagKind) bool {
	for _, d := range r.Diags {
		if d.Kind == k {
			return true
		}
	}
	return false
}
