// Package checker implements the reference type checker for the
// Hephaestus IR. It performs name resolution, subtype checking, and the
// local type inference the IR requires (variable types, diamond
// constructor calls, parameterized-call type arguments, method return
// types, and lambda parameter types).
//
// The checker plays two roles in the reproduction. First, it is the
// correctness oracle backing the program generator's claim of producing
// well-typed programs, and the judge for TOM's claim of producing
// ill-typed ones. Second, it is the "compiler codebase" that the simulated
// javac/kotlinc/groovyc wrap: they run this checker (instrumented with
// coverage probes) and then overlay their seeded bug catalogs.
package checker

import (
	"fmt"

	"repro/internal/governor"
	"repro/internal/ir"
	"repro/internal/types"
)

// MethodSig is a method or function signature viewed from a receiver type,
// with the receiver's type arguments already substituted in.
type MethodSig struct {
	Name       string
	TypeParams []*types.Parameter
	ParamNames []string
	Params     []types.Type
	Ret        types.Type
	// Owner is the declaring class, or nil for top-level functions.
	Owner *ir.ClassDecl
	Decl  *ir.FuncDecl
	// Sigma is the receiver substitution the signature was viewed under;
	// an inferred return type (Decl.Ret == nil) must be run through it.
	Sigma *types.Substitution
}

// FieldSig is a field viewed from a receiver type, substitution applied.
type FieldSig struct {
	Name    string
	Type    types.Type
	Mutable bool
	Owner   *ir.ClassDecl
}

// Env indexes a program's declarations. It is shared by the checker, the
// type-graph analysis, and the generator's resolution algorithm
// (Algorithm 1), all of which need "which methods/fields does type t
// offer" with receiver substitution applied.
type Env struct {
	Builtins *types.Builtins
	Program  *ir.Program
	// Gov, when non-nil, meters member-lookup substitution: the
	// superclass climbs below re-apply the receiver substitution per
	// level, which is where deeply parameterized hierarchies get
	// expensive. The checker installs its budget here; other consumers
	// (typegraph, generator) leave it nil.
	Gov     *governor.Budget
	classes map[string]*ir.ClassDecl
	funcs   map[string]*ir.FuncDecl
}

// NewEnv builds the declaration index for p.
func NewEnv(p *ir.Program, b *types.Builtins) *Env {
	e := &Env{
		Builtins: b,
		Program:  p,
		classes:  map[string]*ir.ClassDecl{},
		funcs:    map[string]*ir.FuncDecl{},
	}
	for _, d := range p.Decls {
		switch t := d.(type) {
		case *ir.ClassDecl:
			e.classes[t.Name] = t
		case *ir.FuncDecl:
			e.funcs[t.Name] = t
		}
	}
	return e
}

// Class returns the class declaration named name, or nil.
func (e *Env) Class(name string) *ir.ClassDecl { return e.classes[name] }

// Func returns the top-level function named name, or nil.
func (e *Env) Func(name string) *ir.FuncDecl { return e.funcs[name] }

// ClassType returns the declared type of the class named name (a
// *types.Constructor or *types.Simple), or nil when undeclared.
func (e *Env) ClassType(name string) types.Type {
	c := e.classes[name]
	if c == nil {
		return nil
	}
	return c.Type()
}

// receiverSubstitution maps a receiver type (Simple or App) to its class
// declaration and the substitution from the class's type parameters to the
// receiver's type arguments.
func (e *Env) receiverSubstitution(recv types.Type) (*ir.ClassDecl, *types.Substitution) {
	sigma := types.NewSubstitution()
	switch r := recv.(type) {
	case *types.Simple:
		return e.classes[r.TypeName], sigma
	case *types.App:
		cls := e.classes[r.Ctor.TypeName]
		if cls == nil {
			return nil, sigma
		}
		for i, p := range r.Ctor.Params {
			arg := r.Args[i]
			if proj, ok := arg.(*types.Projection); ok {
				// Approximate a use-site projection by its bound for
				// member lookup (capture conversion).
				arg = proj.Bound
			}
			sigma.Bind(p, arg)
		}
		return cls, sigma
	case *types.Parameter:
		// Members of a type parameter come from its upper bound.
		return e.receiverSubstitution(r.UpperBound())
	}
	return nil, sigma
}

// FieldsOf returns the fields accessible on a receiver of type recv,
// walking the superclass chain, with type arguments substituted.
func (e *Env) FieldsOf(recv types.Type) []FieldSig {
	var out []FieldSig
	seen := map[string]bool{}
	cur := recv
	for depth := 0; depth < 32; depth++ {
		cls, sigma := e.receiverSubstitution(cur)
		if cls == nil {
			return out
		}
		for _, f := range cls.Fields {
			if seen[f.Name] {
				continue
			}
			seen[f.Name] = true
			out = append(out, FieldSig{
				Name:    f.Name,
				Type:    sigma.ApplyB(e.Gov, f.Type),
				Mutable: f.Mutable,
				Owner:   cls,
			})
		}
		if cls.Super == nil {
			return out
		}
		cur = sigma.ApplyB(e.Gov, cls.Super.Type)
	}
	return out
}

// FieldOf resolves a single field on recv, or returns a zero FieldSig and
// false.
func (e *Env) FieldOf(recv types.Type, name string) (FieldSig, bool) {
	for _, f := range e.FieldsOf(recv) {
		if f.Name == name {
			return f, true
		}
	}
	return FieldSig{}, false
}

// MethodsOf returns the methods callable on a receiver of type recv,
// walking the superclass chain, with the receiver's type arguments
// substituted into signatures. Method-level type parameters remain free.
func (e *Env) MethodsOf(recv types.Type) []MethodSig {
	var out []MethodSig
	seen := map[string]bool{}
	cur := recv
	for depth := 0; depth < 32; depth++ {
		cls, sigma := e.receiverSubstitution(cur)
		if cls == nil {
			return out
		}
		for _, m := range cls.Methods {
			if seen[m.Name] {
				continue
			}
			seen[m.Name] = true
			out = append(out, e.substituteSig(m, cls, sigma))
		}
		if cls.Super == nil {
			return out
		}
		cur = sigma.ApplyB(e.Gov, cls.Super.Type)
	}
	return out
}

// MethodOf resolves a single method on recv by name (the first candidate
// in subclass-first order; use MethodCandidates when overloads matter).
func (e *Env) MethodOf(recv types.Type, name string) (MethodSig, bool) {
	for _, m := range e.MethodsOf(recv) {
		if m.Name == name {
			return m, true
		}
	}
	return MethodSig{}, false
}

// MethodCandidates returns every method named name callable on recv —
// the overload set the resolution algorithm chooses from. Generated
// programs have unique method names; the resolution mutation (REM)
// introduces decoy overloads to stress this very path.
func (e *Env) MethodCandidates(recv types.Type, name string) []MethodSig {
	var out []MethodSig
	cur := recv
	for depth := 0; depth < 32; depth++ {
		cls, sigma := e.receiverSubstitution(cur)
		if cls == nil {
			return out
		}
		for _, m := range cls.Methods {
			if m.Name == name {
				out = append(out, e.substituteSig(m, cls, sigma))
			}
		}
		if cls.Super == nil {
			return out
		}
		cur = sigma.ApplyB(e.Gov, cls.Super.Type)
	}
	return out
}

// TopLevelSig returns the signature of a top-level function.
func (e *Env) TopLevelSig(name string) (MethodSig, bool) {
	f := e.funcs[name]
	if f == nil {
		return MethodSig{}, false
	}
	return e.substituteSig(f, nil, types.NewSubstitution()), true
}

// substituteSig projects a FuncDecl into a MethodSig under sigma. A nil
// declared return type is reported as nil; callers that need the inferred
// type consult the checker's results.
func (e *Env) substituteSig(m *ir.FuncDecl, owner *ir.ClassDecl, sigma *types.Substitution) MethodSig {
	sig := MethodSig{
		Name:       m.Name,
		TypeParams: m.TypeParams,
		Owner:      owner,
		Decl:       m,
		Sigma:      sigma,
	}
	for _, p := range m.Params {
		sig.ParamNames = append(sig.ParamNames, p.Name)
		sig.Params = append(sig.Params, sigma.ApplyB(e.Gov, p.Type))
	}
	if m.Ret != nil {
		sig.Ret = sigma.ApplyB(e.Gov, m.Ret)
	}
	return sig
}

// SelfType returns the type of `this` inside cls: the class's constructor
// applied to its own parameters, or its simple type.
func SelfType(cls *ir.ClassDecl) types.Type {
	t := cls.Type()
	if ctor, ok := t.(*types.Constructor); ok {
		args := make([]types.Type, len(ctor.Params))
		for i, p := range ctor.Params {
			args[i] = p
		}
		return ctor.Apply(args...)
	}
	return t
}

// ConstructorParams returns the constructor parameter types of a class
// instantiation: the class's own fields in declaration order, with the
// instantiation substitution applied (Kotlin primary-constructor style).
func (e *Env) ConstructorParams(cls *ir.ClassDecl, sigma *types.Substitution) []types.Type {
	out := make([]types.Type, len(cls.Fields))
	for i, f := range cls.Fields {
		out[i] = sigma.ApplyB(e.Gov, f.Type)
	}
	return out
}

func (e *Env) String() string {
	return fmt.Sprintf("Env(%d classes, %d functions)", len(e.classes), len(e.funcs))
}
