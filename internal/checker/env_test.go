package checker

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/types"
)

// envFixture builds:
//
//	open class Base<T>(val item: T) { fun get(): T = item }
//	class Derived(val extra: Int) : Base<String>("s") { fun own(): Int = extra }
func envFixture() (*Env, *ir.ClassDecl, *ir.ClassDecl, *types.Builtins) {
	b := types.NewBuiltins()
	baseT := types.NewParameter("Base", "T")
	base := &ir.ClassDecl{
		Name:       "Base",
		TypeParams: []*types.Parameter{baseT},
		Open:       true,
		Fields:     []*ir.FieldDecl{{Name: "item", Type: baseT}},
		Methods: []*ir.FuncDecl{{
			Name: "get", Ret: baseT, Body: &ir.VarRef{Name: "item"},
		}},
	}
	baseCtor := base.Type().(*types.Constructor)
	derived := &ir.ClassDecl{
		Name:   "Derived",
		Super:  &ir.SuperRef{Type: baseCtor.Apply(b.String), Args: []ir.Expr{&ir.Const{Type: b.String}}},
		Fields: []*ir.FieldDecl{{Name: "extra", Type: b.Int}},
		Methods: []*ir.FuncDecl{{
			Name: "own", Ret: b.Int, Body: &ir.VarRef{Name: "extra"},
		}},
	}
	p := &ir.Program{Decls: []ir.Decl{base, derived}}
	return NewEnv(p, b), base, derived, b
}

func TestEnvLookups(t *testing.T) {
	env, base, derived, _ := envFixture()
	if env.Class("Base") != base || env.Class("Derived") != derived {
		t.Error("class lookup broken")
	}
	if env.Class("Nope") != nil {
		t.Error("unknown class should be nil")
	}
	if env.ClassType("Nope") != nil {
		t.Error("unknown class type should be nil")
	}
	if _, ok := env.ClassType("Base").(*types.Constructor); !ok {
		t.Error("Base should be a constructor")
	}
	if env.Func("whatever") != nil {
		t.Error("unknown function should be nil")
	}
}

func TestFieldsOfWalksHierarchyWithSubstitution(t *testing.T) {
	env, _, derived, b := envFixture()
	fields := env.FieldsOf(derived.Type())
	if len(fields) != 2 {
		t.Fatalf("FieldsOf(Derived) = %d fields, want 2", len(fields))
	}
	// Own field first, then the inherited one with T substituted.
	item, ok := env.FieldOf(derived.Type(), "item")
	if !ok {
		t.Fatal("inherited field not found")
	}
	if !item.Type.Equal(b.String) {
		t.Errorf("inherited item should have substituted type String, got %s", item.Type)
	}
	if item.Owner.Name != "Base" {
		t.Errorf("owner should be Base, got %s", item.Owner.Name)
	}
	if _, ok := env.FieldOf(derived.Type(), "ghost"); ok {
		t.Error("unknown field should not resolve")
	}
}

func TestMethodsOfWalksHierarchyWithSubstitution(t *testing.T) {
	env, _, derived, b := envFixture()
	sig, ok := env.MethodOf(derived.Type(), "get")
	if !ok {
		t.Fatal("inherited method not found")
	}
	if !sig.Ret.Equal(b.String) {
		t.Errorf("inherited get should return String, got %s", sig.Ret)
	}
	own, ok := env.MethodOf(derived.Type(), "own")
	if !ok || !own.Ret.Equal(b.Int) {
		t.Error("own method lookup broken")
	}
	if len(env.MethodsOf(derived.Type())) != 2 {
		t.Errorf("MethodsOf(Derived) = %d, want 2", len(env.MethodsOf(derived.Type())))
	}
}

func TestMethodCandidatesCollectsOverloads(t *testing.T) {
	b := types.NewBuiltins()
	base := &ir.ClassDecl{Name: "Base", Open: true, Methods: []*ir.FuncDecl{{
		Name: "m", Params: []*ir.ParamDecl{{Name: "x", Type: b.Int}},
		Ret: b.Int, Body: &ir.Const{Type: b.Int},
	}}}
	derived := &ir.ClassDecl{
		Name:  "Derived",
		Super: &ir.SuperRef{Type: base.Type()},
		Methods: []*ir.FuncDecl{{
			Name: "m", Params: []*ir.ParamDecl{{Name: "x", Type: b.Int}, {Name: "y", Type: b.Int}},
			Ret: b.Int, Body: &ir.Const{Type: b.Int},
		}},
	}
	env := NewEnv(&ir.Program{Decls: []ir.Decl{base, derived}}, b)
	cands := env.MethodCandidates(derived.Type(), "m")
	if len(cands) != 2 {
		t.Fatalf("candidates = %d, want 2 (own + inherited)", len(cands))
	}
	// Subclass-first order.
	if len(cands[0].Params) != 2 || len(cands[1].Params) != 1 {
		t.Error("candidates must be ordered subclass-first")
	}
	// MethodOf still returns the first.
	sig, _ := env.MethodOf(derived.Type(), "m")
	if len(sig.Params) != 2 {
		t.Error("MethodOf should return the subclass overload")
	}
}

func TestReceiverSubstitutionThroughParameterBound(t *testing.T) {
	env, base, _, b := envFixture()
	baseCtor := base.Type().(*types.Constructor)
	// A type parameter bounded by Base<Int> exposes Base's members.
	tp := &types.Parameter{Owner: "f", ParamName: "X", Bound: baseCtor.Apply(b.Int)}
	sig, ok := env.MethodOf(tp, "get")
	if !ok {
		t.Fatal("member lookup through a parameter bound failed")
	}
	if !sig.Ret.Equal(b.Int) {
		t.Errorf("get through X : Base<Int> should return Int, got %s", sig.Ret)
	}
}

func TestProjectionReceiverUsesBound(t *testing.T) {
	env, base, _, b := envFixture()
	baseCtor := base.Type().(*types.Constructor)
	recv := baseCtor.Apply(&types.Projection{Var: types.Covariant, Bound: b.Number})
	sig, ok := env.MethodOf(recv, "get")
	if !ok {
		t.Fatal("member lookup on projected receiver failed")
	}
	if !sig.Ret.Equal(b.Number) {
		t.Errorf("get on Base<out Number> approximates to Number, got %s", sig.Ret)
	}
}

func TestSelfTypeAndConstructorParams(t *testing.T) {
	env, base, derived, b := envFixture()
	self := SelfType(base)
	app, ok := self.(*types.App)
	if !ok || app.Ctor.TypeName != "Base" {
		t.Fatalf("SelfType(Base) = %v", self)
	}
	if _, isParam := app.Args[0].(*types.Parameter); !isParam {
		t.Error("self type must be applied to the class's own parameters")
	}
	if simple, ok := SelfType(derived).(*types.Simple); !ok || simple.TypeName != "Derived" {
		t.Error("SelfType of unparameterized class is its simple type")
	}
	// Constructor params of an instantiated Base.
	sigma := types.NewSubstitution()
	sigma.Bind(base.TypeParams[0], b.Long)
	params := env.ConstructorParams(base, sigma)
	if len(params) != 1 || !params[0].Equal(b.Long) {
		t.Errorf("ConstructorParams = %v", params)
	}
}

func TestTopLevelSig(t *testing.T) {
	b := types.NewBuiltins()
	f := &ir.FuncDecl{Name: "f", Params: []*ir.ParamDecl{{Name: "x", Type: b.Int}},
		Ret: b.String, Body: &ir.Const{Type: b.String}}
	env := NewEnv(&ir.Program{Decls: []ir.Decl{f}}, b)
	sig, ok := env.TopLevelSig("f")
	if !ok || sig.Ret == nil || !sig.Ret.Equal(b.String) {
		t.Error("top-level signature lookup broken")
	}
	if sig.ParamNames[0] != "x" || !sig.Params[0].Equal(b.Int) {
		t.Error("parameter projection broken")
	}
	if _, ok := env.TopLevelSig("nope"); ok {
		t.Error("unknown function should not resolve")
	}
}

func TestEnvString(t *testing.T) {
	env, _, _, _ := envFixture()
	if env.String() != "Env(2 classes, 0 functions)" {
		t.Errorf("String() = %s", env)
	}
}
