package checker

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/types"
)

// typeOfCall resolves and checks a method or function call, performing
// type-argument inference for parameterized callees when the call omits
// explicit type arguments ((e.m t̄)(ē) with t̄ elided).
func (c *checker) typeOfCall(sc *scope, call *ir.Call, expected types.Type) types.Type {
	c.probes.Func("resolve.call")
	var sig MethodSig
	var found bool
	if call.Recv != nil {
		recv := c.typeOf(sc, call.Recv, nil)
		cands := c.env.MethodCandidates(recv, call.Name)
		c.probes.Branch("resolve.call.onReceiver", len(cands) > 0)
		if len(cands) == 0 {
			c.errorf(UnresolvedReference, "no method %s on %s", call.Name, recv)
			c.checkArgsUnconstrained(sc, call.Args)
			return types.Top{}
		}
		sig, found = c.resolveOverload(sc, cands, call)
		if !found {
			c.checkArgsUnconstrained(sc, call.Args)
			return types.Top{}
		}
	} else {
		// Unqualified call: enclosing class methods, then top-level
		// functions, then a lambda-typed variable in scope.
		if c.curClass != nil {
			if cands := c.env.MethodCandidates(SelfType(c.curClass), call.Name); len(cands) > 0 {
				sig, found = c.resolveOverload(sc, cands, call)
				if !found {
					c.checkArgsUnconstrained(sc, call.Args)
					return types.Top{}
				}
			}
		}
		if !found {
			sig, found = c.env.TopLevelSig(call.Name)
		}
		if !found {
			if vt, ok := sc.lookup(call.Name); ok {
				if ft, isFn := vt.(*types.Func); isFn {
					return c.checkLambdaInvocation(sc, call, ft)
				}
			}
		}
		c.probes.Branch("resolve.call.unqualified", found)
		if !found {
			c.errorf(UnresolvedReference, "unresolved function: %s", call.Name)
			c.checkArgsUnconstrained(sc, call.Args)
			return types.Top{}
		}
	}

	if sig.Ret == nil {
		sig.Ret = sig.Sigma.ApplyB(c.gov, c.returnTypeOf(sig.Decl, sig.Owner))
	}
	if len(call.Args) != len(sig.Params) {
		c.errorf(ArityMismatch, "%s expects %d arguments, got %d",
			call.Name, len(sig.Params), len(call.Args))
		c.checkArgsUnconstrained(sc, call.Args)
		return sig.Ret
	}

	if len(sig.TypeParams) == 0 {
		// Monomorphic call: straightforward conformance.
		for i, a := range call.Args {
			got := c.typeOf(sc, a, sig.Params[i])
			c.conforms(got, sig.Params[i], fmt.Sprintf("argument %d of %s", i, call.Name))
		}
		return sig.Ret
	}
	return c.checkGenericCall(sc, call, sig, expected)
}

// checkLambdaInvocation checks a call to a variable of function type
// (the Groovy `closure()` idiom of Figure 1).
func (c *checker) checkLambdaInvocation(sc *scope, call *ir.Call, ft *types.Func) types.Type {
	c.probes.Func("resolve.lambdaInvocation")
	if len(call.Args) != len(ft.Params) {
		c.errorf(ArityMismatch, "%s expects %d arguments, got %d", call.Name, len(ft.Params), len(call.Args))
		return ft.Ret
	}
	for i, a := range call.Args {
		got := c.typeOf(sc, a, ft.Params[i])
		c.conforms(got, ft.Params[i], fmt.Sprintf("argument %d of %s", i, call.Name))
	}
	return ft.Ret
}

func (c *checker) checkArgsUnconstrained(sc *scope, args []ir.Expr) {
	for _, a := range args {
		c.typeOf(sc, a, nil)
	}
}

// checkGenericCall handles a call to a parameterized method: explicit
// instantiation when type arguments are supplied, or inference from
// argument types and the expected (target) type — the [param call] and
// [var param method call] flows of Figure 5.
func (c *checker) checkGenericCall(sc *scope, call *ir.Call, sig MethodSig, expected types.Type) types.Type {
	c.probes.Func("infer.genericCall")
	sigma := types.NewSubstitution()

	if call.TypeArgs != nil {
		c.probes.Branch("infer.genericCall.explicit", true)
		if len(call.TypeArgs) != len(sig.TypeParams) {
			c.errorf(ArityMismatch, "%s expects %d type arguments, got %d",
				call.Name, len(sig.TypeParams), len(call.TypeArgs))
			return sig.Ret
		}
		for i, tp := range sig.TypeParams {
			sigma.Bind(tp, call.TypeArgs[i])
		}
	} else {
		c.probes.Branch("infer.genericCall.explicit", false)
		// Infer from arguments first ([param call]): evaluate each
		// argument without a target and unify parameter types against
		// argument types. Arguments whose own typing depends on a target
		// (lambdas and nested inferable generic calls) are deferred — the
		// substituted parameter type flows into them afterwards, which is
		// how the KT-48765 bound violation surfaces in the inner call.
		argTypes := make([]types.Type, len(call.Args))
		for i, a := range call.Args {
			if c.argNeedsTarget(sc, a) {
				continue
			}
			argTypes[i] = c.typeOf(sc, a, nil)
		}
		for i, pt := range sig.Params {
			if argTypes[i] == nil || !mentionsAny(pt, sig.TypeParams) {
				continue
			}
			if _, isBottom := argTypes[i].(types.Bottom); isBottom {
				continue // null constrains nothing
			}
			// Constraint collection deliberately ignores bounds here;
			// the explicit bound-conformance pass below reports
			// violations, as the real inference engines do.
			c.probes.Line(probeName(gcFromArgProbes, "infer.genericCall.fromArg.", kindOf(argTypes[i])))
			s := c.unifyProbe("infer.genericCall.unify", pt, argTypes[i])
			if s == nil {
				c.errorf(TypeMismatch, "argument %d of %s: cannot instantiate %s from %s",
					i, call.Name, pt, argTypes[i])
				continue
			}
			c.mergeLowerBounds(sigma, s, sig.TypeParams)
		}
		// Then from the expected type ([var param method call]): when the
		// method's type parameter appears in the return type, the target
		// type instantiates it. Argument bindings are kept when they
		// already satisfy the target (projection positions constrain
		// without dictating); otherwise the target binding wins.
		if expected != nil && mentionsAny(sig.Ret, sig.TypeParams) {
			c.probes.Line(probeName(gcFromTargetProbes, "infer.genericCall.fromTarget.", kindOf(expected)))
			if s := c.unifyProbe("infer.genericCall.targetUnify", sig.Ret, expected); s != nil {
				c.chooseBindings(sigma, s, sig.TypeParams, sig.Ret, expected)
			}
		}
		// Unbound parameters fall back to their (substituted) bound; a
		// parameter with no information is an inference failure.
		for _, tp := range sig.TypeParams {
			if _, ok := sigma.Lookup(tp); ok {
				continue
			}
			c.probes.Branch(probeName(gcUnboundProbes, "infer.genericCall.unbound.", kindOf(tp.UpperBound())), true)
			if tp.Bound != nil && !types.HasFreeParameters(sigma.ApplyB(c.gov, tp.Bound)) {
				sigma.Bind(tp, sigma.ApplyB(c.gov, tp.Bound))
				continue
			}
			c.errorf(InferenceFailure, "cannot infer type argument %s of %s", tp.ParamName, call.Name)
			sigma.Bind(tp, types.Top{})
		}
	}

	// Bound conformance for the instantiation — the check kotlinc forgot
	// in KT-48765: "type parameter bound for T is not satisfied".
	for _, tp := range sig.TypeParams {
		inst, _ := sigma.Lookup(tp)
		if inst == nil {
			continue
		}
		instCheck := inst
		if proj, ok := inst.(*types.Projection); ok {
			instCheck = proj.Bound
		}
		bound := sigma.ApplyB(c.gov, tp.UpperBound())
		c.probes.Func("types.boundCheck")
		ok := types.IsSubtypeB(c.gov, instCheck, bound)
		if c.probesLive {
			c.probes.Branch("types.boundCheck."+kindOf(instCheck)+"-"+kindOf(bound), ok)
		}
		if !ok {
			c.errorf(BoundViolation,
				"type parameter bound for %s of %s is not satisfied: inferred type %s is not a subtype of %s",
				tp.ParamName, call.Name, instCheck, bound)
		}
	}

	// Final conformance of all arguments against substituted parameters
	// (lambdas checked here with their concrete target).
	for i, a := range call.Args {
		want := sigma.ApplyB(c.gov, sig.Params[i])
		got := c.typeOf(sc, a, want)
		c.conforms(got, want, fmt.Sprintf("argument %d of %s", i, call.Name))
	}
	return sigma.ApplyB(c.gov, sig.Ret)
}

// argNeedsTarget reports whether typing the argument expression depends on
// a target type: lambdas with untyped parameters always do, and so do
// calls to parameterized functions without explicit type arguments whose
// type parameters appear in their return type.
func (c *checker) argNeedsTarget(sc *scope, a ir.Expr) bool {
	switch t := a.(type) {
	case *ir.Lambda:
		// A lambda with fully annotated parameters types bottom-up and
		// constrains inference; only untyped parameters need a target.
		for _, p := range t.Params {
			if p.Type == nil {
				return true
			}
		}
		return false
	case *ir.New:
		// A diamond constructor call may need its target type.
		if t.TypeArgs != nil {
			return false
		}
		_, isCtor := t.Class.(*types.Constructor)
		return isCtor
	case *ir.Call:
		if t.TypeArgs != nil {
			return false
		}
		var sig MethodSig
		var found bool
		if t.Recv == nil {
			if c.curClass != nil {
				sig, found = c.env.MethodOf(SelfType(c.curClass), t.Name)
			}
			if !found {
				sig, found = c.env.TopLevelSig(t.Name)
			}
		}
		// Receiver calls would need the receiver typed first; treating
		// them as non-deferred keeps argument evaluation single-pass.
		if !found || len(sig.TypeParams) == 0 {
			return false
		}
		return sig.Ret != nil && mentionsAny(sig.Ret, sig.TypeParams)
	}
	return false
}

// typeOfNew resolves and checks a constructor invocation, inferring
// diamond type arguments ((new C t̄)(ē) with t̄ elided) from constructor
// arguments and the target type — the [var param constructor] flow.
func (c *checker) typeOfNew(sc *scope, n *ir.New, expected types.Type) types.Type {
	c.probes.Func("resolve.new")
	switch cls := n.Class.(type) {
	case *types.Simple:
		decl := c.env.Class(cls.TypeName)
		c.probes.Branch("resolve.new.known", decl != nil)
		if decl == nil {
			if !cls.Builtin {
				c.errorf(UnresolvedReference, "unknown class %s", cls.TypeName)
			}
			c.checkArgsUnconstrained(sc, n.Args)
			return cls
		}
		if decl.Kind != ir.RegularClass {
			c.errorf(IllegalDeclaration, "cannot instantiate %s", decl.Name)
		}
		want := c.env.ConstructorParams(decl, types.NewSubstitution())
		c.checkCtorArgs(sc, n, decl.Name, want)
		return cls

	case *types.Constructor:
		decl := c.env.Class(cls.TypeName)
		c.probes.Branch("resolve.new.known", decl != nil)
		if decl == nil {
			c.errorf(UnresolvedReference, "unknown class %s", cls.TypeName)
			c.checkArgsUnconstrained(sc, n.Args)
			return types.Top{}
		}
		if decl.Kind != ir.RegularClass {
			c.errorf(IllegalDeclaration, "cannot instantiate %s", decl.Name)
		}
		if n.TypeArgs != nil {
			c.probes.Branch("infer.diamond", false)
			if len(n.TypeArgs) != len(cls.Params) {
				c.errorf(ArityMismatch, "%s expects %d type arguments, got %d",
					cls.TypeName, len(cls.Params), len(n.TypeArgs))
				c.checkArgsUnconstrained(sc, n.Args)
				return types.Top{}
			}
			app := cls.Apply(n.TypeArgs...)
			c.checkTypeWellFormed(app, "constructor call of "+cls.TypeName)
			_, sigma := c.env.receiverSubstitution(app)
			c.checkCtorArgs(sc, n, cls.TypeName, c.env.ConstructorParams(decl, sigma))
			return app
		}
		// Diamond (type-erasure case 2): infer the instantiation.
		c.probes.Branch("infer.diamond", true)
		return c.inferDiamond(sc, n, decl, cls, expected)
	default:
		c.errorf(IllegalDeclaration, "cannot instantiate %s", n.Class)
		return types.Top{}
	}
}

func (c *checker) checkCtorArgs(sc *scope, n *ir.New, name string, want []types.Type) {
	c.probes.Func("resolve.ctorArgs")
	if len(n.Args) != len(want) {
		c.errorf(ArityMismatch, "constructor of %s expects %d arguments, got %d",
			name, len(want), len(n.Args))
		c.checkArgsUnconstrained(sc, n.Args)
		return
	}
	for i, a := range n.Args {
		got := c.typeOf(sc, a, want[i])
		c.conforms(got, want[i], fmt.Sprintf("constructor argument %d of %s", i, name))
	}
}

// inferDiamond infers the type arguments of new C<>(ē) from the
// constructor's argument types, falling back to the target type — exactly
// the information flow the GROOVY-10080 example exercises.
func (c *checker) inferDiamond(sc *scope, n *ir.New, decl *ir.ClassDecl, ctor *types.Constructor, expected types.Type) types.Type {
	c.probes.Func("infer.diamondCall")
	fieldTypes := c.env.ConstructorParams(decl, types.NewSubstitution())
	if len(n.Args) != len(fieldTypes) {
		c.errorf(ArityMismatch, "constructor of %s expects %d arguments, got %d",
			decl.Name, len(fieldTypes), len(n.Args))
		c.checkArgsUnconstrained(sc, n.Args)
		return types.Top{}
	}
	sigma := types.NewSubstitution()
	argTypes := make([]types.Type, len(n.Args))
	for i, a := range n.Args {
		if c.argNeedsTarget(sc, a) {
			continue
		}
		argTypes[i] = c.typeOf(sc, a, nil)
		if _, isBottom := argTypes[i].(types.Bottom); isBottom {
			continue
		}
		if !mentionsAny(fieldTypes[i], ctor.Params) {
			continue
		}
		c.probes.Line(probeName(diaFromArgProbes, "infer.diamond.fromArg.", kindOf(argTypes[i])))
		s := c.unifyProbe("infer.diamond.unify", fieldTypes[i], argTypes[i])
		if s == nil {
			c.errorf(TypeMismatch, "constructor argument %d of %s: cannot instantiate %s from %s",
				i, decl.Name, fieldTypes[i], argTypes[i])
			continue
		}
		c.mergeLowerBounds(sigma, s, ctor.Params)
	}
	// Target type: new C<>() assigned to C<String> instantiates T=String.
	// Argument bindings that already satisfy the target are kept
	// (projection positions constrain without dictating).
	if expected != nil {
		selfArgs := make([]types.Type, len(ctor.Params))
		for i, p := range ctor.Params {
			selfArgs[i] = p
		}
		self := ctor.Apply(selfArgs...)
		c.probes.Line(probeName(diaFromTargetProbes, "infer.diamond.fromTarget.", kindOf(expected)))
		if s := c.unifyProbe("infer.diamond.targetUnify", self, expected); s != nil {
			c.chooseBindings(sigma, s, ctor.Params, self, expected)
		}
	}
	for _, tp := range ctor.Params {
		if _, ok := sigma.Lookup(tp); ok {
			continue
		}
		c.probes.Branch(probeName(diaUnboundProbes, "infer.diamond.unbound.", kindOf(tp.UpperBound())), true)
		if tp.Bound != nil && !types.HasFreeParameters(sigma.ApplyB(c.gov, tp.Bound)) {
			sigma.Bind(tp, sigma.ApplyB(c.gov, tp.Bound))
			continue
		}
		c.errorf(InferenceFailure, "cannot infer type argument %s of %s", tp.ParamName, decl.Name)
		sigma.Bind(tp, types.Top{})
	}
	args := make([]types.Type, len(ctor.Params))
	for i, tp := range ctor.Params {
		args[i], _ = sigma.Lookup(tp)
	}
	app := ctor.Apply(args...)
	c.checkTypeWellFormed(app, "inferred instantiation of "+decl.Name)
	// Conformance of arguments under the inferred instantiation.
	for i, a := range n.Args {
		want := sigma.ApplyB(c.gov, fieldTypes[i])
		got := argTypes[i]
		if got == nil {
			got = c.typeOf(sc, a, want)
		}
		c.conforms(got, want, fmt.Sprintf("constructor argument %d of %s", i, decl.Name))
	}
	return app
}

// mentionsAny reports whether t mentions any of the given parameters.
func mentionsAny(t types.Type, params []*types.Parameter) bool {
	if t == nil {
		return false
	}
	for _, p := range params {
		if types.ContainsParameter(t, p) {
			return true
		}
	}
	return false
}

// restrictTo filters a substitution to the given parameters, dropping
// incidental bindings unification may have picked up from nested types.
func restrictTo(s *types.Substitution, params []*types.Parameter) *types.Substitution {
	out := types.NewSubstitution()
	for _, p := range params {
		if t, ok := s.Lookup(p); ok {
			out.Bind(p, t)
		}
	}
	return out
}

// mergeLowerBounds folds argument-derived bindings into sigma. Arguments
// impose lower bounds: two different bindings for the same parameter are
// combined with the least upper bound, as the real constraint solvers do.
func (c *checker) mergeLowerBounds(sigma, s *types.Substitution, params []*types.Parameter) {
	for _, p := range params {
		t, ok := s.Lookup(p)
		if !ok {
			continue
		}
		if prev, bound := sigma.Lookup(p); bound && !prev.Equal(t) {
			sigma.Bind(p, types.LubB(c.gov, prev, t))
			continue
		}
		sigma.Bind(p, t)
	}
}

// chooseBindings merges target-derived bindings into sigma, arbitrating
// conflicts with argument-derived bindings: an argument binding survives
// when the instantiated shape still conforms to the expected type (the
// target position was a projection or a supertype), otherwise the target
// binding — an equality constraint — wins.
func (c *checker) chooseBindings(sigma, target *types.Substitution, params []*types.Parameter, shape, expected types.Type) {
	// Fill parameters the arguments left unbound.
	for _, p := range params {
		if _, ok := sigma.Lookup(p); !ok {
			if t, ok2 := target.Lookup(p); ok2 {
				sigma.Bind(p, t)
			}
		}
	}
	for _, p := range params {
		tgt, ok := target.Lookup(p)
		if !ok {
			continue
		}
		cur, _ := sigma.Lookup(p)
		if cur == nil || cur.Equal(tgt) {
			continue
		}
		// Rigid scope parameters may legitimately remain in the
		// instantiation (a diamond inside the class mentioning its own
		// parameters), so conformance alone arbitrates.
		inst := sigma.ApplyB(c.gov, shape)
		if types.IsSubtypeB(c.gov, inst, expected) {
			continue // the argument's exact evidence already satisfies the target
		}
		sigma.Bind(p, tgt)
	}
}

// unifyProbe runs unchecked unification while recording a branch probe
// faceted by the kind pair — the analog of the deep branch structure of a
// real inference engine's constraint solver, exercised only when type
// information is omitted (the Figure 9 TEM rows).
func (c *checker) unifyProbe(site string, t1, t2 types.Type) *types.Substitution {
	s := types.UnifyUncheckedB(c.gov, t1, t2)
	if c.probesLive {
		c.probes.Branch(site+"."+kindOf(t1)+"-"+kindOf(t2), s != nil)
	}
	return s
}

// resolveOverload implements overload resolution over a non-empty
// candidate set: filter by arity, then by argument applicability, then
// pick the unique most-specific signature. Generated programs have unique
// method names; decoy overloads come from the resolution mutation (REM),
// which is exactly the compiler path this models. Diagnostics are emitted
// on failure; the boolean reports success.
func (c *checker) resolveOverload(sc *scope, cands []MethodSig, call *ir.Call) (MethodSig, bool) {
	c.probes.Func("resolve.overloads")
	var arityOK []MethodSig
	for _, m := range cands {
		if len(m.Params) == len(call.Args) {
			arityOK = append(arityOK, m)
		}
	}
	c.probes.Branch("resolve.overloads.arity", len(arityOK) > 0)
	if len(arityOK) == 0 {
		c.errorf(UnresolvedReference, "no overload of %s takes %d arguments",
			call.Name, len(call.Args))
		return MethodSig{}, false
	}
	if len(arityOK) == 1 {
		return arityOK[0], true
	}

	// Multiple same-arity overloads: evaluate argument types once and
	// keep the applicable candidates.
	argTypes := make([]types.Type, len(call.Args))
	for i, a := range call.Args {
		if c.argNeedsTarget(sc, a) {
			continue // target-dependent arguments do not discriminate
		}
		argTypes[i] = c.typeOf(sc, a, nil)
	}
	var applicable []MethodSig
	for _, m := range arityOK {
		ok := true
		for i, pt := range m.Params {
			if argTypes[i] == nil || pt == nil || mentionsAny(pt, m.TypeParams) {
				continue
			}
			if !types.IsSubtypeB(c.gov, argTypes[i], pt) {
				ok = false
				break
			}
		}
		if ok {
			applicable = append(applicable, m)
		}
	}
	c.probes.Branch("resolve.overloads.applicable", len(applicable) > 0)
	if len(applicable) == 0 {
		c.errorf(TypeMismatch, "no applicable overload of %s", call.Name)
		return MethodSig{}, false
	}
	if len(applicable) == 1 {
		return applicable[0], true
	}
	// Most-specific selection: m beats n when every parameter of m is a
	// subtype of n's corresponding parameter.
	for _, m := range applicable {
		best := true
		for _, n := range applicable {
			if &m == &n {
				continue
			}
			for i := range m.Params {
				if m.Params[i] == nil || n.Params[i] == nil {
					continue
				}
				if !types.IsSubtypeB(c.gov, m.Params[i], n.Params[i]) {
					best = false
					break
				}
			}
			if !best {
				break
			}
		}
		if best {
			c.probes.Line("resolve.overloads.mostSpecific")
			return m, true
		}
	}
	c.errorf(AmbiguousCall, "ambiguous call to %s: %d applicable overloads",
		call.Name, len(applicable))
	return MethodSig{}, false
}
