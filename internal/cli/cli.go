// Package cli is the shared configuration surface of the campaign
// front ends: one Config struct that cmd/campaign, cmd/hephaestus, and
// cmd/server all build campaign.Options from, one place that registers
// the ~15 flags the CLIs used to duplicate, and one JSON shape the
// server accepts as a campaign submission — so a config that runs from
// the command line runs identically when POSTed to the service.
package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"time"

	"repro/internal/apisynth"
	"repro/internal/campaign"
	"repro/internal/compilers"
	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/types"
)

// Duration is a time.Duration that JSON-decodes from either a string
// ("10s") or a number of nanoseconds, so HTTP submissions can write
// timeouts the way flags do.
type Duration time.Duration

// MarshalJSON renders the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "10s"-style strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		parsed, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("cli: bad duration %q: %w", x, err)
		}
		*d = Duration(parsed)
	case float64:
		*d = Duration(time.Duration(x))
	default:
		return fmt.Errorf("cli: duration must be a string or number, got %T", v)
	}
	return nil
}

// Config is the shared campaign configuration: every campaign-defining
// knob the CLIs expose, in a JSON-marshalable shape the server accepts
// as a submission body. Process-local concerns (state directory,
// debug address, heartbeat cadence) are deliberately excluded from the
// JSON surface — the server owns those per tenant.
type Config struct {
	// Seed is the base seed; program i uses Seed+i.
	Seed int64 `json:"seed"`
	// Programs is the number of generated seed programs.
	Programs int `json:"programs"`
	// BatchSize groups programs per simulated compiler invocation.
	BatchSize int `json:"batch_size,omitempty"`
	// Workers is the per-stage pipeline worker count (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Compilers names the compilers under test (groovyc, kotlinc,
	// javac); empty means all three.
	Compilers []string `json:"compilers,omitempty"`
	// NoMutate disables the TEM/TOM/TEM∘TOM/REM mutation stages.
	NoMutate bool `json:"no_mutate,omitempty"`
	// Oracle selects the test oracle: "" or "ground-truth" for the
	// paper's derivation-based oracle, "differential" for cross-compiler
	// vote comparison plus translator conformance. Verdict-affecting: it
	// is part of the JSON submission surface, ships to fabric workers
	// inside the lease config, and folds into the campaign fingerprint.
	Oracle string `json:"oracle,omitempty"`
	// CompileTimeout bounds one compile under the watchdog (0 disables).
	CompileTimeout Duration `json:"compile_timeout,omitempty"`
	// Fuel is the per-compile deterministic step budget of the resource
	// governor (0 disables). Verdict-affecting: it is part of the JSON
	// submission surface, ships to fabric workers, and folds into the
	// campaign fingerprint, so a resumed or sharded campaign cannot mix
	// budgets.
	Fuel int64 `json:"fuel,omitempty"`
	// MaxTypeDepth caps the governor's recursion depth for type-relation
	// and substitution walks (0 with fuel set = governor default).
	MaxTypeDepth int `json:"max_depth,omitempty"`
	// StressEvery makes every StressEvery-th unit (keyed by seed) a
	// pathological stress program exercising the governor (0 disables).
	StressEvery int `json:"stress_every,omitempty"`
	// Synth enables API-driven synthesis (Thalia mode): units are built
	// bottom-up from API signatures instead of top-down from the type
	// grammar, and judged as the Synthesized input kind. With no
	// SynthEvery, every unit is synthesized. Verdict-affecting: part of
	// the JSON submission surface, ships to fabric workers inside the
	// lease config, and folds into the campaign fingerprint.
	Synth bool `json:"synth,omitempty"`
	// SynthEvery synthesizes every SynthEvery-th unit (keyed by seed,
	// like StressEvery) and leaves the rest to the generator, so one
	// campaign mixes input kinds deterministically. Implies Synth.
	// A seed claimed by the synthesizer is synthesized even when the
	// stress cadence also selects it.
	SynthEvery int `json:"synth_every,omitempty"`
	// SynthCorpus is the path of a JSON API-corpus document for the
	// synthesizer; empty means the built-in corpus (synthetic stdlib +
	// signatures mined from the paper-bug regression programs).
	SynthCorpus string `json:"synth_corpus,omitempty"`
	// Retries bounds transient-fault compile retries.
	Retries int `json:"retries,omitempty"`
	// Chaos injects seeded faults at this rate (0 disables).
	Chaos float64 `json:"chaos,omitempty"`
	// SnapshotEvery is the unit count between report snapshots (0 =
	// campaign default; negative disables snapshots).
	SnapshotEvery int `json:"snapshot_every,omitempty"`
	// SyncEvery is the journal record count between fsyncs (0 = every
	// record).
	SyncEvery int `json:"sync_every,omitempty"`

	// Process-local settings, not part of the submission surface.
	StateDir  string        `json:"-"`
	Resume    bool          `json:"-"`
	Stats     bool          `json:"-"`
	DebugAddr string        `json:"-"`
	Heartbeat time.Duration `json:"-"`

	// Fabric settings (distributed sharded campaigns), also
	// process-local: the coordinator owns the topology, the submission
	// JSON the workers receive describes only the campaign itself.
	Shards        int           `json:"-"`
	FabricState   string        `json:"-"`
	WorkerBin     string        `json:"-"`
	FabricProcs   int           `json:"-"`
	FabricWorkers string        `json:"-"`
	FabricChaos   float64       `json:"-"`
	FabricTimeout time.Duration `json:"-"`
}

// NewConfig returns the defaults both CLIs and the server share:
// 10-second compile watchdog, 2 retries, batches of 20, 200 programs.
func NewConfig() *Config {
	return &Config{
		Programs:       200,
		BatchSize:      20,
		CompileTimeout: Duration(10 * time.Second),
		Retries:        2,
	}
}

// RegisterCampaignFlags registers the shared campaign flags on fs,
// with the config's current values as defaults — callers adjust
// defaults (e.g. a different program count) by setting fields before
// registering.
func (c *Config) RegisterCampaignFlags(fs *flag.FlagSet) {
	fs.Int64Var(&c.Seed, "seed", c.Seed, "base seed")
	fs.IntVar(&c.Programs, "n", c.Programs, "number of generated programs")
	fs.IntVar(&c.Workers, "workers", c.Workers, "pipeline workers per stage (0 = GOMAXPROCS)")
	fs.StringVar(&c.Oracle, "oracle", c.Oracle, "test oracle: ground-truth (derivation fixes the expected verdict) or differential (cross-compiler vote comparison + translator conformance)")
	fs.BoolVar(&c.Stats, "stats", c.Stats, "print per-stage pipeline statistics")
	fs.DurationVar((*time.Duration)(&c.CompileTimeout), "compile-timeout", time.Duration(c.CompileTimeout), "per-compile watchdog budget (0 disables)")
	fs.Int64Var(&c.Fuel, "fuel", c.Fuel, "deterministic per-compile step budget; exhaustion is a reportable result (0 disables)")
	fs.IntVar(&c.MaxTypeDepth, "max-depth", c.MaxTypeDepth, "recursion-depth cap for type relations (0 with -fuel = governor default)")
	fs.IntVar(&c.StressEvery, "stress-every", c.StressEvery, "make every Nth unit a pathological governor-stress program (0 disables)")
	fs.BoolVar(&c.Synth, "synth", c.Synth, "synthesize units bottom-up from API signatures (Thalia mode) instead of generating from the grammar")
	fs.IntVar(&c.SynthEvery, "synth-every", c.SynthEvery, "synthesize every Nth unit (keyed by seed) and generate the rest; implies -synth (0 = all units when -synth is set)")
	fs.StringVar(&c.SynthCorpus, "synth-corpus", c.SynthCorpus, "JSON API-corpus document for -synth (empty = built-in corpus)")
	fs.IntVar(&c.Retries, "retries", c.Retries, "max retries for transient compile faults")
	fs.Float64Var(&c.Chaos, "chaos", c.Chaos, "inject seeded faults at this rate (0 disables; exercises the harness)")
	fs.StringVar(&c.StateDir, "state", c.StateDir, "state directory for durable campaigns (journal, snapshots, bug corpus)")
	fs.BoolVar(&c.Resume, "resume", c.Resume, "resume the campaign recorded in -state instead of starting fresh")
	fs.IntVar(&c.SnapshotEvery, "snapshot-every", c.SnapshotEvery, "units between report snapshots (0 = default cadence of 64; -1 disables snapshots)")
	fs.StringVar(&c.DebugAddr, "debug-addr", c.DebugAddr, "serve /metrics, /events, and /debug/pprof on this address (e.g. 127.0.0.1:6060; :0 picks a free port)")
	fs.DurationVar(&c.Heartbeat, "heartbeat", c.Heartbeat, "print a one-line progress summary at this interval (0 disables)")
}

// RegisterFabricFlags registers the distributed-campaign flags: shard
// count, coordinator state, and the worker topology (spawned processes
// or attached addresses).
func (c *Config) RegisterFabricFlags(fs *flag.FlagSet) {
	fs.IntVar(&c.Shards, "shards", c.Shards, "shard the campaign across fabric workers (0 = single process)")
	fs.StringVar(&c.FabricState, "fabric-state", c.FabricState, "coordinator scratch directory (worker state, fabric fault ledger)")
	fs.StringVar(&c.WorkerBin, "worker-bin", c.WorkerBin, "cmd/worker binary to spawn local workers from")
	fs.IntVar(&c.FabricProcs, "fabric-procs", c.FabricProcs, "worker processes to spawn (0 = one per shard, capped at 8)")
	fs.StringVar(&c.FabricWorkers, "fabric-workers", c.FabricWorkers, "attach these running workers (comma-separated http addresses) instead of spawning")
	fs.Float64Var(&c.FabricChaos, "fabric-chaos", c.FabricChaos, "worker-level fault rate for spawned workers: kill, stall, slow, corrupt shipment (0 disables)")
	fs.DurationVar(&c.FabricTimeout, "fabric-timeout", c.FabricTimeout, "per-call coordinator→worker budget (0 = 3s)")
}

// ResolveCompilers maps the configured compiler names to the simulated
// compilers; empty means all three.
func (c *Config) ResolveCompilers() ([]*compilers.Compiler, error) {
	if len(c.Compilers) == 0 {
		return compilers.All(), nil
	}
	byName := map[string]*compilers.Compiler{}
	for _, comp := range compilers.All() {
		byName[comp.Name()] = comp
	}
	var out []*compilers.Compiler
	for _, name := range c.Compilers {
		comp := byName[name]
		if comp == nil {
			return nil, fmt.Errorf("cli: unknown compiler %q (have groovyc, kotlinc, javac)", name)
		}
		out = append(out, comp)
	}
	return out, nil
}

// HarnessOptions builds the resilient-harness configuration: the
// shared breaker threshold of 10, and the double-compile probe
// whenever chaos is on.
func (c *Config) HarnessOptions() harness.Options {
	return harness.Options{
		Timeout:          time.Duration(c.CompileTimeout),
		Retries:          c.Retries,
		Seed:             c.Seed,
		Fuel:             c.Fuel,
		MaxDepth:         c.MaxTypeDepth,
		BreakerThreshold: 10,
		DoubleCompile:    c.Chaos > 0,
	}
}

// ChaosOptions builds the fault-injection configuration, nil when
// chaos is off.
func (c *Config) ChaosOptions() *harness.ChaosOptions {
	if c.Chaos <= 0 {
		return nil
	}
	return &harness.ChaosOptions{
		Seed:          c.Seed,
		PanicRate:     c.Chaos,
		HangRate:      c.Chaos,
		TransientRate: c.Chaos,
		FlakyRate:     c.Chaos,
	}
}

// CampaignOptions builds campaign.Options from the config. The
// observability fields (Metrics, Trace, Gate) stay nil — callers wire
// those per process or per tenant.
func (c *Config) CampaignOptions() (campaign.Options, error) {
	comps, err := c.ResolveCompilers()
	if err != nil {
		return campaign.Options{}, err
	}
	mode, err := campaign.ParseOracleMode(c.Oracle)
	if err != nil {
		return campaign.Options{}, err
	}
	gen := generator.DefaultConfig()
	gen.Stress.Every = c.StressEvery
	return campaign.Options{
		Seed:          c.Seed,
		Programs:      c.Programs,
		BatchSize:     c.BatchSize,
		Workers:       c.Workers,
		Compilers:     comps,
		Oracle:        mode,
		GenConfig:     gen,
		Synth:         c.SynthConfig(),
		Mutate:        !c.NoMutate,
		Harness:       c.HarnessOptions(),
		Chaos:         c.ChaosOptions(),
		StateDir:      c.StateDir,
		Resume:        c.Resume,
		SnapshotEvery: c.SnapshotEvery,
		SyncEvery:     c.SyncEvery,
	}, nil
}

// SynthConfig derives the synthesis configuration from the flag
// surface: -synth-every N sets the cadence outright, bare -synth means
// every unit, and neither disables synthesis.
func (c *Config) SynthConfig() apisynth.Config {
	every := 0
	switch {
	case c.SynthEvery > 0:
		every = c.SynthEvery
	case c.Synth:
		every = 1
	}
	return apisynth.Config{Every: every, Corpus: c.SynthCorpus}
}

// CoreConfig builds the core façade configuration the hephaestus CLI
// uses, sharing the same harness and chaos surface as CampaignOptions.
func (c *Config) CoreConfig() (core.Config, error) {
	comps, err := c.ResolveCompilers()
	if err != nil {
		return core.Config{}, err
	}
	mode, err := campaign.ParseOracleMode(c.Oracle)
	if err != nil {
		return core.Config{}, err
	}
	gen := generator.DefaultConfig()
	gen.Stress.Every = c.StressEvery
	return core.Config{
		Seed:          c.Seed,
		Generator:     gen,
		Compilers:     comps,
		Oracle:        mode,
		Synth:         c.SynthConfig(),
		Workers:       c.Workers,
		Harness:       c.HarnessOptions(),
		Chaos:         c.ChaosOptions(),
		StateDir:      c.StateDir,
		Resume:        c.Resume,
		SnapshotEvery: c.SnapshotEvery,
		SyncEvery:     c.SyncEvery,
	}, nil
}

// Validate rejects configs a server should not admit: nonsensical
// sizes and rates. The CLIs rely on flag parsing for the same bounds.
func (c *Config) Validate(maxPrograms, maxWorkers int) error {
	if c.Programs <= 0 {
		return fmt.Errorf("cli: programs must be positive, got %d", c.Programs)
	}
	if maxPrograms > 0 && c.Programs > maxPrograms {
		return fmt.Errorf("cli: programs %d exceeds the limit of %d", c.Programs, maxPrograms)
	}
	if c.Workers < 0 {
		return fmt.Errorf("cli: workers must be non-negative, got %d", c.Workers)
	}
	if maxWorkers > 0 && c.Workers > maxWorkers {
		return fmt.Errorf("cli: workers %d exceeds the limit of %d", c.Workers, maxWorkers)
	}
	if c.Chaos < 0 || c.Chaos > 1 {
		return fmt.Errorf("cli: chaos rate must be in [0, 1], got %g", c.Chaos)
	}
	if time.Duration(c.CompileTimeout) < 0 {
		return fmt.Errorf("cli: compile timeout must be non-negative")
	}
	if c.Retries < 0 {
		return fmt.Errorf("cli: retries must be non-negative, got %d", c.Retries)
	}
	if c.Fuel < 0 {
		return fmt.Errorf("cli: fuel must be non-negative, got %d", c.Fuel)
	}
	if c.MaxTypeDepth < 0 {
		return fmt.Errorf("cli: max type depth must be non-negative, got %d", c.MaxTypeDepth)
	}
	if c.StressEvery < 0 {
		return fmt.Errorf("cli: stress cadence must be non-negative, got %d", c.StressEvery)
	}
	if c.SynthEvery < 0 {
		return fmt.Errorf("cli: synth cadence must be non-negative, got %d", c.SynthEvery)
	}
	if c.SynthCorpus != "" && !c.SynthConfig().Enabled() {
		return fmt.Errorf("cli: -synth-corpus requires -synth or -synth-every")
	}
	if _, err := c.ResolveCompilers(); err != nil {
		return err
	}
	if _, err := campaign.ParseOracleMode(c.Oracle); err != nil {
		return err
	}
	return nil
}

// Observability bundles a process's debug instruments: the registry
// and trace shared by campaign, harness, and pipeline, plus the HTTP
// debug server when one was requested.
type Observability struct {
	Registry *metrics.Registry
	Trace    *metrics.Trace
	Server   *metrics.Server
}

// StartObservability wires the registry, trace, and debug server the
// config asks for, announcing the server's address on w (the line CI's
// observability smoke parses). With no -debug-addr and no -heartbeat
// it returns an empty Observability whose nil fields disable
// instrumentation.
func (c *Config) StartObservability(w io.Writer) (*Observability, error) {
	obs := &Observability{}
	if c.DebugAddr == "" && c.Heartbeat <= 0 {
		return obs, nil
	}
	obs.Registry = metrics.NewRegistry()
	obs.Trace = metrics.NewTrace(4096)
	// Make the SuperChain cyclic-climb cap observable: the types package
	// cannot import metrics, so it exposes a hook the process wires here.
	truncations := obs.Registry.Counter("types.superchain_truncations")
	trace := obs.Trace
	types.SetSuperChainTruncationHook(func() {
		truncations.Inc()
		trace.Emit(metrics.Event{Kind: "truncation", Detail: "SuperChain cyclic-climb cap hit"})
	})
	if c.DebugAddr != "" {
		srv, err := metrics.Serve(c.DebugAddr, obs.Registry, obs.Trace)
		if err != nil {
			return nil, fmt.Errorf("debug server: %w", err)
		}
		obs.Server = srv
		fmt.Fprintf(w, "debug server listening on http://%s\n", srv.Addr())
	}
	return obs, nil
}

// Close shuts down the debug server, if one is running.
func (o *Observability) Close() {
	if o.Server != nil {
		o.Server.Close()
	}
}
