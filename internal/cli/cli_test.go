package cli

import (
	"encoding/json"
	"flag"
	"io"
	"strings"
	"testing"
	"time"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	c := NewConfig()
	c.Seed = 42
	c.Compilers = []string{"groovyc", "javac"}
	c.Chaos = 0.1
	c.StateDir = "/tmp/should-not-serialize"
	raw, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "should-not-serialize") {
		t.Error("process-local StateDir leaked into the JSON surface")
	}
	var back Config
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	back.StateDir = c.StateDir // json:"-" by design
	if back.Seed != 42 || back.Programs != c.Programs ||
		time.Duration(back.CompileTimeout) != 10*time.Second ||
		len(back.Compilers) != 2 || back.Chaos != 0.1 {
		t.Errorf("round trip lost fields: %+v", back)
	}
}

func TestDurationDecodesStringsAndNumbers(t *testing.T) {
	var c Config
	if err := json.Unmarshal([]byte(`{"compile_timeout":"1500ms"}`), &c); err != nil {
		t.Fatal(err)
	}
	if time.Duration(c.CompileTimeout) != 1500*time.Millisecond {
		t.Errorf("string form: %v", time.Duration(c.CompileTimeout))
	}
	if err := json.Unmarshal([]byte(`{"compile_timeout":2000000000}`), &c); err != nil {
		t.Fatal(err)
	}
	if time.Duration(c.CompileTimeout) != 2*time.Second {
		t.Errorf("number form: %v", time.Duration(c.CompileTimeout))
	}
	if err := json.Unmarshal([]byte(`{"compile_timeout":"soon"}`), &c); err == nil {
		t.Error("bad duration accepted")
	}
	if err := json.Unmarshal([]byte(`{"compile_timeout":true}`), &c); err == nil {
		t.Error("bool duration accepted")
	}
}

func TestRegisterCampaignFlagsBuildsOptions(t *testing.T) {
	cfg := NewConfig()
	cfg.Programs = 100 // caller-adjusted default, like cmd/hephaestus
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	cfg.RegisterCampaignFlags(fs)
	err := fs.Parse([]string{
		"-seed", "9", "-n", "33", "-workers", "4", "-chaos", "0.05",
		"-compile-timeout", "3s", "-retries", "1", "-state", "/tmp/x", "-resume",
	})
	if err != nil {
		t.Fatal(err)
	}
	opts, err := cfg.CampaignOptions()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Seed != 9 || opts.Programs != 33 || opts.Workers != 4 {
		t.Errorf("basic fields: %+v", opts)
	}
	if !opts.Mutate || opts.StateDir != "/tmp/x" || !opts.Resume {
		t.Errorf("durability fields: %+v", opts)
	}
	if opts.Harness.Timeout != 3*time.Second || opts.Harness.Retries != 1 ||
		opts.Harness.Seed != 9 || opts.Harness.BreakerThreshold != 10 {
		t.Errorf("harness projection: %+v", opts.Harness)
	}
	if !opts.Harness.DoubleCompile {
		t.Error("chaos run did not enable the double-compile probe")
	}
	if opts.Chaos == nil || opts.Chaos.PanicRate != 0.05 || opts.Chaos.Seed != 9 {
		t.Errorf("chaos projection: %+v", opts.Chaos)
	}
	// No chaos: no injector, no double compile.
	plain := NewConfig()
	popts, err := plain.CampaignOptions()
	if err != nil {
		t.Fatal(err)
	}
	if popts.Chaos != nil || popts.Harness.DoubleCompile {
		t.Error("chaos artifacts present on a chaos-free config")
	}
}

func TestResolveCompilers(t *testing.T) {
	all, err := (&Config{}).ResolveCompilers()
	if err != nil || len(all) != 3 {
		t.Fatalf("empty list: %v, %d compilers", err, len(all))
	}
	one, err := (&Config{Compilers: []string{"kotlinc"}}).ResolveCompilers()
	if err != nil || len(one) != 1 || one[0].Name() != "kotlinc" {
		t.Fatalf("named lookup: %v, %v", err, one)
	}
	if _, err := (&Config{Compilers: []string{"gcc"}}).ResolveCompilers(); err == nil {
		t.Error("unknown compiler accepted")
	}
}

func TestValidateBounds(t *testing.T) {
	ok := NewConfig()
	if err := ok.Validate(1000, 16); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []Config{
		{Programs: 0},
		{Programs: 2000},
		{Programs: 5, Workers: -1},
		{Programs: 5, Workers: 99},
		{Programs: 5, Chaos: 1.5},
		{Programs: 5, Retries: -2},
		{Programs: 5, CompileTimeout: Duration(-time.Second)},
		{Programs: 5, Compilers: []string{"tcc"}},
	}
	for i, c := range bad {
		if err := c.Validate(1000, 16); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestStartObservabilityDisabledByDefault(t *testing.T) {
	obs, err := NewConfig().StartObservability(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()
	if obs.Registry != nil || obs.Trace != nil || obs.Server != nil {
		t.Errorf("observability wired without being asked: %+v", obs)
	}
	c := NewConfig()
	c.Heartbeat = time.Second
	obs2, err := c.StartObservability(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer obs2.Close()
	if obs2.Registry == nil || obs2.Trace == nil {
		t.Error("heartbeat run got no registry/trace")
	}
	if obs2.Server != nil {
		t.Error("debug server started without -debug-addr")
	}
}
