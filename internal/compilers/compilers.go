// Package compilers implements the simulated compilers under test:
// javac, kotlinc, and groovyc stand-ins. Each wraps the reference type
// checker (internal/checker) — its "compiler codebase", instrumented with
// coverage probes — and overlays a seeded bug catalog (internal/bugs).
//
// Compilation runs the reference checker to obtain the ground-truth
// verdict, computes the program's trigger evidence, and applies the first
// firing bugs: a crash bug aborts compilation with an internal error, a
// UCTE bug makes the compiler reject a well-typed program, and a URB bug
// makes it accept an ill-typed one. The Result records the triggered bugs
// so campaign accounting has ground truth, exactly like a real campaign's
// issue tracker does after developers triage.
package compilers

import (
	"context"
	"fmt"
	"regexp"

	"repro/internal/bugs"
	"repro/internal/checker"
	"repro/internal/coverage"
	"repro/internal/governor"
	"repro/internal/ir"
	"repro/internal/types"
)

// Status is a compilation outcome.
type Status int

const (
	// OK: the program compiled.
	OK Status = iota
	// Rejected: the compiler reported type errors.
	Rejected
	// Crashed: the compiler threw an internal error.
	Crashed
	// TimedOut: the compiler hung past the harness watchdog's deadline.
	// Synthesized by internal/harness, never by the simulated compilers
	// themselves; a hang is a reportable bug distinct from a crash.
	TimedOut
	// ResourceExhausted: the resource governor's deterministic fuel or
	// recursion-depth budget ran out mid-check. Unlike TimedOut, this is a
	// pure function of the program and the configured budget — the same
	// program exhausts at the same step on every machine — so it can be
	// journaled, deduplicated, and replayed byte-identically.
	ResourceExhausted
)

func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Rejected:
		return "rejected"
	case Crashed:
		return "crashed"
	case TimedOut:
		return "timed out"
	case ResourceExhausted:
		return "resource exhausted"
	default:
		return fmt.Sprintf("unknown(%d)", int(s))
	}
}

// Result is the outcome of compiling one program.
type Result struct {
	Status      Status
	Diagnostics []string
	// Triggered lists the seeded bugs this compilation hit (ground truth
	// for campaign accounting; a real campaign learns this only after
	// reporting and triage).
	Triggered []*bugs.Bug
	// ReferenceOK is the reference checker's verdict: what a correct
	// compiler would have said.
	ReferenceOK bool
}

// Compiler simulates one JVM compiler.
type Compiler struct {
	name     string
	language string
	catalog  []*bugs.Bug
	versions []string
	builtins *types.Builtins
	// packages maps the neutral checker probe regions onto this
	// compiler's package naming, for the Figure 9 breakdown.
	packages map[string]string
}

// Name returns the compiler's name ("javac", "kotlinc", "groovyc").
func (c *Compiler) Name() string { return c.name }

// Language returns the translator language the compiler consumes.
func (c *Compiler) Language() string { return c.language }

// Catalog exposes the seeded bug catalog (ground truth).
func (c *Compiler) Catalog() []*bugs.Bug { return c.catalog }

// Versions lists the stable versions; the development master is the
// implicit index len(Versions()).
func (c *Compiler) Versions() []string { return c.versions }

// MasterVersion returns the index denoting the development master.
func (c *Compiler) MasterVersion() int { return len(c.versions) }

// PackageFor maps a neutral probe region ("resolve", "types", ...) to the
// compiler's package name ("resolve.calls.inference", "stc", ...).
func (c *Compiler) PackageFor(region string) string {
	if p, ok := c.packages[region]; ok {
		return p
	}
	return region
}

// Javac returns the simulated OpenJDK Java compiler.
func Javac() *Compiler {
	spec := bugs.JavacSpec()
	return &Compiler{
		name:     "javac",
		language: "java",
		catalog:  bugs.Build(spec),
		versions: versionsN("jdk-", 8, spec.StableVersions),
		builtins: types.NewBuiltins(),
		packages: map[string]string{
			"resolve": "comp.Resolve",
			"infer":   "comp.Infer",
			"types":   "code.Types",
			"stc":     "comp.Attr",
			"code":    "code.*",
		},
	}
}

// Kotlinc returns the simulated Kotlin compiler.
func Kotlinc() *Compiler {
	spec := bugs.KotlincSpec()
	return &Compiler{
		name:     "kotlinc",
		language: "kotlin",
		catalog:  bugs.Build(spec),
		versions: kotlinVersions(spec.StableVersions),
		builtins: types.NewBuiltins(),
		packages: map[string]string{
			"resolve": "resolve.calls",
			"infer":   "resolve.calls.inference",
			"types":   "types",
			"stc":     "resolve",
			"code":    "backend",
		},
	}
}

// Groovyc returns the simulated Groovy compiler.
func Groovyc() *Compiler {
	spec := bugs.GroovycSpec()
	return &Compiler{
		name:     "groovyc",
		language: "groovy",
		catalog:  bugs.Build(spec),
		versions: versionsN("groovy-2.", 0, spec.StableVersions),
		builtins: types.NewBuiltins(),
		packages: map[string]string{
			"resolve": "stc.StaticTypeCheckingSupport",
			"infer":   "stc.StaticTypeCheckingVisitor",
			"types":   "stc",
			"stc":     "stc",
			"code":    "classgen",
		},
	}
}

// All returns the three simulated compilers in the paper's order.
func All() []*Compiler {
	return []*Compiler{Groovyc(), Kotlinc(), Javac()}
}

func versionsN(prefix string, start, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, start+i)
	}
	return out
}

func kotlinVersions(n int) []string {
	out := make([]string, n)
	majors := []string{"1.0", "1.1", "1.2", "1.3", "1.4", "1.5", "1.6"}
	for i := range out {
		out[i] = majors[i%len(majors)] + fmt.Sprintf(".%d", i/len(majors))
	}
	return out
}

// Compile compiles the program at the development master.
func (c *Compiler) Compile(p *ir.Program, cov coverage.Recorder) *Result {
	return c.CompileAtVersion(p, c.MasterVersion(), cov)
}

// CompileContext compiles the program at the development master under the
// resource budget carried by ctx (see internal/governor). A nil/absent
// budget is unmetered, matching Compile.
func (c *Compiler) CompileContext(ctx context.Context, p *ir.Program, cov coverage.Recorder) (*Result, error) {
	return c.CompileAtVersionContext(ctx, p, c.MasterVersion(), cov)
}

// CompileAtVersion compiles the program as the given compiler version
// would: only bugs affecting that version can fire. Coverage probes (may
// be nil) observe the underlying checker — the simulated compiler's
// codebase.
func (c *Compiler) CompileAtVersion(p *ir.Program, version int, cov coverage.Recorder) *Result {
	res, err := c.CompileAtVersionContext(context.Background(), p, version, cov)
	if err != nil {
		// Only a bound, cancelled context produces an error; a background
		// context never cancels.
		panic(err)
	}
	return res
}

// CompileAtVersionContext is CompileAtVersion under the resource budget
// carried by ctx. When the governor halts the check:
//
//   - a cancelled context surfaces as (nil, ctx.Err()) so the harness
//     classifies it like any other abandoned invocation (timeout/abort);
//   - fuel or depth exhaustion yields a deterministic ResourceExhausted
//     Result. The bug overlay is skipped: the reference verdict is
//     unknown, so no accept/reject-flipping bug can meaningfully fire.
func (c *Compiler) CompileAtVersionContext(ctx context.Context, p *ir.Program, version int, cov coverage.Recorder) (*Result, error) {
	if cov == nil {
		cov = coverage.Nop{}
	}
	gov := governor.FromContext(ctx)
	res := checker.Check(p, c.builtins, checker.Options{Probes: cov, Budget: gov})
	if bail := res.Bailout; bail != nil {
		if bail.Reason == governor.Cancelled {
			err := bail.Err
			if err == nil {
				err = ctx.Err()
			}
			if err == nil {
				err = context.Canceled
			}
			return nil, err
		}
		return &Result{
			Status:      ResourceExhausted,
			Diagnostics: []string{fmt.Sprintf("resource governor: %s", bail)},
		}, nil
	}
	evidence := bugs.Evidence{
		WellTyped:    res.OK(),
		OmittedTypes: bugs.OmitsTypes(p),
		Signature:    bugs.Signature(p),
	}
	out := &Result{ReferenceOK: res.OK()}
	for _, b := range c.catalog {
		if !b.AffectsVersion(version) || !b.Fires(evidence) {
			continue
		}
		out.Triggered = append(out.Triggered, b)
	}
	// A crash dominates every other outcome.
	for _, b := range out.Triggered {
		if b.Symptom == bugs.Crash {
			out.Status = Crashed
			out.Diagnostics = append(out.Diagnostics, b.Diagnostic())
			return out, nil
		}
	}
	if res.OK() {
		// Correct outcome is acceptance; a UCTE bug flips it.
		for _, b := range out.Triggered {
			if b.Symptom == bugs.UCTE {
				out.Status = Rejected
				out.Diagnostics = append(out.Diagnostics, b.Diagnostic())
				return out, nil
			}
		}
		out.Status = OK
		return out, nil
	}
	// Correct outcome is rejection; a URB bug silently accepts.
	for _, b := range out.Triggered {
		if b.Symptom == bugs.URB {
			out.Status = OK
			out.Diagnostics = append(out.Diagnostics, b.Diagnostic())
			return out, nil
		}
	}
	out.Status = Rejected
	for _, d := range res.Diags {
		out.Diagnostics = append(out.Diagnostics, d.String())
	}
	return out, nil
}

// CompileBatch compiles a batch of programs in one (simulated) compiler
// invocation — the Section 3.5 batching optimization. In the real tool a
// batch shares one JVM bootstrap; here the shared cost is the coverage
// recorder and the invocation accounting. Programs must carry distinct
// package names (GenerateBatch guarantees this); a conflict aborts the
// whole batch the way a real compiler invocation would.
//
// CompileBatch is unmetered; budgeted or cancellable batches go through
// CompileBatchContext.
func (c *Compiler) CompileBatch(batch []*ir.Program, cov coverage.Recorder) ([]*Result, error) {
	return c.CompileBatchContext(context.Background(), batch, cov)
}

// CompileBatchContext is CompileBatch under the resource budget and
// cancellation carried by ctx: every program in the batch compiles
// through CompileAtVersionContext, so one shared fuel/depth budget
// meters the whole batch exactly as it would the equivalent sequence of
// single CompileContext calls, and cancellation aborts the remainder.
// The first cancellation error aborts the batch (like a real compiler
// invocation dying mid-run); per-program governor exhaustion is not an
// error — it yields that program's ResourceExhausted Result and the
// batch continues, since the budget position is deterministic either
// way.
func (c *Compiler) CompileBatchContext(ctx context.Context, batch []*ir.Program, cov coverage.Recorder) ([]*Result, error) {
	seen := map[string]bool{}
	for _, p := range batch {
		if p.Package != "" && seen[p.Package] {
			return nil, fmt.Errorf("%s: conflicting declarations: duplicate package %q in batch",
				c.name, p.Package)
		}
		seen[p.Package] = true
	}
	out := make([]*Result, len(batch))
	for i, p := range batch {
		res, err := c.CompileAtVersionContext(ctx, p, c.MasterVersion(), cov)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// Crash detection mirrors the paper's per-language detectors: "a
// regular expression that distinguishes compiler crashes from compiler
// diagnostic messages" (Section 3.6). The patterns are anchored to the
// two shapes a crash actually takes here — a sandbox-captured panic and
// a catalog crash banner — so an ordinary rejection diagnostic that
// merely quotes the words "internal error" is never misclassified.
var (
	// sandboxCrashPattern matches the diagnostic the harness sandbox
	// synthesizes when a compiler panics; language-neutral because the
	// sandbox sits above every compiler.
	sandboxCrashPattern = regexp.MustCompile(`^internal error: panic: `)
	// crashPatterns holds each compiler's anchored crash-banner detector.
	crashPatterns = map[string]*regexp.Regexp{}
)

func init() {
	for _, name := range []string{"javac", "kotlinc", "groovyc"} {
		crashPatterns[name] = regexp.MustCompile(`^` + name + `: internal error: exception in \S+ phase \[`)
	}
}

// IsCrashOutputFor reports whether diag is a crash banner of the named
// compiler (or a sandbox-captured panic, which any compiler can emit).
func IsCrashOutputFor(compiler, diag string) bool {
	if sandboxCrashPattern.MatchString(diag) {
		return true
	}
	re := crashPatterns[compiler]
	return re != nil && re.MatchString(diag)
}

// IsCrashOutput reports whether diag is a crash banner of any compiler
// under test.
func IsCrashOutput(diag string) bool {
	if sandboxCrashPattern.MatchString(diag) {
		return true
	}
	for _, re := range crashPatterns {
		if re.MatchString(diag) {
			return true
		}
	}
	return false
}
