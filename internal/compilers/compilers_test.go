package compilers

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/bugs"
	"repro/internal/coverage"
	"repro/internal/generator"
	"repro/internal/governor"
	"repro/internal/ir"
	"repro/internal/mutation"
	"repro/internal/types"
)

func TestCompilerIdentities(t *testing.T) {
	all := All()
	if len(all) != 3 {
		t.Fatalf("want 3 compilers, got %d", len(all))
	}
	wantSizes := map[string]int{"groovyc": 113, "kotlinc": 32, "javac": 11}
	wantLangs := map[string]string{"groovyc": "groovy", "kotlinc": "kotlin", "javac": "java"}
	for _, c := range all {
		if got := len(c.Catalog()); got != wantSizes[c.Name()] {
			t.Errorf("%s catalog size = %d, want %d", c.Name(), got, wantSizes[c.Name()])
		}
		if c.Language() != wantLangs[c.Name()] {
			t.Errorf("%s language = %s", c.Name(), c.Language())
		}
		if len(c.Versions()) == 0 {
			t.Errorf("%s has no versions", c.Name())
		}
		if c.MasterVersion() != len(c.Versions()) {
			t.Errorf("%s master index mismatch", c.Name())
		}
	}
}

func TestCorrectProgramsCompileWithoutBugHits(t *testing.T) {
	b := types.NewBuiltins()
	p := &ir.Program{Decls: []ir.Decl{
		&ir.FuncDecl{Name: "f", Ret: b.Int, Body: &ir.Const{Type: b.Int}},
	}}
	for _, c := range All() {
		res := c.Compile(p, nil)
		if res.Status != OK {
			t.Errorf("%s rejected a trivial program: %v", c.Name(), res.Diagnostics)
		}
		if !res.ReferenceOK {
			t.Errorf("%s reference verdict wrong", c.Name())
		}
	}
}

func TestIllTypedProgramsRejected(t *testing.T) {
	b := types.NewBuiltins()
	p := &ir.Program{Decls: []ir.Decl{
		&ir.FuncDecl{Name: "f", Ret: b.Int, Body: &ir.Const{Type: b.String}},
	}}
	for _, c := range All() {
		res := c.Compile(p, nil)
		if res.ReferenceOK {
			t.Fatalf("%s: reference checker should reject", c.Name())
		}
		// Unless a soundness bug fires (possible but rare for this tiny
		// program), the compiler rejects.
		if res.Status == OK && len(res.Triggered) == 0 {
			t.Errorf("%s accepted an ill-typed program without a bug firing", c.Name())
		}
	}
}

// TestCampaignFindsSeededBugs runs a miniature fuzzing loop and checks
// that all three techniques discover bugs of their designated classes.
func TestCampaignFindsSeededBugs(t *testing.T) {
	comp := Groovyc()
	found := map[string]*bugs.Bug{}
	byClass := map[bugs.TriggerClass]int{}
	record := func(res *Result) {
		for _, bg := range res.Triggered {
			if found[bg.ID] == nil {
				found[bg.ID] = bg
				byClass[bg.Class]++
			}
		}
	}
	for seed := int64(0); seed < 120; seed++ {
		g := generator.New(generator.DefaultConfig().WithSeed(seed))
		p := g.Generate()
		record(comp.Compile(p, nil))
		tem, _ := mutation.TypeErasure(p, g.Builtins())
		record(comp.Compile(tem, nil))
		if tom, _ := mutation.TypeOverwriting(p, g.Builtins(), rand.New(rand.NewSource(seed))); tom != nil {
			record(comp.Compile(tom, nil))
		}
	}
	if len(found) == 0 {
		t.Fatal("the campaign found no seeded bugs at all")
	}
	if byClass[bugs.GeneratorClass] == 0 {
		t.Error("no generator-class bugs found")
	}
	if byClass[bugs.InferenceClass] == 0 {
		t.Error("no inference-class bugs found (TEM ineffective)")
	}
	if byClass[bugs.SoundnessClass] == 0 {
		t.Error("no soundness-class bugs found (TOM ineffective)")
	}
	t.Logf("mini campaign: %d distinct bugs (%d generator, %d inference, %d soundness)",
		len(found), byClass[bugs.GeneratorClass], byClass[bugs.InferenceClass], byClass[bugs.SoundnessClass])
}

// TestTechniqueGatingHolds: generator output (fully annotated) must never
// trigger inference-class bugs, and well-typed inputs never soundness
// bugs — the mechanism behind Figure 7c.
func TestTechniqueGatingHolds(t *testing.T) {
	comp := Groovyc()
	for seed := int64(0); seed < 60; seed++ {
		g := generator.New(generator.DefaultConfig().WithSeed(seed))
		p := g.Generate()
		res := comp.Compile(p, nil)
		for _, bg := range res.Triggered {
			if bg.Class == bugs.InferenceClass {
				t.Errorf("seed %d: generator program triggered inference bug %s", seed, bg.ID)
			}
			if bg.Class == bugs.SoundnessClass || bg.Class == bugs.CombinedClass {
				t.Errorf("seed %d: well-typed program triggered %s bug %s", seed, bg.Class, bg.ID)
			}
		}
	}
}

func TestVersionedCompilation(t *testing.T) {
	comp := Groovyc()
	// Find a master-only bug and a long-standing bug.
	var masterOnly, longStanding *bugs.Bug
	for _, bg := range comp.Catalog() {
		if bg.Symptom != bugs.UCTE {
			continue
		}
		if bg.AffectedStableCount(len(comp.Versions())) == 0 && masterOnly == nil {
			masterOnly = bg
		}
		if bg.AffectedStableCount(len(comp.Versions())) == len(comp.Versions()) && longStanding == nil {
			longStanding = bg
		}
	}
	if masterOnly == nil || longStanding == nil {
		t.Fatal("catalog should contain both master-only and long-standing UCTE bugs")
	}
	if masterOnly.AffectsVersion(0) {
		t.Error("master-only bug must not affect the oldest stable version")
	}
	if !masterOnly.AffectsVersion(comp.MasterVersion()) {
		t.Error("master-only bug must affect master")
	}
	if !longStanding.AffectsVersion(0) || !longStanding.AffectsVersion(comp.MasterVersion()) {
		t.Error("long-standing bug must affect every version")
	}
}

func TestCoverageProbesFlowThroughCompiler(t *testing.T) {
	g := generator.New(generator.DefaultConfig().WithSeed(1))
	p := g.Generate()
	cov := coverage.NewCollector()
	Kotlinc().Compile(p, cov)
	lines, funcs, branches := cov.Counts()
	if lines == 0 || funcs == 0 || branches == 0 {
		t.Errorf("expected coverage, got %d/%d/%d", lines, funcs, branches)
	}
	// Region mapping for the Figure 9 breakdown.
	k := Kotlinc()
	if k.PackageFor("infer") != "resolve.calls.inference" {
		t.Errorf("kotlinc infer package = %s", k.PackageFor("infer"))
	}
	if Groovyc().PackageFor("stc") != "stc" {
		t.Errorf("groovyc stc package = %s", Groovyc().PackageFor("stc"))
	}
	if Javac().PackageFor("resolve") != "comp.Resolve" {
		t.Errorf("javac resolve package = %s", Javac().PackageFor("resolve"))
	}
	if Javac().PackageFor("unknown") != "unknown" {
		t.Error("unknown regions pass through")
	}
}

// TestIsCrashOutput pins the anchored per-language crash detector
// against every crash diagnostic the three bug catalogs can actually
// emit, the sandbox's synthesized panic banner, and near-miss rejection
// diagnostics that merely quote the words "internal error" — the shape
// the old substring detector misclassified.
func TestIsCrashOutput(t *testing.T) {
	if !IsCrashOutput("kotlinc: internal error: exception in types phase [X]") {
		t.Error("crash output not detected")
	}
	if IsCrashOutput("type mismatch: inferred type is Int") {
		t.Error("diagnostic misclassified as crash")
	}
	// Every crash-symptom bug in every catalog must be detected, and
	// attributed to its own compiler only; every UCTE/URB diagnostic
	// must not be.
	crashes, others := 0, 0
	for _, comp := range All() {
		for _, b := range comp.Catalog() {
			diag := b.Diagnostic()
			if b.Symptom == bugs.Crash {
				crashes++
				if !IsCrashOutput(diag) {
					t.Errorf("catalog crash not detected: %q", diag)
				}
				if !IsCrashOutputFor(comp.Name(), diag) {
					t.Errorf("crash not attributed to %s: %q", comp.Name(), diag)
				}
				for _, other := range All() {
					if other.Name() != comp.Name() && IsCrashOutputFor(other.Name(), diag) {
						t.Errorf("%s crash misattributed to %s: %q", comp.Name(), other.Name(), diag)
					}
				}
				continue
			}
			others++
			if IsCrashOutput(diag) {
				t.Errorf("%s diagnostic misclassified as crash: %q", b.Symptom, diag)
			}
		}
	}
	if crashes == 0 || others == 0 {
		t.Fatalf("catalog coverage too thin: %d crash, %d non-crash diagnostics", crashes, others)
	}
	// The sandbox's synthesized panic banner is a crash for any compiler.
	if !IsCrashOutput("internal error: panic: runtime error: index out of range") {
		t.Error("sandbox panic banner not detected")
	}
	if !IsCrashOutputFor("javac", "internal error: panic: boom") {
		t.Error("sandbox panic banner must attribute to any compiler")
	}
	// Near-misses: ordinary diagnostics quoting "internal error"
	// mid-string, wrong-position banners, unknown compilers.
	for _, diag := range []string{
		"kotlinc: cannot resolve symbol; report an internal error if this persists",
		"warning: internal errors are reported at https://example.invalid",
		"note: see internal error: exception in types phase [X] (quoted from another run)",
		"javac: internal error: exception in  phase [X]", // no phase word
		"scalac: internal error: exception in types phase [X]",
	} {
		if IsCrashOutput(diag) {
			t.Errorf("near-miss misclassified as crash: %q", diag)
		}
	}
	if IsCrashOutputFor("kotlinc", "javac: internal error: exception in types phase [B]") {
		t.Error("javac banner must not attribute to kotlinc")
	}
}

func TestDeterministicCompilation(t *testing.T) {
	g := generator.New(generator.DefaultConfig().WithSeed(9))
	p := g.Generate()
	c1 := Groovyc().Compile(p, nil)
	c2 := Groovyc().Compile(p, nil)
	if c1.Status != c2.Status || len(c1.Triggered) != len(c2.Triggered) {
		t.Error("compilation must be deterministic")
	}
}

func TestCompileBatch(t *testing.T) {
	g := generator.New(generator.DefaultConfig().WithSeed(3))
	batch := g.GenerateBatch(4)
	comp := Kotlinc()
	results, err := comp.CompileBatch(batch, nil)
	if err != nil {
		t.Fatalf("batch failed: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if !r.ReferenceOK {
			t.Errorf("batch program %d should be well-typed", i)
		}
	}
	// Conflicting packages abort the batch.
	batch[1].Package = batch[0].Package
	if _, err := comp.CompileBatch(batch, nil); err == nil {
		t.Error("duplicate packages must abort the batch")
	}
}

// TestCompileBatchContextHonorsGovernor pins the batched-compile
// governor fix: CompileBatchContext must exhaust a shared fuel budget
// at exactly the same step count as the equivalent sequence of single
// CompileContext calls. The old CompileBatch compiled each program
// under a background context, silently bypassing the budget.
func TestCompileBatchContextHonorsGovernor(t *testing.T) {
	g := generator.New(generator.DefaultConfig().WithSeed(3))
	batch := g.GenerateBatch(6)
	comp := Kotlinc()

	// Measure the batch's unconstrained appetite, then afford half.
	free := governor.New(1<<40, 0)
	if _, err := comp.CompileBatchContext(governor.WithBudget(context.Background(), free), batch, nil); err != nil {
		t.Fatalf("unmetered batch: %v", err)
	}
	fuel := free.Spent() / 2
	if fuel == 0 {
		t.Fatal("batch consumed no fuel; cannot exercise exhaustion")
	}

	govBatch := governor.New(fuel, 0)
	batched, err := comp.CompileBatchContext(governor.WithBudget(context.Background(), govBatch), batch, nil)
	if err != nil {
		t.Fatalf("metered batch: %v", err)
	}

	govSingle := governor.New(fuel, 0)
	ctx := governor.WithBudget(context.Background(), govSingle)
	singles := make([]*Result, len(batch))
	for i, p := range batch {
		if singles[i], err = comp.CompileContext(ctx, p, nil); err != nil {
			t.Fatalf("metered single %d: %v", i, err)
		}
	}

	exhausted := 0
	for i := range batch {
		if batched[i].Status != singles[i].Status {
			t.Errorf("program %d: batch status %v, singles status %v", i, batched[i].Status, singles[i].Status)
		}
		if batched[i].Status == ResourceExhausted {
			exhausted++
		}
	}
	if exhausted == 0 {
		t.Error("half the batch's fuel exhausted nothing; budget not shared across the batch")
	}
	if govBatch.Spent() != govSingle.Spent() {
		t.Errorf("batch spent %d steps, equivalent singles spent %d; paths must meter identically",
			govBatch.Spent(), govSingle.Spent())
	}
}

// TestCompileBatchContextCancellation: a cancelled context aborts the
// batch with the context's error, like a single CompileContext call.
func TestCompileBatchContextCancellation(t *testing.T) {
	g := generator.New(generator.DefaultConfig().WithSeed(5))
	batch := g.GenerateBatch(2)
	ctx, cancel := context.WithCancel(context.Background())
	gov := governor.New(1<<40, 0)
	gov.Bind(ctx)
	cancel()
	if _, err := Javac().CompileBatchContext(governor.WithBudget(ctx, gov), batch, nil); err == nil {
		t.Error("cancelled batch must surface the context error")
	}
}
