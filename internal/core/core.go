// Package core is the high-level façade over the Hephaestus reproduction:
// the Figure 3 pipeline as a single API. A Hephaestus value wires the
// program generator, the type-graph-based mutations (TEM and TOM), the
// language translators, the simulated compilers under test, and the test
// oracle, and exposes one-call entry points for generating, mutating,
// translating, and fuzzing.
//
// Typical use:
//
//	h := core.New(core.Config{Seed: 42})
//	tc := h.GenerateTestCase()               // program + TEM/TOM mutants
//	finding := h.Fuzz(200)                   // run a campaign
//	src := h.Translate(tc.Program, "kotlin") // concrete source text
package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/apisynth"
	"repro/internal/campaign"
	"repro/internal/compilers"
	"repro/internal/generator"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/mutation"
	"repro/internal/oracle"
	"repro/internal/reduce"
	"repro/internal/translate"
	"repro/internal/types"
)

// Config configures a Hephaestus instance.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Generator configures program generation; the zero value means the
	// paper's defaults.
	Generator generator.Config
	// Compilers under test; nil means the three simulated JVM compilers.
	Compilers []*compilers.Compiler
	// Oracle selects the fuzzing campaign's test oracle; the zero value
	// is the paper's derivation-based ground-truth oracle.
	Oracle campaign.OracleMode
	// Synth interleaves API-driven synthesized programs into fuzzing
	// campaigns on a seed-keyed cadence; the zero value disables it.
	Synth apisynth.Config
	// Workers is the per-stage worker count for fuzzing campaigns;
	// 0 means GOMAXPROCS.
	Workers int
	// Harness configures the resilient execution layer (watchdog
	// timeout, retries, circuit breakers) for fuzzing campaigns.
	Harness harness.Options
	// Chaos, when non-nil, injects seeded faults into every compile —
	// the harness's test rig.
	Chaos *harness.ChaosOptions
	// StateDir, when non-empty, makes fuzzing campaigns durable: units
	// are journaled there and the report is snapshotted, enabling
	// crash-safe resume and the cross-campaign bug corpus.
	StateDir string
	// Resume restores a previous campaign's state from StateDir.
	Resume bool
	// SnapshotEvery is the unit count between report snapshots; 0 means
	// the campaign default.
	SnapshotEvery int
	// SyncEvery is the journal record count between fsyncs; 0 means
	// every record.
	SyncEvery int
	// Metrics, when set, exports live campaign instruments through the
	// registry. Observation only.
	Metrics *metrics.Registry
	// Trace, when set, receives structured campaign events. Observation
	// only.
	Trace *metrics.Trace
}

// Hephaestus is the façade object.
type Hephaestus struct {
	cfg       Config
	builtins  *types.Builtins
	compilers []*compilers.Compiler
}

// New returns a configured Hephaestus instance.
func New(cfg Config) *Hephaestus {
	if cfg.Generator.MaxTopLevelDecls == 0 {
		gen := generator.DefaultConfig()
		gen.Seed = cfg.Generator.Seed
		cfg.Generator = gen
	}
	comps := cfg.Compilers
	if comps == nil {
		comps = compilers.All()
	}
	return &Hephaestus{cfg: cfg, builtins: types.NewBuiltins(), compilers: comps}
}

// Compilers returns the compilers under test.
func (h *Hephaestus) Compilers() []*compilers.Compiler { return h.compilers }

// TestCase bundles a generated program with its mutants and reports.
type TestCase struct {
	Seed    int64
	Program *ir.Program
	// TEM is the type-erasure mutant (nil when nothing was erasable).
	TEM       *ir.Program
	TEMReport *mutation.TEMReport
	// TOM is the type-overwriting mutant (nil when no point existed).
	TOM       *ir.Program
	TOMReport *mutation.TOMReport
	// REM is the resolution mutant (nil when no call site existed).
	REM       *ir.Program
	REMReport *mutation.REMReport
}

// GenerateTestCase produces a program for the configured seed along with
// its TEM and TOM mutants.
func (h *Hephaestus) GenerateTestCase() *TestCase {
	return h.GenerateTestCaseSeed(h.cfg.Seed)
}

// GenerateTestCaseSeed produces the test case for a specific seed.
func (h *Hephaestus) GenerateTestCaseSeed(seed int64) *TestCase {
	g := generator.New(h.cfg.Generator.WithSeed(seed))
	tc := &TestCase{Seed: seed, Program: g.Generate()}
	tem, temRep := mutation.TypeErasure(tc.Program, h.builtins)
	tc.TEMReport = temRep
	if temRep.Changed() {
		tc.TEM = tem
	}
	tom, tomRep := mutation.TypeOverwriting(tc.Program, h.builtins, rand.New(rand.NewSource(seed)))
	tc.TOM, tc.TOMReport = tom, tomRep
	rem, remRep := mutation.ResolutionMutation(tc.Program, h.builtins, rand.New(rand.NewSource(seed^0x9e3779b9)))
	tc.REM, tc.REMReport = rem, remRep
	return tc
}

// Translate renders a program in the given target language ("java",
// "kotlin", "groovy").
func (h *Hephaestus) Translate(p *ir.Program, language string) (string, error) {
	tr := translate.ByName(language)
	if tr == nil {
		return "", fmt.Errorf("core: unknown target language %q (supported: %v)",
			language, translate.Names())
	}
	return tr.Translate(p), nil
}

// Finding is one deduplicated bug discovered by Fuzz.
type Finding struct {
	BugID     string
	Compiler  string
	Symptom   string
	Technique string
	FirstSeed int64
}

// CampaignOptions projects the configuration onto campaign.Options for
// a fuzzing campaign of n programs.
func (h *Hephaestus) CampaignOptions(n int) campaign.Options {
	return campaign.Options{
		Seed:          h.cfg.Seed,
		Programs:      n,
		BatchSize:     20,
		Workers:       h.cfg.Workers,
		GenConfig:     h.cfg.Generator,
		Compilers:     h.compilers,
		Oracle:        h.cfg.Oracle,
		Synth:         h.cfg.Synth,
		Mutate:        true,
		Harness:       h.cfg.Harness,
		Chaos:         h.cfg.Chaos,
		StateDir:      h.cfg.StateDir,
		Resume:        h.cfg.Resume,
		SnapshotEvery: h.cfg.SnapshotEvery,
		SyncEvery:     h.cfg.SyncEvery,
		Metrics:       h.cfg.Metrics,
		Trace:         h.cfg.Trace,
	}
}

// FuzzCampaign returns an unstarted lifecycle campaign of n programs
// (plus mutants) against the configured compilers: the caller drives
// Start / Pause / Resume / Cancel / Wait and reads live progress from
// Status.
func (h *Hephaestus) FuzzCampaign(n int) *campaign.Campaign {
	return campaign.New(h.CampaignOptions(n))
}

// Fuzz runs a campaign of n programs (plus mutants) against the
// configured compilers and returns the deduplicated findings together
// with the raw campaign report.
func (h *Hephaestus) Fuzz(n int) ([]Finding, *campaign.Report) {
	findings, report, _ := h.FuzzContext(context.Background(), n)
	return findings, report
}

// FuzzContext is Fuzz with cancellation: a cancelled context stops the
// campaign pipeline promptly and returns the partial report with the
// context's error. Findings are sorted by compiler then bug ID.
//
// A shim over the lifecycle API: FuzzCampaign + Start + Wait.
func (h *Hephaestus) FuzzContext(ctx context.Context, n int) ([]Finding, *campaign.Report, error) {
	c := h.FuzzCampaign(n)
	if err := c.Start(ctx); err != nil {
		return nil, nil, err
	}
	report, err := c.Wait()
	return Findings(report), report, err
}

// Findings projects a campaign report's found bugs onto the flat
// Finding list, sorted by compiler then bug ID. A nil report yields
// nil.
func Findings(report *campaign.Report) []Finding {
	if report == nil {
		return nil
	}
	var out []Finding
	for _, rec := range report.Found {
		out = append(out, Finding{
			BugID:     rec.Bug.ID,
			Compiler:  rec.Bug.Compiler,
			Symptom:   rec.Bug.Symptom.String(),
			Technique: rec.Technique(),
			FirstSeed: rec.FirstSeed,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Compiler != out[j].Compiler {
			return out[i].Compiler < out[j].Compiler
		}
		return out[i].BugID < out[j].BugID
	})
	return out
}

// ReduceFor shrinks a program while the given compiler keeps triggering
// the given seeded bug. Probes run through the harness sandbox (see
// ReduceTarget).
func (h *Hephaestus) ReduceFor(p *ir.Program, comp *compilers.Compiler, bugID string) *ir.Program {
	return h.ReduceTarget(p, harness.WrapCompiler(comp), bugID)
}

// ReduceTarget shrinks a program while the target keeps triggering the
// given seeded bug. Every interestingness probe compiles through the
// configured harness, so a compiler that panics or hangs mid-reduction
// becomes a Crashed/TimedOut invocation — the candidate merely counts
// as uninteresting — instead of killing the reducer thousands of probes
// into a shrink.
func (h *Hephaestus) ReduceTarget(p *ir.Program, target harness.Target, bugID string) *ir.Program {
	sandbox := harness.New(h.cfg.Harness)
	probe := 0
	return reduce.Reduce(p, func(q *ir.Program) bool {
		probe++
		inv := sandbox.Compile(context.Background(), target, q, nil,
			harness.Key{Unit: -1, Input: probe})
		if inv.Outcome != harness.Completed || inv.Result == nil {
			return false
		}
		for _, b := range inv.Result.Triggered {
			if b.ID == bugID {
				return true
			}
		}
		return false
	})
}

// Judge compiles a program with the compiler and classifies the outcome
// against the oracle for the input kind.
func (h *Hephaestus) Judge(kind oracle.InputKind, comp *compilers.Compiler, p *ir.Program) (oracle.Verdict, *compilers.Result) {
	res := comp.Compile(p, nil)
	return oracle.Judge(kind, res), res
}
