package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/checker"
	"repro/internal/compilers"
	"repro/internal/coverage"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/oracle"
	"repro/internal/types"
)

func TestGenerateTestCase(t *testing.T) {
	h := New(Config{Seed: 11})
	tc := h.GenerateTestCase()
	if tc.Program == nil {
		t.Fatal("no program")
	}
	res := checker.Check(tc.Program, types.NewBuiltins(), checker.Options{})
	if !res.OK() {
		t.Fatalf("generated program ill-typed: %v", res.Diags)
	}
	if tc.TEM != nil {
		if res := checker.Check(tc.TEM, types.NewBuiltins(), checker.Options{}); !res.OK() {
			t.Errorf("TEM mutant ill-typed: %v", res.Diags)
		}
	}
	if tc.TOM != nil {
		if res := checker.Check(tc.TOM, types.NewBuiltins(), checker.Options{}); res.OK() {
			t.Error("TOM mutant should be ill-typed")
		}
	}
}

func TestTranslateAllLanguages(t *testing.T) {
	h := New(Config{Seed: 3})
	tc := h.GenerateTestCase()
	for _, lang := range []string{"java", "kotlin", "groovy"} {
		src, err := h.Translate(tc.Program, lang)
		if err != nil {
			t.Fatalf("%s: %v", lang, err)
		}
		if len(src) < 30 {
			t.Errorf("%s: output too short", lang)
		}
	}
	if _, err := h.Translate(tc.Program, "scala"); err == nil {
		t.Error("unknown language must error")
	} else if !strings.Contains(err.Error(), "scala") {
		t.Errorf("error should name the language: %v", err)
	}
}

func TestFuzzFindsBugs(t *testing.T) {
	h := New(Config{Seed: 0})
	findings, report := h.Fuzz(40)
	if len(findings) == 0 {
		t.Fatal("fuzzing found nothing")
	}
	if report.TotalFound() != len(findings) {
		t.Errorf("findings/report mismatch: %d vs %d", len(findings), report.TotalFound())
	}
	for _, f := range findings {
		if f.BugID == "" || f.Compiler == "" || f.Technique == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

func TestJudgeAndReduce(t *testing.T) {
	h := New(Config{Seed: 5})
	comp := h.Compilers()[0]
	// Find a seed whose program triggers some bug, then reduce it.
	for seed := int64(0); seed < 60; seed++ {
		tc := h.GenerateTestCaseSeed(seed)
		verdict, res := h.Judge(oracle.Generated, comp, tc.Program)
		if verdict == oracle.Pass || len(res.Triggered) == 0 {
			continue
		}
		bugID := res.Triggered[0].ID
		reduced := h.ReduceFor(tc.Program, comp, bugID)
		_, res2 := h.Judge(oracle.Generated, comp, reduced)
		stillFires := false
		for _, b := range res2.Triggered {
			if b.ID == bugID {
				stillFires = true
			}
		}
		if !stillFires {
			t.Fatalf("seed %d: reduction lost bug %s", seed, bugID)
		}
		return
	}
	t.Skip("no triggering seed in range")
}

// panicEveryNth delegates to a real compiler but panics on every nth
// compile — a compiler that falls over partway into a reduction.
type panicEveryNth struct {
	inner harness.Target
	n     int
	calls int
}

func (p *panicEveryNth) Name() string { return p.inner.Name() }

func (p *panicEveryNth) Compile(ctx context.Context, prog *ir.Program, cov coverage.Recorder) (*compilers.Result, error) {
	p.calls++
	if p.calls%p.n == 0 {
		panic("compiler segfault during reduction")
	}
	return p.inner.Compile(ctx, prog, cov)
}

func TestReduceSurvivesPanickingCompiler(t *testing.T) {
	h := New(Config{Seed: 5})
	comp := h.Compilers()[0]
	for seed := int64(0); seed < 60; seed++ {
		tc := h.GenerateTestCaseSeed(seed)
		verdict, res := h.Judge(oracle.Generated, comp, tc.Program)
		if verdict == oracle.Pass || len(res.Triggered) == 0 {
			continue
		}
		bugID := res.Triggered[0].ID
		// Every 3rd probe panics; the sandbox must turn each panic into
		// a Crashed invocation instead of killing the reducer, and the
		// reduction must still preserve the bug.
		flaky := &panicEveryNth{inner: harness.WrapCompiler(comp), n: 3}
		reduced := h.ReduceTarget(tc.Program, flaky, bugID)
		if flaky.calls == 0 {
			t.Fatal("reducer never probed the target")
		}
		_, res2 := h.Judge(oracle.Generated, comp, reduced)
		stillFires := false
		for _, b := range res2.Triggered {
			if b.ID == bugID {
				stillFires = true
			}
		}
		if !stillFires {
			t.Fatalf("seed %d: reduction under a panicking compiler lost bug %s", seed, bugID)
		}
		return
	}
	t.Skip("no triggering seed in range")
}
