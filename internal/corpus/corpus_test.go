package corpus

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/compilers"
	"repro/internal/types"
)

// TestPaperProgramsMatchGroundTruth verifies every replica of the paper's
// published test cases against the reference checker: the well-typed ones
// (rejected by buggy compilers — UCTE) must be accepted, the ill-typed
// ones (accepted by buggy compilers — URB) must be rejected.
func TestPaperProgramsMatchGroundTruth(t *testing.T) {
	for _, p := range PaperPrograms() {
		res := checker.Check(p.Program, types.NewBuiltins(), checker.Options{})
		if p.WellTyped && !res.OK() {
			t.Errorf("%s (%s): should be well-typed, got %v", p.ID, p.Figure, res.Diags)
		}
		if !p.WellTyped && res.OK() {
			t.Errorf("%s (%s): should be ill-typed but was accepted", p.ID, p.Figure)
		}
	}
}

func TestKT48765DiagnosticIsBoundViolation(t *testing.T) {
	p := PaperProgramByID("KT-48765")
	if p == nil {
		t.Fatal("missing KT-48765")
	}
	res := checker.Check(p.Program, types.NewBuiltins(), checker.Options{})
	if !res.HasKind(checker.BoundViolation) {
		t.Errorf("KT-48765 should yield a bound violation, got %v", res.Diags)
	}
}

func TestGroovy10127IsRigidParameterMismatch(t *testing.T) {
	p := PaperProgramByID("GROOVY-10127")
	res := checker.Check(p.Program, types.NewBuiltins(), checker.Options{})
	if !res.HasKind(checker.TypeMismatch) {
		t.Errorf("GROOVY-10127 should yield a type mismatch, got %v", res.Diags)
	}
}

func TestPaperProgramLookup(t *testing.T) {
	if PaperProgramByID("GROOVY-10080") == nil {
		t.Error("GROOVY-10080 missing")
	}
	if PaperProgramByID("NOPE") != nil {
		t.Error("unknown ID should return nil")
	}
	ids := map[string]bool{}
	for _, p := range PaperPrograms() {
		if ids[p.ID] {
			t.Errorf("duplicate paper program %s", p.ID)
		}
		ids[p.ID] = true
		if p.Program.Package == "" {
			t.Errorf("%s needs a package for batching", p.ID)
		}
	}
}

// TestSuiteIsWellTyped: a compiler's own test suite consists of programs
// it must accept; the reference checker agrees on all of them.
func TestSuiteIsWellTyped(t *testing.T) {
	for _, compiler := range []string{"groovyc", "kotlinc", "javac"} {
		suite := TestSuite(compiler)
		if len(suite) < 50 {
			t.Fatalf("%s suite too small: %d", compiler, len(suite))
		}
		for i, p := range suite {
			res := checker.Check(p, types.NewBuiltins(), checker.Options{})
			if !res.OK() {
				t.Fatalf("%s suite program %d is ill-typed: %v", compiler, i, res.Diags[0])
			}
		}
	}
}

func TestSuitesDifferAcrossCompilers(t *testing.T) {
	g := TestSuite("groovyc")
	k := TestSuite("kotlinc")
	if len(g) == 0 || len(k) == 0 {
		t.Fatal("empty suites")
	}
	// The generator blocks come from different reserved seed ranges.
	if len(g) == len(k) {
		last := len(g) - 1
		if g[last] == k[last] {
			t.Error("suites must not share program instances")
		}
	}
}

// TestPaperProgramsAgainstSimulatedCompilers: the replicas interact with
// the simulated compilers the way the originals did with the real ones —
// modulo which seeded bug happens to fire — but at minimum crash-free and
// deterministic.
func TestPaperProgramsAgainstSimulatedCompilers(t *testing.T) {
	for _, p := range PaperPrograms() {
		for _, c := range compilers.All() {
			r1 := c.Compile(p.Program, nil)
			r2 := c.Compile(p.Program, nil)
			if r1.Status != r2.Status {
				t.Errorf("%s on %s: nondeterministic", p.ID, c.Name())
			}
			if r1.ReferenceOK != p.WellTyped {
				t.Errorf("%s on %s: reference verdict %v, ground truth %v",
					p.ID, c.Name(), r1.ReferenceOK, p.WellTyped)
			}
		}
	}
}
