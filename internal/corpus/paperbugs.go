// Package corpus provides two fixed program collections: IR replicas of
// the paper's published bug-triggering programs (Figures 1, 2, 6 and
// 11a–11f), and a hand-written per-compiler "test suite" standing in for
// the compilers' own regression suites in the Figure 10 experiment.
package corpus

import (
	"repro/internal/ir"
	"repro/internal/types"
)

// PaperProgram is one of the paper's published reduced test cases.
type PaperProgram struct {
	// ID is the upstream issue id (GROOVY-10080, KT-48765, ...).
	ID string
	// Figure locates it in the paper.
	Figure string
	// Compiler names the affected compiler.
	Compiler string
	// WellTyped is the ground truth: whether a correct compiler accepts.
	WellTyped bool
	// FoundBy is the technique the paper credits.
	FoundBy string
	Program *ir.Program
}

// PaperPrograms returns the IR replicas of the paper's example programs.
// Each is checked by the test suite against the reference checker: the
// well-typed ones must be accepted, the ill-typed ones rejected with the
// expected diagnostic kind.
func PaperPrograms() []PaperProgram {
	return []PaperProgram{
		groovy10080(),
		kt48765(),
		figure6(),
		groovy10324(),
		groovy10308(),
		kt44082Shape(),
		groovy10127(),
		jdk8269348Shape(),
	}
}

// PaperProgramByID returns the replica with the given issue ID, or nil.
func PaperProgramByID(id string) *PaperProgram {
	for _, p := range PaperPrograms() {
		if p.ID == id {
			cp := p
			return &cp
		}
	}
	return nil
}

// groovy10080 is Figure 1: a well-typed program groovyc rejected because
// it inferred the type of closure().f as Object instead of B<A<Long>>.
//
//	class A<T> {}
//	class B<T>(val f: T)
//	fun test() { val closure = { B(A<Long>()) }; val x: A<Long> = closure().f }
func groovy10080() PaperProgram {
	b := types.NewBuiltins()
	aT := types.NewParameter("A", "T")
	classA := &ir.ClassDecl{Name: "A", TypeParams: []*types.Parameter{aT}, Open: true}
	ctorA := classA.Type().(*types.Constructor)
	bT := types.NewParameter("B", "T")
	classB := &ir.ClassDecl{
		Name:       "B",
		TypeParams: []*types.Parameter{bT},
		Fields:     []*ir.FieldDecl{{Name: "f", Type: bT}},
	}
	ctorB := classB.Type().(*types.Constructor)
	test := &ir.FuncDecl{Name: "test", Ret: b.Unit, Body: &ir.Block{
		Stmts: []ir.Node{
			&ir.VarDecl{Name: "closure", Init: &ir.Lambda{Body: &ir.New{
				Class: ctorB,
				Args:  []ir.Expr{&ir.New{Class: ctorA, TypeArgs: []types.Type{b.Long}}},
			}}},
			&ir.VarDecl{
				Name:     "x",
				DeclType: ctorA.Apply(b.Long),
				Init:     &ir.FieldAccess{Recv: &ir.Call{Name: "closure"}, Field: "f"},
			},
		},
		Value: &ir.Const{Type: b.Unit},
	}}
	return PaperProgram{
		ID: "GROOVY-10080", Figure: "Figure 1", Compiler: "groovyc",
		WellTyped: true, FoundBy: "generator",
		Program: &ir.Program{Package: "groovy10080", Decls: []ir.Decl{classA, classB, test}},
	}
}

// kt48765 is Figure 2: an ill-typed program kotlinc accepted. T2 (bounded
// by String) is instantiated as Number, violating its bound.
//
//	fun <T1 : Number> foo(x: T1) {}
//	fun <T2 : String> bar(): T2 = ("" as T2)
//	fun test() { foo(bar()) }
func kt48765() PaperProgram {
	b := types.NewBuiltins()
	t1 := &types.Parameter{Owner: "foo", ParamName: "T1", Bound: b.Number}
	foo := &ir.FuncDecl{
		Name:       "foo",
		TypeParams: []*types.Parameter{t1},
		Params:     []*ir.ParamDecl{{Name: "x", Type: t1}},
		Ret:        b.Unit,
		Body:       &ir.Const{Type: b.Unit},
	}
	t2 := &types.Parameter{Owner: "bar", ParamName: "T2", Bound: b.String}
	bar := &ir.FuncDecl{
		Name:       "bar",
		TypeParams: []*types.Parameter{t2},
		Ret:        t2,
		Body:       &ir.Cast{Expr: &ir.Const{Type: b.String}, Target: t2},
	}
	test := &ir.FuncDecl{Name: "test", Ret: b.Unit,
		Body: &ir.Call{Name: "foo", Args: []ir.Expr{&ir.Call{Name: "bar"}}}}
	return PaperProgram{
		ID: "KT-48765", Figure: "Figure 2", Compiler: "kotlinc",
		WellTyped: false, FoundBy: "TOM",
		Program: &ir.Program{Package: "kt48765", Decls: []ir.Decl{foo, bar, test}},
	}
}

// figure6 is the running example of Section 3.3.
func figure6() PaperProgram {
	b := types.NewBuiltins()
	aT := types.NewParameter("A", "T")
	classA := &ir.ClassDecl{Name: "A", TypeParams: []*types.Parameter{aT}, Open: true}
	ctorA := classA.Type().(*types.Constructor)
	bT := types.NewParameter("B", "T")
	classB := &ir.ClassDecl{
		Name:       "B",
		TypeParams: []*types.Parameter{bT},
		Super:      &ir.SuperRef{Type: ctorA.Apply(bT)},
		Fields:     []*ir.FieldDecl{{Name: "f", Type: ctorA.Apply(bT)}},
	}
	ctorB := classB.Type().(*types.Constructor)
	m := &ir.FuncDecl{
		Name: "m",
		Ret:  ctorA.Apply(b.String),
		Body: &ir.New{Class: ctorB, TypeArgs: []types.Type{b.String},
			Args: []ir.Expr{&ir.New{Class: ctorA, TypeArgs: []types.Type{b.String}}}},
	}
	return PaperProgram{
		ID: "FIG-6", Figure: "Figure 6", Compiler: "-",
		WellTyped: true, FoundBy: "-",
		Program: &ir.Program{Package: "fig6", Decls: []ir.Decl{classA, classB, m}},
	}
}

// groovy10324 is Figure 11a: groovyc's inference engine fails to
// instantiate foo's T from the diamond argument and infers Object.
//
//	class C<T>; class A { fun <T> foo(t: C<T>): C<T> }  (static in paper)
//	fun test() { val x: C<String> = A().foo(C()) }
func groovy10324() PaperProgram {
	b := types.NewBuiltins()
	cT := types.NewParameter("C", "T")
	classC := &ir.ClassDecl{Name: "C", TypeParams: []*types.Parameter{cT}, Open: true}
	ctorC := classC.Type().(*types.Constructor)
	fooT := types.NewParameter("foo", "T")
	classA := &ir.ClassDecl{Name: "A", Open: true, Methods: []*ir.FuncDecl{{
		Name:       "foo",
		TypeParams: []*types.Parameter{fooT},
		Params:     []*ir.ParamDecl{{Name: "t", Type: ctorC.Apply(fooT)}},
		Ret:        ctorC.Apply(fooT),
		Body:       &ir.VarRef{Name: "t"},
	}}}
	test := &ir.FuncDecl{Name: "test", Ret: b.Unit, Body: &ir.Block{
		Stmts: []ir.Node{&ir.VarDecl{
			Name:     "x",
			DeclType: ctorC.Apply(b.String),
			Init: &ir.Call{
				Recv: &ir.New{Class: classA.Type()},
				Name: "foo",
				Args: []ir.Expr{&ir.New{Class: ctorC}},
			},
		}},
		Value: &ir.Const{Type: b.Unit},
	}}
	return PaperProgram{
		ID: "GROOVY-10324", Figure: "Figure 11a", Compiler: "groovyc",
		WellTyped: true, FoundBy: "TEM",
		Program: &ir.Program{Package: "groovy10324", Decls: []ir.Decl{classC, classA, test}},
	}
}

// kt44082Shape is Figure 11d's shape: the type of an overriding method's
// conditional body is the least upper bound of two siblings implementing a
// common interface; kotlinc mistakenly approximated the intersection to
// Any and rejected the program. The IR replica checks that the LUB-based
// reference checker accepts it.
//
//	interface R<T>; interface W; interface J
//	open class A; class B : A(), R<W>; class E : A(), R<J>   — flattened to
//	open class A; class B : A(); class E : A()
//	fun foo(): A = if (true) B() else E()
func kt44082Shape() PaperProgram {
	b := types.NewBuiltins()
	classA := &ir.ClassDecl{Name: "A", Open: true}
	classB := &ir.ClassDecl{Name: "B", Super: &ir.SuperRef{Type: classA.Type()}}
	classE := &ir.ClassDecl{Name: "E", Super: &ir.SuperRef{Type: classA.Type()}}
	foo := &ir.FuncDecl{Name: "foo", Ret: classA.Type(), Body: &ir.If{
		Cond: &ir.Const{Type: b.Boolean},
		Then: &ir.New{Class: classB.Type()},
		Else: &ir.New{Class: classE.Type()},
	}}
	return PaperProgram{
		ID: "KT-44082", Figure: "Figure 11d", Compiler: "kotlinc",
		WellTyped: true, FoundBy: "TEM",
		Program: &ir.Program{Package: "kt44082", Decls: []ir.Decl{classA, classB, classE, foo}},
	}
}

// groovy10127 is Figure 11e: an ill-typed program groovyc compiled,
// breaking type safety at runtime (URB). Assigning an A to a variable of
// rigid type T (T : A's subtype domain) is a type error.
//
//	open class A; class B : A() { fun m() {} }
//	class Foo<T : A> { fun foo(x: T): T = { x = A(); x } }  — simplified:
//	fun <T : A> foo(x: T): T = (A() as?) ... modelled as returning A for T.
func groovy10127() PaperProgram {
	b := types.NewBuiltins()
	classA := &ir.ClassDecl{Name: "A", Open: true}
	classB := &ir.ClassDecl{Name: "B", Super: &ir.SuperRef{Type: classA.Type()}}
	tp := &types.Parameter{Owner: "foo", ParamName: "T", Bound: classA.Type()}
	// fun <T : A> foo(x: T): T = A()  — A is not a subtype of rigid T.
	foo := &ir.FuncDecl{
		Name:       "foo",
		TypeParams: []*types.Parameter{tp},
		Params:     []*ir.ParamDecl{{Name: "x", Type: tp}},
		Ret:        tp,
		Body:       &ir.New{Class: classA.Type()},
	}
	test := &ir.FuncDecl{Name: "test", Ret: b.Unit, Body: &ir.Block{
		Stmts: []ir.Node{&ir.Call{
			Name:     "foo",
			TypeArgs: []types.Type{classB.Type()},
			Args:     []ir.Expr{&ir.New{Class: classB.Type()}},
		}},
		Value: &ir.Const{Type: b.Unit},
	}}
	return PaperProgram{
		ID: "GROOVY-10127", Figure: "Figure 11e", Compiler: "groovyc",
		WellTyped: false, FoundBy: "TOM",
		Program: &ir.Program{Package: "groovy10127", Decls: []ir.Decl{classA, classB, foo, test}},
	}
}

// jdk8269348Shape is Figure 11f's shape: the least upper bound of a
// conditional between a T-typed value and a (K : T)-typed value must be T,
// and the program must compile; javac instead inferred double and rejected
// it.
//
//	fun <T : Double, K : T> test(): T = { val v = if (true) (null as T)
//	else (null as K); v }
func jdk8269348Shape() PaperProgram {
	b := types.NewBuiltins()
	tp := &types.Parameter{Owner: "test", ParamName: "T", Bound: b.Double}
	kp := &types.Parameter{Owner: "test", ParamName: "K", Bound: tp}
	test := &ir.FuncDecl{
		Name:       "test",
		TypeParams: []*types.Parameter{tp, kp},
		Ret:        tp,
		Body: &ir.Block{
			Stmts: []ir.Node{&ir.VarDecl{
				Name: "v",
				Init: &ir.If{
					Cond: &ir.Const{Type: b.Boolean},
					Then: &ir.Cast{Expr: &ir.Const{Type: types.Bottom{}}, Target: tp},
					Else: &ir.Cast{Expr: &ir.Const{Type: types.Bottom{}}, Target: kp},
				},
			}},
			Value: &ir.VarRef{Name: "v"},
		},
	}
	return PaperProgram{
		ID: "JDK-8269348", Figure: "Figure 11f", Compiler: "javac",
		WellTyped: true, FoundBy: "TEM",
		Program: &ir.Program{Package: "jdk8269348", Decls: []ir.Decl{test}},
	}
}

// groovy10308 is Figure 11c's shape: Groovy's flow typing. The program is
// well-typed — assigning null to x after reading x.p must not affect the
// earlier, correctly-typed read. groovyc erroneously used the
// flow-narrowed type at the wrong program point and rejected it.
//
//	class A<T>(var p: T)
//	fun test() { var x = A<String>("s"); val y = x.p; x = A<String>("t") }
func groovy10308() PaperProgram {
	b := types.NewBuiltins()
	aT := types.NewParameter("A", "T")
	classA := &ir.ClassDecl{
		Name:       "A",
		TypeParams: []*types.Parameter{aT},
		Fields:     []*ir.FieldDecl{{Name: "p", Type: aT, Mutable: true}},
	}
	ctorA := classA.Type().(*types.Constructor)
	test := &ir.FuncDecl{Name: "test", Ret: b.Unit, Body: &ir.Block{
		Stmts: []ir.Node{
			&ir.VarDecl{
				Name:    "x",
				Init:    &ir.New{Class: ctorA, TypeArgs: []types.Type{b.String}, Args: []ir.Expr{&ir.Const{Type: b.String}}},
				Mutable: true,
			},
			&ir.VarDecl{Name: "y", Init: &ir.FieldAccess{Recv: &ir.VarRef{Name: "x"}, Field: "p"}},
			&ir.Assign{
				Target: &ir.VarRef{Name: "x"},
				Value:  &ir.New{Class: ctorA, TypeArgs: []types.Type{b.String}, Args: []ir.Expr{&ir.Const{Type: b.String}}},
			},
		},
		Value: &ir.Const{Type: b.Unit},
	}}
	return PaperProgram{
		ID: "GROOVY-10308", Figure: "Figure 11c", Compiler: "groovyc",
		WellTyped: true, FoundBy: "TEM",
		Program: &ir.Program{Package: "groovy10308", Decls: []ir.Decl{classA, test}},
	}
}
