package corpus

import (
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/types"
)

// TestSuite returns the simulated compiler's own regression test suite for
// the Figure 10 experiment. A real compiler's suite is large and broad; we
// model it as a mix of hand-written basics, the paper's published
// regression programs, and a block of deterministic generator programs
// drawn from a reserved seed range (so campaign seeds never overlap it).
// Its defining property for RQ4 is breadth: it already covers most checker
// paths, so random programs add very little coverage.
func TestSuite(compiler string) []*ir.Program {
	var suite []*ir.Program
	suite = append(suite, basicPrograms()...)
	for _, p := range PaperPrograms() {
		if p.WellTyped {
			suite = append(suite, p.Program)
		}
	}
	// Reserved seed block 1_000_000+: disjoint from campaign seeds.
	base := int64(1_000_000)
	switch compiler {
	case "kotlinc":
		base = 1_100_000
	case "javac":
		base = 1_200_000
	}
	for seed := base; seed < base+60; seed++ {
		g := generator.New(generator.DefaultConfig().WithSeed(seed))
		suite = append(suite, g.Generate())
	}
	return suite
}

// basicPrograms are small hand-written programs exercising each language
// feature in isolation, like the smoke tests every compiler suite carries.
func basicPrograms() []*ir.Program {
	b := types.NewBuiltins()
	var out []*ir.Program

	// Constants and returns of every builtin.
	for _, t := range b.Defaultable() {
		out = append(out, &ir.Program{Decls: []ir.Decl{
			&ir.FuncDecl{Name: "f", Ret: t, Body: &ir.Const{Type: t}},
		}})
	}

	// Class with field access.
	box := &ir.ClassDecl{Name: "Box", Fields: []*ir.FieldDecl{{Name: "v", Type: b.Int}}}
	out = append(out, &ir.Program{Decls: []ir.Decl{
		box,
		&ir.FuncDecl{Name: "get", Ret: b.Int, Body: &ir.FieldAccess{
			Recv:  &ir.New{Class: box.Type(), Args: []ir.Expr{&ir.Const{Type: b.Int}}},
			Field: "v",
		}},
	}})

	// Parameterized class with explicit instantiation.
	pT := types.NewParameter("Pair", "T")
	pair := &ir.ClassDecl{Name: "Pair", TypeParams: []*types.Parameter{pT},
		Fields: []*ir.FieldDecl{{Name: "a", Type: pT}, {Name: "b", Type: pT}}}
	pairCtor := pair.Type().(*types.Constructor)
	out = append(out, &ir.Program{Decls: []ir.Decl{
		pair,
		&ir.FuncDecl{Name: "mk", Ret: pairCtor.Apply(b.String), Body: &ir.New{
			Class: pairCtor, TypeArgs: []types.Type{b.String},
			Args: []ir.Expr{&ir.Const{Type: b.String}, &ir.Const{Type: b.String}},
		}},
	}})

	// Inheritance and subtype return.
	base := &ir.ClassDecl{Name: "Base", Open: true}
	derived := &ir.ClassDecl{Name: "Derived", Super: &ir.SuperRef{Type: base.Type()}}
	out = append(out, &ir.Program{Decls: []ir.Decl{
		base, derived,
		&ir.FuncDecl{Name: "up", Ret: base.Type(), Body: &ir.New{Class: derived.Type()}},
	}})

	// Conditionals with least upper bound.
	out = append(out, &ir.Program{Decls: []ir.Decl{
		&ir.FuncDecl{Name: "num", Ret: b.Number, Body: &ir.If{
			Cond: &ir.Const{Type: b.Boolean},
			Then: &ir.Const{Type: b.Int},
			Else: &ir.Const{Type: b.Long},
		}},
	}})

	// Lambdas with target typing.
	ft := &types.Func{Params: []types.Type{b.Int}, Ret: b.Int}
	out = append(out, &ir.Program{Decls: []ir.Decl{
		&ir.FuncDecl{Name: "mkfn", Ret: ft, Body: &ir.Lambda{
			Params: []*ir.ParamDecl{{Name: "x"}},
			Body:   &ir.VarRef{Name: "x"},
		}},
	}})

	// Generic function with explicit instantiation and bound.
	gT := &types.Parameter{Owner: "idn", ParamName: "T", Bound: b.Number}
	out = append(out, &ir.Program{Decls: []ir.Decl{
		&ir.FuncDecl{Name: "idn", TypeParams: []*types.Parameter{gT},
			Params: []*ir.ParamDecl{{Name: "x", Type: gT}}, Ret: gT,
			Body: &ir.VarRef{Name: "x"}},
		&ir.FuncDecl{Name: "use", Ret: b.Int, Body: &ir.Call{
			Name: "idn", TypeArgs: []types.Type{b.Int},
			Args: []ir.Expr{&ir.Const{Type: b.Int}},
		}},
	}})

	return out
}
