// Package coverage provides the probe-based code-coverage instrumentation
// that stands in for JaCoCo in the paper's RQ3/RQ4 experiments (Figures 9
// and 10). The reference checker — the "compiler codebase" of the
// simulated compilers — is sprinkled with probes; a Collector records
// which distinct probe sites each compilation exercises, and experiments
// compare collectors (generator vs TEM vs TOM, test suite vs random).
//
// Probe sites are dotted identifiers whose first segment names a region of
// the checker ("resolve", "infer", "types", "stc", "code"), mirroring the
// compiler packages the paper reports (resolve.*, types.*, stc.*, comp.*,
// code.*).
package coverage

import (
	"sort"
	"strings"
	"sync"
)

// Recorder receives probe events. The checker calls it on every resolution
// step, inference rule, subtype check, and statement check.
type Recorder interface {
	// Line records execution of a straight-line probe site.
	Line(site string)
	// Func records entry into a (simulated) compiler function.
	Func(name string)
	// Branch records a two-way decision at a probe site.
	Branch(site string, taken bool)
}

// Nop is a Recorder that discards all events.
type Nop struct{}

func (Nop) Line(string)         {}
func (Nop) Func(string)         {}
func (Nop) Branch(string, bool) {}

// Collector is a Recorder that accumulates hit counts per distinct probe
// site. It is safe for concurrent use.
type Collector struct {
	mu       sync.Mutex
	lines    map[string]uint64
	funcs    map[string]uint64
	branches map[string]uint64
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{
		lines:    map[string]uint64{},
		funcs:    map[string]uint64{},
		branches: map[string]uint64{},
	}
}

// Line implements Recorder.
func (c *Collector) Line(site string) {
	c.mu.Lock()
	c.lines[site]++
	c.mu.Unlock()
}

// Func implements Recorder.
func (c *Collector) Func(name string) {
	c.mu.Lock()
	c.funcs[name]++
	c.mu.Unlock()
}

// Branch implements Recorder. Each direction of a branch site is a
// distinct covered entity, as in JaCoCo branch coverage.
func (c *Collector) Branch(site string, taken bool) {
	key := site + ":f"
	if taken {
		key = site + ":t"
	}
	c.mu.Lock()
	c.branches[key]++
	c.mu.Unlock()
}

// Counts returns the number of distinct covered lines, functions, and
// branch directions.
func (c *Collector) Counts() (lines, funcs, branches int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.lines), len(c.funcs), len(c.branches)
}

// Merge folds other's hits into c.
func (c *Collector) Merge(other *Collector) {
	other.mu.Lock()
	defer other.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range other.lines {
		c.lines[k] += v
	}
	for k, v := range other.funcs {
		c.funcs[k] += v
	}
	for k, v := range other.branches {
		c.branches[k] += v
	}
}

// Clone returns an independent copy of the collector.
func (c *Collector) Clone() *Collector {
	out := NewCollector()
	out.Merge(c)
	return out
}

// Delta holds the distinct sites covered by one collector but not another,
// the quantity Figure 9 reports ("TEM covers N more branches").
type Delta struct {
	Lines    int
	Funcs    int
	Branches int
}

// NewSites returns how many of c's covered sites are absent from base.
func (c *Collector) NewSites(base *Collector) Delta {
	base.mu.Lock()
	defer base.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	var d Delta
	for k := range c.lines {
		if _, ok := base.lines[k]; !ok {
			d.Lines++
		}
	}
	for k := range c.funcs {
		if _, ok := base.funcs[k]; !ok {
			d.Funcs++
		}
	}
	for k := range c.branches {
		if _, ok := base.branches[k]; !ok {
			d.Branches++
		}
	}
	return d
}

// NewSitesIn restricts NewSites to probe sites under the given region
// prefix (e.g. "resolve"), reproducing Figure 9's package breakdown.
func (c *Collector) NewSitesIn(base *Collector, prefix string) Delta {
	base.mu.Lock()
	defer base.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	in := func(k string) bool { return strings.HasPrefix(k, prefix+".") || k == prefix }
	var d Delta
	for k := range c.lines {
		if in(k) {
			if _, ok := base.lines[k]; !ok {
				d.Lines++
			}
		}
	}
	for k := range c.funcs {
		if in(k) {
			if _, ok := base.funcs[k]; !ok {
				d.Funcs++
			}
		}
	}
	for k := range c.branches {
		if in(k) {
			if _, ok := base.branches[k]; !ok {
				d.Branches++
			}
		}
	}
	return d
}

// Regions returns the set of top-level region prefixes seen, sorted.
func (c *Collector) Regions() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	set := map[string]bool{}
	add := func(k string) {
		if i := strings.IndexByte(k, '.'); i > 0 {
			set[k[:i]] = true
		}
	}
	for k := range c.lines {
		add(k)
	}
	for k := range c.funcs {
		add(k)
	}
	for k := range c.branches {
		add(k)
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Percent expresses covered entities of c relative to a universe collector
// (typically the union over all experiments), as JaCoCo-style percentages.
func (c *Collector) Percent(universe *Collector) (line, fn, branch float64) {
	cl, cf, cb := c.Counts()
	ul, uf, ub := universe.Counts()
	pct := func(n, d int) float64 {
		if d == 0 {
			return 0
		}
		return 100 * float64(n) / float64(d)
	}
	return pct(cl, ul), pct(cf, uf), pct(cb, ub)
}
