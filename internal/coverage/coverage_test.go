package coverage

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestCollectorCounts(t *testing.T) {
	c := NewCollector()
	c.Line("stc.a")
	c.Line("stc.a") // repeat: same distinct site
	c.Line("stc.b")
	c.Func("resolve.f")
	c.Branch("types.x", true)
	c.Branch("types.x", false) // both directions are distinct entities
	lines, funcs, branches := c.Counts()
	if lines != 2 || funcs != 1 || branches != 2 {
		t.Errorf("counts = %d/%d/%d, want 2/1/2", lines, funcs, branches)
	}
}

func TestNewSites(t *testing.T) {
	base := NewCollector()
	base.Line("stc.a")
	base.Branch("types.x", true)

	c := NewCollector()
	c.Line("stc.a")            // shared
	c.Line("infer.new")        // new
	c.Branch("types.x", false) // new direction
	c.Func("infer.f")          // new

	d := c.NewSites(base)
	if d.Lines != 1 || d.Funcs != 1 || d.Branches != 1 {
		t.Errorf("delta = %+v, want {1 1 1}", d)
	}
	// Restricted to a region.
	dr := c.NewSitesIn(base, "infer")
	if dr.Lines != 1 || dr.Funcs != 1 || dr.Branches != 0 {
		t.Errorf("region delta = %+v, want {1 1 0}", dr)
	}
}

func TestMergeAndClone(t *testing.T) {
	a := NewCollector()
	a.Line("x.1")
	b := NewCollector()
	b.Line("y.1")
	b.Func("y.f")
	clone := a.Clone()
	clone.Merge(b)
	l, f, _ := clone.Counts()
	if l != 2 || f != 1 {
		t.Errorf("merged counts = %d/%d", l, f)
	}
	// Original untouched.
	if l, _, _ := a.Counts(); l != 1 {
		t.Errorf("clone leaked into source: %d", l)
	}
}

func TestRegions(t *testing.T) {
	c := NewCollector()
	c.Line("stc.a")
	c.Func("resolve.f")
	c.Branch("types.x", true)
	got := c.Regions()
	want := []string{"resolve", "stc", "types"}
	if len(got) != len(want) {
		t.Fatalf("regions = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("regions[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestPercent(t *testing.T) {
	universe := NewCollector()
	universe.Line("a.1")
	universe.Line("a.2")
	universe.Func("a.f")
	c := NewCollector()
	c.Line("a.1")
	line, fn, branch := c.Percent(universe)
	if line != 50 || fn != 0 || branch != 0 {
		t.Errorf("percent = %.1f/%.1f/%.1f", line, fn, branch)
	}
	// Empty universe: zero, not NaN.
	if l, _, _ := c.Percent(NewCollector()); l != 0 {
		t.Errorf("empty universe percent = %f", l)
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Line("stc.shared")
				c.Branch("types.b", j%2 == 0)
				c.Func("f")
			}
		}()
	}
	wg.Wait()
	lines, funcs, branches := c.Counts()
	if lines != 1 || funcs != 1 || branches != 2 {
		t.Errorf("concurrent counts = %d/%d/%d", lines, funcs, branches)
	}
}

func TestNopRecorder(t *testing.T) {
	var r Recorder = Nop{}
	r.Line("a")
	r.Func("b")
	r.Branch("c", true) // must not panic
}

// Property: NewSites of a collector against itself is always zero, and
// merge is monotone in distinct-site counts.
func TestQuickNewSitesSelfIsZero(t *testing.T) {
	f := func(sites []string) bool {
		c := NewCollector()
		for _, s := range sites {
			c.Line(s)
			c.Branch(s, len(s)%2 == 0)
		}
		d := c.NewSites(c.Clone())
		return d.Lines == 0 && d.Branches == 0 && d.Funcs == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeMonotone(t *testing.T) {
	f := func(a, b []string) bool {
		ca, cb := NewCollector(), NewCollector()
		for _, s := range a {
			ca.Line(s)
		}
		for _, s := range b {
			cb.Line(s)
		}
		la, _, _ := ca.Counts()
		ca.Merge(cb)
		lm, _, _ := ca.Counts()
		return lm >= la
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
