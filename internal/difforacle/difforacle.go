// Package difforacle implements the differential cross-compiler oracle
// (ROADMAP item 2): a second, ground-truth-free oracle mode in the
// spirit of cross-language differential compiler testing (arXiv:
// 2507.06584, CrossLangFuzzer). The derivation-based oracle of
// internal/oracle fixes the expected verdict from how a program was
// built; the differential oracle instead compiles the same IR program
// with every compiler under test, normalizes each result into a lane of
// an accept/reject/crash/hang/exhausted verdict vector, and flags any
// non-uniform vector — whatever the program's true typing status, a
// split vote means at least one compiler is wrong.
//
// Voting semantics are deliberately conservative:
//
//   - only Accept and Reject lanes vote: they are the only outcomes
//     that assert a typing judgement;
//   - Crash lanes abstain — a crash is already a first-class bug
//     (oracle.CompilerCrash) and tells us nothing about which verdict
//     the compiler would have reached;
//   - Hang, Exhausted, and Unknown lanes abstain: the compiler never
//     finished, so treating them as a reject vote would let a tight
//     fuel budget (or a slow machine) synthesize disagreements out of
//     thin air. In particular a per-compiler ResourceExhausted result
//     skips that compiler's bug-catalog overlay entirely
//     (compilers.CompileAtVersionContext returns before the overlay),
//     so an exhausted lane carries no catalog signal at all.
//
// When the vote splits, the minority side is the suspect (majority-vote
// attribution); a tie is a real disagreement but names no suspect. The
// package also generalizes the oracle to translator conformance: the
// three internal/translate backends render the same IR program, and a
// shared, language-neutral reference check asserts the renderings are
// verdict-equivalent — making translator bugs a first-class bug class.
package difforacle

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/compilers"
	"repro/internal/ir"
	"repro/internal/translate"
)

// Lane is one compiler's normalized position in a verdict vector.
type Lane int

const (
	// Unknown: no judgeable result (a harness gap, a nil result). Never
	// votes.
	Unknown Lane = iota
	// Accept: the compiler accepted the program.
	Accept
	// Reject: the compiler reported ordinary diagnostics.
	Reject
	// Crash: the compiler aborted with an internal error (or its
	// rejection output matches the per-language crash detector).
	Crash
	// Hang: the harness watchdog killed the compile.
	Hang
	// Exhausted: the deterministic resource governor halted the compile.
	Exhausted
)

func (l Lane) String() string {
	switch l {
	case Accept:
		return "accept"
	case Reject:
		return "reject"
	case Crash:
		return "crash"
	case Hang:
		return "hang"
	case Exhausted:
		return "exhausted"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("unknown(%d)", int(l))
	}
}

// Votes reports whether the lane casts an accept/reject vote. Crash,
// hang, exhausted, and unknown lanes abstain: the compiler never
// asserted a typing judgement to compare.
func (l Lane) Votes() bool { return l == Accept || l == Reject }

// Normalize maps a compilation result onto its verdict-vector lane. A
// Rejected result whose diagnostics match the per-language crash
// detector (compilers.IsCrashOutput) is a crash that surfaced through
// the diagnostic stream, the paper's Section 3.6 normalization.
func Normalize(res *compilers.Result) Lane {
	if res == nil {
		return Unknown
	}
	switch res.Status {
	case compilers.OK:
		return Accept
	case compilers.Rejected:
		for _, d := range res.Diagnostics {
			if compilers.IsCrashOutput(d) {
				return Crash
			}
		}
		return Reject
	case compilers.Crashed:
		return Crash
	case compilers.TimedOut:
		return Hang
	case compilers.ResourceExhausted:
		return Exhausted
	default:
		return Unknown
	}
}

// Sample is one lane of a verdict vector: a compiler (or translator
// backend) and its normalized verdict.
type Sample struct {
	Compiler string
	Lane     Lane
}

// Analysis is the oracle's reading of one verdict vector.
type Analysis struct {
	// Samples is the vector as analyzed, in the caller's order.
	Samples []Sample
	// Disagree reports a non-uniform vote: at least one accept and one
	// reject among the voting lanes.
	Disagree bool
	// Suspects lists the minority side of the vote, sorted by name;
	// empty when the vote ties (a real disagreement, but unattributed).
	Suspects []string
	// Pairs lists every disagreeing voting pair with each pair's names
	// sorted and the pairs themselves sorted — the report's
	// compiler×compiler disagreement matrix entries.
	Pairs [][2]string
}

// Analyze applies the differential oracle to one compiler verdict
// vector. Only Accept and Reject lanes vote; every other lane abstains
// (see the package comment for why).
func Analyze(samples []Sample) Analysis {
	return analyze(samples, func(l Lane) (ok, votes bool) {
		switch l {
		case Accept:
			return true, true
		case Reject:
			return false, true
		default:
			return false, false
		}
	})
}

// AnalyzeConformance applies the oracle to a translator-conformance
// vector. Unlike compiler lanes, every lane votes — conforming (Accept)
// against everything else — because a translator that panics or emits a
// malformed rendering has no other oracle channel to surface through.
func AnalyzeConformance(samples []Sample) Analysis {
	return analyze(samples, func(l Lane) (ok, votes bool) {
		return l == Accept, true
	})
}

func analyze(samples []Sample, vote func(Lane) (ok, votes bool)) Analysis {
	a := Analysis{Samples: samples}
	var yes, no []string
	for _, s := range samples {
		ok, votes := vote(s.Lane)
		switch {
		case !votes:
		case ok:
			yes = append(yes, s.Compiler)
		default:
			no = append(no, s.Compiler)
		}
	}
	if len(yes) == 0 || len(no) == 0 {
		return a
	}
	a.Disagree = true
	switch {
	case len(yes) < len(no):
		a.Suspects = append([]string(nil), yes...)
	case len(no) < len(yes):
		a.Suspects = append([]string(nil), no...)
	}
	sort.Strings(a.Suspects)
	for _, x := range yes {
		for _, y := range no {
			p := [2]string{x, y}
			if p[0] > p[1] {
				p[0], p[1] = p[1], p[0]
			}
			a.Pairs = append(a.Pairs, p)
		}
	}
	sort.Slice(a.Pairs, func(i, j int) bool {
		if a.Pairs[i][0] != a.Pairs[j][0] {
			return a.Pairs[i][0] < a.Pairs[j][0]
		}
		return a.Pairs[i][1] < a.Pairs[j][1]
	})
	return a
}

// VectorString renders the canonical form of a verdict vector: lanes
// sorted by name, e.g. "groovyc=accept,javac=reject,kotlinc=reject".
// The canonical form is the report's deduplication key, so it must not
// depend on execution order.
func VectorString(samples []Sample) string {
	sorted := append([]Sample(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Compiler < sorted[j].Compiler })
	parts := make([]string, len(sorted))
	for i, s := range sorted {
		parts[i] = s.Compiler + "=" + s.Lane.String()
	}
	return strings.Join(parts, ",")
}

// CheckTranslators renders p through every translate backend and grades
// each rendering with the shared reference check: one conformance
// sample per backend, in translate.All order. A panicking backend
// yields a Crash lane; a rendering that fails the check yields Reject.
func CheckTranslators(p *ir.Program) []Sample {
	var out []Sample
	for _, tr := range translate.All() {
		out = append(out, Sample{Compiler: tr.Name(), Lane: renderLane(tr, p)})
	}
	return out
}

// renderLane sandboxes one backend the way the harness sandboxes a
// compile: a panic is a Crash lane, not a campaign abort.
func renderLane(tr translate.Translator, p *ir.Program) (lane Lane) {
	defer func() {
		if r := recover(); r != nil {
			lane = Crash
		}
	}()
	if Conforms(p, tr.Translate(p)) {
		return Accept
	}
	return Reject
}

// Conforms is the language-neutral reference check every backend's
// rendering is held to: the rendering is non-empty, spells the name of
// every top-level class and function the IR program declares, and
// balances braces and parentheses outside string literals. It encodes
// only what a faithful rendering of the IR must satisfy in all three
// target languages, so a backend that fails it is wrong regardless of
// language idiom.
func Conforms(p *ir.Program, src string) bool {
	if strings.TrimSpace(src) == "" {
		return false
	}
	for _, c := range p.Classes() {
		if !strings.Contains(src, c.Name) {
			return false
		}
	}
	for _, f := range p.Functions() {
		if !strings.Contains(src, f.Name) {
			return false
		}
	}
	return balanced(src)
}

// balanced checks brace/paren balance outside double-quoted literals.
func balanced(src string) bool {
	braces, parens := 0, 0
	inString, escaped := false, false
	for _, r := range src {
		if inString {
			switch {
			case escaped:
				escaped = false
			case r == '\\':
				escaped = true
			case r == '"':
				inString = false
			}
			continue
		}
		switch r {
		case '"':
			inString = true
		case '{':
			braces++
		case '}':
			braces--
		case '(':
			parens++
		case ')':
			parens--
		}
		if braces < 0 || parens < 0 {
			return false
		}
	}
	return braces == 0 && parens == 0 && !inString
}
