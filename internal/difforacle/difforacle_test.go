package difforacle

import (
	"reflect"
	"testing"

	"repro/internal/compilers"
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/translate"
)

func TestNormalizeStatusMapping(t *testing.T) {
	cases := []struct {
		res  *compilers.Result
		want Lane
	}{
		{nil, Unknown},
		{&compilers.Result{Status: compilers.OK}, Accept},
		{&compilers.Result{Status: compilers.Rejected, Diagnostics: []string{"type mismatch: inferred type is Int"}}, Reject},
		{&compilers.Result{Status: compilers.Crashed}, Crash},
		{&compilers.Result{Status: compilers.TimedOut}, Hang},
		{&compilers.Result{Status: compilers.ResourceExhausted}, Exhausted},
		{&compilers.Result{Status: compilers.Status(99)}, Unknown},
		// A rejection whose diagnostic is a crash banner is a crash that
		// surfaced through the diagnostic stream (Section 3.6).
		{&compilers.Result{
			Status:      compilers.Rejected,
			Diagnostics: []string{"kotlinc: internal error: exception in types phase [KT-1]"},
		}, Crash},
		// ... but a rejection merely quoting "internal error" is not.
		{&compilers.Result{
			Status:      compilers.Rejected,
			Diagnostics: []string{"report an internal error if this persists"},
		}, Reject},
	}
	for i, c := range cases {
		if got := Normalize(c.res); got != c.want {
			t.Errorf("case %d: Normalize = %v, want %v", i, got, c.want)
		}
	}
}

func TestLaneVoting(t *testing.T) {
	votes := map[Lane]bool{
		Accept: true, Reject: true,
		Crash: false, Hang: false, Exhausted: false, Unknown: false,
	}
	for lane, want := range votes {
		if lane.Votes() != want {
			t.Errorf("%v.Votes() = %v, want %v", lane, lane.Votes(), want)
		}
	}
}

// TestExhaustedAndHangLanesAbstain pins the satellite bugfix: a
// per-compiler ResourceExhausted result skips that compiler's catalog
// overlay entirely (CompileAtVersionContext returns before the
// overlay), so exhausted — and hang, and crash — lanes must read as
// abstentions, never as a reject vote. A tight -fuel budget must not
// synthesize disagreements out of compilers that simply ran out.
func TestExhaustedAndHangLanesAbstain(t *testing.T) {
	for _, nonVote := range []Lane{Exhausted, Hang, Crash, Unknown} {
		// Uniform accepts + one non-voting lane: no disagreement.
		an := Analyze([]Sample{
			{Compiler: "groovyc", Lane: Accept},
			{Compiler: "kotlinc", Lane: Accept},
			{Compiler: "javac", Lane: nonVote},
		})
		if an.Disagree {
			t.Errorf("%v lane voted reject against two accepts", nonVote)
		}
		// Uniform rejects + one non-voting lane: still no disagreement.
		an = Analyze([]Sample{
			{Compiler: "groovyc", Lane: Reject},
			{Compiler: "kotlinc", Lane: Reject},
			{Compiler: "javac", Lane: nonVote},
		})
		if an.Disagree {
			t.Errorf("%v lane voted against two rejects", nonVote)
		}
		// A real split with one abstention: disagreement, but a 1–1 tie —
		// the abstaining lane must not break it.
		an = Analyze([]Sample{
			{Compiler: "groovyc", Lane: Accept},
			{Compiler: "kotlinc", Lane: Reject},
			{Compiler: "javac", Lane: nonVote},
		})
		if !an.Disagree {
			t.Errorf("accept/reject split with %v lane must disagree", nonVote)
		}
		if len(an.Suspects) != 0 {
			t.Errorf("tie with %v abstaining attributed suspects %v", nonVote, an.Suspects)
		}
	}
	// All lanes abstaining is no disagreement at all.
	if an := Analyze([]Sample{
		{Compiler: "groovyc", Lane: Exhausted},
		{Compiler: "kotlinc", Lane: Hang},
		{Compiler: "javac", Lane: Crash},
	}); an.Disagree {
		t.Error("vector with no voting lanes cannot disagree")
	}
}

func TestAnalyzeMajorityAttribution(t *testing.T) {
	an := Analyze([]Sample{
		{Compiler: "groovyc", Lane: Reject},
		{Compiler: "kotlinc", Lane: Reject},
		{Compiler: "javac", Lane: Accept},
	})
	if !an.Disagree {
		t.Fatal("2-1 split must disagree")
	}
	if !reflect.DeepEqual(an.Suspects, []string{"javac"}) {
		t.Errorf("suspects = %v, want the minority [javac]", an.Suspects)
	}
	wantPairs := [][2]string{{"groovyc", "javac"}, {"javac", "kotlinc"}}
	if !reflect.DeepEqual(an.Pairs, wantPairs) {
		t.Errorf("pairs = %v, want %v", an.Pairs, wantPairs)
	}
	// Uniform vectors never disagree.
	if an := Analyze([]Sample{
		{Compiler: "groovyc", Lane: Accept},
		{Compiler: "kotlinc", Lane: Accept},
	}); an.Disagree {
		t.Error("uniform accepts disagreed")
	}
	// Single-compiler vectors never disagree.
	if an := Analyze([]Sample{{Compiler: "groovyc", Lane: Reject}}); an.Disagree {
		t.Error("single-lane vector disagreed")
	}
}

func TestVectorStringCanonical(t *testing.T) {
	a := VectorString([]Sample{
		{Compiler: "kotlinc", Lane: Reject},
		{Compiler: "groovyc", Lane: Accept},
		{Compiler: "javac", Lane: Exhausted},
	})
	b := VectorString([]Sample{
		{Compiler: "javac", Lane: Exhausted},
		{Compiler: "kotlinc", Lane: Reject},
		{Compiler: "groovyc", Lane: Accept},
	})
	want := "groovyc=accept,javac=exhausted,kotlinc=reject"
	if a != want || b != want {
		t.Errorf("VectorString not canonical: %q / %q, want %q", a, b, want)
	}
}

// TestAnalyzeConformanceEveryLaneVotes: for translator conformance a
// crash or malformed rendering is a failed check, not an abstention —
// there is no other oracle channel for translator failures.
func TestAnalyzeConformanceEveryLaneVotes(t *testing.T) {
	an := AnalyzeConformance([]Sample{
		{Compiler: "kotlin", Lane: Accept},
		{Compiler: "java", Lane: Accept},
		{Compiler: "groovy", Lane: Crash},
	})
	if !an.Disagree {
		t.Fatal("translator crash against two conforming renderings must disagree")
	}
	if !reflect.DeepEqual(an.Suspects, []string{"groovy"}) {
		t.Errorf("suspects = %v, want [groovy]", an.Suspects)
	}
	// All failing the same way is uniform: the reference check itself
	// cannot tell who is right, only who differs.
	if an := AnalyzeConformance([]Sample{
		{Compiler: "kotlin", Lane: Reject},
		{Compiler: "java", Lane: Crash},
	}); an.Disagree {
		t.Error("uniformly non-conforming vector disagreed")
	}
}

// TestTranslatorsConformOnGeneratedPrograms: the three real backends
// pass the shared reference check on generator output, so translator
// conformance adds no false disagreements to a differential campaign.
func TestTranslatorsConformOnGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g := generator.New(generator.DefaultConfig().WithSeed(seed))
		p := g.Generate()
		samples := CheckTranslators(p)
		if len(samples) != len(translate.All()) {
			t.Fatalf("seed %d: %d samples, want one per backend", seed, len(samples))
		}
		for _, s := range samples {
			if s.Lane != Accept {
				t.Errorf("seed %d: %s rendering graded %v", seed, s.Compiler, s.Lane)
			}
		}
		if an := AnalyzeConformance(samples); an.Disagree {
			t.Errorf("seed %d: conforming renderings disagreed", seed)
		}
	}
}

func TestConformsReferenceCheck(t *testing.T) {
	p := &ir.Program{Decls: []ir.Decl{
		&ir.ClassDecl{Name: "Widget"},
		&ir.FuncDecl{Name: "frobnicate"},
	}}
	if Conforms(p, "") {
		t.Error("empty rendering conformed")
	}
	if Conforms(p, "class Widget {}") {
		t.Error("rendering missing a declared function conformed")
	}
	if Conforms(p, "class Widget { def frobnicate() {} ") {
		t.Error("unbalanced braces conformed")
	}
	if !Conforms(p, "class Widget {}\ndef frobnicate() { f(\"}\") }") {
		t.Error("balanced rendering with a brace inside a string literal rejected")
	}
}
