// Client: the coordinator's view of one worker. Every call is
// time-bounded — a worker that answers nothing within the budget is a
// failed call, never a hung coordinator — and the transport is plain
// HTTP, so a "worker" can be a spawned local process, a remote node,
// or an in-process handler under test.

package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to one worker.
type Client struct {
	name string
	base string
	hc   *http.Client
}

// NewClient returns a client for the worker at base (e.g.
// "http://127.0.0.1:9000"). timeout bounds every individual call; 0
// means 5 seconds.
func NewClient(name, base string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &Client{
		name: name,
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: timeout},
	}
}

// NewClientWith returns a client over a caller-supplied http.Client —
// the in-process test hook (httptest servers, fault-injecting
// transports). The http.Client's own Timeout applies.
func NewClientWith(name, base string, hc *http.Client) *Client {
	return &Client{name: name, base: strings.TrimRight(base, "/"), hc: hc}
}

// Name returns the worker's label for ledgers and logs.
func (c *Client) Name() string { return c.name }

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("fabric: %s %s: %w", c.name, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("fabric: %s %s: %s: %s", c.name, path, resp.Status, strings.TrimSpace(string(msg)))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// Lease grants a shard lease to the worker.
func (c *Client) Lease(ctx context.Context, lease Lease) error {
	return c.do(ctx, http.MethodPost, "/leases", lease, nil)
}

// Status polls one lease — the heartbeat.
func (c *Client) Status(ctx context.Context, id string) (LeaseStatus, error) {
	var st LeaseStatus
	err := c.do(ctx, http.MethodGet, "/leases/"+id, nil, &st)
	return st, err
}

// Journal fetches the shard journal of a terminal lease.
func (c *Client) Journal(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/leases/"+id+"/journal", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fabric: %s journal: %w", c.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("fabric: %s journal: %s: %s", c.name, resp.Status, strings.TrimSpace(string(msg)))
	}
	return io.ReadAll(resp.Body)
}

// Cancel asks the worker to stop a lease; best-effort by design.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/leases/"+id+"/cancel", nil, nil)
}

// Healthz answers whether the worker is reachable.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}
