package fabric

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/cli"
)

// TestFabricShardedDifferentialMatchesSingleProcess extends the
// fabric's byte-equality promise to the differential oracle: a sharded
// differential campaign's merged report — disagreement records and the
// pair matrix included — must byte-match the uninterrupted
// single-process run. The oracle mode rides to workers inside the
// lease's cli.Config, and disagreements fold commutatively by unit
// sequence, so shard boundaries cannot reorder or duplicate them.
func TestFabricShardedDifferentialMatchesSingleProcess(t *testing.T) {
	t.Parallel()
	cfg := cli.Config{
		Seed:           20220401,
		Programs:       24,
		BatchSize:      7,
		Workers:        2,
		CompileTimeout: cli.Duration(5 * time.Second),
		Oracle:         "differential",
		SnapshotEvery:  -1,
	}
	want := refDoc(t, cfg)
	if !bytes.Contains(want, []byte(`"disagreements"`)) {
		t.Fatal("reference differential run found no disagreements; byte-equality would be vacuous")
	}

	clients := startWorkers(t, 3, nil, 10*time.Second)
	res, err := Run(context.Background(), Options{
		Config:         cfg,
		Shards:         5,
		Workers:        clients,
		HeartbeatEvery: 25 * time.Millisecond,
		CallTimeout:    10 * time.Second,
		RetryBackoff:   5 * time.Millisecond,
		SpeculateMin:   time.Minute,
	})
	if err != nil {
		t.Fatalf("fabric run: %v", err)
	}
	if got := marshalDoc(t, res.Report); !bytes.Equal(got, want) {
		t.Errorf("sharded differential report diverged from single-process run\n--- sharded ---\n%s\n--- single ---\n%s", got, want)
	}

	// Suspect attribution survives the merge: at least one disagreement
	// names a concrete minority compiler.
	attributed := false
	for _, rec := range res.Report.Disagreements {
		if len(rec.Suspects) > 0 && !strings.Contains(rec.ID, "xlate:") {
			attributed = true
		}
	}
	if !attributed {
		t.Error("merged report carries no suspect-attributed compiler disagreement")
	}
}
