// Package fabric shards one campaign across worker processes and
// merges the results into a report byte-identical to an uninterrupted
// single-process run. The determinism the rest of the system already
// proves — a commutative, seq-keyed fold over per-unit records whose
// content depends only on the unit's seed — is exactly what makes
// distribution safe: the coordinator partitions the seed space into
// contiguous shards, leases each shard to a worker running the full
// pipeline+harness+journal stack, ships the shard journals back, and
// folds every record through campaign.Merger, which dedups per global
// seq. Re-executing a shard (because its worker died, stalled, or
// straggled) can therefore never double-count and never diverge: the
// first fold of each unit wins, and every copy of a unit's record is
// bit-for-bit the same bytes.
//
// The robustness layer:
//
//   - leases with heartbeats: every shard attempt is polled on a fixed
//     cadence; HeartbeatMisses consecutive failed polls declare the
//     worker dead and the shard is reassigned;
//   - bounded retries with backoff: each shard gets MaxAttempts lease
//     attempts, exponentially backed off, and each worker sits behind a
//     harness.Breaker at worker granularity — a worker that keeps
//     failing leases is quarantined exactly like a crashing compiler;
//   - straggler speculation: an attempt running past a multiple of the
//     median completed-attempt latency gets a duplicate attempt on an
//     idle worker; first result wins, the loser is cancelled;
//   - graceful degradation: a shard that exhausts its attempts is
//     abandoned — the run ends with a partial report (Complete() ==
//     false), a fault ledger naming the abandoned shards, and never a
//     hang, because every network call is time-bounded.
package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/cli"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/metrics"
)

// Options configures a sharded campaign run.
type Options struct {
	// Config is the global campaign — exactly what a single process
	// would run. The report merges to that run's bytes.
	Config cli.Config
	// Shards is the number of seed-space partitions; 0 means one per
	// worker. Clamped to the program count.
	Shards int
	// Workers are the attached worker endpoints. At least one.
	Workers []*Client
	// HeartbeatEvery is the lease poll cadence; 0 means 100ms.
	HeartbeatEvery time.Duration
	// HeartbeatMisses is how many consecutive failed polls declare a
	// worker dead; 0 means 3.
	HeartbeatMisses int
	// CallTimeout bounds each coordinator→worker HTTP call; 0 means 3s.
	CallTimeout time.Duration
	// MaxAttempts bounds granted lease attempts per shard (first run,
	// reassignments, and speculative twins all count). Refusals — a
	// lease the worker never accepted, so no work was lost — draw from
	// a separate budget of MaxAttempts × len(Workers), so one dead idle
	// worker cannot absorb a shard's whole retry budget. 0 means 5.
	MaxAttempts int
	// RetryBackoff is the base delay before a shard's next attempt
	// after a failure, doubling per attempt, capped at 2s; 0 means 50ms.
	RetryBackoff time.Duration
	// SpeculateAfter is the straggler threshold: an attempt running
	// longer than SpeculateAfter × the median completed-attempt
	// duration gets a speculative twin. 0 means 3.
	SpeculateAfter float64
	// SpeculateMin floors the straggler threshold, so short campaigns
	// do not speculate on noise; 0 means 2s.
	SpeculateMin time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// worker's breaker (quarantining it for 2× the threshold in skipped
	// dispatch considerations, harness semantics); 0 means 3.
	BreakerThreshold int
	// StateDir, when set, receives the coordinator's fault-ledger
	// document (fabric.json) at the end of the run.
	StateDir string
	// Metrics and Trace observe the coordinator: shard/lease gauges,
	// fault counters, "fabric" trace events, and the
	// journal_corrupt_records counter for corrupt shipped journals.
	Metrics *metrics.Registry
	Trace   *metrics.Trace
}

// Result is a sharded campaign's outcome: the merged report plus the
// fabric's own fault ledger. Report.Faults stays the harness ledger —
// deterministic, byte-comparable — while Result.Faults audits the
// distribution layer (deaths, reassignments, speculation), which by
// construction never leaks into the report.
type Result struct {
	Report *campaign.Report
	Faults *Ledger
}

// shard is one contiguous partition of the global unit space.
type shard struct {
	index, lo, hi int
	attempts      int // lease attempts granted (refusals roll back)
	refused       int // lease grants that never happened (worker unreachable/busy)
	running       int // attempts currently active
	done          bool
	failed        bool
	notBefore     time.Time         // retry backoff gate
	startedAt     time.Time         // earliest active attempt's start (speculation clock)
	cancels       map[string]func() // leaseID → best-effort worker-side cancel
}

// workerRef is one worker plus its scheduling state.
type workerRef struct {
	client  *Client
	breaker *harness.Breaker
	busy    bool
}

type coordinator struct {
	opts   Options
	global campaign.Options
	merger *campaign.Merger
	ledger *Ledger

	// mergeMu serializes merger folds; mu guards scheduling state.
	mergeMu sync.Mutex
	mu      sync.Mutex
	shards  []*shard
	workers []*workerRef
	wake    chan struct{}
	// durations holds completed-attempt latencies — the speculation
	// baseline. Guarded by mu.
	durations []time.Duration

	corruptObs func(journal.Corruption)

	mShardsDone *metrics.Gauge
	mShardsLost *metrics.Gauge
	mActive     *metrics.Gauge
	mMerged     *metrics.Gauge
	cDeaths     *metrics.Counter
	cRefusals   *metrics.Counter
	cReassign   *metrics.Counter
	cSpeculate  *metrics.Counter
	cSpecWins   *metrics.Counter
	cCorrupt    *metrics.Counter
}

// Run executes the campaign sharded across opts.Workers and returns
// the merged report and fabric ledger. A fully covered run's report is
// byte-identical (through ReportDoc) to campaign.Run of the same
// Config; a degraded run's report is the partial fold with Err set.
// Run never hangs: every worker interaction is time-bounded and every
// shard's attempt budget is finite.
func Run(ctx context.Context, opts Options) (*Result, error) {
	c, err := newCoordinator(opts)
	if err != nil {
		return nil, err
	}
	return c.run(ctx)
}

func newCoordinator(opts Options) (*coordinator, error) {
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("fabric: no workers")
	}
	if opts.Config.Programs <= 0 {
		return nil, fmt.Errorf("fabric: campaign has %d programs", opts.Config.Programs)
	}
	if opts.Shards <= 0 {
		opts.Shards = len(opts.Workers)
	}
	if opts.Shards > opts.Config.Programs {
		opts.Shards = opts.Config.Programs
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = 100 * time.Millisecond
	}
	if opts.HeartbeatMisses <= 0 {
		opts.HeartbeatMisses = 3
	}
	if opts.CallTimeout <= 0 {
		opts.CallTimeout = 3 * time.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 50 * time.Millisecond
	}
	if opts.SpeculateAfter <= 0 {
		opts.SpeculateAfter = 3
	}
	if opts.SpeculateMin <= 0 {
		opts.SpeculateMin = 2 * time.Second
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 3
	}

	global, err := opts.Config.CampaignOptions()
	if err != nil {
		return nil, err
	}
	// The merged report is the single-process report: global options,
	// no state directory (durability lived on the workers).
	global.StateDir, global.Resume = "", false

	c := &coordinator{
		opts:   opts,
		global: global,
		merger: campaign.NewMerger(global),
		ledger: NewLedger(opts.Shards),
		wake:   make(chan struct{}, 1),

		corruptObs: campaign.CorruptionObserver(opts.Metrics, opts.Trace),

		mShardsDone: opts.Metrics.Gauge("fabric.shards_done"),
		mShardsLost: opts.Metrics.Gauge("fabric.shards_degraded"),
		mActive:     opts.Metrics.Gauge("fabric.active_leases"),
		mMerged:     opts.Metrics.Gauge("fabric.units_merged"),
		cDeaths:     opts.Metrics.Counter("fabric.worker_deaths"),
		cRefusals:   opts.Metrics.Counter("fabric.lease_refusals"),
		cReassign:   opts.Metrics.Counter("fabric.reassignments"),
		cSpeculate:  opts.Metrics.Counter("fabric.speculative_launches"),
		cSpecWins:   opts.Metrics.Counter("fabric.speculative_wins"),
		cCorrupt:    opts.Metrics.Counter("fabric.corrupt_shipped_records"),
	}
	opts.Metrics.Gauge("fabric.shards").Set(int64(opts.Shards))
	opts.Metrics.Gauge("fabric.workers").Set(int64(len(opts.Workers)))

	// Balanced contiguous partition: the first Programs%Shards shards
	// take one extra unit.
	base, rem := opts.Config.Programs/opts.Shards, opts.Config.Programs%opts.Shards
	lo := 0
	for i := 0; i < opts.Shards; i++ {
		n := base
		if i < rem {
			n++
		}
		c.shards = append(c.shards, &shard{index: i, lo: lo, hi: lo + n, cancels: map[string]func(){}})
		lo += n
	}
	for _, w := range opts.Workers {
		c.workers = append(c.workers, &workerRef{
			client:  w,
			breaker: harness.NewBreaker(opts.BreakerThreshold, 2*opts.BreakerThreshold),
		})
	}
	return c, nil
}

func (c *coordinator) wakeup() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

func (c *coordinator) trace(format string, args ...any) {
	c.opts.Trace.Emit(metrics.Event{Kind: "fabric", Seq: -1, Stage: "coordinator",
		Detail: fmt.Sprintf(format, args...)})
}

// run drives the dispatch loop until every shard is merged or
// abandoned (or ctx dies), then seals the merge.
func (c *coordinator) run(ctx context.Context) (*Result, error) {
	ticker := time.NewTicker(c.opts.HeartbeatEvery)
	defer ticker.Stop()
	for {
		c.dispatch(ctx)
		if c.settled() {
			break
		}
		select {
		case <-ctx.Done():
		case <-c.wake:
		case <-ticker.C:
		}
		if ctx.Err() != nil {
			c.abort()
			break
		}
	}
	return c.finish(ctx.Err())
}

// settled reports whether every shard is done or failed with no
// attempt still running.
func (c *coordinator) settled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sh := range c.shards {
		if sh.running > 0 || (!sh.done && !sh.failed) {
			return false
		}
	}
	return true
}

// abort marks every unfinished shard failed and waits for active
// attempts to observe the dying context (their calls are time-bounded,
// so this converges quickly).
func (c *coordinator) abort() {
	deadline := time.Now().Add(c.opts.CallTimeout + time.Second)
	for {
		c.mu.Lock()
		active := 0
		for _, sh := range c.shards {
			active += sh.running
			if !sh.done && sh.running == 0 && !sh.failed {
				sh.failed = true
			}
		}
		c.mu.Unlock()
		if active == 0 || time.Now().After(deadline) {
			return
		}
		select {
		case <-c.wake:
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// dispatch matches runnable shards (fresh, retries past their backoff,
// and stragglers worth hedging) with available workers.
func (c *coordinator) dispatch(ctx context.Context) {
	if ctx.Err() != nil {
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()

	// Degradation first: a shard with no budget left and nothing in
	// flight is abandoned.
	for _, sh := range c.shards {
		if !sh.done && !sh.failed && sh.running == 0 && c.exhaustedLocked(sh) {
			sh.failed = true
			c.ledger.Degraded(sh.index)
			c.mShardsLost.Add(1)
			c.trace("shard %d abandoned (%d attempts, %d refusals)", sh.index, sh.attempts, sh.refused)
		}
	}

	// Primary assignments: shards with nothing running.
	for _, sh := range c.shards {
		if sh.done || sh.failed || sh.running > 0 || c.exhaustedLocked(sh) || now.Before(sh.notBefore) {
			continue
		}
		w := c.takeWorkerLocked()
		if w == nil {
			return // no capacity; later wake/tick retries
		}
		c.launchLocked(ctx, w, sh, false)
	}

	// Speculation: hedge stragglers onto leftover idle workers.
	threshold := c.speculateThresholdLocked()
	for _, sh := range c.shards {
		if sh.done || sh.failed || sh.running != 1 || c.exhaustedLocked(sh) {
			continue
		}
		if now.Sub(sh.startedAt) < threshold {
			continue
		}
		w := c.takeWorkerLocked()
		if w == nil {
			return
		}
		c.launchLocked(ctx, w, sh, true)
	}
}

// exhaustedLocked reports whether a shard's retry budget is spent:
// MaxAttempts granted leases, or MaxAttempts × workers refusals. The
// split matters when one worker is dead but idle — it gets picked,
// refuses the lease (nothing was ever executed), and would otherwise
// burn the whole shard budget without a single unit running. Both
// budgets are finite, so the run still terminates. c.mu held.
func (c *coordinator) exhaustedLocked(sh *shard) bool {
	return sh.attempts >= c.opts.MaxAttempts ||
		sh.refused >= c.opts.MaxAttempts*len(c.workers)
}

// takeWorkerLocked claims an idle worker whose breaker admits a lease.
// A skipped open breaker counts toward its cooldown, so a quarantined
// worker earns a half-open probe lease after sitting out (harness
// semantics at worker granularity).
func (c *coordinator) takeWorkerLocked() *workerRef {
	for _, w := range c.workers {
		if w.busy {
			continue
		}
		if !w.breaker.Allow() {
			continue
		}
		w.busy = true
		return w
	}
	return nil
}

// speculateThresholdLocked is the straggler bar: SpeculateAfter × the
// median completed-attempt duration, floored at SpeculateMin.
func (c *coordinator) speculateThresholdLocked() time.Duration {
	if len(c.durations) == 0 {
		return maxDuration(c.opts.SpeculateMin, 365*24*time.Hour) // no baseline yet: never
	}
	ds := append([]time.Duration(nil), c.durations...)
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	med := ds[len(ds)/2]
	t := time.Duration(float64(med) * c.opts.SpeculateAfter)
	return maxDuration(t, c.opts.SpeculateMin)
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// launchLocked starts one lease attempt; c.mu held.
func (c *coordinator) launchLocked(ctx context.Context, w *workerRef, sh *shard, speculative bool) {
	attempt := sh.attempts
	sh.attempts++
	sh.running++
	if sh.running == 1 {
		sh.startedAt = time.Now()
	}
	c.mActive.Add(1)
	reassigned := attempt > 0 && !speculative
	c.ledger.Leased(w.client.Name(), reassigned, speculative)
	if reassigned {
		c.cReassign.Inc()
	}
	if speculative {
		c.cSpeculate.Inc()
		c.trace("speculating shard %d attempt %d on %s", sh.index, attempt, w.client.Name())
	}
	go c.runAttempt(ctx, w, sh, attempt, speculative)
}

// attemptOutcome classifies one lease attempt.
type attemptOutcome int

const (
	outcomeCovered    attemptOutcome = iota // shard fully merged
	outcomeRefused                          // lease grant failed
	outcomeDied                             // missed heartbeats or failed shipment
	outcomeIncomplete                       // shipped, but units missing after merge
	outcomeSuperseded                       // another attempt covered the shard first
	outcomeAborted                          // coordinator context died
)

// runAttempt drives one lease end to end: grant, heartbeat, ship,
// merge, and bookkeeping.
func (c *coordinator) runAttempt(ctx context.Context, w *workerRef, sh *shard, attempt int, speculative bool) {
	defer c.wakeup()
	start := time.Now()
	leaseID := fmt.Sprintf("s%03d-a%d", sh.index, attempt)
	outcome := c.driveLease(ctx, w, sh, Lease{
		ID: leaseID, Shard: sh.index, Lo: sh.lo, Hi: sh.hi, Attempt: attempt,
		Config: c.opts.Config,
	})

	c.mu.Lock()
	w.busy = false
	sh.running--
	delete(sh.cancels, leaseID)
	c.mActive.Add(-1)
	name := w.client.Name()
	var cancelLosers []func()
	switch outcome {
	case outcomeCovered:
		won := !sh.done
		sh.done = true
		w.breaker.Record(true)
		c.durations = append(c.durations, time.Since(start))
		for _, fn := range sh.cancels {
			cancelLosers = append(cancelLosers, fn)
		}
		sh.cancels = map[string]func(){}
		c.mu.Unlock()
		c.ledger.Completed(name, won && speculative)
		if won && speculative {
			c.cSpecWins.Inc()
		}
		c.mShardsDone.Add(1)
		c.mergeMu.Lock()
		c.mMerged.Set(int64(c.merger.Units()))
		c.mergeMu.Unlock()
		c.trace("shard %d merged (attempt %d on %s)", sh.index, attempt, name)
	case outcomeSuperseded:
		w.breaker.Record(true) // the worker did nothing wrong
		c.mu.Unlock()
	case outcomeRefused:
		// The grant never happened, so the attempt number is handed
		// back: the next granted lease reuses it, keeping executed
		// attempts densely numbered (chaos draws key on the attempt).
		sh.attempts--
		sh.refused++
		refusal := sh.refused
		sh.notBefore = time.Now().Add(c.backoffLocked(sh))
		w.breaker.Record(false)
		c.mu.Unlock()
		c.ledger.Refused(name)
		c.cRefusals.Inc()
		c.trace("shard %d lease refused by %s (attempt %d, refusal %d)", sh.index, name, attempt, refusal)
	case outcomeDied:
		sh.notBefore = time.Now().Add(c.backoffLocked(sh))
		w.breaker.Record(false)
		c.mu.Unlock()
		c.ledger.Died(name)
		c.cDeaths.Inc()
		c.trace("worker %s dead on shard %d (attempt %d); reassigning", name, sh.index, attempt)
	case outcomeIncomplete:
		sh.notBefore = time.Now().Add(c.backoffLocked(sh))
		w.breaker.Record(false)
		c.mu.Unlock()
		c.ledger.Failed(name)
		c.trace("shard %d shipment from %s incomplete (attempt %d); re-running", sh.index, name, attempt)
	default: // outcomeAborted
		c.mu.Unlock()
	}
	// Cancel losing twins outside every lock; best-effort.
	for _, fn := range cancelLosers {
		go fn()
	}
}

// backoffLocked computes the shard's next-attempt delay: base ×
// 2^(failures-1), capped at 2s, counting granted attempts and
// refusals alike (both are failures worth spacing out). c.mu held.
func (c *coordinator) backoffLocked(sh *shard) time.Duration {
	n := sh.attempts + sh.refused
	if n < 1 {
		n = 1
	}
	d := c.opts.RetryBackoff << uint(minInt(n-1, 5))
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// driveLease grants one lease and follows it to an outcome. Every
// network call is bounded by CallTimeout; the poll loop is bounded by
// heartbeat misses, shard completion, or a terminal lease state.
func (c *coordinator) driveLease(ctx context.Context, w *workerRef, sh *shard, lease Lease) attemptOutcome {
	call := func(fn func(context.Context) error) error {
		cctx, cancel := context.WithTimeout(ctx, c.opts.CallTimeout)
		defer cancel()
		return fn(cctx)
	}
	// abandonLease fires a detached best-effort cancel. It matters most
	// when a presumed-dead worker is actually alive (a heartbeat lapse,
	// not a crash): without it the zombie lease keeps the worker busy —
	// refusing every reassignment — for the rest of the shard.
	abandonLease := func() {
		go func() {
			cctx, cancel := context.WithTimeout(context.Background(), c.opts.CallTimeout)
			defer cancel()
			w.client.Cancel(cctx, lease.ID) //nolint:errcheck // best-effort
		}()
	}

	if err := call(func(cctx context.Context) error { return w.client.Lease(cctx, lease) }); err != nil {
		if ctx.Err() != nil {
			return outcomeAborted
		}
		// The POST may have been granted even though the reply never
		// arrived (slow worker, dropped response); don't leave the
		// orphan holding the worker.
		abandonLease()
		return outcomeRefused
	}

	// Register the best-effort worker-side cancel for losing twins.
	c.mu.Lock()
	sh.cancels[lease.ID] = func() {
		cctx, cancel := context.WithTimeout(context.Background(), c.opts.CallTimeout)
		defer cancel()
		w.client.Cancel(cctx, lease.ID) //nolint:errcheck // best-effort
	}
	c.mu.Unlock()

	misses := 0
	for {
		select {
		case <-ctx.Done():
			return outcomeAborted
		case <-time.After(c.opts.HeartbeatEvery):
		}
		c.mu.Lock()
		superseded := sh.done
		c.mu.Unlock()
		if superseded {
			call(func(cctx context.Context) error { return w.client.Cancel(cctx, lease.ID) }) //nolint:errcheck
			return outcomeSuperseded
		}
		var st LeaseStatus
		err := call(func(cctx context.Context) error {
			var serr error
			st, serr = w.client.Status(cctx, lease.ID)
			return serr
		})
		if err != nil {
			if ctx.Err() != nil {
				return outcomeAborted
			}
			misses++
			if misses >= c.opts.HeartbeatMisses {
				abandonLease()
				return outcomeDied
			}
			continue
		}
		misses = 0
		if st.State != "running" && st.State != "pausing" {
			break
		}
	}

	// Terminal lease: ship the journal and merge it. Failed and
	// cancelled runs still ship — their journals hold every unit they
	// finished, and salvaging them shrinks the re-run.
	var image []byte
	err := call(func(cctx context.Context) error {
		var jerr error
		image, jerr = w.client.Journal(cctx, lease.ID)
		return jerr
	})
	if err != nil {
		if ctx.Err() != nil {
			return outcomeAborted
		}
		abandonLease()
		return outcomeDied
	}
	c.mergeShard(sh, image)

	c.mu.Lock()
	superseded := sh.done
	c.mu.Unlock()
	if superseded {
		return outcomeSuperseded
	}
	c.mergeMu.Lock()
	missing := c.merger.Missing(sh.lo, sh.hi)
	c.mergeMu.Unlock()
	if len(missing) == 0 {
		return outcomeCovered
	}
	c.trace("shard %d: %d units missing after merge", sh.index, len(missing))
	return outcomeIncomplete
}

// mergeShard folds one shipped journal image. Frame-level corruption
// (CRC mismatches, torn tails) and content-level corruption (records
// that cannot belong to this campaign) are both quarantined and
// audited; the units they covered simply stay missing and re-run.
func (c *coordinator) mergeShard(sh *shard, image []byte) {
	c.mergeMu.Lock()
	defer c.mergeMu.Unlock()
	corruptions, _ := journal.ReplayBytes(image, func(off int64, payload []byte) error {
		if _, err := c.merger.FoldRecord(payload, sh.lo); err != nil {
			c.noteCorrupt(journal.Corruption{Offset: off, Reason: err.Error()})
		}
		return nil
	})
	for _, corr := range corruptions {
		c.noteCorrupt(corr)
	}
	c.mMerged.Set(int64(c.merger.Units()))
}

// noteCorrupt audits one quarantined shipped record. mergeMu held.
func (c *coordinator) noteCorrupt(corr journal.Corruption) {
	c.ledger.Corrupt(1)
	c.cCorrupt.Inc()
	if c.corruptObs != nil {
		c.corruptObs(corr)
	}
}

// finish seals the merge: quarantined workers are recorded, the ledger
// document is persisted when a StateDir was given, and the report gets
// its terminal error (nil only for full coverage).
func (c *coordinator) finish(ctxErr error) (*Result, error) {
	c.mu.Lock()
	var degraded []int
	for _, sh := range c.shards {
		if !sh.done {
			degraded = append(degraded, sh.index)
		}
	}
	for _, w := range c.workers {
		if w.breaker.State() != harness.BreakerClosed {
			c.ledger.Quarantine(w.client.Name())
		}
	}
	c.mu.Unlock()

	var err error
	switch {
	case ctxErr != nil:
		err = ctxErr
	case len(degraded) > 0:
		err = fmt.Errorf("fabric: degraded: %d of %d shards abandoned (%v)", len(degraded), len(c.shards), degraded)
	}

	c.mergeMu.Lock()
	report := c.merger.Finish(err)
	c.mergeMu.Unlock()

	ledger := c.ledger.Clone()
	if c.opts.StateDir != "" {
		if store, serr := journal.Open(c.opts.StateDir); serr == nil {
			if payload, merr := json.Marshal(ledger); merr == nil {
				store.WriteDoc("fabric.json", payload) //nolint:errcheck // audit doc is best-effort
			}
		}
	}
	c.trace("merge sealed: %d/%d units, %d/%d shards", c.merger.Units(), c.opts.Config.Programs,
		ledger.ShardsDone, ledger.Shards)
	return &Result{Report: report, Faults: ledger}, err
}
