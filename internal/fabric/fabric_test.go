// The fabric's central promise, proved end to end: a campaign sharded
// across workers — with workers killed mid-shard, heartbeats stalled,
// shipments corrupted, and stragglers hedged — merges to a report
// byte-identical to an uninterrupted single-process run. The chaos
// here is seeded and searched for, not sampled, so every fault class
// provably fires on every run of the test.

package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/cli"
	"repro/internal/journal"
	"repro/internal/metrics"
)

// soakConfig is a campaign small enough for CI but rich enough to
// exercise the full pipeline: mutations on, harness chaos injecting
// panics, hangs, transients, and flaky probes.
func soakConfig(programs int) cli.Config {
	return cli.Config{
		Seed:           20220401,
		Programs:       programs,
		BatchSize:      7,
		Workers:        2,
		CompileTimeout: cli.Duration(250 * time.Millisecond),
		Retries:        2,
		Chaos:          0.1,
		SnapshotEvery:  -1,
	}
}

// refDoc runs the campaign uninterrupted in-process and returns its
// deterministic report document — the bytes the sharded run must match.
func refDoc(t *testing.T, cfg cli.Config) []byte {
	t.Helper()
	opts, err := cfg.CampaignOptions()
	if err != nil {
		t.Fatalf("CampaignOptions: %v", err)
	}
	report := campaign.Run(opts)
	if report.Err != nil {
		t.Fatalf("reference run failed: %v", report.Err)
	}
	return marshalDoc(t, report)
}

func marshalDoc(t *testing.T, report *campaign.Report) []byte {
	t.Helper()
	b, err := json.MarshalIndent(report.Doc(), "", "  ")
	if err != nil {
		t.Fatalf("marshal doc: %v", err)
	}
	return b
}

// startWorkers brings up n in-process workers over httptest and
// returns their clients. timeout is the per-call client budget — it is
// what turns a dead worker's silence into a failed call.
func startWorkers(t *testing.T, n int, chaos *ChaosOptions, timeout time.Duration) []*Client {
	t.Helper()
	var clients []*Client
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("w%d", i)
		w := NewWorker(WorkerOptions{Dir: t.TempDir(), Name: name, Chaos: chaos})
		srv := httptest.NewServer(w)
		t.Cleanup(srv.Close)
		t.Cleanup(w.Close) // LIFO: drain the lease before closing the server
		clients = append(clients, NewClientWith(name, srv.URL, &http.Client{Timeout: timeout}))
	}
	return clients
}

// executedAttempts simulates which attempts of one shard actually run
// under the coordinator's sequential-retry policy (no speculation): a
// kill, stall, or corrupt draw fails the attempt, the first clean draw
// covers the shard. Returns the executed fault draws and whether a
// clean attempt exists within the budget.
func executedAttempts(o ChaosOptions, shard, maxAttempts, units int) ([]faults, bool) {
	var out []faults
	for a := 0; a < maxAttempts; a++ {
		f := o.decide(shard, a, units)
		out = append(out, f)
		if !f.kill && !f.stall && !f.corrupt {
			return out, true
		}
	}
	return out, false
}

// findSoakSeed searches the deterministic chaos space for a seed that
// makes the soak a proof rather than a dice roll: exactly one kill
// fires across all executed attempts (so exactly one in-process worker
// goes permanently dead), at least one attempt stalls its heartbeats,
// at least one ships a corrupt journal, and every shard still reaches
// a clean attempt within the budget.
func findSoakSeed(t *testing.T, tmpl ChaosOptions, shards, maxAttempts, units int) int64 {
	t.Helper()
	for seed := int64(1); seed < 1_000_000; seed++ {
		o := tmpl
		o.Seed = seed
		kills, stalls, corrupts := 0, 0, 0
		ok := true
		for s := 0; s < shards; s++ {
			run, clean := executedAttempts(o, s, maxAttempts, units)
			if !clean {
				ok = false
				break
			}
			for _, f := range run {
				if f.kill {
					kills++
				}
				if f.stall && !f.kill {
					stalls++
				}
				if f.corrupt && !f.kill && !f.stall {
					corrupts++
				}
			}
		}
		if ok && kills == 1 && stalls >= 1 && corrupts >= 1 {
			return seed
		}
	}
	t.Fatal("no suitable chaos seed in search space")
	return 0
}

// TestFabricCleanRunMatchesSingleProcess is the base case: no
// worker-level chaos, shards ≠ workers, full harness chaos inside the
// units — the merged report must byte-match the single-process run.
func TestFabricCleanRunMatchesSingleProcess(t *testing.T) {
	t.Parallel()
	cfg := soakConfig(40)
	want := refDoc(t, cfg)

	clients := startWorkers(t, 3, nil, 2*time.Second)
	res, err := Run(context.Background(), Options{
		Config:         cfg,
		Shards:         5,
		Workers:        clients,
		HeartbeatEvery: 25 * time.Millisecond,
		CallTimeout:    2 * time.Second,
		RetryBackoff:   5 * time.Millisecond,
		SpeculateMin:   time.Minute, // no hedging in the clean run
	})
	if err != nil {
		t.Fatalf("fabric run: %v", err)
	}
	if got := marshalDoc(t, res.Report); !bytes.Equal(got, want) {
		t.Errorf("sharded report diverged from single-process run\n--- sharded ---\n%s\n--- single ---\n%s", got, want)
	}
	if res.Faults.Faults() {
		t.Errorf("clean run reported fabric faults:\n%s", res.Faults)
	}
	if res.Faults.ShardsDone != 5 {
		t.Errorf("ShardsDone = %d, want 5", res.Faults.ShardsDone)
	}
}

// TestFabricChaosSoak is the tentpole proof: workers killed mid-shard,
// heartbeats stalled, and a shipped journal corrupted — and the merged
// report still byte-matches the uninterrupted single-process run,
// with every fault visible in the ledger and metrics.
func TestFabricChaosSoak(t *testing.T) {
	t.Parallel()
	const (
		programs    = 60
		shards      = 6
		maxAttempts = 5
	)
	cfg := soakConfig(programs)
	want := refDoc(t, cfg)

	tmpl := ChaosOptions{
		KillRate:    0.25,
		StallRate:   0.25,
		SlowRate:    0.2,
		SlowDelay:   2 * time.Millisecond,
		CorruptRate: 0.25,
	}
	tmpl.Seed = findSoakSeed(t, tmpl, shards, maxAttempts, programs/shards)
	t.Logf("chaos seed %d", tmpl.Seed)

	// Four workers: the seed guarantees exactly one goes permanently
	// dead, leaving three to absorb reassignments. The heartbeat budget
	// (misses × call timeout) is deliberately generous — four shard
	// campaigns starting at once under -race can starve the process for
	// hundreds of milliseconds, and a twitchy death verdict would turn
	// every worker into a presumed corpse before its first unit folds.
	clients := startWorkers(t, 4, &tmpl, time.Second)
	reg := metrics.NewRegistry()
	trace := metrics.NewTrace(1024)
	res, err := Run(context.Background(), Options{
		Config:           cfg,
		Shards:           shards,
		Workers:          clients,
		HeartbeatEvery:   50 * time.Millisecond,
		HeartbeatMisses:  4,
		CallTimeout:      1200 * time.Millisecond,
		MaxAttempts:      maxAttempts,
		RetryBackoff:     25 * time.Millisecond,
		SpeculateMin:     time.Minute, // speculation has its own test
		BreakerThreshold: 4,           // one dead worker must not cascade
		Metrics:          reg,
		Trace:            trace,
	})
	if err != nil {
		for _, ev := range trace.Tail(1024) {
			if ev.Kind == "fabric" {
				t.Logf("trace: %s", ev.Detail)
			}
		}
		t.Fatalf("fabric run under chaos: %v\nledger:\n%s", err, res.Faults)
	}

	if got := marshalDoc(t, res.Report); !bytes.Equal(got, want) {
		t.Errorf("chaos-soaked sharded report diverged from single-process run\n--- sharded ---\n%s\n--- single ---\n%s", got, want)
	}

	led := res.Faults
	if led.ShardsDone != shards {
		t.Errorf("ShardsDone = %d, want %d\n%s", led.ShardsDone, shards, led)
	}
	if led.WorkerDeaths == 0 {
		t.Errorf("no worker deaths recorded despite kill+stall chaos\n%s", led)
	}
	if led.Reassignments == 0 {
		t.Errorf("no reassignments recorded despite failed attempts\n%s", led)
	}
	if led.CorruptShippedRecords == 0 {
		t.Errorf("no corrupt shipped records recorded despite corrupt chaos\n%s", led)
	}
	if len(led.DegradedShards) > 0 {
		t.Errorf("shards degraded in a seed chosen to avoid it: %v", led.DegradedShards)
	}

	snap := reg.Snapshot()
	if snap.Counters["fabric.worker_deaths"] != int64(led.WorkerDeaths) {
		t.Errorf("metrics deaths %d != ledger deaths %d", snap.Counters["fabric.worker_deaths"], led.WorkerDeaths)
	}
	if snap.Counters["fabric.reassignments"] != int64(led.Reassignments) {
		t.Errorf("metrics reassignments %d != ledger %d", snap.Counters["fabric.reassignments"], led.Reassignments)
	}
	if snap.Counters["journal_corrupt_records"] == 0 {
		t.Error("journal_corrupt_records counter never incremented for corrupt shipments")
	}
	if snap.Gauges["fabric.units_merged"] != int64(programs) {
		t.Errorf("fabric.units_merged = %d, want %d", snap.Gauges["fabric.units_merged"], programs)
	}
	var sawFabricEvent bool
	for _, ev := range trace.Tail(1024) {
		if ev.Kind == "fabric" {
			sawFabricEvent = true
			break
		}
	}
	if !sawFabricEvent {
		t.Error("no fabric trace events emitted")
	}
}

// TestFabricSpeculationRescuesStraggler pins the straggler policy: a
// shard whose first attempt draws slow chaos gets a speculative twin
// once its elapsed time passes the median completed-attempt duration,
// the twin wins, and the report still byte-matches the single-process
// run.
func TestFabricSpeculationRescuesStraggler(t *testing.T) {
	t.Parallel()
	const (
		programs = 16
		shards   = 2
	)
	cfg := soakConfig(programs)
	want := refDoc(t, cfg)

	// Seed search: shard 1's first attempt is slow (and only slow),
	// everything else clean, so the hedge provably fires and wins. The
	// delay is per admitted unit, so the straggler drags 8×2s behind a
	// clean run — far past any plausible clean-shard duration, which is
	// also the speculation threshold (median × SpeculateAfter=1). The
	// hedge therefore launches one clean-shard-duration in and finishes
	// while the straggler still has most of its sleep ahead.
	tmpl := ChaosOptions{SlowRate: 0.5, SlowDelay: 2 * time.Second}
	var seed int64
	for s := int64(1); s < 1_000_000; s++ {
		o := tmpl
		o.Seed = s
		f00 := o.decide(0, 0, programs/shards)
		f10 := o.decide(1, 0, programs/shards)
		f11 := o.decide(1, 1, programs/shards)
		if f00.slow == 0 && f10.slow > 0 && f11.slow == 0 {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no speculation seed found")
	}
	tmpl.Seed = seed

	clients := startWorkers(t, 2, &tmpl, 2*time.Second)
	res, err := Run(context.Background(), Options{
		Config:         cfg,
		Shards:         shards,
		Workers:        clients,
		HeartbeatEvery: 20 * time.Millisecond,
		CallTimeout:    2 * time.Second,
		RetryBackoff:   5 * time.Millisecond,
		SpeculateAfter: 1,
		SpeculateMin:   time.Millisecond,
	})
	if err != nil {
		t.Fatalf("fabric run: %v\n%s", err, res.Faults)
	}
	if got := marshalDoc(t, res.Report); !bytes.Equal(got, want) {
		t.Errorf("speculative report diverged from single-process run\n--- sharded ---\n%s\n--- single ---\n%s", got, want)
	}
	if res.Faults.SpeculativeLaunches == 0 {
		t.Errorf("straggler never hedged:\n%s", res.Faults)
	}
	if res.Faults.SpeculativeWins == 0 {
		t.Errorf("hedge launched but never won:\n%s", res.Faults)
	}
}

// TestFabricDegradesWhenWorkersExhausted pins graceful degradation:
// with the only worker dying on its first lease and refusing
// everything after, the run must terminate with a partial report and a
// fault ledger naming the abandoned shards — never hang.
func TestFabricDegradesWhenWorkersExhausted(t *testing.T) {
	t.Parallel()
	cfg := soakConfig(8)
	chaos := &ChaosOptions{Seed: 1, KillRate: 1} // every lease kills its worker
	clients := startWorkers(t, 1, chaos, 150*time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, Options{
		Config:           cfg,
		Shards:           2,
		Workers:          clients,
		HeartbeatEvery:   20 * time.Millisecond,
		HeartbeatMisses:  2,
		CallTimeout:      200 * time.Millisecond,
		MaxAttempts:      2,
		RetryBackoff:     5 * time.Millisecond,
		SpeculateMin:     time.Minute,
		BreakerThreshold: 2,
	})
	if ctx.Err() != nil {
		t.Fatal("degraded run hit the watchdog deadline — the fabric hung instead of degrading")
	}
	if err == nil {
		t.Fatal("exhausted-worker run reported success")
	}
	if res == nil || res.Report == nil {
		t.Fatal("degraded run returned no partial report")
	}
	if res.Report.Complete() {
		t.Error("degraded report claims completeness")
	}
	if res.Report.Doc().Error == "" {
		t.Error("degraded report doc carries no error")
	}
	if len(res.Faults.DegradedShards) == 0 {
		t.Errorf("no degraded shards in ledger:\n%s", res.Faults)
	}
	if res.Faults.WorkerDeaths == 0 {
		t.Errorf("worker death not recorded:\n%s", res.Faults)
	}
}

// TestWorkerProtocol pins the worker HTTP surface: busy 409s, unknown
// lease 404s, journal 409 while running, and journal shipping after.
func TestWorkerProtocol(t *testing.T) {
	t.Parallel()
	w := NewWorker(WorkerOptions{Dir: t.TempDir(), Name: "proto"})
	srv := httptest.NewServer(w)
	t.Cleanup(srv.Close)
	t.Cleanup(w.Close)
	client := NewClientWith("proto", srv.URL, &http.Client{Timeout: 5 * time.Second})
	ctx := context.Background()

	if err := client.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if _, err := client.Status(ctx, "nope"); err == nil {
		t.Error("status of unknown lease succeeded")
	}

	cfg := soakConfig(6)
	lease := Lease{ID: "s000-a0", Shard: 0, Lo: 0, Hi: 6, Config: cfg}
	if err := client.Lease(ctx, lease); err != nil {
		t.Fatalf("lease: %v", err)
	}
	// A second grant while the first runs must be refused, not queued.
	err := client.Lease(ctx, Lease{ID: "s001-a0", Shard: 1, Lo: 0, Hi: 6, Config: cfg})
	if err == nil {
		t.Error("second concurrent lease was accepted")
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := client.Status(ctx, lease.ID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if st.State == "done" {
			break
		}
		if st.State != "running" {
			t.Fatalf("lease ended in state %q (err %q)", st.State, st.Err)
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
	image, err := client.Journal(ctx, lease.ID)
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	if len(image) == 0 {
		t.Fatal("terminal lease shipped an empty journal")
	}

	// The shipped journal folds to full shard coverage.
	opts, err := cfg.CampaignOptions()
	if err != nil {
		t.Fatal(err)
	}
	m := campaign.NewMerger(opts)
	if _, err := foldImage(m, image, 0); err != nil {
		t.Fatalf("folding shipped journal: %v", err)
	}
	if missing := m.Missing(0, 6); len(missing) != 0 {
		t.Errorf("shipped journal missing units %v", missing)
	}
}

// foldImage folds a shipped journal image into m, for tests.
func foldImage(m *campaign.Merger, image []byte, offset int) (int, error) {
	folded := 0
	corruptions, err := journal.ReplayBytes(image, func(_ int64, payload []byte) error {
		ok, ferr := m.FoldRecord(payload, offset)
		if ferr != nil {
			return ferr
		}
		if ok {
			folded++
		}
		return nil
	})
	if err == nil && len(corruptions) > 0 {
		err = fmt.Errorf("%d corrupt records in clean shipment", len(corruptions))
	}
	return folded, err
}

// TestWorkerStatusNeverPhantomFails hammers the status endpoint across
// a healthy lease's completion. The status handler must never pair a
// stale pre-terminal campaign state with an observed-closed done
// channel — the race that intermittently reported a clean lease as
// "failed" with no error.
func TestWorkerStatusNeverPhantomFails(t *testing.T) {
	t.Parallel()
	w := NewWorker(WorkerOptions{Dir: t.TempDir(), Name: "phantom"})
	srv := httptest.NewServer(w)
	t.Cleanup(srv.Close)
	t.Cleanup(w.Close)
	client := NewClientWith("phantom", srv.URL, &http.Client{Timeout: 5 * time.Second})
	ctx := context.Background()

	for round := 0; round < 8; round++ {
		lease := Lease{ID: fmt.Sprintf("s%03d-a0", round), Shard: round, Lo: 0, Hi: 2,
			Config: soakConfig(2)}
		if err := client.Lease(ctx, lease); err != nil {
			t.Fatalf("round %d: lease: %v", round, err)
		}
		deadline := time.Now().Add(time.Minute)
		for {
			st, err := client.Status(ctx, lease.ID)
			if err != nil {
				t.Fatalf("round %d: status: %v", round, err)
			}
			if st.State == "done" {
				break
			}
			if st.State != "running" {
				t.Fatalf("round %d: healthy lease reported %q (err %q)", round, st.State, st.Err)
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d: lease never finished", round)
			}
		}
		if _, err := client.Journal(ctx, lease.ID); err != nil {
			t.Fatalf("round %d: journal after done: %v", round, err)
		}
	}
}
