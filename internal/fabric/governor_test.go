package fabric

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/cli"
)

// TestFabricShardedFuelExhaustionMatchesSingleProcess extends the
// fabric's byte-equality promise to the resource governor: with a fuel
// budget set and pathological stress units exhausting it, the merged
// sharded report must byte-match the single-process run. This holds
// only because exhaustion is a pure function of (program, budget) —
// never of which worker ran the unit, how its caches were warmed, or
// where the shard boundaries fell — and because the fuel budget ships
// to workers inside the lease's cli.Config.
func TestFabricShardedFuelExhaustionMatchesSingleProcess(t *testing.T) {
	t.Parallel()
	cfg := cli.Config{
		Seed:           20220401,
		Programs:       24,
		BatchSize:      7,
		Workers:        2,
		CompileTimeout: cli.Duration(5 * time.Second),
		Fuel:           30000,
		StressEvery:    4,
		SnapshotEvery:  -1,
	}
	want := refDoc(t, cfg)

	clients := startWorkers(t, 3, nil, 10*time.Second)
	res, err := Run(context.Background(), Options{
		Config:         cfg,
		Shards:         5,
		Workers:        clients,
		HeartbeatEvery: 25 * time.Millisecond,
		CallTimeout:    10 * time.Second,
		RetryBackoff:   5 * time.Millisecond,
		SpeculateMin:   time.Minute,
	})
	if err != nil {
		t.Fatalf("fabric run: %v", err)
	}
	if got := marshalDoc(t, res.Report); !bytes.Equal(got, want) {
		t.Errorf("sharded fuel-exhaustion report diverged from single-process run\n--- sharded ---\n%s\n--- single ---\n%s", got, want)
	}
}
