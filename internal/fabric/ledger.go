// The fabric fault ledger: an audit of everything the distribution
// layer survived. It is deliberately a separate type from
// harness.Ledger — harness faults (crashes, timeouts, retries) are part
// of the deterministic report and must byte-compare against a
// single-process run, while fabric faults (worker deaths, stalls,
// reassignments, speculation) exist only because the campaign was
// sharded and would break byte-equality if they leaked into the report.

package fabric

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// WorkerRecord audits one worker's service over a campaign.
type WorkerRecord struct {
	// Leases counts lease attempts assigned to the worker (including
	// ones it never acknowledged).
	Leases int `json:"leases"`
	// Completed counts leases that ran to a fully merged shard.
	Completed int `json:"completed"`
	// Failures counts leases abandoned on this worker: refused or
	// unreachable lease grants, missed-heartbeat deaths, failed runs,
	// and shipments that left the shard uncovered.
	Failures int `json:"failures,omitempty"`
	// Quarantined is true when the worker's breaker was open at the end
	// of the campaign — the coordinator had stopped trusting it.
	Quarantined bool `json:"quarantined,omitempty"`
}

// Ledger is the coordinator's fault audit for one sharded campaign.
// All methods are safe for concurrent use.
type Ledger struct {
	mu sync.Mutex

	// Shards is the total shard count; ShardsDone counts shards whose
	// units all merged.
	Shards     int `json:"shards"`
	ShardsDone int `json:"shards_done"`
	// DegradedShards lists shards abandoned after exhausting their
	// attempt budget; their units are missing from the partial report.
	DegradedShards []int `json:"degraded_shards,omitempty"`
	// WorkerDeaths counts leases abandoned because the worker missed
	// its heartbeat deadline (a killed process and a stalled one are
	// indistinguishable from the coordinator's side).
	WorkerDeaths int `json:"worker_deaths,omitempty"`
	// LeaseRefusals counts lease grants the worker refused or never
	// acknowledged (unreachable, busy, or already dead).
	LeaseRefusals int `json:"lease_refusals,omitempty"`
	// Reassignments counts shard attempts launched beyond each shard's
	// first — the re-execution traffic dead and stalled workers caused.
	Reassignments int `json:"reassignments,omitempty"`
	// SpeculativeLaunches counts straggler hedges: duplicate attempts
	// launched while the original was still running. SpeculativeWins
	// counts the hedges that finished first.
	SpeculativeLaunches int `json:"speculative_launches,omitempty"`
	SpeculativeWins     int `json:"speculative_wins,omitempty"`
	// CorruptShippedRecords counts journal records quarantined while
	// merging shipped shard journals (the units simply re-ran).
	CorruptShippedRecords int `json:"corrupt_shipped_records,omitempty"`
	// PerWorker audits each worker by name.
	PerWorker map[string]*WorkerRecord `json:"per_worker,omitempty"`
}

// NewLedger returns an empty ledger for a campaign of shards shards.
func NewLedger(shards int) *Ledger {
	return &Ledger{Shards: shards, PerWorker: map[string]*WorkerRecord{}}
}

func (l *Ledger) worker(name string) *WorkerRecord {
	r := l.PerWorker[name]
	if r == nil {
		r = &WorkerRecord{}
		l.PerWorker[name] = r
	}
	return r
}

// Leased records a lease attempt assigned to worker name; reassigned
// marks attempts beyond the shard's first, speculative marks straggler
// hedges.
func (l *Ledger) Leased(name string, reassigned, speculative bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.worker(name).Leases++
	if reassigned {
		l.Reassignments++
	}
	if speculative {
		l.SpeculativeLaunches++
	}
}

// Refused records a lease grant the worker refused or never answered.
func (l *Ledger) Refused(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.LeaseRefusals++
	l.worker(name).Failures++
}

// Died records a lease abandoned after missed heartbeats.
func (l *Ledger) Died(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.WorkerDeaths++
	l.worker(name).Failures++
}

// Failed records a lease that ran but did not cover its shard (failed
// run, corrupt or incomplete shipment).
func (l *Ledger) Failed(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.worker(name).Failures++
}

// Completed records a lease that ran to a fully merged shard;
// speculativeWin marks a hedge that beat the original attempt.
func (l *Ledger) Completed(name string, speculativeWin bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ShardsDone++
	l.worker(name).Completed++
	if speculativeWin {
		l.SpeculativeWins++
	}
}

// Corrupt records n quarantined records from one shipped journal.
func (l *Ledger) Corrupt(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.CorruptShippedRecords += n
}

// Degraded records a shard abandoned after exhausting its attempts.
func (l *Ledger) Degraded(shard int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.DegradedShards = append(l.DegradedShards, shard)
	sort.Ints(l.DegradedShards)
}

// Quarantine marks a worker whose breaker ended the campaign open.
func (l *Ledger) Quarantine(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.worker(name).Quarantined = true
}

// Clone returns a deep copy safe to hold across later updates.
func (l *Ledger) Clone() *Ledger {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := &Ledger{
		Shards: l.Shards, ShardsDone: l.ShardsDone,
		DegradedShards: append([]int(nil), l.DegradedShards...),
		WorkerDeaths:   l.WorkerDeaths, LeaseRefusals: l.LeaseRefusals,
		Reassignments:       l.Reassignments,
		SpeculativeLaunches: l.SpeculativeLaunches, SpeculativeWins: l.SpeculativeWins,
		CorruptShippedRecords: l.CorruptShippedRecords,
		PerWorker:             map[string]*WorkerRecord{},
	}
	for name, r := range l.PerWorker {
		cp := *r
		out.PerWorker[name] = &cp
	}
	return out
}

// Faults reports whether the fabric survived anything worth printing.
func (l *Ledger) Faults() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.WorkerDeaths > 0 || l.LeaseRefusals > 0 || l.Reassignments > 0 ||
		l.SpeculativeLaunches > 0 || l.CorruptShippedRecords > 0 || len(l.DegradedShards) > 0
}

// String renders the ledger for CLI output.
func (l *Ledger) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "fabric: %d/%d shards merged", l.ShardsDone, l.Shards)
	if len(l.DegradedShards) > 0 {
		fmt.Fprintf(&b, " (degraded: shards %v abandoned)", l.DegradedShards)
	}
	fmt.Fprintf(&b, "\n  worker deaths %d, lease refusals %d, reassignments %d, speculative %d (won %d), corrupt shipped records %d",
		l.WorkerDeaths, l.LeaseRefusals, l.Reassignments,
		l.SpeculativeLaunches, l.SpeculativeWins, l.CorruptShippedRecords)
	names := make([]string, 0, len(l.PerWorker))
	for name := range l.PerWorker {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := l.PerWorker[name]
		fmt.Fprintf(&b, "\n  %s: leases %d, completed %d, failures %d", name, r.Leases, r.Completed, r.Failures)
		if r.Quarantined {
			b.WriteString(" [quarantined]")
		}
	}
	return b.String()
}
