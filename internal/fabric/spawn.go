// Spawning local worker processes: cmd/campaign -shards uses this to
// bring up N cmd/worker processes, parse each one's announce line for
// its address and pid, and hand the coordinator ready clients. The
// pids are re-printed on the campaign's own stdout so a chaos harness
// (CI's soak step) can kill -9 or SIGSTOP specific workers mid-run.

package fabric

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"time"
)

// announceRE matches cmd/worker's startup line:
// "worker NAME listening on http://ADDR pid=PID".
var announceRE = regexp.MustCompile(`^worker (\S+) listening on (http://\S+) pid=(\d+)$`)

// SpawnedWorker is one locally spawned cmd/worker process.
type SpawnedWorker struct {
	Client *Client
	Name   string
	Addr   string
	Pid    int
	cmd    *exec.Cmd
}

// SpawnOptions configures SpawnWorkers.
type SpawnOptions struct {
	// Bin is the cmd/worker binary path.
	Bin string
	// Count is how many workers to spawn.
	Count int
	// Dir is the parent scratch directory; each worker gets Dir/worker-i.
	// Empty means each worker picks its own temp dir.
	Dir string
	// Chaos, when non-nil, is forwarded to every worker as chaos flags.
	Chaos *ChaosOptions
	// CallTimeout is the per-call client budget against these workers;
	// 0 means the client default.
	CallTimeout time.Duration
	// Announce, when non-nil, receives one line per worker with its
	// name, pid, and address — the hook CI's chaos soak parses.
	Announce io.Writer
}

// SpawnWorkers starts opts.Count worker processes and returns them
// with connected clients. The returned stop function kills any still
// alive and reaps them; call it even after a successful campaign.
func SpawnWorkers(opts SpawnOptions) ([]*SpawnedWorker, func(), error) {
	if opts.Bin == "" {
		return nil, nil, fmt.Errorf("fabric: no worker binary")
	}
	if opts.Count <= 0 {
		return nil, nil, fmt.Errorf("fabric: spawn count %d", opts.Count)
	}
	var workers []*SpawnedWorker
	stop := func() {
		for _, w := range workers {
			if w.cmd.Process != nil {
				w.cmd.Process.Kill() //nolint:errcheck // already-dead workers are fine
			}
			w.cmd.Wait() //nolint:errcheck // reap; exit status is irrelevant
		}
	}
	for i := 0; i < opts.Count; i++ {
		name := fmt.Sprintf("w%d", i)
		args := []string{"-addr", "127.0.0.1:0", "-name", name}
		if opts.Dir != "" {
			args = append(args, "-dir", filepath.Join(opts.Dir, "worker-"+name))
		}
		if opts.Chaos.Enabled() {
			args = append(args,
				"-chaos-seed", strconv.FormatInt(opts.Chaos.Seed, 10),
				"-chaos-kill", fmt.Sprintf("%g", opts.Chaos.KillRate),
				"-chaos-stall", fmt.Sprintf("%g", opts.Chaos.StallRate),
				"-chaos-slow", fmt.Sprintf("%g", opts.Chaos.SlowRate),
				"-chaos-slow-delay", opts.Chaos.SlowDelay.String(),
				"-chaos-corrupt", fmt.Sprintf("%g", opts.Chaos.CorruptRate),
			)
		}
		cmd := exec.Command(opts.Bin, args...)
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			stop()
			return nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			stop()
			return nil, nil, fmt.Errorf("fabric: spawn %s: %w", name, err)
		}
		w := &SpawnedWorker{Name: name, cmd: cmd}
		workers = append(workers, w)

		// Parse the announce line; drain the rest of stdout in the
		// background so the worker never blocks on a full pipe.
		scanner := bufio.NewScanner(stdout)
		announced := false
		for scanner.Scan() {
			m := announceRE.FindStringSubmatch(scanner.Text())
			if m == nil {
				continue
			}
			w.Name, w.Addr = m[1], m[2]
			w.Pid, _ = strconv.Atoi(m[3])
			announced = true
			break
		}
		if !announced {
			stop()
			return nil, nil, fmt.Errorf("fabric: worker %s exited before announcing", name)
		}
		go func() {
			for scanner.Scan() {
			}
		}()
		w.Client = NewClient(w.Name, w.Addr, opts.CallTimeout)
		if opts.Announce != nil {
			fmt.Fprintf(opts.Announce, "fabric worker %s: pid=%d addr=%s\n", w.Name, w.Pid, w.Addr)
		}
	}
	return workers, stop, nil
}

// Clients extracts the coordinator-facing clients of spawned workers.
func Clients(workers []*SpawnedWorker) []*Client {
	out := make([]*Client, len(workers))
	for i, w := range workers {
		out[i] = w.Client
	}
	return out
}
