package fabric

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/cli"
)

// TestFabricShardedSynthesisMatchesSingleProcess extends the fabric's
// byte-equality promise to API-driven synthesis: a -synth campaign
// merged across shards must byte-match the single-process run. This
// holds only because the synthesis cadence is a pure function of the
// unit seed — every shard agrees which units are synthesized without
// coordination — and because the cadence and corpus path ship to
// workers inside the lease's cli.Config.
func TestFabricShardedSynthesisMatchesSingleProcess(t *testing.T) {
	t.Parallel()
	cfg := cli.Config{
		Seed:           20231104,
		Programs:       24,
		BatchSize:      7,
		Workers:        2,
		CompileTimeout: cli.Duration(5 * time.Second),
		SynthEvery:     2,
		SnapshotEvery:  -1,
	}
	want := refDoc(t, cfg)

	clients := startWorkers(t, 3, nil, 10*time.Second)
	res, err := Run(context.Background(), Options{
		Config:         cfg,
		Shards:         5,
		Workers:        clients,
		HeartbeatEvery: 25 * time.Millisecond,
		CallTimeout:    10 * time.Second,
		RetryBackoff:   5 * time.Millisecond,
		SpeculateMin:   time.Minute,
	})
	if err != nil {
		t.Fatalf("fabric run: %v", err)
	}
	if got := marshalDoc(t, res.Report); !bytes.Equal(got, want) {
		t.Errorf("sharded synthesis report diverged from single-process run\n--- sharded ---\n%s\n--- single ---\n%s", got, want)
	}
}
