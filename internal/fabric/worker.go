// The worker half of the fabric: an HTTP server that accepts one shard
// lease at a time and runs it as an ordinary durable campaign — the
// full pipeline+harness+journal stack, unchanged — over the shard's
// slice of the global seed space. The shard campaign's base seed is
// the global seed plus the shard's lower bound while the harness and
// chaos seeds stay global, so every per-unit decision (injected
// faults, retry jitter, flaky probes) is exactly the decision the
// uninterrupted single-process run would have made for that unit.
//
// Worker-level chaos (the PR 2 injector extended to process
// granularity) is decided per (shard, attempt) from a seeded hash, so
// a reassigned attempt is not deterministically re-killed:
//
//   - kill: the worker dies mid-shard (SIGKILL in cmd/worker; an
//     in-process worker just stops answering, which is
//     indistinguishable over HTTP);
//   - stall: the lease-status endpoint hangs — heartbeats stop while
//     the shard keeps running;
//   - slow: every unit admission sleeps, turning the shard into a
//     straggler for the coordinator's speculation policy;
//   - corrupt: the shipped journal has one byte flipped, exercising
//     the coordinator's quarantine + re-run path.

package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/cli"
	"repro/internal/journal"
	"repro/internal/metrics"
)

// Lease is one shard grant: the coordinator POSTs it to a worker,
// which runs global units [Lo, Hi) of the campaign Config describes.
type Lease struct {
	// ID names the grant; every status poll and the journal fetch key
	// on it. Unique per (shard, attempt).
	ID string `json:"id"`
	// Shard is the shard index; Lo and Hi bound its global unit range.
	Shard int `json:"shard"`
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	// Attempt numbers re-executions of the shard, starting at 0; the
	// worker-chaos decision is keyed on (Shard, Attempt) so a
	// reassigned shard draws fresh faults.
	Attempt int `json:"attempt"`
	// Config is the global campaign configuration — the same JSON shape
	// the fuzzing server accepts. The worker derives its shard-local
	// options from it; process-local fields never ship.
	Config cli.Config `json:"config"`
}

// LeaseStatus is one heartbeat answer.
type LeaseStatus struct {
	ID string `json:"id"`
	// State is the shard campaign's lifecycle state: "running", "done",
	// "cancelled", or "failed".
	State string `json:"state"`
	// Units counts folded units, the liveness signal behind the state.
	Units int `json:"units"`
	// Err carries the terminal error for failed runs.
	Err string `json:"err,omitempty"`
}

// ChaosOptions injects worker-level faults, the distribution-layer
// analogue of harness.ChaosOptions. Decisions are seeded per (shard,
// attempt) — never per wall clock — so a soak test can predict exactly
// which leases misbehave.
type ChaosOptions struct {
	// Seed keys every fault decision.
	Seed int64 `json:"seed"`
	// KillRate is the probability a lease kills its worker mid-shard.
	KillRate float64 `json:"kill_rate"`
	// StallRate is the probability a lease's heartbeats stall while the
	// shard keeps running.
	StallRate float64 `json:"stall_rate"`
	// SlowRate is the probability a lease runs slow (SlowDelay per
	// unit), exercising straggler speculation.
	SlowRate float64 `json:"slow_rate"`
	// SlowDelay is the per-unit delay of a slow lease; 0 means 20ms.
	SlowDelay time.Duration `json:"slow_delay"`
	// CorruptRate is the probability a shipped journal has a byte
	// flipped.
	CorruptRate float64 `json:"corrupt_rate"`
}

// Enabled reports whether any fault class can fire.
func (o *ChaosOptions) Enabled() bool {
	return o != nil && (o.KillRate > 0 || o.StallRate > 0 || o.SlowRate > 0 || o.CorruptRate > 0)
}

// faults is one lease's drawn fault set.
type faults struct {
	kill      bool
	killAfter int // units admitted before the kill fires
	stall     bool
	slow      time.Duration
	corrupt   bool
}

// decide draws the fault set for one (shard, attempt), keyed on the
// chaos seed — deterministic wherever the lease lands.
func (o *ChaosOptions) decide(shard, attempt, units int) faults {
	var f faults
	if !o.Enabled() {
		return f
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "fabric-chaos:%d:%d:%d", o.Seed, shard, attempt)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	if rng.Float64() < o.KillRate {
		f.kill = true
		f.killAfter = units/2 + 1 // mid-shard, after real work has folded
	}
	if rng.Float64() < o.StallRate {
		f.stall = true
	}
	if rng.Float64() < o.SlowRate {
		f.slow = o.SlowDelay
		if f.slow <= 0 {
			f.slow = 20 * time.Millisecond
		}
	}
	if rng.Float64() < o.CorruptRate {
		f.corrupt = true
	}
	return f
}

// WorkerOptions configures a worker server.
type WorkerOptions struct {
	// Dir is the scratch directory for shard state (one subdirectory
	// per lease, reset on reuse).
	Dir string
	// Name labels the worker in its own trace events.
	Name string
	// Chaos, when non-nil, injects worker-level faults.
	Chaos *ChaosOptions
	// Kill is the chaos kill behavior: cmd/worker installs SIGKILL on
	// itself; nil means the in-process simulation — the worker stops
	// answering HTTP entirely (indistinguishable from a dead process to
	// the coordinator) and cancels its shard.
	Kill func()
	// Metrics and Trace observe the worker's shard campaigns; nil
	// disables instrumentation.
	Metrics *metrics.Registry
	Trace   *metrics.Trace
}

// Worker hosts shard leases over HTTP: POST /leases grants one, GET
// /leases/{id} heartbeats it, GET /leases/{id}/journal ships the shard
// journal once the run is terminal, POST /leases/{id}/cancel stops it,
// GET /healthz answers liveness. One lease runs at a time; a grant
// arriving while another lease is still running is refused with 409.
type Worker struct {
	opts WorkerOptions
	mux  *http.ServeMux

	mu   sync.Mutex
	cur  *leaseRun
	dead bool

	leases *metrics.Counter
	kills  *metrics.Counter
	stalls *metrics.Counter
}

// leaseRun is one granted lease's lifetime.
type leaseRun struct {
	lease    Lease
	f        faults
	camp     *campaign.Campaign
	cancel   context.CancelFunc
	done     chan struct{}
	stateDir string
	err      error
}

// NewWorker returns a worker server rooted at opts.Dir.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.Name == "" {
		opts.Name = "worker"
	}
	w := &Worker{
		opts:   opts,
		leases: opts.Metrics.Counter("fabric.worker.leases"),
		kills:  opts.Metrics.Counter("fabric.worker.chaos_kills"),
		stalls: opts.Metrics.Counter("fabric.worker.chaos_stalls"),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /leases", w.handleLease)
	mux.HandleFunc("GET /leases/{id}", w.handleStatus)
	mux.HandleFunc("GET /leases/{id}/journal", w.handleJournal)
	mux.HandleFunc("POST /leases/{id}/cancel", w.handleCancel)
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
		fmt.Fprintln(rw, "ok")
	})
	w.mux = mux
	return w
}

// ServeHTTP implements http.Handler. A chaos-killed in-process worker
// answers nothing — the request hangs until the client gives up,
// exactly what a SIGKILLed process looks like from the far side.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	dead := w.dead
	w.mu.Unlock()
	if dead {
		// Drain the body first: the server only watches for the client
		// hanging up once the request body is consumed, so parking on
		// the context with an unread POST body would hang this handler
		// forever (past the client's own timeout), wedging server
		// shutdown.
		io.Copy(io.Discard, r.Body) //nolint:errcheck // the bytes are irrelevant
		<-r.Context().Done()
		return
	}
	w.mux.ServeHTTP(rw, r)
}

// Close cancels any running lease and waits for it to drain.
func (w *Worker) Close() {
	w.mu.Lock()
	lr := w.cur
	w.mu.Unlock()
	if lr != nil {
		lr.cancel()
		<-lr.done
	}
}

// die is the in-process kill: stop answering HTTP and cancel the shard.
func (w *Worker) die(lr *leaseRun) {
	w.kills.Inc()
	w.opts.Trace.Emit(metrics.Event{Kind: "fabric", Seq: -1, Stage: "worker",
		Detail: fmt.Sprintf("%s: chaos kill during lease %s", w.opts.Name, lr.lease.ID)})
	if w.opts.Kill != nil {
		w.opts.Kill() // a real process does not return from SIGKILL
		return
	}
	w.mu.Lock()
	w.dead = true
	w.mu.Unlock()
	lr.cancel()
}

// handleLease grants a shard lease and starts its campaign.
func (w *Worker) handleLease(rw http.ResponseWriter, r *http.Request) {
	var lease Lease
	if err := json.NewDecoder(r.Body).Decode(&lease); err != nil {
		http.Error(rw, fmt.Sprintf("bad lease: %v", err), http.StatusBadRequest)
		return
	}
	if lease.ID == "" || lease.Lo < 0 || lease.Hi <= lease.Lo {
		http.Error(rw, fmt.Sprintf("bad lease: id=%q range [%d,%d)", lease.ID, lease.Lo, lease.Hi), http.StatusBadRequest)
		return
	}
	opts, err := lease.Config.CampaignOptions()
	if err != nil {
		http.Error(rw, fmt.Sprintf("bad lease config: %v", err), http.StatusBadRequest)
		return
	}

	w.mu.Lock()
	if w.cur != nil {
		select {
		case <-w.cur.done:
			// The previous lease is terminal; replace it.
		default:
			id := w.cur.lease.ID
			w.mu.Unlock()
			http.Error(rw, fmt.Sprintf("busy with lease %s", id), http.StatusConflict)
			return
		}
	}

	// Shard remap: the shard campaign is the global campaign restricted
	// to [Lo, Hi) — base seed shifts by Lo so unit seeds stay global,
	// while the harness and chaos seeds inside opts already carry the
	// global Config.Seed and are left alone.
	opts.Seed = lease.Config.Seed + int64(lease.Lo)
	opts.Programs = lease.Hi - lease.Lo
	opts.StateDir = filepath.Join(w.opts.Dir, "lease-"+pathSafe(lease.ID))
	opts.Resume = false
	opts.SnapshotEvery = -1 // journal-only: the journal is the shipment
	opts.Metrics = w.opts.Metrics
	opts.Trace = w.opts.Trace

	lr := &leaseRun{lease: lease, done: make(chan struct{}), stateDir: opts.StateDir}
	if w.opts.Chaos != nil {
		lr.f = w.opts.Chaos.decide(lease.Shard, lease.Attempt, opts.Programs)
	}

	// The admission gate carries the kill and slow fault classes:
	// scheduling-only by construction, so the shard's folded records
	// are untouched — a killed or slow lease's completed units are
	// byte-identical to anyone else's.
	admitted := 0
	opts.Gate = func(ctx context.Context) error {
		admitted++
		if lr.f.slow > 0 {
			t := time.NewTimer(lr.f.slow)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
		if lr.f.kill && admitted > lr.f.killAfter {
			w.die(lr)
			return context.Canceled
		}
		return nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	lr.cancel = cancel
	lr.camp = campaign.New(opts)
	w.cur = lr
	w.mu.Unlock()

	w.leases.Inc()
	if lr.f.stall {
		w.stalls.Inc()
	}
	w.opts.Trace.Emit(metrics.Event{Kind: "fabric", Seq: -1, Stage: "worker",
		Detail: fmt.Sprintf("%s: lease %s units [%d,%d) attempt %d", w.opts.Name, lease.ID, lease.Lo, lease.Hi, lease.Attempt)})

	// Grant first, start after: Start opens the journal (an fsync) and
	// spins up the pipeline, which can outlast the coordinator's call
	// budget on a loaded machine. The grant must be O(1) or lease POSTs
	// time out client-side while the worker starts the shard anyway —
	// an orphaned lease the coordinator can only see as a refusal.
	go func() {
		if err := lr.camp.Start(ctx); err != nil {
			lr.err = err
			cancel()
			close(lr.done)
			return
		}
		_, err := lr.camp.Wait()
		lr.err = err
		cancel()
		close(lr.done)
	}()

	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(map[string]string{"id": lease.ID, "state": "running"})
}

// lookup returns the current lease if it matches id.
func (w *Worker) lookup(id string) *leaseRun {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cur == nil || w.cur.lease.ID != id {
		return nil
	}
	return w.cur
}

// handleStatus answers one heartbeat poll. A stall-chaos lease hangs
// here — the shard keeps running, but the coordinator hears nothing.
func (w *Worker) handleStatus(rw http.ResponseWriter, r *http.Request) {
	lr := w.lookup(r.PathValue("id"))
	if lr == nil {
		http.NotFound(rw, r)
		return
	}
	if lr.f.stall {
		<-r.Context().Done()
		return
	}
	st := LeaseStatus{ID: lr.lease.ID, Units: lr.camp.Status().Units}
	select {
	case <-lr.done:
		// Read the state only after observing done: reading it first
		// races the final transition, pairing a stale "running" with a
		// closed done channel — a phantom "failed" lease.
		st.State = lr.camp.State().String()
		if lr.err != nil {
			st.Err = lr.err.Error()
		}
		if st.State == "new" || st.State == "running" {
			// The run ended before (or without) a clean state
			// transition — Start failed, or the campaign died. Report
			// it terminal so the coordinator does not poll forever.
			st.State = "failed"
		}
	default:
		// Until done closes the lease is "running", whatever the
		// campaign state says: "new" means granted-but-not-started, and
		// a terminal state means the run goroutine hasn't published yet
		// — the journal is not shippable until it has.
		st.State = "running"
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(st)
}

// handleJournal ships the shard journal once the run is terminal.
func (w *Worker) handleJournal(rw http.ResponseWriter, r *http.Request) {
	lr := w.lookup(r.PathValue("id"))
	if lr == nil {
		http.NotFound(rw, r)
		return
	}
	select {
	case <-lr.done:
	default:
		http.Error(rw, "lease still running", http.StatusConflict)
		return
	}
	store, err := journal.Open(lr.stateDir)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	b, err := store.JournalBytes()
	if err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
		return
	}
	if lr.f.corrupt && len(b) > 0 {
		// Chaos: flip one mid-file byte in the shipment (the on-disk
		// journal is untouched). The coordinator's CRC check quarantines
		// the record it lands in and re-runs the hole.
		b = append([]byte(nil), b...)
		b[len(b)/2] ^= 0xff
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Write(b)
}

// handleCancel stops the lease's campaign; the coordinator calls it on
// attempts whose shard another attempt already covered.
func (w *Worker) handleCancel(rw http.ResponseWriter, r *http.Request) {
	lr := w.lookup(r.PathValue("id"))
	if lr == nil {
		http.NotFound(rw, r)
		return
	}
	lr.cancel()
	rw.WriteHeader(http.StatusOK)
	fmt.Fprintln(rw, "cancelling")
}

// pathSafe maps a lease ID onto a filesystem-safe directory name.
func pathSafe(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, id)
}
