// Package generator implements the Hephaestus program generator
// (Section 3.2): a type-driven generator of well-typed IR programs that
// lean heavily on parametric polymorphism and type inference surface —
// the features with the highest typing-bug-revealing capability (finding
// F4) — while avoiding loops and arithmetic, which are irrelevant to
// typing bugs.
//
// The generator is seeded and fully deterministic. Every program it emits
// is well-typed with respect to the reference checker; the test suite
// enforces this invariant over thousands of seeds.
package generator

// Config controls program generation. It corresponds to the generator's
// "config" input in Figure 3: features can be disabled outright or have
// their probability distribution adjusted.
type Config struct {
	// Seed drives all randomness; equal seeds give equal programs.
	Seed int64

	// MaxTopLevelDecls bounds the number of top-level declarations
	// (paper setting: 10).
	MaxTopLevelDecls int
	// MaxDepth bounds expression nesting (paper setting: 7). Beyond the
	// maximum depth, objects are initialized with constants (val(t),
	// translated to cast null expressions).
	MaxDepth int
	// MaxTypeParams bounds type parameters per parameterized declaration
	// (paper setting: 3).
	MaxTypeParams int
	// MaxLocals bounds local variable declarations per block (paper
	// setting: 3).
	MaxLocals int
	// MaxParams bounds parameters per method (paper setting: 2).
	MaxParams int
	// MaxFields bounds fields per class.
	MaxFields int
	// MaxMethods bounds methods per class.
	MaxMethods int

	// Feature toggles.
	ParametricPolymorphism bool
	BoundedPolymorphism    bool
	Variance               bool
	UseSiteVariance        bool
	Lambdas                bool
	MethodReferences       bool
	Conditionals           bool
	Inheritance            bool

	// ProbParameterizedClass is the probability that a generated class
	// introduces type parameters.
	ProbParameterizedClass float64
	// ProbParameterizedFunc is the probability that a generated function
	// introduces type parameters.
	ProbParameterizedFunc float64
	// ProbBound is the probability that a type parameter gets an upper
	// bound (when BoundedPolymorphism is on).
	ProbBound float64

	// Stress configures the pathological-program stress generator
	// (stress.go); the zero value disables it. Stress cadence and shapes
	// are keyed on unit seeds, so the field is verdict-affecting and part
	// of the campaign fingerprint.
	Stress StressConfig
}

// DefaultConfig returns the settings used in the paper's testing campaign
// (Section 4.1).
func DefaultConfig() Config {
	return Config{
		MaxTopLevelDecls: 10,
		MaxDepth:         7,
		MaxTypeParams:    3,
		MaxLocals:        3,
		MaxParams:        2,
		MaxFields:        2,
		MaxMethods:       2,

		ParametricPolymorphism: true,
		BoundedPolymorphism:    true,
		Variance:               true,
		UseSiteVariance:        true,
		Lambdas:                true,
		MethodReferences:       true,
		Conditionals:           true,
		Inheritance:            true,

		ProbParameterizedClass: 0.65,
		ProbParameterizedFunc:  0.4,
		ProbBound:              0.35,
	}
}

// WithSeed returns a copy of the config with the seed set.
func (c Config) WithSeed(seed int64) Config {
	c.Seed = seed
	return c
}

// Normalized returns the config with every limit clamped to the
// workable minimum the generator actually runs with. New applies the
// same clamps internally, so generation never sees an unworkable
// limit either way; the point of exposing them is that anything that
// records a config — the campaign fingerprint, the journal header —
// must record the effective values, not the caller's pre-clamp ones,
// or a resumed run could pass fingerprint validation against state
// produced by a different effective config.
func (c Config) Normalized() Config {
	clamp := func(v *int, min int) {
		if *v < min {
			*v = min
		}
	}
	clamp(&c.MaxTopLevelDecls, 3)
	clamp(&c.MaxDepth, 2)
	clamp(&c.MaxTypeParams, 1)
	clamp(&c.MaxLocals, 1)
	clamp(&c.MaxParams, 0)
	clamp(&c.MaxFields, 0)
	clamp(&c.MaxMethods, 0)
	return c
}
