package generator

import (
	"repro/internal/ir"
	"repro/internal/types"
)

// generateExpr produces a random expression whose static type conforms to
// the requested type t (the type-driven approach of Section 3.2: first a
// type, then an expression of a subtype). Generation never fails: when no
// richer strategy applies — or the depth budget is exhausted — it falls
// back to a constant val(t), which translators render as a literal or a
// cast null expression.
func (g *Generator) generateExpr(t types.Type, sc *scope, depth int) ir.Expr {
	if depth <= 0 {
		return g.leafExpr(t, sc)
	}
	type strategy func() ir.Expr
	var strategies []strategy

	if v := g.scopeVarOf(t, sc); v != nil {
		strategies = append(strategies, func() ir.Expr { return v })
	}
	strategies = append(strategies, func() ir.Expr { return g.newExpr(t, sc, depth) })
	strategies = append(strategies, func() ir.Expr { return g.resolveMethodCall(t, sc, depth) })
	strategies = append(strategies, func() ir.Expr { return g.resolveFieldAccess(t, sc, depth) })
	if g.cfg.Conditionals && depth >= 2 {
		strategies = append(strategies, func() ir.Expr {
			return &ir.If{
				Cond: g.boolExpr(sc, depth-1),
				Then: g.generateExpr(t, sc, depth-1),
				Else: g.generateExpr(t, sc, depth-1),
			}
		})
	}
	if ft, ok := t.(*types.Func); ok {
		if g.cfg.Lambdas {
			strategies = append(strategies, func() ir.Expr { return g.lambdaExpr(ft, sc, depth) })
		}
		if g.cfg.MethodReferences {
			strategies = append(strategies, func() ir.Expr { return g.methodRefExpr(ft, sc, depth) })
		}
	}
	if depth >= 3 {
		strategies = append(strategies, func() ir.Expr { return g.blockExpr(t, sc, depth) })
	}

	// Try strategies in random order; the first that produces something
	// wins, otherwise fall back to a leaf.
	for _, i := range g.rng.Perm(len(strategies)) {
		if e := strategies[i](); e != nil {
			return e
		}
	}
	return g.leafExpr(t, sc)
}

// leafExpr terminates recursion: a conforming scope variable or val(t).
func (g *Generator) leafExpr(t types.Type, sc *scope) ir.Expr {
	if v := g.scopeVarOf(t, sc); v != nil && g.rng.Intn(2) == 0 {
		return v
	}
	return &ir.Const{Type: t}
}

// scopeVarOf returns a reference to a scope variable conforming to t, or
// nil.
func (g *Generator) scopeVarOf(t types.Type, sc *scope) ir.Expr {
	if sc == nil {
		return nil
	}
	var matches []string
	for _, v := range sc.vars {
		if types.IsSubtype(v.typ, t) {
			matches = append(matches, v.name)
		}
	}
	if len(matches) == 0 {
		return nil
	}
	return &ir.VarRef{Name: matches[g.rng.Intn(len(matches))]}
}

// newExpr builds a constructor invocation of a type conforming to t:
// either t's own class or a subclass discovered through unification.
func (g *Generator) newExpr(t types.Type, sc *scope, depth int) ir.Expr {
	switch tt := t.(type) {
	case types.Top:
		if len(g.classes) == 0 {
			return nil
		}
		cls := g.randomClass()
		inst := g.instantiateConcrete(cls, sc, depth-1)
		if inst == nil {
			return nil
		}
		return g.buildNew(cls, inst, sc, depth)
	case *types.Simple:
		cls := g.classByName(tt.TypeName)
		if cls != nil && cls.Kind == ir.RegularClass {
			if g.rng.Intn(3) > 0 {
				return g.buildNew(cls, tt, sc, depth)
			}
		}
		return g.subclassNew(t, sc, depth)
	case *types.App:
		cls := g.classByName(tt.Ctor.TypeName)
		if cls != nil && cls.Kind == ir.RegularClass && g.rng.Intn(3) > 0 {
			// Resolve projected arguments to concrete instantiations.
			args := make([]types.Type, len(tt.Args))
			for i, a := range tt.Args {
				args[i] = g.subtypeOfTarget(a, sc, depth-1)
			}
			inst := tt.Ctor.Apply(args...)
			if types.IsSubtype(inst, t) {
				return g.buildNew(cls, inst, sc, depth)
			}
		}
		return g.subclassNew(t, sc, depth)
	}
	return nil
}

// instantiateConcrete instantiates a class with projection-free arguments.
func (g *Generator) instantiateConcrete(cls *ir.ClassDecl, sc *scope, depth int) types.Type {
	t := cls.Type()
	ctor, ok := t.(*types.Constructor)
	if !ok {
		return t
	}
	args := make([]types.Type, len(ctor.Params))
	for i, p := range ctor.Params {
		arg := g.conformingType(p.UpperBound(), sc, depth)
		if arg == nil {
			return nil
		}
		args[i] = arg
	}
	return ctor.Apply(args...)
}

// subclassNew searches previously declared classes for one whose
// instantiation is a subtype of t (exercising subtyping rules), builds the
// instantiation through unification, and emits its constructor call.
func (g *Generator) subclassNew(t types.Type, sc *scope, depth int) ir.Expr {
	perm := g.rng.Perm(len(g.classes))
	for _, i := range perm {
		cls := g.classes[i]
		if cls.Kind != ir.RegularClass {
			continue
		}
		inst := g.unifyInstantiation(cls, t, sc, depth-1)
		if inst == nil {
			continue
		}
		return g.buildNew(cls, inst, sc, depth)
	}
	return nil
}

// unifyInstantiation finds an instantiation of cls conforming to t, using
// unification to bind parameters forced by t and random conforming types
// for the rest. Returns nil when impossible.
func (g *Generator) unifyInstantiation(cls *ir.ClassDecl, t types.Type, sc *scope, depth int) types.Type {
	switch ct := cls.Type().(type) {
	case *types.Simple:
		if types.IsSubtype(ct, t) {
			return ct
		}
		return nil
	case *types.Constructor:
		selfArgs := make([]types.Type, len(ct.Params))
		for i, p := range ct.Params {
			selfArgs[i] = p
		}
		self := ct.Apply(selfArgs...)
		sigma := types.Unify(self, t)
		if sigma == nil {
			return nil
		}
		if !g.completeSubstitution(sigma, ct.Params, sc, depth) {
			return nil
		}
		args := make([]types.Type, len(ct.Params))
		for i, p := range ct.Params {
			bound, _ := sigma.Lookup(p)
			args[i] = stripProjections(bound)
		}
		inst := ct.Apply(args...)
		if !types.IsSubtype(inst, t) {
			return nil
		}
		return inst
	}
	return nil
}

// completeSubstitution binds every unbound parameter to a random type
// conforming to its (substituted) bound, and validates already-bound
// parameters against their bounds. Returns false when no conforming type
// exists.
func (g *Generator) completeSubstitution(sigma *types.Substitution, params []*types.Parameter, sc *scope, depth int) bool {
	for _, p := range params {
		bound := sigma.Apply(p.UpperBound())
		if got, ok := sigma.Lookup(p); ok {
			check := got
			if proj, isProj := got.(*types.Projection); isProj {
				check = proj.Bound
			}
			if !types.HasFreeParameters(bound) && !types.IsSubtype(check, bound) {
				return false
			}
			continue
		}
		arg := g.conformingType(bound, sc, depth)
		if arg == nil {
			return false
		}
		sigma.Bind(p, arg)
	}
	return true
}

// buildNew emits new C<args>(ctor-args) for a concrete instantiation.
func (g *Generator) buildNew(cls *ir.ClassDecl, inst types.Type, sc *scope, depth int) ir.Expr {
	n := &ir.New{Class: cls.Type()}
	sigma := instantiationSubst(inst)
	if app, ok := inst.(*types.App); ok {
		n.TypeArgs = append([]types.Type{}, app.Args...)
	}
	for _, f := range cls.Fields {
		want := sigma.Apply(f.Type)
		n.Args = append(n.Args, g.generateExpr(want, sc, depth-1))
	}
	return n
}

// lambdaExpr builds λ(x̄: t̄).e for a function-typed target.
func (g *Generator) lambdaExpr(ft *types.Func, sc *scope, depth int) ir.Expr {
	l := &ir.Lambda{}
	inner := &scope{curClass: nil, typeParams: nil}
	if sc != nil {
		inner.vars = append(inner.vars, sc.vars...)
		inner.typeParams = sc.typeParams
		inner.curClass = sc.curClass
	}
	for _, pt := range ft.Params {
		name := g.freshVarName()
		l.Params = append(l.Params, &ir.ParamDecl{Name: name, Type: pt})
		inner.withVar(name, pt, false)
	}
	l.Body = g.generateExpr(ft.Ret, inner, depth-1)
	return l
}

// methodRefExpr builds e::m when a declared method's signature conforms to
// the target function type.
func (g *Generator) methodRefExpr(ft *types.Func, sc *scope, depth int) ir.Expr {
	perm := g.rng.Perm(len(g.classes))
	for _, i := range perm {
		cls := g.classes[i]
		if cls.Kind != ir.RegularClass || len(cls.TypeParams) > 0 {
			continue
		}
		for _, m := range cls.Methods {
			if len(m.TypeParams) > 0 || m.Ret == nil || len(m.Params) != len(ft.Params) {
				continue
			}
			sig := &types.Func{Ret: m.Ret}
			okParams := true
			for _, p := range m.Params {
				if p.Type == nil {
					okParams = false
					break
				}
				sig.Params = append(sig.Params, p.Type)
			}
			if !okParams || !types.IsSubtype(sig, ft) {
				continue
			}
			recv := g.generateExpr(cls.Type(), sc, depth-1)
			return &ir.MethodRef{Recv: recv, Method: m.Name}
		}
	}
	return nil
}

// blockExpr wraps the target expression in a block with extra local
// declarations; some locals are mutable and reassigned, exercising the
// flow-sensitive parts of the analysis (Figure 11c territory).
func (g *Generator) blockExpr(t types.Type, sc *scope, depth int) ir.Expr {
	inner := &scope{typeParams: sc.typeParams, curClass: sc.curClass}
	inner.vars = append(inner.vars, sc.vars...)
	b := &ir.Block{}
	n := 1 + g.rng.Intn(g.cfg.MaxLocals)
	for i := 0; i < n; i++ {
		name := g.freshVarName()
		vt := g.generateType(inner, 2)
		mutable := g.rng.Float64() < 0.2
		b.Stmts = append(b.Stmts, &ir.VarDecl{
			Name:     name,
			DeclType: vt,
			Init:     g.generateExpr(vt, inner, depth-1),
			Mutable:  mutable,
		})
		inner.withVar(name, vt, mutable)
		if mutable && g.rng.Intn(2) == 0 {
			// Reassign with another conforming expression.
			b.Stmts = append(b.Stmts, &ir.Assign{
				Target: &ir.VarRef{Name: name},
				Value:  g.generateExpr(vt, inner, depth-1),
			})
		}
	}
	b.Value = g.generateExpr(t, inner, depth-1)
	return b
}

// boolExpr produces a Boolean expression: a literal, a comparison, an
// equality, or a type test.
func (g *Generator) boolExpr(sc *scope, depth int) ir.Expr {
	if depth <= 0 {
		return &ir.Const{Type: g.b.Boolean}
	}
	switch g.rng.Intn(5) {
	case 0:
		return &ir.Const{Type: g.b.Boolean}
	case 1:
		num := []types.Type{g.b.Int, g.b.Long, g.b.Double}[g.rng.Intn(3)]
		ops := []string{">", ">=", "<", "<="}
		return &ir.BinaryOp{
			Op:    ops[g.rng.Intn(len(ops))],
			Left:  g.generateExpr(num, sc, depth-1),
			Right: g.generateExpr(num, sc, depth-1),
		}
	case 2:
		t := g.generateType(sc, 1)
		op := []string{"==", "!="}[g.rng.Intn(2)]
		return &ir.BinaryOp{
			Op:    op,
			Left:  g.generateExpr(t, sc, depth-1),
			Right: g.generateExpr(t, sc, depth-1),
		}
	case 3:
		op := []string{"&&", "||"}[g.rng.Intn(2)]
		return &ir.BinaryOp{
			Op:    op,
			Left:  g.boolExpr(sc, depth-1),
			Right: g.boolExpr(sc, depth-1),
		}
	default:
		t := g.generateType(sc, 1)
		return &ir.Is{Expr: g.generateExpr(types.Top{}, sc, depth-1), Target: t}
	}
}
