package generator

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
	"repro/internal/types"
)

// Generator produces random well-typed IR programs. It maintains the
// paper's "context" — every declaration generated so far, consulted
// whenever a declaration or type is needed (Section 3.2).
type Generator struct {
	cfg Config
	rng *rand.Rand
	b   *types.Builtins

	prog    *ir.Program
	classes []*ir.ClassDecl
	funcs   []*ir.FuncDecl

	classN, funcN, varN, fieldN, methodN int
}

// New returns a generator for the given configuration. Limits are
// clamped to workable minimums (Config.Normalized) so any
// configuration is safe to run.
func New(cfg Config) *Generator {
	cfg = cfg.Normalized()
	return &Generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		b:   types.NewBuiltins(),
	}
}

// Builtins exposes the generator's builtin universe (shared with checking
// and translation of its programs).
func (g *Generator) Builtins() *types.Builtins { return g.b }

// Generate produces one random program.
func (g *Generator) Generate() *ir.Program {
	g.prog = &ir.Program{}
	g.classes = nil
	g.funcs = nil

	n := 2 + g.rng.Intn(g.cfg.MaxTopLevelDecls-1)
	classCount := 1 + n/2
	funcCount := n - classCount
	for i := 0; i < classCount; i++ {
		g.generateClass()
	}
	for i := 0; i < funcCount; i++ {
		g.generateFunc()
	}
	// A test entry point with local declarations, the shape every
	// bug-revealing example in the paper has.
	g.generateTestFunc()
	return g.prog
}

// GenerateBatch produces n programs, each in its own package so batched
// compilation does not produce conflicting declarations (Section 3.5).
func (g *Generator) GenerateBatch(n int) []*ir.Program {
	out := make([]*ir.Program, n)
	for i := range out {
		p := g.Generate()
		p.Package = fmt.Sprintf("pkg%d", i)
		out[i] = p
	}
	return out
}

// ----- scope -----

// scopeVar is a variable visible to expression generation.
type scopeVar struct {
	name    string
	typ     types.Type
	mutable bool
}

type scope struct {
	vars []scopeVar
	// typeParams in scope (class + method parameters).
	typeParams []*types.Parameter
	// curClass is the enclosing class, if any.
	curClass *ir.ClassDecl
}

func (s *scope) withVar(name string, t types.Type, mutable bool) {
	s.vars = append(s.vars, scopeVar{name: name, typ: t, mutable: mutable})
}

// ----- declarations -----

func (g *Generator) freshClassName() string  { g.classN++; return fmt.Sprintf("Cls%d", g.classN) }
func (g *Generator) freshFuncName() string   { g.funcN++; return fmt.Sprintf("fn%d", g.funcN) }
func (g *Generator) freshVarName() string    { g.varN++; return fmt.Sprintf("v%d", g.varN) }
func (g *Generator) freshFieldName() string  { g.fieldN++; return fmt.Sprintf("f%d", g.fieldN) }
func (g *Generator) freshMethodName() string { g.methodN++; return fmt.Sprintf("m%d", g.methodN) }

// generateTypeParams creates up to MaxTypeParams fresh type parameters for
// an owner, with optional concrete upper bounds (bounded polymorphism) and
// occasional declaration-site covariance.
func (g *Generator) generateTypeParams(owner string, forClass bool) []*types.Parameter {
	n := 1 + g.rng.Intn(g.cfg.MaxTypeParams)
	params := make([]*types.Parameter, n)
	for i := range params {
		p := &types.Parameter{Owner: owner, ParamName: fmt.Sprintf("T%d", i)}
		if g.cfg.BoundedPolymorphism && g.rng.Float64() < g.cfg.ProbBound {
			p.Bound = g.groundType(nil, 1)
		}
		if forClass && g.cfg.Variance && g.rng.Float64() < 0.2 {
			p.Var = types.Covariant
		}
		params[i] = p
	}
	return params
}

func (g *Generator) generateClass() *ir.ClassDecl {
	cls := &ir.ClassDecl{Name: g.freshClassName(), Open: g.rng.Float64() < 0.6}
	if g.cfg.ParametricPolymorphism && g.rng.Float64() < g.cfg.ProbParameterizedClass {
		cls.TypeParams = g.generateTypeParams(cls.Name, true)
	}
	sc := &scope{curClass: cls, typeParams: cls.TypeParams}

	// Optionally extend an existing open class (Inheritance).
	if g.cfg.Inheritance && g.rng.Float64() < 0.4 {
		if super := g.pickOpenClass(); super != nil {
			superType := g.instantiate(super, sc, 1)
			if superType != nil {
				cls.Super = &ir.SuperRef{Type: superType}
			}
		}
	}

	nf := g.rng.Intn(g.cfg.MaxFields + 1)
	for i := 0; i < nf; i++ {
		cls.Fields = append(cls.Fields, &ir.FieldDecl{
			Name: g.freshFieldName(),
			Type: g.fieldType(sc),
		})
	}
	// Register before generating super-constructor args and methods so
	// the class can reference itself.
	g.prog.Decls = append(g.prog.Decls, cls)
	g.classes = append(g.classes, cls)

	if cls.Super != nil {
		superCls := g.classByName(typeName(cls.Super.Type))
		if superCls != nil {
			sigma := instantiationSubst(cls.Super.Type)
			fieldScope := &scope{curClass: cls, typeParams: cls.TypeParams}
			for _, f := range cls.Fields {
				fieldScope.withVar(f.Name, f.Type, false)
			}
			for _, sf := range superCls.Fields {
				want := sigma.Apply(sf.Type)
				cls.Super.Args = append(cls.Super.Args, g.generateExpr(want, fieldScope, 1))
			}
		}
	}

	nm := g.rng.Intn(g.cfg.MaxMethods + 1)
	for i := 0; i < nm; i++ {
		cls.Methods = append(cls.Methods, g.generateMethod(cls))
	}
	return cls
}

// fieldType picks a type usable for a field: any available type, with
// covariant parameters allowed (val fields are out-positions).
func (g *Generator) fieldType(sc *scope) types.Type {
	return g.generateType(sc, 2)
}

func (g *Generator) generateMethod(cls *ir.ClassDecl) *ir.FuncDecl {
	f := &ir.FuncDecl{Name: g.freshMethodName()}
	sc := &scope{curClass: cls, typeParams: cls.TypeParams}
	if g.cfg.ParametricPolymorphism && g.rng.Float64() < g.cfg.ProbParameterizedFunc {
		f.TypeParams = g.generateTypeParams(f.Name, false)
		sc.typeParams = append(append([]*types.Parameter{}, cls.TypeParams...), f.TypeParams...)
	}
	for _, fd := range cls.Fields {
		sc.withVar(fd.Name, fd.Type, fd.Mutable)
	}
	g.finishFunc(f, sc)
	return f
}

func (g *Generator) generateFunc() *ir.FuncDecl {
	f := &ir.FuncDecl{Name: g.freshFuncName()}
	sc := &scope{}
	if g.cfg.ParametricPolymorphism && g.rng.Float64() < g.cfg.ProbParameterizedFunc {
		f.TypeParams = g.generateTypeParams(f.Name, false)
		sc.typeParams = f.TypeParams
	}
	g.prog.Decls = append(g.prog.Decls, f)
	g.funcs = append(g.funcs, f)
	g.finishFunc(f, sc)
	return f
}

// finishFunc fills parameters, a return type, and a body.
func (g *Generator) finishFunc(f *ir.FuncDecl, sc *scope) {
	np := g.rng.Intn(g.cfg.MaxParams + 1)
	for i := 0; i < np; i++ {
		name := g.freshVarName()
		pt := g.paramType(sc)
		f.Params = append(f.Params, &ir.ParamDecl{Name: name, Type: pt})
		sc.withVar(name, pt, false)
	}
	f.Ret = g.generateType(sc, 2)
	depth := 2 + g.rng.Intn(g.cfg.MaxDepth-1)
	f.Body = g.generateExpr(f.Ret, sc, depth)
}

// paramType picks a method-parameter type, avoiding covariant class
// parameters (which may not occur in in-positions).
func (g *Generator) paramType(sc *scope) types.Type {
	for try := 0; try < 8; try++ {
		t := g.generateType(sc, 2)
		if !usesCovariantParam(t, sc.typeParams) {
			return t
		}
	}
	return g.b.Int
}

func usesCovariantParam(t types.Type, params []*types.Parameter) bool {
	for _, p := range params {
		if p.Var == types.Covariant && types.ContainsParameter(t, p) {
			return true
		}
	}
	return false
}

// generateTestFunc emits the campaign's entry point: a Unit function whose
// body declares locals with explicit types (erasure/overwrite fodder) and
// exercises calls.
func (g *Generator) generateTestFunc() {
	f := &ir.FuncDecl{Name: "test", Ret: g.b.Unit}
	g.prog.Decls = append(g.prog.Decls, f)
	g.funcs = append(g.funcs, f)
	sc := &scope{}
	block := &ir.Block{}
	n := 1 + g.rng.Intn(g.cfg.MaxLocals)
	for i := 0; i < n; i++ {
		name := g.freshVarName()
		// Type-driven generation: construct a type t, then an expression
		// of a type t' <: t, exercising subtyping rules (Section 3.2).
		declType := g.generateType(sc, 2)
		init := g.generateExpr(declType, sc, g.cfg.MaxDepth)
		block.Stmts = append(block.Stmts, &ir.VarDecl{
			Name:     name,
			DeclType: declType,
			Init:     init,
		})
		sc.withVar(name, declType, false)
	}
	block.Value = &ir.Const{Type: g.b.Unit}
	f.Body = block
}

// ----- helpers over the context -----

func (g *Generator) classByName(name string) *ir.ClassDecl {
	for _, c := range g.classes {
		if c.Name == name {
			return c
		}
	}
	return nil
}

func (g *Generator) pickOpenClass() *ir.ClassDecl {
	var open []*ir.ClassDecl
	for _, c := range g.classes {
		if c.Open {
			open = append(open, c)
		}
	}
	if len(open) == 0 {
		return nil
	}
	return open[g.rng.Intn(len(open))]
}

func typeName(t types.Type) string {
	switch tt := t.(type) {
	case *types.Simple:
		return tt.TypeName
	case *types.App:
		return tt.Ctor.TypeName
	case *types.Constructor:
		return tt.TypeName
	}
	return ""
}

// instantiationSubst maps a class's parameters to the arguments of the
// given instantiation (identity for simple types). Use-site projections
// are approximated by their bounds, matching the checker's capture
// approximation for member access.
func instantiationSubst(t types.Type) *types.Substitution {
	sigma := types.NewSubstitution()
	if app, ok := t.(*types.App); ok {
		for i, p := range app.Ctor.Params {
			arg := app.Args[i]
			if proj, isProj := arg.(*types.Projection); isProj {
				arg = proj.Bound
			}
			sigma.Bind(p, arg)
		}
	}
	return sigma
}
