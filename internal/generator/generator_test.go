package generator

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/checker"
	"repro/internal/ir"
	"repro/internal/types"
)

// TestGeneratedProgramsAreWellTyped is the generator's core contract
// (Section 3.2): every generated program must be accepted by the reference
// checker, because rejection of a generated program is the campaign's bug
// oracle.
func TestGeneratedProgramsAreWellTyped(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		g := New(DefaultConfig().WithSeed(seed))
		p := g.Generate()
		res := checker.Check(p, g.Builtins(), checker.Options{})
		if !res.OK() {
			var b strings.Builder
			for _, d := range res.Diags {
				fmt.Fprintf(&b, "  %s\n", d)
			}
			t.Fatalf("seed %d produced an ill-typed program:\n%s\nprogram:\n%s",
				seed, b.String(), ir.Print(p))
		}
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	p1 := New(DefaultConfig().WithSeed(7)).Generate()
	p2 := New(DefaultConfig().WithSeed(7)).Generate()
	if ir.Print(p1) != ir.Print(p2) {
		t.Error("same seed must produce identical programs")
	}
	p3 := New(DefaultConfig().WithSeed(8)).Generate()
	if ir.Print(p1) == ir.Print(p3) {
		t.Error("different seeds should produce different programs")
	}
}

func TestGeneratedProgramsUseParametricPolymorphism(t *testing.T) {
	// Finding F4: the generator leans on parametric polymorphism. Over a
	// modest number of seeds, most programs must contain parameterized
	// declarations.
	withGenerics := 0
	const total = 50
	for seed := int64(0); seed < total; seed++ {
		p := New(DefaultConfig().WithSeed(seed)).Generate()
		for _, cls := range p.Classes() {
			if len(cls.TypeParams) > 0 {
				withGenerics++
				break
			}
		}
	}
	if withGenerics < total/2 {
		t.Errorf("only %d/%d programs use parameterized classes", withGenerics, total)
	}
}

func TestGeneratedProgramsHaveNoLoopsOrArithmetic(t *testing.T) {
	// The IR has no loops or arithmetic by construction; binary operators
	// must be from the comparison/logic set only (Fig. 4a).
	allowed := map[string]bool{"==": true, "!=": true, "&&": true, "||": true,
		">": true, ">=": true, "<": true, "<=": true}
	for seed := int64(0); seed < 50; seed++ {
		p := New(DefaultConfig().WithSeed(seed)).Generate()
		ir.Walk(p, func(n ir.Node) bool {
			if op, ok := n.(*ir.BinaryOp); ok && !allowed[op.Op] {
				t.Errorf("seed %d: forbidden operator %q", seed, op.Op)
			}
			return true
		})
	}
}

func TestFeatureTogglesRespected(t *testing.T) {
	cfg := DefaultConfig().WithSeed(3)
	cfg.ParametricPolymorphism = false
	cfg.Lambdas = false
	cfg.Conditionals = false
	for seed := int64(0); seed < 30; seed++ {
		p := New(cfg.WithSeed(seed)).Generate()
		for _, cls := range p.Classes() {
			if len(cls.TypeParams) > 0 {
				t.Fatalf("seed %d: parameterized class despite toggle off", seed)
			}
		}
		ir.Walk(p, func(n ir.Node) bool {
			switch n.(type) {
			case *ir.Lambda:
				t.Errorf("seed %d: lambda despite toggle off", seed)
			case *ir.If:
				t.Errorf("seed %d: conditional despite toggle off", seed)
			}
			return true
		})
	}
}

func TestBoundedPolymorphismInstantiationsRespectBounds(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p := New(DefaultConfig().WithSeed(seed)).Generate()
		ir.Walk(p, func(n ir.Node) bool {
			nw, ok := n.(*ir.New)
			if !ok || nw.TypeArgs == nil {
				return true
			}
			ctor, ok := nw.Class.(*types.Constructor)
			if !ok {
				return true
			}
			sigma := types.NewSubstitution()
			for i, tp := range ctor.Params {
				if i < len(nw.TypeArgs) {
					sigma.Bind(tp, nw.TypeArgs[i])
				}
			}
			for i, tp := range ctor.Params {
				if i >= len(nw.TypeArgs) {
					break
				}
				bound := sigma.Apply(tp.UpperBound())
				arg := nw.TypeArgs[i]
				if proj, isProj := arg.(*types.Projection); isProj {
					arg = proj.Bound
				}
				if len(types.FreeParameters(bound)) == 0 && len(types.FreeParameters(arg)) == 0 &&
					!types.IsSubtype(arg, bound) {
					t.Errorf("seed %d: instantiation %s violates bound %s", seed, arg, bound)
				}
			}
			return true
		})
	}
}

func TestBatchGenerationUsesDistinctPackages(t *testing.T) {
	g := New(DefaultConfig().WithSeed(5))
	batch := g.GenerateBatch(4)
	seen := map[string]bool{}
	for _, p := range batch {
		if p.Package == "" {
			t.Error("batch programs must carry a package")
		}
		if seen[p.Package] {
			t.Errorf("duplicate package %s", p.Package)
		}
		seen[p.Package] = true
	}
}

func TestGeneratedProgramScale(t *testing.T) {
	// Paper settings yield hundreds of lines; our IR printing should give
	// programs of non-trivial size without exploding.
	var totalLines int
	const n = 20
	for seed := int64(100); seed < 100+n; seed++ {
		p := New(DefaultConfig().WithSeed(seed)).Generate()
		lines := strings.Count(ir.Print(p), "\n")
		totalLines += lines
		if lines < 5 {
			t.Errorf("seed %d: suspiciously small program (%d lines)", seed, lines)
		}
	}
	if avg := totalLines / n; avg < 15 {
		t.Errorf("average program size %d lines is too small to be interesting", avg)
	}
}

func TestGeneratorExtendsContextWithFreshMethods(t *testing.T) {
	// Algorithm 1 line 7: when resolution fails, a fresh method must be
	// created and registered in the context. Detectable as fn* functions
	// with constant bodies.
	found := false
	for seed := int64(0); seed < 80 && !found; seed++ {
		p := New(DefaultConfig().WithSeed(seed)).Generate()
		for _, f := range p.Functions() {
			if strings.HasPrefix(f.Name, "fn") {
				if _, ok := f.Body.(*ir.Const); ok {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("generateMatchingMethod never fired across 80 seeds")
	}
}

func TestTestFunctionAlwaysPresent(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := New(DefaultConfig().WithSeed(seed)).Generate()
		var test *ir.FuncDecl
		for _, f := range p.Functions() {
			if f.Name == "test" {
				test = f
			}
		}
		if test == nil {
			t.Fatalf("seed %d: missing test entry point", seed)
		}
		block, ok := test.Body.(*ir.Block)
		if !ok || len(block.Stmts) == 0 {
			t.Fatalf("seed %d: test body must declare locals", seed)
		}
		if _, ok := block.Stmts[0].(*ir.VarDecl); !ok {
			t.Errorf("seed %d: first statement should be a local declaration", seed)
		}
	}
}

func TestDescribe(t *testing.T) {
	g := New(DefaultConfig().WithSeed(1))
	g.Generate()
	if !strings.Contains(g.describe(), "seed=1") {
		t.Errorf("describe = %s", g.describe())
	}
}

// TestRandomConfigsStayWellTyped fuzzes the generator's own configuration
// space: any combination of feature toggles and limits must still produce
// well-typed programs (the oracle's foundation is unconditional).
func TestRandomConfigsStayWellTyped(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		cfg := DefaultConfig()
		cfg.Seed = int64(trial)
		cfg.MaxTopLevelDecls = 2 + rng.Intn(10)
		cfg.MaxDepth = 1 + rng.Intn(7)
		cfg.MaxTypeParams = 1 + rng.Intn(3)
		cfg.MaxLocals = 1 + rng.Intn(3)
		cfg.MaxParams = rng.Intn(3)
		cfg.MaxFields = rng.Intn(3)
		cfg.MaxMethods = rng.Intn(3)
		cfg.ParametricPolymorphism = rng.Intn(2) == 0
		cfg.BoundedPolymorphism = rng.Intn(2) == 0
		cfg.Variance = rng.Intn(2) == 0
		cfg.UseSiteVariance = rng.Intn(2) == 0
		cfg.Lambdas = rng.Intn(2) == 0
		cfg.MethodReferences = rng.Intn(2) == 0
		cfg.Conditionals = rng.Intn(2) == 0
		cfg.Inheritance = rng.Intn(2) == 0
		cfg.ProbParameterizedClass = rng.Float64()
		cfg.ProbParameterizedFunc = rng.Float64()
		cfg.ProbBound = rng.Float64()

		g := New(cfg)
		p := g.Generate()
		res := checker.Check(p, g.Builtins(), checker.Options{})
		if !res.OK() {
			t.Fatalf("trial %d (cfg %+v): ill-typed: %v\n%s",
				trial, cfg, res.Diags[0], ir.Print(p))
		}
	}
}
