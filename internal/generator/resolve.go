package generator

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/types"
)

// resolveMethodCall implements Algorithm 1 (resolveMethod): find or create
// a method whose return type conforms to t, and emit a call to it.
//
// Resolution proceeds in the paper's three steps: (1) functions in the
// current scope and methods of live objects, (2) methods of all previously
// declared classes — unifying the return type with t and instantiating the
// receiver from the resulting substitution, (3) a freshly generated method
// with return type t. The result is nil only when every step fails (e.g.
// t mentions rigid type parameters no fresh function could return).
func (g *Generator) resolveMethodCall(t types.Type, sc *scope, depth int) ir.Expr {
	type option func() ir.Expr
	var opts []option

	// Step 1a: top-level functions (resolveMatchingFunctions).
	for _, f := range g.funcs {
		f := f
		if f.Ret == nil || f.Name == "test" {
			continue
		}
		opts = append(opts, func() ir.Expr {
			return g.tryCall(nil, f.Name, f.TypeParams, paramTypes(f), f.Ret, types.NewSubstitution(), t, sc, depth)
		})
	}
	// Step 1b: methods of live objects in scope (resolveMatchingObjects).
	if sc != nil {
		for _, v := range sc.vars {
			v := v
			cls := g.classByName(typeName(v.typ))
			if cls == nil {
				continue
			}
			sigma := instantiationSubst(v.typ)
			for _, m := range cls.Methods {
				m := m
				if m.Ret == nil {
					continue
				}
				opts = append(opts, func() ir.Expr {
					return g.tryCall(&ir.VarRef{Name: v.name}, m.Name, m.TypeParams,
						paramTypes(m), m.Ret, sigma.Clone(), t, sc, depth)
				})
			}
		}
	}

	for _, i := range g.rng.Perm(len(opts)) {
		if e := opts[i](); e != nil {
			return e
		}
	}

	// Step 2: methods of previously declared classes
	// (resolveMatchingClass), with receivers instantiated via unification.
	if e := g.resolveMatchingClass(t, sc, depth); e != nil {
		return e
	}

	// Step 3: generate a fresh method with return type t
	// (generateMatchingMethod). Only ground types can be returned by a new
	// top-level function.
	if !types.HasFreeParameters(t) && depth >= 1 {
		return g.generateMatchingMethod(t)
	}
	return nil
}

func paramTypes(f *ir.FuncDecl) []types.Type {
	out := make([]types.Type, len(f.Params))
	for i, p := range f.Params {
		out[i] = p.Type
	}
	return out
}

// tryCall attempts to build a call to a known callee so that its
// (substituted) return type conforms to t: unify the return type with t,
// complete the substitution with random conforming types, validate bounds,
// and generate arguments for the substituted parameter types.
func (g *Generator) tryCall(recv ir.Expr, name string, tps []*types.Parameter,
	params []types.Type, ret types.Type, sigma *types.Substitution,
	t types.Type, sc *scope, depth int) ir.Expr {

	if len(tps) == 0 {
		if !types.IsSubtype(sigma.Apply(ret), t) {
			return nil
		}
		call := &ir.Call{Recv: recv, Name: name}
		for _, pt := range params {
			call.Args = append(call.Args, g.generateExpr(sigma.Apply(pt), sc, depth-1))
		}
		return call
	}

	if s := types.Unify(sigma.Apply(ret), t); s != nil {
		for _, p := range s.Domain() {
			if owned(p, tps) {
				bound, _ := s.Lookup(p)
				sigma.Bind(p, stripProjections(bound))
			}
		}
	}
	if !g.completeSubstitution(sigma, tps, sc, 1) {
		return nil
	}
	if !types.IsSubtype(sigma.Apply(ret), t) {
		return nil
	}
	call := &ir.Call{Recv: recv, Name: name}
	for _, tp := range tps {
		arg, _ := sigma.Lookup(tp)
		call.TypeArgs = append(call.TypeArgs, arg)
	}
	for _, pt := range params {
		call.Args = append(call.Args, g.generateExpr(sigma.Apply(pt), sc, depth-1))
	}
	return call
}

func owned(p *types.Parameter, tps []*types.Parameter) bool {
	for _, tp := range tps {
		if tp.ID() == p.ID() {
			return true
		}
	}
	return false
}

// stripProjections removes use-site projections recursively: unification
// against a projected target can bind a parameter to `out N` (or to an
// application containing one), which is not a first-class type the
// generator can produce expressions of. The callers' final conformance
// checks reject any instantiation the stripping made incompatible.
func stripProjections(t types.Type) types.Type {
	switch tt := t.(type) {
	case *types.Projection:
		return stripProjections(tt.Bound)
	case *types.App:
		args := make([]types.Type, len(tt.Args))
		changed := false
		for i, a := range tt.Args {
			args[i] = stripProjections(a)
			if args[i] != a {
				changed = true
			}
		}
		if !changed {
			return tt
		}
		return &types.App{Ctor: tt.Ctor, Args: args}
	default:
		return t
	}
}

// resolveMatchingClass is Algorithm 1's second step: scan every class and
// method, unify the method's return type with t, instantiate the receiver
// type from the (partial) substitution, and generate a receiver expression
// of that type.
func (g *Generator) resolveMatchingClass(t types.Type, sc *scope, depth int) ir.Expr {
	type match struct {
		cls *ir.ClassDecl
		m   *ir.FuncDecl
	}
	var matches []match
	for _, cls := range g.classes {
		if cls.Kind != ir.RegularClass {
			continue
		}
		for _, m := range cls.Methods {
			if m.Ret == nil {
				continue
			}
			matches = append(matches, match{cls, m})
		}
	}
	for _, i := range g.rng.Perm(len(matches)) {
		cls, m := matches[i].cls, matches[i].m
		sigma := types.NewSubstitution()
		// Unify the declared return type (mentioning class and method
		// parameters) with the target.
		if s := types.Unify(m.Ret, t); s != nil {
			for _, p := range s.Domain() {
				bound, _ := s.Lookup(p)
				sigma.Bind(p, stripProjections(bound))
			}
		}
		classParams := classTypeParams(cls)
		if !g.completeSubstitution(sigma, classParams, sc, 1) {
			continue
		}
		if !g.completeSubstitution(sigma, m.TypeParams, sc, 1) {
			continue
		}
		if !types.IsSubtype(sigma.Apply(m.Ret), t) {
			continue
		}
		// Instantiate the receiver type from the substitution and
		// generate an expression of that type (Algorithm 1, line 25).
		var rt types.Type
		switch ct := cls.Type().(type) {
		case *types.Simple:
			rt = ct
		case *types.Constructor:
			args := make([]types.Type, len(ct.Params))
			for j, p := range ct.Params {
				args[j], _ = sigma.Lookup(p)
			}
			rt = ct.Apply(args...)
		}
		recv := g.generateExpr(rt, sc, depth-1)
		call := &ir.Call{Recv: recv, Name: m.Name}
		for _, tp := range m.TypeParams {
			arg, _ := sigma.Lookup(tp)
			call.TypeArgs = append(call.TypeArgs, arg)
		}
		for _, p := range m.Params {
			call.Args = append(call.Args, g.generateExpr(sigma.Apply(p.Type), sc, depth-1))
		}
		return call
	}
	return nil
}

func classTypeParams(cls *ir.ClassDecl) []*types.Parameter {
	return cls.TypeParams
}

// generateMatchingMethod creates a fresh top-level function returning t
// and emits a call to it (Algorithm 1, line 7).
func (g *Generator) generateMatchingMethod(t types.Type) ir.Expr {
	name := g.freshFuncName()
	f := &ir.FuncDecl{Name: name, Ret: t, Body: &ir.Const{Type: t}}
	g.prog.Decls = append(g.prog.Decls, f)
	g.funcs = append(g.funcs, f)
	return &ir.Call{Name: name}
}

// resolveFieldAccess finds a field whose (substituted) type conforms to t,
// on a live object or through a freshly instantiated receiver, mirroring
// the method-resolution process for field accesses (Section 3.2).
func (g *Generator) resolveFieldAccess(t types.Type, sc *scope, depth int) ir.Expr {
	// Live objects first.
	if sc != nil {
		type hit struct {
			varName string
			field   string
		}
		var hits []hit
		for _, v := range sc.vars {
			cls := g.classByName(typeName(v.typ))
			if cls == nil {
				continue
			}
			sigma := instantiationSubst(v.typ)
			for _, f := range cls.Fields {
				if types.IsSubtype(sigma.Apply(f.Type), t) {
					hits = append(hits, hit{v.name, f.Name})
				}
			}
		}
		if len(hits) > 0 {
			h := hits[g.rng.Intn(len(hits))]
			return &ir.FieldAccess{Recv: &ir.VarRef{Name: h.varName}, Field: h.field}
		}
	}
	// Otherwise instantiate a receiver whose field unifies with t.
	for _, i := range g.rng.Perm(len(g.classes)) {
		cls := g.classes[i]
		if cls.Kind != ir.RegularClass {
			continue
		}
		for _, f := range cls.Fields {
			sigma := types.NewSubstitution()
			if s := types.Unify(f.Type, t); s != nil {
				for _, p := range s.Domain() {
					bound, _ := s.Lookup(p)
					sigma.Bind(p, stripProjections(bound))
				}
			}
			if !g.completeSubstitution(sigma, cls.TypeParams, sc, 1) {
				continue
			}
			if !types.IsSubtype(sigma.Apply(f.Type), t) {
				continue
			}
			var rt types.Type
			switch ct := cls.Type().(type) {
			case *types.Simple:
				rt = ct
			case *types.Constructor:
				args := make([]types.Type, len(ct.Params))
				for j, p := range ct.Params {
					args[j], _ = sigma.Lookup(p)
				}
				rt = ct.Apply(args...)
			}
			recv := g.generateExpr(rt, sc, depth-1)
			return &ir.FieldAccess{Recv: recv, Field: f.Name}
		}
	}
	return nil
}

// describe renders a one-line summary of the generator state, useful in
// failure messages.
func (g *Generator) describe() string {
	return fmt.Sprintf("generator(seed=%d, classes=%d, funcs=%d)",
		g.cfg.Seed, len(g.classes), len(g.funcs))
}
