package generator

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/types"
)

// StressConfig configures the pathological-program stress generator: a
// seeded source of programs whose type checking is deliberately
// expensive, used to exercise the resource governor (internal/governor)
// end to end. The zero value disables stress generation.
//
// StressConfig is embedded in Config by value, never by pointer: the
// campaign fingerprint renders configs with %+v, and a pointer would
// fingerprint as an address instead of its contents.
type StressConfig struct {
	// Every enables stress generation: units whose seed s satisfies
	// s mod Every == Every-1 receive a stress program instead of a
	// regular generated one. 0 disables.
	Every int `json:"every,omitempty"`
	// ChainLength is the length of each generated supertype chain family
	// (default 25). Unify-storm cost grows as binomial(2n, n), lub-storm
	// cost polynomially.
	ChainLength int `json:"chain_length,omitempty"`
	// NestDepth is the nesting depth of the deep-nesting shape (default
	// 1200, past governor.DefaultMaxDepth).
	NestDepth int `json:"nest_depth,omitempty"`
}

// Enabled reports whether stress generation is on.
func (s StressConfig) Enabled() bool { return s.Every > 0 }

// StressSeed reports whether the unit with the given seed should receive
// a stress program. The decision is keyed on the unit's seed — never on
// sequence position or worker identity — so sharded and single-process
// campaigns agree on which units are stressed.
func (c Config) StressSeed(seed int64) bool {
	e := c.Stress.Every
	if e <= 0 {
		return false
	}
	return uint64(seed)%uint64(e) == uint64(e)-1
}

// GenerateStress produces one deterministic pathological program chosen
// by the generator's seed. Three shapes rotate:
//
//   - lub storm: an if-expression joins values from two unrelated
//     supertype chain families, making the checker's least-upper-bound
//     scan both chains (polynomial steps — completes unmetered, exhausts
//     small fuel budgets);
//   - unify storm: a generic call whose argument types come from the
//     wrong chain family, sending inference's unifier into two-sided
//     supertype-chain backtracking (binomial(2n, n) interleavings — for
//     the default chain length no practical budget completes it, so it
//     deterministically exhausts any fuel limit, and without one it
//     stands in for a compiler hang);
//   - deep nesting: a generic call whose parameter type nests a
//     parameterized class past governor.DefaultMaxDepth, tripping the
//     recursion-depth guard in unification and substitution (linear
//     steps — completes unmetered).
//
// Every shape is deterministic for a fixed (seed, StressConfig); the
// programs use no randomness beyond shape selection.
func (g *Generator) GenerateStress() *ir.Program {
	cfg := g.cfg.Stress
	if cfg.ChainLength < 4 {
		cfg.ChainLength = 25
	}
	if cfg.NestDepth < 8 {
		cfg.NestDepth = 1200
	}
	g.prog = &ir.Program{}
	g.classes = nil
	g.funcs = nil
	switch uint64(g.cfg.Seed) % 3 {
	case 0:
		g.stressLubStorm(cfg.ChainLength)
	case 1:
		g.stressUnifyStorm(cfg.ChainLength)
	default:
		g.stressDeepNest(cfg.NestDepth)
	}
	return g.prog
}

// stressChain declares the chain family F0<T>, F1<T> : F0<T>, ...,
// Fn<T> : Fn-1<T> and returns the tip class Fn.
func (g *Generator) stressChain(family string, levels int) *ir.ClassDecl {
	mk := func(i int) *ir.ClassDecl {
		name := fmt.Sprintf("%s%d", family, i)
		cls := &ir.ClassDecl{
			Name:       name,
			Open:       true,
			TypeParams: []*types.Parameter{types.NewParameter(name, "T")},
		}
		g.prog.Decls = append(g.prog.Decls, cls)
		g.classes = append(g.classes, cls)
		return cls
	}
	prev := mk(0)
	for i := 1; i <= levels; i++ {
		cls := mk(i)
		super := prev.Type().(*types.Constructor)
		cls.Super = &ir.SuperRef{Type: super.Apply(cls.TypeParams[0])}
		prev = cls
	}
	return prev
}

// tipOf returns the ground application Fn<Int> of a chain tip.
func (g *Generator) tipOf(cls *ir.ClassDecl) *types.App {
	return cls.Type().(*types.Constructor).Apply(g.b.Int)
}

// stressLubStorm: test() joins the two chain tips through if-expressions,
// each join forcing Lub over both (unrelated) supertype chains.
func (g *Generator) stressLubStorm(n int) {
	aTip := g.tipOf(g.stressChain("LA", n))
	bTip := g.tipOf(g.stressChain("LB", n))
	block := &ir.Block{}
	for i := 0; i < 8; i++ {
		block.Stmts = append(block.Stmts, &ir.VarDecl{
			Name:     fmt.Sprintf("j%d", i),
			DeclType: g.b.Any,
			Init: &ir.If{
				Cond: &ir.Const{Type: g.b.Boolean},
				Then: &ir.Const{Type: aTip},
				Else: &ir.Const{Type: bTip},
			},
		})
	}
	block.Value = &ir.Const{Type: g.b.Unit}
	g.prog.Decls = append(g.prog.Decls, &ir.FuncDecl{Name: "test", Ret: g.b.Unit, Body: block})
}

// stressUnifyStorm: clash<T>(a: UA_n<T>, b: UB_n<T>) called with the
// argument families swapped, so inferring T unifies across unrelated
// chains and backtracks through every climb interleaving.
func (g *Generator) stressUnifyStorm(n int) {
	aCls := g.stressChain("UA", n)
	bCls := g.stressChain("UB", n)
	tp := types.NewParameter("clash", "T")
	aOfT := aCls.Type().(*types.Constructor).Apply(tp)
	bOfT := bCls.Type().(*types.Constructor).Apply(tp)
	g.prog.Decls = append(g.prog.Decls, &ir.FuncDecl{
		Name:       "clash",
		TypeParams: []*types.Parameter{tp},
		Params: []*ir.ParamDecl{
			{Name: "a", Type: aOfT},
			{Name: "b", Type: bOfT},
		},
		Ret:  g.b.Int,
		Body: &ir.Const{Type: g.b.Int},
	})
	block := &ir.Block{
		Stmts: []ir.Node{&ir.VarDecl{
			Name:     "v",
			DeclType: g.b.Int,
			Init: &ir.Call{Name: "clash", Args: []ir.Expr{
				&ir.Const{Type: g.tipOf(bCls)}, // wrong family on purpose
				&ir.Const{Type: g.tipOf(aCls)},
			}},
		}},
		Value: &ir.Const{Type: g.b.Unit},
	}
	g.prog.Decls = append(g.prog.Decls, &ir.FuncDecl{Name: "test", Ret: g.b.Unit, Body: block})
}

// stressDeepNest: sink<T>(x: DBox^d<T>) called with DBox^d<Int>, so
// unification and substitution both recurse through d nesting levels.
func (g *Generator) stressDeepNest(depth int) {
	box := &ir.ClassDecl{
		Name:       "DBox",
		Open:       true,
		TypeParams: []*types.Parameter{types.NewParameter("DBox", "T")},
	}
	g.prog.Decls = append(g.prog.Decls, box)
	g.classes = append(g.classes, box)
	ctor := box.Type().(*types.Constructor)
	nest := func(core types.Type) types.Type {
		t := core
		for i := 0; i < depth; i++ {
			t = ctor.Apply(t)
		}
		return t
	}
	tp := types.NewParameter("sink", "T")
	g.prog.Decls = append(g.prog.Decls, &ir.FuncDecl{
		Name:       "sink",
		TypeParams: []*types.Parameter{tp},
		Params:     []*ir.ParamDecl{{Name: "x", Type: nest(tp)}},
		Ret:        g.b.Int,
		Body:       &ir.Const{Type: g.b.Int},
	})
	block := &ir.Block{
		Stmts: []ir.Node{&ir.VarDecl{
			Name:     "v",
			DeclType: g.b.Int,
			Init: &ir.Call{Name: "sink", Args: []ir.Expr{
				&ir.Const{Type: nest(g.b.Int)},
			}},
		}},
		Value: &ir.Const{Type: g.b.Unit},
	}
	g.prog.Decls = append(g.prog.Decls, &ir.FuncDecl{Name: "test", Ret: g.b.Unit, Body: block})
}
