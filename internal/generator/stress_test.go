package generator

import (
	"context"
	"testing"

	"repro/internal/checker"
	"repro/internal/compilers"
	"repro/internal/governor"
)

func stressGen(seed int64) *Generator {
	cfg := DefaultConfig().WithSeed(seed)
	cfg.Stress = StressConfig{Every: 1}
	return New(cfg)
}

// TestStressShapesUnmetered pins each shape's unmetered behaviour: the
// lub storm and deep nesting complete (well-typed) without a budget;
// only the unify storm is infeasible and is not run here.
func TestStressShapesUnmetered(t *testing.T) {
	for _, seed := range []int64{0, 2} { // lub storm, deep nest
		g := stressGen(seed)
		p := g.GenerateStress()
		res := checker.Check(p, g.Builtins(), checker.Options{})
		if !res.OK() {
			t.Errorf("seed %d: stress program ill-typed unmetered: bail=%v diags=%v",
				seed, res.Bailout, res.Diags)
		}
	}
}

// TestStressShapesExhaustFuel runs every shape through the compiler
// front door with a small budget and requires a deterministic
// ResourceExhausted result — the governor's reason to exist.
func TestStressShapesExhaustFuel(t *testing.T) {
	for _, seed := range []int64{0, 1, 2} {
		g := stressGen(seed)
		p := g.GenerateStress()
		gov := governor.New(5000, 0)
		ctx := governor.WithBudget(context.Background(), gov)
		res, err := compilers.Javac().CompileContext(ctx, p, nil)
		if err != nil {
			t.Fatalf("seed %d: err = %v", seed, err)
		}
		if res.Status != compilers.ResourceExhausted {
			t.Errorf("seed %d: status = %s, want resource exhausted (diags %v)",
				seed, res.Status, res.Diagnostics)
		}
	}
}

// TestStressExhaustionIsDeterministic regenerates and rechecks each
// shape and requires the identical bailout step count — the property the
// campaign's byte-equal sharded reports rest on.
func TestStressExhaustionIsDeterministic(t *testing.T) {
	for _, seed := range []int64{0, 1, 2} {
		spend := func() (int64, string) {
			g := stressGen(seed)
			p := g.GenerateStress()
			gov := governor.New(5000, 0)
			res := checker.Check(p, g.Builtins(), checker.Options{Budget: gov})
			if res.Bailout == nil {
				t.Fatalf("seed %d: no bailout at fuel 5000", seed)
			}
			return res.Bailout.Spent, res.Bailout.Error()
		}
		s1, m1 := spend()
		s2, m2 := spend()
		if s1 != s2 || m1 != m2 {
			t.Errorf("seed %d: nondeterministic exhaustion: (%d, %q) vs (%d, %q)",
				seed, s1, m1, s2, m2)
		}
	}
}

// TestStressSeedCadence pins the seed-keyed cadence: the stress decision
// depends only on the unit seed and Every, never on position.
func TestStressSeedCadence(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.StressSeed(7) {
		t.Error("stress disabled by default, yet StressSeed(7) = true")
	}
	cfg.Stress.Every = 4
	want := map[int64]bool{0: false, 1: false, 2: false, 3: true, 7: true, 8: false, 11: true}
	for seed, w := range want {
		if got := cfg.StressSeed(seed); got != w {
			t.Errorf("StressSeed(%d) = %v, want %v", seed, got, w)
		}
	}
}
