package generator

import (
	"repro/internal/ir"
	"repro/internal/types"
)

// generateType computes the set of available types in the current scope —
// built-in types, instantiations of previously generated classes, and
// in-scope type parameters (Section 3.2, "Generating types") — and picks
// one at random. depth bounds recursive instantiation of type
// constructors.
func (g *Generator) generateType(sc *scope, depth int) types.Type {
	// Weighted choice among the sources.
	roll := g.rng.Float64()
	switch {
	case roll < 0.15 && sc != nil && len(sc.typeParams) > 0:
		return sc.typeParams[g.rng.Intn(len(sc.typeParams))]
	case roll < 0.60 && depth > 0 && len(g.classes) > 0:
		if t := g.instantiate(g.randomClass(), sc, depth-1); t != nil {
			return t
		}
	case roll < 0.68 && depth > 0 && g.cfg.Lambdas:
		// Function types give rise to lambdas and method references.
		n := g.rng.Intn(3)
		f := &types.Func{Ret: g.groundType(nil, depth-1)}
		for i := 0; i < n; i++ {
			f.Params = append(f.Params, g.groundType(nil, depth-1))
		}
		return f
	}
	return g.groundBuiltin()
}

// groundType is generateType restricted to ground (parameter-free) types;
// used for upper bounds, which must not be mutually recursive here.
func (g *Generator) groundType(sc *scope, depth int) types.Type {
	if depth > 0 && len(g.classes) > 0 && g.rng.Float64() < 0.3 {
		cls := g.randomClass()
		if t := g.instantiate(cls, nil, depth-1); t != nil {
			return t
		}
	}
	return g.groundBuiltin()
}

func (g *Generator) groundBuiltin() types.Type {
	all := g.b.All()
	return all[g.rng.Intn(len(all))]
}

func (g *Generator) randomClass() *ir.ClassDecl {
	return g.classes[g.rng.Intn(len(g.classes))]
}

// instantiate turns a class declaration into a usable type: its simple
// type, or its constructor applied to randomly chosen arguments that
// satisfy the parameters' upper bounds. Use-site projections are added
// occasionally when enabled. Returns nil when no conforming argument
// exists.
func (g *Generator) instantiate(cls *ir.ClassDecl, sc *scope, depth int) types.Type {
	t := cls.Type()
	ctor, ok := t.(*types.Constructor)
	if !ok {
		return t
	}
	args := make([]types.Type, len(ctor.Params))
	for i, p := range ctor.Params {
		arg := g.conformingType(p.UpperBound(), sc, depth)
		if arg == nil {
			return nil
		}
		if g.cfg.UseSiteVariance && p.Var == types.Invariant && g.rng.Float64() < 0.1 {
			// Wrap in an out-projection (A<out Number>), but only when
			// the projected bound still satisfies the parameter's upper
			// bound.
			if sup := types.Supertype(arg); !sup.Equal(arg) {
				_, isTop := sup.(types.Top)
				if !isTop && types.IsSubtype(sup, p.UpperBound()) {
					arg = &types.Projection{Var: types.Covariant, Bound: sup}
				}
			}
		}
		args[i] = arg
	}
	return ctor.Apply(args...)
}

// conformingType picks a random available type that is a subtype of bound.
func (g *Generator) conformingType(bound types.Type, sc *scope, depth int) types.Type {
	if _, isTop := bound.(types.Top); isTop {
		return g.generateType(sc, depth)
	}
	var pool []types.Type
	for _, t := range g.b.All() {
		if types.IsSubtype(t, bound) {
			pool = append(pool, t)
		}
	}
	if sc != nil {
		for _, p := range sc.typeParams {
			if types.IsSubtype(p, bound) {
				pool = append(pool, p)
			}
		}
	}
	if depth > 0 {
		for _, cls := range g.classes {
			switch ct := cls.Type().(type) {
			case *types.Simple:
				if types.IsSubtype(ct, bound) {
					pool = append(pool, ct)
				}
			case *types.Constructor:
				// A parameterized class conforms when some instantiation
				// does; try one.
				if inst := g.instantiate(cls, sc, depth-1); inst != nil && types.IsSubtype(inst, bound) {
					pool = append(pool, inst)
				}
			}
		}
	}
	if len(pool) == 0 {
		if bt, ok := bound.(*types.Simple); ok {
			return bt // the bound itself (reflexivity)
		}
		return nil
	}
	return pool[g.rng.Intn(len(pool))]
}

// subtypeOfTarget picks a concrete type conforming to a type-argument
// target that may be a projection (for generating New expressions against
// projected targets).
func (g *Generator) subtypeOfTarget(arg types.Type, sc *scope, depth int) types.Type {
	if proj, ok := arg.(*types.Projection); ok {
		if proj.Var == types.Covariant {
			if t := g.conformingType(proj.Bound, sc, depth); t != nil {
				return t
			}
		}
		return proj.Bound
	}
	return arg
}
