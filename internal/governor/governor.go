// Package governor implements a deterministic resource governor for
// the type checker's hot recursive procedures: a fuel (step) budget, a
// recursion-depth guard, and cooperative cancellation.
//
// The wall-clock watchdog in internal/harness catches true hangs, but
// its verdict varies with machine speed — a borderline program can be
// CompilerHang on a slow worker and Pass on a fast one, which breaks
// the fabric guarantee that a sharded campaign merges byte-identical
// to a single-process run. A fuel budget counts *steps* instead of
// seconds: every recursive relation in internal/types and every
// expression the checker visits charges the budget, so a pathological
// program exhausts its fuel after the same number of steps on every
// machine, at every worker count, under every shard layout. Exhaustion
// surfaces as compilers.ResourceExhausted / oracle.ResourceExhausted —
// a reproducible "typing performance bug" verdict — while the
// wall-clock watchdog stays as a backstop for non-counting hangs.
//
// Determinism contract: a Budget is only deterministic if the charges
// it sees are a pure function of the program under check. The memo
// caches in internal/types are cross-program (a cache hit skips work a
// cold cache would have charged), so guarded walks — any budget with a
// finite fuel or depth limit — bypass those caches entirely; see
// types.IsSubtypeB. Unguarded budgets (fuel 0, depth 0) still count
// steps for metrics and still poll cancellation, but leave the caches
// in play since their counts are advisory.
//
// Charge points double as cancellation checkpoints: every
// DefaultPollEvery charges the budget polls its bound context and
// bails out cooperatively, which is what lets the harness watchdog's
// abandoned sandbox goroutine actually exit instead of leaking.
//
// A Budget is confined to a single goroutine (one compile invocation);
// all methods are nil-receiver-safe so call sites need no guards.
package governor

import (
	"context"
	"fmt"
)

// DefaultMaxDepth is the recursion-depth guard applied when a fuel
// budget is set without an explicit depth limit. The deepest sane
// recursion (nested generic applications, substitution into deep
// types) stays well under this; runaway recursion blows past it.
const DefaultMaxDepth = 512

// DefaultPollEvery is how many charged steps elapse between context
// cancellation polls. Polling is two loads and a branch when the
// context is live, so this mainly bounds staleness: a cancelled
// compile exits within DefaultPollEvery steps of the cancel.
const DefaultPollEvery = 1024

// Reason classifies why a guarded walk bailed out.
type Reason int

const (
	// FuelExhausted: the step budget ran dry. Deterministic.
	FuelExhausted Reason = iota
	// DepthExceeded: the recursion-depth guard tripped. Deterministic.
	DepthExceeded
	// Cancelled: the bound context was cancelled (watchdog timeout or
	// parent shutdown). Wall-clock dependent by nature; never reaches
	// a report — the harness maps it back to the context's error.
	Cancelled
)

func (r Reason) String() string {
	switch r {
	case FuelExhausted:
		return "fuel exhausted"
	case DepthExceeded:
		return "depth exceeded"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("unknown(%d)", int(r))
	}
}

// Bailout is the panic value a Budget raises when a guard trips. It is
// recovered inside checker.Check (never crossing the harness sandbox,
// whose recover classifies panics as compiler crashes) and recorded on
// the checker result.
type Bailout struct {
	Reason Reason
	// Spent is the fuel consumed when the guard tripped. Deterministic
	// for FuelExhausted and DepthExceeded (guarded walks bypass the
	// memo caches); meaningless for Cancelled.
	Spent int64
	// Limit is the fuel budget (0 = unlimited).
	Limit int64
	// Depth is the recursion depth at a DepthExceeded bailout.
	Depth int
	// Err is the context error for Cancelled bailouts.
	Err error
}

func (b *Bailout) Error() string {
	switch b.Reason {
	case FuelExhausted:
		return fmt.Sprintf("fuel exhausted after %d steps (budget %d)", b.Spent, b.Limit)
	case DepthExceeded:
		return fmt.Sprintf("recursion depth %d exceeded after %d steps", b.Depth, b.Spent)
	case Cancelled:
		return fmt.Sprintf("cancelled: %v", b.Err)
	default:
		return b.Reason.String()
	}
}

// AsBailout reports whether a recovered panic value is a governor
// bailout. Any other panic must be re-raised by the caller.
func AsBailout(recovered any) (*Bailout, bool) {
	b, ok := recovered.(*Bailout)
	return b, ok
}

// Budget is a per-invocation step budget. The zero limit values make
// an unguarded budget: it counts steps (for fuel-spent metrics) and
// polls cancellation but never bails on fuel or depth.
type Budget struct {
	ctx       context.Context
	limit     int64
	spent     int64
	maxDepth  int
	depth     int
	pollEvery int64
	sincePoll int64
}

// New builds a budget. fuel <= 0 means unlimited fuel; maxDepth <= 0
// with a fuel limit defaults to DefaultMaxDepth (a fuel-guarded walk
// must also be depth-guarded or a deep recursion could overflow the
// goroutine stack before fuel runs out), and without one means no
// depth guard.
func New(fuel int64, maxDepth int) *Budget {
	if fuel < 0 {
		fuel = 0
	}
	if maxDepth <= 0 {
		if fuel > 0 {
			maxDepth = DefaultMaxDepth
		} else {
			maxDepth = 0
		}
	}
	return &Budget{limit: fuel, maxDepth: maxDepth, pollEvery: DefaultPollEvery}
}

// Bind attaches the context polled at fuel checkpoints. The harness
// binds its per-invocation timeout context so an abandoned compile
// observes the watchdog's cancel and exits.
func (b *Budget) Bind(ctx context.Context) {
	if b != nil {
		b.ctx = ctx
	}
}

// Charge spends n steps and trips the fuel guard or, periodically, the
// cancellation poll. n must reflect work actually done so counts stay
// machine-independent.
func (b *Budget) Charge(n int64) {
	if b == nil {
		return
	}
	b.spent += n
	if b.limit > 0 && b.spent > b.limit {
		panic(&Bailout{Reason: FuelExhausted, Spent: b.spent, Limit: b.limit})
	}
	b.sincePoll += n
	if b.sincePoll >= b.pollEvery {
		b.sincePoll = 0
		if b.ctx != nil {
			if err := b.ctx.Err(); err != nil {
				panic(&Bailout{Reason: Cancelled, Spent: b.spent, Limit: b.limit, Err: err})
			}
		}
	}
}

// Enter pushes one recursion level and trips the depth guard. Every
// Enter must be paired with an Exit on the non-panicking path; bailout
// panics abandon the walk wholesale, so unwound Exits don't matter.
func (b *Budget) Enter() {
	if b == nil {
		return
	}
	b.depth++
	if b.maxDepth > 0 && b.depth > b.maxDepth {
		panic(&Bailout{Reason: DepthExceeded, Spent: b.spent, Limit: b.limit, Depth: b.depth})
	}
}

// Exit pops one recursion level.
func (b *Budget) Exit() {
	if b != nil {
		b.depth--
	}
}

// Guarded reports whether any deterministic guard (fuel or depth) is
// armed. Guarded walks must bypass the cross-program memo caches in
// internal/types: a cache hit skips steps a cold cache would charge,
// which would make bailout points depend on what was checked before.
func (b *Budget) Guarded() bool {
	return b != nil && (b.limit > 0 || b.maxDepth > 0)
}

// Spent returns the steps charged so far. Only read it from the
// goroutine running the walk, or after that goroutine's result has
// been received over a channel (the harness does the latter).
func (b *Budget) Spent() int64 {
	if b == nil {
		return 0
	}
	return b.spent
}

// Limit returns the fuel budget (0 = unlimited).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

type ctxKey struct{}

// WithBudget returns a context carrying the budget, following the
// harness.WithKey pattern so the budget rides the existing
// context plumbing into compilers.CompileContext.
func WithBudget(ctx context.Context, b *Budget) context.Context {
	return context.WithValue(ctx, ctxKey{}, b)
}

// FromContext extracts the budget installed by WithBudget, or nil.
func FromContext(ctx context.Context) *Budget {
	b, _ := ctx.Value(ctxKey{}).(*Budget)
	return b
}
