package governor

import (
	"context"
	"testing"
)

// bailsWith runs f and returns the Bailout it panicked with, or nil.
func bailsWith(t *testing.T, f func()) *Bailout {
	t.Helper()
	var out *Bailout
	func() {
		defer func() {
			if r := recover(); r != nil {
				b, ok := AsBailout(r)
				if !ok {
					panic(r)
				}
				out = b
			}
		}()
		f()
	}()
	return out
}

func TestNilBudgetIsInert(t *testing.T) {
	var b *Budget
	b.Charge(1 << 30)
	b.Enter()
	b.Exit()
	b.Bind(context.Background())
	if b.Guarded() {
		t.Fatal("nil budget reports Guarded")
	}
	if b.Spent() != 0 || b.Limit() != 0 {
		t.Fatal("nil budget reports nonzero accounting")
	}
}

func TestFuelExhaustion(t *testing.T) {
	b := New(10, 0)
	if !b.Guarded() {
		t.Fatal("fuel-limited budget not Guarded")
	}
	bail := bailsWith(t, func() {
		for i := 0; i < 100; i++ {
			b.Charge(1)
		}
	})
	if bail == nil || bail.Reason != FuelExhausted {
		t.Fatalf("want FuelExhausted bailout, got %+v", bail)
	}
	// The guard trips on the first charge past the limit — always at
	// the same step, which is the whole point.
	if bail.Spent != 11 || bail.Limit != 10 {
		t.Fatalf("want spent=11 limit=10, got spent=%d limit=%d", bail.Spent, bail.Limit)
	}
}

func TestFuelDeterminism(t *testing.T) {
	run := func() int64 {
		b := New(1000, 0)
		bail := bailsWith(t, func() {
			for {
				b.Charge(3)
			}
		})
		return bail.Spent
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d exhausted at %d steps, first at %d", i, got, first)
		}
	}
}

func TestDepthGuard(t *testing.T) {
	b := New(0, 4)
	if !b.Guarded() {
		t.Fatal("depth-limited budget not Guarded")
	}
	var rec func(n int)
	rec = func(n int) {
		b.Enter()
		if n > 0 {
			rec(n - 1)
		}
		b.Exit()
	}
	if bail := bailsWith(t, func() { rec(3) }); bail != nil {
		t.Fatalf("depth 4 within limit 4 bailed: %v", bail)
	}
	bail := bailsWith(t, func() { rec(10) })
	if bail == nil || bail.Reason != DepthExceeded {
		t.Fatalf("want DepthExceeded, got %+v", bail)
	}
	if bail.Depth != 5 {
		t.Fatalf("want trip at depth 5, got %d", bail.Depth)
	}
}

func TestFuelImpliesDepthGuard(t *testing.T) {
	b := New(1<<40, 0)
	var rec func()
	rec = func() {
		b.Enter()
		rec()
	}
	bail := bailsWith(t, func() { rec() })
	if bail == nil || bail.Reason != DepthExceeded {
		t.Fatalf("fuel-only budget must default a depth guard, got %+v", bail)
	}
	if bail.Depth != DefaultMaxDepth+1 {
		t.Fatalf("want trip at %d, got %d", DefaultMaxDepth+1, bail.Depth)
	}
}

func TestUnguardedBudgetCountsButNeverBails(t *testing.T) {
	b := New(0, 0)
	if b.Guarded() {
		t.Fatal("unguarded budget reports Guarded")
	}
	for i := 0; i < 5000; i++ {
		b.Charge(2)
	}
	if b.Spent() != 10000 {
		t.Fatalf("want 10000 spent, got %d", b.Spent())
	}
}

func TestCancellationPoll(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(0, 0)
	b.Bind(ctx)
	// Live context: charges sail through poll checkpoints.
	for i := int64(0); i < 3*DefaultPollEvery; i++ {
		b.Charge(1)
	}
	cancel()
	bail := bailsWith(t, func() {
		for i := int64(0); i <= DefaultPollEvery; i++ {
			b.Charge(1)
		}
	})
	if bail == nil || bail.Reason != Cancelled {
		t.Fatalf("want Cancelled within one poll interval, got %+v", bail)
	}
	if bail.Err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", bail.Err)
	}
}

func TestContextRoundTrip(t *testing.T) {
	b := New(7, 0)
	ctx := WithBudget(context.Background(), b)
	if got := FromContext(ctx); got != b {
		t.Fatalf("FromContext returned %p, want %p", got, b)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("empty context yielded budget %p", got)
	}
}

func TestBailoutStrings(t *testing.T) {
	cases := []struct {
		b    *Bailout
		want string
	}{
		{&Bailout{Reason: FuelExhausted, Spent: 11, Limit: 10}, "fuel exhausted after 11 steps (budget 10)"},
		{&Bailout{Reason: DepthExceeded, Depth: 513, Spent: 42}, "recursion depth 513 exceeded after 42 steps"},
		{&Bailout{Reason: Cancelled, Err: context.Canceled}, "cancelled: context canceled"},
		{&Bailout{Reason: Reason(99)}, "unknown(99)"},
	}
	for _, c := range cases {
		if got := c.b.Error(); got != c.want {
			t.Errorf("Error() = %q, want %q", got, c.want)
		}
	}
	if got := Reason(42).String(); got != "unknown(42)" {
		t.Errorf("Reason(42) = %q", got)
	}
}
