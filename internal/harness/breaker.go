package harness

import (
	"fmt"
	"sync"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: traffic flows; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the compiler is quarantined; compiles are skipped
	// until the cooldown has been served.
	BreakerOpen
	// BreakerHalfOpen: one probe compile is in flight; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// Breaker is a count-based circuit breaker guarding one compiler.
// Unlike the classic wall-clock design, its cooldown is measured in
// skipped compiles, not elapsed time: campaign behaviour then depends
// only on the work stream, which keeps single-worker runs reproducible
// and makes the state machine testable without sleeping.
//
// Closed counts consecutive harness-level failures and opens at the
// threshold. Open skips compiles (the campaign records each gap) until
// cooldown of them have been served, then lets exactly one probe
// through half-open. A successful probe closes the breaker; a failed
// one re-opens it for another cooldown.
type Breaker struct {
	threshold int
	cooldown  int

	mu       sync.Mutex
	state    BreakerState
	failures int  // consecutive failures while closed
	skipped  int  // compiles skipped while open
	probing  bool // a half-open probe is in flight

	// onTransition, when set, observes every state change (called with
	// the lock held, so it must not call back into the breaker). It is
	// wired by the harness to the event trace and breaker-state gauge.
	onTransition func(from, to BreakerState)
}

// NewBreaker returns a breaker that opens after threshold consecutive
// failures and probes after cooldown skipped compiles. threshold <= 0
// disables the breaker: Allow always admits and Record never trips.
func NewBreaker(threshold, cooldown int) *Breaker {
	if cooldown <= 0 {
		cooldown = 2 * threshold
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// OnTransition registers an observer for state changes. Observation
// only: the callback runs with the breaker's lock held and must not
// call back into the breaker.
func (b *Breaker) OnTransition(fn func(from, to BreakerState)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onTransition = fn
}

// setState moves the breaker to a new position, notifying the observer.
// Callers hold b.mu.
func (b *Breaker) setState(to BreakerState) {
	from := b.state
	b.state = to
	if b.onTransition != nil && from != to {
		b.onTransition(from, to)
	}
}

// Allow reports whether a compile may proceed. A false return means the
// compile is quarantined and the caller should record the gap. When an
// open breaker has served its cooldown, the admitting call becomes the
// half-open probe.
func (b *Breaker) Allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.skipped < b.cooldown {
			b.skipped++
			return false
		}
		b.setState(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false // one probe at a time
		}
		b.probing = true
		return true
	}
}

// Record reports an admitted compile's harness-level outcome: ok means
// the compiler produced a result (even a buggy one); !ok means a crash,
// timeout, or persistent harness error.
func (b *Breaker) Record(ok bool) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.threshold {
			b.setState(BreakerOpen)
			b.skipped = 0
		}
	case BreakerHalfOpen:
		b.probing = false
		if ok {
			b.setState(BreakerClosed)
			b.failures = 0
		} else {
			b.setState(BreakerOpen)
			b.skipped = 0
		}
	default:
		// A straggler finishing after the breaker opened; consecutive
		// accounting restarts at the next probe.
	}
}

// BreakerSnapshot is a breaker's exportable state, used by campaign
// checkpoints so a resumed run re-opens quarantines where the killed
// run left them.
type BreakerSnapshot struct {
	State    BreakerState `json:"state"`
	Failures int          `json:"failures,omitempty"`
	Skipped  int          `json:"skipped,omitempty"`
}

// Export captures the breaker's position. An in-flight half-open probe
// exports as half-open with no probe pending: if the process dies
// before the probe's Record, the resumed run's next Allow becomes the
// probe instead of deadlocking the breaker.
func (b *Breaker) Export() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{State: b.state, Failures: b.failures, Skipped: b.skipped}
}

// Import restores an exported position, clearing any probe-in-flight
// marker (the probe died with the previous process).
func (b *Breaker) Import(s BreakerSnapshot) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.setState(s.State)
	b.failures = s.Failures
	b.skipped = s.Skipped
	b.probing = false
}

// String renders the breaker for logs.
func (b *Breaker) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return fmt.Sprintf("breaker(%s, failures=%d, skipped=%d)", b.state, b.failures, b.skipped)
}
