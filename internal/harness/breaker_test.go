package harness

import (
	"sync"
	"testing"
)

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := NewBreaker(3, 2)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied compile %d", i)
		}
		b.Record(false)
		if b.State() != BreakerClosed {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	b.Allow()
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatal("breaker closed after 3 consecutive failures")
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b := NewBreaker(3, 2)
	for i := 0; i < 10; i++ {
		b.Allow()
		b.Record(i%2 == 0) // alternate success/failure: never 3 in a row
	}
	if b.State() != BreakerOpen && b.State() != BreakerClosed {
		t.Fatalf("unexpected state %s", b.State())
	}
	if b.State() != BreakerClosed {
		t.Fatal("breaker opened without 3 consecutive failures")
	}
}

func TestBreakerCooldownThenHalfOpen(t *testing.T) {
	b := NewBreaker(1, 3)
	b.Allow()
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatal("breaker should open at threshold 1")
	}
	// Three compiles are quarantined during the cooldown.
	for i := 0; i < 3; i++ {
		if b.Allow() {
			t.Fatalf("open breaker admitted compile %d during cooldown", i)
		}
	}
	// The third is admitted as the half-open probe.
	if !b.Allow() {
		t.Fatal("breaker should probe half-open after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %s, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker should admit")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b := NewBreaker(1, 1)
	b.Allow()
	b.Record(false) // open
	if b.Allow() {  // serves the 1-compile cooldown
		t.Fatal("open breaker admitted during cooldown")
	}
	if !b.Allow() { // cooldown served: this admission is the probe
		t.Fatal("probe not admitted after cooldown")
	}
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %s, want open", b.State())
	}
	// The cooldown restarts from zero.
	if b.Allow() {
		t.Fatal("re-opened breaker admitted during restarted cooldown")
	}
	if !b.Allow() {
		t.Fatal("second probe not admitted after restarted cooldown")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %s, want closed", b.State())
	}
}

func TestBreakerDisabledAlwaysAdmits(t *testing.T) {
	b := NewBreaker(0, 0)
	for i := 0; i < 100; i++ {
		if !b.Allow() {
			t.Fatal("disabled breaker denied a compile")
		}
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("disabled breaker state = %s, want closed", b.State())
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	// Exercised under -race: concurrent Allow/Record must not corrupt
	// the state machine into an impossible position.
	b := NewBreaker(5, 3)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if b.Allow() {
					b.Record((i+w)%3 != 0)
				}
			}
		}(w)
	}
	wg.Wait()
	switch b.State() {
	case BreakerClosed, BreakerOpen, BreakerHalfOpen:
	default:
		t.Fatalf("impossible breaker state %d", b.State())
	}
}

func TestBreakerExportImportRoundTrip(t *testing.T) {
	b := NewBreaker(3, 4)
	b.Record(false)
	b.Record(false) // two consecutive failures while closed
	snap := b.Export()
	if snap.State != BreakerClosed || snap.Failures != 2 {
		t.Fatalf("export = %+v, want closed with 2 failures", snap)
	}

	restored := NewBreaker(3, 4)
	restored.Import(snap)
	restored.Record(false) // third failure: must open, like the original
	if restored.State() != BreakerOpen {
		t.Fatalf("restored breaker did not open at threshold: %s", restored.State())
	}

	// Open state round-trips mid-cooldown.
	restored.Allow()
	restored.Allow() // two skips served
	snap = restored.Export()
	if snap.State != BreakerOpen || snap.Skipped != 2 {
		t.Fatalf("export = %+v, want open with 2 skipped", snap)
	}
	again := NewBreaker(3, 4)
	again.Import(snap)
	if again.Allow() || again.Allow() {
		t.Fatal("restored open breaker admitted before serving its cooldown")
	}
	if !again.Allow() {
		t.Fatal("restored breaker did not probe after cooldown")
	}
	if again.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown probe = %s, want half-open", again.State())
	}
}

func TestBreakerImportClearsStaleProbe(t *testing.T) {
	// A breaker exported while its half-open probe was in flight must
	// not stay wedged after restore: the probe died with the process.
	b := NewBreaker(1, 1)
	b.Record(false) // open
	b.Allow()       // serve cooldown
	if !b.Allow() {
		t.Fatal("expected the half-open probe admission")
	}
	snap := b.Export() // probe in flight
	if snap.State != BreakerHalfOpen {
		t.Fatalf("export = %+v, want half-open", snap)
	}
	restored := NewBreaker(1, 1)
	restored.Import(snap)
	if !restored.Allow() {
		t.Fatal("restored half-open breaker refused the fresh probe")
	}
}

func TestHarnessExportImportBreakers(t *testing.T) {
	h := New(Options{BreakerThreshold: 2, BreakerCooldown: 3})
	h.Breaker("groovyc").Record(false)
	h.Breaker("groovyc").Record(false) // open
	h.Breaker("kotlinc").Record(false)

	states := h.ExportBreakers()
	if len(states) != 2 {
		t.Fatalf("exported %d breakers, want 2", len(states))
	}
	if states["groovyc"].State != BreakerOpen {
		t.Errorf("groovyc exported %+v, want open", states["groovyc"])
	}

	h2 := New(Options{BreakerThreshold: 2, BreakerCooldown: 3})
	h2.ImportBreakers(states)
	if h2.Breaker("groovyc").State() != BreakerOpen {
		t.Error("groovyc quarantine lost across export/import")
	}
	if h2.Breaker("kotlinc").Export().Failures != 1 {
		t.Error("kotlinc consecutive-failure count lost across export/import")
	}
}
