package harness

import (
	"sync"
	"testing"
)

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := NewBreaker(3, 2)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied compile %d", i)
		}
		b.Record(false)
		if b.State() != BreakerClosed {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	b.Allow()
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatal("breaker closed after 3 consecutive failures")
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b := NewBreaker(3, 2)
	for i := 0; i < 10; i++ {
		b.Allow()
		b.Record(i%2 == 0) // alternate success/failure: never 3 in a row
	}
	if b.State() != BreakerOpen && b.State() != BreakerClosed {
		t.Fatalf("unexpected state %s", b.State())
	}
	if b.State() != BreakerClosed {
		t.Fatal("breaker opened without 3 consecutive failures")
	}
}

func TestBreakerCooldownThenHalfOpen(t *testing.T) {
	b := NewBreaker(1, 3)
	b.Allow()
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatal("breaker should open at threshold 1")
	}
	// Three compiles are quarantined during the cooldown.
	for i := 0; i < 3; i++ {
		if b.Allow() {
			t.Fatalf("open breaker admitted compile %d during cooldown", i)
		}
	}
	// The third is admitted as the half-open probe.
	if !b.Allow() {
		t.Fatal("breaker should probe half-open after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %s, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker should admit")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b := NewBreaker(1, 1)
	b.Allow()
	b.Record(false) // open
	if b.Allow() {  // serves the 1-compile cooldown
		t.Fatal("open breaker admitted during cooldown")
	}
	if !b.Allow() { // cooldown served: this admission is the probe
		t.Fatal("probe not admitted after cooldown")
	}
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %s, want open", b.State())
	}
	// The cooldown restarts from zero.
	if b.Allow() {
		t.Fatal("re-opened breaker admitted during restarted cooldown")
	}
	if !b.Allow() {
		t.Fatal("second probe not admitted after restarted cooldown")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %s, want closed", b.State())
	}
}

func TestBreakerDisabledAlwaysAdmits(t *testing.T) {
	b := NewBreaker(0, 0)
	for i := 0; i < 100; i++ {
		if !b.Allow() {
			t.Fatal("disabled breaker denied a compile")
		}
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("disabled breaker state = %s, want closed", b.State())
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	// Exercised under -race: concurrent Allow/Record must not corrupt
	// the state machine into an impossible position.
	b := NewBreaker(5, 3)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if b.Allow() {
					b.Record((i+w)%3 != 0)
				}
			}
		}(w)
	}
	wg.Wait()
	switch b.State() {
	case BreakerClosed, BreakerOpen, BreakerHalfOpen:
	default:
		t.Fatalf("impossible breaker state %d", b.State())
	}
}
