package harness

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compilers"
	"repro/internal/coverage"
	"repro/internal/ir"
	"repro/internal/metrics"
)

// ChaosOptions configures deterministic fault injection. Every decision
// is drawn from a generator seeded by (Seed, compiler name, invocation
// Key), never from global call order, so for a fixed seed the same
// faults hit the same compiles whatever the worker count — which is
// what lets a chaos soak assert a bit-for-bit deterministic report.
type ChaosOptions struct {
	// Seed drives every injection decision.
	Seed int64
	// PanicRate is the probability a compile panics (exercising the
	// sandbox).
	PanicRate float64
	// HangRate is the probability a compile hangs (exercising the
	// watchdog).
	HangRate float64
	// TransientRate is the probability a compile's first attempt fails
	// with a retryable error (exercising backoff). Only attempt 0 is
	// eligible, so every injected transient costs exactly one retry.
	TransientRate float64
	// FlakyRate is the probability the double-compile probe sees a
	// flipped verdict (exercising the nondeterminism detector). Only the
	// probe replica is flipped; the recorded result is untouched.
	FlakyRate float64
	// HangDuration bounds an injected hang for harnesses without a
	// watchdog; 0 means 30s. Hangs are context-aware and unblock the
	// moment the watchdog fires.
	HangDuration time.Duration
}

// InjectionCounts tallies the faults a chaos wrapper injected — the
// ground truth a fault ledger is audited against.
type InjectionCounts struct {
	Panics, Hangs, Transients, Flips int64
}

// Total returns the number of injected faults of all kinds.
func (c InjectionCounts) Total() int64 { return c.Panics + c.Hangs + c.Transients + c.Flips }

// Chaos wraps a Target and injects hangs, panics, transient errors, and
// flaky verdicts at the configured rates. It implements Target, so it
// slots between the harness and any compiler.
type Chaos struct {
	opts   ChaosOptions
	target Target
	trace  *metrics.Trace

	panics, hangs, transients, flips atomic.Int64

	// perUnit attributes injections to the owning pipeline unit (by its
	// seed, carried in the invocation key), so the campaign can fold —
	// and journal — injected ground truth per unit instead of reading
	// one global counter at the end of the run.
	mu      sync.Mutex
	perUnit map[int64]*InjectionCounts
}

// NewChaos wraps target with seeded fault injection.
func NewChaos(opts ChaosOptions, target Target) *Chaos {
	if opts.HangDuration <= 0 {
		opts.HangDuration = 30 * time.Second
	}
	return &Chaos{opts: opts, target: target, perUnit: map[int64]*InjectionCounts{}}
}

// WithTrace attaches an event trace: every injected fault is emitted as
// a "chaos" event. Observation only. Returns c for chaining.
func (c *Chaos) WithTrace(trace *metrics.Trace) *Chaos {
	c.trace = trace
	return c
}

// Name implements Target.
func (c *Chaos) Name() string { return c.target.Name() }

// Injected returns the faults injected so far. Totals are sums over
// per-invocation decisions, so they are deterministic for a fixed seed
// and campaign regardless of execution order.
func (c *Chaos) Injected() InjectionCounts {
	return InjectionCounts{
		Panics:     c.panics.Load(),
		Hangs:      c.hangs.Load(),
		Transients: c.transients.Load(),
		Flips:      c.flips.Load(),
	}
}

// note tallies one injected fault, both globally and against the
// invocation's owning unit, and emits a trace event when a trace is
// attached.
func (c *Chaos) note(unit int64, kind string, global *atomic.Int64, bump func(*InjectionCounts)) {
	global.Add(1)
	c.mu.Lock()
	u := c.perUnit[unit]
	if u == nil {
		u = &InjectionCounts{}
		c.perUnit[unit] = u
	}
	bump(u)
	c.mu.Unlock()
	c.trace.Emit(metrics.Event{
		Kind: "chaos", Unit: unit, Compiler: c.target.Name(), Detail: kind,
	})
}

// DrainUnit returns and clears the faults injected into one unit's
// compiles. The pipeline's Execute stage drains each unit after its
// last compile, handing the per-unit ground truth to the aggregator —
// deterministic for a fixed seed because every injection decision is
// keyed on the invocation, never on arrival order.
func (c *Chaos) DrainUnit(unit int64) InjectionCounts {
	c.mu.Lock()
	defer c.mu.Unlock()
	u := c.perUnit[unit]
	if u == nil {
		return InjectionCounts{}
	}
	delete(c.perUnit, unit)
	return *u
}

// Compile implements Target: roll the invocation's dice, misbehave if
// they say so, otherwise delegate to the real compiler.
func (c *Chaos) Compile(ctx context.Context, p *ir.Program, cov coverage.Recorder) (*compilers.Result, error) {
	key, _ := KeyFrom(ctx)
	rng := rand.New(rand.NewSource(int64(mix64(
		uint64(c.opts.Seed) ^ hashString(c.target.Name()) ^ uint64(key.hash())))))

	if key.Replica == 0 {
		if rng.Float64() < c.opts.PanicRate {
			c.note(key.Unit, "panic", &c.panics, func(u *InjectionCounts) { u.Panics++ })
			panic(fmt.Sprintf("chaos: injected panic (unit %d, input %d, attempt %d)",
				key.Unit, key.Input, key.Attempt))
		}
		if rng.Float64() < c.opts.HangRate {
			c.note(key.Unit, "hang", &c.hangs, func(u *InjectionCounts) { u.Hangs++ })
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(c.opts.HangDuration):
				// No watchdog caught us; fall through to a late result,
				// as a real stalled-but-recovering compiler would.
			}
		}
		if key.Attempt == 0 && rng.Float64() < c.opts.TransientRate {
			c.note(key.Unit, "transient", &c.transients, func(u *InjectionCounts) { u.Transients++ })
			return nil, Transient(errors.New("chaos: injected transient fault"))
		}
	}

	res, err := c.target.Compile(ctx, p, cov)
	if err == nil && key.Replica == 1 && rng.Float64() < c.opts.FlakyRate {
		if flipped := flipStatus(res); flipped != nil {
			c.note(key.Unit, "flip", &c.flips, func(u *InjectionCounts) { u.Flips++ })
			return flipped, nil
		}
	}
	return res, err
}

// flipStatus returns a copy of res with an inverted accept/reject
// verdict, or nil if the status has no meaningful flip (crashes stay
// crashes).
func flipStatus(res *compilers.Result) *compilers.Result {
	out := *res
	switch res.Status {
	case compilers.OK:
		out.Status = compilers.Rejected
	case compilers.Rejected:
		out.Status = compilers.OK
	default:
		return nil
	}
	return &out
}
