package harness

import (
	"context"
	"testing"
	"time"

	"repro/internal/compilers"
	"repro/internal/coverage"
	"repro/internal/ir"
)

// quietTarget always compiles OK.
type quietTarget struct{}

func (quietTarget) Name() string { return "quiet" }

func (quietTarget) Compile(context.Context, *ir.Program, coverage.Recorder) (*compilers.Result, error) {
	return &compilers.Result{Status: compilers.OK}, nil
}

// chaosEnding captures how one chaos compile ended, for comparing runs.
type chaosEnding struct {
	status    compilers.Status
	err       string
	panicked  bool
	transient bool
}

// runOne invokes the chaos wrapper once under the sandbox and records
// the ending.
func runOne(c *Chaos, key Key) chaosEnding {
	ctx, cancel := context.WithTimeout(WithKey(context.Background(), key), 5*time.Second)
	defer cancel()
	var out chaosEnding
	func() {
		defer func() {
			if r := recover(); r != nil {
				out.panicked = true
			}
		}()
		res, err := c.Compile(ctx, nil, nil)
		if err != nil {
			out.err = err.Error()
			out.transient = IsTransient(err)
			return
		}
		out.status = res.Status
	}()
	return out
}

func TestChaosDecisionsKeyedNotOrdered(t *testing.T) {
	opts := ChaosOptions{Seed: 1, PanicRate: 0.2, HangRate: 0.2, TransientRate: 0.2, HangDuration: time.Millisecond}
	keys := make([]Key, 50)
	for i := range keys {
		keys[i] = Key{Unit: int64(i), Input: i % 3}
	}

	// First run: in order.
	c1 := NewChaos(opts, quietTarget{})
	forward := make([]chaosEnding, len(keys))
	for i, k := range keys {
		forward[i] = runOne(c1, k)
	}
	// Second run: reverse order. Same decisions must land on the same
	// keys — injection depends on the key, never on call order.
	c2 := NewChaos(opts, quietTarget{})
	backward := make([]chaosEnding, len(keys))
	for i := len(keys) - 1; i >= 0; i-- {
		backward[i] = runOne(c2, keys[i])
	}
	for i := range keys {
		if forward[i] != backward[i] {
			t.Fatalf("key %d: ending depends on call order: %+v vs %+v", i, forward[i], backward[i])
		}
	}
	if c1.Injected() != c2.Injected() {
		t.Fatalf("injection counts depend on call order: %+v vs %+v", c1.Injected(), c2.Injected())
	}
	if c1.Injected().Total() == 0 {
		t.Fatal("no faults injected at 20% rates over 50 compiles")
	}
}

func TestChaosTransientOnlyOnFirstAttempt(t *testing.T) {
	c := NewChaos(ChaosOptions{Seed: 3, TransientRate: 1}, quietTarget{})
	if e := runOne(c, Key{Unit: 9}); !e.transient {
		t.Fatalf("attempt 0 should fail transiently at rate 1, got %+v", e)
	}
	if e := runOne(c, Key{Unit: 9, Attempt: 1}); e.status != compilers.OK {
		t.Fatalf("attempt 1 should succeed (transients only hit attempt 0), got %+v", e)
	}
	if got := c.Injected().Transients; got != 1 {
		t.Errorf("injected transients = %d, want 1", got)
	}
}

func TestChaosSparesProbeReplicaFromFaults(t *testing.T) {
	// Panics/hangs/transients target only the primary compile, so every
	// injected fault is attributable to exactly one ledger entry.
	c := NewChaos(ChaosOptions{Seed: 5, PanicRate: 1}, quietTarget{})
	if e := runOne(c, Key{Unit: 2}); !e.panicked {
		t.Fatalf("primary replica should panic at rate 1, got %+v", e)
	}
	if e := runOne(c, Key{Unit: 2, Replica: 1}); e.status != compilers.OK {
		t.Fatalf("probe replica should be spared injected panics, got %+v", e)
	}
}

func TestChaosFlipsOnlyProbeVerdicts(t *testing.T) {
	c := NewChaos(ChaosOptions{Seed: 7, FlakyRate: 1}, quietTarget{})
	if e := runOne(c, Key{Unit: 4}); e.status != compilers.OK {
		t.Fatalf("primary verdict should be untouched, got %+v", e)
	}
	if e := runOne(c, Key{Unit: 4, Replica: 1}); e.status != compilers.Rejected {
		t.Fatalf("probe verdict should flip at rate 1, got %+v", e)
	}
	if got := c.Injected().Flips; got != 1 {
		t.Errorf("injected flips = %d, want 1", got)
	}
}

func TestChaosHangObservesContext(t *testing.T) {
	c := NewChaos(ChaosOptions{Seed: 11, HangRate: 1, HangDuration: time.Hour}, quietTarget{})
	key := Key{Unit: 6}
	ctx, cancel := context.WithTimeout(WithKey(context.Background(), key), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Compile(ctx, nil, nil)
	if err == nil {
		t.Fatal("hung compile returned without error before its duration")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("injected hang ignored context for %v", elapsed)
	}
	if got := c.Injected().Hangs; got != 1 {
		t.Errorf("injected hangs = %d, want 1", got)
	}
}

func TestChaosThroughHarnessLedgerAudit(t *testing.T) {
	// End-to-end at the harness level: run many keyed compiles through
	// chaos + harness and check the ledger accounts for every injected
	// fault.
	chaos := NewChaos(ChaosOptions{
		Seed:          13,
		PanicRate:     0.15,
		HangRate:      0.15,
		TransientRate: 0.15,
		FlakyRate:     0.15,
		HangDuration:  10 * time.Second,
	}, quietTarget{})
	h := New(Options{
		Timeout:       25 * time.Millisecond,
		Retries:       2,
		BackoffBase:   time.Microsecond,
		DoubleCompile: true,
	})
	ledger := NewLedger()
	for unit := 0; unit < 80; unit++ {
		inv := h.Compile(context.Background(), chaos, nil, nil, Key{Unit: int64(unit)})
		ledger.Observe(chaos.Name(), inv)
	}
	inj := chaos.Injected()
	rec := ledger.PerCompiler["quiet"]
	if rec == nil {
		t.Fatal("ledger has no record for the chaos target")
	}
	if inj.Panics == 0 || inj.Hangs == 0 || inj.Transients == 0 || inj.Flips == 0 {
		t.Fatalf("expected every fault kind at 15%% over 80 compiles: %+v", inj)
	}
	if int64(rec.Crashes) != inj.Panics {
		t.Errorf("ledger crashes = %d, injected panics = %d", rec.Crashes, inj.Panics)
	}
	if int64(rec.Timeouts) != inj.Hangs {
		t.Errorf("ledger timeouts = %d, injected hangs = %d", rec.Timeouts, inj.Hangs)
	}
	if int64(rec.Retries) != inj.Transients {
		t.Errorf("ledger retries = %d, injected transients = %d", rec.Retries, inj.Transients)
	}
	if int64(rec.Flaky) != inj.Flips {
		t.Errorf("ledger flaky = %d, injected flips = %d", rec.Flaky, inj.Flips)
	}
	if rec.Compiles != 80 {
		t.Errorf("ledger compiles = %d, want 80", rec.Compiles)
	}
}

func TestChaosDrainUnitMatchesGlobalCounts(t *testing.T) {
	c := NewChaos(ChaosOptions{Seed: 5, PanicRate: 0.3, TransientRate: 0.3, HangRate: 0.3, HangDuration: time.Millisecond}, quietTarget{})
	units := []int64{3, 7, 11, 19, 23, 42, 57, 91}
	for _, u := range units {
		for input := 0; input < 4; input++ {
			runOne(c, Key{Unit: u, Input: input})
		}
	}
	var sum InjectionCounts
	for _, u := range units {
		d := c.DrainUnit(u)
		sum.Panics += d.Panics
		sum.Hangs += d.Hangs
		sum.Transients += d.Transients
		sum.Flips += d.Flips
	}
	if sum != c.Injected() {
		t.Fatalf("per-unit drains %+v do not sum to global %+v", sum, c.Injected())
	}
	if sum.Total() == 0 {
		t.Fatal("no faults injected at 30% rates")
	}
	// Draining is destructive: a second drain is empty.
	for _, u := range units {
		if d := c.DrainUnit(u); d.Total() != 0 {
			t.Fatalf("unit %d drained twice: %+v", u, d)
		}
	}
}

func TestLedgerAddInjectedAccumulates(t *testing.T) {
	l := NewLedger()
	l.AddInjected("groovyc", InjectionCounts{Panics: 1, Hangs: 2})
	l.AddInjected("groovyc", InjectionCounts{Transients: 3, Flips: 4})
	l.AddInjected("groovyc", InjectionCounts{}) // zero delta: no-op
	got := l.Injected["groovyc"]
	want := InjectionCounts{Panics: 1, Hangs: 2, Transients: 3, Flips: 4}
	if got != want {
		t.Fatalf("accumulated = %+v, want %+v", got, want)
	}
	// A zero delta must not materialize an entry (DeepEqual hygiene).
	l.AddInjected("javac", InjectionCounts{})
	if _, ok := l.Injected["javac"]; ok {
		t.Fatal("zero-count AddInjected created a ledger entry")
	}
}
