package harness

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/compilers"
	"repro/internal/coverage"
	"repro/internal/governor"
	"repro/internal/ir"
)

// spinTarget burns CPU forever, checking the governor the way the real
// compilers do: it charges fuel in a tight loop and converts a
// cancellation bailout into (nil, ctx.Err()). Before the governor, a
// target like this — a pathological program in a CPU-bound checker —
// ignored the watchdog's context and its sandbox goroutine leaked until
// the whole compile finished (if ever).
type spinTarget struct{}

func (spinTarget) Name() string { return "spinner" }

func (spinTarget) Compile(ctx context.Context, p *ir.Program, cov coverage.Recorder) (res *compilers.Result, err error) {
	gov := governor.FromContext(ctx)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := governor.AsBailout(r); !ok {
				panic(r)
			}
			res, err = nil, ctx.Err()
		}
	}()
	for {
		gov.Charge(1)
	}
}

// TestWatchdogGoroutineNoLeak forces a pile of watchdog timeouts against
// a CPU-bound, governor-polling target and asserts the goroutine count
// returns to baseline: every abandoned sandbox goroutine exits
// cooperatively at a fuel checkpoint instead of leaking.
func TestWatchdogGoroutineNoLeak(t *testing.T) {
	const n = 20
	h := New(Options{Timeout: 5 * time.Millisecond})
	baseline := runtime.NumGoroutine()
	for i := 0; i < n; i++ {
		inv := h.Compile(context.Background(), spinTarget{}, &ir.Program{}, nil, Key{Unit: int64(i)})
		if inv.Outcome != TimedOut {
			t.Fatalf("compile %d: outcome = %s, want timed-out", i, inv.Outcome)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= baseline+1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d after %d forced timeouts",
				baseline, runtime.NumGoroutine(), n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGovernorCooperativeTimeoutIsPrompt pins the latency half of the
// leak fix: the spinner unblocks within a poll interval of the watchdog
// firing, so the synthesized-timeout path is a fallback, not the norm.
func TestGovernorCooperativeTimeoutIsPrompt(t *testing.T) {
	h := New(Options{Timeout: 5 * time.Millisecond})
	t0 := time.Now()
	inv := h.Compile(context.Background(), spinTarget{}, &ir.Program{}, nil, Key{})
	if inv.Outcome != TimedOut {
		t.Fatalf("outcome = %s, want timed-out", inv.Outcome)
	}
	if d := time.Since(t0); d > 2*time.Second {
		t.Fatalf("cooperative timeout took %v", d)
	}
}

// TestFuelExhaustionIsCompleted pins the outcome taxonomy: a fuel
// bailout is a Completed invocation carrying a deterministic
// ResourceExhausted result — not a crash, not a timeout — and the spent
// counter is exposed on the invocation.
func TestFuelExhaustionIsCompleted(t *testing.T) {
	exhaust := func(ctx context.Context, p *ir.Program, cov coverage.Recorder) (*compilers.Result, error) {
		gov := governor.FromContext(ctx)
		res, err := func() (res *compilers.Result, err error) {
			defer func() {
				if r := recover(); r != nil {
					bail, ok := governor.AsBailout(r)
					if !ok {
						panic(r)
					}
					res = &compilers.Result{
						Status:      compilers.ResourceExhausted,
						Diagnostics: []string{bail.Error()},
					}
				}
			}()
			for {
				gov.Charge(1)
			}
		}()
		return res, err
	}
	h := New(Options{Fuel: 1000})
	inv := h.Compile(context.Background(), targetFunc{name: "exhauster", f: exhaust},
		&ir.Program{}, nil, Key{})
	if inv.Outcome != Completed {
		t.Fatalf("outcome = %s, want completed", inv.Outcome)
	}
	if inv.Result == nil || inv.Result.Status != compilers.ResourceExhausted {
		t.Fatalf("result = %+v, want ResourceExhausted", inv.Result)
	}
	if inv.FuelSpent != 1001 {
		t.Fatalf("FuelSpent = %d, want 1001 (limit+1, the tripping charge)", inv.FuelSpent)
	}
}

// targetFunc adapts a function to Target for tests.
type targetFunc struct {
	name string
	f    func(context.Context, *ir.Program, coverage.Recorder) (*compilers.Result, error)
}

func (t targetFunc) Name() string { return t.name }
func (t targetFunc) Compile(ctx context.Context, p *ir.Program, cov coverage.Recorder) (*compilers.Result, error) {
	return t.f(ctx, p, cov)
}
