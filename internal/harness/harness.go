// Package harness is the resilient execution layer between the
// pipeline's Execute stage and the compilers under test. A nine-month
// campaign survives only if misbehaving compilers — crashes, hangs,
// flaky verdicts — are treated as signal rather than fatal errors
// (Section 3.6), so every compile runs:
//
//   - sandboxed: a panic in the compiler or checker is recovered and
//     converted into a Crashed result carrying the captured stack;
//   - under a watchdog: a per-compile deadline turns a hang into a
//     TimedOut result, distinct from a crash;
//   - with retries: transient harness faults are retried with
//     seeded-jitter exponential backoff;
//   - behind a per-compiler circuit breaker: after N consecutive
//     harness-level failures a compiler is quarantined and later probed
//     half-open, so a wedged toolchain degrades the campaign instead of
//     stalling it;
//   - optionally twice: a double-compile detector flags nondeterministic
//     (flaky) verdicts.
//
// The chaos wrapper (chaos.go) injects these very faults at seeded,
// deterministic rates — the test rig proving the harness absorbs them.
package harness

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/compilers"
	"repro/internal/coverage"
	"repro/internal/governor"
	"repro/internal/ir"
	"repro/internal/metrics"
)

// Target is the harness's view of a compiler: a named thing that
// compiles one program, observing the context, and may fail at the
// harness level (as a subprocess-spawn failure would in a real
// campaign) by returning an error.
type Target interface {
	Name() string
	Compile(ctx context.Context, p *ir.Program, cov coverage.Recorder) (*compilers.Result, error)
}

// compilerTarget adapts a simulated compiler to Target.
type compilerTarget struct{ c *compilers.Compiler }

func (t compilerTarget) Name() string { return t.c.Name() }

func (t compilerTarget) Compile(ctx context.Context, p *ir.Program, cov coverage.Recorder) (*compilers.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// CompileContext picks up the resource budget the harness attached to
	// ctx; its governor polls ctx at fuel checkpoints, so a watchdog
	// cancellation turns into a cooperative exit instead of an abandoned
	// CPU-bound goroutine.
	return t.c.CompileContext(ctx, p, cov)
}

// WrapCompiler adapts a simulated compiler to the Target interface.
func WrapCompiler(c *compilers.Compiler) Target { return compilerTarget{c} }

// transientError marks a harness-level fault worth retrying.
type transientError struct{ err error }

func (e transientError) Error() string { return e.err.Error() }
func (e transientError) Unwrap() error { return e.err }

// Transient wraps an error to mark it retryable (a flaky filesystem, a
// failed process spawn). The harness retries transient faults with
// backoff; any other error ends the invocation immediately.
func Transient(err error) error { return transientError{err} }

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var t transientError
	return errors.As(err, &t)
}

// Key identifies one harness invocation. Fault injection and backoff
// jitter are keyed on it, never on global call order, so chaos
// decisions and retry schedules are deterministic for a fixed seed
// regardless of worker count or channel timing.
type Key struct {
	// Unit is the owning pipeline unit's seed.
	Unit int64
	// Input is the input's index within the unit (base program, mutants).
	Input int
	// Attempt counts retries of the same compile, from 0.
	Attempt int
	// Replica is 0 for the primary compile and 1 for the double-compile
	// nondeterminism probe.
	Replica int
}

func (k Key) hash() int64 {
	h := uint64(k.Unit)*0x9e3779b97f4a7c15 + uint64(k.Input)*0xbf58476d1ce4e5b9 +
		uint64(k.Attempt)*0x94d049bb133111eb + uint64(k.Replica)*0xd6e8feb86659fd93
	return int64(mix64(h))
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed mixer.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// hashString folds a name into the key stream so each compiler draws
// from its own dice.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

type keyCtx struct{}

// WithKey attaches the invocation key to the context; the chaos wrapper
// reads it back to make seeded fault decisions.
func WithKey(ctx context.Context, k Key) context.Context {
	return context.WithValue(ctx, keyCtx{}, k)
}

// KeyFrom extracts the invocation key the harness attached.
func KeyFrom(ctx context.Context) (Key, bool) {
	k, ok := ctx.Value(keyCtx{}).(Key)
	return k, ok
}

// Outcome classifies what the harness observed for one invocation.
type Outcome int

const (
	// Completed: the compiler returned a result (which may itself report
	// a compiler bug — that is the campaign's signal, not a harness
	// failure).
	Completed Outcome = iota
	// Crashed: the compiler (or checker) panicked; the sandbox captured
	// the stack and synthesized a crashed Result.
	Crashed
	// TimedOut: the watchdog deadline expired; a TimedOut Result was
	// synthesized (a hang is a reportable bug, distinct from a crash).
	TimedOut
	// Errored: a harness-level error persisted after every retry (or was
	// not transient); no result is available.
	Errored
	// Quarantined: the compiler's circuit breaker was open, so the
	// compile was skipped and the gap recorded.
	Quarantined
	// Aborted: the campaign's own context was cancelled mid-compile.
	Aborted
)

func (o Outcome) String() string {
	switch o {
	case Completed:
		return "completed"
	case Crashed:
		return "crashed"
	case TimedOut:
		return "timed-out"
	case Errored:
		return "errored"
	case Quarantined:
		return "quarantined"
	default:
		return "aborted"
	}
}

// Invocation is the harness's record of one compile: the result (nil
// for Errored/Quarantined/Aborted), how it ended, and what resilience
// machinery fired along the way.
type Invocation struct {
	Outcome Outcome
	// Result is non-nil for Completed, Crashed, and TimedOut outcomes;
	// crash and timeout results are synthesized so the oracle can judge
	// them like any other compilation.
	Result *compilers.Result
	// Attempts is the number of compile attempts performed (1 + retries).
	Attempts int
	// Flaky reports that the double-compile probe saw a different status
	// than the primary compile — a nondeterministic verdict.
	Flaky bool
	// Err holds the final harness-level error message, if any.
	Err string
	// Stack is the captured stack trace when Outcome is Crashed.
	Stack string
	// FuelSpent is the governor's step count for the final attempt.
	// Observability only: it is exported to metrics but never serialized
	// into journals or reports, because unguarded budgets count memo-cache
	// hits and the number is therefore machine-history-dependent (only a
	// guarded budget's count is deterministic). Zero when the invocation
	// never reached the compiler (quarantined/aborted) or when the
	// watchdog synthesized the result.
	FuelSpent int64

	// transient marks an Errored ending as retryable.
	transient bool
}

// Options configures a Harness. The zero value is the minimal safe
// harness: sandboxed invocation with no watchdog, retries, breaker, or
// double-compile probe.
type Options struct {
	// Timeout is the per-compile watchdog budget; 0 disables the
	// watchdog.
	Timeout time.Duration
	// Retries is the maximum number of retry attempts for transient
	// faults.
	Retries int
	// BackoffBase is the base delay of the exponential backoff schedule
	// (attempt i waits BackoffBase<<i plus seeded jitter of up to the
	// same amount). 0 means 10ms.
	BackoffBase time.Duration
	// Seed drives the backoff jitter deterministically per invocation.
	Seed int64
	// DoubleCompile enables the nondeterminism detector: every completed
	// compile runs a second time and verdict flips are flagged Flaky.
	DoubleCompile bool
	// BreakerThreshold is the number of consecutive harness-level
	// failures (crash, timeout, errored) that opens a compiler's circuit
	// breaker; 0 disables breakers.
	BreakerThreshold int
	// BreakerCooldown is the number of quarantined compiles an open
	// breaker skips before probing half-open. 0 means 2×threshold.
	BreakerCooldown int
	// Fuel is the per-compile deterministic step budget enforced by the
	// resource governor (internal/governor); 0 disables the fuel limit.
	// Unlike Timeout, exhaustion is a pure function of the program: the
	// same program bails at the same step on every machine, yielding a
	// journaled ResourceExhausted result instead of a wall-clock hang.
	// Fuel is verdict-affecting and therefore part of the campaign
	// fingerprint.
	Fuel int64
	// MaxDepth caps the governor's recursion depth for type-relation and
	// substitution walks. 0 with Fuel > 0 applies governor.DefaultMaxDepth;
	// 0 with Fuel == 0 disables the guard.
	MaxDepth int
	// Metrics, when set, exports per-compiler wall-time histograms
	// (harness.compile_wall_ns.<compiler>) and breaker-state gauges
	// (harness.breaker.<compiler>). Observation only — the compile path
	// is identical with or without it.
	Metrics *metrics.Registry
	// Trace, when set, receives retry, fault, flaky, and breaker
	// transition events. Observation only.
	Trace *metrics.Trace
}

// Harness executes compiles resiliently. Safe for concurrent use.
type Harness struct {
	opts Options

	mu       sync.Mutex
	breakers map[string]*Breaker
	wall     map[string]*metrics.Histogram
	fuel     map[string]*metrics.Histogram
}

// New returns a harness with the given options.
func New(opts Options) *Harness {
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 10 * time.Millisecond
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 2 * opts.BreakerThreshold
	}
	return &Harness{
		opts:     opts,
		breakers: map[string]*Breaker{},
		wall:     map[string]*metrics.Histogram{},
		fuel:     map[string]*metrics.Histogram{},
	}
}

// Breaker returns the circuit breaker guarding the named compiler,
// creating it on first use.
func (h *Harness) Breaker(name string) *Breaker {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.breakers[name]
	if b == nil {
		b = NewBreaker(h.opts.BreakerThreshold, h.opts.BreakerCooldown)
		h.breakers[name] = b
		if h.opts.Metrics != nil || h.opts.Trace != nil {
			gauge := h.opts.Metrics.Gauge("harness.breaker." + name)
			gauge.Set(int64(b.State()))
			trace := h.opts.Trace
			b.OnTransition(func(from, to BreakerState) {
				gauge.Set(int64(to))
				trace.Emit(metrics.Event{
					Kind:     "breaker",
					Compiler: name,
					Detail:   from.String() + "->" + to.String(),
				})
			})
		}
	}
	return b
}

// wallHistogram returns the per-compiler compile wall-time histogram,
// creating it on first use.
func (h *Harness) wallHistogram(name string) *metrics.Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	hist := h.wall[name]
	if hist == nil {
		hist = h.opts.Metrics.Histogram("harness.compile_wall_ns." + name)
		h.wall[name] = hist
	}
	return hist
}

// fuelHistogram returns the per-compiler governor step-count histogram,
// creating it on first use.
func (h *Harness) fuelHistogram(name string) *metrics.Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	hist := h.fuel[name]
	if hist == nil {
		hist = h.opts.Metrics.Histogram("harness.fuel_spent." + name)
		h.fuel[name] = hist
	}
	return hist
}

// ExportBreakers snapshots every circuit breaker, keyed by compiler
// name — part of a campaign checkpoint.
func (h *Harness) ExportBreakers() map[string]BreakerSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]BreakerSnapshot, len(h.breakers))
	for name, b := range h.breakers {
		out[name] = b.Export()
	}
	return out
}

// ImportBreakers restores breaker positions from a checkpoint, creating
// breakers (with this harness's thresholds) as needed.
func (h *Harness) ImportBreakers(states map[string]BreakerSnapshot) {
	for name, s := range states {
		h.Breaker(name).Import(s)
	}
}

// Compile runs one compile through the full resilience stack: breaker
// admission, sandboxed invocation under the watchdog, transient-fault
// retries with seeded-jitter backoff, and the optional double-compile
// nondeterminism probe.
func (h *Harness) Compile(ctx context.Context, t Target, p *ir.Program, cov coverage.Recorder, key Key) Invocation {
	br := h.Breaker(t.Name())
	if !br.Allow() {
		h.opts.Trace.Emit(metrics.Event{
			Kind: "fault", Unit: key.Unit, Compiler: t.Name(), Detail: Quarantined.String(),
		})
		return Invocation{Outcome: Quarantined, Err: "circuit breaker open"}
	}

	t0 := time.Now()
	inv := h.compileWithRetry(ctx, t, p, cov, key)
	h.wallHistogram(t.Name()).ObserveDuration(time.Since(t0))
	if inv.Outcome == Aborted {
		// The campaign is shutting down; tell the breaker nothing.
		return inv
	}
	br.Record(inv.Outcome == Completed)
	if inv.Outcome != Completed {
		h.opts.Trace.Emit(metrics.Event{
			Kind: "fault", Unit: key.Unit, Compiler: t.Name(), Detail: inv.Outcome.String(),
		})
	}

	if h.opts.DoubleCompile && inv.Outcome == Completed {
		key.Replica = 1
		key.Attempt = 0
		// The probe gets no coverage recorder: it must not double-count
		// probe sites.
		probe := h.invokeOnce(ctx, t, p, nil, key)
		if probe.Outcome != Aborted &&
			(probe.Outcome != Completed || probe.Result.Status != inv.Result.Status) {
			inv.Flaky = true
			h.opts.Trace.Emit(metrics.Event{
				Kind: "flaky", Unit: key.Unit, Compiler: t.Name(), Detail: "double-compile status flip",
			})
		}
	}
	return inv
}

// compileWithRetry runs the attempt loop: transient errors are retried
// up to Retries times with exponential backoff and seeded jitter; any
// other ending is final.
func (h *Harness) compileWithRetry(ctx context.Context, t Target, p *ir.Program, cov coverage.Recorder, key Key) Invocation {
	var inv Invocation
	for attempt := 0; ; attempt++ {
		key.Attempt = attempt
		inv = h.invokeOnce(ctx, t, p, cov, key)
		inv.Attempts = attempt + 1
		if inv.Outcome != Errored || !inv.transient || attempt >= h.opts.Retries {
			return inv
		}
		h.opts.Trace.Emit(metrics.Event{
			Kind: "retry", Unit: key.Unit, Compiler: t.Name(),
			Detail: fmt.Sprintf("attempt %d: %s", attempt, inv.Err),
		})
		if !h.backoff(ctx, attempt, key) {
			inv.Outcome = Aborted
			inv.Err = ctx.Err().Error()
			return inv
		}
	}
}

// backoff sleeps for the attempt's backoff budget; it returns false if
// the context was cancelled first.
func (h *Harness) backoff(ctx context.Context, attempt int, key Key) bool {
	d := h.backoffDelay(attempt, key)
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// backoffDelay computes attempt i's delay: BackoffBase<<i plus jitter
// in [0, BackoffBase), drawn from a generator seeded by the invocation
// key — the schedule is reproducible, not synchronized across workers.
func (h *Harness) backoffDelay(attempt int, key Key) time.Duration {
	base := h.opts.BackoffBase << uint(attempt)
	rng := rand.New(rand.NewSource(int64(mix64(uint64(h.opts.Seed) ^ uint64(key.hash())))))
	return base + time.Duration(rng.Int63n(int64(h.opts.BackoffBase)))
}

// oneResult carries a sandboxed compile's ending out of its goroutine.
type oneResult struct {
	res   *compilers.Result
	err   error
	stack string
	panic string
}

// invokeOnce performs a single sandboxed compile under the watchdog and
// the resource governor.
func (h *Harness) invokeOnce(ctx context.Context, t Target, p *ir.Program, cov coverage.Recorder, key Key) Invocation {
	cctx := WithKey(ctx, key)
	var cancel context.CancelFunc
	if h.opts.Timeout > 0 {
		cctx, cancel = context.WithTimeout(cctx, h.opts.Timeout)
		defer cancel()
	}

	// A fresh budget per attempt, even with Fuel == 0: an unguarded
	// budget never bails on steps but still polls cctx at checkpoints, so
	// a watchdog firing (or campaign shutdown) turns a CPU-bound check
	// into a cooperative exit instead of a leaked goroutine.
	gov := governor.New(h.opts.Fuel, h.opts.MaxDepth)
	gov.Bind(cctx)
	cctx = governor.WithBudget(cctx, gov)

	if h.opts.Timeout <= 0 {
		// No watchdog: sandbox inline, sparing the goroutine handoff on
		// the default hot path.
		out := sandboxedCompile(cctx, t, p, cov)
		return h.finish(ctx, t, out, gov, key)
	}

	ch := make(chan oneResult, 1)
	go func() { ch <- sandboxedCompile(cctx, t, p, cov) }()
	select {
	case out := <-ch:
		return h.finish(ctx, t, out, gov, key)
	case <-cctx.Done():
		// The compile goroutine is abandoned; a context-aware target
		// (including the chaos wrapper's hangs) unblocks promptly, and a
		// CPU-bound check hits a governor poll point, finishes into the
		// buffered channel, and is collected. gov must not be read here —
		// the goroutine may still be charging it.
		if ctx.Err() != nil {
			return Invocation{Outcome: Aborted, Err: ctx.Err().Error()}
		}
		return Invocation{
			Outcome: TimedOut,
			Result: &compilers.Result{
				Status:      compilers.TimedOut,
				Diagnostics: []string{fmt.Sprintf("compiler timed out after %v", h.opts.Timeout)},
			},
			Err: fmt.Sprintf("watchdog: compile exceeded %v", h.opts.Timeout),
		}
	}
}

// finish classifies a compile that actually returned (inline or through
// the watchdog channel — the happens-before needed to read the budget)
// and attaches governor observability.
func (h *Harness) finish(parent context.Context, t Target, out oneResult, gov *governor.Budget, key Key) Invocation {
	inv := h.classify(parent, out)
	inv.FuelSpent = gov.Spent()
	if inv.Result != nil && inv.Result.Status == compilers.ResourceExhausted {
		h.opts.Metrics.Counter("harness.fuel_exhausted." + t.Name()).Inc()
		detail := "budget exhausted"
		if len(inv.Result.Diagnostics) > 0 {
			detail = inv.Result.Diagnostics[0]
		}
		h.opts.Trace.Emit(metrics.Event{
			Kind: "fuel", Unit: key.Unit, Compiler: t.Name(), Detail: detail,
		})
	}
	if h.opts.Metrics != nil {
		h.fuelHistogram(t.Name()).Observe(inv.FuelSpent)
	}
	return inv
}

// sandboxedCompile invokes the target under recover, converting a panic
// into a captured ending instead of killing the campaign.
func sandboxedCompile(ctx context.Context, t Target, p *ir.Program, cov coverage.Recorder) (out oneResult) {
	defer func() {
		if r := recover(); r != nil {
			out = oneResult{panic: fmt.Sprint(r), stack: string(debug.Stack())}
		}
	}()
	res, err := t.Compile(ctx, p, cov)
	return oneResult{res: res, err: err}
}

// classify turns a sandboxed ending into an Invocation. parent is the
// campaign's context, consulted to tell cancellation from faults.
func (h *Harness) classify(parent context.Context, out oneResult) Invocation {
	switch {
	case out.panic != "":
		return Invocation{
			Outcome: Crashed,
			Result: &compilers.Result{
				Status:      compilers.Crashed,
				Diagnostics: []string{"internal error: panic: " + out.panic},
			},
			Err:   "panic: " + out.panic,
			Stack: out.stack,
		}
	case out.err != nil:
		if parent.Err() != nil {
			return Invocation{Outcome: Aborted, Err: parent.Err().Error()}
		}
		if errors.Is(out.err, context.DeadlineExceeded) {
			return Invocation{
				Outcome: TimedOut,
				Result: &compilers.Result{
					Status:      compilers.TimedOut,
					Diagnostics: []string{fmt.Sprintf("compiler timed out after %v", h.opts.Timeout)},
				},
				Err: out.err.Error(),
			}
		}
		return Invocation{Outcome: Errored, Err: out.err.Error(), transient: IsTransient(out.err)}
	default:
		return Invocation{Outcome: Completed, Result: out.res}
	}
}
