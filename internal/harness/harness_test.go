package harness

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/compilers"
	"repro/internal/coverage"
	"repro/internal/ir"
)

// fakeTarget scripts a Target's behaviour per call.
type fakeTarget struct {
	name  string
	calls atomic.Int64
	fn    func(ctx context.Context, call int64) (*compilers.Result, error)
}

func (t *fakeTarget) Name() string {
	if t.name == "" {
		return "fake"
	}
	return t.name
}

func (t *fakeTarget) Compile(ctx context.Context, _ *ir.Program, _ coverage.Recorder) (*compilers.Result, error) {
	return t.fn(ctx, t.calls.Add(1))
}

func okResult() (*compilers.Result, error) {
	return &compilers.Result{Status: compilers.OK}, nil
}

func TestSandboxConvertsPanicToCrash(t *testing.T) {
	target := &fakeTarget{fn: func(context.Context, int64) (*compilers.Result, error) {
		panic("checker exploded")
	}}
	h := New(Options{})
	inv := h.Compile(context.Background(), target, nil, nil, Key{})
	if inv.Outcome != Crashed {
		t.Fatalf("outcome = %s, want crashed", inv.Outcome)
	}
	if inv.Result == nil || inv.Result.Status != compilers.Crashed {
		t.Fatalf("crash result not synthesized: %+v", inv.Result)
	}
	if !strings.Contains(inv.Result.Diagnostics[0], "internal error") ||
		!strings.Contains(inv.Result.Diagnostics[0], "checker exploded") {
		t.Errorf("diagnostics should carry the panic: %v", inv.Result.Diagnostics)
	}
	if !strings.Contains(inv.Stack, "harness") {
		t.Errorf("captured stack missing: %q", inv.Stack)
	}
}

func TestSandboxConvertsPanicUnderWatchdog(t *testing.T) {
	// The goroutine-based (watchdog) path must recover panics too: an
	// unrecovered panic in a spawned goroutine would kill the process.
	target := &fakeTarget{fn: func(context.Context, int64) (*compilers.Result, error) {
		panic("boom in goroutine")
	}}
	h := New(Options{Timeout: time.Second})
	inv := h.Compile(context.Background(), target, nil, nil, Key{})
	if inv.Outcome != Crashed {
		t.Fatalf("outcome = %s, want crashed", inv.Outcome)
	}
}

func TestWatchdogTimesOutHangs(t *testing.T) {
	target := &fakeTarget{fn: func(ctx context.Context, _ int64) (*compilers.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	h := New(Options{Timeout: 20 * time.Millisecond})
	start := time.Now()
	inv := h.Compile(context.Background(), target, nil, nil, Key{})
	if inv.Outcome != TimedOut {
		t.Fatalf("outcome = %s, want timed-out", inv.Outcome)
	}
	if inv.Result == nil || inv.Result.Status != compilers.TimedOut {
		t.Fatalf("timeout result not synthesized: %+v", inv.Result)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("watchdog took %v to fire", elapsed)
	}
}

func TestAbortDistinctFromTimeout(t *testing.T) {
	// Parent-context cancellation must not masquerade as a compiler
	// hang: the campaign is shutting down, the compiler is innocent.
	ctx, cancel := context.WithCancel(context.Background())
	target := &fakeTarget{fn: func(c context.Context, _ int64) (*compilers.Result, error) {
		cancel()
		<-c.Done()
		return nil, c.Err()
	}}
	h := New(Options{Timeout: 10 * time.Second})
	inv := h.Compile(ctx, target, nil, nil, Key{})
	if inv.Outcome != Aborted {
		t.Fatalf("outcome = %s, want aborted", inv.Outcome)
	}
	if inv.Result != nil {
		t.Errorf("aborted invocation should carry no result")
	}
}

func TestRetryAbsorbsTransientFaults(t *testing.T) {
	target := &fakeTarget{fn: func(_ context.Context, call int64) (*compilers.Result, error) {
		if call <= 2 {
			return nil, Transient(errors.New("spawn failed"))
		}
		return okResult()
	}}
	h := New(Options{Retries: 3, BackoffBase: time.Microsecond})
	inv := h.Compile(context.Background(), target, nil, nil, Key{})
	if inv.Outcome != Completed {
		t.Fatalf("outcome = %s, want completed", inv.Outcome)
	}
	if inv.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", inv.Attempts)
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	target := &fakeTarget{fn: func(context.Context, int64) (*compilers.Result, error) {
		return nil, Transient(errors.New("still broken"))
	}}
	h := New(Options{Retries: 2, BackoffBase: time.Microsecond})
	inv := h.Compile(context.Background(), target, nil, nil, Key{})
	if inv.Outcome != Errored {
		t.Fatalf("outcome = %s, want errored", inv.Outcome)
	}
	if inv.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", inv.Attempts)
	}
	if got := target.calls.Load(); got != 3 {
		t.Errorf("target called %d times, want 3", got)
	}
}

func TestNonTransientErrorNotRetried(t *testing.T) {
	target := &fakeTarget{fn: func(context.Context, int64) (*compilers.Result, error) {
		return nil, errors.New("configuration error")
	}}
	h := New(Options{Retries: 5, BackoffBase: time.Microsecond})
	inv := h.Compile(context.Background(), target, nil, nil, Key{})
	if inv.Outcome != Errored {
		t.Fatalf("outcome = %s, want errored", inv.Outcome)
	}
	if inv.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (no retry for permanent faults)", inv.Attempts)
	}
}

func TestDoubleCompileFlagsFlakyVerdicts(t *testing.T) {
	// The target accepts on the primary compile and rejects on the
	// probe replica: a nondeterministic compiler.
	target := &fakeTarget{fn: func(ctx context.Context, _ int64) (*compilers.Result, error) {
		key, _ := KeyFrom(ctx)
		if key.Replica == 1 {
			return &compilers.Result{Status: compilers.Rejected}, nil
		}
		return okResult()
	}}
	h := New(Options{DoubleCompile: true})
	inv := h.Compile(context.Background(), target, nil, nil, Key{})
	if inv.Outcome != Completed {
		t.Fatalf("outcome = %s, want completed", inv.Outcome)
	}
	if !inv.Flaky {
		t.Error("verdict flip not flagged flaky")
	}
	if inv.Result.Status != compilers.OK {
		t.Errorf("recorded result must be the primary's, got %s", inv.Result.Status)
	}

	steady := &fakeTarget{fn: func(context.Context, int64) (*compilers.Result, error) {
		return okResult()
	}}
	if inv := h.Compile(context.Background(), steady, nil, nil, Key{}); inv.Flaky {
		t.Error("deterministic target flagged flaky")
	}
}

func TestBreakerQuarantinesAfterConsecutiveFailures(t *testing.T) {
	target := &fakeTarget{fn: func(context.Context, int64) (*compilers.Result, error) {
		panic("always down")
	}}
	h := New(Options{BreakerThreshold: 3, BreakerCooldown: 2})
	var outcomes []Outcome
	for i := 0; i < 5; i++ {
		inv := h.Compile(context.Background(), target, nil, nil, Key{Unit: int64(i)})
		outcomes = append(outcomes, inv.Outcome)
	}
	want := []Outcome{Crashed, Crashed, Crashed, Quarantined, Quarantined}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Fatalf("compile %d: outcome = %s, want %s (all: %v)", i, outcomes[i], want[i], outcomes)
		}
	}
	// Cooldown served: the next compile is the half-open probe; it
	// crashes, re-opening the breaker.
	if inv := h.Compile(context.Background(), target, nil, nil, Key{Unit: 5}); inv.Outcome != Crashed {
		t.Fatalf("probe outcome = %s, want crashed", inv.Outcome)
	}
	if got := h.Breaker(target.Name()).State(); got != BreakerOpen {
		t.Fatalf("breaker after failed probe = %s, want open", got)
	}
}

func TestBreakerRecoversThroughHalfOpenProbe(t *testing.T) {
	target := &fakeTarget{fn: func(_ context.Context, call int64) (*compilers.Result, error) {
		if call <= 2 {
			panic("temporarily down")
		}
		return okResult()
	}}
	h := New(Options{BreakerThreshold: 2, BreakerCooldown: 1})
	for i := 0; i < 2; i++ {
		h.Compile(context.Background(), target, nil, nil, Key{Unit: int64(i)})
	}
	if got := h.Breaker(target.Name()).State(); got != BreakerOpen {
		t.Fatalf("breaker = %s, want open after threshold", got)
	}
	// One quarantined compile serves the cooldown, the next probes
	// half-open, succeeds, and closes the breaker.
	if inv := h.Compile(context.Background(), target, nil, nil, Key{Unit: 2}); inv.Outcome != Quarantined {
		t.Fatalf("cooldown compile = %s, want quarantined", inv.Outcome)
	}
	if inv := h.Compile(context.Background(), target, nil, nil, Key{Unit: 3}); inv.Outcome != Completed {
		t.Fatalf("probe = %s, want completed", inv.Outcome)
	}
	if got := h.Breaker(target.Name()).State(); got != BreakerClosed {
		t.Fatalf("breaker = %s, want closed after successful probe", got)
	}
}

func TestBackoffScheduleDeterministicPerKey(t *testing.T) {
	h := New(Options{Seed: 42, BackoffBase: time.Millisecond})
	key := Key{Unit: 7, Input: 2}
	for attempt := 0; attempt < 3; attempt++ {
		d1 := h.backoffDelay(attempt, key)
		d2 := h.backoffDelay(attempt, key)
		if d1 != d2 {
			t.Fatalf("attempt %d: delays differ (%v vs %v)", attempt, d1, d2)
		}
		base := h.opts.BackoffBase << uint(attempt)
		if d1 < base || d1 >= 2*base+h.opts.BackoffBase {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", attempt, d1, base, 2*base)
		}
	}
	// Different keys draw different jitter (thundering-herd avoidance).
	other := h.backoffDelay(0, Key{Unit: 8, Input: 2})
	if mine := h.backoffDelay(0, key); mine == other {
		t.Logf("note: jitter collision between distinct keys (legal, just unlikely): %v", mine)
	}
}

func TestWrapCompilerObservesContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	target := WrapCompiler(compilers.Groovyc())
	if _, err := target.Compile(ctx, nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled compile returned %v, want context.Canceled", err)
	}
}
