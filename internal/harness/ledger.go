package harness

import (
	"fmt"
	"sort"
	"strings"
)

// FaultRecord tallies one compiler's harness-level events over a
// campaign.
type FaultRecord struct {
	// Compiles counts primary invocations that reached the harness
	// (double-compile probes excluded).
	Compiles int
	// Crashes counts sandbox-captured panics.
	Crashes int
	// Timeouts counts watchdog expirations.
	Timeouts int
	// Retries counts retry attempts performed after transient faults.
	Retries int
	// Errored counts invocations whose harness-level error persisted
	// after every retry; the compile produced no result (a gap).
	Errored int
	// Quarantined counts compiles skipped by an open circuit breaker
	// (also gaps).
	Quarantined int
	// Flaky counts invocations whose double-compile probe disagreed with
	// the primary verdict.
	Flaky int
}

// Gaps returns the number of compiles that produced no judgeable
// result: the campaign degraded gracefully instead of stalling.
func (r *FaultRecord) Gaps() int { return r.Errored + r.Quarantined }

func (r *FaultRecord) add(o *FaultRecord) {
	r.Compiles += o.Compiles
	r.Crashes += o.Crashes
	r.Timeouts += o.Timeouts
	r.Retries += o.Retries
	r.Errored += o.Errored
	r.Quarantined += o.Quarantined
	r.Flaky += o.Flaky
}

// Ledger is a campaign's fault account: per-compiler harness events,
// plus (under chaos testing) the injected-fault ground truth to audit
// them against. It is populated by the aggregator in unit order, so for
// a fixed campaign its contents are deterministic across worker counts.
type Ledger struct {
	// PerCompiler maps compiler name to its fault record.
	PerCompiler map[string]*FaultRecord
	// Injected maps compiler name to the faults its chaos wrapper
	// injected; empty when chaos is off.
	Injected map[string]InjectionCounts
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{PerCompiler: map[string]*FaultRecord{}, Injected: map[string]InjectionCounts{}}
}

// record returns the (created-on-demand) record for a compiler.
func (l *Ledger) record(compiler string) *FaultRecord {
	r := l.PerCompiler[compiler]
	if r == nil {
		r = &FaultRecord{}
		l.PerCompiler[compiler] = r
	}
	return r
}

// Observe folds one invocation into the ledger.
func (l *Ledger) Observe(compiler string, inv Invocation) {
	r := l.record(compiler)
	r.Compiles++
	r.Retries += inv.Attempts - 1
	if inv.Flaky {
		r.Flaky++
	}
	switch inv.Outcome {
	case Crashed:
		r.Crashes++
	case TimedOut:
		r.Timeouts++
	case Errored:
		r.Errored++
	case Quarantined:
		r.Quarantined++
	}
}

// AddInjected folds one unit's injected-fault deltas into the audit
// count. The campaign aggregator calls it per unit, in Seq order, so
// the injected ground truth is deterministic across worker counts and
// — unlike a global end-of-run read — journals and restores exactly.
func (l *Ledger) AddInjected(compiler string, counts InjectionCounts) {
	if counts.Total() == 0 {
		return
	}
	c := l.Injected[compiler]
	c.Panics += counts.Panics
	c.Hangs += counts.Hangs
	c.Transients += counts.Transients
	c.Flips += counts.Flips
	l.Injected[compiler] = c
}

// Clone deep-copies the ledger, so a status snapshot can outlive the
// fold that produced it. A nil ledger clones to nil.
func (l *Ledger) Clone() *Ledger {
	if l == nil {
		return nil
	}
	c := NewLedger()
	for name, r := range l.PerCompiler {
		cp := *r
		c.PerCompiler[name] = &cp
	}
	for name, inj := range l.Injected {
		c.Injected[name] = inj
	}
	return c
}

// Total sums every compiler's record.
func (l *Ledger) Total() FaultRecord {
	var total FaultRecord
	for _, r := range l.PerCompiler {
		total.add(r)
	}
	return total
}

// Faults reports whether the ledger recorded any harness-level event
// worth showing (crash, timeout, retry, gap, or flaky verdict).
func (l *Ledger) Faults() bool {
	t := l.Total()
	return t.Crashes+t.Timeouts+t.Retries+t.Errored+t.Quarantined+t.Flaky > 0
}

// String renders the ledger, one compiler per line, with injected
// ground truth when chaos was on.
func (l *Ledger) String() string {
	var names []string
	for name := range l.PerCompiler {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("fault ledger:\n")
	for _, name := range names {
		r := l.PerCompiler[name]
		fmt.Fprintf(&b, "  %-8s %5d compiles  %3d crashed  %3d timed out  %3d retries  %3d flaky  %3d gaps (%d errored, %d quarantined)\n",
			name, r.Compiles, r.Crashes, r.Timeouts, r.Retries, r.Flaky, r.Gaps(), r.Errored, r.Quarantined)
		if inj, ok := l.Injected[name]; ok && inj.Total() > 0 {
			fmt.Fprintf(&b, "  %-8s injected: %d panics, %d hangs, %d transients, %d verdict flips\n",
				"", inj.Panics, inj.Hangs, inj.Transients, inj.Flips)
		}
	}
	return b.String()
}
