package ir

import "repro/internal/types"

// CloneProgram returns a deep copy of p. Types are shared (they are
// immutable once built), AST nodes are fresh, so mutations may rewrite the
// clone freely without disturbing the original — both TEM and TOM clone
// their input before mutating (Section 3.4).
func CloneProgram(p *Program) *Program {
	out := &Program{Package: p.Package, Decls: make([]Decl, len(p.Decls))}
	for i, d := range p.Decls {
		out.Decls[i] = CloneDecl(d)
	}
	return out
}

// CloneDecl deep-copies a declaration.
func CloneDecl(d Decl) Decl {
	switch t := d.(type) {
	case *ClassDecl:
		c := &ClassDecl{
			Name:       t.Name,
			TypeParams: t.TypeParams,
			Kind:       t.Kind,
			Open:       t.Open,
		}
		if t.Super != nil {
			c.Super = &SuperRef{Type: t.Super.Type, Args: cloneExprs(t.Super.Args)}
		}
		for _, f := range t.Fields {
			c.Fields = append(c.Fields, &FieldDecl{Name: f.Name, Type: f.Type, Mutable: f.Mutable})
		}
		for _, m := range t.Methods {
			c.Methods = append(c.Methods, CloneDecl(m).(*FuncDecl))
		}
		return c
	case *FuncDecl:
		f := &FuncDecl{
			Name:       t.Name,
			TypeParams: t.TypeParams,
			Ret:        t.Ret,
			Override:   t.Override,
		}
		for _, p := range t.Params {
			f.Params = append(f.Params, &ParamDecl{Name: p.Name, Type: p.Type})
		}
		if t.Body != nil {
			f.Body = CloneExpr(t.Body)
		}
		return f
	case *FieldDecl:
		return &FieldDecl{Name: t.Name, Type: t.Type, Mutable: t.Mutable}
	case *ParamDecl:
		return &ParamDecl{Name: t.Name, Type: t.Type}
	case *VarDecl:
		v := &VarDecl{Name: t.Name, DeclType: t.DeclType, Mutable: t.Mutable}
		if t.Init != nil {
			v.Init = CloneExpr(t.Init)
		}
		return v
	}
	return d
}

func cloneExprs(es []Expr) []Expr {
	if es == nil {
		return nil
	}
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = CloneExpr(e)
	}
	return out
}

func cloneTypes(ts []types.Type) []types.Type {
	if ts == nil {
		return nil
	}
	out := make([]types.Type, len(ts))
	copy(out, ts)
	return out
}

// CloneExpr deep-copies an expression.
func CloneExpr(e Expr) Expr {
	switch t := e.(type) {
	case *Const:
		return &Const{Type: t.Type}
	case *VarRef:
		return &VarRef{Name: t.Name}
	case *FieldAccess:
		return &FieldAccess{Recv: CloneExpr(t.Recv), Field: t.Field}
	case *BinaryOp:
		return &BinaryOp{Op: t.Op, Left: CloneExpr(t.Left), Right: CloneExpr(t.Right)}
	case *Block:
		b := &Block{}
		for _, s := range t.Stmts {
			switch st := s.(type) {
			case *VarDecl:
				b.Stmts = append(b.Stmts, CloneDecl(st))
			case *Assign:
				b.Stmts = append(b.Stmts, CloneExpr(st))
			case Expr:
				b.Stmts = append(b.Stmts, CloneExpr(st))
			}
		}
		if t.Value != nil {
			b.Value = CloneExpr(t.Value)
		}
		return b
	case *Call:
		c := &Call{Name: t.Name, TypeArgs: cloneTypes(t.TypeArgs), Args: cloneExprs(t.Args)}
		if t.Recv != nil {
			c.Recv = CloneExpr(t.Recv)
		}
		return c
	case *New:
		return &New{Class: t.Class, TypeArgs: cloneTypes(t.TypeArgs), Args: cloneExprs(t.Args)}
	case *Assign:
		return &Assign{Target: CloneExpr(t.Target), Value: CloneExpr(t.Value)}
	case *If:
		return &If{Cond: CloneExpr(t.Cond), Then: CloneExpr(t.Then), Else: CloneExpr(t.Else)}
	case *MethodRef:
		return &MethodRef{Recv: CloneExpr(t.Recv), Method: t.Method}
	case *Lambda:
		l := &Lambda{Body: CloneExpr(t.Body)}
		for _, p := range t.Params {
			l.Params = append(l.Params, &ParamDecl{Name: p.Name, Type: p.Type})
		}
		return l
	case *Cast:
		return &Cast{Expr: CloneExpr(t.Expr), Target: t.Target}
	case *Is:
		return &Is{Expr: CloneExpr(t.Expr), Target: t.Target}
	}
	return e
}
