package ir

import (
	"strings"
	"testing"

	"repro/internal/types"
)

// figure6Program builds the paper's Figure 6 program:
//
//	open class A<T>
//	class B<T>(val f: A<T>) : A<T>()
//	fun m(): A<String> { return B<String>(A<String>()) }
func figure6Program() (*Program, *types.Builtins) {
	b := types.NewBuiltins()
	aT := types.NewParameter("A", "T")
	classA := &ClassDecl{Name: "A", TypeParams: []*types.Parameter{aT}, Open: true}
	ctorA := classA.Type().(*types.Constructor)

	bT := types.NewParameter("B", "T")
	classB := &ClassDecl{
		Name:       "B",
		TypeParams: []*types.Parameter{bT},
		Super:      &SuperRef{Type: ctorA.Apply(bT)},
		Fields:     []*FieldDecl{{Name: "f", Type: ctorA.Apply(bT)}},
	}
	ctorB := classB.Type().(*types.Constructor)

	funcM := &FuncDecl{
		Name: "m",
		Ret:  ctorA.Apply(b.String),
		Body: &New{
			Class:    ctorB,
			TypeArgs: []types.Type{b.String},
			Args: []Expr{&New{
				Class:    ctorA,
				TypeArgs: []types.Type{b.String},
			}},
		},
	}
	return &Program{Package: "fig6", Decls: []Decl{classA, classB, funcM}}, b
}

func TestProgramAccessors(t *testing.T) {
	p, _ := figure6Program()
	if len(p.Classes()) != 2 {
		t.Fatalf("Classes() = %d, want 2", len(p.Classes()))
	}
	if len(p.Functions()) != 1 {
		t.Fatalf("Functions() = %d, want 1", len(p.Functions()))
	}
	if p.ClassByName("B") == nil || p.ClassByName("Z") != nil {
		t.Error("ClassByName lookup broken")
	}
	cb := p.ClassByName("B")
	if cb.FieldByName("f") == nil || cb.FieldByName("g") != nil {
		t.Error("FieldByName lookup broken")
	}
}

func TestClassDeclType(t *testing.T) {
	p, _ := figure6Program()
	a := p.ClassByName("A").Type()
	ctor, ok := a.(*types.Constructor)
	if !ok {
		t.Fatalf("parameterized class type must be a Constructor, got %T", a)
	}
	if ctor.TypeName != "A" || len(ctor.Params) != 1 {
		t.Errorf("bad constructor: %s", ctor)
	}
	bT := p.ClassByName("B").Type().(*types.Constructor)
	// B<T>'s supertype is A<T>.
	sup, ok := bT.Super.(*types.App)
	if !ok || sup.Ctor.TypeName != "A" {
		t.Fatalf("B's supertype should be an application of A, got %v", bT.Super)
	}
	plain := &ClassDecl{Name: "P"}
	if _, ok := plain.Type().(*types.Simple); !ok {
		t.Error("unparameterized class type must be Simple")
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	p, _ := figure6Program()
	var news, decls int
	Walk(p, func(n Node) bool {
		switch n.(type) {
		case *New:
			news++
		case Decl:
			decls++
		}
		return true
	})
	if news != 2 {
		t.Errorf("expected 2 New nodes, got %d", news)
	}
	if decls < 4 { // A, B, f, m
		t.Errorf("expected at least 4 decls, got %d", decls)
	}
}

func TestWalkPruning(t *testing.T) {
	p, _ := figure6Program()
	var news int
	Walk(p, func(n Node) bool {
		if _, ok := n.(*FuncDecl); ok {
			return false // prune method bodies
		}
		if _, ok := n.(*New); ok {
			news++
		}
		return true
	})
	if news != 0 {
		t.Errorf("pruned walk must not reach New nodes, got %d", news)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p, _ := figure6Program()
	c := CloneProgram(p)
	if len(c.Decls) != len(p.Decls) {
		t.Fatal("clone lost declarations")
	}
	// Mutate the clone's method body; the original must be unaffected.
	cm := c.Functions()[0]
	cm.Body.(*New).TypeArgs = nil
	om := p.Functions()[0]
	if om.Body.(*New).TypeArgs == nil {
		t.Error("mutating the clone leaked into the original")
	}
	// Rendered forms must initially coincide.
	p2, _ := figure6Program()
	if Print(CloneProgram(p2)) != Print(p2) {
		t.Error("clone must render identically to the original")
	}
}

func TestCloneCoversAllExprForms(t *testing.T) {
	b := types.NewBuiltins()
	e := &Block{
		Stmts: []Node{
			&VarDecl{Name: "x", DeclType: b.Int, Init: &Const{Type: b.Int}},
			&Assign{Target: &VarRef{Name: "x"}, Value: &Const{Type: b.Int}},
			&Call{Name: "f", Args: []Expr{&VarRef{Name: "x"}}},
		},
		Value: &If{
			Cond: &BinaryOp{Op: "==", Left: &VarRef{Name: "x"}, Right: &Const{Type: b.Int}},
			Then: &Cast{Expr: &Const{Type: types.Bottom{}}, Target: b.String},
			Else: &Lambda{
				Params: []*ParamDecl{{Name: "y", Type: b.Int}},
				Body:   &MethodRef{Recv: &VarRef{Name: "y"}, Method: "toString"},
			},
		},
	}
	c := CloneExpr(e).(*Block)
	if ExprString(c) != ExprString(e) {
		t.Errorf("clone render mismatch:\n%s\nvs\n%s", ExprString(c), ExprString(e))
	}
	// Deep: rewriting a nested node of the clone leaves the original alone.
	c.Value.(*If).Cond.(*BinaryOp).Op = "!="
	if e.Value.(*If).Cond.(*BinaryOp).Op != "==" {
		t.Error("clone shared the condition node")
	}
}

func TestPrintRendering(t *testing.T) {
	p, _ := figure6Program()
	src := Print(p)
	for _, want := range []string{
		"package fig6",
		"open class A<T>",
		"class B<T> : A<T>()",
		"val f: A<T>",
		"fun m(): A<String> = B<String>(A<String>(",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("printed program missing %q:\n%s", want, src)
		}
	}
}

func TestPrintDiamondAndInference(t *testing.T) {
	p, _ := figure6Program()
	m := p.Functions()[0]
	m.Ret = nil
	m.Body.(*New).TypeArgs = nil
	src := Print(p)
	if !strings.Contains(src, "fun m() = B<>(") {
		t.Errorf("erased form should use diamond and omit return type:\n%s", src)
	}
}

func TestConstLiterals(t *testing.T) {
	b := types.NewBuiltins()
	cases := []struct {
		t    types.Type
		want string
	}{
		{b.Int, "1"},
		{b.Long, "1L"},
		{b.Boolean, "true"},
		{b.String, `"s"`},
		{b.Char, "'c'"},
		{b.Double, "1.0"},
		{types.Bottom{}, "null"},
		{types.NewSimple("A", nil), "(null as A)"},
	}
	for _, c := range cases {
		if got := ExprString(&Const{Type: c.t}); got != c.want {
			t.Errorf("const of %s = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestAllMethods(t *testing.T) {
	p, _ := figure6Program()
	p.ClassByName("B").Methods = append(p.ClassByName("B").Methods,
		&FuncDecl{Name: "g", Body: &Const{Type: types.NewBuiltins().Int}})
	ms := AllMethods(p)
	if len(ms) != 2 {
		t.Fatalf("AllMethods = %d, want 2", len(ms))
	}
	names := []string{ms[0].Name, ms[1].Name}
	if names[0] != "g" || names[1] != "m" {
		t.Errorf("order should follow declaration order (class B before fun m): %v", names)
	}
}

func TestCountNodes(t *testing.T) {
	p, _ := figure6Program()
	// Program + 2 classes + field + function + 2 News = 7.
	if n := CountNodes(p); n != 7 {
		t.Errorf("CountNodes = %d, want 7", n)
	}
	if n := CountNodes(&VarRef{Name: "x"}); n != 1 {
		t.Errorf("leaf count = %d", n)
	}
}
