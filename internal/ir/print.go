package ir

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Print renders the program in a neutral, Kotlin-flavoured surface syntax.
// This is the IR's debugging format; the language translators in
// internal/translate produce compilable Java/Kotlin/Groovy sources.
func Print(p *Program) string {
	var b strings.Builder
	if p.Package != "" {
		fmt.Fprintf(&b, "package %s\n\n", p.Package)
	}
	for i, d := range p.Decls {
		if i > 0 {
			b.WriteString("\n")
		}
		printDecl(&b, d, 0)
	}
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("    ")
	}
}

func typeParamList(ps []*types.Parameter) string {
	if len(ps) == 0 {
		return ""
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		s := p.ParamName
		if p.Var != types.Invariant {
			s = p.Var.String() + " " + s
		}
		if p.Bound != nil {
			s += " : " + p.Bound.String()
		}
		parts[i] = s
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

func printDecl(b *strings.Builder, d Decl, depth int) {
	switch t := d.(type) {
	case *ClassDecl:
		indent(b, depth)
		switch t.Kind {
		case InterfaceClass:
			b.WriteString("interface ")
		case AbstractClass:
			b.WriteString("abstract class ")
		default:
			if t.Open {
				b.WriteString("open ")
			}
			b.WriteString("class ")
		}
		b.WriteString(t.Name)
		b.WriteString(typeParamList(t.TypeParams))
		if t.Super != nil {
			b.WriteString(" : " + t.Super.Type.String())
			if t.Kind == RegularClass {
				b.WriteString("(" + exprList(t.Super.Args) + ")")
			}
		}
		b.WriteString(" {\n")
		for _, f := range t.Fields {
			indent(b, depth+1)
			kw := "val"
			if f.Mutable {
				kw = "var"
			}
			fmt.Fprintf(b, "%s %s: %s\n", kw, f.Name, f.Type)
		}
		for _, m := range t.Methods {
			printDecl(b, m, depth+1)
		}
		indent(b, depth)
		b.WriteString("}\n")
	case *FuncDecl:
		indent(b, depth)
		if t.Override {
			b.WriteString("override ")
		}
		b.WriteString("fun ")
		if tp := typeParamList(t.TypeParams); tp != "" {
			b.WriteString(tp + " ")
		}
		b.WriteString(t.Name + "(")
		parts := make([]string, len(t.Params))
		for i, p := range t.Params {
			if p.Type != nil {
				parts[i] = p.Name + ": " + p.Type.String()
			} else {
				parts[i] = p.Name
			}
		}
		b.WriteString(strings.Join(parts, ", ") + ")")
		if t.Ret != nil {
			b.WriteString(": " + t.Ret.String())
		}
		if t.Body == nil {
			b.WriteString("\n")
			return
		}
		b.WriteString(" = ")
		printExpr(b, t.Body, depth)
		b.WriteString("\n")
	case *VarDecl:
		indent(b, depth)
		kw := "val"
		if t.Mutable {
			kw = "var"
		}
		b.WriteString(kw + " " + t.Name)
		if t.DeclType != nil {
			b.WriteString(": " + t.DeclType.String())
		}
		if t.Init != nil {
			b.WriteString(" = ")
			printExpr(b, t.Init, depth)
		}
		b.WriteString("\n")
	case *FieldDecl:
		indent(b, depth)
		fmt.Fprintf(b, "val %s: %s\n", t.Name, t.Type)
	case *ParamDecl:
		b.WriteString(t.Name)
	}
}

func exprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		var b strings.Builder
		printExpr(&b, e, 0)
		parts[i] = b.String()
	}
	return strings.Join(parts, ", ")
}

// ExprString renders a single expression (used by diagnostics and tests).
func ExprString(e Expr) string {
	var b strings.Builder
	printExpr(&b, e, 0)
	return b.String()
}

func printExpr(b *strings.Builder, e Expr, depth int) {
	switch t := e.(type) {
	case *Const:
		b.WriteString(constLiteral(t.Type))
	case *VarRef:
		b.WriteString(t.Name)
	case *FieldAccess:
		printExpr(b, t.Recv, depth)
		b.WriteString("." + t.Field)
	case *BinaryOp:
		b.WriteString("(")
		printExpr(b, t.Left, depth)
		b.WriteString(" " + t.Op + " ")
		printExpr(b, t.Right, depth)
		b.WriteString(")")
	case *Block:
		b.WriteString("{\n")
		for _, s := range t.Stmts {
			switch st := s.(type) {
			case *VarDecl:
				printDecl(b, st, depth+1)
			case Expr:
				indent(b, depth+1)
				printExpr(b, st, depth+1)
				b.WriteString("\n")
			}
		}
		if t.Value != nil {
			indent(b, depth+1)
			printExpr(b, t.Value, depth+1)
			b.WriteString("\n")
		}
		indent(b, depth)
		b.WriteString("}")
	case *Call:
		if t.Recv != nil {
			printExpr(b, t.Recv, depth)
			b.WriteString(".")
		}
		b.WriteString(t.Name)
		if len(t.TypeArgs) > 0 {
			b.WriteString("<" + typeList(t.TypeArgs) + ">")
		}
		b.WriteString("(" + exprList(t.Args) + ")")
	case *New:
		b.WriteString(t.Class.Name())
		if _, param := t.Class.(*types.Constructor); param {
			if t.TypeArgs == nil {
				b.WriteString("<>") // diamond
			} else {
				b.WriteString("<" + typeList(t.TypeArgs) + ">")
			}
		}
		b.WriteString("(" + exprList(t.Args) + ")")
	case *Assign:
		printExpr(b, t.Target, depth)
		b.WriteString(" = ")
		printExpr(b, t.Value, depth)
	case *If:
		b.WriteString("if (")
		printExpr(b, t.Cond, depth)
		b.WriteString(") ")
		printExpr(b, t.Then, depth)
		b.WriteString(" else ")
		printExpr(b, t.Else, depth)
	case *MethodRef:
		printExpr(b, t.Recv, depth)
		b.WriteString("::" + t.Method)
	case *Lambda:
		b.WriteString("{ ")
		parts := make([]string, len(t.Params))
		for i, p := range t.Params {
			if p.Type != nil {
				parts[i] = p.Name + ": " + p.Type.String()
			} else {
				parts[i] = p.Name
			}
		}
		if len(parts) > 0 {
			b.WriteString(strings.Join(parts, ", ") + " -> ")
		}
		printExpr(b, t.Body, depth)
		b.WriteString(" }")
	case *Cast:
		b.WriteString("(")
		printExpr(b, t.Expr, depth)
		b.WriteString(" as " + t.Target.String() + ")")
	case *Is:
		b.WriteString("(")
		printExpr(b, t.Expr, depth)
		b.WriteString(" is " + t.Target.String() + ")")
	}
}

func typeList(ts []types.Type) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ", ")
}

// constLiteral renders val(t) as a literal of the builtin type t, or a cast
// null for non-defaultable types (Section 3.2).
func constLiteral(t types.Type) string {
	if s, ok := t.(*types.Simple); ok && s.Builtin {
		switch s.TypeName {
		case "Byte", "Short", "Int":
			return "1"
		case "Long":
			return "1L"
		case "Float":
			return "1.0f"
		case "Double":
			return "1.0"
		case "Boolean":
			return "true"
		case "Char":
			return "'c'"
		case "String":
			return "\"s\""
		case "Unit":
			return "Unit"
		}
	}
	if _, ok := t.(types.Bottom); ok {
		return "null"
	}
	return "(null as " + t.String() + ")"
}
