package ir

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

// randomExpr generates random expression trees over a small universe for
// property testing of Walk/Clone/Print.
func randomExpr(r *rand.Rand, depth int) Expr {
	b := types.NewBuiltins()
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return &Const{Type: b.Int}
		case 1:
			return &VarRef{Name: "x"}
		default:
			return &Const{Type: b.String}
		}
	}
	switch r.Intn(9) {
	case 0:
		return &FieldAccess{Recv: randomExpr(r, depth-1), Field: "f"}
	case 1:
		return &BinaryOp{Op: "==", Left: randomExpr(r, depth-1), Right: randomExpr(r, depth-1)}
	case 2:
		return &If{Cond: randomExpr(r, depth-1), Then: randomExpr(r, depth-1), Else: randomExpr(r, depth-1)}
	case 3:
		n := r.Intn(3)
		c := &Call{Name: "m", Recv: randomExpr(r, depth-1)}
		for i := 0; i < n; i++ {
			c.Args = append(c.Args, randomExpr(r, depth-1))
		}
		return c
	case 4:
		blk := &Block{Value: randomExpr(r, depth-1)}
		for i := 0; i < r.Intn(3); i++ {
			blk.Stmts = append(blk.Stmts, &VarDecl{
				Name: "v", DeclType: b.Int, Init: randomExpr(r, depth-1),
			})
		}
		return blk
	case 5:
		return &Lambda{
			Params: []*ParamDecl{{Name: "p", Type: b.Int}},
			Body:   randomExpr(r, depth-1),
		}
	case 6:
		return &Cast{Expr: randomExpr(r, depth-1), Target: b.String}
	case 7:
		return &Is{Expr: randomExpr(r, depth-1), Target: b.Int}
	default:
		return &Assign{Target: &VarRef{Name: "x"}, Value: randomExpr(r, depth-1)}
	}
}

func exprValues(vs []reflect.Value, r *rand.Rand) {
	for i := range vs {
		vs[i] = reflect.ValueOf(randomExpr(r, 4))
	}
}

// Clone renders identically to the original and has the same node count.
func TestQuickCloneRoundTrip(t *testing.T) {
	f := func(e Expr) bool {
		c := CloneExpr(e)
		return ExprString(c) == ExprString(e) && CountNodes(c) == CountNodes(e)
	}
	cfg := &quick.Config{Values: exprValues, MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Clone shares no mutable nodes with the original: walking the clone never
// yields a pointer that also appears in the original.
func TestQuickCloneDisjoint(t *testing.T) {
	f := func(e Expr) bool {
		orig := map[Node]bool{}
		Walk(e, func(n Node) bool { orig[n] = true; return true })
		disjoint := true
		Walk(CloneExpr(e), func(n Node) bool {
			if orig[n] {
				disjoint = false
				return false
			}
			return true
		})
		return disjoint
	}
	cfg := &quick.Config{Values: exprValues, MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Walk visits exactly CountNodes nodes and never visits nil.
func TestQuickWalkConsistent(t *testing.T) {
	f := func(e Expr) bool {
		visited := 0
		ok := true
		Walk(e, func(n Node) bool {
			if n == nil {
				ok = false
			}
			visited++
			return true
		})
		return ok && visited == CountNodes(e)
	}
	cfg := &quick.Config{Values: exprValues, MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Printing is deterministic.
func TestQuickPrintDeterministic(t *testing.T) {
	f := func(e Expr) bool {
		return ExprString(e) == ExprString(e)
	}
	cfg := &quick.Config{Values: exprValues, MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
