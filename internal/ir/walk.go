package ir

// Visit is called for every node reached by Walk. Returning false prunes
// the subtree below the node.
type Visit func(Node) bool

// Walk traverses the AST rooted at n in syntactic order, calling v for
// each node. It tolerates nil children (omitted bodies, absent branches).
func Walk(n Node, v Visit) {
	if n == nil || !v(n) {
		return
	}
	switch t := n.(type) {
	case *Program:
		for _, d := range t.Decls {
			Walk(d, v)
		}
	case *ClassDecl:
		if t.Super != nil {
			for _, a := range t.Super.Args {
				Walk(a, v)
			}
		}
		for _, f := range t.Fields {
			Walk(f, v)
		}
		for _, m := range t.Methods {
			Walk(m, v)
		}
	case *FieldDecl:
	case *FuncDecl:
		for _, p := range t.Params {
			Walk(p, v)
		}
		if t.Body != nil {
			Walk(t.Body, v)
		}
	case *ParamDecl:
	case *VarDecl:
		if t.Init != nil {
			Walk(t.Init, v)
		}
	case *Const, *VarRef:
	case *FieldAccess:
		Walk(t.Recv, v)
	case *BinaryOp:
		Walk(t.Left, v)
		Walk(t.Right, v)
	case *Block:
		for _, s := range t.Stmts {
			Walk(s, v)
		}
		if t.Value != nil {
			Walk(t.Value, v)
		}
	case *Call:
		if t.Recv != nil {
			Walk(t.Recv, v)
		}
		for _, a := range t.Args {
			Walk(a, v)
		}
	case *New:
		for _, a := range t.Args {
			Walk(a, v)
		}
	case *Assign:
		Walk(t.Target, v)
		Walk(t.Value, v)
	case *If:
		Walk(t.Cond, v)
		Walk(t.Then, v)
		Walk(t.Else, v)
	case *MethodRef:
		Walk(t.Recv, v)
	case *Lambda:
		for _, p := range t.Params {
			Walk(p, v)
		}
		Walk(t.Body, v)
	case *Cast:
		Walk(t.Expr, v)
	case *Is:
		Walk(t.Expr, v)
	}
}

// CountNodes returns the number of AST nodes under n (n included).
func CountNodes(n Node) int {
	count := 0
	Walk(n, func(Node) bool { count++; return true })
	return count
}

// AllMethods returns every function in the program — top-level functions
// and class methods — in declaration order. This is the iteration order of
// the mutation algorithms ("for m ∈ Methods(P)").
func AllMethods(p *Program) []*FuncDecl {
	var out []*FuncDecl
	for _, d := range p.Decls {
		switch t := d.(type) {
		case *FuncDecl:
			out = append(out, t)
		case *ClassDecl:
			out = append(out, t.Methods...)
		}
	}
	return out
}
