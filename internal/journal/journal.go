// Package journal is the durability layer under long-running campaigns:
// a write-ahead journal of finished pipeline units plus periodic atomic
// snapshots of the folded campaign state, both living in one state
// directory. The paper's evaluation is a nine-month continuous run; a
// campaign that long survives power loss and OOM kills only if its
// progress is on disk, so the contract here is crash-safety at any
// instant:
//
//   - journal records are length-prefixed and CRC32-checksummed, and the
//     file is appended with batched fsyncs — a record either replays
//     bit-for-bit or is detected as torn/corrupt;
//   - a torn final record (the classic kill-mid-write) truncates replay
//     cleanly instead of failing it;
//   - a corrupt record mid-file (bad checksum) is quarantined with its
//     byte offset and replay resyncs at the next frame;
//   - snapshots and side documents are written to a temp file, fsynced,
//     and renamed into place, so a reader never observes a half-written
//     file; snapshot loading falls back to the newest *valid* snapshot.
//
// The package stores bytes, not campaign types: internal/campaign owns
// the record and snapshot schemas and replays them into its report.
package journal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	journalName = "journal.wal"
	snapExt     = ".snap"
	tmpExt      = ".tmp"

	// frameHeader is the per-record overhead: a uint32 payload length
	// followed by a uint32 CRC32 (IEEE) of the payload, little-endian.
	frameHeader = 8

	// MaxRecord bounds one record's payload. A length prefix beyond it
	// means the framing itself is lost (a corrupt length byte), at which
	// point replay cannot resync and treats the rest of the file as torn.
	MaxRecord = 64 << 20
)

// Store is a state directory holding one campaign's journal and
// snapshots plus side documents (bug corpus, metadata) that outlive
// individual campaigns.
type Store struct {
	dir string
	// observe, when set, is called once per Corruption Replay records —
	// quarantined checksum mismatches and torn tails alike — so callers
	// can count corrupt records and trace them without re-scanning.
	observe func(Corruption)
}

// SetObserver registers fn to be called for every Corruption found by
// Replay. Observation only: quarantine behaviour is unchanged. A nil fn
// clears the observer.
func (s *Store) SetObserver(fn func(Corruption)) { s.observe = fn }

// Open opens (creating if needed) the state directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: open state dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

func (s *Store) journalPath() string { return filepath.Join(s.dir, journalName) }

// Reset deletes the journal and every snapshot — a fresh campaign in an
// already-used directory. Side documents (the persistent bug corpus) are
// deliberately kept: they accumulate across campaigns.
func (s *Store) Reset() error {
	if err := os.Remove(s.journalPath()); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("journal: reset: %w", err)
	}
	snaps, err := s.snapshotFiles()
	if err != nil {
		return err
	}
	for _, f := range snaps {
		if err := os.Remove(f.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("journal: reset: %w", err)
		}
	}
	return s.syncDir()
}

// syncDir fsyncs the state directory so renames and removals are
// durable, not just the file contents.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Writer appends framed records to the journal. It buffers writes and
// fsyncs every SyncEvery records (and on Sync/Close), bounding the
// window a crash can tear to the unsynced tail.
type Writer struct {
	f         *os.File
	buf       *bufio.Writer
	syncEvery int
	pending   int
}

// Append opens the journal for appending. syncEvery <= 0 means fsync on
// every record.
func (s *Store) Append(syncEvery int) (*Writer, error) {
	f, err := os.OpenFile(s.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: append: %w", err)
	}
	if syncEvery <= 0 {
		syncEvery = 1
	}
	return &Writer{f: f, buf: bufio.NewWriter(f), syncEvery: syncEvery}, nil
}

// Append frames and writes one record. The record is durable only after
// the next Sync (implicit every syncEvery appends).
func (w *Writer) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.buf.Write(hdr[:]); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if _, err := w.buf.Write(payload); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	w.pending++
	if w.pending >= w.syncEvery {
		return w.Sync()
	}
	return nil
}

// Sync flushes buffered records and fsyncs the journal.
func (w *Writer) Sync() error {
	if err := w.buf.Flush(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	w.pending = 0
	return nil
}

// Close syncs and closes the journal.
func (w *Writer) Close() error {
	serr := w.Sync()
	cerr := w.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Corruption records one unusable stretch of the journal: a checksum
// mismatch (quarantined, replay resyncs after it) or a torn tail
// (replay stops there).
type Corruption struct {
	// Offset is the byte offset of the bad frame in the journal.
	Offset int64
	// Reason says what was wrong, for the campaign log.
	Reason string
}

func (c Corruption) String() string {
	return fmt.Sprintf("journal offset %d: %s", c.Offset, c.Reason)
}

// Replay streams every intact record to fn in file order. Corrupt
// records are quarantined — skipped, with their offsets returned — and a
// torn or truncated tail ends replay cleanly; neither is an error. A
// missing journal replays zero records. An error from fn aborts replay
// and is returned as-is.
func (s *Store) Replay(fn func(offset int64, payload []byte) error) ([]Corruption, error) {
	f, err := os.Open(s.journalPath())
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: replay: %w", err)
	}
	defer f.Close()

	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("journal: replay: %w", err)
	}
	return replayStream(bufio.NewReader(f), info.Size(), s.observe, fn)
}

// ReplayBytes replays a journal image held in memory — a shard journal
// shipped over the network — with exactly Replay's framing, quarantine,
// and torn-tail semantics. The coordinator merges worker journals
// through this without touching disk.
func ReplayBytes(b []byte, fn func(offset int64, payload []byte) error) ([]Corruption, error) {
	return replayStream(bytes.NewReader(b), int64(len(b)), nil, fn)
}

// replayStream is the frame scanner shared by Replay and ReplayBytes:
// size bounds the stream, observe (optional) sees every Corruption as
// it is recorded.
func replayStream(r io.Reader, size int64, observe func(Corruption), fn func(offset int64, payload []byte) error) ([]Corruption, error) {
	var off int64
	var quarantined []Corruption
	bad := func(c Corruption) {
		quarantined = append(quarantined, c)
		if observe != nil {
			observe(c)
		}
	}
	for off < size {
		var hdr [frameHeader]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			bad(Corruption{off, "torn frame header"})
			break
		}
		length := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > MaxRecord {
			// The length bytes themselves are garbage: framing is lost
			// and nothing after this point can be trusted.
			bad(Corruption{off, fmt.Sprintf("implausible record length %d; framing lost", length)})
			break
		}
		if off+frameHeader+length > size {
			bad(Corruption{off, fmt.Sprintf("torn record: %d bytes framed, %d on disk", length, size-off-frameHeader)})
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			bad(Corruption{off, "torn record payload"})
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			bad(Corruption{off, "checksum mismatch"})
			off += frameHeader + length
			continue
		}
		if err := fn(off, payload); err != nil {
			return quarantined, err
		}
		off += frameHeader + length
	}
	return quarantined, nil
}

// JournalBytes reads the raw framed journal image — the bytes
// ReplayBytes accepts — so a worker can ship its shard journal to the
// coordinator. A missing journal returns (nil, nil).
func (s *Store) JournalBytes() ([]byte, error) {
	b, err := os.ReadFile(s.journalPath())
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: read journal: %w", err)
	}
	return b, nil
}

// snapFile is one snapshot on disk.
type snapFile struct {
	path string
	seq  int64
}

// snapshotFiles lists snapshots, newest (highest seq) first.
func (s *Store) snapshotFiles() ([]snapFile, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: list snapshots: %w", err)
	}
	var out []snapFile
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "snapshot-") || !strings.HasSuffix(name, snapExt) {
			continue
		}
		seq, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "snapshot-"), snapExt), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, snapFile{path: filepath.Join(s.dir, name), seq: seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	return out, nil
}

// WriteSnapshot atomically persists a snapshot claiming the fold prefix
// [0, seq): the payload is framed (length + CRC32) in a temp file,
// fsynced, and renamed into place, then older snapshots are pruned (the
// previous one is kept as a fallback against a corrupt write).
func (s *Store) WriteSnapshot(seq int64, payload []byte) error {
	name := fmt.Sprintf("snapshot-%016d%s", seq, snapExt)
	final := filepath.Join(s.dir, name)
	tmp := final + tmpExt
	if err := writeFramedFile(tmp, payload); err != nil {
		return fmt.Errorf("journal: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("journal: write snapshot: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return fmt.Errorf("journal: write snapshot: %w", err)
	}
	// Prune all but the two newest snapshots.
	snaps, err := s.snapshotFiles()
	if err != nil {
		return err
	}
	for _, old := range snaps[min(2, len(snaps)):] {
		os.Remove(old.path)
	}
	return nil
}

// LatestSnapshot loads the newest snapshot that passes validation,
// skipping corrupt ones. ok is false when no valid snapshot exists.
func (s *Store) LatestSnapshot() (seq int64, payload []byte, ok bool, err error) {
	snaps, err := s.snapshotFiles()
	if err != nil {
		return 0, nil, false, err
	}
	for _, f := range snaps {
		payload, verr := readFramedFile(f.path)
		if verr != nil {
			continue // corrupt or half-written: fall back to an older one
		}
		return f.seq, payload, true, nil
	}
	return 0, nil, false, nil
}

// WriteDoc atomically writes a named side document (temp + fsync +
// rename). Documents are plain bytes — campaign keeps JSON there.
func (s *Store) WriteDoc(name string, payload []byte) error {
	final := filepath.Join(s.dir, name)
	tmp := final + tmpExt
	if err := writePlainFile(tmp, payload); err != nil {
		return fmt.Errorf("journal: write doc %s: %w", name, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("journal: write doc %s: %w", name, err)
	}
	return s.syncDir()
}

// ReadDoc reads a side document; a missing document returns (nil, nil).
func (s *Store) ReadDoc(name string) ([]byte, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, name))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: read doc %s: %w", name, err)
	}
	return b, nil
}

// writeFramedFile writes a single framed record as the whole file and
// fsyncs it; readFramedFile validates and unwraps it.
func writeFramedFile(path string, payload []byte) error {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	return writePlainFile(path, append(hdr[:], payload...))
}

func readFramedFile(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < frameHeader {
		return nil, fmt.Errorf("journal: framed file %s too short", path)
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	payload := b[frameHeader:]
	if int(length) != len(payload) {
		return nil, fmt.Errorf("journal: framed file %s: length %d != payload %d", path, length, len(payload))
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("journal: framed file %s: checksum mismatch", path)
	}
	return payload, nil
}

func writePlainFile(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
