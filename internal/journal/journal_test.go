package journal

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func appendAll(t *testing.T, s *Store, payloads [][]byte, syncEvery int) {
	t.Helper()
	w, err := s.Append(syncEvery)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func replayAll(t *testing.T, s *Store) ([][]byte, []Corruption) {
	t.Helper()
	var got [][]byte
	corr, err := s.Replay(func(_ int64, payload []byte) error {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, corr
}

func TestJournalRoundTripAcrossReopen(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 50; i++ {
		want = append(want, []byte(fmt.Sprintf("record-%03d-%s", i, strings.Repeat("x", i))))
	}
	appendAll(t, s, want[:30], 7)
	appendAll(t, s, want[30:], 1) // reopen appends, never truncates

	got, corr := replayAll(t, s)
	if len(corr) != 0 {
		t.Fatalf("clean journal reported corruption: %v", corr)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch: %q vs %q", i, got[i], want[i])
		}
	}
}

func TestJournalMissingFileReplaysNothing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, corr := replayAll(t, s)
	if len(got) != 0 || len(corr) != 0 {
		t.Fatalf("missing journal replayed %d records, %d corruptions", len(got), len(corr))
	}
}

func TestJournalToleratesTornTailAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 8; i++ {
		want = append(want, []byte(fmt.Sprintf("unit-%d-payload", i)))
	}
	appendAll(t, s, want, 1)
	full, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}

	// Cut the journal at every possible byte offset: replay must never
	// error, and must recover exactly the records whose frames survived
	// intact, in order.
	for cut := 0; cut < len(full); cut++ {
		td := t.TempDir()
		s2, err := Open(td)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(td, journalName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, _ := replayAll(t, s2)
		if len(got) > len(want) {
			t.Fatalf("cut %d: replayed more records than written", cut)
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("cut %d: record %d corrupted silently: %q", cut, i, got[i])
			}
		}
	}
}

func TestJournalQuarantinesCorruptRecordAndResyncs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 10; i++ {
		want = append(want, []byte(fmt.Sprintf("unit-%d-payload-with-some-body", i)))
	}
	appendAll(t, s, want, 1)

	// Flip one payload byte in the middle record: that record must be
	// quarantined with its offset, and every other record must survive.
	path := filepath.Join(dir, journalName)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame := frameHeader + len(want[0])
	target := 5*frame + frameHeader + 3 // a payload byte of record 5
	full[target] ^= 0xff
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}

	got, corr := replayAll(t, s)
	if len(corr) != 1 {
		t.Fatalf("want 1 quarantined record, got %v", corr)
	}
	if corr[0].Offset != int64(5*frame) {
		t.Errorf("quarantine offset = %d, want %d", corr[0].Offset, 5*frame)
	}
	if !strings.Contains(corr[0].Reason, "checksum") {
		t.Errorf("quarantine reason = %q", corr[0].Reason)
	}
	if len(got) != 9 {
		t.Fatalf("replayed %d records, want 9 (one quarantined)", len(got))
	}
	wantLeft := append(append([][]byte{}, want[:5]...), want[6:]...)
	for i := range got {
		if !bytes.Equal(got[i], wantLeft[i]) {
			t.Errorf("surviving record %d mismatch: %q", i, got[i])
		}
	}
}

func TestJournalImplausibleLengthStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, [][]byte{[]byte("good")}, 1)
	// Append garbage claiming a multi-gigabyte record.
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 9, 9}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, corr := replayAll(t, s)
	if len(got) != 1 || string(got[0]) != "good" {
		t.Fatalf("replay = %q", got)
	}
	if len(corr) != 1 || !strings.Contains(corr[0].Reason, "framing lost") {
		t.Fatalf("corruption = %v", corr)
	}
}

func TestSnapshotLatestValidWins(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := s.LatestSnapshot(); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	if err := s.WriteSnapshot(10, []byte("state-at-10")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(20, []byte("state-at-20")); err != nil {
		t.Fatal(err)
	}
	seq, payload, ok, err := s.LatestSnapshot()
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if seq != 20 || string(payload) != "state-at-20" {
		t.Fatalf("latest = %d %q", seq, payload)
	}
}

func TestSnapshotCorruptLatestFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(10, []byte("state-at-10")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(20, []byte("state-at-20")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot in place (a torn write at kill time).
	newest := filepath.Join(dir, fmt.Sprintf("snapshot-%016d%s", 20, snapExt))
	if err := os.WriteFile(newest, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	seq, payload, ok, err := s.LatestSnapshot()
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if seq != 10 || string(payload) != "state-at-10" {
		t.Fatalf("fallback = %d %q, want the older valid snapshot", seq, payload)
	}
}

func TestSnapshotPruneKeepsTwo(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		if err := s.WriteSnapshot(i*100, []byte(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	snaps, err := s.snapshotFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("kept %d snapshots, want 2", len(snaps))
	}
	if snaps[0].seq != 500 || snaps[1].seq != 400 {
		t.Fatalf("kept %d and %d, want 500 and 400", snaps[0].seq, snaps[1].seq)
	}
}

func TestResetClearsJournalAndSnapshotsKeepsDocs(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, s, [][]byte{[]byte("r")}, 1)
	if err := s.WriteSnapshot(1, []byte("s")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteDoc("corpus.json", []byte(`{"bugs":{}}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if got, _ := replayAll(t, s); len(got) != 0 {
		t.Errorf("journal survived reset: %d records", len(got))
	}
	if _, _, ok, _ := s.LatestSnapshot(); ok {
		t.Error("snapshot survived reset")
	}
	doc, err := s.ReadDoc("corpus.json")
	if err != nil || doc == nil {
		t.Errorf("corpus doc should survive reset: %q err=%v", doc, err)
	}
}

func TestDocsRoundTripAndMissing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if b, err := s.ReadDoc("meta.json"); err != nil || b != nil {
		t.Fatalf("missing doc: %q err=%v", b, err)
	}
	if err := s.WriteDoc("meta.json", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteDoc("meta.json", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	b, err := s.ReadDoc("meta.json")
	if err != nil || string(b) != "v2" {
		t.Fatalf("doc = %q err=%v", b, err)
	}
}

func TestJournalRandomTruncationFuzz(t *testing.T) {
	// The crash model behind the campaign soak: append a batch, cut the
	// file at a random offset, reopen, append more, repeat. Replay must
	// always yield a prefix-consistent sequence (each surviving record
	// intact and in append order).
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, journalName)
	next := 0
	for round := 0; round < 20; round++ {
		w, err := s.Append(3)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := w.Append([]byte(fmt.Sprintf("record-%04d", next))); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if info, err := os.Stat(path); err == nil && info.Size() > 0 && rng.Intn(2) == 0 {
			cut := rng.Int63n(info.Size() + 1)
			if err := os.Truncate(path, cut); err != nil {
				t.Fatal(err)
			}
		}
		got, _ := replayAll(t, s)
		for _, rec := range got {
			var n int
			if _, err := fmt.Sscanf(string(rec), "record-%d", &n); err != nil {
				t.Fatalf("round %d: mangled record %q", round, rec)
			}
		}
	}
}

func TestReplayObserverSeesEveryCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 8; i++ {
		want = append(want, []byte(fmt.Sprintf("unit-%d-payload-with-some-body", i)))
	}
	appendAll(t, s, want, 1)

	path := filepath.Join(dir, journalName)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame := frameHeader + len(want[0])
	full[2*frame+frameHeader] ^= 0xff // corrupt record 2's payload
	full[5*frame+frameHeader] ^= 0xff // and record 5's
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}

	var seen []Corruption
	s.SetObserver(func(c Corruption) { seen = append(seen, c) })
	_, corr := replayAll(t, s)
	if len(corr) != 2 {
		t.Fatalf("want 2 quarantined records, got %v", corr)
	}
	if len(seen) != len(corr) {
		t.Fatalf("observer saw %d corruptions, replay returned %d", len(seen), len(corr))
	}
	for i := range corr {
		if seen[i] != corr[i] {
			t.Errorf("observer corruption %d = %v, replay returned %v", i, seen[i], corr[i])
		}
	}

	// Clearing the observer stops the callbacks.
	seen = nil
	s.SetObserver(nil)
	replayAll(t, s)
	if len(seen) != 0 {
		t.Fatalf("cleared observer still saw %d corruptions", len(seen))
	}
}

func TestReplayBytesMatchesReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 12; i++ {
		want = append(want, []byte(fmt.Sprintf("record-%d-%s", i, strings.Repeat("y", i))))
	}
	appendAll(t, s, want, 3)

	image, err := s.JournalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if image == nil {
		t.Fatal("JournalBytes returned nil for an existing journal")
	}

	var got [][]byte
	corr, err := ReplayBytes(image, func(_ int64, payload []byte) error {
		got = append(got, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(corr) != 0 {
		t.Fatalf("clean image reported corruption: %v", corr)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch: %q vs %q", i, got[i], want[i])
		}
	}

	// A flipped byte quarantines exactly like the on-disk path, and a
	// truncated image is a torn tail, not an error.
	off := 0
	for i := 0; i < 4; i++ {
		off += frameHeader + len(want[i])
	}
	flipped := append([]byte(nil), image...)
	flipped[off+frameHeader] ^= 0xff
	corr, err = ReplayBytes(flipped, func(int64, []byte) error { return nil })
	if err != nil || len(corr) != 1 || corr[0].Offset != int64(off) {
		t.Fatalf("flipped image: corr=%v err=%v (want one quarantine at %d)", corr, err, off)
	}
	corr, err = ReplayBytes(image[:len(image)-3], func(int64, []byte) error { return nil })
	if err != nil || len(corr) != 1 || !strings.Contains(corr[0].Reason, "torn") {
		t.Fatalf("truncated image: corr=%v err=%v (want one torn-tail corruption)", corr, err)
	}

	// A missing journal ships as nil bytes and replays to nothing.
	s2, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	image2, err := s2.JournalBytes()
	if err != nil || image2 != nil {
		t.Fatalf("missing journal: image=%v err=%v", image2, err)
	}
}
