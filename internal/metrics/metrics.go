// Package metrics is the observability layer under long-running
// campaigns: counters, gauges, bounded-bucket latency histograms, a
// registry snapshotable to JSON, and a ring-buffered structured event
// trace, all stdlib-only and safe for concurrent use.
//
// The paper's nine-month campaign lived or died on being able to watch
// it run — bug-rate over time, per-compiler throughput, watchdog and
// breaker activity. The contract here is that watching never perturbs:
// every instrument is observation-only (nothing reads a metric to make
// a control decision), updates are lock-light atomics, and nothing in
// this package consumes randomness or influences scheduling, so a
// campaign's report is bit-for-bit identical with instrumentation on or
// off, at any worker count. Instruments carry unit sequence numbers
// rather than wall-clock ordering wherever determinism matters; only
// durations (which are explicitly non-deterministic, like the pipeline's
// busy times) record real time.
//
// All instrument methods tolerate nil receivers, and a nil *Registry
// hands out unregistered instruments, so call sites can wire metrics
// unconditionally and let a disabled configuration cost near nothing.
package metrics

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current count.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can move in both directions (queue depth,
// breaker state) or track a running maximum.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v is larger than the current value.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates observations into a bounded set of buckets,
// plus exact count, sum, min, and max. Buckets are fixed at
// construction, so memory stays constant over a months-long run.
type Histogram struct {
	bounds []int64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

// DefaultLatencyBounds is the bucket layout used for durations when none
// is given: decades from 1µs to 10s with 1-2.5-5 subdivision, in
// nanoseconds.
func DefaultLatencyBounds() []int64 {
	var bounds []int64
	for decade := int64(1000); decade <= 10_000_000_000; decade *= 10 {
		bounds = append(bounds, decade, decade*5/2, decade*5)
	}
	return bounds
}

// NewHistogram returns a histogram over the given ascending upper
// bounds; nil bounds mean DefaultLatencyBounds.
func NewHistogram(bounds []int64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds()
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Bucket is one histogram bucket in a snapshot: the count of
// observations at or below the upper bound LE (nanoseconds for latency
// histograms); LE < 0 marks the +Inf bucket.
type Bucket struct {
	LE int64 `json:"le"`
	N  int64 `json:"n"`
}

// HistogramSnapshot is a point-in-time copy of a histogram. Empty
// buckets are omitted.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the average observation, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		le := int64(-1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, Bucket{LE: le, N: n})
	}
	return s
}

// Registry names and holds instruments. Instrument lookups are
// create-or-get: two callers asking for the same name share the
// instrument. A nil Registry hands out fresh unregistered instruments,
// so wiring can be unconditional.
//
// A Registry may be a scoped view of a larger one (see Scope): views
// share one instrument store, with each view prefixing the names it
// hands out and snapshotting only its own subtree. This is how a
// multi-tenant host gives every campaign the full instrument surface
// inside one per-tenant registry without name collisions.
type Registry struct {
	prefix string
	s      *registryState
}

// registryState is the instrument store shared by a registry and all
// its scoped views.
type registryState struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{s: &registryState{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}}
}

// Scope returns a view of the registry under prefix: instruments it
// creates are named "<prefix>.<name>" in the parent, and its Snapshot
// contains only that subtree (with the prefix stripped). Scopes nest,
// share the parent's store, and a nil registry scopes to nil.
func (r *Registry) Scope(prefix string) *Registry {
	if r == nil || prefix == "" {
		return r
	}
	return &Registry{prefix: r.prefix + prefix + ".", s: r.s}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	name = r.prefix + name
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	c := r.s.counters[name]
	if c == nil {
		c = &Counter{}
		r.s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	name = r.prefix + name
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	g := r.s.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the default latency
// bounds, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return NewHistogram(nil)
	}
	name = r.prefix + name
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	h := r.s.hists[name]
	if h == nil {
		h = NewHistogram(nil)
		r.s.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time JSON-marshalable copy of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every instrument's current value. A scoped view
// snapshots only its own subtree, with the scope prefix stripped from
// the names.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	for name, c := range r.s.counters {
		if rel, ok := strings.CutPrefix(name, r.prefix); ok {
			s.Counters[rel] = c.Load()
		}
	}
	for name, g := range r.s.gauges {
		if rel, ok := strings.CutPrefix(name, r.prefix); ok {
			s.Gauges[rel] = g.Load()
		}
	}
	for name, h := range r.s.hists {
		if rel, ok := strings.CutPrefix(name, r.prefix); ok {
			s.Histograms[rel] = h.Snapshot()
		}
	}
	return s
}
