package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("counter = %d, want 5", c.Load())
	}
	var g Gauge
	g.Set(7)
	g.SetMax(3)
	if g.Load() != 7 {
		t.Errorf("gauge after SetMax(3) = %d, want 7", g.Load())
	}
	g.SetMax(11)
	if g.Load() != 11 {
		t.Errorf("gauge after SetMax(11) = %d, want 11", g.Load())
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Trace
	var r *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.SetMax(2)
	h.Observe(5)
	tr.Emit(Event{Kind: "x"})
	if c.Load() != 0 || g.Load() != 0 || h.Snapshot().Count != 0 || tr.Total() != 0 || tr.Tail(10) != nil {
		t.Error("nil instruments must read as zero")
	}
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c").Observe(1)
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry must hand out unregistered instruments")
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 5126 || s.Min != 5 || s.Max != 5000 {
		t.Errorf("snapshot stats: %+v", s)
	}
	want := map[int64]int64{10: 2, 100: 2, -1: 1}
	for _, b := range s.Buckets {
		if want[b.LE] != b.N {
			t.Errorf("bucket le=%d n=%d, want %d", b.LE, b.N, want[b.LE])
		}
		delete(want, b.LE)
	}
	if len(want) != 0 {
		t.Errorf("missing buckets: %v", want)
	}
	if s.Mean() != 5126.0/5 {
		t.Errorf("mean = %v", s.Mean())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.ObserveDuration(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
}

func TestRegistrySharesInstrumentsByName(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.Counter("x").Inc()
	if got := r.Counter("x").Load(); got != 2 {
		t.Errorf("shared counter = %d, want 2", got)
	}
	snap := r.Snapshot()
	if snap.Counters["x"] != 2 {
		t.Errorf("snapshot counters = %v", snap.Counters)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Errorf("snapshot not marshalable: %v", err)
	}
}

func TestTraceRingOverwritesOldest(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Seq: i, Kind: "k"})
	}
	if tr.Total() != 10 {
		t.Errorf("total = %d, want 10", tr.Total())
	}
	tail := tr.Tail(0)
	if len(tail) != 4 {
		t.Fatalf("tail length = %d, want 4", len(tail))
	}
	for i, e := range tail {
		if e.Seq != 6+i || e.ID != int64(6+i) {
			t.Errorf("tail[%d] = seq %d id %d, want %d", i, e.Seq, e.ID, 6+i)
		}
	}
	if got := tr.Tail(2); len(got) != 2 || got[0].Seq != 8 {
		t.Errorf("Tail(2) = %+v", got)
	}
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("campaign.units").Add(42)
	reg.Histogram("lat").Observe(100)
	tr := NewTrace(16)
	tr.Emit(Event{Seq: 1, Kind: "verdict", Compiler: "groovyc", Verdict: "pass"})
	srv, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if snap.Counters["campaign.units"] != 42 || snap.Histograms["lat"].Count != 1 {
		t.Errorf("/metrics snapshot: %+v", snap)
	}

	var events struct {
		Total  int64   `json:"total"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal(get("/events?n=5"), &events); err != nil {
		t.Fatalf("/events not JSON: %v", err)
	}
	if events.Total != 1 || len(events.Events) != 1 || events.Events[0].Kind != "verdict" {
		t.Errorf("/events: %+v", events)
	}

	if body := get("/debug/pprof/"); len(body) == 0 {
		t.Error("/debug/pprof/ empty")
	}
}

func TestRegistryScope(t *testing.T) {
	root := NewRegistry()
	alice := root.Scope("alice")
	camp := alice.Scope("c000001")
	camp.Counter("units").Add(3)
	alice.Counter("submits").Add(1)
	root.Counter("top").Add(7)

	// The parent sees the scoped instruments under their full names.
	rs := root.Snapshot()
	if rs.Counters["alice.c000001.units"] != 3 || rs.Counters["alice.submits"] != 1 || rs.Counters["top"] != 7 {
		t.Errorf("root snapshot: %+v", rs.Counters)
	}
	// The scope sees only its subtree, prefix-stripped.
	as := alice.Snapshot()
	if as.Counters["c000001.units"] != 3 || as.Counters["submits"] != 1 {
		t.Errorf("scope snapshot: %+v", as.Counters)
	}
	if _, ok := as.Counters["top"]; ok {
		t.Error("scope snapshot leaked a sibling instrument")
	}
	cs := camp.Snapshot()
	if len(cs.Counters) != 1 || cs.Counters["units"] != 3 {
		t.Errorf("nested scope snapshot: %+v", cs.Counters)
	}
	// Same name through scope and parent resolves to one instrument.
	root.Counter("alice.c000001.units").Add(1)
	if got := camp.Counter("units").Load(); got != 4 {
		t.Errorf("scoped and full-name counters diverged: %d", got)
	}
	// Degenerate scopes collapse.
	if root.Scope("") != root {
		t.Error("empty scope did not return the receiver")
	}
	var nilReg *Registry
	if nilReg.Scope("x") != nil {
		t.Error("nil registry scope is not nil")
	}
	nilReg.Scope("x").Counter("ok").Add(1) // must not panic
}
