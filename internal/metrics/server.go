package metrics

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Server is the live debug endpoint of a running campaign:
//
//	/metrics          registry snapshot as JSON
//	/events           most recent trace events as JSON (?n=K tails K)
//	/healthz          liveness probe
//	/debug/pprof/...  the standard Go profiling handlers
//
// Everything served is a point-in-time copy; handlers never block an
// instrument writer for longer than one snapshot.
type Server struct {
	ln  net.Listener
	srv *http.Server
	mux *http.ServeMux
}

// Handler returns the debug endpoints (/metrics, /events, /healthz)
// over the given registry and trace, either of which may be nil, as a
// plain http.Handler — mountable under any prefix, which is how the
// fuzzing server exposes one debug surface per tenant.
func Handler(reg *Registry, trace *Trace) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, reg.Snapshot())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			n, _ = strconv.Atoi(q)
		}
		writeJSON(w, struct {
			Total  int64   `json:"total"`
			Events []Event `json:"events"`
		}{trace.Total(), trace.Tail(n)})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// Serve starts the debug server on addr (":0" picks a free port) over
// the given registry and trace, either of which may be nil.
func Serve(addr string, reg *Registry, trace *Trace) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/", Handler(reg, trace))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, mux: mux, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the server's bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Mux exposes the underlying mux so callers can add endpoints (e.g. a
// campaign-specific series view).
func (s *Server) Mux() *http.ServeMux { return s.mux }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort debug endpoint
}
