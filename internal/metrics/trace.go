package metrics

import "sync"

// Event is one structured trace record: a unit flowing through a stage,
// a verdict, a retry, a fault, a breaker transition, an injected chaos
// fault. Events are keyed by the owning unit (sequence number and seed),
// not by wall-clock time, because the campaign's determinism contract is
// seq-ordered; the ring's arrival order is best-effort and purely
// observational.
type Event struct {
	// ID is the event's append index since the trace was created; the
	// /events endpoint uses it as a cursor.
	ID int64 `json:"id"`
	// Seq is the owning pipeline unit's sequence number, -1 when the
	// event is not unit-scoped.
	Seq int `json:"seq"`
	// Unit is the owning unit's seed, 0 when not unit-scoped.
	Unit int64 `json:"unit,omitempty"`
	// Kind classifies the event: "verdict", "retry", "fault", "flaky",
	// "breaker", "chaos", "journal" (corrupt-record quarantine), or
	// "fabric" (shard lease/reassignment/speculation activity).
	Kind string `json:"kind"`
	// Stage is the pipeline stage or input kind involved, if any.
	Stage string `json:"stage,omitempty"`
	// Compiler is the compiler under test, if any.
	Compiler string `json:"compiler,omitempty"`
	// Verdict is the oracle verdict for "verdict" events.
	Verdict string `json:"verdict,omitempty"`
	// Detail carries kind-specific context (attempt number, breaker
	// transition, injected fault class).
	Detail string `json:"detail,omitempty"`
}

// Trace is a fixed-capacity ring buffer of Events. Appends never block
// and never allocate once the ring is warm; old events are overwritten.
// All methods tolerate a nil receiver, so tracing can be wired
// unconditionally and disabled by leaving the trace nil.
type Trace struct {
	mu   sync.Mutex
	buf  []Event
	next int64 // total events ever appended
}

// NewTrace returns a ring holding the most recent capacity events;
// capacity <= 0 means 1024.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Trace{buf: make([]Event, capacity)}
}

// Emit appends one event, overwriting the oldest when full.
func (t *Trace) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e.ID = t.next
	t.buf[t.next%int64(len(t.buf))] = e
	t.next++
	t.mu.Unlock()
}

// Total returns how many events were ever emitted (including ones the
// ring has since overwritten).
func (t *Trace) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Tail returns the most recent n events, oldest first. n <= 0 or beyond
// the retained window returns everything retained.
func (t *Trace) Tail(n int) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	retained := t.next
	if retained > int64(len(t.buf)) {
		retained = int64(len(t.buf))
	}
	if n <= 0 || int64(n) > retained {
		n = int(retained)
	}
	out := make([]Event, 0, n)
	for i := t.next - int64(n); i < t.next; i++ {
		out = append(out, t.buf[i%int64(len(t.buf))])
	}
	return out
}
