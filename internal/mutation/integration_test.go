package mutation

import (
	"math/rand"
	"testing"

	"repro/internal/checker"
	"repro/internal/generator"
	"repro/internal/ir"
)

// TestTEMOnGeneratedPrograms verifies the central TEM guarantee
// (Section 3.4.1, "Remarks"): by construction, TEM yields well-typed
// programs. We run it over many generator seeds; each mutant must still be
// accepted by the reference checker.
func TestTEMOnGeneratedPrograms(t *testing.T) {
	erasedSomething := 0
	for seed := int64(0); seed < 150; seed++ {
		g := generator.New(generator.DefaultConfig().WithSeed(seed))
		p := g.Generate()
		mutant, report := TypeErasure(p, g.Builtins())
		if report.Changed() {
			erasedSomething++
		}
		res := checker.Check(mutant, g.Builtins(), checker.Options{})
		if !res.OK() {
			t.Fatalf("seed %d: TEM mutant is ill-typed: %v\nerased: %v\nmutant:\n%s",
				seed, res.Diags, report.Erased, ir.Print(mutant))
		}
	}
	if erasedSomething < 100 {
		t.Errorf("TEM erased something in only %d/150 programs; mutation too weak", erasedSomething)
	}
}

// TestTOMOnGeneratedPrograms verifies the central TOM guarantee
// (Section 3.4.2): the mutated program is ill-typed, so a compiler
// accepting it has a soundness bug.
func TestTOMOnGeneratedPrograms(t *testing.T) {
	mutated := 0
	for seed := int64(0); seed < 150; seed++ {
		g := generator.New(generator.DefaultConfig().WithSeed(seed))
		p := g.Generate()
		rng := rand.New(rand.NewSource(seed))
		mutant, report := TypeOverwriting(p, g.Builtins(), rng)
		if mutant == nil {
			continue
		}
		mutated++
		res := checker.Check(mutant, g.Builtins(), checker.Options{})
		if res.OK() {
			t.Fatalf("seed %d: TOM mutant is well-typed but must not be\nreport: %s\nmutant:\n%s",
				seed, report, ir.Print(mutant))
		}
	}
	if mutated < 100 {
		t.Errorf("TOM found a mutation point in only %d/150 programs", mutated)
	}
}

// TestTEMIncreasesInferencePressure: TEM's purpose is to exercise
// inference engines. Count omitted-type sites before and after.
func TestTEMIncreasesInferencePressure(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := generator.New(generator.DefaultConfig().WithSeed(seed))
		p := g.Generate()
		mutant, report := TypeErasure(p, g.Builtins())
		if !report.Changed() {
			continue
		}
		if omittedTypes(mutant) <= omittedTypes(p) {
			t.Errorf("seed %d: TEM did not increase omitted-type sites", seed)
		}
	}
}

func omittedTypes(p *ir.Program) int {
	n := 0
	ir.Walk(p, func(node ir.Node) bool {
		switch t := node.(type) {
		case *ir.VarDecl:
			if t.DeclType == nil {
				n++
			}
		case *ir.New:
			if t.TypeArgs == nil {
				n++
			}
		case *ir.Call:
			if t.TypeArgs == nil {
				n++
			}
		case *ir.FuncDecl:
			if t.Ret == nil {
				n++
			}
		}
		return true
	})
	return n
}
