package mutation

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/checker"
	"repro/internal/ir"
	"repro/internal/types"
)

// figure6 builds the paper's Figure 6 program (see typegraph tests).
func figure6() (*ir.Program, *types.Builtins) {
	b := types.NewBuiltins()
	aT := types.NewParameter("A", "T")
	classA := &ir.ClassDecl{Name: "A", TypeParams: []*types.Parameter{aT}, Open: true}
	ctorA := classA.Type().(*types.Constructor)
	bT := types.NewParameter("B", "T")
	classB := &ir.ClassDecl{
		Name:       "B",
		TypeParams: []*types.Parameter{bT},
		Super:      &ir.SuperRef{Type: ctorA.Apply(bT)},
		Fields:     []*ir.FieldDecl{{Name: "f", Type: ctorA.Apply(bT)}},
	}
	ctorB := classB.Type().(*types.Constructor)
	m := &ir.FuncDecl{
		Name: "m",
		Ret:  ctorA.Apply(b.String),
		Body: &ir.New{
			Class:    ctorB,
			TypeArgs: []types.Type{b.String},
			Args:     []ir.Expr{&ir.New{Class: ctorA, TypeArgs: []types.Type{b.String}}},
		},
	}
	return &ir.Program{Decls: []ir.Decl{classA, classB, m}}, b
}

func TestTEMFigure6ProducesPaperMutant(t *testing.T) {
	p, b := figure6()
	mutant, report := TypeErasure(p, b)
	if !report.Changed() {
		t.Fatal("TEM must erase something on Figure 6")
	}
	// The paper's outcome: return B<String>(A<String>()) becomes
	// return B(A()) while the return annotation stays.
	src := ir.Print(mutant)
	if !strings.Contains(src, "fun m(): A<String> = B<>(A<>(") {
		t.Errorf("expected the paper's maximal erasure, got:\n%s", src)
	}
	if len(report.Erased) != 2 {
		t.Errorf("expected 2 erased points, got %d: %v", len(report.Erased), report.Erased)
	}
}

func TestTEMPreservesWellTypedness(t *testing.T) {
	p, b := figure6()
	mutant, _ := TypeErasure(p, b)
	res := checker.Check(mutant, b, checker.Options{})
	if !res.OK() {
		t.Fatalf("TEM output must be well-typed, got %v\nprogram:\n%s", res.Diags, ir.Print(mutant))
	}
}

func TestTEMDoesNotMutateOriginal(t *testing.T) {
	p, b := figure6()
	before := ir.Print(p)
	TypeErasure(p, b)
	if ir.Print(p) != before {
		t.Error("TEM must operate on a clone")
	}
}

func TestTEMOnProgramWithoutCandidates(t *testing.T) {
	b := types.NewBuiltins()
	p := &ir.Program{Decls: []ir.Decl{
		&ir.FuncDecl{Name: "f", Ret: b.Unit, Body: &ir.Const{Type: b.Unit}},
	}}
	_, report := TypeErasure(p, b)
	if report.Changed() {
		t.Errorf("nothing to erase, got %v", report.Erased)
	}
}

func TestTEMVarDecl(t *testing.T) {
	b := types.NewBuiltins()
	// val x: String = "s" — erasable; val y = null-ish not present.
	body := &ir.Block{Stmts: []ir.Node{
		&ir.VarDecl{Name: "x", DeclType: b.String, Init: &ir.Const{Type: b.String}},
	}}
	p := &ir.Program{Decls: []ir.Decl{&ir.FuncDecl{Name: "f", Body: body, Ret: b.Unit}}}
	mutant, report := TypeErasure(p, b)
	if !report.Changed() {
		t.Fatal("x's declared type should be erased")
	}
	v := mutant.Functions()[0].Body.(*ir.Block).Stmts[0].(*ir.VarDecl)
	if v.DeclType != nil {
		t.Error("DeclType should be nil after erasure")
	}
	if res := checker.Check(mutant, b, checker.Options{}); !res.OK() {
		t.Errorf("mutant must type-check: %v", res.Diags)
	}
}

func TestTEMSkipsWideningAnnotations(t *testing.T) {
	b := types.NewBuiltins()
	// val x: Number = 1 — erasing changes x's type to Int; must be kept.
	body := &ir.Block{Stmts: []ir.Node{
		&ir.VarDecl{Name: "x", DeclType: b.Number, Init: &ir.Const{Type: b.Int}},
	}}
	p := &ir.Program{Decls: []ir.Decl{&ir.FuncDecl{Name: "f", Body: body, Ret: b.Unit}}}
	_, report := TypeErasure(p, b)
	for _, e := range report.Erased {
		t.Errorf("unexpected erasure %v (Number annotation is not preserved)", e)
	}
}

func TestCombinationsEnumeration(t *testing.T) {
	var got [][]int
	combinations(4, 2, func(idx []int) bool {
		cp := append([]int(nil), idx...)
		got = append(got, cp)
		return true
	})
	if len(got) != 6 {
		t.Fatalf("C(4,2) = %d, want 6", len(got))
	}
	if got[0][0] != 0 || got[0][1] != 1 {
		t.Errorf("first combination = %v", got[0])
	}
	if got[5][0] != 2 || got[5][1] != 3 {
		t.Errorf("last combination = %v", got[5])
	}
	// Early stop.
	count := 0
	combinations(5, 3, func([]int) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early stop after 3, got %d", count)
	}
	// Degenerate cases.
	combinations(2, 3, func([]int) bool { t.Error("k>n must not visit"); return true })
	combinations(2, 0, func([]int) bool { t.Error("k=0 must not visit"); return true })
}

func TestTOMInjectsTypeError(t *testing.T) {
	p, b := figure6()
	if res := checker.Check(p, b, checker.Options{}); !res.OK() {
		t.Fatalf("input must be well-typed: %v", res.Diags)
	}
	found := false
	for seed := int64(0); seed < 10; seed++ {
		mutant, report := TypeOverwriting(p, b, rand.New(rand.NewSource(seed)))
		if mutant == nil {
			continue
		}
		found = true
		res := checker.Check(mutant, b, checker.Options{})
		if res.OK() {
			t.Fatalf("TOM output must be ill-typed (seed %d):\nreport: %s\nprogram:\n%s",
				seed, report, ir.Print(mutant))
		}
		if report.Original == nil || report.Injected == nil {
			t.Error("report must carry original and injected types")
		}
	}
	if !found {
		t.Fatal("TOM never found a mutation point on Figure 6")
	}
}

func TestTOMDoesNotMutateOriginal(t *testing.T) {
	p, b := figure6()
	before := ir.Print(p)
	TypeOverwriting(p, b, rand.New(rand.NewSource(1)))
	if ir.Print(p) != before {
		t.Error("TOM must operate on a clone")
	}
}

func TestTOMDeterministicForSeed(t *testing.T) {
	p, b := figure6()
	m1, r1 := TypeOverwriting(p, b, rand.New(rand.NewSource(42)))
	m2, r2 := TypeOverwriting(p, b, rand.New(rand.NewSource(42)))
	if (m1 == nil) != (m2 == nil) {
		t.Fatal("determinism violated")
	}
	if m1 != nil && (ir.Print(m1) != ir.Print(m2) || r1.String() != r2.String()) {
		t.Error("same seed must produce the same mutant")
	}
}

func TestTOMOnProgramWithoutCandidates(t *testing.T) {
	b := types.NewBuiltins()
	p := &ir.Program{Decls: []ir.Decl{
		&ir.FuncDecl{Name: "f", Ret: b.Unit, Body: &ir.Const{Type: b.Unit}},
	}}
	mutant, report := TypeOverwriting(p, b, rand.New(rand.NewSource(1)))
	if mutant != nil || report != nil {
		t.Error("no candidates: TOM must return nil")
	}
}

func TestTOMReportString(t *testing.T) {
	var nilReport *TOMReport
	if nilReport.Changed() {
		t.Error("nil report is unchanged")
	}
	p, b := figure6()
	_, report := TypeOverwriting(p, b, rand.New(rand.NewSource(7)))
	if report != nil && !strings.Contains(report.String(), "overwrote") {
		t.Errorf("report string = %q", report)
	}
}

func TestTypePoolRespectsBounds(t *testing.T) {
	b := types.NewBuiltins()
	tp := &types.Parameter{Owner: "NumBox", ParamName: "T", Bound: b.Number}
	cls := &ir.ClassDecl{Name: "NumBox", TypeParams: []*types.Parameter{tp},
		Fields: []*ir.FieldDecl{{Name: "v", Type: tp}}}
	p := &ir.Program{Decls: []ir.Decl{cls}}
	pool := newTypePool(p, b)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		t0 := pool.random(rng)
		if app, ok := t0.(*types.App); ok {
			for j, arg := range app.Args {
				bound := app.Ctor.Params[j].UpperBound()
				if !types.IsSubtype(arg, bound) {
					t.Fatalf("generated %s violates bound %s", app, bound)
				}
			}
		}
	}
}
