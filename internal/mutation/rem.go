package mutation

import (
	"fmt"
	"math/rand"

	"repro/internal/checker"
	"repro/internal/ir"
	"repro/internal/types"
)

// REMReport records what the resolution mutation changed.
type REMReport struct {
	// Class is the class that received the decoy overload.
	Class string
	// Method is the overloaded method name.
	Method string
	// DecoyArity is the decoy's parameter count.
	DecoyArity int
	// InSuperclass reports whether the decoy went into a superclass of
	// the call's receiver class (stressing inherited-overload
	// resolution) rather than the declaring class itself.
	InSuperclass bool
}

func (r *REMReport) String() string {
	where := r.Class
	if r.InSuperclass {
		where += " (superclass)"
	}
	return fmt.Sprintf("added decoy overload %s/%d to %s", r.Method, r.DecoyArity, where)
}

// ResolutionMutation (REM) implements the mutation the paper's conclusion
// proposes as future work: "a mutation that targets bugs in the resolution
// algorithms of compilers". Given a well-typed program, REM picks a method
// that is called somewhere and adds a *decoy overload* — a method with the
// same name but a different arity — to the declaring class or to a
// superclass of it. The transformation is semantics-preserving: correct
// overload resolution still selects the original method at every call
// site, so the mutant must compile. A compiler that reports ambiguity,
// resolves to the decoy, or rejects the program has a resolution bug.
//
// Returns (nil, nil) when the program offers no applicable site. The
// result is verified well-typed against the reference checker.
func ResolutionMutation(p *ir.Program, b *types.Builtins, rng *rand.Rand) (*ir.Program, *REMReport) {
	clone := ir.CloneProgram(p)

	// Collect called method names (receiver calls only: top-level
	// functions cannot be overloaded in the IR).
	called := map[string]bool{}
	ir.Walk(clone, func(n ir.Node) bool {
		if call, ok := n.(*ir.Call); ok && call.Recv != nil {
			called[call.Name] = true
		}
		return true
	})
	if len(called) == 0 {
		return nil, nil
	}

	type site struct {
		owner   *ir.ClassDecl // class declaring the called method
		target  *ir.ClassDecl // class to receive the decoy
		method  *ir.FuncDecl
		inSuper bool
	}
	var sites []site
	for _, cls := range clone.Classes() {
		for _, m := range cls.Methods {
			if !called[m.Name] {
				continue
			}
			sites = append(sites, site{owner: cls, target: cls, method: m})
			// Superclass variant: the decoy is inherited into scope.
			if cls.Super != nil {
				if sup := clone.ClassByName(superName(cls.Super.Type)); sup != nil {
					sites = append(sites, site{owner: cls, target: sup, method: m, inSuper: true})
				}
			}
		}
	}
	if len(sites) == 0 {
		return nil, nil
	}

	for _, i := range rng.Perm(len(sites)) {
		s := sites[i]
		// The decoy differs in arity so no existing call site can be
		// captured; pick an arity the overload set does not already use.
		arity := len(s.method.Params) + 1 + rng.Intn(2)
		if arityTaken(s.target, s.method.Name, arity) || arityTaken(s.owner, s.method.Name, arity) {
			continue
		}
		decoy := &ir.FuncDecl{Name: s.method.Name, Ret: b.Unit, Body: &ir.Const{Type: b.Unit}}
		for j := 0; j < arity; j++ {
			decoy.Params = append(decoy.Params, &ir.ParamDecl{
				Name: fmt.Sprintf("rem%d", j),
				Type: b.Int,
			})
		}
		s.target.Methods = append(s.target.Methods, decoy)
		if checker.Check(clone, b, checker.Options{}).OK() {
			return clone, &REMReport{
				Class:        s.target.Name,
				Method:       s.method.Name,
				DecoyArity:   arity,
				InSuperclass: s.inSuper,
			}
		}
		// Revert and try another site.
		s.target.Methods = s.target.Methods[:len(s.target.Methods)-1]
	}
	return nil, nil
}

func superName(t types.Type) string {
	switch tt := t.(type) {
	case *types.Simple:
		return tt.TypeName
	case *types.App:
		return tt.Ctor.TypeName
	}
	return ""
}

func arityTaken(cls *ir.ClassDecl, name string, arity int) bool {
	for _, m := range cls.Methods {
		if m.Name == name && len(m.Params) == arity {
			return true
		}
	}
	return false
}
