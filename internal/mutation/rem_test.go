package mutation

import (
	"math/rand"
	"testing"

	"repro/internal/checker"
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/types"
)

// remFixture builds a program with a method call site suitable for REM:
//
//	open class Base { fun m(x: Int): Int = x }
//	class C : Base()
//	fun test(): Int = C().m(1)
func remFixture() (*ir.Program, *types.Builtins) {
	b := types.NewBuiltins()
	base := &ir.ClassDecl{Name: "Base", Open: true, Methods: []*ir.FuncDecl{{
		Name:   "m",
		Params: []*ir.ParamDecl{{Name: "x", Type: b.Int}},
		Ret:    b.Int,
		Body:   &ir.VarRef{Name: "x"},
	}}}
	c := &ir.ClassDecl{Name: "C", Super: &ir.SuperRef{Type: base.Type()}}
	test := &ir.FuncDecl{Name: "test", Ret: b.Int, Body: &ir.Call{
		Recv: &ir.New{Class: c.Type()},
		Name: "m",
		Args: []ir.Expr{&ir.Const{Type: b.Int}},
	}}
	return &ir.Program{Decls: []ir.Decl{base, c, test}}, b
}

func TestREMAddsDecoyAndStaysWellTyped(t *testing.T) {
	p, b := remFixture()
	mutant, report := ResolutionMutation(p, b, rand.New(rand.NewSource(1)))
	if mutant == nil {
		t.Fatal("REM should find a site")
	}
	if report.Method != "m" {
		t.Errorf("report method = %s", report.Method)
	}
	res := checker.Check(mutant, b, checker.Options{})
	if !res.OK() {
		t.Fatalf("REM mutant must be well-typed: %v\n%s", res.Diags, ir.Print(mutant))
	}
	// The decoy really exists: some class now has two methods named m.
	overloads := 0
	for _, cls := range mutant.Classes() {
		for _, m := range cls.Methods {
			if m.Name == "m" {
				overloads++
			}
		}
	}
	if overloads != 2 {
		t.Errorf("expected 2 overloads of m, found %d", overloads)
	}
	// Original untouched.
	if len(p.ClassByName("Base").Methods) != 1 {
		t.Error("REM must operate on a clone")
	}
}

func TestREMOnGeneratedPrograms(t *testing.T) {
	applied := 0
	for seed := int64(0); seed < 60; seed++ {
		g := generator.New(generator.DefaultConfig().WithSeed(seed))
		p := g.Generate()
		mutant, report := ResolutionMutation(p, g.Builtins(), rand.New(rand.NewSource(seed)))
		if mutant == nil {
			continue
		}
		applied++
		res := checker.Check(mutant, g.Builtins(), checker.Options{})
		if !res.OK() {
			t.Fatalf("seed %d: REM mutant ill-typed (%s): %v", seed, report, res.Diags[0])
		}
	}
	if applied < 20 {
		t.Errorf("REM applied to only %d/60 programs", applied)
	}
}

func TestREMNoSite(t *testing.T) {
	b := types.NewBuiltins()
	p := &ir.Program{Decls: []ir.Decl{
		&ir.FuncDecl{Name: "f", Ret: b.Int, Body: &ir.Const{Type: b.Int}},
	}}
	mutant, report := ResolutionMutation(p, b, rand.New(rand.NewSource(1)))
	if mutant != nil || report != nil {
		t.Error("no call sites: REM must return nil")
	}
}

// TestOverloadResolutionSemantics pins the checker behaviour REM relies
// on: arity disambiguation, applicability filtering, most-specific
// selection, and ambiguity reporting.
func TestOverloadResolutionSemantics(t *testing.T) {
	b := types.NewBuiltins()
	mk := func(methods ...*ir.FuncDecl) *ir.Program {
		cls := &ir.ClassDecl{Name: "C", Methods: methods}
		test := &ir.FuncDecl{Name: "test", Ret: b.Int, Body: &ir.Call{
			Recv: &ir.New{Class: cls.Type()},
			Name: "m",
			Args: []ir.Expr{&ir.Const{Type: b.Int}},
		}}
		return &ir.Program{Decls: []ir.Decl{cls, test}}
	}
	intM := &ir.FuncDecl{Name: "m", Params: []*ir.ParamDecl{{Name: "x", Type: b.Int}},
		Ret: b.Int, Body: &ir.Const{Type: b.Int}}
	twoArg := &ir.FuncDecl{Name: "m",
		Params: []*ir.ParamDecl{{Name: "x", Type: b.Int}, {Name: "y", Type: b.Int}},
		Ret:    b.Int, Body: &ir.Const{Type: b.Int}}
	numberM := &ir.FuncDecl{Name: "m", Params: []*ir.ParamDecl{{Name: "x", Type: b.Number}},
		Ret: b.Int, Body: &ir.Const{Type: b.Int}}
	stringM := &ir.FuncDecl{Name: "m", Params: []*ir.ParamDecl{{Name: "x", Type: b.String}},
		Ret: b.Int, Body: &ir.Const{Type: b.Int}}

	// Arity disambiguation.
	if res := checker.Check(mk(intM, twoArg), b, checker.Options{}); !res.OK() {
		t.Errorf("arity overloads must resolve: %v", res.Diags)
	}
	// Most-specific: m(Int) beats m(Number) for an Int argument.
	if res := checker.Check(mk(intM, numberM), b, checker.Options{}); !res.OK() {
		t.Errorf("most-specific selection failed: %v", res.Diags)
	}
	// Applicability: m(String) is filtered out for an Int argument.
	if res := checker.Check(mk(stringM, numberM), b, checker.Options{}); !res.OK() {
		t.Errorf("applicability filtering failed: %v", res.Diags)
	}
	// No applicable overload at all.
	noneProg := mk(stringM)
	noneProg.Decls[0].(*ir.ClassDecl).Methods = []*ir.FuncDecl{stringM,
		{Name: "m", Params: []*ir.ParamDecl{{Name: "x", Type: b.Boolean}},
			Ret: b.Int, Body: &ir.Const{Type: b.Int}}}
	if res := checker.Check(noneProg, b, checker.Options{}); res.OK() {
		t.Error("call with no applicable overload must fail")
	}
	// Duplicate exact signature is rejected at declaration.
	dup := mk(intM, &ir.FuncDecl{Name: "m",
		Params: []*ir.ParamDecl{{Name: "x", Type: b.String}},
		Ret:    b.Int, Body: &ir.Const{Type: b.Int}})
	_ = dup // same arity, different param type: allowed (resolved by applicability)
	exactDup := mk(intM, &ir.FuncDecl{Name: "m",
		Params: []*ir.ParamDecl{{Name: "y", Type: b.Long}},
		Ret:    b.Int, Body: &ir.Const{Type: b.Int}})
	res := checker.Check(exactDup, b, checker.Options{})
	if res.OK() {
		// Same arity with Long param: the Int argument applies only to
		// m(Int), so this still resolves.
		t.Log("same-arity overloads resolved by applicability")
	}
}
