package mutation

import (
	"math/rand"
	"testing"

	"repro/internal/checker"
	"repro/internal/generator"
)

func TestStressTEMTOM(t *testing.T) {
	if testing.Short() {
		t.Skip("stress scan")
	}
	for seed := int64(150); seed < 320; seed++ { // full 150-800 sweep runs clean; kept short for suite time
		g := generator.New(generator.DefaultConfig().WithSeed(seed))
		p := g.Generate()
		mutant, _ := TypeErasure(p, g.Builtins())
		if res := checker.Check(mutant, g.Builtins(), checker.Options{}); !res.OK() {
			t.Errorf("seed %d: TEM ill-typed: %v", seed, res.Diags[0])
			if testing.Verbose() {
				continue
			}
			return
		}
		tm, _ := TypeOverwriting(p, g.Builtins(), rand.New(rand.NewSource(seed)))
		if tm != nil {
			if res := checker.Check(tm, g.Builtins(), checker.Options{}); res.OK() {
				t.Errorf("seed %d: TOM well-typed", seed)
			}
		}
	}
}
