// Package mutation implements the paper's two transformation-based testing
// techniques (Section 3.4): the type erasure mutation (TEM), a
// semantics-preserving transformation that removes as much type
// information as the type-preservation property allows, and the type
// overwriting mutation (TOM), a fault-injecting transformation that
// replaces a type with one the program point is not relevant to.
//
// Both mutations clone the input program, build per-method type graphs
// (internal/typegraph), and rewrite the clone through the candidates' AST
// back-pointers, so the original program is never disturbed.
package mutation

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/ir"
	"repro/internal/typegraph"
	"repro/internal/types"
)

// ErasedPoint describes one piece of type information TEM removed.
type ErasedPoint struct {
	Method string
	Kind   typegraph.CandidateKind
	Detail string
}

// TEMReport summarizes a type-erasure mutation.
type TEMReport struct {
	Erased []ErasedPoint
	// CandidatesSeen and CandidatesPreserving count the per-method
	// filtering stages of Algorithm 2 (lines 4 and 5).
	CandidatesSeen       int
	CandidatesPreserving int
	// CombinationsTried counts preservation checks performed during the
	// maximal-set search (lines 6–9).
	CombinationsTried int
	// RepairedMethods counts methods whose erasures were rolled back by
	// the final verification pass: the intra-procedural type-graph model
	// occasionally over-approximates what the checker's inference can
	// recover (for instance through chains of mutually erased call type
	// arguments), and rolling those methods back restores the guarantee
	// that TEM output is well-typed by construction.
	RepairedMethods int
}

// Changed reports whether the mutation removed anything.
func (r *TEMReport) Changed() bool { return len(r.Erased) > 0 }

// TypeErasure applies the type erasure mutation (Algorithm 2) to p and
// returns the mutated clone. For every method it builds the type graph,
// keeps the candidates that individually preserve their types
// (Definition 3.5), and erases the maximal combination for which the
// generalized type preservation property holds (Definition 3.6). By
// construction the result is well-typed whenever p is.
func TypeErasure(p *ir.Program, b *types.Builtins) (*ir.Program, *TEMReport) {
	clone := ir.CloneProgram(p)
	a := typegraph.Analyze(clone, b)
	report := &TEMReport{}
	cyclic := cyclicFunctions(clone)

	// erasedByMethod remembers each method's applied candidates so the
	// verification pass can roll a method back wholesale.
	erasedByMethod := map[string][]*typegraph.Candidate{}
	originals := map[string]*ir.FuncDecl{}

	apply := func(name string, m *ir.FuncDecl, owner *ir.ClassDecl) {
		g := a.BuildGraph(m, owner)
		report.CandidatesSeen += len(g.Candidates)
		// Line 5: drop candidates that do not preserve on their own.
		// Return types additionally require the function to sit outside
		// every call cycle: return-type inference is inter-procedural,
		// and erasing a return annotation inside a cycle makes inference
		// recursive no matter what the (intra-procedural) type graph says.
		var nodes []*typegraph.Candidate
		for _, c := range g.Candidates {
			if c.Kind == typegraph.ReturnType && cyclic[c.Fun] {
				continue
			}
			if typegraph.Preserves(g, c) {
				nodes = append(nodes, c)
			}
		}
		report.CandidatesPreserving += len(nodes)
		// Lines 6–9: find the maximal omittable combination.
		best := maximalPreservingSet(g, nodes, &report.CombinationsTried)
		if len(best) > 0 {
			originals[name] = ir.CloneDecl(m).(*ir.FuncDecl)
		}
		for _, c := range best {
			eraseCandidate(c)
			erasedByMethod[name] = append(erasedByMethod[name], c)
			report.Erased = append(report.Erased, ErasedPoint{
				Method: name,
				Kind:   c.Kind,
				Detail: c.NodeID,
			})
		}
	}

	for _, d := range clone.Decls {
		switch t := d.(type) {
		case *ir.FuncDecl:
			apply(t.Name, t, nil)
		case *ir.ClassDecl:
			for _, m := range t.Methods {
				apply(t.Name+"."+m.Name, m, t)
			}
		}
	}

	// Verification pass: the graph model is intra-procedural and can in
	// rare cases over-approximate the checker's inference power. Roll
	// back the erasures of any method the checker still complains about.
	for round := 0; round < 16; round++ {
		res := checker.Check(clone, b, checker.Options{})
		if res.OK() {
			break
		}
		undone := false
		for _, d := range res.Diags {
			if _, ok := erasedByMethod[d.Where]; !ok {
				continue
			}
			restoreMethod(clone, d.Where, originals[d.Where])
			delete(erasedByMethod, d.Where)
			report.RepairedMethods++
			report.Erased = dropMethod(report.Erased, d.Where)
			undone = true
		}
		if !undone {
			// Diagnostics point at untouched methods (cross-method
			// effects); roll everything back.
			for name := range erasedByMethod {
				restoreMethod(clone, name, originals[name])
				report.RepairedMethods++
			}
			report.Erased = nil
			erasedByMethod = map[string][]*typegraph.Candidate{}
		}
	}
	return clone, report
}

// restoreMethod swaps a method's declaration back to its pre-erasure copy.
func restoreMethod(p *ir.Program, name string, original *ir.FuncDecl) {
	if original == nil {
		return
	}
	replace := func(m *ir.FuncDecl) {
		m.Ret = original.Ret
		m.Body = original.Body
		m.Params = original.Params
	}
	for _, d := range p.Decls {
		switch t := d.(type) {
		case *ir.FuncDecl:
			if t.Name == name {
				replace(t)
				return
			}
		case *ir.ClassDecl:
			for _, m := range t.Methods {
				if t.Name+"."+m.Name == name {
					replace(m)
					return
				}
			}
		}
	}
}

func dropMethod(points []ErasedPoint, method string) []ErasedPoint {
	out := points[:0]
	for _, p := range points {
		if p.Method != method {
			out = append(out, p)
		}
	}
	return out
}

// maximalPreservingSet enumerates combinations of candidate nodes from
// largest to smallest and returns the first combination that satisfies
// generalized type preservation — the maximal erasable set. The
// enumeration is worst-case exponential (as the paper notes), but the
// line-5 filter and the early break keep it cheap in practice; a hard cap
// bounds pathological inputs.
func maximalPreservingSet(g *typegraph.Graph, nodes []*typegraph.Candidate, tried *int) []*typegraph.Candidate {
	const maxChecks = 4096
	for k := len(nodes); k >= 1; k-- {
		var found []*typegraph.Candidate
		combinations(len(nodes), k, func(idx []int) bool {
			*tried++
			if *tried > maxChecks {
				return false
			}
			combo := make([]*typegraph.Candidate, k)
			for i, j := range idx {
				combo[i] = nodes[j]
			}
			if typegraph.Preserves(g, combo...) {
				found = combo
				return false
			}
			return true
		})
		if found != nil {
			return found
		}
		if *tried > maxChecks {
			break
		}
	}
	return nil
}

// combinations calls visit with every size-k index combination of [0, n)
// until visit returns false.
func combinations(n, k int, visit func([]int) bool) {
	if k > n || k <= 0 {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		if !visit(idx) {
			return
		}
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// eraseCandidate rewrites the AST to remove the candidate's type
// information (the four erasure cases of Section 3.4.1).
func eraseCandidate(c *typegraph.Candidate) {
	switch c.Kind {
	case typegraph.VarDeclType:
		c.Var.DeclType = nil
	case typegraph.NewTypeArgs:
		c.NewExpr.TypeArgs = nil
	case typegraph.CallTypeArgs:
		c.CallExpr.TypeArgs = nil
	case typegraph.ReturnType:
		c.Fun.Ret = nil
	case typegraph.LambdaParams:
		for _, p := range c.LambdaExpr.Params {
			p.Type = nil
		}
	}
}

func (p ErasedPoint) String() string {
	return fmt.Sprintf("%s: erased %s at %s", p.Method, p.Kind, p.Detail)
}

// cyclicFunctions over-approximates the set of functions participating in
// a call cycle. Calls are resolved by name against every function in the
// program (names are unique in generated programs; ambiguity only widens
// the set, which is safe).
func cyclicFunctions(p *ir.Program) map[*ir.FuncDecl]bool {
	byName := map[string][]*ir.FuncDecl{}
	for _, f := range ir.AllMethods(p) {
		byName[f.Name] = append(byName[f.Name], f)
	}
	edges := map[*ir.FuncDecl][]*ir.FuncDecl{}
	for _, f := range ir.AllMethods(p) {
		if f.Body == nil {
			continue
		}
		ir.Walk(f.Body, func(n ir.Node) bool {
			if call, ok := n.(*ir.Call); ok {
				edges[f] = append(edges[f], byName[call.Name]...)
			}
			if mref, ok := n.(*ir.MethodRef); ok {
				edges[f] = append(edges[f], byName[mref.Method]...)
			}
			return true
		})
	}
	cyclic := map[*ir.FuncDecl]bool{}
	for _, f := range ir.AllMethods(p) {
		// f is cyclic when f is reachable from f through one or more
		// call edges.
		seen := map[*ir.FuncDecl]bool{}
		stack := append([]*ir.FuncDecl{}, edges[f]...)
		for len(stack) > 0 {
			g := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if g == f {
				cyclic[f] = true
				break
			}
			if seen[g] {
				continue
			}
			seen[g] = true
			stack = append(stack, edges[g]...)
		}
	}
	return cyclic
}
