package mutation

import (
	"fmt"
	"math/rand"

	"repro/internal/checker"
	"repro/internal/ir"
	"repro/internal/typegraph"
	"repro/internal/types"
)

// TOMReport records what the type overwriting mutation changed — the
// "mutated program points" Hephaestus logs so URB failures can be located
// without a reducer (Section 4.1).
type TOMReport struct {
	Method   string
	Kind     typegraph.CandidateKind
	Node     string
	Original types.Type
	Injected types.Type
}

// Changed reports whether an overwrite was performed.
func (r *TOMReport) Changed() bool { return r != nil && r.Injected != nil }

func (r *TOMReport) String() string {
	if !r.Changed() {
		return "no overwrite"
	}
	return fmt.Sprintf("%s: overwrote %s at %s: %s -> %s",
		r.Method, r.Kind, r.Node, r.Original, r.Injected)
}

// TypeOverwriting applies the type overwriting mutation (Section 3.4.2) to
// p: it picks a random method, builds its type graph, selects a candidate
// node (a variable's declared type or an explicit type argument), and
// replaces its type with a randomly generated type the node is NOT
// relevant to (Definition 3.7). The resulting program is ill-typed by
// construction; a compiler that accepts it has a soundness bug.
//
// It returns the mutated clone and a report, or (nil, nil) when no
// applicable mutation point exists.
func TypeOverwriting(p *ir.Program, b *types.Builtins, rng *rand.Rand) (*ir.Program, *TOMReport) {
	clone := ir.CloneProgram(p)
	a := typegraph.Analyze(clone, b)

	type site struct {
		name  string
		m     *ir.FuncDecl
		owner *ir.ClassDecl
	}
	var sites []site
	for _, d := range clone.Decls {
		switch t := d.(type) {
		case *ir.FuncDecl:
			sites = append(sites, site{t.Name, t, nil})
		case *ir.ClassDecl:
			for _, m := range t.Methods {
				sites = append(sites, site{t.Name + "." + m.Name, m, t})
			}
		}
	}
	pool := newTypePool(clone, b)

	// Randomly pick a method; fall through to the others if it offers no
	// overwritable node.
	order := rng.Perm(len(sites))
	for _, si := range order {
		s := sites[si]
		g := a.BuildGraph(s.m, s.owner)
		cands := overwritable(g)
		if len(cands) == 0 {
			continue
		}
		for _, ci := range rng.Perm(len(cands)) {
			c := cands[ci]
			nodes := c.RelevanceNodes()
			if len(nodes) == 0 {
				continue
			}
			node := nodes[rng.Intn(len(nodes))]
			orig := originalTypeAt(c, node)
			if orig == nil {
				continue
			}
			// Generate a type the node is not relevant to, using the
			// available types of the current scope so the compiler
			// compares types with diverse shapes (Section 3.4.2). The
			// relevance property (Definition 3.7) prunes obviously
			// compatible types; a final reference-checker verification
			// guards the residual cases relevance over-approximates
			// (covariant consumers accept subtypes of the inferred type).
			const attempts = 32
			for try := 0; try < attempts; try++ {
				t := pool.random(rng)
				if t.Equal(orig) {
					continue
				}
				if typegraph.RelevantTo(g, c, node, t) {
					continue
				}
				overwrite(c, node, t)
				if checker.Check(clone, b, checker.Options{}).OK() {
					overwrite(c, node, orig) // compatible after all; undo
					continue
				}
				return clone, &TOMReport{
					Method:   s.name,
					Kind:     c.Kind,
					Node:     node,
					Original: orig,
					Injected: t,
				}
			}
		}
	}
	return nil, nil
}

// overwritable selects the TOM-applicable candidates: variable
// declarations and type-parameter occurrences with explicit arguments.
func overwritable(g *typegraph.Graph) []*typegraph.Candidate {
	var out []*typegraph.Candidate
	for _, c := range g.Candidates {
		switch c.Kind {
		case typegraph.VarDeclType, typegraph.NewTypeArgs, typegraph.CallTypeArgs:
			out = append(out, c)
		}
	}
	return out
}

// originalTypeAt returns the type currently written at the candidate's
// relevance node.
func originalTypeAt(c *typegraph.Candidate, node string) types.Type {
	switch c.Kind {
	case typegraph.VarDeclType:
		return c.Var.DeclType
	case typegraph.NewTypeArgs:
		if i := paramIndexOf(c, node); i >= 0 && i < len(c.NewExpr.TypeArgs) {
			return c.NewExpr.TypeArgs[i]
		}
	case typegraph.CallTypeArgs:
		if i := paramIndexOf(c, node); i >= 0 && i < len(c.CallExpr.TypeArgs) {
			return c.CallExpr.TypeArgs[i]
		}
	}
	return nil
}

func paramIndexOf(c *typegraph.Candidate, node string) int {
	for i, id := range c.ParamNodeIDs {
		if id == node {
			return i
		}
	}
	return -1
}

// overwrite substitutes the injected type at the candidate's node.
func overwrite(c *typegraph.Candidate, node string, t types.Type) {
	switch c.Kind {
	case typegraph.VarDeclType:
		c.Var.DeclType = t
	case typegraph.NewTypeArgs:
		if i := paramIndexOf(c, node); i >= 0 {
			c.NewExpr.TypeArgs[i] = t
		}
	case typegraph.CallTypeArgs:
		if i := paramIndexOf(c, node); i >= 0 {
			c.CallExpr.TypeArgs[i] = t
		}
	}
}

// typePool is the set of types available for injection: ground builtins
// and instantiations of the program's own classes.
type typePool struct {
	ground []types.Type
	ctors  []*types.Constructor
}

func newTypePool(p *ir.Program, b *types.Builtins) *typePool {
	pool := &typePool{ground: b.Defaultable()}
	for _, cls := range p.Classes() {
		switch t := cls.Type().(type) {
		case *types.Simple:
			pool.ground = append(pool.ground, t)
		case *types.Constructor:
			pool.ctors = append(pool.ctors, t)
		}
	}
	return pool
}

// random draws a type, recursively instantiating constructors so that the
// injected types have diverse shapes.
func (p *typePool) random(rng *rand.Rand) types.Type {
	return p.randomDepth(rng, 2)
}

func (p *typePool) randomDepth(rng *rand.Rand, depth int) types.Type {
	if depth > 0 && len(p.ctors) > 0 && rng.Intn(3) == 0 {
		ctor := p.ctors[rng.Intn(len(p.ctors))]
		args := make([]types.Type, len(ctor.Params))
		for i, tp := range ctor.Params {
			arg := p.randomDepth(rng, depth-1)
			bound := tp.UpperBound()
			if !types.IsSubtype(arg, bound) {
				// Respect declared bounds so the injected error is the
				// intended one, not an accidental malformed type.
				arg = bound
			}
			args[i] = arg
		}
		return ctor.Apply(args...)
	}
	return p.ground[rng.Intn(len(p.ground))]
}
