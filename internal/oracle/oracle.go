// Package oracle implements the test oracle of Figure 3's "output
// checker". The way a test program was derived fixes the expected
// compiler behaviour, so no differential testing is needed (Section 3):
// programs from the generator and from the type erasure mutation are
// well-typed and must compile; programs from the type overwriting
// mutation are ill-typed and must be rejected; a crash is always a bug.
package oracle

import (
	"fmt"

	"repro/internal/compilers"
)

// InputKind records how a test program was derived.
type InputKind int

const (
	// Generated: produced by the program generator (well-typed).
	Generated InputKind = iota
	// TEMMutant: produced by the type erasure mutation (well-typed).
	TEMMutant
	// TOMMutant: produced by the type overwriting mutation (ill-typed).
	TOMMutant
	// TEMTOMMutant: TOM applied on a TEM mutant (ill-typed, with omitted
	// type information).
	TEMTOMMutant
	// Suite: a hand-written test-suite program (well-typed).
	Suite
	// REMMutant: produced by the resolution mutation (well-typed; a
	// decoy overload stresses overload resolution).
	REMMutant
)

func (k InputKind) String() string {
	switch k {
	case Generated:
		return "generator"
	case TEMMutant:
		return "TEM"
	case TOMMutant:
		return "TOM"
	case TEMTOMMutant:
		return "TEM&TOM"
	case REMMutant:
		return "REM"
	case Suite:
		return "suite"
	default:
		// Never mislabel a future kind: reports, corpus keys, and the
		// event trace must surface it as unknown, not as "suite".
		return fmt.Sprintf("unknown(%d)", int(k))
	}
}

// ExpectCompile reports the oracle's expectation for the input kind.
func (k InputKind) ExpectCompile() bool {
	switch k {
	case TOMMutant, TEMTOMMutant:
		return false
	default:
		return true
	}
}

// Verdict classifies one compilation against the oracle.
type Verdict int

const (
	// Pass: the compiler behaved as expected.
	Pass Verdict = iota
	// UnexpectedCompileTimeError: a well-formed program was rejected
	// (the UCTE symptom).
	UnexpectedCompileTimeError
	// UnexpectedAcceptance: an ill-typed program compiled; running the
	// binary would misbehave (the URB symptom).
	UnexpectedAcceptance
	// CompilerCrash: the compiler threw an internal error.
	CompilerCrash
	// CompilerHang: the compiler exceeded the harness watchdog's
	// deadline. In the paper's taxonomy a hang is a reportable
	// performance bug, distinct from a crash: the compiler neither
	// accepted, rejected, nor aborted.
	CompilerHang
	// ResourceExhausted: the deterministic resource governor halted the
	// compiler before it finished (fuel or recursion-depth budget). Like a
	// hang this is a performance finding, but unlike the wall-clock
	// watchdog it reproduces at the same step count on any machine, so
	// exhausted programs are first-class, deduplicable report entries.
	ResourceExhausted
	// Disagreement: the differential cross-compiler oracle found a
	// non-uniform verdict vector — the same IR program was accepted by at
	// least one compiler under test and rejected by another (see
	// internal/difforacle). Unlike the derivation-based verdicts above it
	// needs no ground truth: whatever the program's true typing status,
	// at least one side of the vote is wrong. Attached to the minority
	// ("suspect") side's executions when the vote is decided, and to
	// every voting execution when it ties.
	Disagreement
)

func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case UnexpectedCompileTimeError:
		return "UCTE"
	case UnexpectedAcceptance:
		return "URB"
	case CompilerHang:
		return "hang"
	case CompilerCrash:
		return "crash"
	case ResourceExhausted:
		return "exhausted"
	case Disagreement:
		return "disagreement"
	default:
		// Never mislabel a future verdict: surface it as unknown rather
		// than silently folding it into "crash" counts.
		return fmt.Sprintf("unknown(%d)", int(v))
	}
}

// Judge compares a compilation result against the oracle for the input
// kind. A crash or hang is a bug whatever the derivation.
func Judge(kind InputKind, res *compilers.Result) Verdict {
	if res.Status == compilers.Crashed {
		return CompilerCrash
	}
	if res.Status == compilers.TimedOut {
		return CompilerHang
	}
	if res.Status == compilers.ResourceExhausted {
		return ResourceExhausted
	}
	if kind.ExpectCompile() {
		if res.Status == compilers.Rejected {
			return UnexpectedCompileTimeError
		}
		return Pass
	}
	if res.Status == compilers.OK {
		return UnexpectedAcceptance
	}
	return Pass
}
