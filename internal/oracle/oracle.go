// Package oracle implements the test oracle of Figure 3's "output
// checker". The way a test program was derived fixes the expected
// compiler behaviour, so no differential testing is needed (Section 3):
// programs from the generator and from the type erasure mutation are
// well-typed and must compile; programs from the type overwriting
// mutation are ill-typed and must be rejected; a crash is always a bug.
package oracle

import (
	"fmt"

	"repro/internal/compilers"
)

// InputKind records how a test program was derived.
type InputKind int

const (
	// Generated: produced by the program generator (well-typed).
	Generated InputKind = iota
	// TEMMutant: produced by the type erasure mutation (well-typed).
	TEMMutant
	// TOMMutant: produced by the type overwriting mutation (ill-typed).
	TOMMutant
	// TEMTOMMutant: TOM applied on a TEM mutant (ill-typed, with omitted
	// type information).
	TEMTOMMutant
	// Suite: a hand-written test-suite program (well-typed).
	Suite
	// REMMutant: produced by the resolution mutation (well-typed; a
	// decoy overload stresses overload resolution).
	REMMutant
	// Synthesized: built bottom-up from API signatures by the
	// api-driven synthesizer (well-typed by construction; see
	// internal/apisynth and arXiv:2311.04527).
	Synthesized

	// numInputKinds sizes the capability table below. Keep it last:
	// adding a kind without a kindSpecs entry is a compile-time error
	// (array length mismatch) rather than a silent default.
	numInputKinds
)

// kindSpec is the single authoritative record of how the rest of the
// system treats one input kind. Every behavioural special case that
// used to live inline in pipeline or difforacle ("stress units skip
// mutation", "non-stress units get conformance-checked") is a column
// here, so a new kind must answer every question exactly once.
type kindSpec struct {
	name string
	// expectCompile: the derivation fixes the oracle's expectation —
	// true for well-typed derivations, false for ill-typed ones.
	expectCompile bool
	// mutable: the Mutate stage may derive TEM/TOM/REM mutants from
	// units of this kind. Only base programs are mutated; mutants are
	// not re-mutated, and synthesized programs are a terminal mode of
	// their own (mutating them would blur the RQ3/RQ4 comparison).
	mutable bool
	// conformance: the differential oracle's translator-conformance
	// check applies — the Java/Kotlin/Groovy renderings must be
	// verdict-equivalent under the shared reference check.
	conformance bool
}

// kindSpecs is indexed by InputKind. The fixed array length makes the
// table exhaustive by construction; TestKindCapabilityTable pins each
// cell so a new kind needs an explicit, reviewed decision.
var kindSpecs = [numInputKinds]kindSpec{
	Generated:    {name: "generator", expectCompile: true, mutable: true, conformance: true},
	TEMMutant:    {name: "TEM", expectCompile: true, mutable: false, conformance: true},
	TOMMutant:    {name: "TOM", expectCompile: false, mutable: false, conformance: true},
	TEMTOMMutant: {name: "TEM&TOM", expectCompile: false, mutable: false, conformance: true},
	Suite:        {name: "suite", expectCompile: true, mutable: true, conformance: true},
	REMMutant:    {name: "REM", expectCompile: true, mutable: false, conformance: true},
	Synthesized:  {name: "synthesized", expectCompile: true, mutable: false, conformance: true},
}

// Known reports whether k is a defined input kind. Unknown values can
// reach us from a journal written by a newer build; every predicate
// below answers conservatively for them and Judge abstains from
// accept/reject verdicts rather than fabricating bugs.
func (k InputKind) Known() bool {
	return k >= 0 && k < numInputKinds
}

// Kinds returns every defined input kind in declaration order.
func Kinds() []InputKind {
	ks := make([]InputKind, numInputKinds)
	for i := range ks {
		ks[i] = InputKind(i)
	}
	return ks
}

func (k InputKind) String() string {
	if k.Known() {
		return kindSpecs[k].name
	}
	// Never mislabel a future kind: reports, corpus keys, and the
	// event trace must surface it as unknown, not as "suite".
	return fmt.Sprintf("unknown(%d)", int(k))
}

// ExpectCompile reports the oracle's expectation for the input kind.
// The switch over kinds is exhaustive via the capability table; an
// unknown kind carries no expectation, so this reports false and Judge
// additionally abstains from URB verdicts for it (it would otherwise
// claim every compiling unknown-kind program is a bug).
func (k InputKind) ExpectCompile() bool {
	return k.Known() && kindSpecs[k].expectCompile
}

// Mutable reports whether the Mutate stage may derive mutants from
// units of this kind. False for unknown kinds: never mutate a program
// whose derivation we cannot name.
func (k InputKind) Mutable() bool {
	return k.Known() && kindSpecs[k].mutable
}

// ConformanceCheckable reports whether the differential oracle's
// translator-conformance check applies to units of this kind. False
// for unknown kinds: a conformance "finding" on an unclassifiable
// derivation is noise.
func (k InputKind) ConformanceCheckable() bool {
	return k.Known() && kindSpecs[k].conformance
}

// Verdict classifies one compilation against the oracle.
type Verdict int

const (
	// Pass: the compiler behaved as expected.
	Pass Verdict = iota
	// UnexpectedCompileTimeError: a well-formed program was rejected
	// (the UCTE symptom).
	UnexpectedCompileTimeError
	// UnexpectedAcceptance: an ill-typed program compiled; running the
	// binary would misbehave (the URB symptom).
	UnexpectedAcceptance
	// CompilerCrash: the compiler threw an internal error.
	CompilerCrash
	// CompilerHang: the compiler exceeded the harness watchdog's
	// deadline. In the paper's taxonomy a hang is a reportable
	// performance bug, distinct from a crash: the compiler neither
	// accepted, rejected, nor aborted.
	CompilerHang
	// ResourceExhausted: the deterministic resource governor halted the
	// compiler before it finished (fuel or recursion-depth budget). Like a
	// hang this is a performance finding, but unlike the wall-clock
	// watchdog it reproduces at the same step count on any machine, so
	// exhausted programs are first-class, deduplicable report entries.
	ResourceExhausted
	// Disagreement: the differential cross-compiler oracle found a
	// non-uniform verdict vector — the same IR program was accepted by at
	// least one compiler under test and rejected by another (see
	// internal/difforacle). Unlike the derivation-based verdicts above it
	// needs no ground truth: whatever the program's true typing status,
	// at least one side of the vote is wrong. Attached to the minority
	// ("suspect") side's executions when the vote is decided, and to
	// every voting execution when it ties.
	Disagreement
)

func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case UnexpectedCompileTimeError:
		return "UCTE"
	case UnexpectedAcceptance:
		return "URB"
	case CompilerHang:
		return "hang"
	case CompilerCrash:
		return "crash"
	case ResourceExhausted:
		return "exhausted"
	case Disagreement:
		return "disagreement"
	default:
		// Never mislabel a future verdict: surface it as unknown rather
		// than silently folding it into "crash" counts.
		return fmt.Sprintf("unknown(%d)", int(v))
	}
}

// Judge compares a compilation result against the oracle for the input
// kind. A crash or hang is a bug whatever the derivation. For an
// unknown kind the derivation-based half of the oracle abstains: with
// no ground truth about the program's typing status, neither an accept
// nor a reject can be called a bug (crashes, hangs, and governor
// bailouts are still reported — those are bugs under any derivation).
func Judge(kind InputKind, res *compilers.Result) Verdict {
	if res.Status == compilers.Crashed {
		return CompilerCrash
	}
	if res.Status == compilers.TimedOut {
		return CompilerHang
	}
	if res.Status == compilers.ResourceExhausted {
		return ResourceExhausted
	}
	if !kind.Known() {
		return Pass
	}
	if kind.ExpectCompile() {
		if res.Status == compilers.Rejected {
			return UnexpectedCompileTimeError
		}
		return Pass
	}
	if res.Status == compilers.OK {
		return UnexpectedAcceptance
	}
	return Pass
}
