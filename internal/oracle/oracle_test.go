package oracle_test

import (
	"fmt"
	"testing"

	"repro/internal/compilers"
	"repro/internal/oracle"
)

var allKinds = []oracle.InputKind{
	oracle.Generated, oracle.TEMMutant, oracle.TOMMutant,
	oracle.TEMTOMMutant, oracle.Suite, oracle.REMMutant,
	oracle.Synthesized,
}

var allStatuses = []compilers.Status{
	compilers.OK, compilers.Rejected, compilers.Crashed, compilers.TimedOut,
	compilers.ResourceExhausted,
}

// TestJudgeMatrix pins the oracle over the full InputKind × Status
// space: crashes and hangs are bugs whatever the derivation (notably
// a TimedOut rejection path for an ill-typed mutant is still a hang,
// never a pass), a governor bailout is a deterministic ResourceExhausted
// finding whatever the derivation (an exhausted TOM mutant is not a
// pass: the compiler never reached a verdict to compare), well-typed
// kinds must compile, ill-typed kinds must be rejected.
func TestJudgeMatrix(t *testing.T) {
	want := map[oracle.InputKind]map[compilers.Status]oracle.Verdict{
		oracle.Generated: {
			compilers.OK:                oracle.Pass,
			compilers.Rejected:          oracle.UnexpectedCompileTimeError,
			compilers.Crashed:           oracle.CompilerCrash,
			compilers.TimedOut:          oracle.CompilerHang,
			compilers.ResourceExhausted: oracle.ResourceExhausted,
		},
		oracle.TEMMutant: {
			compilers.OK:                oracle.Pass,
			compilers.Rejected:          oracle.UnexpectedCompileTimeError,
			compilers.Crashed:           oracle.CompilerCrash,
			compilers.TimedOut:          oracle.CompilerHang,
			compilers.ResourceExhausted: oracle.ResourceExhausted,
		},
		oracle.TOMMutant: {
			compilers.OK:                oracle.UnexpectedAcceptance,
			compilers.Rejected:          oracle.Pass,
			compilers.Crashed:           oracle.CompilerCrash,
			compilers.TimedOut:          oracle.CompilerHang,
			compilers.ResourceExhausted: oracle.ResourceExhausted,
		},
		oracle.TEMTOMMutant: {
			compilers.OK:                oracle.UnexpectedAcceptance,
			compilers.Rejected:          oracle.Pass,
			compilers.Crashed:           oracle.CompilerCrash,
			compilers.TimedOut:          oracle.CompilerHang,
			compilers.ResourceExhausted: oracle.ResourceExhausted,
		},
		oracle.Suite: {
			compilers.OK:                oracle.Pass,
			compilers.Rejected:          oracle.UnexpectedCompileTimeError,
			compilers.Crashed:           oracle.CompilerCrash,
			compilers.TimedOut:          oracle.CompilerHang,
			compilers.ResourceExhausted: oracle.ResourceExhausted,
		},
		oracle.REMMutant: {
			compilers.OK:                oracle.Pass,
			compilers.Rejected:          oracle.UnexpectedCompileTimeError,
			compilers.Crashed:           oracle.CompilerCrash,
			compilers.TimedOut:          oracle.CompilerHang,
			compilers.ResourceExhausted: oracle.ResourceExhausted,
		},
		oracle.Synthesized: {
			compilers.OK:                oracle.Pass,
			compilers.Rejected:          oracle.UnexpectedCompileTimeError,
			compilers.Crashed:           oracle.CompilerCrash,
			compilers.TimedOut:          oracle.CompilerHang,
			compilers.ResourceExhausted: oracle.ResourceExhausted,
		},
	}
	for _, kind := range allKinds {
		for _, status := range allStatuses {
			got := oracle.Judge(kind, &compilers.Result{Status: status})
			if got != want[kind][status] {
				t.Errorf("Judge(%s, %s) = %s, want %s", kind, status, got, want[kind][status])
			}
		}
	}
	// The matrix above must be total over both enums, and allKinds must
	// itself be total over the package's kinds (a new kind added to the
	// oracle without a matrix row fails here, not silently).
	if got := oracle.Kinds(); len(got) != len(allKinds) {
		t.Fatalf("oracle defines %d kinds, test covers %d", len(got), len(allKinds))
	}
	if len(want) != len(allKinds) {
		t.Fatalf("matrix covers %d kinds, want %d", len(want), len(allKinds))
	}
	for kind, byStatus := range want {
		if len(byStatus) != len(allStatuses) {
			t.Fatalf("matrix for %s covers %d statuses, want %d", kind, len(byStatus), len(allStatuses))
		}
	}
	// Unknown(N) fallthrough: the derivation-based oracle abstains.
	// Crashes, hangs, and governor bailouts are still bugs (true under
	// any derivation), but an accept or reject of a program whose
	// derivation we cannot name must never be fabricated into a UCTE
	// or URB — the old code defaulted ExpectCompile to true and would
	// have called every rejected unknown-kind program a bug.
	for _, n := range []int{int(oracle.Synthesized) + 1, 99, -1} {
		kind := oracle.InputKind(n)
		if kind.Known() {
			t.Fatalf("InputKind(%d).Known() = true, want false", n)
		}
		if kind.ExpectCompile() {
			t.Errorf("InputKind(%d).ExpectCompile() = true; unknown kinds carry no expectation", n)
		}
		wantUnknown := map[compilers.Status]oracle.Verdict{
			compilers.OK:                oracle.Pass,
			compilers.Rejected:          oracle.Pass,
			compilers.Crashed:           oracle.CompilerCrash,
			compilers.TimedOut:          oracle.CompilerHang,
			compilers.ResourceExhausted: oracle.ResourceExhausted,
		}
		for _, status := range allStatuses {
			got := oracle.Judge(kind, &compilers.Result{Status: status})
			if got != wantUnknown[status] {
				t.Errorf("Judge(unknown(%d), %s) = %s, want %s", n, status, got, wantUnknown[status])
			}
		}
	}
}

// TestKindCapabilityTable pins every per-kind capability decision. The
// answers used to be scattered as inline special cases (pipeline.Mutate
// skipped stress units, difforacle conformance-checked "non-stress"
// units); now each kind answers each question exactly once, here. A new
// kind fails the totality check until a row is added — and adding the
// kind without a kindSpecs entry does not even compile.
func TestKindCapabilityTable(t *testing.T) {
	type caps struct{ expectCompile, mutable, conformance bool }
	want := map[oracle.InputKind]caps{
		oracle.Generated:    {expectCompile: true, mutable: true, conformance: true},
		oracle.TEMMutant:    {expectCompile: true, mutable: false, conformance: true},
		oracle.TOMMutant:    {expectCompile: false, mutable: false, conformance: true},
		oracle.TEMTOMMutant: {expectCompile: false, mutable: false, conformance: true},
		oracle.Suite:        {expectCompile: true, mutable: true, conformance: true},
		oracle.REMMutant:    {expectCompile: true, mutable: false, conformance: true},
		oracle.Synthesized:  {expectCompile: true, mutable: false, conformance: true},
	}
	kinds := oracle.Kinds()
	if len(want) != len(kinds) {
		t.Fatalf("capability table covers %d kinds, oracle defines %d — add an explicit row", len(want), len(kinds))
	}
	for _, k := range kinds {
		w, ok := want[k]
		if !ok {
			t.Fatalf("kind %s has no explicit capability decision", k)
		}
		if !k.Known() {
			t.Errorf("%s.Known() = false for a defined kind", k)
		}
		if got := k.ExpectCompile(); got != w.expectCompile {
			t.Errorf("%s.ExpectCompile() = %v, want %v", k, got, w.expectCompile)
		}
		if got := k.Mutable(); got != w.mutable {
			t.Errorf("%s.Mutable() = %v, want %v", k, got, w.mutable)
		}
		if got := k.ConformanceCheckable(); got != w.conformance {
			t.Errorf("%s.ConformanceCheckable() = %v, want %v", k, got, w.conformance)
		}
	}
	// Unknown kinds answer every capability conservatively.
	for _, n := range []int{len(kinds), 42, -2} {
		k := oracle.InputKind(n)
		if k.Mutable() || k.ConformanceCheckable() || k.ExpectCompile() || k.Known() {
			t.Errorf("InputKind(%d) must answer false to every capability", n)
		}
	}
}

func TestInputKindStrings(t *testing.T) {
	kinds := map[oracle.InputKind]string{
		oracle.Generated:    "generator",
		oracle.TEMMutant:    "TEM",
		oracle.TOMMutant:    "TOM",
		oracle.TEMTOMMutant: "TEM&TOM",
		oracle.Suite:        "suite",
		oracle.REMMutant:    "REM",
		oracle.Synthesized:  "synthesized",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if oracle.TOMMutant.ExpectCompile() || !oracle.Generated.ExpectCompile() {
		t.Error("ExpectCompile wrong")
	}
	verdicts := map[oracle.Verdict]string{
		oracle.Pass:                       "pass",
		oracle.UnexpectedCompileTimeError: "UCTE",
		oracle.UnexpectedAcceptance:       "URB",
		oracle.CompilerCrash:              "crash",
		oracle.CompilerHang:               "hang",
		oracle.ResourceExhausted:          "exhausted",
		oracle.Disagreement:               "disagreement",
	}
	for v, want := range verdicts {
		if v.String() != want {
			t.Errorf("verdict %d = %q, want %q", v, v.String(), want)
		}
	}
}

// TestUnknownValuesNeverMislabel pins the fallthrough fix: a future
// InputKind must not masquerade as "suite" in corpus keys or reports,
// nor a future Verdict as "crash" in figures and the event trace.
func TestUnknownValuesNeverMislabel(t *testing.T) {
	for _, n := range []int{7, 8, 99, -1} {
		if got, want := oracle.InputKind(n).String(), fmt.Sprintf("unknown(%d)", n); got != want {
			t.Errorf("InputKind(%d).String() = %q, want %q", n, got, want)
		}
	}
	for _, n := range []int{7, 42, -3} {
		if got, want := oracle.Verdict(n).String(), fmt.Sprintf("unknown(%d)", n); got != want {
			t.Errorf("Verdict(%d).String() = %q, want %q", n, got, want)
		}
	}
	// The compilers.Status fallthrough got the same treatment when
	// ResourceExhausted was added: a future status reads unknown(N), and
	// the new members render distinctly.
	for _, n := range []int{5, 17, -1} {
		if got, want := compilers.Status(n).String(), fmt.Sprintf("unknown(%d)", n); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", n, got, want)
		}
	}
	if got := compilers.ResourceExhausted.String(); got != "resource exhausted" {
		t.Errorf("ResourceExhausted.String() = %q", got)
	}
	if got := compilers.Crashed.String(); got != "crashed" {
		t.Errorf("Crashed.String() = %q", got)
	}
}
