package oracle_test

import (
	"testing"

	"repro/internal/compilers"
	"repro/internal/oracle"
)

func TestOracleJudgement(t *testing.T) {
	ok := &compilers.Result{Status: compilers.OK}
	rejected := &compilers.Result{Status: compilers.Rejected}
	crashed := &compilers.Result{Status: compilers.Crashed}
	timedOut := &compilers.Result{Status: compilers.TimedOut}
	cases := []struct {
		kind oracle.InputKind
		res  *compilers.Result
		want oracle.Verdict
	}{
		{oracle.Generated, ok, oracle.Pass},
		{oracle.Generated, rejected, oracle.UnexpectedCompileTimeError},
		{oracle.Generated, crashed, oracle.CompilerCrash},
		{oracle.TEMMutant, rejected, oracle.UnexpectedCompileTimeError},
		{oracle.TEMMutant, ok, oracle.Pass},
		{oracle.TOMMutant, rejected, oracle.Pass},
		{oracle.TOMMutant, ok, oracle.UnexpectedAcceptance},
		{oracle.TOMMutant, crashed, oracle.CompilerCrash},
		{oracle.TEMTOMMutant, ok, oracle.UnexpectedAcceptance},
		{oracle.Suite, ok, oracle.Pass},
		// A hang is a reportable bug whatever the derivation — distinct
		// from a crash, and never a pass even for ill-typed inputs whose
		// rejection path wedged.
		{oracle.Generated, timedOut, oracle.CompilerHang},
		{oracle.TEMMutant, timedOut, oracle.CompilerHang},
		{oracle.TOMMutant, timedOut, oracle.CompilerHang},
		{oracle.TEMTOMMutant, timedOut, oracle.CompilerHang},
		{oracle.Suite, timedOut, oracle.CompilerHang},
		{oracle.REMMutant, timedOut, oracle.CompilerHang},
	}
	for _, c := range cases {
		if got := oracle.Judge(c.kind, c.res); got != c.want {
			t.Errorf("Judge(%s, %s) = %s, want %s", c.kind, c.res.Status, got, c.want)
		}
	}
}

func TestInputKindStrings(t *testing.T) {
	kinds := map[oracle.InputKind]string{
		oracle.Generated:    "generator",
		oracle.TEMMutant:    "TEM",
		oracle.TOMMutant:    "TOM",
		oracle.TEMTOMMutant: "TEM&TOM",
		oracle.Suite:        "suite",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if oracle.TOMMutant.ExpectCompile() || !oracle.Generated.ExpectCompile() {
		t.Error("ExpectCompile wrong")
	}
	verdicts := map[oracle.Verdict]string{
		oracle.Pass:                       "pass",
		oracle.UnexpectedCompileTimeError: "UCTE",
		oracle.UnexpectedAcceptance:       "URB",
		oracle.CompilerCrash:              "crash",
		oracle.CompilerHang:               "hang",
	}
	for v, want := range verdicts {
		if v.String() != want {
			t.Errorf("verdict %d = %q, want %q", v, v.String(), want)
		}
	}
}
