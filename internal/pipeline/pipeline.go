// Package pipeline is the streaming execution core of the testing
// campaign: the paper's generate → mutate → compile → judge loop
// (Figure 3, Section 3.5) modelled as composable stages connected by
// bounded channels.
//
// A Pipeline wires a Source (which yields one Unit per seed program),
// a list of parallel Stages (generation, mutation, execution, judging
// — each running a worker pool), and a serial Aggregator that folds
// finished units into a result. Units carry a contiguous sequence
// number; the aggregator reorders them so that, for fixed inputs, the
// fold is bit-for-bit deterministic regardless of worker count or
// channel timing. Every hop observes context cancellation, and every
// stage records Stats (units in/out, busy time, peak queue depth) so a
// run can report where its time goes.
//
// campaign.Run, the coverage experiments, and the CLIs are thin
// adapters over this package; new input sources (corpus replay, API
// synthesis à la Thalia) and new oracles (differential judging) plug
// in as Source/Stage/Aggregator implementations without another copy
// of the loop.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Source produces the units that flow through the pipeline. Next is
// called from a single goroutine and must return units with contiguous
// Seq values starting at 0; it returns false when exhausted. Sources
// should be cheap — expensive materialization (program generation)
// belongs in the first parallel stage.
type Source interface {
	Name() string
	Next() (*Unit, bool)
}

// Stage transforms one unit. Run is called concurrently from a worker
// pool, with a distinct unit per call; it may mutate the unit freely
// but must not retain it. Returning an error cancels the pipeline.
type Stage interface {
	Name() string
	Run(ctx context.Context, u *Unit) error
}

// Aggregator folds finished units into a result. Aggregate is called
// from a single goroutine, in Seq order — the determinism contract:
// two runs over the same source and stages see the same fold sequence
// whatever the worker count.
type Aggregator interface {
	Name() string
	Aggregate(u *Unit)
}

// Discard is an Aggregator that drops every unit, for pipelines whose
// stages accumulate their results as side effects (e.g. coverage
// collectors).
type Discard struct{}

// Name implements Aggregator.
func (Discard) Name() string { return "discard" }

// Aggregate implements Aggregator.
func (Discard) Aggregate(*Unit) {}

// Pipeline connects a source, stages, and an aggregator.
type Pipeline struct {
	Source     Source
	Stages     []Stage
	Aggregator Aggregator
	// AfterAggregate, when set, runs on the aggregator goroutine after
	// each unit is folded — still in Seq order. It is the durability
	// hook: the campaign journal appends the unit's record here, so a
	// snapshot's fold and its journal can never disagree about which
	// units are in. An error cancels the pipeline.
	AfterAggregate func(u *Unit) error
	// Workers is the worker-pool size per stage. 0 means GOMAXPROCS.
	Workers int
	// Buffer is the capacity of each inter-stage channel (the
	// backpressure bound). 0 means 2×Workers.
	Buffer int
	// Stats, when set, receives this run's per-stage statistics as a
	// fresh run scope; several pipelines may share one Stats without
	// folding their counts together. Nil means Run allocates its own.
	Stats *Stats
	// Label names this run's scope in the shared Stats (and in registry
	// instrument names). Empty means an auto-generated "run<N>".
	Label string
	// Metrics, when set, exports every stage instrument of this run
	// through the registry (pipeline.<label>.<stage>.<metric>).
	Metrics *metrics.Registry
}

// Run executes the pipeline until the source is exhausted, a stage
// fails, or ctx is cancelled, and returns the per-stage statistics.
// On cancellation it returns promptly with ctx's error; units in
// flight are abandoned, not drained.
func (p *Pipeline) Run(ctx context.Context) (*Stats, error) {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	buffer := p.Buffer
	if buffer <= 0 {
		buffer = 2 * workers
	}
	if p.Source == nil || p.Aggregator == nil {
		return nil, fmt.Errorf("pipeline: source and aggregator are required")
	}

	stats := p.Stats
	if stats == nil {
		stats = NewStats()
	}
	stats.Bind(p.Metrics)
	run := stats.NewRun(p.Label)
	srcStats := run.Stage(p.Source.Name())
	for _, st := range p.Stages {
		run.Stage(st.Name()) // register in pipeline order for display
	}
	aggStats := run.Stage(p.Aggregator.Name())

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var firstErr errOnce

	// Source: one goroutine feeding the first bounded channel.
	feed := make(chan *Unit, buffer)
	go func() {
		defer close(feed)
		for {
			t0 := time.Now()
			u, ok := p.Source.Next()
			srcStats.addBusy(time.Since(t0))
			if !ok {
				return
			}
			select {
			case feed <- u:
				srcStats.addOut()
			case <-ctx.Done():
				return
			}
		}
	}()

	// Stages: a worker pool per stage, each draining the previous
	// channel and feeding the next.
	in := feed
	for _, stage := range p.Stages {
		st := run.Stage(stage.Name())
		// Bind this stage's channels locally: `in` is reassigned below,
		// and the workers must not observe that reassignment.
		stageIn, stageOut := in, make(chan *Unit, buffer)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				runStage(ctx, stage, st, stageIn, stageOut, cancel, &firstErr)
			}()
		}
		go func(out chan *Unit, wg *sync.WaitGroup) {
			wg.Wait()
			close(out)
		}(stageOut, &wg)
		in = stageOut
	}

	// Aggregator: single goroutine, reordering by Seq so the fold is
	// deterministic however the parallel stages interleaved.
	done := make(chan struct{})
	go func() {
		defer close(done)
		pending := map[int]*Unit{}
		next := 0
		for {
			select {
			case u, ok := <-in:
				if !ok {
					return
				}
				aggStats.observeQueue(len(in) + 1 + len(pending))
				aggStats.addIn()
				pending[u.Seq] = u
				for {
					v := pending[next]
					if v == nil {
						break
					}
					delete(pending, next)
					next++
					t0 := time.Now()
					p.Aggregator.Aggregate(v)
					if p.AfterAggregate != nil {
						if err := p.AfterAggregate(v); err != nil {
							firstErr.set(fmt.Errorf("pipeline: after-aggregate: %w", err))
							aggStats.addBusy(time.Since(t0))
							cancel()
							return
						}
					}
					aggStats.addBusy(time.Since(t0))
					aggStats.addOut()
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	<-done

	if err := firstErr.get(); err != nil {
		return stats, err
	}
	return stats, ctx.Err()
}

// runStage is one stage worker's loop.
func runStage(ctx context.Context, stage Stage, st *StageStats, in <-chan *Unit, out chan<- *Unit, cancel context.CancelFunc, firstErr *errOnce) {
	for {
		select {
		case u, ok := <-in:
			if !ok {
				return
			}
			st.observeQueue(len(in) + 1)
			st.addIn()
			t0 := time.Now()
			err := stage.Run(ctx, u)
			st.addBusy(time.Since(t0))
			if err != nil {
				firstErr.set(fmt.Errorf("pipeline: stage %s: %w", stage.Name(), err))
				cancel()
				return
			}
			select {
			case out <- u:
				st.addOut()
			case <-ctx.Done():
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

// errOnce records the first error set.
type errOnce struct {
	mu  sync.Mutex
	err error
}

func (e *errOnce) set(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *errOnce) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}
