package pipeline

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/compilers"
	"repro/internal/coverage"
	"repro/internal/generator"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/oracle"
)

// seqSource emits n bare units.
type seqSource struct{ n, next int }

func (s *seqSource) Name() string { return "source" }

func (s *seqSource) Next() (*Unit, bool) {
	if s.next >= s.n {
		return nil, false
	}
	u := &Unit{Seq: s.next, Seed: int64(s.next)}
	s.next++
	return u, true
}

// funcStage adapts a function to the Stage interface.
type funcStage struct {
	name string
	fn   func(ctx context.Context, u *Unit) error
}

func (s *funcStage) Name() string                           { return s.name }
func (s *funcStage) Run(ctx context.Context, u *Unit) error { return s.fn(ctx, u) }

// orderAggregator records the Seq order units arrive in.
type orderAggregator struct{ seqs []int }

func (*orderAggregator) Name() string        { return "aggregate" }
func (a *orderAggregator) Aggregate(u *Unit) { a.seqs = append(a.seqs, u.Seq) }

func TestAggregatorSeesSeqOrder(t *testing.T) {
	// A stage whose per-unit latency varies wildly with Seq would
	// deliver units out of order without the reorder buffer.
	stage := &funcStage{name: "jitter", fn: func(_ context.Context, u *Unit) error {
		time.Sleep(time.Duration((u.Seq*7)%5) * time.Millisecond)
		return nil
	}}
	agg := &orderAggregator{}
	p := &Pipeline{
		Source:     &seqSource{n: 100},
		Stages:     []Stage{stage},
		Aggregator: agg,
		Workers:    8,
		Buffer:     4,
	}
	stats, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(agg.seqs) != 100 {
		t.Fatalf("aggregated %d units, want 100", len(agg.seqs))
	}
	for i, s := range agg.seqs {
		if s != i {
			t.Fatalf("unit %d aggregated at position %d: order not deterministic", s, i)
		}
	}
	for _, st := range stats.Stages() {
		switch st.Name() {
		case "source":
			if st.Out() != 100 {
				t.Errorf("source out = %d, want 100", st.Out())
			}
		case "jitter":
			if st.In() != 100 || st.Out() != 100 {
				t.Errorf("jitter in/out = %d/%d, want 100/100", st.In(), st.Out())
			}
			if st.MaxQueue() > int64(p.Buffer)+1 {
				t.Errorf("jitter max queue %d exceeds backpressure bound %d", st.MaxQueue(), p.Buffer+1)
			}
		case "aggregate":
			if st.In() != 100 || st.Out() != 100 {
				t.Errorf("aggregate in/out = %d/%d, want 100/100", st.In(), st.Out())
			}
		}
	}
}

func TestCancellationStopsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	stage := &funcStage{name: "slow", fn: func(ctx context.Context, u *Unit) error {
		if started.Add(1) == 4 {
			cancel()
		}
		select {
		case <-time.After(time.Millisecond):
		case <-ctx.Done():
		}
		return nil
	}}
	p := &Pipeline{
		Source:     &seqSource{n: 100000},
		Stages:     []Stage{stage},
		Aggregator: Discard{},
		Workers:    4,
		Buffer:     2,
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.Run(ctx)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline deadlocked after cancellation")
	}
	if n := started.Load(); n >= 100000 {
		t.Fatalf("pipeline ran all %d units despite cancellation", n)
	}
}

func TestStageErrorCancelsPipeline(t *testing.T) {
	boom := errors.New("boom")
	stage := &funcStage{name: "faulty", fn: func(_ context.Context, u *Unit) error {
		if u.Seq == 3 {
			return boom
		}
		return nil
	}}
	p := &Pipeline{
		Source:     &seqSource{n: 100000},
		Stages:     []Stage{stage},
		Aggregator: Discard{},
		Workers:    2,
	}
	_, err := p.Run(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("run returned %v, want wrapped boom", err)
	}
	if err != nil && !strings.Contains(err.Error(), "faulty") {
		t.Errorf("error should name the failing stage: %v", err)
	}
}

func TestGeneratorSourceAndStages(t *testing.T) {
	src := NewGeneratorSource(7, 3)
	var units []*Unit
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		units = append(units, u)
	}
	if len(units) != 3 {
		t.Fatalf("source yielded %d units, want 3", len(units))
	}
	for i, u := range units {
		if u.Seq != i || u.Seed != 7+int64(i) || u.Kind != oracle.Generated {
			t.Errorf("unit %d: seq=%d seed=%d kind=%v", i, u.Seq, u.Seed, u.Kind)
		}
	}

	gen := &Generate{Config: generator.DefaultConfig()}
	mut := &Mutate{TEM: true, TOM: true, TEMTOM: true, REM: true}
	u := units[0]
	if err := gen.Run(context.Background(), u); err != nil {
		t.Fatal(err)
	}
	if u.Program == nil || u.Builtins == nil {
		t.Fatal("generate stage did not materialize the program")
	}
	if len(u.Inputs) != 1 || u.Inputs[0].Kind != oracle.Generated {
		t.Fatalf("inputs after generate: %+v", u.Inputs)
	}
	if err := mut.Run(context.Background(), u); err != nil {
		t.Fatal(err)
	}
	if len(u.Inputs) < 2 {
		t.Fatalf("mutate stage derived no mutants: %+v", u.Inputs)
	}
	for _, in := range u.Inputs[1:] {
		if in.Kind == oracle.Generated || in.Prog == nil {
			t.Errorf("bad mutant input %+v", in)
		}
	}
}

func TestGenerateAndMutateObserveCancellation(t *testing.T) {
	// Both stages must notice a dead context before (and between)
	// chunky uninterruptible steps, so SIGINT aborts promptly even
	// mid-unit on large programs.
	live := context.Background()
	dead, cancel := context.WithCancel(context.Background())
	cancel()

	gen := &Generate{Config: generator.DefaultConfig()}
	u := &Unit{Seed: 1, Kind: oracle.Generated}
	if err := gen.Run(dead, u); !errors.Is(err, context.Canceled) {
		t.Fatalf("Generate.Run with cancelled ctx = %v, want context.Canceled", err)
	}
	if err := gen.Run(live, u); err != nil {
		t.Fatal(err)
	}
	mut := &Mutate{TEM: true, TOM: true, TEMTOM: true, REM: true}
	if err := mut.Run(dead, u); !errors.Is(err, context.Canceled) {
		t.Fatalf("Mutate.Run with cancelled ctx = %v, want context.Canceled", err)
	}
	if err := mut.Run(live, u); err != nil {
		t.Fatal(err)
	}
}

// panicTarget crashes on every compile: the harness sandbox must keep
// the stage alive.
type panicTarget struct{}

func (panicTarget) Name() string { return "faulty" }

func (panicTarget) Compile(context.Context, *ir.Program, coverage.Recorder) (*compilers.Result, error) {
	panic("compiler bug")
}

func TestExecuteSandboxesTargetPanics(t *testing.T) {
	gen := &Generate{Config: generator.DefaultConfig()}
	u := &Unit{Seed: 3, Kind: oracle.Generated}
	if err := gen.Run(context.Background(), u); err != nil {
		t.Fatal(err)
	}
	exec := &Execute{Targets: []harness.Target{panicTarget{}}}
	if err := exec.Run(context.Background(), u); err != nil {
		t.Fatalf("panicking target errored the stage: %v", err)
	}
	if len(u.Execs) != 1 {
		t.Fatalf("executions = %d, want 1", len(u.Execs))
	}
	e := u.Execs[0]
	if e.Inv.Outcome != harness.Crashed {
		t.Fatalf("outcome = %s, want crashed", e.Inv.Outcome)
	}
	if e.Result == nil || e.Result.Status != compilers.Crashed {
		t.Fatalf("crash result not synthesized: %+v", e.Result)
	}
	if err := (Judge{}).Run(context.Background(), u); err != nil {
		t.Fatal(err)
	}
	if u.Execs[0].Verdict != oracle.CompilerCrash {
		t.Fatalf("verdict = %s, want crash", u.Execs[0].Verdict)
	}
}

func TestStatsString(t *testing.T) {
	s := NewStats()
	st := s.Stage("compile")
	st.addIn()
	st.addBusy(3 * time.Millisecond)
	st.observeQueue(5)
	st.addOut()
	out := s.String()
	if !strings.Contains(out, "compile") || !strings.Contains(out, "stage") {
		t.Errorf("stats rendering:\n%s", out)
	}
	if st.In() != 1 || st.Out() != 1 || st.MaxQueue() != 5 || st.Busy() != 3*time.Millisecond {
		t.Errorf("counters: in=%d out=%d q=%d busy=%v", st.In(), st.Out(), st.MaxQueue(), st.Busy())
	}
	if st.Service().Count != 1 {
		t.Errorf("service histogram count = %d, want 1", st.Service().Count)
	}
}

func TestStatsRunScopesDoNotFoldTogether(t *testing.T) {
	// Two pipelines sharing one Stats must not merge same-named stage
	// buckets: each run gets its own scope, and the rendered table shows
	// run-prefixed rows plus a totals row.
	s := NewStats()
	a := s.NewRun("suite")
	b := s.NewRun("random")
	a.Stage("execute").addIn()
	a.Stage("execute").addIn()
	b.Stage("execute").addIn()
	if got := a.Stage("execute").In(); got != 2 {
		t.Errorf("suite/execute in = %d, want 2", got)
	}
	if got := b.Stage("execute").In(); got != 1 {
		t.Errorf("random/execute in = %d, want 1", got)
	}
	if got := len(s.Stages()); got != 2 {
		t.Errorf("Stages() = %d buckets, want 2", got)
	}
	out := s.String()
	for _, want := range []string{"suite/execute", "random/execute", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats table missing %q:\n%s", want, out)
		}
	}
}

func TestStatsTotalsRow(t *testing.T) {
	s := NewStats()
	s.Stage("generate").addIn()
	s.Stage("execute").addIn()
	s.Stage("execute").addIn()
	out := s.String()
	if !strings.Contains(out, "total") {
		t.Errorf("multi-stage table missing totals row:\n%s", out)
	}
	// A single-row table needs no totals line.
	one := NewStats()
	one.Stage("generate").addIn()
	if strings.Contains(one.String(), "total") {
		t.Errorf("single-stage table should not have a totals row:\n%s", one.String())
	}
}

func TestSkipSourceMarksRecoveredAndStagesPassThrough(t *testing.T) {
	// Seqs 0-4 are "already journaled"; the wrapper must mark them
	// Recovered while preserving Seq contiguity, and every stage must
	// leave them untouched.
	src := &SkipSource{
		Inner: NewGeneratorSource(100, 10),
		Done:  func(seq int) bool { return seq < 5 },
	}
	gen := &Generate{Config: generator.DefaultConfig()}
	mut := &Mutate{TEM: true}
	exec := &Execute{Targets: []harness.Target{panicTarget{}}}
	agg := &orderAggregator{}
	var recovered atomic.Int64
	p := &Pipeline{
		Source:     src,
		Stages:     []Stage{gen, mut, exec, Judge{}},
		Aggregator: agg,
		AfterAggregate: func(u *Unit) error {
			if u.Recovered {
				recovered.Add(1)
				if u.Program != nil || len(u.Inputs) != 0 || len(u.Execs) != 0 {
					t.Errorf("recovered unit %d was materialized: prog=%v inputs=%d execs=%d",
						u.Seq, u.Program != nil, len(u.Inputs), len(u.Execs))
				}
			} else if u.Program == nil || len(u.Execs) == 0 {
				t.Errorf("live unit %d not materialized", u.Seq)
			}
			return nil
		},
		Workers: 4,
	}
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(agg.seqs) != 10 {
		t.Fatalf("aggregated %d units, want 10", len(agg.seqs))
	}
	for i, s := range agg.seqs {
		if s != i {
			t.Fatalf("unit %d aggregated at position %d", s, i)
		}
	}
	if recovered.Load() != 5 {
		t.Fatalf("recovered units folded = %d, want 5", recovered.Load())
	}
}

func TestAfterAggregateRunsInSeqOrder(t *testing.T) {
	var seqs []int
	p := &Pipeline{
		Source: &seqSource{n: 50},
		Stages: []Stage{&funcStage{name: "jitter", fn: func(_ context.Context, u *Unit) error {
			time.Sleep(time.Duration((u.Seq*3)%4) * time.Millisecond)
			return nil
		}}},
		Aggregator:     &orderAggregator{},
		AfterAggregate: func(u *Unit) error { seqs = append(seqs, u.Seq); return nil },
		Workers:        8,
	}
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(seqs) != 50 {
		t.Fatalf("hook ran %d times, want 50", len(seqs))
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("hook saw seq %d at position %d", s, i)
		}
	}
}

func TestAfterAggregateErrorCancelsPipeline(t *testing.T) {
	sentinel := errors.New("journal full")
	p := &Pipeline{
		Source:     &seqSource{n: 1000},
		Stages:     []Stage{&funcStage{name: "noop", fn: func(context.Context, *Unit) error { return nil }}},
		Aggregator: &orderAggregator{},
		AfterAggregate: func(u *Unit) error {
			if u.Seq == 3 {
				return sentinel
			}
			return nil
		},
		Workers: 4,
	}
	_, err := p.Run(context.Background())
	if !errors.Is(err, sentinel) {
		t.Fatalf("run error = %v, want wrapped sentinel", err)
	}
}
