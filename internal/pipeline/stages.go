package pipeline

import (
	"context"
	"math/rand"
	"sync"

	"repro/internal/compilers"
	"repro/internal/coverage"
	"repro/internal/difforacle"
	"repro/internal/generator"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/mutation"
	"repro/internal/oracle"
	"repro/internal/types"
)

// Input is one test program tagged with its derivation, the pair the
// oracle needs to fix the expected compiler behaviour (Section 3).
type Input struct {
	Kind oracle.InputKind
	Prog *ir.Program
}

// Execution is the outcome of compiling one Input with one compiler,
// plus the Judge stage's verdict.
type Execution struct {
	Compiler string
	Kind     oracle.InputKind
	// Input is the index into the unit's Inputs this execution compiled,
	// so the differential Judge can group the per-compiler executions of
	// one program without relying on Kind uniqueness.
	Input   int
	Result  *compilers.Result
	Verdict oracle.Verdict
	// Inv is the harness's record of the compile: how it ended, retries
	// spent, flaky-verdict flag, captured stack on a sandboxed panic.
	Inv harness.Invocation
}

// Gap records a compile that produced no judgeable result — skipped by
// an open circuit breaker or abandoned after retries — so the campaign
// can account for the hole instead of silently shrinking.
type Gap struct {
	Compiler string
	Kind     oracle.InputKind
	Inv      harness.Invocation
}

// Unit is one schedulable work item: a seed program and everything the
// stages derive from it. Units flow through the pipeline by pointer;
// exactly one stage owns a unit at a time, so stages mutate it without
// locking.
type Unit struct {
	// Seq is the unit's position in source order; the aggregator folds
	// units in Seq order. Sources emit contiguous Seqs from 0.
	Seq int
	// Seed drives generation and mutation randomness for this unit.
	Seed int64
	// Kind is the derivation of the base program (Generated, Suite, ...).
	Kind oracle.InputKind
	// Program is the base program; nil until the Generate stage
	// materializes it for generator-backed sources.
	Program *ir.Program
	// Builtins is the type universe the program was built against,
	// needed by the mutation stage.
	Builtins *types.Builtins
	// Inputs are the programs to execute: the base program plus mutants.
	Inputs []Input
	// Execs are the per-(input, compiler) outcomes.
	Execs []Execution
	// Gaps are the compiles that yielded no result (quarantined by a
	// circuit breaker, or errored past the retry budget).
	Gaps []Gap
	// Diffs are the verdict-vector disagreements the differential Judge
	// found in this unit (compiler votes and translator conformance);
	// empty under the derivation-based oracle.
	Diffs []Diff
	// Repairs counts TEM verification-pass rollbacks in this unit.
	Repairs int
	// Stress marks a unit whose base program came from the pathological
	// stress generator. Stress programs exist to exercise the resource
	// governor; the Mutate stage skips them, because mutation's type
	// graph analysis runs unbudgeted and a pathological program would
	// stall it.
	Stress bool
	// Injected tallies the chaos faults injected into this unit's
	// compiles, drained per unit by the Execute stage so the aggregator
	// (and the campaign journal) owns injected ground truth in Seq
	// order rather than as one end-of-run global read.
	Injected map[string]harness.InjectionCounts
	// Recovered marks a unit whose results a previous run already
	// folded and journaled: it flows through the pipeline untouched —
	// preserving Seq contiguity for the aggregator's reorder buffer —
	// and every stage and the fold skip it.
	Recovered bool
}

// GeneratorSource yields n empty units seeded base, base+1, ... — one
// per program the campaign will generate. Generation itself happens in
// the Generate stage so it parallelizes across workers.
type GeneratorSource struct {
	base int64
	n    int
	next int
}

// NewGeneratorSource returns a source of n generator-backed units.
func NewGeneratorSource(base int64, n int) *GeneratorSource {
	return &GeneratorSource{base: base, n: n}
}

// Name implements Source.
func (s *GeneratorSource) Name() string { return "source" }

// Next implements Source.
func (s *GeneratorSource) Next() (*Unit, bool) {
	if s.next >= s.n {
		return nil, false
	}
	u := &Unit{Seq: s.next, Seed: s.base + int64(s.next), Kind: oracle.Generated}
	s.next++
	return u, true
}

// SkipSource wraps a Source for crash recovery: units whose Seq the
// Done predicate claims are marked Recovered and skip all stage work,
// while still flowing through so Seqs stay contiguous. Done must be
// safe to call from the source goroutine for the run's duration.
type SkipSource struct {
	Inner Source
	Done  func(seq int) bool
}

// Name implements Source.
func (s *SkipSource) Name() string { return s.Inner.Name() }

// Next implements Source.
func (s *SkipSource) Next() (*Unit, bool) {
	u, ok := s.Inner.Next()
	if ok && s.Done != nil && s.Done(u.Seq) {
		u.Recovered = true
	}
	return u, ok
}

// ProgramSource yields pre-built programs (a compiler's test suite, a
// replay corpus) as units of the given kind.
type ProgramSource struct {
	kind  oracle.InputKind
	progs []*ir.Program
	next  int
}

// NewProgramSource returns a source over the given programs.
func NewProgramSource(kind oracle.InputKind, progs []*ir.Program) *ProgramSource {
	return &ProgramSource{kind: kind, progs: progs}
}

// Name implements Source.
func (s *ProgramSource) Name() string { return "source" }

// Next implements Source.
func (s *ProgramSource) Next() (*Unit, bool) {
	if s.next >= len(s.progs) {
		return nil, false
	}
	u := &Unit{Seq: s.next, Seed: int64(s.next), Kind: s.kind, Program: s.progs[s.next]}
	s.next++
	return u, true
}

// Produced is one program a Producer materialized for a unit: the
// program, the type universe it was built against, and the derivation
// kind the oracle should judge it under.
type Produced struct {
	Kind     oracle.InputKind
	Program  *ir.Program
	Builtins *types.Builtins
}

// Producer is a pluggable program source for the Generate stage: an
// alternative way to materialize a unit's base program from its seed
// (the api-driven synthesizer today; coverage-guided seed schedulers
// are the planned next tenant). Claims must be a pure function of the
// seed — every shard, worker, and resumed run re-asks it, and they
// must all get the same answer — and Produce must be deterministic in
// the seed. Producers are consulted in order; the first claimant wins
// and the default grammar generator takes the rest.
type Producer interface {
	// Name identifies the producer in stage traces.
	Name() string
	// Claims reports whether this producer materializes the given seed.
	Claims(seed int64) bool
	// Produce builds the program for a claimed seed.
	Produce(seed int64) Produced
}

// Generate materializes each unit's base program (Section 3.2): units
// without a program ask each Producer in turn, then fall back to the
// seed-driven grammar generator; units that already carry one (corpus
// sources) pass through. Either way the base program becomes the
// unit's first Input.
type Generate struct {
	Config generator.Config
	// Producers are consulted, in order, before the default generator.
	// A producer that claims the unit's seed supplies the program, the
	// builtins, and the input kind.
	Producers []Producer
}

// Name implements Stage.
func (*Generate) Name() string { return "generate" }

// Run implements Stage. Generation of a large program is the
// pipeline's chunkiest uninterruptible step, so the stage checks for
// cancellation before starting a unit.
func (g *Generate) Run(ctx context.Context, u *Unit) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if u.Recovered {
		return nil
	}
	if u.Program == nil {
		if p := g.claimant(u.Seed); p != nil {
			out := p.Produce(u.Seed)
			u.Program = out.Program
			u.Builtins = out.Builtins
			u.Kind = out.Kind
		} else {
			gen := generator.New(g.Config.WithSeed(u.Seed))
			if g.Config.StressSeed(u.Seed) {
				u.Program = gen.GenerateStress()
				u.Stress = true
			} else {
				u.Program = gen.Generate()
			}
			u.Builtins = gen.Builtins()
		}
	}
	u.Inputs = append(u.Inputs, Input{Kind: u.Kind, Prog: u.Program})
	return nil
}

// claimant returns the first producer claiming the seed, if any.
func (g *Generate) claimant(seed int64) Producer {
	for _, p := range g.Producers {
		if p != nil && p.Claims(seed) {
			return p
		}
	}
	return nil
}

// Mutate derives mutants from the unit's base program: TEM (type
// erasure, Algorithm 2), TOM (type overwriting), TOM∘TEM (the Figure
// 7c "TEM & TOM" row), and REM (the resolution mutation). Each flag
// enables one mutant kind; derivation seeds match the historical
// campaign so results are replayable.
type Mutate struct {
	TEM    bool
	TOM    bool
	TEMTOM bool
	REM    bool
}

// Name implements Stage.
func (*Mutate) Name() string { return "mutate" }

// Mutable reports whether the Mutate stage may derive mutants from
// this unit. The kind-level half is the oracle's capability table
// (oracle.InputKind.Mutable — e.g. synthesized programs and mutants
// themselves are never re-mutated); the unit-level half is the stress
// flag, because mutation's type graph analysis runs unbudgeted and a
// pathological program would stall it whatever its kind.
func (u *Unit) Mutable() bool {
	return !u.Stress && u.Kind.Mutable()
}

// Run implements Stage. Each mutation walks the whole program, so the
// stage checks for cancellation between mutants: SIGINT aborts promptly
// even mid-unit on large programs.
func (m *Mutate) Run(ctx context.Context, u *Unit) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if u.Recovered || !u.Mutable() {
		return nil
	}
	b := u.Builtins
	if b == nil {
		b = types.NewBuiltins()
		u.Builtins = b
	}
	tem, temReport := mutation.TypeErasure(u.Program, b)
	u.Repairs += temReport.RepairedMethods
	if m.TEM && temReport.Changed() {
		u.Inputs = append(u.Inputs, Input{Kind: oracle.TEMMutant, Prog: tem})
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if m.TOM {
		if tom, _ := mutation.TypeOverwriting(u.Program, b, rand.New(rand.NewSource(u.Seed))); tom != nil {
			u.Inputs = append(u.Inputs, Input{Kind: oracle.TOMMutant, Prog: tom})
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if m.TEMTOM {
		// TOM on top of TEM reaches the CombinedClass bugs.
		if temtom, _ := mutation.TypeOverwriting(tem, b, rand.New(rand.NewSource(u.Seed^0x5bd1e995))); temtom != nil {
			u.Inputs = append(u.Inputs, Input{Kind: oracle.TEMTOMMutant, Prog: temtom})
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if m.REM {
		// The resolution mutation (the paper's future-work extension):
		// decoy overloads stress overload resolution while preserving
		// well-typedness.
		if rem, _ := mutation.ResolutionMutation(u.Program, b, rand.New(rand.NewSource(u.Seed^0x9e3779b9))); rem != nil {
			u.Inputs = append(u.Inputs, Input{Kind: oracle.REMMutant, Prog: rem})
		}
	}
	return nil
}

// Execute compiles every input with every compiler under test, each
// compile running through the resilient harness (sandbox, watchdog,
// retries, circuit breaker). An optional Coverage selector routes probe
// events to a per-input-kind recorder (the RQ3/RQ4 experiments);
// recorders must be safe for concurrent use, as Collector is.
type Execute struct {
	Compilers []*compilers.Compiler
	Coverage  func(kind oracle.InputKind) coverage.Recorder
	// Harness hardens each compile; nil means the zero harness
	// (sandboxed invocation, no watchdog/retries/breaker).
	Harness *harness.Harness
	// Targets overrides Compilers as the things to invoke — the hook
	// where a chaos wrapper (or a future subprocess-backed compiler)
	// slots in. When nil, Compilers are wrapped directly.
	Targets []harness.Target

	initOnce sync.Once
	h        *harness.Harness
	targets  []harness.Target
}

// Name implements Stage.
func (*Execute) Name() string { return "execute" }

// init resolves the harness and target list once, shared by all
// workers; chaos wrappers keep their injection counters across units
// because the same Target values are reused for every compile.
func (e *Execute) init() {
	e.initOnce.Do(func() {
		e.h = e.Harness
		if e.h == nil {
			e.h = harness.New(harness.Options{})
		}
		e.targets = e.Targets
		if e.targets == nil {
			for _, c := range e.Compilers {
				e.targets = append(e.targets, harness.WrapCompiler(c))
			}
		}
	})
}

// Run implements Stage. A compile that yields a result — including a
// sandbox-synthesized crash or watchdog timeout — becomes an Execution
// for the Judge stage; one that yields none (quarantined, errored past
// retries) is recorded as a Gap so the report can account for the hole.
func (e *Execute) Run(ctx context.Context, u *Unit) error {
	if u.Recovered {
		return nil
	}
	e.init()
	for i, in := range u.Inputs {
		var cov coverage.Recorder
		if e.Coverage != nil {
			cov = e.Coverage(in.Kind)
		}
		for _, t := range e.targets {
			if err := ctx.Err(); err != nil {
				return err
			}
			inv := e.h.Compile(ctx, t, in.Prog, cov, harness.Key{Unit: u.Seed, Input: i})
			switch inv.Outcome {
			case harness.Aborted:
				return ctx.Err()
			case harness.Quarantined, harness.Errored:
				u.Gaps = append(u.Gaps, Gap{Compiler: t.Name(), Kind: in.Kind, Inv: inv})
			default:
				u.Execs = append(u.Execs, Execution{
					Compiler: t.Name(),
					Kind:     in.Kind,
					Input:    i,
					Result:   inv.Result,
					Inv:      inv,
				})
			}
		}
	}
	// Drain per-unit chaos injections (if any target is a chaos wrapper)
	// so the aggregator folds injected ground truth in Seq order.
	for _, t := range e.targets {
		d, ok := t.(interface {
			DrainUnit(int64) harness.InjectionCounts
		})
		if !ok {
			continue
		}
		counts := d.DrainUnit(u.Seed)
		if counts.Total() == 0 {
			continue
		}
		if u.Injected == nil {
			u.Injected = map[string]harness.InjectionCounts{}
		}
		u.Injected[t.Name()] = counts
	}
	return nil
}

// Diff records one verdict-vector disagreement the differential Judge
// found: the normalized per-compiler vector (or per-translator
// conformance vector), the suspect attribution, and the disagreeing
// pairs for the report's compiler×compiler matrix.
type Diff struct {
	// Kind is the derivation of the input whose vector split.
	Kind oracle.InputKind
	// Translators marks a translator-conformance disagreement: the
	// samples grade renderings of the three translate backends rather
	// than compiler verdicts.
	Translators bool
	// Samples is the verdict vector, in execution (target) order.
	Samples []difforacle.Sample
	// Suspects is the minority side of the vote, sorted; empty for a tie.
	Suspects []string
	// Pairs lists the disagreeing pairs, each and all sorted.
	Pairs [][2]string
}

// Judge classifies every execution against the test oracle (Figure 3's
// output checker). By default that is the derivation-based oracle; with
// Differential set it is the cross-compiler differential oracle of
// internal/difforacle instead. Judging is a separate stage exactly so
// the two oracles swap without touching execution.
type Judge struct {
	// Differential switches from derivation-fixed expectations to
	// ground-truth-free cross-compiler vote comparison: per input, the
	// per-compiler results normalize into a verdict vector, a split
	// accept/reject vote marks the minority executions with
	// oracle.Disagreement, and the three translate backends' renderings
	// of the same program are checked for verdict equivalence under one
	// shared reference check. Crash/hang/exhausted results keep their
	// status verdicts in both modes.
	Differential bool
}

// Name implements Stage.
func (Judge) Name() string { return "judge" }

// Run implements Stage.
func (j Judge) Run(_ context.Context, u *Unit) error {
	if !j.Differential {
		for i := range u.Execs {
			u.Execs[i].Verdict = oracle.Judge(u.Execs[i].Kind, u.Execs[i].Result)
		}
		return nil
	}
	// Differential mode: status outcomes (crash, hang, exhausted) are
	// bugs or findings without any vote; accept/reject becomes a vote.
	lanes := make([]difforacle.Lane, len(u.Execs))
	byInput := map[int][]int{}
	for i := range u.Execs {
		e := &u.Execs[i]
		lanes[i] = difforacle.Normalize(e.Result)
		e.Verdict = laneVerdict(lanes[i])
		byInput[e.Input] = append(byInput[e.Input], i)
	}
	for ii, in := range u.Inputs {
		idxs := byInput[ii]
		samples := make([]difforacle.Sample, 0, len(idxs))
		for _, i := range idxs {
			samples = append(samples, difforacle.Sample{
				Compiler: u.Execs[i].Compiler,
				Lane:     lanes[i],
			})
		}
		if an := difforacle.Analyze(samples); an.Disagree {
			suspect := map[string]bool{}
			for _, s := range an.Suspects {
				suspect[s] = true
			}
			for _, i := range idxs {
				if !lanes[i].Votes() {
					continue
				}
				// A decided vote marks the minority; a tie marks every
				// voting lane — someone is wrong, we cannot say who.
				if len(an.Suspects) == 0 || suspect[u.Execs[i].Compiler] {
					u.Execs[i].Verdict = oracle.Disagreement
				}
			}
			u.Diffs = append(u.Diffs, Diff{
				Kind: in.Kind, Samples: an.Samples,
				Suspects: an.Suspects, Pairs: an.Pairs,
			})
		}
		// Translator conformance rides the same oracle. The kind-level
		// gate is the oracle's capability table; stress units are also
		// skipped, because the Java backend re-runs the reference
		// checker unbudgeted and a pathological program would stall it
		// (the same reason Mutate skips stress units).
		if u.Stress || !in.Kind.ConformanceCheckable() {
			continue
		}
		if an := difforacle.AnalyzeConformance(difforacle.CheckTranslators(in.Prog)); an.Disagree {
			u.Diffs = append(u.Diffs, Diff{
				Kind: in.Kind, Translators: true, Samples: an.Samples,
				Suspects: an.Suspects, Pairs: an.Pairs,
			})
		}
	}
	return nil
}

// laneVerdict maps a normalized lane onto its derivation-independent
// verdict: crash/hang/exhausted lanes are findings in their own right,
// while accept/reject lanes stay Pass until the differential vote says
// otherwise.
func laneVerdict(l difforacle.Lane) oracle.Verdict {
	switch l {
	case difforacle.Crash:
		return oracle.CompilerCrash
	case difforacle.Hang:
		return oracle.CompilerHang
	case difforacle.Exhausted:
		return oracle.ResourceExhausted
	default:
		return oracle.Pass
	}
}
