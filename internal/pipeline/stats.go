package pipeline

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// StageStats instruments one stage (or the source/aggregator): units in
// and out, cumulative busy time across workers, per-call service-time
// histogram, and the peak depth of the stage's input queue. The
// instruments are the shared metrics types, so worker pools update them
// without contention and a bound registry exports them live.
type StageStats struct {
	name  string
	order int

	in       *metrics.Counter
	out      *metrics.Counter
	busy     *metrics.Counter // nanoseconds
	maxQueue *metrics.Gauge
	service  *metrics.Histogram
}

// newStageStats builds a stage's instruments, drawing them from reg
// under prefix when a registry is bound (a nil reg hands out
// unregistered instruments).
func newStageStats(name, prefix string, order int, reg *metrics.Registry) *StageStats {
	return &StageStats{
		name:     name,
		order:    order,
		in:       reg.Counter(prefix + ".in"),
		out:      reg.Counter(prefix + ".out"),
		busy:     reg.Counter(prefix + ".busy_ns"),
		maxQueue: reg.Gauge(prefix + ".max_queue"),
		service:  reg.Histogram(prefix + ".service_ns"),
	}
}

// Name returns the stage name.
func (s *StageStats) Name() string { return s.name }

// In returns how many units the stage received.
func (s *StageStats) In() int64 { return s.in.Load() }

// Out returns how many units the stage emitted.
func (s *StageStats) Out() int64 { return s.out.Load() }

// Busy returns the cumulative time workers spent inside the stage.
func (s *StageStats) Busy() time.Duration { return time.Duration(s.busy.Load()) }

// MaxQueue returns the peak observed input-queue depth.
func (s *StageStats) MaxQueue() int64 { return s.maxQueue.Load() }

// Service returns the stage's per-call service-time snapshot.
func (s *StageStats) Service() metrics.HistogramSnapshot { return s.service.Snapshot() }

func (s *StageStats) addIn()  { s.in.Inc() }
func (s *StageStats) addOut() { s.out.Inc() }

func (s *StageStats) addBusy(d time.Duration) {
	s.busy.Add(int64(d))
	s.service.ObserveDuration(d)
}

func (s *StageStats) observeQueue(depth int) { s.maxQueue.SetMax(int64(depth)) }

// RunStats is one pipeline run's per-stage statistics. Each Pipeline.Run
// gets its own RunStats, so two pipelines sharing a Stats (coverage
// experiments, a campaign's resume re-emission) never fold unrelated
// runs into one row.
type RunStats struct {
	label string
	reg   *metrics.Registry

	mu     sync.Mutex
	stages map[string]*StageStats
}

// Label returns the run's display label.
func (r *RunStats) Label() string { return r.label }

// Stage returns (registering if needed) this run's stats bucket for a
// stage name. Stages sharing a name within one run share a bucket.
func (r *RunStats) Stage(name string) *StageStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stages[name]
	if st == nil {
		prefix := "pipeline." + r.label + "." + name
		st = newStageStats(name, prefix, len(r.stages), r.reg)
		r.stages[name] = st
	}
	return st
}

// Stages returns the run's per-stage stats in registration order.
func (r *RunStats) Stages() []*StageStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*StageStats, 0, len(r.stages))
	for _, st := range r.stages {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].order < out[j].order })
	return out
}

// Stats collects per-stage statistics, scoped per pipeline run. A Stats
// may be shared across several Pipeline.Run calls — each run gets a
// fresh RunStats scope — and may be bound to a metrics.Registry, which
// then exports every stage instrument live.
type Stats struct {
	mu   sync.Mutex
	runs []*RunStats
	reg  *metrics.Registry
}

// NewStats returns an empty Stats.
func NewStats() *Stats { return &Stats{} }

// Bind attaches a metrics registry: stage instruments created after the
// bind are drawn from it (named pipeline.<run>.<stage>.<metric>).
func (s *Stats) Bind(reg *metrics.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reg == nil {
		s.reg = reg
	}
}

// NewRun opens a fresh per-run scope. An empty label is replaced with
// "run<N>" so registry names (and display rows) stay distinct across
// runs sharing this Stats.
func (s *Stats) NewRun(label string) *RunStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if label == "" {
		label = fmt.Sprintf("run%d", len(s.runs))
	}
	r := &RunStats{label: label, reg: s.reg, stages: map[string]*StageStats{}}
	s.runs = append(s.runs, r)
	return r
}

// Runs returns the per-run scopes in creation order.
func (s *Stats) Runs() []*RunStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*RunStats(nil), s.runs...)
}

// Stage returns the stats bucket for a stage name in the default run
// scope, creating the scope on first use. Single-run callers (and
// tests) can treat a Stats as one flat namespace; Pipeline.Run always
// opens an explicit scope instead.
func (s *Stats) Stage(name string) *StageStats {
	s.mu.Lock()
	if len(s.runs) == 0 {
		s.runs = append(s.runs, &RunStats{label: "run0", reg: s.reg, stages: map[string]*StageStats{}})
	}
	r := s.runs[0]
	s.mu.Unlock()
	return r.Stage(name)
}

// Stages returns every run's per-stage stats, runs in creation order,
// stages in registration (pipeline) order within each run.
func (s *Stats) Stages() []*StageStats {
	var out []*StageStats
	for _, r := range s.Runs() {
		out = append(out, r.Stages()...)
	}
	return out
}

// String renders the stats as an aligned table: one row per stage, rows
// namespaced by run label when more than one run is present, and a
// totals row summing units and busy time across all rows.
func (s *Stats) String() string {
	runs := s.Runs()
	multi := len(runs) > 1
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %8s %12s %10s\n", "stage", "in", "out", "busy", "max queue")
	var totalIn, totalOut, maxQ int64
	var totalBusy time.Duration
	rows := 0
	for _, r := range runs {
		for _, st := range r.Stages() {
			name := st.Name()
			if multi {
				name = r.Label() + "/" + name
			}
			fmt.Fprintf(&b, "%-24s %8d %8d %12s %10d\n",
				name, st.In(), st.Out(), st.Busy().Round(time.Microsecond), st.MaxQueue())
			totalIn += st.In()
			totalOut += st.Out()
			totalBusy += st.Busy()
			if st.MaxQueue() > maxQ {
				maxQ = st.MaxQueue()
			}
			rows++
		}
	}
	if rows > 1 {
		fmt.Fprintf(&b, "%-24s %8d %8d %12s %10d\n",
			"total", totalIn, totalOut, totalBusy.Round(time.Microsecond), maxQ)
	}
	return b.String()
}
