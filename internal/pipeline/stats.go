package pipeline

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// StageStats instruments one stage (or the source/aggregator): units
// in and out, cumulative busy time across workers, and the peak depth
// of the stage's input queue. Counters are atomics so worker pools
// update them without contention.
type StageStats struct {
	name     string
	order    int
	in       atomic.Int64
	out      atomic.Int64
	busy     atomic.Int64 // nanoseconds
	maxQueue atomic.Int64
}

// Name returns the stage name.
func (s *StageStats) Name() string { return s.name }

// In returns how many units the stage received.
func (s *StageStats) In() int64 { return s.in.Load() }

// Out returns how many units the stage emitted.
func (s *StageStats) Out() int64 { return s.out.Load() }

// Busy returns the cumulative time workers spent inside the stage.
func (s *StageStats) Busy() time.Duration { return time.Duration(s.busy.Load()) }

// MaxQueue returns the peak observed input-queue depth.
func (s *StageStats) MaxQueue() int64 { return s.maxQueue.Load() }

func (s *StageStats) addIn()                  { s.in.Add(1) }
func (s *StageStats) addOut()                 { s.out.Add(1) }
func (s *StageStats) addBusy(d time.Duration) { s.busy.Add(int64(d)) }

func (s *StageStats) observeQueue(depth int) {
	d := int64(depth)
	for {
		cur := s.maxQueue.Load()
		if d <= cur || s.maxQueue.CompareAndSwap(cur, d) {
			return
		}
	}
}

// Stats collects per-stage statistics for one pipeline run.
type Stats struct {
	mu     sync.Mutex
	stages map[string]*StageStats
}

// NewStats returns an empty Stats.
func NewStats() *Stats {
	return &Stats{stages: map[string]*StageStats{}}
}

// Stage returns (registering if needed) the stats bucket for a stage
// name. Stages sharing a name share a bucket.
func (s *Stats) Stage(name string) *StageStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stages[name]
	if st == nil {
		st = &StageStats{name: name, order: len(s.stages)}
		s.stages[name] = st
	}
	return st
}

// Stages returns the per-stage stats in registration (pipeline) order.
func (s *Stats) Stages() []*StageStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*StageStats, 0, len(s.stages))
	for _, st := range s.stages {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].order < out[j].order })
	return out
}

// String renders the stats as an aligned table, one row per stage.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s %12s %10s\n", "stage", "in", "out", "busy", "max queue")
	for _, st := range s.Stages() {
		fmt.Fprintf(&b, "%-12s %8d %8d %12s %10d\n",
			st.Name(), st.In(), st.Out(), st.Busy().Round(time.Microsecond), st.MaxQueue())
	}
	return b.String()
}
