// Package reduce implements greedy delta-debugging test-case reduction
// over IR programs (Section 4.1: UCTE and URB cases are easy to reduce
// from the diagnostics; crash cases "could benefit from an automated
// program reducer" — this is that reducer).
//
// Reduce repeatedly applies shrinking transformations — dropping top-level
// declarations, dropping class members, collapsing conditionals, deleting
// block statements, and replacing function bodies with constants — keeping
// each edit only if the caller's interestingness predicate still holds.
package reduce

import (
	"repro/internal/ir"
	"repro/internal/types"
)

// Interesting reports whether a candidate still exhibits the behaviour
// being reduced (e.g. "this compiler still rejects it" or "this seeded
// bug still fires").
type Interesting func(*ir.Program) bool

// Reduce shrinks p while keep(p) holds, returning the smallest program
// found. The input program is never modified.
func Reduce(p *ir.Program, keep Interesting) *ir.Program {
	cur := ir.CloneProgram(p)
	if !keep(cur) {
		return cur // nothing to preserve; do not loop
	}
	for round := 0; round < 32; round++ {
		shrunk := false
		if next, ok := dropTopLevel(cur, keep); ok {
			cur, shrunk = next, true
		}
		if next, ok := dropClassMembers(cur, keep); ok {
			cur, shrunk = next, true
		}
		if next, ok := simplifyBodies(cur, keep); ok {
			cur, shrunk = next, true
		}
		if !shrunk {
			break
		}
	}
	return cur
}

// dropTopLevel removes top-level declarations one at a time.
func dropTopLevel(p *ir.Program, keep Interesting) (*ir.Program, bool) {
	changed := false
	cur := p
	for i := 0; i < len(cur.Decls); {
		candidate := ir.CloneProgram(cur)
		candidate.Decls = append(candidate.Decls[:i:i], candidate.Decls[i+1:]...)
		if keep(candidate) {
			cur = candidate
			changed = true
			continue
		}
		i++
	}
	return cur, changed
}

// dropClassMembers removes methods and fields from classes.
func dropClassMembers(p *ir.Program, keep Interesting) (*ir.Program, bool) {
	changed := false
	cur := p
	for ci := range cur.Decls {
		cls, ok := cur.Decls[ci].(*ir.ClassDecl)
		if !ok {
			continue
		}
		for mi := 0; mi < len(cls.Methods); {
			candidate := ir.CloneProgram(cur)
			ccls := candidate.Decls[ci].(*ir.ClassDecl)
			ccls.Methods = append(ccls.Methods[:mi:mi], ccls.Methods[mi+1:]...)
			if keep(candidate) {
				cur = candidate
				cls = cur.Decls[ci].(*ir.ClassDecl)
				changed = true
				continue
			}
			mi++
		}
	}
	return cur, changed
}

// simplifyBodies shrinks function bodies: replace whole bodies with
// constants, drop block statements, and collapse conditionals.
func simplifyBodies(p *ir.Program, keep Interesting) (*ir.Program, bool) {
	changed := false
	cur := p

	eachFunc := func(prog *ir.Program, visit func(f *ir.FuncDecl)) {
		for _, d := range prog.Decls {
			switch t := d.(type) {
			case *ir.FuncDecl:
				visit(t)
			case *ir.ClassDecl:
				for _, m := range t.Methods {
					visit(m)
				}
			}
		}
	}

	// Pass 1: constant bodies.
	funcIdx := 0
	for {
		candidate := ir.CloneProgram(cur)
		var target *ir.FuncDecl
		i := 0
		eachFunc(candidate, func(f *ir.FuncDecl) {
			if i == funcIdx {
				target = f
			}
			i++
		})
		if target == nil {
			break
		}
		funcIdx++
		if target.Body == nil || target.Ret == nil {
			continue
		}
		if _, isConst := target.Body.(*ir.Const); isConst {
			continue
		}
		target.Body = &ir.Const{Type: target.Ret}
		if keep(candidate) {
			cur = candidate
			changed = true
		}
	}

	// Pass 2: structural shrinking inside bodies (statement deletion,
	// conditional collapse), one edit at a time until no edit survives.
	for {
		candidate := ir.CloneProgram(cur)
		if !applyOneShrink(candidate) {
			break
		}
		if keep(candidate) {
			cur = candidate
			changed = true
			continue
		}
		// The first shrink broke interestingness; try deeper edits by
		// skipping: enumerate all shrinks and test each.
		edits := countShrinks(cur)
		applied := false
		for k := 1; k < edits; k++ {
			candidate := ir.CloneProgram(cur)
			if !applyNthShrink(candidate, k) {
				break
			}
			if keep(candidate) {
				cur = candidate
				changed = true
				applied = true
				break
			}
		}
		if !applied {
			break
		}
	}
	return cur, changed
}

// shrinkVisitor enumerates shrinking edit points in a deterministic order.
type shrinkVisitor struct {
	n      int // edits seen so far
	target int // the edit to apply; -1 counts only
	done   bool
}

func (v *shrinkVisitor) tryEdit(apply func()) {
	if v.done {
		return
	}
	if v.n == v.target {
		apply()
		v.done = true
	}
	v.n++
}

func countShrinks(p *ir.Program) int {
	v := &shrinkVisitor{target: -1}
	walkShrinks(p, v)
	return v.n
}

func applyOneShrink(p *ir.Program) bool { return applyNthShrink(p, 0) }

func applyNthShrink(p *ir.Program, n int) bool {
	v := &shrinkVisitor{target: n}
	walkShrinks(p, v)
	return v.done
}

// walkShrinks enumerates edits: delete a block statement, collapse an If
// to one branch, or replace a block with its value.
func walkShrinks(p *ir.Program, v *shrinkVisitor) {
	var rewrite func(e ir.Expr) ir.Expr
	rewrite = func(e ir.Expr) ir.Expr {
		switch t := e.(type) {
		case *ir.Block:
			for i := range t.Stmts {
				i := i
				v.tryEdit(func() {
					t.Stmts = append(t.Stmts[:i:i], t.Stmts[i+1:]...)
				})
				if v.done {
					return t
				}
			}
			for i, s := range t.Stmts {
				if ex, ok := s.(ir.Expr); ok {
					t.Stmts[i] = rewrite(ex)
				} else if vd, ok := s.(*ir.VarDecl); ok && vd.Init != nil {
					vd.Init = rewrite(vd.Init)
				}
				if v.done {
					return t
				}
			}
			if t.Value != nil {
				t.Value = rewrite(t.Value)
			}
			return t
		case *ir.If:
			result := ir.Expr(t)
			v.tryEdit(func() { result = t.Then })
			if v.done {
				return result
			}
			v.tryEdit(func() { result = t.Else })
			if v.done {
				return result
			}
			t.Cond = rewrite(t.Cond)
			if !v.done {
				t.Then = rewrite(t.Then)
			}
			if !v.done {
				t.Else = rewrite(t.Else)
			}
			return t
		case *ir.Call:
			for i := range t.Args {
				t.Args[i] = rewrite(t.Args[i])
				if v.done {
					break
				}
			}
			return t
		case *ir.New:
			for i := range t.Args {
				t.Args[i] = rewrite(t.Args[i])
				if v.done {
					break
				}
			}
			return t
		case *ir.Lambda:
			t.Body = rewrite(t.Body)
			return t
		case *ir.Cast:
			t.Expr = rewrite(t.Expr)
			return t
		case *ir.FieldAccess:
			t.Recv = rewrite(t.Recv)
			return t
		case *ir.BinaryOp:
			t.Left = rewrite(t.Left)
			if !v.done {
				t.Right = rewrite(t.Right)
			}
			return t
		}
		return e
	}

	for _, d := range p.Decls {
		switch t := d.(type) {
		case *ir.FuncDecl:
			if t.Body != nil {
				t.Body = rewrite(t.Body)
			}
		case *ir.ClassDecl:
			for _, m := range t.Methods {
				if m.Body != nil {
					m.Body = rewrite(m.Body)
				}
				if v.done {
					return
				}
			}
		}
		if v.done {
			return
		}
	}
}

// Size is the reduction metric: total AST nodes.
func Size(p *ir.Program) int { return ir.CountNodes(p) }

// ConstOf builds the replacement constant used by body simplification.
func ConstOf(t types.Type) ir.Expr { return &ir.Const{Type: t} }
