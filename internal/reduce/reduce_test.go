package reduce

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/compilers"
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/types"
)

func TestReducePreservesInterestingness(t *testing.T) {
	b := types.NewBuiltins()
	// Interesting: the program contains a String-typed function f.
	p := &ir.Program{Decls: []ir.Decl{
		&ir.FuncDecl{Name: "noise1", Ret: b.Int, Body: &ir.Const{Type: b.Int}},
		&ir.FuncDecl{Name: "f", Ret: b.String, Body: &ir.Block{
			Stmts: []ir.Node{
				&ir.VarDecl{Name: "x", DeclType: b.Int, Init: &ir.Const{Type: b.Int}},
				&ir.VarDecl{Name: "y", DeclType: b.Long, Init: &ir.Const{Type: b.Long}},
			},
			Value: &ir.Const{Type: b.String},
		}},
		&ir.FuncDecl{Name: "noise2", Ret: b.Boolean, Body: &ir.Const{Type: b.Boolean}},
	}}
	keep := func(q *ir.Program) bool {
		for _, f := range q.Functions() {
			if f.Name == "f" && f.Ret != nil && f.Ret.Equal(b.String) {
				return true
			}
		}
		return false
	}
	before := Size(p)
	r := Reduce(p, keep)
	if !keep(r) {
		t.Fatal("reduction lost the property")
	}
	if Size(r) >= before {
		t.Errorf("no shrinking: %d -> %d", before, Size(r))
	}
	if len(r.Functions()) != 1 {
		t.Errorf("noise functions should be dropped, got %d functions", len(r.Functions()))
	}
	// Original untouched.
	if len(p.Functions()) != 3 {
		t.Error("input program must not be modified")
	}
}

func TestReduceCollapsesConditionals(t *testing.T) {
	b := types.NewBuiltins()
	p := &ir.Program{Decls: []ir.Decl{
		&ir.FuncDecl{Name: "f", Ret: b.Int, Body: &ir.If{
			Cond: &ir.Const{Type: b.Boolean},
			Then: &ir.Const{Type: b.Int},
			Else: &ir.Const{Type: b.Int},
		}},
	}}
	keep := func(q *ir.Program) bool {
		res := checker.Check(q, b, checker.Options{})
		return res.OK() && len(q.Functions()) == 1
	}
	r := Reduce(p, keep)
	if _, isIf := r.Functions()[0].Body.(*ir.If); isIf {
		t.Errorf("conditional should collapse:\n%s", ir.Print(r))
	}
}

func TestReduceUninterestingInputReturnsQuickly(t *testing.T) {
	b := types.NewBuiltins()
	p := &ir.Program{Decls: []ir.Decl{
		&ir.FuncDecl{Name: "f", Ret: b.Int, Body: &ir.Const{Type: b.Int}},
	}}
	r := Reduce(p, func(*ir.Program) bool { return false })
	if Size(r) != Size(p) {
		t.Error("uninteresting input should be returned unreduced")
	}
}

// TestReduceBugTriggeringProgram reduces a generated program while
// preserving "this seeded bug still fires" — the real campaign usage.
func TestReduceBugTriggeringProgram(t *testing.T) {
	comp := compilers.Groovyc()
	var seedProgram *ir.Program
	var bugID string
	for seed := int64(0); seed < 100; seed++ {
		g := generator.New(generator.DefaultConfig().WithSeed(seed))
		p := g.Generate()
		res := comp.Compile(p, nil)
		if len(res.Triggered) > 0 {
			seedProgram = p
			bugID = res.Triggered[0].ID
			break
		}
	}
	if seedProgram == nil {
		t.Skip("no bug-triggering program in the seed range")
	}
	keep := func(q *ir.Program) bool {
		res := comp.Compile(q, nil)
		for _, bg := range res.Triggered {
			if bg.ID == bugID {
				return true
			}
		}
		return false
	}
	before := Size(seedProgram)
	r := Reduce(seedProgram, keep)
	if !keep(r) {
		t.Fatal("reduced program no longer triggers the bug")
	}
	t.Logf("reduced %d -> %d nodes while preserving %s", before, Size(r), bugID)
}

func TestReduceDropsClassMembers(t *testing.T) {
	b := types.NewBuiltins()
	cls := &ir.ClassDecl{Name: "C", Methods: []*ir.FuncDecl{
		{Name: "used", Ret: b.Int, Body: &ir.Const{Type: b.Int}},
		{Name: "junk1", Ret: b.Int, Body: &ir.Const{Type: b.Int}},
		{Name: "junk2", Ret: b.Int, Body: &ir.Const{Type: b.Int}},
	}}
	p := &ir.Program{Decls: []ir.Decl{cls}}
	keep := func(q *ir.Program) bool {
		c := q.ClassByName("C")
		return c != nil && c.MethodByName("used") != nil
	}
	r := Reduce(p, keep)
	if got := len(r.ClassByName("C").Methods); got != 1 {
		t.Errorf("want 1 surviving method, got %d", got)
	}
}
