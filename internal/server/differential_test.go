package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/cli"
)

// TestServerDifferentialCampaignMatchesInProcess: a differential-oracle
// submission is hosted like any other campaign — the oracle mode rides
// in the config JSON — and the served report document, disagreement
// records and pair matrix included, byte-matches the in-process run of
// the same options. The status view exposes the live disagreement
// count.
func TestServerDifferentialCampaignMatchesInProcess(t *testing.T) {
	s, ts := newTestServer(t, Options{DataDir: t.TempDir()})
	defer s.Close()
	id := submit(t, ts, "", map[string]any{
		"seed": 5, "programs": 30, "workers": 2, "oracle": "differential",
	})
	waitState(t, ts, "", id, "done")

	code, got := request(t, ts, "GET", "/api/campaigns/"+id+"/report", "", nil)
	if code != http.StatusOK {
		t.Fatalf("report: status %d: %s", code, got)
	}
	var doc struct {
		Disagreements []struct {
			ID       string   `json:"id"`
			Suspects []string `json:"suspects"`
		} `json:"disagreements"`
		DiffMatrix map[string]int `json:"diff_matrix"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Disagreements) == 0 {
		t.Fatal("served differential report carries no disagreements")
	}
	if len(doc.DiffMatrix) == 0 {
		t.Error("served differential report carries no pair matrix")
	}

	want := goldenDoc(t, func(c *cli.Config) {
		c.Seed, c.Programs, c.Workers, c.Oracle = 5, 30, 2, "differential"
	})
	if !bytes.Equal(got, want) {
		t.Errorf("HTTP differential report differs from in-process run:\n%s\nvs\n%s", got, want)
	}

	// The status view counts distinct disagreements for dashboards.
	code, raw := request(t, ts, "GET", "/api/campaigns/"+id, "", nil)
	if code != http.StatusOK {
		t.Fatalf("inspect: status %d: %s", code, raw)
	}
	var view struct {
		Status struct {
			Disagreements int `json:"disagreements"`
		} `json:"status"`
	}
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	if view.Status.Disagreements != len(doc.Disagreements) {
		t.Errorf("status reports %d disagreements, report has %d",
			view.Status.Disagreements, len(doc.Disagreements))
	}

	// An invalid oracle mode is rejected at submission time.
	if code, _ := request(t, ts, "POST", "/api/campaigns", "",
		map[string]any{"programs": 5, "oracle": "majority"}); code != http.StatusBadRequest {
		t.Errorf("bad oracle mode admitted with status %d", code)
	}
}
