package server

import (
	"context"
	"sync"
	"time"
)

// limiter is a token bucket: rate tokens refill per second up to
// burst. Stdlib-only — the service cannot take golang.org/x/time — and
// small enough to reason about: take() under one mutex, sleeping
// callers re-take after the computed refill interval.
type limiter struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// newLimiter returns a full bucket; rate <= 0 disables limiting (every
// call is admitted).
func newLimiter(rate float64, burst int) *limiter {
	if burst < 1 {
		burst = 1
	}
	return &limiter{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// take consumes one token if available; otherwise it returns how long
// until one accrues.
func (l *limiter) take() (bool, time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	l.last = now
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	if l.tokens >= 1 {
		l.tokens--
		return true, 0
	}
	need := (1 - l.tokens) / l.rate
	return false, time.Duration(need * float64(time.Second))
}

// allow reports whether one event is admitted right now.
func (l *limiter) allow() bool {
	ok, _ := l.take()
	return ok
}

// wait blocks until a token is available or ctx is cancelled. This is
// the campaign Gate body: it runs on the pipeline's source goroutine,
// so blocking here backpressures the bounded stage channels instead of
// buffering unbounded work.
func (l *limiter) wait(ctx context.Context) error {
	for {
		ok, retry := l.take()
		if ok {
			return nil
		}
		timer := time.NewTimer(retry)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// gate adapts the limiter to the campaign.Options.Gate signature.
func (l *limiter) gate() func(context.Context) error {
	if l == nil || l.rate <= 0 {
		return nil
	}
	return l.wait
}
