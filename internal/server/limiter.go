package server

import (
	"context"
	"sync"
	"time"
)

// limiter is a token bucket: rate tokens refill per second up to
// burst. Stdlib-only — the service cannot take golang.org/x/time — and
// small enough to reason about: take() under one mutex, sleeping
// callers re-take after the computed refill interval.
//
// Refill is computed on a monotonic clock: now() measures elapsed time
// since an arbitrary process-local origin, so a wall-clock step (NTP
// slew, manual clock set, suspend/resume) can neither grant a burst of
// phantom tokens nor starve callers while the bucket "waits" for a
// clock that jumped backward.
type limiter struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	// now returns elapsed monotonic time; injectable so tests step a
	// fake clock instead of sleeping.
	now  func() time.Duration
	last time.Duration
}

// newLimiter returns a full bucket; rate <= 0 disables limiting (every
// call is admitted).
func newLimiter(rate float64, burst int) *limiter {
	if burst < 1 {
		burst = 1
	}
	// time.Since carries the monotonic reading of its argument, so this
	// closure is immune to wall-clock steps for the process's lifetime.
	start := time.Now()
	l := &limiter{rate: rate, burst: float64(burst), tokens: float64(burst),
		now: func() time.Duration { return time.Since(start) }}
	l.last = l.now()
	return l
}

// take consumes one token if available; otherwise it returns how long
// until one accrues.
func (l *limiter) take() (bool, time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	if elapsed := now - l.last; elapsed > 0 {
		l.tokens += elapsed.Seconds() * l.rate
	}
	l.last = now
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	if l.tokens >= 1 {
		l.tokens--
		return true, 0
	}
	need := (1 - l.tokens) / l.rate
	return false, time.Duration(need * float64(time.Second))
}

// allow reports whether one event is admitted right now.
func (l *limiter) allow() bool {
	ok, _ := l.take()
	return ok
}

// wait blocks until a token is available or ctx is cancelled. This is
// the campaign Gate body: it runs on the pipeline's source goroutine,
// so blocking here backpressures the bounded stage channels instead of
// buffering unbounded work.
func (l *limiter) wait(ctx context.Context) error {
	for {
		ok, retry := l.take()
		if ok {
			return nil
		}
		timer := time.NewTimer(retry)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// gate adapts the limiter to the campaign.Options.Gate signature.
func (l *limiter) gate() func(context.Context) error {
	if l == nil || l.rate <= 0 {
		return nil
	}
	return l.wait
}
