package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"repro/internal/campaign"
	"repro/internal/cli"
	"repro/internal/metrics"
)

// manifest is the durable index of hosted campaigns: enough to re-host
// every suspended one after a restart. Campaign payload state (journal,
// snapshots, reduced repros) lives in each campaign's own state
// directory; the manifest only records who owns what.
type manifest struct {
	NextID    int             `json:"next_id"`
	Campaigns []manifestEntry `json:"campaigns"`
}

type manifestEntry struct {
	ID      string     `json:"id"`
	Tenant  string     `json:"tenant"`
	Created time.Time  `json:"created"`
	Config  cli.Config `json:"config"`
	State   string     `json:"state"`
}

func (s *Server) manifestPath() string { return filepath.Join(s.opts.DataDir, "manifest.json") }
func (s *Server) corpusPath() string   { return filepath.Join(s.opts.DataDir, "corpus.json") }

// saveManifestLocked writes the manifest atomically (tmp + rename).
// Caller holds s.mu. A DataDir-less server skips persistence.
func (s *Server) saveManifestLocked() {
	if s.opts.DataDir == "" {
		return
	}
	m := manifest{NextID: s.nextID}
	for _, id := range s.order {
		h := s.campaigns[id]
		m.Campaigns = append(m.Campaigns, manifestEntry{
			ID:      h.id,
			Tenant:  h.tenant,
			Created: h.created,
			Config:  h.cfg,
			State:   h.camp.State().String(),
		})
	}
	writeFileAtomic(s.manifestPath(), m) //nolint:errcheck // best-effort; next transition rewrites
}

// loadManifest reads the manifest and, when resume is set, re-hosts
// every non-terminal campaign as a suspended one: built with
// Resume=true so its first Start restores the journal, but not started
// — POST .../resume (or operator action) continues it. Terminal
// campaigns are not re-hosted; their state directories stay on disk.
func (s *Server) loadManifest(resume bool) error {
	raw, err := os.ReadFile(s.manifestPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("corrupt server manifest %s: %w", s.manifestPath(), err)
	}
	s.nextID = m.NextID
	if !resume {
		return nil
	}
	for _, e := range m.Campaigns {
		if terminalStateName(e.State) {
			continue
		}
		t := s.tenantLocked(e.Tenant)
		cfg := e.Config
		cfg.StateDir = s.campaignStateDir(e.ID)
		cfg.Resume = true
		opts, err := cfg.CampaignOptions()
		if err != nil {
			return fmt.Errorf("re-hosting campaign %s: %w", e.ID, err)
		}
		trace := metrics.NewTrace(s.opts.TraceCapacity)
		opts.Metrics = t.reg.Scope(e.ID)
		opts.Trace = trace
		opts.Gate = t.units.gate()
		h := &hosted{
			id:        e.ID,
			tenant:    e.Tenant,
			created:   e.Created,
			cfg:       cfg,
			opts:      opts,
			camp:      campaign.New(opts),
			trace:     trace,
			suspended: true,
			repros:    map[string]*reproDoc{},
		}
		s.campaigns[h.id] = h
		s.order = append(s.order, h.id)
		go s.watch(h)
	}
	return nil
}

// terminalStateName reports whether a manifest state string names a
// terminal lifecycle state.
func terminalStateName(name string) bool {
	switch name {
	case campaign.StateDone.String(), campaign.StateCancelled.String(), campaign.StateFailed.String():
		return true
	}
	return false
}

// loadCorpus restores the cross-campaign bug corpus.
func (s *Server) loadCorpus() error {
	raw, err := os.ReadFile(s.corpusPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, s.corpus); err != nil {
		return fmt.Errorf("corrupt server corpus %s: %w", s.corpusPath(), err)
	}
	return nil
}

// saveCorpusLocked persists the corpus atomically. Caller holds s.mu.
func (s *Server) saveCorpusLocked() {
	if s.opts.DataDir == "" {
		return
	}
	writeFileAtomic(s.corpusPath(), s.corpus) //nolint:errcheck // re-merged on next completion
}

// writeFileAtomic writes v as indented JSON via tmp + rename, so a
// crash mid-write never leaves a torn document.
func writeFileAtomic(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
