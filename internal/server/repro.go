package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"sort"

	"repro/internal/campaign"
	"repro/internal/compilers"
	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/mutation"
	"repro/internal/oracle"
	"repro/internal/types"
)

// reproDoc is one served repro: the reduced triggering program, both as
// IR and translated to the compiler's source language.
type reproDoc struct {
	Bug      string `json:"bug"`
	Compiler string `json:"compiler"`
	Language string `json:"language"`
	// Kind is the input kind whose derivation reproduced the trigger.
	Kind string `json:"kind"`
	// Seed is the campaign unit seed the program re-derives from.
	Seed int64 `json:"seed"`
	// Nodes counts IR nodes before and after reduction.
	Nodes        int    `json:"nodes"`
	ReducedNodes int    `json:"reduced_nodes"`
	IR           string `json:"ir"`
	Source       string `json:"source"`
}

// handleRepro re-derives, verifies, and reduces the triggering program
// for one found bug (?bug=ID), then serves it as IR plus translated
// source. Derivation replays the campaign's own recipe — the unit's
// first triggering seed through the exact generator and mutation
// seeding the pipeline uses — so the served program is the program the
// campaign actually compiled, shrunk through the sandboxed reducer.
// Results are cached per bug: reduction costs thousands of probe
// compiles.
func (s *Server) handleRepro(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenantFor(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h := s.lookup(t, r.PathValue("id"))
	if h == nil {
		http.NotFound(w, r)
		return
	}
	bugID := r.URL.Query().Get("bug")
	if bugID == "" {
		http.Error(w, "missing ?bug=ID", http.StatusBadRequest)
		return
	}
	report := h.camp.Report()
	if report == nil {
		http.Error(w, fmt.Sprintf("campaign %s is %s; repros not available yet", h.id, h.camp.State()), http.StatusConflict)
		return
	}
	s.mu.Lock()
	doc := h.repros[bugID]
	s.mu.Unlock()
	if doc == nil {
		doc, err = buildRepro(h.opts, report, bugID)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		s.mu.Lock()
		h.repros[bugID] = doc
		s.mu.Unlock()
	}
	writeJSON(w, doc)
}

// buildRepro re-derives the first triggering program for the bug and
// reduces it.
func buildRepro(opts campaign.Options, report *campaign.Report, bugID string) (*reproDoc, error) {
	rec := report.Found[bugID]
	if rec == nil {
		return nil, fmt.Errorf("bug %s not found by this campaign", bugID)
	}
	var comp *compilers.Compiler
	for _, c := range opts.Compilers {
		if c.Name() == rec.Bug.Compiler {
			comp = c
		}
	}
	if comp == nil {
		return nil, fmt.Errorf("bug %s belongs to compiler %s, which this campaign did not test", bugID, rec.Bug.Compiler)
	}

	prog, kind, err := deriveTrigger(opts, rec, comp, bugID)
	if err != nil {
		return nil, err
	}
	heph := core.New(core.Config{
		Seed:      rec.FirstSeed,
		Generator: opts.GenConfig,
		Compilers: opts.Compilers,
		Harness:   opts.Harness,
	})
	reduced := heph.ReduceFor(prog, comp, bugID)
	src, err := heph.Translate(reduced, comp.Language())
	if err != nil {
		return nil, err
	}
	return &reproDoc{
		Bug:          bugID,
		Compiler:     comp.Name(),
		Language:     comp.Language(),
		Kind:         kind.String(),
		Seed:         rec.FirstSeed,
		Nodes:        ir.CountNodes(prog),
		ReducedNodes: ir.CountNodes(reduced),
		IR:           ir.Print(reduced),
		Source:       src,
	}, nil
}

// deriveTrigger replays the pipeline's derivation for the bug's first
// triggering seed and returns the first derived input (in pipeline
// input-kind order) that still triggers the bug. The seeding below
// must mirror internal/pipeline's Generate and Mutate stages exactly —
// that equivalence is what makes served repros faithful to the
// campaign.
func deriveTrigger(opts campaign.Options, rec *campaign.BugRecord, comp *compilers.Compiler, bugID string) (*ir.Program, oracle.InputKind, error) {
	gen := generator.New(opts.GenConfig.WithSeed(rec.FirstSeed))
	base := gen.Generate()
	b := gen.Builtins()
	if b == nil {
		b = types.NewBuiltins()
	}

	var kinds []oracle.InputKind
	for k := range rec.FoundBy {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })

	var lastErr error
	for _, kind := range kinds {
		prog, err := deriveKind(base, b, rec.FirstSeed, kind)
		if err != nil {
			lastErr = err
			continue
		}
		if prog == nil {
			continue
		}
		res := comp.Compile(prog, nil)
		for _, bug := range res.Triggered {
			if bug.ID == bugID {
				return prog, kind, nil
			}
		}
	}
	if lastErr != nil {
		return nil, 0, lastErr
	}
	return nil, 0, fmt.Errorf("bug %s: seed %d no longer derives a triggering program", bugID, rec.FirstSeed)
}

// deriveKind derives one input kind from the base program, mirroring
// pipeline.Mutate's seeding.
func deriveKind(base *ir.Program, b *types.Builtins, seed int64, kind oracle.InputKind) (*ir.Program, error) {
	switch kind {
	case oracle.Generated:
		return base, nil
	case oracle.TEMMutant:
		tem, rep := mutation.TypeErasure(base, b)
		if !rep.Changed() {
			return nil, nil
		}
		return tem, nil
	case oracle.TOMMutant:
		tom, _ := mutation.TypeOverwriting(base, b, rand.New(rand.NewSource(seed)))
		return tom, nil
	case oracle.TEMTOMMutant:
		tem, _ := mutation.TypeErasure(base, b)
		temtom, _ := mutation.TypeOverwriting(tem, b, rand.New(rand.NewSource(seed^0x5bd1e995)))
		return temtom, nil
	case oracle.REMMutant:
		rem, _ := mutation.ResolutionMutation(base, b, rand.New(rand.NewSource(seed^0x9e3779b9)))
		return rem, nil
	default:
		return nil, fmt.Errorf("input kind %s is not re-derivable from a seed", kind)
	}
}
