// Package server is the long-running, multi-tenant host for fuzzing
// campaigns: the campaign lifecycle library behind an HTTP API.
// Tenants submit campaign configurations (the same JSON shape
// internal/cli builds from flags), then list, inspect, pause, resume,
// and cancel them; verdicts and heartbeats stream out over SSE; a
// cross-campaign bug corpus accumulates across every tenant; reduced
// repro programs are served per found bug.
//
// Scheduling is slot-based: at most MaxRunning campaigns execute at
// once and the rest queue FIFO; pausing a campaign frees its slot
// (suspension is durable, so a paused campaign costs nothing). Tenant
// isolation is enforced three ways: campaigns are visible only to the
// submitting tenant, submissions pass a per-tenant token bucket, and a
// per-tenant unit-rate limiter is installed as each campaign's
// admission Gate — it blocks on the pipeline's source goroutine, so a
// throttled tenant's campaigns backpressure into the bounded stage
// channels instead of buffering unbounded work. Each tenant also gets
// its own metrics.Registry, served through the standard debug
// endpoints under /debug/tenants/{tenant}/.
//
// Every campaign is durable under DataDir, so Drain (the SIGTERM path)
// is just Pause for every running campaign: each takes its final
// snapshot through the journal machinery, and a server restarted with
// Resume re-hosts them as suspended campaigns that continue exactly
// where they stopped. None of this bends the determinism contract —
// gates and slots only reschedule work, so a campaign run under heavy
// multi-tenant traffic reports bit-for-bit what a solo CLI run of the
// same options reports.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/cli"
	"repro/internal/metrics"
)

// Options configures a Server.
type Options struct {
	// DataDir is the root of all persistent state: one journal state
	// directory per campaign, the cross-campaign corpus, and the
	// manifest that lets a restarted server re-host suspended
	// campaigns. Empty means fully in-memory campaigns (not pausable,
	// not resumable across restarts) — useful only for tests.
	DataDir string
	// MaxRunning bounds concurrently executing campaigns (the slot
	// pool); further submissions queue FIFO. Default 4.
	MaxRunning int
	// MaxPerTenant bounds one tenant's live (non-terminal) campaigns.
	// Default 8.
	MaxPerTenant int
	// SubmitRate and SubmitBurst shape the per-tenant submission token
	// bucket. Defaults: 5/s, burst 10.
	SubmitRate  float64
	SubmitBurst int
	// UnitRate and UnitBurst shape the per-tenant unit admission
	// bucket, installed as every campaign's Gate; 0 disables unit
	// throttling.
	UnitRate  float64
	UnitBurst int
	// MaxPrograms and MaxWorkers bound a single submission. Defaults:
	// 100000 programs, worker count unbounded.
	MaxPrograms int
	MaxWorkers  int
	// Heartbeat is the SSE heartbeat cadence. Default 1s.
	Heartbeat time.Duration
	// TraceCapacity sizes each campaign's event ring. Default 4096.
	TraceCapacity int
	// Resume re-hosts the suspended campaigns recorded in DataDir's
	// manifest (as paused; POST .../resume continues them).
	Resume bool
	// Metrics, when set, receives the server's own instruments
	// (submissions, queue depth). Tenants always get their own
	// registries regardless.
	Metrics *metrics.Registry
}

// Server hosts campaigns behind an HTTP API. Create with New, mount as
// an http.Handler, and shut down with Drain (graceful, suspends every
// campaign durably) or Close (abrupt, cancels them).
type Server struct {
	opts    Options
	mux     *http.ServeMux
	reg     *metrics.Registry
	baseCtx context.Context
	cancel  context.CancelFunc

	mu        sync.Mutex
	tenants   map[string]*tenant
	campaigns map[string]*hosted
	order     []string
	queue     []*hosted
	running   int
	nextID    int
	corpus    *campaign.Corpus
	draining  bool
}

// tenant is one isolation domain: its own registry (debug-served), its
// own submission bucket, and its own unit-admission bucket shared by
// all its campaigns' Gates.
type tenant struct {
	name   string
	reg    *metrics.Registry
	debug  http.Handler
	submit *limiter
	units  *limiter
}

// hosted is one campaign under management. Scheduling fields
// (queued, holdsSlot) are guarded by Server.mu; the campaign itself is
// internally synchronized.
type hosted struct {
	id      string
	tenant  string
	created time.Time
	cfg     cli.Config
	opts    campaign.Options
	camp    *campaign.Campaign
	trace   *metrics.Trace
	// queued: waiting for a slot (still StateNew). holdsSlot: counted
	// in Server.running. suspended: restored from a manifest, waiting
	// for an explicit resume.
	queued    bool
	holdsSlot bool
	suspended bool
	repros    map[string]*reproDoc
}

// New returns a server over the options, re-hosting suspended
// campaigns from the manifest when opts.Resume is set.
func New(opts Options) (*Server, error) {
	if opts.MaxRunning <= 0 {
		opts.MaxRunning = 4
	}
	if opts.MaxPerTenant <= 0 {
		opts.MaxPerTenant = 8
	}
	if opts.SubmitRate == 0 {
		opts.SubmitRate = 5
	}
	if opts.SubmitBurst <= 0 {
		opts.SubmitBurst = 10
	}
	if opts.UnitBurst <= 0 {
		opts.UnitBurst = 16
	}
	if opts.MaxPrograms <= 0 {
		opts.MaxPrograms = 100000
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = time.Second
	}
	if opts.TraceCapacity <= 0 {
		opts.TraceCapacity = 4096
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:      opts,
		reg:       opts.Metrics,
		baseCtx:   ctx,
		cancel:    cancel,
		tenants:   map[string]*tenant{},
		campaigns: map[string]*hosted{},
		corpus:    campaign.NewCorpus(),
	}
	if s.reg == nil {
		s.reg = metrics.NewRegistry()
	}
	if opts.DataDir != "" {
		if err := os.MkdirAll(filepath.Join(opts.DataDir, "campaigns"), 0o755); err != nil {
			cancel()
			return nil, err
		}
		if err := s.loadCorpus(); err != nil {
			cancel()
			return nil, err
		}
		if err := s.loadManifest(opts.Resume); err != nil {
			cancel()
			return nil, err
		}
	}
	s.routes()
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close abruptly cancels every campaign and waits for none of them:
// the test-and-crash path. Production shutdown is Drain.
func (s *Server) Close() { s.cancel() }

// routes wires the HTTP API (Go 1.22 pattern routing).
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /api/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /api/campaigns", s.handleList)
	s.mux.HandleFunc("GET /api/campaigns/{id}", s.handleInspect)
	s.mux.HandleFunc("POST /api/campaigns/{id}/pause", s.handlePause)
	s.mux.HandleFunc("POST /api/campaigns/{id}/resume", s.handleResume)
	s.mux.HandleFunc("POST /api/campaigns/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /api/campaigns/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /api/campaigns/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /api/campaigns/{id}/repro", s.handleRepro)
	s.mux.HandleFunc("GET /api/corpus", s.handleCorpus)
	s.mux.HandleFunc("GET /api/tenants", s.handleTenants)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	s.mux.HandleFunc("/debug/tenants/{tenant}/", s.handleTenantDebug)
	s.mux.Handle("/debug/server/", http.StripPrefix("/debug/server", metrics.Handler(s.reg, nil)))
}

var tenantNameRe = regexp.MustCompile(`^[A-Za-z0-9_-]{1,32}$`)

// tenantFor resolves (creating on first use) the request's tenant from
// the X-Tenant header; absent means "default".
func (s *Server) tenantFor(r *http.Request) (*tenant, error) {
	name := r.Header.Get("X-Tenant")
	if name == "" {
		name = "default"
	}
	if !tenantNameRe.MatchString(name) {
		return nil, fmt.Errorf("invalid tenant name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenantLocked(name), nil
}

func (s *Server) tenantLocked(name string) *tenant {
	t := s.tenants[name]
	if t == nil {
		reg := metrics.NewRegistry()
		t = &tenant{
			name:   name,
			reg:    reg,
			debug:  metrics.Handler(reg, nil),
			submit: newLimiter(s.opts.SubmitRate, s.opts.SubmitBurst),
			units:  newLimiter(s.opts.UnitRate, s.opts.UnitBurst),
		}
		s.tenants[name] = t
	}
	return t
}

// lookup returns the tenant's campaign, or nil — a campaign owned by
// another tenant is indistinguishable from a missing one.
func (s *Server) lookup(t *tenant, id string) *hosted {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.campaigns[id]
	if h == nil || h.tenant != t.name {
		return nil
	}
	return h
}

// campaignStateDir is one campaign's journal directory under DataDir.
func (s *Server) campaignStateDir(id string) string {
	if s.opts.DataDir == "" {
		return ""
	}
	return filepath.Join(s.opts.DataDir, "campaigns", id)
}

// host builds the hosted campaign for a validated config: per-campaign
// state dir, per-tenant registry scope, its own trace ring, and the
// tenant's unit bucket as the admission gate. Caller holds s.mu.
func (s *Server) hostLocked(t *tenant, cfg cli.Config, resume bool) (*hosted, error) {
	id := fmt.Sprintf("c%06d", s.nextID)
	cfg.StateDir = s.campaignStateDir(id)
	cfg.Resume = resume
	opts, err := cfg.CampaignOptions()
	if err != nil {
		return nil, err
	}
	trace := metrics.NewTrace(s.opts.TraceCapacity)
	opts.Metrics = t.reg.Scope(id)
	opts.Trace = trace
	opts.Gate = t.units.gate()
	h := &hosted{
		id:      id,
		tenant:  t.name,
		created: time.Now().UTC(),
		cfg:     cfg,
		opts:    opts,
		camp:    campaign.New(opts),
		trace:   trace,
		repros:  map[string]*reproDoc{},
	}
	s.nextID++
	s.campaigns[id] = h
	s.order = append(s.order, id)
	go s.watch(h)
	return h, nil
}

// admitLocked starts the campaign if a slot is free, else queues it.
func (s *Server) admitLocked(h *hosted) {
	if s.running < s.opts.MaxRunning {
		if s.startLocked(h) {
			return
		}
	}
	h.queued = true
	s.queue = append(s.queue, h)
}

// startLocked launches (or resumes) a campaign into a slot; returns
// false when the campaign cannot start (already terminal).
func (s *Server) startLocked(h *hosted) bool {
	var err error
	switch h.camp.State() {
	case campaign.StateNew:
		err = h.camp.Start(s.baseCtx)
	case campaign.StatePaused:
		err = h.camp.Resume()
	default:
		return false
	}
	if err != nil {
		return false
	}
	h.queued = false
	h.suspended = false
	h.holdsSlot = true
	s.running++
	return true
}

// releaseSlotLocked returns a campaign's slot to the pool.
func (s *Server) releaseSlotLocked(h *hosted) {
	if h.holdsSlot {
		h.holdsSlot = false
		s.running--
	}
}

// dispatchLocked starts queued campaigns while slots are free.
func (s *Server) dispatchLocked() {
	if s.draining {
		return
	}
	for s.running < s.opts.MaxRunning && len(s.queue) > 0 {
		h := s.queue[0]
		s.queue = s.queue[1:]
		if !s.startLocked(h) {
			h.queued = false // terminal while queued (cancelled); drop
		}
	}
}

// watch waits for a campaign to reach a terminal state, then settles
// its slot, merges its bugs into the cross-campaign corpus, and
// dispatches the queue.
func (s *Server) watch(h *hosted) {
	<-h.camp.Done()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.releaseSlotLocked(h)
	if r := h.camp.Report(); r != nil && r.Complete() {
		s.corpus.MergeReport(r)
		s.saveCorpusLocked()
	}
	s.saveManifestLocked()
	s.dispatchLocked()
}

// Drain gracefully suspends the server: no new submissions or resumes
// are admitted, every running campaign is paused (each taking its
// final durable snapshot through the journal path), and the manifest
// is saved so a server restarted with Options.Resume re-hosts them.
// Campaigns that cannot pause (non-durable: no DataDir) are cancelled
// instead. Blocks until every campaign has stopped executing.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	var live []*hosted
	for _, id := range s.order {
		h := s.campaigns[id]
		if st := h.camp.State(); st == campaign.StateRunning || st == campaign.StatePausing {
			live = append(live, h)
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for _, h := range live {
			wg.Add(1)
			go func(h *hosted) {
				defer wg.Done()
				if err := h.camp.Pause(); err != nil {
					h.camp.Cancel() //nolint:errcheck // best-effort drain
				}
				s.mu.Lock()
				s.releaseSlotLocked(h)
				s.mu.Unlock()
			}(h)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.cancel() // out of time: hard-cancel what remains
		<-done
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.saveManifestLocked()
	return nil
}

// campaignView is the JSON shape of one campaign in list/inspect
// responses.
type campaignView struct {
	ID      string    `json:"id"`
	Tenant  string    `json:"tenant"`
	Created time.Time `json:"created"`
	Queued  bool      `json:"queued,omitempty"`
	// Suspended marks a campaign re-hosted from the manifest that has
	// not been resumed yet (its lifecycle state is still "new", but its
	// journal holds a paused run).
	Suspended bool            `json:"suspended,omitempty"`
	Config    cli.Config      `json:"config"`
	Status    campaign.Status `json:"status"`
	Error     string          `json:"error,omitempty"`
}

func (s *Server) viewOf(h *hosted) campaignView {
	st := h.camp.Status()
	v := campaignView{
		ID:        h.id,
		Tenant:    h.tenant,
		Created:   h.created,
		Queued:    h.queued,
		Suspended: h.suspended,
		Config:    h.cfg,
		Status:    st,
	}
	if st.Err != nil {
		v.Error = st.Err.Error()
	}
	return v
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenantFor(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !t.submit.allow() {
		http.Error(w, "submission rate limit exceeded", http.StatusTooManyRequests)
		return
	}
	cfg := cli.NewConfig()
	if err := json.NewDecoder(r.Body).Decode(cfg); err != nil {
		http.Error(w, fmt.Sprintf("bad campaign config: %v", err), http.StatusBadRequest)
		return
	}
	if err := cfg.Validate(s.opts.MaxPrograms, s.opts.MaxWorkers); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}
	liveCount := 0
	for _, h := range s.campaigns {
		if h.tenant == t.name && !h.camp.State().Terminal() {
			liveCount++
		}
	}
	if liveCount >= s.opts.MaxPerTenant {
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("tenant %s already has %d live campaigns", t.name, liveCount), http.StatusTooManyRequests)
		return
	}
	h, err := s.hostLocked(t, *cfg, false)
	if err != nil {
		s.mu.Unlock()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.admitLocked(h)
	s.saveManifestLocked()
	view := s.viewOf(h)
	s.mu.Unlock()
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, view)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenantFor(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	var views []campaignView
	for _, id := range s.order {
		h := s.campaigns[id]
		if h.tenant == t.name {
			views = append(views, s.viewOf(h))
		}
	}
	s.mu.Unlock()
	writeJSON(w, struct {
		Campaigns []campaignView `json:"campaigns"`
	}{views})
}

func (s *Server) handleInspect(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenantFor(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h := s.lookup(t, r.PathValue("id"))
	if h == nil {
		http.NotFound(w, r)
		return
	}
	s.mu.Lock()
	view := s.viewOf(h)
	s.mu.Unlock()
	writeJSON(w, view)
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenantFor(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h := s.lookup(t, r.PathValue("id"))
	if h == nil {
		http.NotFound(w, r)
		return
	}
	// Pause blocks until the final snapshot is down; s.mu is not held,
	// so other requests proceed meanwhile.
	if err := h.camp.Pause(); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.mu.Lock()
	s.releaseSlotLocked(h)
	s.saveManifestLocked()
	s.dispatchLocked()
	view := s.viewOf(h)
	s.mu.Unlock()
	writeJSON(w, view)
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenantFor(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h := s.lookup(t, r.PathValue("id"))
	if h == nil {
		http.NotFound(w, r)
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}
	st := h.camp.State()
	resumable := st == campaign.StatePaused || (st == campaign.StateNew && h.suspended)
	if !resumable || h.queued {
		s.mu.Unlock()
		http.Error(w, fmt.Sprintf("campaign %s is %s, not paused", h.id, st), http.StatusConflict)
		return
	}
	s.admitLocked(h)
	s.saveManifestLocked()
	view := s.viewOf(h)
	s.mu.Unlock()
	writeJSON(w, view)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenantFor(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h := s.lookup(t, r.PathValue("id"))
	if h == nil {
		http.NotFound(w, r)
		return
	}
	if err := h.camp.Cancel(); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	// The watcher settles the slot and the queue via Done.
	s.mu.Lock()
	view := s.viewOf(h)
	s.mu.Unlock()
	writeJSON(w, view)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenantFor(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h := s.lookup(t, r.PathValue("id"))
	if h == nil {
		http.NotFound(w, r)
		return
	}
	report := h.camp.Report()
	if report == nil {
		http.Error(w, fmt.Sprintf("campaign %s is %s; report not available", h.id, h.camp.State()), http.StatusConflict)
		return
	}
	writeJSON(w, report.Doc())
}

func (s *Server) handleCorpus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, s.corpus)
}

func (s *Server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	type tenantView struct {
		Name      string `json:"name"`
		Campaigns int    `json:"campaigns"`
	}
	s.mu.Lock()
	counts := map[string]int{}
	for _, h := range s.campaigns {
		counts[h.tenant]++
	}
	var views []tenantView
	for name := range s.tenants {
		views = append(views, tenantView{Name: name, Campaigns: counts[name]})
	}
	s.mu.Unlock()
	sort.Slice(views, func(i, j int) bool { return views[i].Name < views[j].Name })
	writeJSON(w, struct {
		Tenants []tenantView `json:"tenants"`
	}{views})
}

func (s *Server) handleTenantDebug(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	s.mu.Lock()
	t := s.tenants[name]
	s.mu.Unlock()
	if t == nil {
		http.NotFound(w, r)
		return
	}
	http.StripPrefix("/debug/tenants/"+name, t.debug).ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response write errors are the client's problem
}
