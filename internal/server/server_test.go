package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/cli"
)

// newTestServer starts a server over the options and an HTTP front for
// it.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Heartbeat == 0 {
		opts.Heartbeat = 30 * time.Millisecond
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// request performs one API call as the given tenant.
func request(t *testing.T, ts *httptest.Server, method, path, tenant string, body any) (int, []byte) {
	t.Helper()
	var payload io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		payload = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, ts.URL+path, payload)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// submit posts a campaign config and returns its assigned ID.
func submit(t *testing.T, ts *httptest.Server, tenant string, cfg map[string]any) string {
	t.Helper()
	code, raw := request(t, ts, "POST", "/api/campaigns", tenant, cfg)
	if code != http.StatusCreated {
		t.Fatalf("submit: status %d: %s", code, raw)
	}
	var view struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	return view.ID
}

// state fetches one campaign's lifecycle state string.
func state(t *testing.T, ts *httptest.Server, tenant, id string) string {
	t.Helper()
	code, raw := request(t, ts, "GET", "/api/campaigns/"+id, tenant, nil)
	if code != http.StatusOK {
		t.Fatalf("inspect %s: status %d: %s", id, code, raw)
	}
	var view struct {
		Status struct {
			State string `json:"state"`
		} `json:"status"`
	}
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	return view.Status.State
}

// waitState polls until the campaign reaches the wanted state.
func waitState(t *testing.T, ts *httptest.Server, tenant, id, want string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		if got := state(t, ts, tenant, id); got == want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached state %s (now %s)", id, want, state(t, ts, tenant, id))
}

// goldenDoc runs the same submission in-process and encodes its report
// document exactly as the report endpoint does.
func goldenDoc(t *testing.T, mutate func(*cli.Config)) []byte {
	t.Helper()
	cfg := cli.NewConfig()
	mutate(cfg)
	opts, err := cfg.CampaignOptions()
	if err != nil {
		t.Fatal(err)
	}
	r, err := campaign.RunContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Doc()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestServerSubmitPauseResumeReportMatchesInProcess(t *testing.T) {
	s, ts := newTestServer(t, Options{DataDir: t.TempDir()})
	defer s.Close()
	id := submit(t, ts, "", map[string]any{
		"seed": 1, "programs": 120, "workers": 2, "compilers": []string{"groovyc"},
	})

	// Pause mid-run (racing completion: a finished campaign refuses with
	// 409, which just degrades this into the no-pause path).
	time.Sleep(100 * time.Millisecond)
	code, raw := request(t, ts, "POST", "/api/campaigns/"+id+"/pause", "", nil)
	if code == http.StatusOK {
		if got := state(t, ts, "", id); got != "paused" {
			t.Fatalf("after pause: state %s", got)
		}
		// A paused campaign's report is served, and is partial.
		code, rep := request(t, ts, "GET", "/api/campaigns/"+id+"/report", "", nil)
		if code != http.StatusOK {
			t.Fatalf("report while paused: status %d", code)
		}
		var doc struct {
			Complete bool `json:"complete"`
		}
		if err := json.Unmarshal(rep, &doc); err != nil {
			t.Fatal(err)
		}
		if doc.Complete {
			t.Error("paused campaign served a complete report")
		}
		if code, raw := request(t, ts, "POST", "/api/campaigns/"+id+"/resume", "", nil); code != http.StatusOK {
			t.Fatalf("resume: status %d: %s", code, raw)
		}
	} else if code != http.StatusConflict {
		t.Fatalf("pause: status %d: %s", code, raw)
	}

	waitState(t, ts, "", id, "done")
	code, got := request(t, ts, "GET", "/api/campaigns/"+id+"/report", "", nil)
	if code != http.StatusOK {
		t.Fatalf("report: status %d: %s", code, got)
	}
	want := goldenDoc(t, func(c *cli.Config) {
		c.Seed, c.Programs, c.Workers, c.Compilers = 1, 120, 2, []string{"groovyc"}
	})
	if !bytes.Equal(got, want) {
		t.Errorf("HTTP report differs from in-process run:\n%s\nvs\n%s", got, want)
	}
}

func TestServerUnitRateGateKeepsDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Options{UnitRate: 500, UnitBurst: 4})
	id := submit(t, ts, "", map[string]any{
		"seed": 7, "programs": 30, "compilers": []string{"groovyc"},
	})
	waitState(t, ts, "", id, "done")
	_, got := request(t, ts, "GET", "/api/campaigns/"+id+"/report", "", nil)
	want := goldenDoc(t, func(c *cli.Config) {
		c.Seed, c.Programs, c.Compilers = 7, 30, []string{"groovyc"}
	})
	if !bytes.Equal(got, want) {
		t.Error("unit-rate-gated report differs from ungated in-process run")
	}
}

func TestServerTenantIsolation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := submit(t, ts, "alice", map[string]any{
		"seed": 1, "programs": 10, "compilers": []string{"groovyc"},
	})
	// Bob cannot see, inspect, or control Alice's campaign.
	if code, _ := request(t, ts, "GET", "/api/campaigns/"+id, "bob", nil); code != http.StatusNotFound {
		t.Errorf("cross-tenant inspect: status %d, want 404", code)
	}
	for _, action := range []string{"pause", "resume", "cancel"} {
		if code, _ := request(t, ts, "POST", "/api/campaigns/"+id+"/"+action, "bob", nil); code != http.StatusNotFound {
			t.Errorf("cross-tenant %s: status %d, want 404", action, code)
		}
	}
	code, raw := request(t, ts, "GET", "/api/campaigns", "bob", nil)
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	var list struct {
		Campaigns []json.RawMessage `json:"campaigns"`
	}
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Campaigns) != 0 {
		t.Errorf("bob sees %d of alice's campaigns", len(list.Campaigns))
	}
	// A bad tenant name is rejected outright.
	if code, _ := request(t, ts, "GET", "/api/campaigns", "../../etc", nil); code != http.StatusBadRequest {
		t.Errorf("bad tenant name: status %d, want 400", code)
	}
	waitState(t, ts, "alice", id, "done")
}

func TestServerAdmissionQueue(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxRunning: 1})
	first := submit(t, ts, "", map[string]any{
		"seed": 1, "programs": 60, "compilers": []string{"groovyc"},
	})
	second := submit(t, ts, "", map[string]any{
		"seed": 2, "programs": 10, "compilers": []string{"groovyc"},
	})
	// With one slot the second campaign starts queued.
	code, raw := request(t, ts, "GET", "/api/campaigns/"+second, "", nil)
	if code != http.StatusOK {
		t.Fatal(code)
	}
	var view struct {
		Queued bool `json:"queued"`
		Status struct {
			State string `json:"state"`
		} `json:"status"`
	}
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	if view.Status.State == "new" && !view.Queued {
		t.Error("second campaign is neither running nor queued")
	}
	// Both drain through the single slot to completion.
	waitState(t, ts, "", first, "done")
	waitState(t, ts, "", second, "done")
}

func TestServerSubmitRateLimit(t *testing.T) {
	_, ts := newTestServer(t, Options{SubmitRate: 0.0001, SubmitBurst: 2})
	small := map[string]any{"seed": 1, "programs": 5, "compilers": []string{"groovyc"}}
	submit(t, ts, "", small)
	submit(t, ts, "", small)
	code, _ := request(t, ts, "POST", "/api/campaigns", "", small)
	if code != http.StatusTooManyRequests {
		t.Errorf("third submission: status %d, want 429", code)
	}
	// Another tenant has its own bucket.
	submit(t, ts, "other", small)
}

func TestServerPerTenantCampaignCap(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxPerTenant: 1})
	id := submit(t, ts, "", map[string]any{
		"seed": 1, "programs": 400, "workers": 2, "compilers": []string{"groovyc"},
	})
	code, _ := request(t, ts, "POST", "/api/campaigns", "", map[string]any{
		"seed": 2, "programs": 5, "compilers": []string{"groovyc"},
	})
	if code != http.StatusTooManyRequests {
		t.Errorf("over-cap submission: status %d, want 429", code)
	}
	// Cancelling the live campaign frees the tenant's budget.
	if code, raw := request(t, ts, "POST", "/api/campaigns/"+id+"/cancel", "", nil); code != http.StatusOK {
		t.Fatalf("cancel: status %d: %s", code, raw)
	}
	waitState(t, ts, "", id, "cancelled")
	code, raw := request(t, ts, "GET", "/api/campaigns/"+id+"/report", "", nil)
	if code != http.StatusOK {
		t.Fatalf("report after cancel: status %d", code)
	}
	var doc struct {
		Complete bool   `json:"complete"`
		Error    string `json:"error"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Complete || doc.Error == "" {
		t.Errorf("cancelled report: %+v, want incomplete with error", doc)
	}
	submit(t, ts, "", map[string]any{"seed": 2, "programs": 5, "compilers": []string{"groovyc"}})
}

func TestServerValidationRejectsBadConfigs(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxPrograms: 100})
	for name, cfg := range map[string]map[string]any{
		"zero programs":    {"programs": 0},
		"too large":        {"programs": 5000},
		"unknown compiler": {"programs": 5, "compilers": []string{"rustc"}},
		"bad chaos":        {"programs": 5, "chaos": 2.0},
	} {
		if code, _ := request(t, ts, "POST", "/api/campaigns", "", cfg); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
}

func TestServerCorpusAndRepro(t *testing.T) {
	_, ts := newTestServer(t, Options{DataDir: t.TempDir()})
	id := submit(t, ts, "", map[string]any{
		"seed": 1, "programs": 40, "compilers": []string{"groovyc"},
	})
	waitState(t, ts, "", id, "done")

	code, raw := request(t, ts, "GET", "/api/corpus", "", nil)
	if code != http.StatusOK {
		t.Fatalf("corpus: status %d", code)
	}
	var corpus campaign.Corpus
	if err := json.Unmarshal(raw, &corpus); err != nil {
		t.Fatal(err)
	}
	if corpus.Campaigns != 1 || len(corpus.Bugs) == 0 {
		t.Fatalf("corpus after one campaign: campaigns=%d bugs=%d", corpus.Campaigns, len(corpus.Bugs))
	}

	var bugID string
	for bid := range corpus.Bugs {
		bugID = bid
		break
	}
	code, raw = request(t, ts, "GET", "/api/campaigns/"+id+"/repro?bug="+bugID, "", nil)
	if code != http.StatusOK {
		t.Fatalf("repro %s: status %d: %s", bugID, code, raw)
	}
	var doc reproDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Bug != bugID || doc.Compiler != "groovyc" || doc.Language == "" || doc.Kind == "" {
		t.Errorf("repro doc incomplete: %+v", doc)
	}
	if doc.ReducedNodes <= 0 || doc.ReducedNodes > doc.Nodes {
		t.Errorf("reduction grew the program: %d -> %d nodes", doc.Nodes, doc.ReducedNodes)
	}
	if doc.IR == "" || doc.Source == "" {
		t.Error("repro doc is missing the program text")
	}
	if code, _ := request(t, ts, "GET", "/api/campaigns/"+id+"/repro?bug=NOPE-1", "", nil); code != http.StatusNotFound {
		t.Errorf("unknown bug repro: status %d, want 404", code)
	}
}

func TestServerSSEStreamsHeartbeatsAndTrace(t *testing.T) {
	_, ts := newTestServer(t, Options{Heartbeat: 20 * time.Millisecond})
	id := submit(t, ts, "", map[string]any{
		"seed": 1, "programs": 40, "workers": 2, "compilers": []string{"groovyc"},
	})
	req, err := http.NewRequest("GET", ts.URL+"/api/campaigns/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %s", ct)
	}
	events := map[string]int{}
	sawLine := false
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			events[name]++
			if name == "done" {
				break
			}
		}
		if strings.Contains(line, "heartbeat: units") {
			sawLine = true
		}
	}
	if events["done"] != 1 {
		t.Fatalf("stream ended without a done event: %v", events)
	}
	if events["trace"] == 0 {
		t.Error("no trace events streamed")
	}
	if events["heartbeat"] > 0 && !sawLine {
		t.Error("heartbeat events carried no rendered heartbeat line")
	}
	waitState(t, ts, "", id, "done")
}

func TestServerDrainAndResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Options{DataDir: dir})
	id := submit(t, ts1, "t1", map[string]any{
		"seed": 1, "programs": 300, "workers": 2, "compilers": []string{"groovyc"},
	})
	time.Sleep(150 * time.Millisecond)
	// SIGTERM path: drain suspends the running campaign durably.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if code, _ := request(t, ts1, "POST", "/api/campaigns", "t1",
		map[string]any{"programs": 5, "compilers": []string{"groovyc"}}); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", code)
	}
	ts1.Close()

	// A fresh server over the same data dir re-hosts the suspension.
	s2, ts2 := newTestServer(t, Options{DataDir: dir, Resume: true})
	defer s2.Close()
	code, raw := request(t, ts2, "GET", "/api/campaigns/"+id, "t1", nil)
	if code != http.StatusOK {
		t.Fatalf("restored campaign not listed: status %d: %s", code, raw)
	}
	var view struct {
		Suspended bool `json:"suspended"`
	}
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	if !view.Suspended {
		t.Errorf("restored campaign not marked suspended: %s", raw)
	}
	if code, raw := request(t, ts2, "POST", "/api/campaigns/"+id+"/resume", "t1", nil); code != http.StatusOK {
		t.Fatalf("resume after restart: status %d: %s", code, raw)
	}
	waitState(t, ts2, "t1", id, "done")
	_, got := request(t, ts2, "GET", "/api/campaigns/"+id+"/report", "t1", nil)
	want := goldenDoc(t, func(c *cli.Config) {
		c.Seed, c.Programs, c.Workers, c.Compilers = 1, 300, 2, []string{"groovyc"}
	})
	if !bytes.Equal(got, want) {
		t.Error("report after drain+restart+resume differs from uninterrupted in-process run")
	}
}

func TestServerTenantDebugEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := submit(t, ts, "alice", map[string]any{
		"seed": 1, "programs": 10, "compilers": []string{"groovyc"},
	})
	waitState(t, ts, "alice", id, "done")
	code, raw := request(t, ts, "GET", "/debug/tenants/alice/metrics", "", nil)
	if code != http.StatusOK {
		t.Fatalf("tenant metrics: status %d", code)
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	// The campaign's counters live under its ID in the tenant registry.
	found := false
	for _, section := range snap {
		if m, ok := section.(map[string]any); ok {
			for name := range m {
				if strings.HasPrefix(name, id+".") {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("no %s.* instruments in tenant registry: %s", id, raw)
	}
	if code, _ := request(t, ts, "GET", "/debug/tenants/nobody/metrics", "", nil); code != http.StatusNotFound {
		t.Errorf("unknown tenant debug: status %d, want 404", code)
	}
	if code, _ := request(t, ts, "GET", "/healthz", "", nil); code != http.StatusOK {
		t.Error("healthz failed")
	}
}

func TestServerTenantsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	small := map[string]any{"seed": 1, "programs": 5, "compilers": []string{"groovyc"}}
	a := submit(t, ts, "alice", small)
	b := submit(t, ts, "bob", small)
	code, raw := request(t, ts, "GET", "/api/tenants", "", nil)
	if code != http.StatusOK {
		t.Fatal(code)
	}
	var doc struct {
		Tenants []struct {
			Name      string `json:"name"`
			Campaigns int    `json:"campaigns"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for _, tv := range doc.Tenants {
		byName[tv.Name] = tv.Campaigns
	}
	if byName["alice"] != 1 || byName["bob"] != 1 {
		t.Errorf("tenant listing wrong: %s", raw)
	}
	waitState(t, ts, "alice", a, "done")
	waitState(t, ts, "bob", b, "done")
}

func TestLimiter(t *testing.T) {
	l := newLimiter(100, 2)
	if !l.allow() || !l.allow() {
		t.Fatal("burst tokens not available")
	}
	ok, retry := l.take()
	if ok {
		t.Fatal("third immediate take admitted")
	}
	if retry <= 0 || retry > 20*time.Millisecond {
		t.Fatalf("retry hint %v, want ~10ms", retry)
	}
	if err := l.wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	slow := newLimiter(0.001, 1)
	slow.allow()
	if err := slow.wait(ctx); err == nil {
		t.Fatal("wait ignored cancelled context")
	}
	// Disabled limiters admit everything and gate to nil.
	var disabled *limiter
	if !disabled.allow() {
		t.Error("nil limiter blocked")
	}
	if newLimiter(0, 1).gate() != nil {
		t.Error("disabled limiter produced a gate")
	}
	if newLimiter(100, 2).gate() == nil {
		t.Error("enabled limiter produced no gate")
	}
}

// TestLimiterMonotonicRefill steps an injected fake clock through the
// bucket's life: no wall-clock sleeps, and refill arithmetic pinned
// exactly — including that a clock that does not advance grants
// nothing, which is the monotonic guarantee a stepped wall clock used
// to break.
func TestLimiterMonotonicRefill(t *testing.T) {
	clock := time.Duration(0)
	l := newLimiter(10, 3) // 10 tokens/s, burst 3
	l.now = func() time.Duration { return clock }
	l.last = clock

	for i := 0; i < 3; i++ {
		if !l.allow() {
			t.Fatalf("burst token %d refused", i)
		}
	}
	ok, retry := l.take()
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry != 100*time.Millisecond {
		t.Fatalf("retry hint %v, want exactly 100ms at 10/s", retry)
	}

	// Time standing still grants nothing, no matter how often we ask —
	// a wall-clock implementation could be stepped into admitting here.
	for i := 0; i < 5; i++ {
		if l.allow() {
			t.Fatal("admitted with a frozen clock")
		}
	}

	// Exactly one refill interval accrues exactly one token.
	clock += 100 * time.Millisecond
	if !l.allow() {
		t.Fatal("token not refilled after exactly one interval")
	}
	if l.allow() {
		t.Fatal("one interval refilled more than one token")
	}

	// A long idle stretch caps at the burst, never beyond.
	clock += time.Hour
	for i := 0; i < 3; i++ {
		if !l.allow() {
			t.Fatalf("burst token %d missing after long idle", i)
		}
	}
	if l.allow() {
		t.Fatal("idle stretch overfilled the burst cap")
	}

	// Fractional accrual accumulates across takes: two half-interval
	// steps sum to one token.
	clock += 50 * time.Millisecond
	if l.allow() {
		t.Fatal("half a token admitted")
	}
	clock += 50 * time.Millisecond
	if !l.allow() {
		t.Fatal("two half intervals did not sum to a token")
	}
}

// sseHandlerCount counts live handleEvents goroutines via the
// goroutine profile.
func sseHandlerCount(t *testing.T) int {
	t.Helper()
	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 2); err != nil {
		t.Fatal(err)
	}
	return strings.Count(buf.String(), "(*Server).handleEvents")
}

// TestServerSSEClientDisconnect drops an SSE consumer mid-stream and
// requires two things: the streaming goroutine exits (no leak per
// abandoned browser tab, over a months-long campaign), and the
// campaign itself is completely unaffected — the stream is
// observational, so a vanishing consumer must never cancel or stall
// the work it was watching.
func TestServerSSEClientDisconnect(t *testing.T) {
	_, ts := newTestServer(t, Options{Heartbeat: 20 * time.Millisecond})
	id := submit(t, ts, "", map[string]any{
		"seed": 7, "programs": 150, "workers": 2, "compilers": []string{"groovyc"},
	})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/api/campaigns/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read at least one event so the stream is provably live, then
	// vanish without warning.
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	sawEvent := false
	for scanner.Scan() {
		if strings.HasPrefix(scanner.Text(), "event: ") {
			sawEvent = true
			break
		}
	}
	if !sawEvent {
		t.Fatal("stream produced no events before disconnect")
	}
	if n := sseHandlerCount(t); n == 0 {
		t.Fatal("no live SSE handler while the stream is open")
	}
	cancel()

	deadline := time.Now().Add(10 * time.Second)
	for sseHandlerCount(t) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("SSE handler goroutine leaked after client disconnect")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The campaign never noticed: it is still running or finished, and
	// a fresh consumer can attach and see it through to done.
	if got := state(t, ts, "", id); got != "running" && got != "done" {
		t.Fatalf("campaign state %q after SSE disconnect, want running or done", got)
	}
	waitState(t, ts, "", id, "done")
}
